// Compile-level test: the umbrella header is self-contained and exposes
// the whole public API coherently (one end-to-end flow through it).
#include "fjs.h"

#include <gtest/gtest.h>

namespace fjs {
namespace {

TEST(Umbrella, VersionExposed) {
  EXPECT_STREQ(kVersion, "1.0.0");
}

TEST(Umbrella, EndToEndThroughPublicApi) {
  // Generate -> schedule online -> measure -> compare offline -> report.
  WorkloadConfig config;
  config.job_count = 25;
  config.integral = true;
  config.laxity_max = 4.0;
  const Instance inst = generate_workload(config, 123);

  const auto scheduler = make_scheduler("batch+");
  const SimulationResult run = simulate(inst, *scheduler, false);
  EXPECT_TRUE(run.schedule.is_valid(run.instance));

  const RatioBracket bracket = measure_ratio(inst, "batch+",
                                             OptMethod::kBracket);
  EXPECT_GE(bracket.ratio_upper(), 1.0 - 1e-12);

  const TimelineReport report = analyze_timeline(run.instance, run.schedule);
  EXPECT_EQ(report.span, run.span());

  const std::string chart = render_gantt(run.instance, run.schedule);
  EXPECT_FALSE(chart.empty());
}

TEST(Umbrella, ExposesPortfolioTelemetryAndPooling) {
  // The post-seed subsystems must be reachable through the umbrella
  // alone: columnar substrate, batched portfolio kernel, object pool,
  // telemetry snapshots.
  JobTable table;
  table.push_back(Time::from_units(0), Time::from_units(1),
                  Time::from_units(2));
  table.push_back(Time::from_units(1), Time::from_units(3),
                  Time::from_units(1));
  const Instance inst{JobTable(table.view())};

  const auto eager = make_scheduler("eager");
  const PortfolioEntry entry{eager.get(), /*clairvoyant=*/true};
  PortfolioRunner runner;
  const Time batched = runner.run_span(inst, entry);
  EXPECT_EQ(batched, runner.run_span(inst.view(), entry));

  ObjectPool<std::vector<int>> pool;
  {
    auto lease = pool.acquire();
    lease->assign(8, 7);
  }
  EXPECT_EQ(pool.acquire()->size(), 8u);  // warm reuse through the umbrella

  const telemetry::Snapshot begin = telemetry::capture();
  const telemetry::Snapshot end = telemetry::capture();
  EXPECT_EQ(telemetry::delta(begin, end).counters.size(),
            begin.counters.size());
}

}  // namespace
}  // namespace fjs
