// The columnar substrate's own contract (docs/DATA_MODEL.md): SoA
// storage, view aliasing under in-place mutation, the undo protocol,
// and view-computed stats matching the Instance-cached ones.
#include "core/job_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "support/assert.h"

namespace fjs {
namespace {

Time U(double units) { return Time::from_units(units); }

JobTable three_rows() {
  JobTable table;
  table.push_back(U(0), U(1), U(2));
  table.push_back(U(1), U(4), U(1));
  table.push_back(U(0.5), U(2), U(3));
  return table;
}

TEST(JobTable, RowsRoundTripThroughColumnsAndJobs) {
  const JobTable table = three_rows();
  ASSERT_EQ(table.size(), 3u);
  EXPECT_EQ(table.arrivals()[1], U(1));
  EXPECT_EQ(table.deadlines()[2], U(2));
  EXPECT_EQ(table.lengths()[0], U(2));
  const Job row = table.job(2);
  EXPECT_EQ(row.id, 2u);
  EXPECT_EQ(row.arrival, U(0.5));
  EXPECT_EQ(row.deadline, U(2));
  EXPECT_EQ(row.length, U(3));
}

TEST(JobTable, AoSBridgeKeepsRowOrderAndReassignsIds) {
  std::vector<Job> jobs;
  jobs.push_back(Job{.id = 7, .arrival = U(3), .deadline = U(5),
                     .length = U(1)});
  jobs.push_back(Job{.id = 2, .arrival = U(0), .deadline = U(1),
                     .length = U(2)});
  const JobTable table(jobs);
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table.job(0).id, 0u);
  EXPECT_EQ(table.job(0).arrival, U(3));
  EXPECT_EQ(table.job(1).id, 1u);
  EXPECT_EQ(table.job(1).arrival, U(0));
}

TEST(JobTable, ViewAliasesInPlaceWritesWithoutInvalidation) {
  JobTable table = three_rows();
  const InstanceView view = table.view();  // taken BEFORE the mutation
  table.set(1, U(2), U(6), U(4));
  EXPECT_EQ(view.arrival(1), U(2));
  EXPECT_EQ(view.deadline(1), U(6));
  EXPECT_EQ(view.length(1), U(4));
  // Untouched rows are untouched.
  EXPECT_EQ(view.arrival(0), U(0));
  EXPECT_EQ(view.length(2), U(3));
}

TEST(JobTable, UndoRecordRestoresExactRow) {
  JobTable table = three_rows();
  const InstanceView view = table.view();
  const JobTable::Undo undo = table.undo_record(1);
  table.set(1, U(9), U(10), U(11));
  EXPECT_EQ(view.length(1), U(11));
  table.restore(undo);
  EXPECT_EQ(view.arrival(1), U(1));
  EXPECT_EQ(view.deadline(1), U(4));
  EXPECT_EQ(view.length(1), U(1));
}

TEST(JobTable, MaterializingFromViewDeepCopies) {
  JobTable table = three_rows();
  const JobTable copy(table.view());
  table.set(0, U(8), U(9), U(1));
  EXPECT_EQ(copy.job(0).arrival, U(0));  // copy unaffected by later writes
  const Instance owned{JobTable(copy.view())};
  EXPECT_EQ(owned.size(), 3u);
  EXPECT_EQ(owned.job(0).length, U(2));
}

TEST(InstanceView, DerivedStatsMatchInstanceCache) {
  const Instance inst{three_rows()};
  const InstanceView view = inst.view();
  EXPECT_DOUBLE_EQ(view.mu(), inst.mu());
  EXPECT_EQ(view.min_length(), inst.min_length());
  EXPECT_EQ(view.max_length(), inst.max_length());
  EXPECT_EQ(view.total_work(), inst.total_work());
  EXPECT_EQ(view.earliest_arrival(), inst.earliest_arrival());
  EXPECT_EQ(view.latest_completion(), inst.latest_completion());
  EXPECT_EQ(view.ids_by_arrival(), inst.ids_by_arrival());
  EXPECT_EQ(view.ids_by_deadline(), inst.ids_by_deadline());
}

TEST(InstanceView, SortedByArrivalAndGridPredicate) {
  JobTable sorted;
  sorted.push_back(U(0), U(1), U(1));
  sorted.push_back(U(1), U(2), U(1));
  EXPECT_TRUE(sorted.view().sorted_by_arrival());
  EXPECT_TRUE(sorted.view().is_multiple_of(Time(Time::kTicksPerUnit)));

  JobTable unsorted;
  unsorted.push_back(U(1), U(2), U(1));
  unsorted.push_back(U(0), U(1), U(1.5));
  EXPECT_FALSE(unsorted.view().sorted_by_arrival());
  EXPECT_FALSE(unsorted.view().is_multiple_of(Time(Time::kTicksPerUnit)));
}

TEST(InstanceView, JobsRangeAssemblesEveryRow) {
  const JobTable table = three_rows();
  const InstanceView view = table.view();
  std::size_t count = 0;
  for (const Job& job : view.jobs()) {
    EXPECT_EQ(job.arrival, view.arrival(job.id));
    EXPECT_EQ(job.length, view.length(job.id));
    ++count;
  }
  EXPECT_EQ(count, table.size());
}

TEST(InstanceView, ValidateRejectsBadScratchRows) {
  JobTable bad;
  bad.push_back(U(1), U(0), U(1));  // deadline before arrival
  EXPECT_THROW(bad.view().validate(), AssertionError);
  JobTable overflow;
  overflow.push_back(Time::zero(), Time::max(), Time::max());  // d+p overflows
  EXPECT_THROW(overflow.view().validate(), AssertionError);
}

TEST(InstanceView, TotalWorkSaturatesInsteadOfThrowing) {
  JobTable huge;
  huge.push_back(Time::zero(), Time::zero(), Time::max());
  huge.push_back(Time::zero(), Time::zero(), Time::max());
  bool overflowed = false;
  EXPECT_EQ(huge.view().total_work_saturating(&overflowed), Time::max());
  EXPECT_TRUE(overflowed);
  EXPECT_THROW(huge.view().total_work(), AssertionError);
}

TEST(JobTable, ColumnLengthMismatchIsRejectedByViewCtor) {
  std::vector<Time> two(2, Time::zero());
  std::vector<Time> three(3, Time::zero());
  EXPECT_THROW(InstanceView(two, three, two), AssertionError);
}

TEST(JobTable, ColumnsAre64ByteAligned) {
  // The SIMD kernels' owned-path padding guarantee (support/aligned.h):
  // column bases stay 64-byte aligned through growth so full-width vector
  // loads on the owned path never straddle an unmapped page.
  JobTable table;
  for (std::size_t i = 0; i < 100; ++i) {
    table.push_back(U(static_cast<double>(i)), U(static_cast<double>(i + 1)),
                    U(1));
    for (const auto* base : {table.arrivals().data(),
                             table.deadlines().data(),
                             table.lengths().data()}) {
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(base) % 64, 0u)
          << "after " << i + 1 << " rows";
    }
  }
}

TEST(InstanceViewSimd, EmptyAndSingleRowStats) {
  JobTable empty;
  EXPECT_EQ(empty.view().total_work(), Time::zero());
  JobTable one;
  one.push_back(U(2), U(3), U(4));
  const InstanceView v = one.view();
  EXPECT_EQ(v.min_length(), U(4));
  EXPECT_EQ(v.max_length(), U(4));
  EXPECT_EQ(v.total_work(), U(4));
  EXPECT_EQ(v.earliest_arrival(), U(2));
  EXPECT_EQ(v.latest_completion(), U(7));
  EXPECT_EQ(v.ids_by_arrival(), std::vector<JobId>{0});
}

TEST(InstanceViewSimd, AllEqualKeysOrderByIdAtEveryScale) {
  // Radix path (above the small-n cutoff) and comparison path must both
  // realize the (key, id) total order when every key ties.
  for (const std::size_t n : {3u, 7u, 64u, 65u, 200u}) {
    JobTable table;
    for (std::size_t i = 0; i < n; ++i) {
      table.push_back(U(5), U(6), U(1));
    }
    const std::vector<JobId> by_arrival = table.view().ids_by_arrival();
    const std::vector<JobId> by_deadline = table.view().ids_by_deadline();
    ASSERT_EQ(by_arrival.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(by_arrival[i], static_cast<JobId>(i)) << "n=" << n;
      EXPECT_EQ(by_deadline[i], static_cast<JobId>(i)) << "n=" << n;
    }
  }
}

TEST(InstanceViewSimd, StatsStableAcrossVectorTailLengths) {
  // n = 1..8 walks every tail residue the widest vector tier can leave;
  // stats computed through the dispatched kernels must equal the naive
  // scalar recomputation at each size.
  JobTable table;
  for (std::size_t n = 1; n <= 8; ++n) {
    const auto d = static_cast<double>(n);
    table.push_back(U(d), U(d + 2), U(9 - d));
    const InstanceView v = table.view();
    Time min_len = Time::max();
    Time max_len = Time::min();
    Time work = Time::zero();
    Time early = Time::max();
    Time late = Time::min();
    for (std::size_t i = 0; i < n; ++i) {
      min_len = std::min(min_len, v.length(static_cast<JobId>(i)));
      max_len = std::max(max_len, v.length(static_cast<JobId>(i)));
      work += v.length(static_cast<JobId>(i));
      early = std::min(early, v.arrival(static_cast<JobId>(i)));
      late = std::max(late, v.deadline(static_cast<JobId>(i)) +
                                v.length(static_cast<JobId>(i)));
    }
    EXPECT_EQ(v.min_length(), min_len) << "n=" << n;
    EXPECT_EQ(v.max_length(), max_len) << "n=" << n;
    EXPECT_EQ(v.total_work(), work) << "n=" << n;
    EXPECT_EQ(v.earliest_arrival(), early) << "n=" << n;
    EXPECT_EQ(v.latest_completion(), late) << "n=" << n;
  }
}

TEST(InstanceViewSimd, NearMaxMagnitudesSaturateAndThrowLikeScalar) {
  // Near-Time::max() rows: the vectorized total_work must saturate with
  // the flag set, the checked accessor must throw, and latest_completion
  // must throw through its checked fallback — exactly the scalar
  // behaviour the fuzz oracle pins tier against tier.
  JobTable table;
  table.push_back(Time::zero(), Time::max() - Time(1), Time(1));
  table.push_back(Time::zero(), Time::max(), Time(1));  // d + p overflows
  table.push_back(Time::zero(), Time::zero(), Time::max());
  bool overflowed = false;
  EXPECT_EQ(table.view().total_work_saturating(&overflowed), Time::max());
  EXPECT_TRUE(overflowed);
  EXPECT_THROW(table.view().total_work(), AssertionError);
  EXPECT_THROW(table.view().latest_completion(), AssertionError);
  // Drop the overflowing rows: the same paths come back exact.
  JobTable exact;
  exact.push_back(Time::zero(), Time::max() - Time(1), Time(1));
  EXPECT_EQ(exact.view().latest_completion(), Time::max());
  EXPECT_EQ(exact.view().total_work(), Time(1));
}

}  // namespace
}  // namespace fjs
