// The columnar substrate's own contract (docs/DATA_MODEL.md): SoA
// storage, view aliasing under in-place mutation, the undo protocol,
// and view-computed stats matching the Instance-cached ones.
#include "core/job_table.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/instance.h"
#include "support/assert.h"

namespace fjs {
namespace {

Time U(double units) { return Time::from_units(units); }

JobTable three_rows() {
  JobTable table;
  table.push_back(U(0), U(1), U(2));
  table.push_back(U(1), U(4), U(1));
  table.push_back(U(0.5), U(2), U(3));
  return table;
}

TEST(JobTable, RowsRoundTripThroughColumnsAndJobs) {
  const JobTable table = three_rows();
  ASSERT_EQ(table.size(), 3u);
  EXPECT_EQ(table.arrivals()[1], U(1));
  EXPECT_EQ(table.deadlines()[2], U(2));
  EXPECT_EQ(table.lengths()[0], U(2));
  const Job row = table.job(2);
  EXPECT_EQ(row.id, 2u);
  EXPECT_EQ(row.arrival, U(0.5));
  EXPECT_EQ(row.deadline, U(2));
  EXPECT_EQ(row.length, U(3));
}

TEST(JobTable, AoSBridgeKeepsRowOrderAndReassignsIds) {
  std::vector<Job> jobs;
  jobs.push_back(Job{.id = 7, .arrival = U(3), .deadline = U(5),
                     .length = U(1)});
  jobs.push_back(Job{.id = 2, .arrival = U(0), .deadline = U(1),
                     .length = U(2)});
  const JobTable table(jobs);
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table.job(0).id, 0u);
  EXPECT_EQ(table.job(0).arrival, U(3));
  EXPECT_EQ(table.job(1).id, 1u);
  EXPECT_EQ(table.job(1).arrival, U(0));
}

TEST(JobTable, ViewAliasesInPlaceWritesWithoutInvalidation) {
  JobTable table = three_rows();
  const InstanceView view = table.view();  // taken BEFORE the mutation
  table.set(1, U(2), U(6), U(4));
  EXPECT_EQ(view.arrival(1), U(2));
  EXPECT_EQ(view.deadline(1), U(6));
  EXPECT_EQ(view.length(1), U(4));
  // Untouched rows are untouched.
  EXPECT_EQ(view.arrival(0), U(0));
  EXPECT_EQ(view.length(2), U(3));
}

TEST(JobTable, UndoRecordRestoresExactRow) {
  JobTable table = three_rows();
  const InstanceView view = table.view();
  const JobTable::Undo undo = table.undo_record(1);
  table.set(1, U(9), U(10), U(11));
  EXPECT_EQ(view.length(1), U(11));
  table.restore(undo);
  EXPECT_EQ(view.arrival(1), U(1));
  EXPECT_EQ(view.deadline(1), U(4));
  EXPECT_EQ(view.length(1), U(1));
}

TEST(JobTable, MaterializingFromViewDeepCopies) {
  JobTable table = three_rows();
  const JobTable copy(table.view());
  table.set(0, U(8), U(9), U(1));
  EXPECT_EQ(copy.job(0).arrival, U(0));  // copy unaffected by later writes
  const Instance owned{JobTable(copy.view())};
  EXPECT_EQ(owned.size(), 3u);
  EXPECT_EQ(owned.job(0).length, U(2));
}

TEST(InstanceView, DerivedStatsMatchInstanceCache) {
  const Instance inst{three_rows()};
  const InstanceView view = inst.view();
  EXPECT_DOUBLE_EQ(view.mu(), inst.mu());
  EXPECT_EQ(view.min_length(), inst.min_length());
  EXPECT_EQ(view.max_length(), inst.max_length());
  EXPECT_EQ(view.total_work(), inst.total_work());
  EXPECT_EQ(view.earliest_arrival(), inst.earliest_arrival());
  EXPECT_EQ(view.latest_completion(), inst.latest_completion());
  EXPECT_EQ(view.ids_by_arrival(), inst.ids_by_arrival());
  EXPECT_EQ(view.ids_by_deadline(), inst.ids_by_deadline());
}

TEST(InstanceView, SortedByArrivalAndGridPredicate) {
  JobTable sorted;
  sorted.push_back(U(0), U(1), U(1));
  sorted.push_back(U(1), U(2), U(1));
  EXPECT_TRUE(sorted.view().sorted_by_arrival());
  EXPECT_TRUE(sorted.view().is_multiple_of(Time(Time::kTicksPerUnit)));

  JobTable unsorted;
  unsorted.push_back(U(1), U(2), U(1));
  unsorted.push_back(U(0), U(1), U(1.5));
  EXPECT_FALSE(unsorted.view().sorted_by_arrival());
  EXPECT_FALSE(unsorted.view().is_multiple_of(Time(Time::kTicksPerUnit)));
}

TEST(InstanceView, JobsRangeAssemblesEveryRow) {
  const JobTable table = three_rows();
  const InstanceView view = table.view();
  std::size_t count = 0;
  for (const Job& job : view.jobs()) {
    EXPECT_EQ(job.arrival, view.arrival(job.id));
    EXPECT_EQ(job.length, view.length(job.id));
    ++count;
  }
  EXPECT_EQ(count, table.size());
}

TEST(InstanceView, ValidateRejectsBadScratchRows) {
  JobTable bad;
  bad.push_back(U(1), U(0), U(1));  // deadline before arrival
  EXPECT_THROW(bad.view().validate(), AssertionError);
  JobTable overflow;
  overflow.push_back(Time::zero(), Time::max(), Time::max());  // d+p overflows
  EXPECT_THROW(overflow.view().validate(), AssertionError);
}

TEST(InstanceView, TotalWorkSaturatesInsteadOfThrowing) {
  JobTable huge;
  huge.push_back(Time::zero(), Time::zero(), Time::max());
  huge.push_back(Time::zero(), Time::zero(), Time::max());
  bool overflowed = false;
  EXPECT_EQ(huge.view().total_work_saturating(&overflowed), Time::max());
  EXPECT_TRUE(overflowed);
  EXPECT_THROW(huge.view().total_work(), AssertionError);
}

TEST(JobTable, ColumnLengthMismatchIsRejectedByViewCtor) {
  std::vector<Time> two(2, Time::zero());
  std::vector<Time> three(3, Time::zero());
  EXPECT_THROW(InstanceView(two, three, two), AssertionError);
}

}  // namespace
}  // namespace fjs
