#include <gtest/gtest.h>

#include "analysis/ratio.h"
#include "analysis/sweep.h"
#include "helpers.h"
#include "schedulers/registry.h"
#include "support/assert.h"
#include "workload/generator.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::units;

TEST(Ratio, ExactMethodGivesPointEstimate) {
  const Instance inst = testing::random_integral_instance(3, 6, 10, 4, 4);
  const RatioBracket bracket =
      measure_ratio(inst, "batch+", OptMethod::kExact);
  EXPECT_TRUE(bracket.exact());
  EXPECT_DOUBLE_EQ(bracket.ratio_lower(), bracket.ratio_upper());
  EXPECT_GE(bracket.ratio_lower(), 1.0 - 1e-12);
}

TEST(Ratio, BracketMethodOrdersEnds) {
  const Instance inst = testing::random_integral_instance(4, 20, 30, 6, 4);
  const RatioBracket bracket =
      measure_ratio(inst, "batch", OptMethod::kBracket);
  EXPECT_LE(bracket.opt_lower, bracket.opt_upper);
  EXPECT_LE(bracket.ratio_lower(), bracket.ratio_upper() + 1e-12);
  EXPECT_GE(bracket.online_span, bracket.opt_lower);
}

TEST(Ratio, BracketContainsExactRatio) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Instance inst =
        testing::random_integral_instance(seed + 100, 6, 10, 4, 4);
    const RatioBracket exact =
        measure_ratio(inst, "batch+", OptMethod::kExact);
    const RatioBracket bracket =
        measure_ratio(inst, "batch+", OptMethod::kBracket);
    EXPECT_LE(bracket.ratio_lower(), exact.ratio_lower() + 1e-9);
    EXPECT_GE(bracket.ratio_upper(), exact.ratio_upper() - 1e-9);
  }
}

TEST(Ratio, EmptyInstanceRejected) {
  EXPECT_THROW(measure_ratio(Instance{}, "batch", OptMethod::kBracket),
               AssertionError);
}

TEST(Ratio, ClairvoyantSchedulersRouted) {
  const Instance inst = testing::random_integral_instance(9, 6, 10, 4, 4);
  // Would throw if measure_ratio ran Profit non-clairvoyantly.
  EXPECT_NO_THROW(measure_ratio(inst, "profit", OptMethod::kExact));
  EXPECT_NO_THROW(measure_ratio(inst, "cdb", OptMethod::kExact));
}

TEST(Sweep, MakeCasesSeedsSequentially) {
  WorkloadConfig cfg;
  cfg.job_count = 10;
  const auto cases = make_cases(cfg, "demo", 5, 100);
  ASSERT_EQ(cases.size(), 5u);
  EXPECT_EQ(cases[0].seed, 100u);
  EXPECT_EQ(cases[4].seed, 104u);
  EXPECT_EQ(cases[0].label, "demo");
  // Same seed → same instance as direct generation.
  const Instance direct = generate_workload(cfg, 102);
  EXPECT_EQ(cases[2].instance.job(3).arrival, direct.job(3).arrival);
}

TEST(Sweep, AggregatesEverySchedulerOverEveryCase) {
  WorkloadConfig cfg;
  cfg.job_count = 25;
  const auto cases = make_cases(cfg, "demo", 6, 7);
  const std::vector<std::string> keys = {"batch", "batch+", "profit"};
  const auto aggregates = run_ratio_sweep(cases, keys);
  ASSERT_EQ(aggregates.size(), 3u);
  for (std::size_t s = 0; s < keys.size(); ++s) {
    EXPECT_EQ(aggregates[s].scheduler_key, keys[s]);
    EXPECT_EQ(aggregates[s].ratio_lower.count(), 6u);
    EXPECT_EQ(aggregates[s].ratio_upper.count(), 6u);
    EXPECT_EQ(aggregates[s].spans.count(), 6u);
    // Conservative ratio is at least ~1 (online can't beat feasible OPT
    // upper bound... it CAN beat the heuristic? No: heuristic <= any
    // feasible schedule is false — heuristic is itself feasible, so
    // online >= OPT but may be < heuristic. Allow slight slack.)
    EXPECT_GT(aggregates[s].ratio_lower.min(), 0.5);
    EXPECT_LE(aggregates[s].ratio_lower.min(),
              aggregates[s].ratio_upper.max());
  }
}

TEST(Sweep, SerialAndParallelAgree) {
  WorkloadConfig cfg;
  cfg.job_count = 20;
  const auto cases = make_cases(cfg, "demo", 8, 21);
  const std::vector<std::string> keys = {"eager", "batch+", "cdb"};
  SweepOptions serial;
  serial.serial = true;
  const auto a = run_ratio_sweep(cases, keys, serial);
  SweepOptions parallel;
  const auto b = run_ratio_sweep(cases, keys, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    ASSERT_EQ(a[s].ratio_lower.count(), b[s].ratio_lower.count());
    EXPECT_EQ(a[s].ratio_lower.samples(), b[s].ratio_lower.samples());
    EXPECT_EQ(a[s].spans.samples(), b[s].spans.samples());
  }
}

TEST(Sweep, ExactMethodOnIntegralCases) {
  WorkloadConfig cfg;
  cfg.job_count = 6;
  cfg.integral = true;
  cfg.laxity_max = 3.0;
  const auto cases = make_cases(cfg, "tiny", 4, 3);
  SweepOptions options;
  options.opt_method = OptMethod::kExact;
  const auto aggregates = run_ratio_sweep(cases, {"batch+"}, options);
  ASSERT_EQ(aggregates.size(), 1u);
  // With the exact solver both ratio summaries coincide.
  EXPECT_EQ(aggregates[0].ratio_lower.samples(),
            aggregates[0].ratio_upper.samples());
  EXPECT_GE(aggregates[0].ratio_lower.min(), 1.0 - 1e-12);
}

TEST(Sweep, RejectsEmptySchedulerList) {
  EXPECT_THROW(run_ratio_sweep({}, {}), AssertionError);
}

}  // namespace
}  // namespace fjs
