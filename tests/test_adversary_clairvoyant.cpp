#include "adversary/clairvoyant_lb.h"

#include <gtest/gtest.h>

#include <cmath>

#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/assert.h"

namespace fjs {
namespace {

struct AdversaryRun {
  SimulationResult result;
  double measured_ratio = 0.0;
  double theoretical = 0.0;
  int iterations = 0;
  bool stopped_early = false;
};

AdversaryRun run_adversary(OnlineScheduler& scheduler, int n) {
  ClairvoyantAdversary adversary(ClairvoyantLbParams{.max_iterations = n});
  NoDeferralOracle oracle;
  Engine engine(adversary, oracle, scheduler,
                EngineOptions{.clairvoyant = true});
  AdversaryRun run;
  run.result = engine.run();
  const Schedule reference = adversary.reference_schedule(run.result.instance);
  run.measured_ratio =
      time_ratio(run.result.span(), reference.span(run.result.instance));
  run.theoretical = adversary.theoretical_ratio();
  run.iterations = adversary.iterations_released();
  run.stopped_early = adversary.stopped_early();
  return run;
}

TEST(ClairvoyantAdversary, PhiConstant) {
  EXPECT_NEAR(ClairvoyantAdversary::phi(), (std::sqrt(5.0) + 1.0) / 2.0,
              1e-12);
}

TEST(ClairvoyantAdversary, RejectsBadParameters) {
  EXPECT_THROW(
      ClairvoyantAdversary(ClairvoyantLbParams{.max_iterations = 0}),
      AssertionError);
}

TEST(ClairvoyantAdversary, LazyStopsInIterationOne) {
  // Lazy never starts the long job inside the short's window, so the
  // adversary stops immediately and the ratio is exactly φ.
  const auto lazy = make_scheduler("lazy");
  const AdversaryRun run = run_adversary(*lazy, 16);
  EXPECT_TRUE(run.stopped_early);
  EXPECT_EQ(run.iterations, 1);
  EXPECT_NEAR(run.theoretical, ClairvoyantAdversary::phi(), 1e-12);
  EXPECT_NEAR(run.measured_ratio, ClairvoyantAdversary::phi(), 1e-3);
}

TEST(ClairvoyantAdversary, CdbStopsEarly) {
  // CDB schedules the long category separately; the long job waits for a
  // same-category flag that never comes inside the window.
  const auto cdb = make_scheduler("cdb");
  const AdversaryRun run = run_adversary(*cdb, 16);
  EXPECT_TRUE(run.stopped_early);
  EXPECT_GE(run.measured_ratio, ClairvoyantAdversary::phi() - 1e-3);
}

class RideThroughSchedulers : public ::testing::TestWithParam<const char*> {};

TEST_P(RideThroughSchedulers, ForcedToRatioOfOutcome) {
  // Eager/Batch/Batch+/Profit/Doubler all start the long job inside the
  // window, so the adversary runs all n iterations and the measured ratio
  // approaches nφ/(φ+n−1) → φ.
  const auto scheduler = make_scheduler(GetParam());
  const AdversaryRun run = run_adversary(*scheduler, 24);
  EXPECT_FALSE(run.stopped_early) << GetParam();
  EXPECT_EQ(run.iterations, 24);
  EXPECT_GE(run.measured_ratio, run.theoretical - 0.01) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllRiders, RideThroughSchedulers,
                         ::testing::Values("eager", "batch", "batch+",
                                           "profit", "doubler*"));

TEST(ClairvoyantAdversary, EveryRegisteredSchedulerPaysNearPhi) {
  // Theorem 4.1: no deterministic scheduler beats φ. With n = 64 the
  // all-iterations outcome floor n·φ/(φ+n−1) ≈ 1.603; accept 1.55 as the
  // uniform floor across outcomes.
  for (const auto& spec : scheduler_registry()) {
    const auto scheduler = spec.make();
    const AdversaryRun run = run_adversary(*scheduler, 64);
    EXPECT_GE(run.measured_ratio, 1.55) << spec.key;
  }
}

TEST(ClairvoyantAdversary, MeasuredTracksTheoreticalClosely) {
  const auto eager = make_scheduler("eager");
  for (const int n : {2, 8, 32}) {
    const AdversaryRun run = run_adversary(*eager, n);
    EXPECT_NEAR(run.measured_ratio, run.theoretical, 0.01) << "n=" << n;
  }
}

TEST(ClairvoyantAdversary, ReferenceScheduleValidAndBetter) {
  const auto batch = make_scheduler("batch");
  ClairvoyantAdversary adversary(ClairvoyantLbParams{.max_iterations = 12});
  NoDeferralOracle oracle;
  Engine engine(adversary, oracle, *batch,
                EngineOptions{.clairvoyant = true});
  const SimulationResult result = engine.run();
  const Schedule reference = adversary.reference_schedule(result.instance);
  reference.validate(result.instance);
  EXPECT_LT(reference.span(result.instance), result.span());
}

TEST(ClairvoyantAdversary, InstanceShapeMatchesConstruction) {
  const auto eager = make_scheduler("eager");
  ClairvoyantAdversary adversary(ClairvoyantLbParams{.max_iterations = 5});
  NoDeferralOracle oracle;
  Engine engine(adversary, oracle, *eager,
                EngineOptions{.clairvoyant = true});
  const SimulationResult result = engine.run();
  // 5 iterations × (short + long).
  ASSERT_EQ(result.instance.size(), 10u);
  for (JobId id = 0; id < result.instance.size(); ++id) {
    const Job& j = result.instance.job(id);
    if (id % 2 == 0) {  // shorts: laxity 0, length 1
      EXPECT_EQ(j.laxity(), Time::zero());
      EXPECT_EQ(j.length, Time::from_units(1.0));
    } else {  // longs: length φ
      EXPECT_EQ(j.length, Time::from_units(ClairvoyantAdversary::phi()));
      EXPECT_GT(j.laxity(), Time::zero());
    }
  }
  // μ of the construction is φ.
  EXPECT_NEAR(result.instance.mu(), ClairvoyantAdversary::phi(), 1e-5);
}

}  // namespace
}  // namespace fjs
