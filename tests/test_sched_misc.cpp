#include <gtest/gtest.h>

#include "helpers.h"
#include "schedulers/doubler.h"
#include "schedulers/eager.h"
#include "schedulers/lazy.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/assert.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::units;

TEST(Eager, AlwaysStartsAtArrival) {
  const Instance inst = make_instance({{0, 9, 1}, {0.5, 9, 1}, {7, 7, 2}});
  EagerScheduler eager;
  const SimulationResult result = simulate(inst, eager, false);
  EXPECT_EQ(result.schedule.start(0), units(0.0));
  EXPECT_EQ(result.schedule.start(1), units(0.5));
  EXPECT_EQ(result.schedule.start(2), units(7.0));
}

TEST(Eager, UnboundedRatioFamily) {
  // §3.2: eager cannot exploit laxity. m unit jobs arriving 1 apart, all
  // with huge laxity: eager spans m, OPT spans 1.
  InstanceBuilder builder;
  const int m = 20;
  for (int i = 0; i < m; ++i) {
    builder.add_lax(i, 100.0, 1.0);
  }
  const Instance inst = builder.build();
  EagerScheduler eager;
  EXPECT_EQ(simulate_span(inst, eager, false), units(20.0));
  // The all-at-deadline-of-first schedule shows OPT <= 1.
  Schedule opt(inst.size());
  for (JobId id = 0; id < inst.size(); ++id) {
    opt.set_start(id, units(50.0));
  }
  EXPECT_EQ(opt.span(inst), units(1.0));
}

TEST(Lazy, AlwaysStartsAtDeadline) {
  const Instance inst = make_instance({{0, 2, 1}, {0, 4, 1}});
  LazyScheduler lazy;
  const SimulationResult result = simulate(inst, lazy, false);
  EXPECT_EQ(result.schedule.start(0), units(2.0));
  EXPECT_EQ(result.schedule.start(1), units(4.0));
  EXPECT_EQ(result.span(), units(2.0));
}

TEST(Lazy, UnboundedRatioFamily) {
  // m unit jobs released together with staggered distinct deadlines:
  // lazy runs them sequentially (span m), OPT runs them together (1).
  InstanceBuilder builder;
  const int m = 20;
  for (int i = 0; i < m; ++i) {
    builder.add(0.0, static_cast<double>(i), 1.0);
  }
  const Instance inst = builder.build();
  LazyScheduler lazy;
  EXPECT_EQ(simulate_span(inst, lazy, false), units(20.0));
  Schedule opt(inst.size());
  for (JobId id = 0; id < inst.size(); ++id) {
    opt.set_start(id, units(0.0));
  }
  EXPECT_EQ(opt.span(inst), units(1.0));
}

TEST(Doubler, PendingWithinDoubleLengthStartWithFlag) {
  // Flag J0 (p=2) at deadline 1; pending J1 (p=4 <= 2*2) starts with it;
  // pending J2 (p=4.5) waits.
  const Instance inst =
      make_instance({{0, 1, 2}, {0, 9, 4}, {0, 9, 4.5}});
  DoublerScheduler doubler;
  const SimulationResult result = simulate(inst, doubler, true);
  EXPECT_EQ(result.schedule.start(0), units(1.0));
  EXPECT_EQ(result.schedule.start(1), units(1.0));
  EXPECT_EQ(result.schedule.start(2), units(9.0));
}

TEST(Doubler, ArrivalMustFinishInsideWindow) {
  // Window of flag J0 (starts 1, p=2) closes at 1+4=5. J1 arrives at 3
  // with p=2 (3+2=5 <= 5): starts. J2 arrives at 3 with p=2.5: waits.
  const Instance inst =
      make_instance({{0, 1, 2}, {3, 9, 2}, {3, 9, 2.5}});
  DoublerScheduler doubler;
  const SimulationResult result = simulate(inst, doubler, true);
  EXPECT_EQ(result.schedule.start(1), units(3.0));
  EXPECT_EQ(result.schedule.start(2), units(9.0));
}

TEST(Doubler, WindowExpires) {
  // Window closes at 5; an arrival at 5 (even a tiny job) waits.
  const Instance inst = make_instance({{0, 1, 2}, {5, 9, 0.5}});
  DoublerScheduler doubler;
  const SimulationResult result = simulate(inst, doubler, true);
  EXPECT_EQ(result.schedule.start(1), units(9.0));
}

TEST(Registry, ListsAllNineSchedulers) {
  EXPECT_EQ(scheduler_registry().size(), 9u);
  const auto keys = known_scheduler_keys();
  EXPECT_EQ(keys.size(), 9u);
  EXPECT_EQ(keys.front(), "eager");
  EXPECT_EQ(keys.back(), "overlap");
}

TEST(Registry, ModelFiltering) {
  EXPECT_EQ(schedulers_for_model(false).size(), 5u);  // non-clairvoyant
  EXPECT_EQ(schedulers_for_model(true).size(), 9u);
}

TEST(Registry, MakeByKey) {
  for (const auto& key : known_scheduler_keys()) {
    const auto sched = make_scheduler(key);
    ASSERT_NE(sched, nullptr);
    EXPECT_FALSE(sched->name().empty());
  }
  EXPECT_THROW(make_scheduler("nope"), AssertionError);
}

TEST(Registry, ParameterizedKeys) {
  EXPECT_NE(make_scheduler("profit:k=2.5")->name().find("2.5"),
            std::string::npos);
  EXPECT_NE(make_scheduler("cdb:alpha=2")->name().find("2"),
            std::string::npos);
  EXPECT_NE(make_scheduler("overlap:theta=0.7")->name().find("0.7"),
            std::string::npos);
  EXPECT_EQ(make_scheduler("random:seed=9")->name(), "random");
}

TEST(Registry, ParameterizedKeyErrors) {
  EXPECT_THROW(make_scheduler("profit:alpha=2"), AssertionError);  // wrong
  EXPECT_THROW(make_scheduler("profit:k"), AssertionError);        // no '='
  EXPECT_THROW(make_scheduler("profit:k=abc"), AssertionError);    // bad val
  EXPECT_THROW(make_scheduler("batch:x=1"), AssertionError);       // no params
  EXPECT_THROW(make_scheduler("profit:k=0.5"), AssertionError);    // k <= 1
}

TEST(Registry, ParameterizedSchedulersRun) {
  const Instance inst = make_instance({{0, 2, 1}, {0, 5, 2}});
  for (const char* key :
       {"profit:k=3", "cdb:alpha=1.5", "overlap:theta=0.9"}) {
    const auto sched = make_scheduler(key);
    EXPECT_NO_THROW(simulate(inst, *sched, true)) << key;
  }
}

TEST(Registry, SpecClairvoyanceMatchesScheduler) {
  for (const auto& spec : scheduler_registry()) {
    const auto sched = spec.make();
    EXPECT_EQ(sched->requires_clairvoyance(), spec.clairvoyant)
        << spec.key;
  }
}

}  // namespace
}  // namespace fjs
