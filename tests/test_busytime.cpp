#include "busytime/busytime.h"

#include <gtest/gtest.h>

#include <map>

#include "core/interval_set.h"
#include "dbp/packing.h"
#include "dbp/simulator.h"
#include "helpers.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/assert.h"
#include "workload/generator.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::units;

TEST(BusyTime, UnboundedCapacityEqualsSpanOnOneMachine) {
  const Instance inst = make_instance({{0, 0, 2}, {1, 1, 2}, {5, 5, 1}});
  const Schedule sched =
      Schedule::from_starts({units(0.0), units(1.0), units(5.0)});
  const BusyTimeResult result =
      assign_machines(inst, sched, kUnboundedCapacity);
  EXPECT_EQ(result.machines_used, 1u);
  EXPECT_EQ(result.total_busy, sched.span(inst));
}

TEST(BusyTime, CapacityOneBusyEqualsTotalWork) {
  const Instance inst = make_instance({{0, 0, 2}, {0, 0, 3}, {0, 0, 1}});
  const Schedule sched = Schedule::from_starts(
      {units(0.0), units(0.0), units(0.0)});
  const BusyTimeResult result = assign_machines(inst, sched, 1);
  EXPECT_EQ(result.total_busy, inst.total_work());
  EXPECT_EQ(result.machines_used, 3u);
}

TEST(BusyTime, CapacityTwoPacksPairs) {
  const Instance inst = make_instance(
      {{0, 0, 2}, {0, 0, 2}, {0, 0, 2}, {0, 0, 2}});
  const Schedule sched = Schedule::from_starts(
      {units(0.0), units(0.0), units(0.0), units(0.0)});
  const BusyTimeResult result = assign_machines(inst, sched, 2);
  EXPECT_EQ(result.machines_used, 2u);
  EXPECT_EQ(result.total_busy, units(4.0));
  EXPECT_EQ(result.peak_active_machines, 2u);
}

TEST(BusyTime, HalfOpenDepartureFreesSlot) {
  const Instance inst = make_instance({{0, 0, 2}, {2, 2, 2}});
  const Schedule sched = Schedule::from_starts({units(0.0), units(2.0)});
  const BusyTimeResult result = assign_machines(inst, sched, 1);
  EXPECT_EQ(result.machines_used, 1u);
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_EQ(result.total_busy, units(4.0));
}

TEST(BusyTime, MachineIdleGapsNotBilled) {
  const Instance inst = make_instance({{0, 0, 1}, {9, 9, 1}});
  const Schedule sched = Schedule::from_starts({units(0.0), units(9.0)});
  const BusyTimeResult result = assign_machines(inst, sched, 4);
  EXPECT_EQ(result.machines_used, 1u);
  EXPECT_EQ(result.total_busy, units(2.0));  // gap [1,9) is free
}

TEST(BusyTime, PoliciesDiffer) {
  // g=2. At t=0: J0,J1 fill machine 0; J2,J3 fill machine 1. At t=4 only
  // J0 survives (on m0); m1 is empty. The t=4.5 arrival goes to the
  // most-loaded feasible machine (m0) or the least-loaded one (m1).
  const Instance inst = make_instance(
      {{0, 0, 6}, {0, 0, 4}, {0, 0, 4}, {0, 0, 4}, {4.5, 4.5, 1}});
  const Schedule sched = Schedule::from_starts(
      {units(0.0), units(0.0), units(0.0), units(0.0), units(4.5)});
  const BusyTimeResult most =
      assign_machines(inst, sched, 2, MachinePolicy::kMostLoaded);
  EXPECT_EQ(most.assignment[4], 0u);
  const BusyTimeResult least =
      assign_machines(inst, sched, 2, MachinePolicy::kLeastLoaded);
  EXPECT_EQ(least.assignment[4], 1u);
  const BusyTimeResult first =
      assign_machines(inst, sched, 2, MachinePolicy::kFirstAvailable);
  EXPECT_EQ(first.assignment[4], 0u);
  // Packing onto the already-busy machine avoids re-opening m1:
  EXPECT_LT(most.total_busy, least.total_busy);
}

TEST(BusyTime, AccountingMatchesIntervalSetReference) {
  WorkloadConfig cfg;
  cfg.job_count = 120;
  cfg.laxity_max = 4.0;
  const Instance raw = generate_workload(cfg, 17);
  const auto scheduler = make_scheduler("batch+");
  const SimulationResult run = simulate(raw, *scheduler, false);
  for (const std::size_t g : {1u, 3u, 7u}) {
    const BusyTimeResult result =
        assign_machines(run.instance, run.schedule, g);
    std::map<std::size_t, IntervalSet> per_machine;
    for (JobId id = 0; id < run.instance.size(); ++id) {
      per_machine[result.assignment[id]].add(
          run.schedule.active_interval(run.instance, id));
    }
    Time reference = Time::zero();
    for (const auto& [machine, set] : per_machine) {
      reference += set.measure();
    }
    EXPECT_EQ(result.total_busy, reference) << "g=" << g;
    EXPECT_GE(result.total_busy, busy_time_lower_bound(run.instance, g));
  }
}

TEST(BusyTime, CapacityInvariantUnderConcurrencyProbe) {
  WorkloadConfig cfg;
  cfg.job_count = 80;
  const Instance raw = generate_workload(cfg, 3);
  const auto scheduler = make_scheduler("eager");
  const SimulationResult run = simulate(raw, *scheduler, false);
  const std::size_t g = 2;
  const BusyTimeResult result = assign_machines(run.instance, run.schedule, g);
  for (JobId probe = 0; probe < run.instance.size(); ++probe) {
    const Time t = run.schedule.active_interval(run.instance, probe).lo;
    std::map<std::size_t, std::size_t> load;
    for (JobId id = 0; id < run.instance.size(); ++id) {
      if (run.schedule.active_interval(run.instance, id).contains(t)) {
        ++load[result.assignment[id]];
      }
    }
    for (const auto& [machine, count] : load) {
      EXPECT_LE(count, g);
    }
  }
}

TEST(BusyTime, AgreesWithFractionalDbpSubstrate) {
  // Differential: capacity-g busy time == DBP with items of size 1/g
  // under the analogous policy (First Fit == first-available).
  WorkloadConfig cfg;
  cfg.job_count = 150;
  cfg.laxity_max = 5.0;
  const Instance raw = generate_workload(cfg, 29);
  const auto scheduler = make_scheduler("batch+");
  const SimulationResult run = simulate(raw, *scheduler, false);
  for (const std::size_t g : {2u, 4u, 8u}) {
    const BusyTimeResult integral =
        assign_machines(run.instance, run.schedule, g);
    const std::vector<double> sizes(run.instance.size(),
                                    1.0 / static_cast<double>(g));
    FirstFitPacker ff;
    const DbpResult fractional =
        run_packing(run.instance, run.schedule, sizes, ff);
    EXPECT_EQ(integral.total_busy, fractional.total_usage) << "g=" << g;
    EXPECT_EQ(integral.machines_used, fractional.bins_opened) << "g=" << g;
    EXPECT_EQ(integral.assignment, fractional.assignment) << "g=" << g;
  }
}

TEST(BusyTime, LowerBoundCases) {
  const Instance inst = make_instance({{0, 0, 3}, {0, 0, 3}});
  // g=1: work bound 6 dominates the span bound 3.
  EXPECT_EQ(busy_time_lower_bound(inst, 1), units(6.0));
  // g=2: work bound 3 == span bound 3.
  EXPECT_EQ(busy_time_lower_bound(inst, 2), units(3.0));
  // Unbounded: span bound only.
  EXPECT_EQ(busy_time_lower_bound(inst, kUnboundedCapacity), units(3.0));
  EXPECT_EQ(busy_time_lower_bound(Instance{}, 1), Time::zero());
}

TEST(BusyTime, PolicyNames) {
  EXPECT_EQ(to_string(MachinePolicy::kFirstAvailable), "first-available");
  EXPECT_EQ(to_string(MachinePolicy::kMostLoaded), "most-loaded");
  EXPECT_EQ(to_string(MachinePolicy::kLeastLoaded), "least-loaded");
}

}  // namespace
}  // namespace fjs
