#include <gtest/gtest.h>

#include "helpers.h"
#include "offline/exact.h"
#include "offline/heuristic.h"
#include "offline/lower_bound.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::units;

TEST(MandatoryBound, LaxityLessThanLengthForcesCoverage) {
  // laxity 1 < p 3 => [d, a+p) = [1, 3) mandatory.
  const Instance inst = make_instance({{0, 1, 3}});
  EXPECT_EQ(mandatory_lower_bound(inst), units(2.0));
}

TEST(MandatoryBound, LooseJobContributesNothing) {
  const Instance inst = make_instance({{0, 10, 2}});
  EXPECT_EQ(mandatory_lower_bound(inst), Time::zero());
}

TEST(MandatoryBound, UnionNotSum) {
  // Two rigid jobs with overlapping mandatory regions.
  const Instance inst = make_instance({{0, 0, 3}, {1, 1, 3}});
  EXPECT_EQ(mandatory_lower_bound(inst), units(4.0));  // [0,4), not 6
}

TEST(ChainBound, SequentialForcedJobs) {
  // J1 arrives after J0's latest completion; J2 after J1's.
  const Instance inst =
      make_instance({{0, 1, 2}, {3, 4, 2}, {6, 7, 2}});
  EXPECT_EQ(chain_lower_bound(inst), units(6.0));
}

TEST(ChainBound, PicksHeaviestChain) {
  // Two chains: {J0 (p=1), J2 (p=1)} and {J1 (p=5)} — heavy single job
  // wins over the 2-link light chain.
  const Instance inst = make_instance({{0, 0, 1}, {0, 4, 5}, {2, 9, 1}});
  EXPECT_EQ(chain_lower_bound(inst), units(5.0));
}

TEST(ChainBound, NoForcedDisjointness) {
  const Instance inst = make_instance({{0, 5, 2}, {0, 5, 2}, {0, 5, 2}});
  EXPECT_EQ(chain_lower_bound(inst), units(2.0));  // any single job
}

TEST(ChainBound, EmptyInstance) {
  EXPECT_EQ(chain_lower_bound(Instance{}), Time::zero());
  EXPECT_EQ(best_lower_bound(Instance{}), Time::zero());
}

TEST(MaxLengthBound, Simple) {
  const Instance inst = make_instance({{0, 9, 1}, {0, 9, 4}});
  EXPECT_EQ(max_length_lower_bound(inst), units(4.0));
}

TEST(BestBound, TakesMaximum) {
  // Chain bound 4 beats mandatory 0 and max length 2.
  const Instance inst = make_instance({{0, 1, 2}, {4, 8, 2}});
  EXPECT_EQ(best_lower_bound(inst), units(4.0));
}

TEST(Heuristic, ValidOnCraftedInstance) {
  const Instance inst =
      make_instance({{0, 0, 1}, {3, 3, 1}, {0, 6, 2}, {3, 6, 2}});
  const HeuristicResult result = heuristic_optimal(inst);
  result.schedule.validate(inst);
  EXPECT_EQ(result.schedule.span(inst), result.span);
  // On this instance the heuristic should find the true optimum (3):
  // both longs stack at t=3 over the second short.
  EXPECT_EQ(result.span, units(3.0));
}

TEST(Heuristic, EmptyInstance) {
  const HeuristicResult result = heuristic_optimal(Instance{});
  EXPECT_EQ(result.span, Time::zero());
}

TEST(Heuristic, BeatsDeadlineScheduleWhenAlignmentHelps) {
  // All-at-deadline spans 3 disjoint units; aligning on one point spans 1.
  const Instance inst =
      make_instance({{0, 2, 1}, {0, 5, 1}, {0, 9, 1}});
  EXPECT_EQ(heuristic_span(inst), units(1.0));
}

/// Sandwich property: LB <= OPT <= heuristic on random instances, with the
/// heuristic usually tight on small ones.
class BoundsSandwich : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundsSandwich, LowerBoundOptHeuristicOrdered) {
  const Instance inst = testing::random_integral_instance(
      GetParam() + 500, /*jobs=*/6, /*horizon=*/10, /*max_laxity=*/4,
      /*max_length=*/4);
  const Time lb = best_lower_bound(inst);
  const Time opt = exact_optimal_span(inst);
  const Time heur = heuristic_span(inst);
  EXPECT_LE(lb, opt) << inst.to_string();
  EXPECT_LE(opt, heur) << inst.to_string();
  // The heuristic should stay within 50% of optimal on these tiny cases.
  EXPECT_LE(time_ratio(heur, opt), 1.5) << inst.to_string();
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, BoundsSandwich,
                         ::testing::Range<std::uint64_t>(0, 60));

}  // namespace
}  // namespace fjs
