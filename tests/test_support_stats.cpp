#include "support/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/assert.h"
#include "support/rng.h"

namespace fjs {
namespace {

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) {
    acc.add(x);
  }
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Accumulator, EmptyThrows) {
  Accumulator acc;
  EXPECT_THROW(acc.mean(), AssertionError);
  EXPECT_THROW(acc.min(), AssertionError);
  EXPECT_THROW(acc.max(), AssertionError);
}

TEST(Accumulator, SingleSampleVarianceZero) {
  Accumulator acc;
  acc.add(7.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Rng rng(5);
  Accumulator whole;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(2.0, 3.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a;
  a.add(1.0);
  Accumulator b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Summary, PercentilesOnKnownData) {
  Summary s;
  for (int i = 1; i <= 100; ++i) {
    s.add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(s.percentile(100.0), 100.0, 1e-12);
  EXPECT_NEAR(s.percentile(25.0), 25.75, 1e-12);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.percentile(37.0), 3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, MergeConcatenates) {
  Summary a;
  a.add(1.0);
  a.add(2.0);
  Summary b;
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(Summary, RejectsBadPercentile) {
  Summary s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1.0), AssertionError);
  EXPECT_THROW(s.percentile(101.0), AssertionError);
}

TEST(Summary, ToStringEmpty) {
  Summary s;
  EXPECT_EQ(s.to_string(), "n=0");
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bucket 0
  h.add(9.9);   // bucket 4
  h.add(-3.0);  // clamps to bucket 0
  h.add(42.0);  // clamps to bucket 4
  h.add(5.0);   // bucket 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
}

TEST(Histogram, BucketEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_low(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(4), 10.0);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.75);
  h.add(0.8);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), AssertionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), AssertionError);
}

}  // namespace
}  // namespace fjs
