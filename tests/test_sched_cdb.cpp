#include "schedulers/classify_by_duration.h"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.h"
#include "sim/engine.h"
#include "support/assert.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::units;

TEST(Cdb, OptimalAlphaMatchesTheorem44) {
  const double alpha = CdbScheduler::optimal_alpha();
  EXPECT_NEAR(alpha, 1.0 + std::sqrt(2.0 / 3.0), 1e-12);
  // The bound 3α + 4 + 2/(α−1) at the optimum is 7 + 2√6.
  const double bound = 3.0 * alpha + 4.0 + 2.0 / (alpha - 1.0);
  EXPECT_NEAR(bound, 7.0 + 2.0 * std::sqrt(6.0), 1e-9);
}

TEST(Cdb, CategoryBoundaries) {
  // alpha=2, base=1 unit: category i covers lengths in (2^(i-1), 2^i].
  const CdbScheduler cdb(2.0, Time(Time::kTicksPerUnit));
  EXPECT_EQ(cdb.category_of(units(1.0)), 0);
  EXPECT_EQ(cdb.category_of(units(1.001)), 1);
  EXPECT_EQ(cdb.category_of(units(2.0)), 1);  // boundary goes DOWN
  EXPECT_EQ(cdb.category_of(units(2.5)), 2);
  EXPECT_EQ(cdb.category_of(units(4.0)), 2);
  EXPECT_EQ(cdb.category_of(units(0.5)), -1);
  EXPECT_EQ(cdb.category_of(units(0.75)), 0);
  EXPECT_THROW(cdb.category_of(Time::zero()), AssertionError);
}

TEST(Cdb, RejectsBadParameters) {
  EXPECT_THROW(CdbScheduler(1.0), AssertionError);
  EXPECT_THROW(CdbScheduler(2.0, Time::zero()), AssertionError);
}

TEST(Cdb, RequiresClairvoyance) {
  const Instance inst = make_instance({{0, 1, 1}});
  CdbScheduler cdb;
  EXPECT_THROW(simulate(inst, cdb, false), AssertionError);
}

TEST(Cdb, CategoriesScheduleIndependently) {
  // Short category: J0 (p=1, laxity 0) flags at 0. Long job J1 (p=8)
  // arrives during J0's run but belongs to another category — it must NOT
  // start immediately (plain Batch+ would start it).
  const Instance inst = make_instance({{0, 0, 1}, {0.5, 6, 8}});
  CdbScheduler cdb(2.0, Time(Time::kTicksPerUnit));
  const SimulationResult result = simulate(inst, cdb, true);
  EXPECT_EQ(result.schedule.start(0), units(0.0));
  EXPECT_EQ(result.schedule.start(1), units(6.0));
}

TEST(Cdb, SameCategoryArrivalsStartDuringFlag) {
  // Both jobs have p=1 (same category); the second arrives during the
  // first's flag interval and starts immediately, Batch+-style.
  const Instance inst = make_instance({{0, 0, 1}, {0.5, 9, 1}});
  CdbScheduler cdb(2.0, Time(Time::kTicksPerUnit));
  const SimulationResult result = simulate(inst, cdb, true);
  EXPECT_EQ(result.schedule.start(1), units(0.5));
}

TEST(Cdb, PendingJobsOfOtherCategoriesStayPending) {
  // J0 (p=1) and J1 (p=8) both pending when J0 flags at t=2: only the
  // same-category pending J2 starts with the flag.
  const Instance inst =
      make_instance({{0, 2, 1}, {0, 20, 8}, {1, 30, 1}});
  CdbScheduler cdb(2.0, Time(Time::kTicksPerUnit));
  const SimulationResult result = simulate(inst, cdb, true);
  EXPECT_EQ(result.schedule.start(0), units(2.0));
  EXPECT_EQ(result.schedule.start(2), units(2.0));  // same category, pending
  EXPECT_EQ(result.schedule.start(1), units(20.0));  // other category waits
}

TEST(Cdb, ConcurrentFlagsAcrossCategories) {
  // A long flag (p=8) is running when a short job hits its deadline: two
  // category-iterations active at once, each Batch+-style.
  const Instance inst = make_instance(
      {{0, 0, 8}, {1, 1, 1}, {1.5, 9, 1}, {2, 30, 8}});
  CdbScheduler cdb(2.0, Time(Time::kTicksPerUnit));
  const SimulationResult result = simulate(inst, cdb, true);
  EXPECT_EQ(result.schedule.start(0), units(0.0));  // long flag
  EXPECT_EQ(result.schedule.start(1), units(1.0));  // short flag
  EXPECT_EQ(result.schedule.start(2), units(1.5));  // short during short flag
  EXPECT_EQ(result.schedule.start(3), units(2.0));  // long during long flag
}

TEST(Cdb, FlagCompletionClosesOnlyItsCategory) {
  // Short flag [0,1) completes; a short arriving at 1 buffers, while the
  // long category's flag [0,8) still absorbs long arrivals immediately.
  const Instance inst =
      make_instance({{0, 0, 1}, {0, 0, 8}, {1, 9, 1}, {1, 30, 8}});
  CdbScheduler cdb(2.0, Time(Time::kTicksPerUnit));
  const SimulationResult result = simulate(inst, cdb, true);
  EXPECT_EQ(result.schedule.start(2), units(9.0));   // short buffers
  EXPECT_EQ(result.schedule.start(3), units(1.0));   // long starts now
}

TEST(Cdb, NameMentionsAlpha) {
  const CdbScheduler cdb(2.0);
  EXPECT_NE(cdb.name().find("cdb"), std::string::npos);
  EXPECT_NE(cdb.name().find("2"), std::string::npos);
}

}  // namespace
}  // namespace fjs
