#include "schedulers/profit.h"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.h"
#include "sim/engine.h"
#include "support/assert.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::units;

TEST(Profit, OptimalKMatchesTheorem411) {
  const double k = ProfitScheduler::optimal_k();
  EXPECT_NEAR(k, 1.0 + std::sqrt(2.0) / 2.0, 1e-12);
  const double bound = 2.0 * k + 2.0 + 1.0 / (k - 1.0);
  EXPECT_NEAR(bound, 4.0 + 2.0 * std::sqrt(2.0), 1e-9);
}

TEST(Profit, RejectsBadK) {
  EXPECT_THROW(ProfitScheduler(1.0), AssertionError);
  EXPECT_THROW(ProfitScheduler(0.5), AssertionError);
}

TEST(Profit, RequiresClairvoyance) {
  const Instance inst = make_instance({{0, 1, 1}});
  ProfitScheduler profit;
  EXPECT_THROW(simulate(inst, profit, false), AssertionError);
}

TEST(Profit, PendingProfitableJobsStartWithFlag) {
  // k = 1.5. Flag J0 (p=2) starts at its deadline 2. Pending J1 (p=3)
  // satisfies 3 <= 1.5*2 and starts with it; pending J2 (p=3.5) does not
  // and waits for its own deadline.
  const Instance inst =
      make_instance({{0, 2, 2}, {0, 9, 3}, {0, 9, 3.5}});
  ProfitScheduler profit(1.5);
  const SimulationResult result = simulate(inst, profit, true);
  EXPECT_EQ(result.schedule.start(0), units(2.0));
  EXPECT_EQ(result.schedule.start(1), units(2.0));
  EXPECT_EQ(result.schedule.start(2), units(9.0));
}

TEST(Profit, ArrivalProfitabilityUsesRemainingWindow) {
  // k = 1.5. Flag J0 (p=2) runs [2,4). J1 arrives at 3 with p=1.5:
  // 1.5 <= 1.5*(4-3) — profitable, starts at arrival. J2 arrives at 3
  // with p=1.6 — not profitable, waits.
  const Instance inst =
      make_instance({{0, 2, 2}, {3, 9, 1.5}, {3, 9, 1.6}});
  ProfitScheduler profit(1.5);
  const SimulationResult result = simulate(inst, profit, true);
  EXPECT_EQ(result.schedule.start(1), units(3.0));
  EXPECT_EQ(result.schedule.start(2), units(9.0));
}

TEST(Profit, FlagTieBreakPrefersLongestJob) {
  // Two jobs share the starting deadline 1: the longer (p=4) becomes the
  // flag; the shorter is profitable to it (1 <= k*4) and starts too.
  const Instance inst = make_instance({{0, 1, 1}, {0, 1, 4}});
  ProfitScheduler profit(1.5);
  const SimulationResult result = simulate(inst, profit, true, true);
  EXPECT_EQ(result.schedule.start(0), units(1.0));
  EXPECT_EQ(result.schedule.start(1), units(1.0));
  // The longer job defines the iteration window: a job arriving at 3 with
  // p = 1.5*(5-3) = 3 is profitable iff the flag was the LONG job
  // (window end 1+4=5), not the short one (window end 2).
  const Instance probe =
      make_instance({{0, 1, 1}, {0, 1, 4}, {3, 9, 3}});
  ProfitScheduler profit2(1.5);
  const SimulationResult r2 = simulate(probe, profit2, true);
  EXPECT_EQ(r2.schedule.start(2), units(3.0));
}

TEST(Profit, OverlappingFlagIterations) {
  // Flag J0 (p=10) runs [0,10). J1 (p=40) is not profitable (40 > k*10)
  // and hits its own deadline at 5 WHILE J0 runs — a second flag.
  // J2 arrives at 6 with p=3: profitable to J0's window (3 <= 1.5*4).
  // J3 arrives at 6 with p=50: profitable to neither flag
  // (50 > 1.5*(45-6) = 58.5? no wait 58.5 >= 50 — profitable to J1).
  const Instance inst =
      make_instance({{0, 0, 10}, {0, 5, 40}, {6, 90, 3}, {6, 90, 50}});
  ProfitScheduler profit(1.5);
  const SimulationResult result = simulate(inst, profit, true);
  EXPECT_EQ(result.schedule.start(0), units(0.0));
  EXPECT_EQ(result.schedule.start(1), units(5.0));   // own flag
  EXPECT_EQ(result.schedule.start(2), units(6.0));   // profitable to J0
  EXPECT_EQ(result.schedule.start(3), units(6.0));   // profitable to J1
}

TEST(Profit, NonProfitableArrivalWaitsForNextFlag) {
  // J1 (p=9) is not profitable to flag J0 (p=2, k=1.5 -> cap 3) at its
  // arrival. When J2 (p=8) flags at t=10, J1 (9 <= 1.5*8) starts with it.
  const Instance inst =
      make_instance({{0, 0, 2}, {1, 50, 9}, {4, 10, 8}});
  ProfitScheduler profit(1.5);
  const SimulationResult result = simulate(inst, profit, true);
  EXPECT_EQ(result.schedule.start(1), units(10.0));
  EXPECT_EQ(result.schedule.start(2), units(10.0));
}

TEST(Profit, FlagRemovedOnCompletion) {
  // After flag J0 [0,2) completes, J1 arriving at 2 sees no active flag
  // (half-open interval) and waits for its deadline.
  const Instance inst = make_instance({{0, 0, 2}, {2, 8, 1}});
  ProfitScheduler profit(2.0);
  const SimulationResult result = simulate(inst, profit, true);
  EXPECT_EQ(result.schedule.start(1), units(8.0));
}

TEST(Profit, NameMentionsK) {
  const ProfitScheduler profit(1.75);
  EXPECT_NE(profit.name().find("profit"), std::string::npos);
  EXPECT_NE(profit.name().find("1.75"), std::string::npos);
}

}  // namespace
}  // namespace fjs
