// Randomized property tests tying every scheduler to the paper's theory:
//  * every produced schedule is valid (starts within [a(J), d(J)]);
//  * no scheduler beats the exact offline optimum;
//  * Batch respects Theorem 3.4:   span <= (2μ+1)·OPT;
//  * Batch+ respects Theorem 3.5:  span <= (μ+1)·OPT;
//  * CDB respects Theorem 4.4:     span <= (3α+4+2/(α−1))·OPT;
//  * Profit respects Theorem 4.11: span <= (2k+2+1/(k−1))·OPT.
#include <gtest/gtest.h>

#include <cmath>

#include "helpers.h"
#include "offline/exact.h"
#include "offline/lower_bound.h"
#include "schedulers/classify_by_duration.h"
#include "schedulers/profit.h"
#include "schedulers/registry.h"
#include "sim/engine.h"

namespace fjs {
namespace {

class SchedulerProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Instance instance_ = testing::random_integral_instance(
      GetParam(), /*jobs=*/6, /*horizon=*/10, /*max_laxity=*/4,
      /*max_length=*/4);
};

TEST_P(SchedulerProperties, AllSchedulesValidAndAtLeastOpt) {
  const Time opt = exact_optimal_span(instance_);
  const Time lb = best_lower_bound(instance_);
  EXPECT_LE(lb, opt);
  for (const auto& spec : scheduler_registry()) {
    const auto scheduler = spec.make();
    const SimulationResult result =
        simulate(instance_, *scheduler, spec.clairvoyant);
    // simulate() validates internally; double-check here for the record.
    EXPECT_TRUE(result.schedule.is_valid(result.instance)) << spec.key;
    EXPECT_GE(result.span(), opt) << spec.key << " beat the exact optimum";
    EXPECT_GE(result.span(), lb) << spec.key;
  }
}

TEST_P(SchedulerProperties, BatchRespectsTheorem34) {
  const Time opt = exact_optimal_span(instance_);
  const double mu = instance_.mu();
  const auto batch = make_scheduler("batch");
  const Time span = simulate_span(instance_, *batch, false);
  EXPECT_LE(time_ratio(span, opt), 2.0 * mu + 1.0 + 1e-9)
      << instance_.to_string();
}

TEST_P(SchedulerProperties, BatchPlusRespectsTheorem35) {
  const Time opt = exact_optimal_span(instance_);
  const double mu = instance_.mu();
  const auto bp = make_scheduler("batch+");
  const Time span = simulate_span(instance_, *bp, false);
  EXPECT_LE(time_ratio(span, opt), mu + 1.0 + 1e-9) << instance_.to_string();
}

TEST_P(SchedulerProperties, CdbRespectsTheorem44) {
  const Time opt = exact_optimal_span(instance_);
  const double alpha = CdbScheduler::optimal_alpha();
  const double bound = 3.0 * alpha + 4.0 + 2.0 / (alpha - 1.0);
  const auto cdb = make_scheduler("cdb");
  const Time span = simulate_span(instance_, *cdb, true);
  EXPECT_LE(time_ratio(span, opt), bound + 1e-9) << instance_.to_string();
}

TEST_P(SchedulerProperties, ProfitRespectsTheorem411) {
  const Time opt = exact_optimal_span(instance_);
  const double k = ProfitScheduler::optimal_k();
  const double bound = 2.0 * k + 2.0 + 1.0 / (k - 1.0);
  const auto profit = make_scheduler("profit");
  const Time span = simulate_span(instance_, *profit, true);
  EXPECT_LE(time_ratio(span, opt), bound + 1e-9) << instance_.to_string();
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SchedulerProperties,
                         ::testing::Range<std::uint64_t>(0, 60));

/// Zero-laxity (rigid) instances: every scheduler is forced into the same
/// schedule, so all spans must coincide.
class RigidInstances : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RigidInstances, AllSchedulersCoincide) {
  const Instance inst = testing::random_integral_instance(
      GetParam() + 1000, /*jobs=*/8, /*horizon=*/10, /*max_laxity=*/0,
      /*max_length=*/4);
  Time first = Time::zero();
  bool first_set = false;
  for (const auto& spec : scheduler_registry()) {
    const auto scheduler = spec.make();
    const Time span = simulate_span(inst, *scheduler, spec.clairvoyant);
    if (!first_set) {
      first = span;
      first_set = true;
    } else {
      EXPECT_EQ(span, first) << spec.key;
    }
  }
  // And the exact optimum equals that forced span.
  EXPECT_EQ(exact_optimal_span(inst), first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RigidInstances,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace fjs
