#include "core/time.h"

#include <gtest/gtest.h>

#include "core/interval.h"
#include "support/assert.h"

namespace fjs {
namespace {

TEST(Time, UnitsRoundTrip) {
  EXPECT_EQ(Time::from_units(2.5).ticks(), 2'500'000);
  EXPECT_DOUBLE_EQ(Time::from_units(2.5).to_units(), 2.5);
  EXPECT_EQ(Time::from_units(-1.0).ticks(), -1'000'000);
}

TEST(Time, Arithmetic) {
  const Time a = Time::from_units(3.0);
  const Time b = Time::from_units(1.5);
  EXPECT_EQ((a + b).to_units(), 4.5);
  EXPECT_EQ((a - b).to_units(), 1.5);
  EXPECT_EQ((-b).to_units(), -1.5);
  EXPECT_EQ((a * 2).to_units(), 6.0);
  EXPECT_EQ((2 * a).to_units(), 6.0);
}

TEST(Time, Comparisons) {
  EXPECT_LT(Time(1), Time(2));
  EXPECT_EQ(Time(5), Time(5));
  EXPECT_GE(Time::max(), Time(123));
  EXPECT_LE(Time::min(), Time(-123));
}

TEST(Time, ScaledRounding) {
  EXPECT_EQ(Time(10).scaled(1.5).ticks(), 15);
  EXPECT_EQ(Time(3).scaled(0.5).ticks(), 2);  // round half to even-ish llround
  EXPECT_EQ(Time(1'000'000).scaled(1.6180339887).ticks(), 1'618'034);
}

TEST(Time, CheckedAddOverflowThrows) {
  const Time big = Time::max();
  EXPECT_THROW(big.checked_add(Time(1)), AssertionError);
  EXPECT_EQ(Time(5).checked_add(Time(6)).ticks(), 11);
}

TEST(Time, CheckedMulOverflowThrows) {
  const Time big(std::numeric_limits<std::int64_t>::max() / 2 + 1);
  EXPECT_THROW(big.checked_mul(2), AssertionError);
  EXPECT_EQ(Time(7).checked_mul(3).ticks(), 21);
}

TEST(Time, FromUnitsOverflowThrows) {
  EXPECT_THROW(Time::from_units(1e19), AssertionError);
}

TEST(Time, RatioAndToString) {
  EXPECT_DOUBLE_EQ(time_ratio(Time(3), Time(2)), 1.5);
  EXPECT_THROW(time_ratio(Time(1), Time(0)), AssertionError);
  EXPECT_EQ(Time::from_units(2.5).to_string(), "2.5");
}

TEST(Interval, LengthAndEmpty) {
  const Interval iv(Time(2), Time(5));
  EXPECT_EQ(iv.length().ticks(), 3);
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE(Interval(Time(5), Time(5)).empty());
  EXPECT_TRUE(Interval(Time(6), Time(5)).empty());
  EXPECT_EQ(Interval(Time(6), Time(5)).length().ticks(), 0);
}

TEST(Interval, HalfOpenContains) {
  const Interval iv(Time(2), Time(5));
  EXPECT_FALSE(iv.contains(Time(1)));
  EXPECT_TRUE(iv.contains(Time(2)));
  EXPECT_TRUE(iv.contains(Time(4)));
  EXPECT_FALSE(iv.contains(Time(5)));  // half-open
}

TEST(Interval, OverlapsIsExclusiveAtTouch) {
  const Interval a(Time(0), Time(2));
  const Interval b(Time(2), Time(4));
  EXPECT_FALSE(a.overlaps(b));  // [0,2) and [2,4) share no point
  EXPECT_TRUE(a.touches(b));    // but their union is one interval
  EXPECT_TRUE(a.overlaps(Interval(Time(1), Time(3))));
  EXPECT_FALSE(a.overlaps(Interval(Time(3), Time(3))));  // empty
}

TEST(Interval, IntersectAndCovers) {
  const Interval a(Time(0), Time(10));
  const Interval b(Time(5), Time(15));
  EXPECT_EQ(a.intersect(b), Interval(Time(5), Time(10)));
  EXPECT_TRUE(a.intersect(Interval(Time(20), Time(30))).empty());
  EXPECT_TRUE(a.covers(Interval(Time(2), Time(3))));
  EXPECT_TRUE(a.covers(Interval(Time(9), Time(4))));  // empty ⊆ anything
  EXPECT_FALSE(a.covers(b));
}

TEST(Interval, FromLength) {
  EXPECT_EQ(Interval::from_length(Time(3), Time(4)),
            Interval(Time(3), Time(7)));
}

}  // namespace
}  // namespace fjs
