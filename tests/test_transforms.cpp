#include "workload/transforms.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "support/assert.h"
#include "workload/generator.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::units;

TEST(Transforms, ScaleLaxity) {
  const Instance inst = make_instance({{0, 4, 1}, {2, 2, 1}});
  const Instance doubled = scale_laxity(inst, 2.0);
  EXPECT_EQ(doubled.job(0).deadline, units(8.0));
  EXPECT_EQ(doubled.job(1).deadline, units(2.0));  // zero stays zero
  const Instance rigid = scale_laxity(inst, 0.0);
  EXPECT_EQ(rigid.job(0).deadline, rigid.job(0).arrival);
  EXPECT_THROW(scale_laxity(inst, -1.0), AssertionError);
}

TEST(Transforms, ScaleLengths) {
  const Instance inst = make_instance({{0, 4, 2}});
  EXPECT_EQ(scale_lengths(inst, 1.5).job(0).length, units(3.0));
  EXPECT_THROW(scale_lengths(inst, 0.0), AssertionError);
}

TEST(Transforms, ShiftTimes) {
  const Instance inst = make_instance({{1, 3, 2}});
  const Instance shifted = shift_times(inst, units(10.0));
  EXPECT_EQ(shifted.job(0).arrival, units(11.0));
  EXPECT_EQ(shifted.job(0).deadline, units(13.0));
  EXPECT_EQ(shifted.job(0).length, units(2.0));
  // Negative shifts too.
  const Instance back = shift_times(shifted, units(-10.0));
  EXPECT_EQ(back.job(0).arrival, inst.job(0).arrival);
}

TEST(Transforms, MergeInstances) {
  const Instance a = make_instance({{0, 1, 1}});
  const Instance b = make_instance({{5, 6, 2}, {7, 8, 1}});
  const Instance merged = merge_instances(a, b);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged.job(0).arrival, units(0.0));
  EXPECT_EQ(merged.job(2).arrival, units(7.0));
  EXPECT_EQ(merged.job(2).id, 2u);  // renumbered
}

TEST(Transforms, Subsample) {
  WorkloadConfig cfg;
  cfg.job_count = 50;
  const Instance inst = generate_workload(cfg, 1);
  const Instance sub = subsample(inst, 10, 42);
  EXPECT_EQ(sub.size(), 10u);
  // Deterministic.
  const Instance sub2 = subsample(inst, 10, 42);
  for (JobId id = 0; id < sub.size(); ++id) {
    EXPECT_EQ(sub.job(id).arrival, sub2.job(id).arrival);
  }
  // Oversized count returns everything.
  EXPECT_EQ(subsample(inst, 100, 1).size(), 50u);
}

TEST(Transforms, SnapToGrid) {
  const Instance inst = make_instance({{0.4, 2.9, 1.2}, {1.7, 1.9, 0.3}});
  const Instance snapped = snap_to_grid(inst, units(1.0));
  EXPECT_TRUE(snapped.is_multiple_of(units(1.0)));
  EXPECT_EQ(snapped.job(0).arrival, units(0.0));   // floor
  EXPECT_EQ(snapped.job(0).length, units(2.0));    // ceil
  EXPECT_EQ(snapped.job(0).laxity(), units(2.0));  // floor(2.5)
  EXPECT_EQ(snapped.job(1).length, units(1.0));    // never zero
  EXPECT_EQ(snapped.job(1).laxity(), units(0.0));
  for (const Job& j : snapped.view().jobs()) {
    EXPECT_TRUE(j.valid());
  }
}

TEST(Transforms, MakeRigid) {
  WorkloadConfig cfg;
  cfg.job_count = 20;
  cfg.laxity_max = 5.0;
  const Instance rigid = make_rigid(generate_workload(cfg, 3));
  for (const Job& j : rigid.view().jobs()) {
    EXPECT_EQ(j.laxity(), Time::zero());
  }
}

TEST(Transforms, ComposedPipeline) {
  WorkloadConfig cfg;
  cfg.job_count = 30;
  const Instance inst = generate_workload(cfg, 9);
  const Instance processed =
      snap_to_grid(scale_laxity(shift_times(inst, units(5.0)), 3.0),
                   units(1.0));
  EXPECT_EQ(processed.size(), 30u);
  EXPECT_TRUE(processed.is_multiple_of(units(1.0)));
}

}  // namespace
}  // namespace fjs
