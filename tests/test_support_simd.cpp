// The SIMD layer's bit-identity contract (support/simd.h): every tier
// compiled into the binary must agree with the scalar tier byte for byte,
// on every kernel, including the awkward inputs vector code gets wrong
// first — saturating lanes, INT64 extremes, duplicate keys, and every
// tail length against the vector widths. The fuzz oracle re-checks the
// same comparisons on generated instances; these tests pin the
// hand-picked corners and the dispatch/force-scalar plumbing.
#include "support/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/time.h"

namespace fjs {
namespace {

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

std::vector<simd::Tier> vector_tiers() {
  std::vector<simd::Tier> tiers;
  for (const simd::Tier tier : simd::compiled_tiers()) {
    if (tier != simd::Tier::kScalar) {
      tiers.push_back(tier);
    }
  }
  return tiers;
}

std::vector<Time> as_times(const std::vector<std::int64_t>& ticks) {
  std::vector<Time> out;
  out.reserve(ticks.size());
  for (const std::int64_t t : ticks) {
    out.emplace_back(t);
  }
  return out;
}

// Deterministic value mix covering sign changes, saturation-adjacent
// magnitudes and duplicates; length n exercises whichever tail the tier's
// vector width leaves over.
std::vector<Time> mixed_values(std::size_t n, std::int64_t salt = 0) {
  std::vector<std::int64_t> ticks(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto j = static_cast<std::int64_t>(i);
    switch (i % 7) {
      case 0: ticks[i] = j * 977 + salt; break;
      case 1: ticks[i] = -(j * 31) - salt; break;
      case 2: ticks[i] = kMax - j; break;
      case 3: ticks[i] = Time::min().ticks() + j + 1; break;
      case 4: ticks[i] = 42; break;  // duplicates
      case 5: ticks[i] = 0; break;
      default: ticks[i] = (j % 2 == 0 ? 1 : -1) * (kMax / (j + 2)); break;
    }
  }
  return as_times(ticks);
}

TEST(SimdDispatch, CompiledTiersStartWithScalar) {
  const std::vector<simd::Tier>& tiers = simd::compiled_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), simd::Tier::kScalar);
  EXPECT_STREQ(simd::tier_name(simd::Tier::kScalar), "scalar");
}

TEST(SimdDispatch, ForceScalarRoutesActiveTier) {
  const simd::Tier before = simd::active_tier();
  simd::set_force_scalar(true);
  EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);
  simd::set_force_scalar(false);
  EXPECT_EQ(simd::active_tier(), before);
}

TEST(SimdMinMax, AllTiersMatchScalarOnAllTails) {
  for (const simd::Tier tier : vector_tiers()) {
    for (std::size_t n = 1; n <= 33; ++n) {
      const std::vector<Time> v = mixed_values(n);
      const simd::MinMax s =
          simd::minmax_ticks(v.data(), n, simd::Tier::kScalar);
      const simd::MinMax t = simd::minmax_ticks(v.data(), n, tier);
      EXPECT_EQ(t.min, s.min) << simd::tier_name(tier) << " n=" << n;
      EXPECT_EQ(t.max, s.max) << simd::tier_name(tier) << " n=" << n;
    }
  }
}

TEST(SimdMinMax, SingleElementAndAllEqual) {
  const std::vector<Time> one = as_times({kMax});
  const std::vector<Time> equal(17, Time(-7));
  for (const simd::Tier tier : simd::compiled_tiers()) {
    const simd::MinMax a = simd::minmax_ticks(one.data(), 1, tier);
    EXPECT_EQ(a.min, kMax);
    EXPECT_EQ(a.max, kMax);
    const simd::MinMax b = simd::minmax_ticks(equal.data(), equal.size(), tier);
    EXPECT_EQ(b.min, -7);
    EXPECT_EQ(b.max, -7);
  }
}

TEST(SimdSatSum, ExactTotalsAndOverflowFlagMatchScalar) {
  // Non-negative contract; include near-max addends that force the
  // overflow flag in some prefixes but not others.
  const std::vector<std::vector<std::int64_t>> cases = {
      {0},
      {kMax},
      {kMax, 1},
      {1, kMax},
      {kMax / 2, kMax / 2, 3},
      {5, 9, 13, 2, 0, 7, 11, 1, 3},
      {kMax / 8, kMax / 8, kMax / 8, kMax / 8, kMax / 8, kMax / 8, kMax / 8,
       kMax / 8, kMax / 8},
  };
  for (const auto& ticks : cases) {
    const std::vector<Time> v = as_times(ticks);
    const simd::SatSum s =
        simd::sum_saturating_nonneg(v.data(), v.size(), simd::Tier::kScalar);
    for (const simd::Tier tier : vector_tiers()) {
      const simd::SatSum t = simd::sum_saturating_nonneg(v.data(), v.size(), tier);
      EXPECT_EQ(t.sum, s.sum) << simd::tier_name(tier);
      EXPECT_EQ(t.overflowed, s.overflowed) << simd::tier_name(tier);
    }
  }
}

TEST(SimdSatSum, TailLengthsAgainstEveryTier) {
  for (const simd::Tier tier : vector_tiers()) {
    for (std::size_t n = 1; n <= 19; ++n) {
      std::vector<std::int64_t> ticks(n);
      for (std::size_t i = 0; i < n; ++i) {
        ticks[i] = (i % 3 == 0) ? kMax / 4 : static_cast<std::int64_t>(i);
      }
      const std::vector<Time> v = as_times(ticks);
      const simd::SatSum s =
          simd::sum_saturating_nonneg(v.data(), n, simd::Tier::kScalar);
      const simd::SatSum t = simd::sum_saturating_nonneg(v.data(), n, tier);
      EXPECT_EQ(t.sum, s.sum) << simd::tier_name(tier) << " n=" << n;
      EXPECT_EQ(t.overflowed, s.overflowed)
          << simd::tier_name(tier) << " n=" << n;
    }
  }
}

TEST(SimdMaxPairwise, OverflowDetectionMatchesScalar) {
  const std::vector<std::pair<std::vector<std::int64_t>,
                              std::vector<std::int64_t>>>
      cases = {
          {{1, 2, 3}, {4, 5, 6}},
          {{kMax, 0}, {1, 0}},                      // overflow in lane 0
          {{kMax - 5, 1, 2, 3, 4}, {5, 1, 1, 1, 1}},  // exactly at max
          {{Time::min().ticks(), 0}, {-1, 0}},      // negative overflow
          {{-3, -9, kMax / 2}, {-4, 2, kMax / 2}},
      };
  for (const auto& [a_ticks, b_ticks] : cases) {
    const std::vector<Time> a = as_times(a_ticks);
    const std::vector<Time> b = as_times(b_ticks);
    const simd::MaxSum s =
        simd::max_pairwise_sum(a.data(), b.data(), a.size(),
                               simd::Tier::kScalar);
    for (const simd::Tier tier : vector_tiers()) {
      const simd::MaxSum t =
          simd::max_pairwise_sum(a.data(), b.data(), a.size(), tier);
      EXPECT_EQ(t.overflowed, s.overflowed) << simd::tier_name(tier);
      if (!s.overflowed) {
        EXPECT_EQ(t.max, s.max) << simd::tier_name(tier);
      }
    }
  }
}

TEST(SimdSaturatingSumInto, ClampsBySignOfRhsOnEveryTier) {
  // Time::saturating_add clamps toward the sign of the right-hand side;
  // every lane must reproduce that exact rule at both extremes.
  const std::vector<std::int64_t> a_ticks = {kMax, Time::min().ticks(), 5,
                                             kMax - 1, -3, 0, kMax, 7};
  const std::vector<std::int64_t> b_ticks = {1, -1, 9, 2, -8, 0, kMax, -7};
  const std::vector<Time> a = as_times(a_ticks);
  const std::vector<Time> b = as_times(b_ticks);
  for (std::size_t n = 1; n <= a.size(); ++n) {
    std::vector<std::int64_t> expect(n);
    for (std::size_t i = 0; i < n; ++i) {
      expect[i] = a[i].saturating_add(b[i]).ticks();
    }
    for (const simd::Tier tier : simd::compiled_tiers()) {
      std::vector<std::int64_t> out(n, -12345);
      simd::saturating_sum_into(a.data(), b.data(), out.data(), n, tier);
      EXPECT_EQ(out, expect) << simd::tier_name(tier) << " n=" << n;
    }
  }
}

TEST(SimdSort, RadixMatchesComparatorAboveCutoff) {
  // 100 keys exceeds the radix cutoff; duplicates force the stability /
  // (key, id) total-order claim, negative keys force the sign flip.
  std::vector<std::int64_t> ticks(100);
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    const auto j = static_cast<std::int64_t>(i);
    ticks[i] = ((j * 2654435761LL) % 17) - 8;  // heavy duplication, signed
  }
  ticks[3] = kMax;
  ticks[97] = Time::min().ticks();
  const std::vector<Time> keys = as_times(ticks);
  std::vector<JobId> scalar_ids;
  simd::sort_ids_by_key(keys.data(), keys.size(), scalar_ids,
                        simd::Tier::kScalar);
  for (const simd::Tier tier : vector_tiers()) {
    std::vector<JobId> ids;
    simd::sort_ids_by_key(keys.data(), keys.size(), ids, tier);
    EXPECT_EQ(ids, scalar_ids) << simd::tier_name(tier);
  }
}

TEST(SimdSort, AllEqualKeysKeepAscendingIds) {
  const std::vector<Time> keys(150, Time(4));
  for (const simd::Tier tier : simd::compiled_tiers()) {
    std::vector<JobId> ids;
    simd::sort_ids_by_key(keys.data(), keys.size(), ids, tier);
    ASSERT_EQ(ids.size(), keys.size()) << simd::tier_name(tier);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(ids[i], static_cast<JobId>(i)) << simd::tier_name(tier);
    }
  }
}

TEST(SimdLockstep, AllLaneCountsMatchScalar) {
  // rows x lanes batches for every lane count that produces a distinct
  // vector tail; rows include saturating d + p and sum-p saturation.
  const std::size_t rows = 6;
  for (std::size_t lanes = 1; lanes <= 9; ++lanes) {
    std::vector<std::int64_t> a(rows * lanes);
    std::vector<std::int64_t> d(rows * lanes);
    std::vector<std::int64_t> p(rows * lanes);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t k = 0; k < lanes; ++k) {
        const std::size_t idx = r * lanes + k;
        const auto rk = static_cast<std::int64_t>(r * 31 + k * 7);
        a[idx] = rk - 40;
        d[idx] = (r == 2) ? kMax - 3 : rk;
        p[idx] = (r == 4) ? kMax / 2 : rk % 11 + 1;
      }
    }
    std::vector<std::int64_t> s_out(4 * lanes, -1);
    simd::lockstep_screen(a.data(), d.data(), p.data(), rows, lanes,
                          s_out.data(), s_out.data() + lanes,
                          s_out.data() + 2 * lanes, s_out.data() + 3 * lanes,
                          simd::Tier::kScalar);
    for (const simd::Tier tier : vector_tiers()) {
      std::vector<std::int64_t> t_out(4 * lanes, -2);
      simd::lockstep_screen(a.data(), d.data(), p.data(), rows, lanes,
                            t_out.data(), t_out.data() + lanes,
                            t_out.data() + 2 * lanes,
                            t_out.data() + 3 * lanes, tier);
      EXPECT_EQ(t_out, s_out) << simd::tier_name(tier) << " lanes=" << lanes;
    }
  }
}

TEST(SimdLockstep, SumPFollowsSaturatingAddStepwise) {
  // One lane whose running sum saturates at max and then meets a negative
  // addend: Time::saturating_add semantics clamp per step, so the final
  // value must drop back below max exactly as the scalar walk does.
  const std::size_t rows = 3;
  const std::vector<std::int64_t> a = {0, 0, 0};
  const std::vector<std::int64_t> d = {0, 0, 0};
  const std::vector<std::int64_t> p = {kMax, kMax, -5};
  std::int64_t expect = 0;
  for (const std::int64_t step : p) {
    expect = Time(expect).saturating_add(Time(step)).ticks();
  }
  for (const simd::Tier tier : simd::compiled_tiers()) {
    std::int64_t min_a = -1;
    std::int64_t max_dp = -1;
    std::int64_t max_p = -1;
    std::int64_t sum_p = -1;
    simd::lockstep_screen(a.data(), d.data(), p.data(), rows, 1, &min_a,
                          &max_dp, &max_p, &sum_p, tier);
    EXPECT_EQ(sum_p, expect) << simd::tier_name(tier);
    EXPECT_EQ(max_p, kMax) << simd::tier_name(tier);
  }
}

}  // namespace
}  // namespace fjs
