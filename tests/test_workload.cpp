#include "workload/generator.h"

#include <gtest/gtest.h>

#include "support/assert.h"
#include "workload/cloud_trace.h"
#include "workload/suite.h"

namespace fjs {
namespace {

TEST(Workload, DeterministicForSeed) {
  WorkloadConfig cfg;
  cfg.job_count = 50;
  const Instance a = generate_workload(cfg, 123);
  const Instance b = generate_workload(cfg, 123);
  ASSERT_EQ(a.size(), b.size());
  for (JobId id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a.job(id).arrival, b.job(id).arrival);
    EXPECT_EQ(a.job(id).deadline, b.job(id).deadline);
    EXPECT_EQ(a.job(id).length, b.job(id).length);
  }
}

TEST(Workload, DifferentSeedsDiffer) {
  WorkloadConfig cfg;
  cfg.job_count = 50;
  const Instance a = generate_workload(cfg, 1);
  const Instance b = generate_workload(cfg, 2);
  bool any_diff = false;
  for (JobId id = 0; id < a.size() && !any_diff; ++id) {
    any_diff = a.job(id).arrival != b.job(id).arrival ||
               a.job(id).length != b.job(id).length;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Workload, RespectsCountAndRanges) {
  WorkloadConfig cfg;
  cfg.job_count = 200;
  cfg.length_min = 2.0;
  cfg.length_max = 5.0;
  cfg.laxity_min = 1.0;
  cfg.laxity_max = 3.0;
  const Instance inst = generate_workload(cfg, 7);
  ASSERT_EQ(inst.size(), 200u);
  for (const Job& j : inst.view().jobs()) {
    EXPECT_GE(j.length, Time::from_units(2.0));
    EXPECT_LE(j.length, Time::from_units(5.0));
    EXPECT_GE(j.laxity(), Time::from_units(1.0));
    EXPECT_LE(j.laxity(), Time::from_units(3.0) + Time(1));
  }
}

TEST(Workload, ZeroLaxityModel) {
  WorkloadConfig cfg;
  cfg.job_count = 30;
  cfg.laxity = LaxityModel::kZero;
  const Instance inst = generate_workload(cfg, 3);
  for (const Job& j : inst.view().jobs()) {
    EXPECT_EQ(j.laxity(), Time::zero());
  }
}

TEST(Workload, ProportionalLaxity) {
  WorkloadConfig cfg;
  cfg.job_count = 30;
  cfg.laxity = LaxityModel::kProportional;
  cfg.laxity_factor = 2.0;
  const Instance inst = generate_workload(cfg, 3);
  for (const Job& j : inst.view().jobs()) {
    EXPECT_NEAR(time_ratio(j.laxity(), j.length), 2.0, 1e-5);
  }
}

TEST(Workload, BimodalLengthsAreTwoValued) {
  WorkloadConfig cfg;
  cfg.job_count = 100;
  cfg.lengths = LengthDistribution::kBimodal;
  cfg.length_min = 1.0;
  cfg.length_max = 8.0;
  const Instance inst = generate_workload(cfg, 11);
  for (const Job& j : inst.view().jobs()) {
    EXPECT_TRUE(j.length == Time::from_units(1.0) ||
                j.length == Time::from_units(8.0));
  }
  EXPECT_DOUBLE_EQ(inst.mu(), 8.0);
}

TEST(Workload, FixedLengthDistribution) {
  WorkloadConfig cfg;
  cfg.job_count = 20;
  cfg.lengths = LengthDistribution::kFixed;
  cfg.length_min = 3.0;
  const Instance inst = generate_workload(cfg, 5);
  for (const Job& j : inst.view().jobs()) {
    EXPECT_EQ(j.length, Time::from_units(3.0));
  }
}

TEST(Workload, IntegralSnapsToGrid) {
  WorkloadConfig cfg;
  cfg.job_count = 60;
  cfg.integral = true;
  const Instance inst = generate_workload(cfg, 17);
  EXPECT_TRUE(inst.is_multiple_of(Time(Time::kTicksPerUnit)));
  for (const Job& j : inst.view().jobs()) {
    EXPECT_GE(j.length, Time::from_units(1.0));
  }
}

TEST(Workload, PeriodicArrivalsEvenlySpaced) {
  WorkloadConfig cfg;
  cfg.job_count = 10;
  cfg.arrivals = ArrivalProcess::kPeriodic;
  cfg.arrival_rate = 2.0;  // every 0.5 units
  const Instance inst = generate_workload(cfg, 23);
  for (JobId id = 1; id < inst.size(); ++id) {
    EXPECT_EQ(inst.job(id).arrival - inst.job(id - 1).arrival,
              Time::from_units(0.5));
  }
}

TEST(Workload, BurstyProducesSimultaneousArrivals) {
  WorkloadConfig cfg;
  cfg.job_count = 200;
  cfg.arrivals = ArrivalProcess::kBursty;
  cfg.burst_size_mean = 8.0;
  const Instance inst = generate_workload(cfg, 29);
  std::size_t simultaneous = 0;
  for (JobId id = 1; id < inst.size(); ++id) {
    if (inst.job(id).arrival == inst.job(id - 1).arrival) {
      ++simultaneous;
    }
  }
  EXPECT_GT(simultaneous, 50u);
}

TEST(Workload, RejectsBadConfig) {
  WorkloadConfig cfg;
  cfg.job_count = 0;
  EXPECT_THROW(generate_workload(cfg, 1), AssertionError);
  cfg = {};
  cfg.length_min = -1.0;
  EXPECT_THROW(generate_workload(cfg, 1), AssertionError);
  cfg = {};
  cfg.arrival_rate = 0.0;
  EXPECT_THROW(generate_workload(cfg, 1), AssertionError);
}

TEST(Suite, StandardSuiteShape) {
  const auto& suite = standard_suite();
  EXPECT_EQ(suite.size(), 8u);
  for (const auto& named : suite) {
    EXPECT_FALSE(named.name.empty());
    // Every family must actually generate.
    const Instance inst = generate_workload(named.config, 1);
    EXPECT_EQ(inst.size(), named.config.job_count);
  }
}

TEST(Suite, IntegralSuiteOnGrid) {
  for (const auto& named : integral_suite(12)) {
    const Instance inst = generate_workload(named.config, 2);
    EXPECT_EQ(inst.size(), 12u);
    EXPECT_TRUE(inst.is_multiple_of(Time(Time::kTicksPerUnit)))
        << named.name;
  }
}

TEST(CloudTrace, GeneratesAlignedArrays) {
  CloudTraceConfig cfg;
  cfg.job_count = 120;
  const CloudTrace trace = generate_cloud_trace(cfg, 99);
  EXPECT_EQ(trace.instance.size(), 120u);
  EXPECT_EQ(trace.sizes.size(), 120u);
  EXPECT_EQ(trace.class_of.size(), 120u);
  for (std::size_t i = 0; i < trace.sizes.size(); ++i) {
    EXPECT_GT(trace.sizes[i], 0.0);
    EXPECT_LE(trace.sizes[i], 1.0);
    EXPECT_LT(trace.class_of[i], trace.classes.size());
  }
}

TEST(CloudTrace, Deterministic) {
  CloudTraceConfig cfg;
  cfg.job_count = 40;
  const CloudTrace a = generate_cloud_trace(cfg, 4);
  const CloudTrace b = generate_cloud_trace(cfg, 4);
  for (JobId id = 0; id < a.instance.size(); ++id) {
    EXPECT_EQ(a.instance.job(id).arrival, b.instance.job(id).arrival);
  }
  EXPECT_EQ(a.sizes, b.sizes);
}

TEST(CloudTrace, ClassLaxityRespected) {
  CloudTraceConfig cfg;
  cfg.job_count = 150;
  const CloudTrace trace = generate_cloud_trace(cfg, 5);
  for (JobId id = 0; id < trace.instance.size(); ++id) {
    const auto& cls = trace.classes[trace.class_of[id]];
    const Job& j = trace.instance.job(id);
    EXPECT_NEAR(time_ratio(j.laxity(), j.length), cls.laxity_factor, 1e-5)
        << cls.name;
  }
}

TEST(CloudTrace, RejectsBadConfig) {
  CloudTraceConfig cfg;
  cfg.job_count = 0;
  EXPECT_THROW(generate_cloud_trace(cfg, 1), AssertionError);
  cfg = {};
  cfg.diurnal_amplitude = 1.5;
  EXPECT_THROW(generate_cloud_trace(cfg, 1), AssertionError);
}

}  // namespace
}  // namespace fjs
