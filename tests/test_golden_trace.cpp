// Golden-trace regression test: the exact event sequence of a small,
// carefully chosen Batch+ run is pinned down entry by entry. Any change
// to the engine's same-tick ordering or the scheduler's iteration logic
// shows up here first, with a readable diff.
#include <gtest/gtest.h>

#include <vector>

#include "helpers.h"
#include "schedulers/batch_plus.h"
#include "sim/engine.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::units;

TEST(GoldenTrace, BatchPlusCanonicalRun) {
  // J0: rigid at t=0, runs [0,1)            (iteration 1 flag)
  // J1: arrives 0.5 inside the flag          -> starts at 0.5, runs [0.5,1.5)
  // J2: arrives exactly at the flag's completion (1.0) -> buffers,
  //     becomes iteration 2's flag at its deadline 2, runs [2,3)
  // J3: arrives 2.5 inside iteration 2       -> starts at 2.5, runs [2.5,3.5)
  const Instance inst = make_instance(
      {{0, 0, 1}, {0.5, 9, 1}, {1, 2, 1}, {2.5, 9, 1}});
  BatchPlusScheduler bp;
  const SimulationResult result = simulate(inst, bp, false, true);

  struct Expected {
    double time;
    EventKind kind;
    JobId job;
  };
  const std::vector<Expected> expected = {
      {0.0, EventKind::kArrival, 0},
      {0.0, EventKind::kDeadline, 0},   // zero laxity: deadline same tick
      {0.0, EventKind::kStart, 0},      // flag starts inside the deadline event
      {0.5, EventKind::kArrival, 1},
      {0.5, EventKind::kStart, 1},      // started immediately (flag active)
      {1.0, EventKind::kCompletion, 0}, // flag completes BEFORE J2's arrival
      {1.0, EventKind::kArrival, 2},    // same tick, ordered after completion
      {1.5, EventKind::kCompletion, 1},
      {2.0, EventKind::kDeadline, 2},
      {2.0, EventKind::kStart, 2},
      {2.5, EventKind::kArrival, 3},
      {2.5, EventKind::kStart, 3},
      {3.0, EventKind::kCompletion, 2},
      {3.5, EventKind::kCompletion, 3},
  };
  ASSERT_EQ(result.trace.size(), expected.size())
      << result.trace.to_string();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const TraceEntry& entry = result.trace.entry(i);
    EXPECT_EQ(entry.time, units(expected[i].time)) << "entry " << i;
    EXPECT_EQ(entry.kind, expected[i].kind) << "entry " << i;
    EXPECT_EQ(entry.job, expected[i].job) << "entry " << i;
  }
}

TEST(GoldenTrace, SpanOfCanonicalRun) {
  const Instance inst = make_instance(
      {{0, 0, 1}, {0.5, 9, 1}, {1, 2, 1}, {2.5, 9, 1}});
  BatchPlusScheduler bp;
  const SimulationResult result = simulate(inst, bp, false);
  // Active intervals: [0,1), [0.5,1.5), [2,3), [2.5,3.5)
  // Union: [0,1.5) ∪ [2,3.5) -> measure 3.
  EXPECT_EQ(result.span(), units(3.0));
}

}  // namespace
}  // namespace fjs
