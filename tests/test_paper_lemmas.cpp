// Computational checks of the PROOF STRUCTURE of the paper's theorems, not
// just their final bounds. Each lemma's inequality is asserted on random
// instances via the schedulers' flag-history introspection:
//
//  * Thm 3.4/3.5 proofs: flag deadlines increase; each Batch+ flag arrives
//    after the previous flag's latest completion; OPT >= Σ p(flags).
//  * Lemma 4.2: span(CDB) <= (α+1) · span(flag set).
//  * Lemma 4.3 (conclusion): CDB flag-set span <= (3 + 1/(α−1)) · OPT(flags).
//  * Lemma 4.5: span(Profit) <= k · span(flag set).
//  * Lemma 4.6: Profit flags complete in starting-deadline order.
//  * Lemma 4.10 (conclusion): Profit flag-set span
//        <= (2 + 1/k + 1/(k−1)) · OPT(flags).
#include <gtest/gtest.h>

#include <vector>

#include "core/interval_set.h"
#include "helpers.h"
#include "offline/exact.h"
#include "schedulers/batch.h"
#include "schedulers/batch_plus.h"
#include "schedulers/classify_by_duration.h"
#include "schedulers/profit.h"
#include "sim/engine.h"

namespace fjs {
namespace {

/// Sub-instance containing only the given jobs (re-indexed).
Instance sub_instance(const Instance& inst, const std::vector<JobId>& ids) {
  std::vector<Job> jobs;
  for (const JobId id : ids) {
    jobs.push_back(inst.job(id));
  }
  return Instance(std::move(jobs));
}

/// Union of [d(J), d(J)+p(J)) over the given jobs — the "span of the flag
/// jobs in the schedule" (flags start at their deadlines).
Time flag_span(const Instance& inst, const std::vector<JobId>& ids) {
  IntervalSet set;
  for (const JobId id : ids) {
    const Job& j = inst.job(id);
    set.add(Interval::from_length(j.deadline, j.length));
  }
  return set.measure();
}

class PaperLemmas : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Instance instance_ = testing::random_integral_instance(
      GetParam() + 7000, /*jobs=*/10, /*horizon=*/14, /*max_laxity=*/5,
      /*max_length=*/5);
};

TEST_P(PaperLemmas, BatchFlagDeadlinesStrictlyIncrease) {
  BatchScheduler batch;
  const SimulationResult result = simulate(instance_, batch, false);
  const auto& flags = batch.flag_history();
  ASSERT_FALSE(flags.empty());
  for (std::size_t i = 1; i < flags.size(); ++i) {
    EXPECT_GT(result.instance.job(flags[i]).deadline,
              result.instance.job(flags[i - 1]).deadline);
  }
}

TEST_P(PaperLemmas, BatchPlusFlagSeparation) {
  // Theorem 3.5's key step: flag J_{i+1} arrives no earlier than
  // d(J_i) + p(J_i), so flag active intervals can never overlap under ANY
  // schedule (intervals are half-open, so arrival exactly at d+p is fine).
  BatchPlusScheduler bp;
  const SimulationResult result = simulate(instance_, bp, false);
  const auto& flags = bp.flag_history();
  ASSERT_FALSE(flags.empty());
  for (std::size_t i = 1; i < flags.size(); ++i) {
    const Job& prev = result.instance.job(flags[i - 1]);
    const Job& next = result.instance.job(flags[i]);
    EXPECT_GE(next.arrival, prev.latest_completion())
        << result.instance.to_string();
    // Flags start at their deadlines.
    EXPECT_EQ(result.schedule.start(flags[i]), next.deadline);
  }
}

TEST_P(PaperLemmas, BatchPlusOptAtLeastSumOfFlagLengths) {
  BatchPlusScheduler bp;
  const SimulationResult result = simulate(instance_, bp, false);
  Time flag_work = Time::zero();
  for (const JobId id : bp.flag_history()) {
    flag_work += result.instance.job(id).length;
  }
  EXPECT_GE(exact_optimal_span(result.instance), flag_work);
  // ... and the Batch+ span is within (μ+1) of that certificate.
  EXPECT_LE(time_ratio(result.span(), flag_work),
            result.instance.mu() + 1.0 + 1e-9);
}

TEST_P(PaperLemmas, Lemma42CdbSpanVsFlagSpan) {
  const double alpha = CdbScheduler::optimal_alpha();
  CdbScheduler cdb(alpha);
  const SimulationResult result = simulate(instance_, cdb, true);
  std::vector<JobId> flag_ids;
  for (const auto& record : cdb.flag_history()) {
    flag_ids.push_back(record.id);
  }
  ASSERT_FALSE(flag_ids.empty());
  const Time fspan = flag_span(result.instance, flag_ids);
  EXPECT_LE(static_cast<double>(result.span().ticks()),
            (alpha + 1.0) * static_cast<double>(fspan.ticks()) * (1 + 1e-12))
      << result.instance.to_string();
}

TEST_P(PaperLemmas, Lemma43CdbFlagSpanVsFlagOpt) {
  const double alpha = CdbScheduler::optimal_alpha();
  CdbScheduler cdb(alpha);
  const SimulationResult result = simulate(instance_, cdb, true);
  std::vector<JobId> flag_ids;
  for (const auto& record : cdb.flag_history()) {
    flag_ids.push_back(record.id);
  }
  const Instance flags = sub_instance(result.instance, flag_ids);
  const Time flag_opt = exact_optimal_span(flags);
  const Time fspan = flag_span(result.instance, flag_ids);
  const double bound = 3.0 + 1.0 / (alpha - 1.0);
  EXPECT_LE(time_ratio(fspan, flag_opt), bound + 1e-9)
      << result.instance.to_string();
}

TEST_P(PaperLemmas, Lemma45ProfitSpanVsFlagSpan) {
  const double k = ProfitScheduler::optimal_k();
  ProfitScheduler profit(k);
  const SimulationResult result = simulate(instance_, profit, true);
  std::vector<JobId> flag_ids;
  for (const auto& flag : profit.flag_history()) {
    flag_ids.push_back(flag.id);
  }
  ASSERT_FALSE(flag_ids.empty());
  const Time fspan = flag_span(result.instance, flag_ids);
  EXPECT_LE(static_cast<double>(result.span().ticks()),
            k * static_cast<double>(fspan.ticks()) * (1 + 1e-12))
      << result.instance.to_string();
}

TEST_P(PaperLemmas, Lemma46ProfitFlagsCompleteInDeadlineOrder) {
  ProfitScheduler profit;
  const SimulationResult result = simulate(instance_, profit, true);
  const auto& flags = profit.flag_history();
  for (std::size_t i = 1; i < flags.size(); ++i) {
    // Designation order = deadline order; completions must follow it.
    const Job& prev = result.instance.job(flags[i - 1].id);
    const Job& next = result.instance.job(flags[i].id);
    EXPECT_LT(prev.deadline, next.deadline);
    EXPECT_LT(flags[i - 1].end, flags[i].end)
        << "Lemma 4.6 violated on\n" << result.instance.to_string();
  }
}

TEST_P(PaperLemmas, Lemma410ProfitFlagSpanVsFlagOpt) {
  const double k = ProfitScheduler::optimal_k();
  ProfitScheduler profit(k);
  const SimulationResult result = simulate(instance_, profit, true);
  std::vector<JobId> flag_ids;
  for (const auto& flag : profit.flag_history()) {
    flag_ids.push_back(flag.id);
  }
  const Instance flags = sub_instance(result.instance, flag_ids);
  const Time flag_opt = exact_optimal_span(flags);
  const Time fspan = flag_span(result.instance, flag_ids);
  const double bound = 2.0 + 1.0 / k + 1.0 / (k - 1.0);
  EXPECT_LE(time_ratio(fspan, flag_opt), bound + 1e-9)
      << result.instance.to_string();
}

TEST_P(PaperLemmas, Lemmas47To49ProfitFlagForest) {
  // Reconstruct the §4.3 graph G(F, E): for each flag J, X(J) = flags J'
  // with a(J') < d(J)+p(J) and d(J) < d(J'); J's parent is the member of
  // X(J) with the earliest deadline. The paper proves: the graph is a
  // forest (4.7) and flags in different trees can never overlap under any
  // schedule (4.9).
  ProfitScheduler profit;
  const SimulationResult result = simulate(instance_, profit, true);
  const auto& flags = profit.flag_history();
  const std::size_t n = flags.size();
  const Instance& inst = result.instance;

  std::vector<std::size_t> parent(n, n);  // n = root (X empty)
  for (std::size_t i = 0; i < n; ++i) {
    const Job& ji = inst.job(flags[i].id);
    std::size_t best = n;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) {
        continue;
      }
      const Job& jj = inst.job(flags[j].id);
      // jj ∈ X(ji): arrives before ji's latest completion, started after.
      if (jj.arrival < ji.latest_completion() && ji.deadline < jj.deadline) {
        if (best == n ||
            jj.deadline < inst.job(flags[best].id).deadline) {
          best = j;
        }
      }
    }
    parent[i] = best;
  }
  // Forest check: following parents must terminate (deadlines strictly
  // increase along parent edges, so cycles are impossible — verify).
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t hops = 0;
    for (std::size_t cur = i; parent[cur] != n; cur = parent[cur]) {
      EXPECT_GT(inst.job(flags[parent[cur]].id).deadline,
                inst.job(flags[cur].id).deadline);
      ASSERT_LE(++hops, n) << "cycle in the flag graph";
    }
  }
  // Lemma 4.9: flags with NO path between them (different trees, or
  // non-ancestor pairs within a tree) can never overlap under ANY
  // schedule: the later-deadline one arrives at/after the earlier's
  // latest possible completion. (Edges point toward smaller deadlines, so
  // the only possible path between i < j — designation order = deadline
  // order — is j being an ancestor of i.)
  auto is_ancestor = [&](std::size_t anc, std::size_t node) {
    for (std::size_t cur = node; parent[cur] != n; cur = parent[cur]) {
      if (parent[cur] == anc) {
        return true;
      }
    }
    return false;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (is_ancestor(j, i)) {
        continue;
      }
      const Job& early = inst.job(flags[i].id);
      const Job& late = inst.job(flags[j].id);
      EXPECT_GE(late.arrival, early.latest_completion())
          << "Lemma 4.9 violated on\n" << inst.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, PaperLemmas,
                         ::testing::Range<std::uint64_t>(0, 50));

}  // namespace
}  // namespace fjs
