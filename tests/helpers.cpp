#include "helpers.h"

#include "support/rng.h"

namespace fjs::testing {

Instance random_integral_instance(std::uint64_t seed, std::size_t jobs,
                                  std::int64_t horizon,
                                  std::int64_t max_laxity,
                                  std::int64_t max_length) {
  Rng rng(seed);
  InstanceBuilder builder;
  for (std::size_t i = 0; i < jobs; ++i) {
    const auto a = static_cast<double>(rng.uniform_int(0, horizon));
    const auto lax = static_cast<double>(rng.uniform_int(0, max_laxity));
    const auto p = static_cast<double>(rng.uniform_int(1, max_length));
    builder.add_lax(a, lax, p);
  }
  return builder.build();
}

}  // namespace fjs::testing
