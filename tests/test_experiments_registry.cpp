// Tests for the experiments subsystem: registry contents and selection
// semantics, manifest/verdict JSON round-trips, runner determinism
// across worker counts, and failure propagation from a planted
// failing-verdict experiment.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/registry.h"
#include "experiments/runner.h"
#include "support/assert.h"
#include "support/json.h"
#include "support/telemetry.h"

namespace fjs::experiments {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing file: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

TEST(ExperimentRegistry, SixteenBuiltinsWithUniqueNames) {
  const auto& registry = experiment_registry();
  ASSERT_GE(registry.size(), 16u);
  std::set<std::string> names;
  for (const auto* exp : registry) {
    EXPECT_TRUE(names.insert(exp->name()).second)
        << "duplicate experiment name " << exp->name();
    EXPECT_FALSE(exp->title().empty()) << exp->name();
    EXPECT_FALSE(exp->description().empty()) << exp->name();
    EXPECT_FALSE(exp->paper_ref().empty()) << exp->name();
  }
  for (int i = 1; i <= 16; ++i) {
    const std::string name = "e" + std::to_string(i);
    EXPECT_EQ(registry[static_cast<std::size_t>(i - 1)]->name(), name);
    EXPECT_EQ(find_experiment(name)->name(), name);
  }
  EXPECT_EQ(find_experiment("nope"), nullptr);
}

TEST(ExperimentRegistry, SelectByOnlyKeepsRegistryOrder) {
  const auto selected = select_experiments({"e14", "e1"}, "");
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0]->name(), "e1");  // registry order, not --only order
  EXPECT_EQ(selected[1]->name(), "e14");
  EXPECT_THROW(select_experiments({"e99"}, ""), AssertionError);
}

TEST(ExperimentRegistry, SelectByFilterRegex) {
  const auto selected = select_experiments({}, "miner|overlap");
  std::set<std::string> names;
  for (const auto* exp : selected) {
    names.insert(exp->name());
  }
  EXPECT_TRUE(names.count("e14"));  // "worst-case instance miner"
  EXPECT_TRUE(names.count("e15"));  // "overlap theta sweep"
  EXPECT_FALSE(names.count("e2"));

  // Case-insensitive, and --only intersects with --filter.
  EXPECT_EQ(select_experiments({}, "MINER"), select_experiments({}, "miner"));
  const auto both = select_experiments({"e14", "e2"}, "miner");
  ASSERT_EQ(both.size(), 1u);
  EXPECT_EQ(both[0]->name(), "e14");

  EXPECT_THROW(select_experiments({}, "(unclosed"), AssertionError);
  EXPECT_EQ(select_experiments({}, "").size(), experiment_registry().size());
}

TEST(ExperimentSeed, ZeroBasePreservesLegacySeeds) {
  EXPECT_EQ(experiment_seed(0, "e1"), 0u);
  EXPECT_EQ(experiment_seed(0, "e16"), 0u);
  EXPECT_NE(experiment_seed(7, "e1"), 0u);
  EXPECT_NE(experiment_seed(7, "e1"), experiment_seed(7, "e2"));
  EXPECT_EQ(experiment_seed(7, "e1"), experiment_seed(7, "e1"));
  EXPECT_NE(experiment_seed(7, "e1"), experiment_seed(8, "e1"));
}

TEST(Verdicts, FactoriesSetBracketsAndPassFlag) {
  EXPECT_TRUE(Verdict::equals("a", 1.0001, 1.0, 1e-3).pass);
  EXPECT_FALSE(Verdict::equals("a", 1.01, 1.0, 1e-3).pass);
  EXPECT_TRUE(Verdict::at_most("b", 5.0, 5.0).pass);
  EXPECT_FALSE(Verdict::at_most("b", 5.1, 5.0).pass);
  EXPECT_TRUE(Verdict::at_least("c", 1.0, 1.0).pass);
  EXPECT_FALSE(Verdict::at_least("c", 0.9, 1.0).pass);
  EXPECT_TRUE(Verdict::between("d", 1.5, 1.0, 2.0).pass);
  EXPECT_FALSE(Verdict::between("d", 2.5, 1.0, 2.0).pass);
  EXPECT_THROW(Verdict::between("d", 0.0, 2.0, 1.0), AssertionError);
}

TEST(Json, ParseDumpRoundTrip) {
  JsonValue doc = JsonValue::object();
  doc.set("string", JsonValue::string("with \"quotes\" and \n newline"));
  doc.set("int", JsonValue::number(42));
  doc.set("frac", JsonValue::number(0.1));
  doc.set("tiny", JsonValue::number(1e-9));
  doc.set("flag", JsonValue::boolean(true));
  doc.set("nothing", JsonValue::null());
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue::number(1.5));
  arr.push_back(JsonValue::string("x"));
  doc.set("arr", arr);

  EXPECT_EQ(JsonValue::parse(doc.dump()), doc);
  EXPECT_EQ(JsonValue::parse(doc.dump(0)), doc);
  EXPECT_THROW(JsonValue::parse("{\"unterminated\": "), AssertionError);
}

RunReport sample_report() {
  RunReport report;
  report.run_id = "test-run";
  report.run_dir = "results/test-run";
  report.smoke = true;
  report.base_seed = 9;
  report.jobs = 4;
  ExperimentRecord record;
  record.name = "e1";
  record.title = "demo";
  record.paper_ref = "Thm 0";
  record.seed = experiment_seed(9, "e1");
  record.wall_ms = 12.5;
  record.verdicts.push_back(Verdict::equals("v", 1.0, 1.0, 1e-6, "note"));
  record.csv_files.push_back("e1/demo.csv");
  record.artifacts.push_back("e1/raw.json");
  report.records.push_back(record);
  return report;
}

TEST(Json, ManifestAndVerdictsRoundTrip) {
  const RunReport report = sample_report();

  const JsonValue manifest = manifest_json(report);
  EXPECT_EQ(JsonValue::parse(manifest.dump()), manifest);
  EXPECT_EQ(manifest.get("schema").as_string(), "fjs-experiments-manifest/1");
  EXPECT_EQ(manifest.get("run_id").as_string(), "test-run");
  const JsonValue& entry = manifest.get("experiments").at(0);
  EXPECT_EQ(entry.get("name").as_string(), "e1");
  EXPECT_DOUBLE_EQ(entry.get("wall_ms").as_number(), 12.5);
  EXPECT_EQ(entry.get("csv_files").at(0).as_string(), "e1/demo.csv");

  const JsonValue verdicts = verdicts_json(report);
  EXPECT_EQ(JsonValue::parse(verdicts.dump()), verdicts);
  EXPECT_EQ(verdicts.get("schema").as_string(), "fjs-experiments-verdicts/1");
  EXPECT_TRUE(verdicts.get("all_passed").as_bool());
  const JsonValue& v = verdicts.get("experiments").at(0).get("verdicts").at(0);
  EXPECT_EQ(v.get("name").as_string(), "v");
  EXPECT_TRUE(v.get("pass").as_bool());
  // No timestamps/run ids in verdicts.json — it must be byte-stable.
  EXPECT_EQ(verdicts.find("created_utc"), nullptr);
  EXPECT_EQ(verdicts.find("run_id"), nullptr);
}

RunReport run_smoke_subset(const fs::path& out_root, std::size_t jobs) {
  RunnerOptions options;
  options.smoke = true;
  options.jobs = jobs;
  options.out_root = out_root.string();
  options.run_id = "run";
  options.quiet = true;
  return run_experiments(select_experiments({"e2", "e3"}, ""), options);
}

TEST(Runner, SmokeSubsetDeterministicAcrossJobCounts) {
  const fs::path serial_root = fresh_dir("fjs_exp_serial");
  const fs::path parallel_root = fresh_dir("fjs_exp_parallel");
  const RunReport serial = run_smoke_subset(serial_root, 1);
  const RunReport parallel = run_smoke_subset(parallel_root, 4);
  EXPECT_TRUE(serial.all_passed());
  EXPECT_TRUE(parallel.all_passed());

  const std::vector<std::string> files = {
      "verdicts.json", "e2/e2_batch_tight.csv", "e2/e2_limits.csv",
      "e3/e3_batchplus_tight.csv", "e3/e3_limits.csv"};
  for (const auto& file : files) {
    EXPECT_EQ(read_file(serial_root / "run" / file),
              read_file(parallel_root / "run" / file))
        << file << " differs between --jobs 1 and --jobs 4";
  }
  // The emitted files are exactly the ones the records advertise.
  for (const auto& record : serial.records) {
    for (const auto& csv : record.csv_files) {
      EXPECT_TRUE(fs::exists(serial_root / "run" / csv)) << csv;
    }
  }
}

TEST(Runner, RefusesToOverwriteExplicitRunId) {
  const fs::path root = fresh_dir("fjs_exp_overwrite");
  RunnerOptions options;
  options.smoke = true;
  options.jobs = 1;
  options.out_root = root.string();
  options.run_id = "run";
  options.quiet = true;
  const auto selection = select_experiments({"e4"}, "");
  run_experiments(selection, options);
  // The refusal must be loud AND actionable: the message points at --force.
  try {
    run_experiments(selection, options);
    FAIL() << "second run with the same explicit run id did not throw";
  } catch (const AssertionError& e) {
    EXPECT_NE(std::string(e.what()).find("--force"), std::string::npos)
        << e.what();
  }
}

TEST(Runner, ForceReplacesThePreviousRunDirectory) {
  const fs::path root = fresh_dir("fjs_exp_force");
  RunnerOptions options;
  options.smoke = true;
  options.jobs = 1;
  options.out_root = root.string();
  options.run_id = "run";
  options.quiet = true;
  const auto selection = select_experiments({"e4"}, "");
  run_experiments(selection, options);

  // Plant a stale artifact; --force must replace the whole directory, not
  // merge into it.
  const fs::path stale = root / "run" / "stale-artifact.txt";
  std::ofstream(stale) << "left over from the previous run\n";
  ASSERT_TRUE(fs::exists(stale));

  options.force = true;
  const RunReport report = run_experiments(selection, options);
  EXPECT_TRUE(report.all_passed());
  EXPECT_FALSE(fs::exists(stale)) << "--force merged instead of replacing";
  EXPECT_TRUE(fs::exists(root / "run" / "manifest.json"));
}

TEST(Runner, TelemetryBlockIsByteStableAcrossSerialRuns) {
  // The manifest's telemetry block carries only deterministic counters, so
  // repeated --jobs 1 runs of the same selection must serialize it
  // identically. The first run is excluded: process-lifetime warm-up
  // (thread-local runner state) may legitimately differ.
  const fs::path root = fresh_dir("fjs_exp_telemetry");
  std::vector<std::string> blocks;
  for (int i = 0; i < 3; ++i) {
    RunnerOptions options;
    options.smoke = true;
    options.jobs = 1;
    options.out_root = (root / ("r" + std::to_string(i))).string();
    options.run_id = "run";
    options.quiet = true;
    run_experiments(select_experiments({"e2", "e3"}, ""), options);
    const JsonValue manifest = JsonValue::parse(
        read_file(fs::path(options.out_root) / "run" / "manifest.json"));
    const JsonValue* telemetry = manifest.find("telemetry");
    ASSERT_NE(telemetry, nullptr);
    blocks.push_back(telemetry->dump());
  }
  EXPECT_EQ(blocks[1], blocks[2])
      << "telemetry block differs between identical --jobs 1 runs";
}

TEST(Runner, TraceFileIsValidChromeTracingJson) {
  const fs::path root = fresh_dir("fjs_exp_trace");
  RunnerOptions options;
  options.smoke = true;
  options.jobs = 2;
  options.out_root = root.string();
  options.run_id = "run";
  options.quiet = true;
  options.trace_path = (root / "trace.json").string();
  run_experiments(select_experiments({"e2", "e4"}, ""), options);

  const JsonValue doc = JsonValue::parse(read_file(options.trace_path));
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  if (telemetry::enabled()) {
    ASSERT_GE(events->size(), 2u);  // one complete event per experiment
    std::set<std::string> names;
    for (std::size_t i = 0; i < events->size(); ++i) {
      const JsonValue& event = events->at(i);
      EXPECT_FALSE(event.get("name").as_string().empty());
      EXPECT_FALSE(event.get("ph").as_string().empty());
      EXPECT_GE(event.get("ts").as_number(), 0.0);
      (void)event.get("pid").as_number();
      (void)event.get("tid").as_number();
      names.insert(event.get("name").as_string());
    }
    EXPECT_TRUE(names.count("e2"));
    EXPECT_TRUE(names.count("e4"));
  } else {
    EXPECT_EQ(events->size(), 0u);  // disabled builds emit an empty doc
  }
}

// A registered experiment whose verdicts fail must fail the whole run
// (nonzero exit), without disturbing the experiments that passed.
class PlantedFailure final : public Experiment {
 public:
  std::string name() const override { return "planted-failure"; }
  std::string title() const override { return "planted failing verdict"; }
  std::string description() const override {
    return "test double: one passing and one failing verdict";
  }
  std::string paper_ref() const override { return "-"; }
  ExperimentResult run(ExperimentContext& ctx) const override {
    ExperimentResult result;
    ctx.out() << "planted failure running\n";
    result.verdicts.push_back(Verdict::equals("fine", 1.0, 1.0, 1e-9));
    result.verdicts.push_back(
        Verdict::at_most("doomed", 2.0, 1.0, "must fail"));
    return result;
  }
};

TEST(Runner, PlantedFailingVerdictYieldsNonzeroExit) {
  register_experiment(std::make_unique<PlantedFailure>());
  EXPECT_THROW(register_experiment(std::make_unique<PlantedFailure>()),
               AssertionError);  // duplicate name

  RunnerOptions options;
  options.smoke = true;
  options.jobs = 2;
  options.out_root = fresh_dir("fjs_exp_planted").string();
  options.run_id = "run";
  options.quiet = true;
  const RunReport report =
      run_experiments(select_experiments({"e4", "planted-failure"}, ""),
                      options);

  EXPECT_FALSE(report.all_passed());
  EXPECT_EQ(exit_code(report), 1);
  ASSERT_EQ(report.records.size(), 2u);
  EXPECT_TRUE(report.records[0].passed()) << "e4 must not be disturbed";
  EXPECT_FALSE(report.records[1].passed());

  const JsonValue verdicts = JsonValue::parse(
      read_file(fs::path(options.out_root) / "run" / "verdicts.json"));
  EXPECT_FALSE(verdicts.get("all_passed").as_bool());
  const JsonValue& planted = verdicts.get("experiments").at(1);
  EXPECT_EQ(planted.get("name").as_string(), "planted-failure");
  EXPECT_FALSE(planted.get("verdicts").at(1).get("pass").as_bool());
}

// An experiment that throws is reported as an error, not a crash.
class PlantedThrow final : public Experiment {
 public:
  std::string name() const override { return "planted-throw"; }
  std::string title() const override { return "planted exception"; }
  std::string description() const override {
    return "test double: throws AssertionError from run()";
  }
  std::string paper_ref() const override { return "-"; }
  ExperimentResult run(ExperimentContext&) const override {
    FJS_REQUIRE(false, "synthetic failure");
    return {};
  }
};

TEST(Runner, ThrowingExperimentBecomesRecordedError) {
  register_experiment(std::make_unique<PlantedThrow>());
  RunnerOptions options;
  options.smoke = true;
  options.jobs = 1;
  options.out_root = fresh_dir("fjs_exp_throw").string();
  options.run_id = "run";
  options.quiet = true;
  const RunReport report =
      run_experiments(select_experiments({"planted-throw"}, ""), options);
  EXPECT_FALSE(report.all_passed());
  EXPECT_NE(report.records[0].error.find("synthetic failure"),
            std::string::npos);
  EXPECT_EQ(exit_code(report), 1);
}

}  // namespace
}  // namespace fjs::experiments
