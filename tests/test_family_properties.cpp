// Cross-family property matrix: every (workload family × seed) cell runs
// all schedulers and checks validity plus the theorem bounds against the
// measurement bracket (span <= bound · OPT-upper-bound is implied by
// span <= bound · OPT, so a violation here is a real bug).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "analysis/ratio.h"
#include "helpers.h"
#include "schedulers/classify_by_duration.h"
#include "schedulers/profit.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "workload/generator.h"
#include "workload/suite.h"

namespace fjs {
namespace {

class FamilyProperties
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  Instance make() const {
    const auto& suite = standard_suite();
    const auto family = static_cast<std::size_t>(std::get<0>(GetParam()));
    WorkloadConfig config = suite[family].config;
    config.job_count = 60;
    return generate_workload(config, std::get<1>(GetParam()));
  }
};

TEST_P(FamilyProperties, EverySchedulerProducesValidSchedules) {
  const Instance inst = make();
  for (const auto& spec : scheduler_registry()) {
    const auto scheduler = spec.make();
    const SimulationResult result =
        simulate(inst, *scheduler, spec.clairvoyant);
    EXPECT_TRUE(result.schedule.is_valid(result.instance)) << spec.key;
  }
}

TEST_P(FamilyProperties, SpanOrderingSanity) {
  const Instance inst = make();
  // Nobody beats the certified lower bound; everyone beats serial work.
  const RatioBracket probe = measure_ratio(inst, "batch+",
                                           OptMethod::kBracket);
  for (const auto& spec : scheduler_registry()) {
    const auto scheduler = spec.make();
    const Time span = simulate_span(inst, *scheduler, spec.clairvoyant);
    EXPECT_GE(span, probe.opt_lower) << spec.key;
    EXPECT_LE(span, inst.total_work()) << spec.key;
  }
}

TEST_P(FamilyProperties, BatchPlusBoundViaBracket) {
  const Instance inst = make();
  const RatioBracket bracket =
      measure_ratio(inst, "batch+", OptMethod::kBracket);
  // span <= (mu+1)·OPT <= (mu+1)·opt_upper.
  EXPECT_LE(static_cast<double>(bracket.online_span.ticks()),
            (inst.mu() + 1.0) *
                static_cast<double>(bracket.opt_upper.ticks()) *
                (1 + 1e-12));
}

TEST_P(FamilyProperties, ProfitBoundViaBracket) {
  const Instance inst = make();
  const RatioBracket bracket =
      measure_ratio(inst, "profit", OptMethod::kBracket);
  const double k = ProfitScheduler::optimal_k();
  const double bound = 2.0 * k + 2.0 + 1.0 / (k - 1.0);
  EXPECT_LE(static_cast<double>(bracket.online_span.ticks()),
            bound * static_cast<double>(bracket.opt_upper.ticks()) *
                (1 + 1e-12));
}

TEST_P(FamilyProperties, CdbBoundViaBracket) {
  const Instance inst = make();
  const RatioBracket bracket = measure_ratio(inst, "cdb",
                                             OptMethod::kBracket);
  const double alpha = CdbScheduler::optimal_alpha();
  const double bound = 3.0 * alpha + 4.0 + 2.0 / (alpha - 1.0);
  EXPECT_LE(static_cast<double>(bracket.online_span.ticks()),
            bound * static_cast<double>(bracket.opt_upper.ticks()) *
                (1 + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(
    SuiteGrid, FamilyProperties,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values<std::uint64_t>(11, 22, 33)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>&
           param_info) {
      return standard_suite()[static_cast<std::size_t>(
                                  std::get<0>(param_info.param))]
                 .name.substr(0, 3) +
             std::to_string(std::get<0>(param_info.param)) + "_s" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace fjs
