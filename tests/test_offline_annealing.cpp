#include "offline/annealing.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "offline/exact.h"
#include "offline/heuristic.h"
#include "offline/lower_bound.h"
#include "support/assert.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::units;

TEST(Annealing, EmptyInstance) {
  const AnnealingResult result = anneal_schedule(Instance{});
  EXPECT_EQ(result.span, Time::zero());
}

TEST(Annealing, RigidInstanceUnchanged) {
  const Instance inst = make_instance({{0, 0, 1}, {2, 2, 1}});
  const AnnealingResult result = anneal_schedule(inst);
  EXPECT_EQ(result.span, units(2.0));
  EXPECT_EQ(result.accepted, 0u);  // no movable job
}

TEST(Annealing, FindsPerfectAlignment) {
  // Three loose unit jobs can all stack on one point.
  const Instance inst = make_instance({{0, 9, 1}, {0, 9, 1}, {0, 9, 1}});
  const AnnealingResult result = anneal_schedule(inst);
  EXPECT_EQ(result.span, units(1.0));
}

TEST(Annealing, DeterministicForSeed) {
  const Instance inst = testing::random_integral_instance(4, 12, 15, 5, 4);
  AnnealingOptions options;
  options.iterations = 5000;
  const AnnealingResult a = anneal_schedule(inst, options);
  const AnnealingResult b = anneal_schedule(inst, options);
  EXPECT_EQ(a.span, b.span);
  for (JobId id = 0; id < inst.size(); ++id) {
    EXPECT_EQ(a.schedule.start(id), b.schedule.start(id));
  }
}

TEST(Annealing, RejectsBadOptions) {
  AnnealingOptions options;
  options.cooling = 1.0;
  EXPECT_THROW(anneal_schedule(Instance{}, options), AssertionError);
  options = {};
  options.cooling_period = 0;
  EXPECT_THROW(anneal_schedule(Instance{}, options), AssertionError);
}

/// Sandwich: LB <= exact <= annealing, and annealing lands reasonably
/// close to exact on small instances.
class AnnealingQuality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnnealingQuality, BoundsRespected) {
  const Instance inst = testing::random_integral_instance(
      GetParam() + 4000, /*jobs=*/7, /*horizon=*/10, /*max_laxity=*/4,
      /*max_length=*/4);
  const Time opt = exact_optimal_span(inst);
  AnnealingOptions options;
  options.iterations = 8000;
  const AnnealingResult result = anneal_schedule(inst, options);
  EXPECT_GE(result.span, opt);
  EXPECT_GE(opt, best_lower_bound(inst));
  EXPECT_LE(time_ratio(result.span, opt), 1.35) << inst.to_string();
  result.schedule.validate(inst);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, AnnealingQuality,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(Annealing, IncrementalMatchesFullPathBitIdentical) {
  // The incremental neighbor evaluation (committed-state prefix replay +
  // reconvergence early exit) must be invisible: same spans, same accepted
  // counts, same schedules, for the same RNG draw sequence. Sweep random
  // shapes including heavy overlap and disjoint clusters.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const Instance inst = testing::random_integral_instance(
        seed * 2654435761u + 3, /*jobs=*/3 + seed % 40,
        /*horizon=*/static_cast<std::int64_t>(4 + 2 * seed),
        /*max_laxity=*/9, /*max_length=*/6);
    AnnealingOptions full;
    full.iterations = 3000;
    full.seed = 1000 + seed;
    full.incremental = false;
    AnnealingOptions incremental = full;
    incremental.incremental = true;
    const AnnealingResult a = anneal_schedule(inst, full);
    const AnnealingResult b = anneal_schedule(inst, incremental);
    ASSERT_EQ(a.span, b.span) << "seed " << seed;
    ASSERT_EQ(a.accepted, b.accepted) << "seed " << seed;
    for (JobId id = 0; id < inst.size(); ++id) {
      ASSERT_EQ(a.schedule.start(id), b.schedule.start(id))
          << "seed " << seed << " job " << id;
    }
  }
}

TEST(Annealing, ComplementsLocalSearch) {
  // Both heuristics are valid upper bounds; their min is what the
  // measurement harness would use. Just assert both sit above exact.
  const Instance inst = testing::random_integral_instance(77, 8, 12, 5, 4);
  const Time opt = exact_optimal_span(inst);
  EXPECT_GE(heuristic_span(inst), opt);
  EXPECT_GE(anneal_schedule(inst).span, opt);
}

}  // namespace
}  // namespace fjs
