// Large-scale integration stress: thousands of jobs through every
// scheduler, with the independent trace validator auditing each run, plus
// heavier IntervalSet fuzzing (unite of whole sets vs bitmap reference).
#include <gtest/gtest.h>

#include <vector>

#include "core/interval_set.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "sim/trace_check.h"
#include "support/rng.h"
#include "workload/generator.h"

namespace fjs {
namespace {

TEST(Stress, FiveThousandJobsThroughEveryScheduler) {
  WorkloadConfig cfg;
  cfg.job_count = 5000;
  cfg.arrival_rate = 5.0;
  cfg.laxity_max = 8.0;
  const Instance inst = generate_workload(cfg, 2024);
  for (const auto& spec : scheduler_registry()) {
    const auto scheduler = spec.make();
    const SimulationResult result =
        simulate(inst, *scheduler, spec.clairvoyant, /*record_trace=*/true);
    EXPECT_TRUE(result.schedule.is_valid(result.instance)) << spec.key;
    const auto violations =
        check_trace(result.instance, result.schedule, result.trace);
    EXPECT_TRUE(violations.empty())
        << spec.key << ":\n" << violations_to_string(violations);
    // Spans are bounded by the trivial serial schedule.
    EXPECT_LE(result.span(), result.instance.total_work()) << spec.key;
  }
}

TEST(Stress, BurstyHighConcurrency) {
  WorkloadConfig cfg;
  cfg.job_count = 3000;
  cfg.arrivals = ArrivalProcess::kBursty;
  cfg.burst_size_mean = 50.0;
  cfg.burst_gap = 10.0;
  cfg.laxity_max = 3.0;
  const Instance inst = generate_workload(cfg, 7);
  for (const char* key : {"batch", "batch+", "profit"}) {
    const auto scheduler = make_scheduler(key);
    const SimulationResult result =
        simulate(inst, *scheduler, scheduler->requires_clairvoyance());
    EXPECT_GT(result.schedule.max_concurrency(result.instance), 10u) << key;
  }
}

TEST(Stress, EngineDeterminismAcrossRepeatedRuns) {
  WorkloadConfig cfg;
  cfg.job_count = 1000;
  const Instance inst = generate_workload(cfg, 99);
  for (const auto& spec : scheduler_registry()) {
    const auto scheduler = spec.make();
    const SimulationResult a = simulate(inst, *scheduler, spec.clairvoyant);
    const SimulationResult b = simulate(inst, *scheduler, spec.clairvoyant);
    for (JobId id = 0; id < a.schedule.size(); ++id) {
      ASSERT_EQ(a.schedule.start(id), b.schedule.start(id)) << spec.key;
    }
  }
}

TEST(Stress, IntervalSetUniteFuzz) {
  Rng rng(31337);
  constexpr std::int64_t kHorizon = 500;
  for (int round = 0; round < 20; ++round) {
    std::vector<bool> covered(kHorizon, false);
    IntervalSet a;
    IntervalSet b;
    for (int i = 0; i < 60; ++i) {
      const std::int64_t lo = rng.uniform_int(0, kHorizon - 1);
      const std::int64_t hi = rng.uniform_int(lo, kHorizon);
      (i % 2 == 0 ? a : b).add(Interval(Time(lo), Time(hi)));
      for (std::int64_t t = lo; t < hi; ++t) {
        covered[static_cast<std::size_t>(t)] = true;
      }
    }
    a.unite(b);
    std::int64_t expected = 0;
    for (const bool c : covered) {
      expected += c ? 1 : 0;
    }
    ASSERT_EQ(a.measure().ticks(), expected);
    // Components sorted, disjoint, non-abutting.
    for (std::size_t i = 1; i < a.component_count(); ++i) {
      ASSERT_LT(a.component(i - 1).hi, a.component(i).lo);
    }
  }
}

TEST(Stress, ExtremeLaxityRatios) {
  // Mix of zero-laxity and enormous-laxity jobs; schedulers must stay
  // valid and batchers should exploit the big windows.
  InstanceBuilder builder;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double a = static_cast<double>(rng.uniform_int(0, 200));
    if (rng.bernoulli(0.5)) {
      builder.add_lax(a, 0.0, 1.0 + rng.uniform01());
    } else {
      builder.add_lax(a, 1e5, 1.0 + rng.uniform01());
    }
  }
  const Instance inst = builder.build();
  const auto batch_plus = make_scheduler("batch+");
  const auto eager = make_scheduler("eager");
  const Time bp_span = simulate_span(inst, *batch_plus, false);
  const Time eager_span = simulate_span(inst, *eager, false);
  EXPECT_LT(bp_span, eager_span);
}

}  // namespace
}  // namespace fjs
