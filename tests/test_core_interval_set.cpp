#include "core/interval_set.h"

#include <gtest/gtest.h>

#include <vector>

#include "support/assert.h"
#include "support/rng.h"

namespace fjs {
namespace {

TEST(IntervalSet, EmptyBehaviour) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.measure(), Time::zero());
  EXPECT_FALSE(s.contains(Time(0)));
  EXPECT_THROW(s.lower(), AssertionError);
}

TEST(IntervalSet, IgnoresEmptyIntervals) {
  IntervalSet s;
  s.add(Interval(Time(3), Time(3)));
  s.add(Interval(Time(5), Time(2)));
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, MergesAbuttingComponents) {
  IntervalSet s;
  s.add(Interval(Time(0), Time(2)));
  s.add(Interval(Time(2), Time(4)));
  EXPECT_EQ(s.component_count(), 1u);
  EXPECT_EQ(s.component(0), Interval(Time(0), Time(4)));
}

TEST(IntervalSet, KeepsDisjointComponents) {
  IntervalSet s;
  s.add(Interval(Time(0), Time(2)));
  s.add(Interval(Time(3), Time(5)));
  EXPECT_EQ(s.component_count(), 2u);
  EXPECT_EQ(s.measure(), Time(4));
}

TEST(IntervalSet, MergesSpanningInsert) {
  IntervalSet s;
  s.add(Interval(Time(0), Time(1)));
  s.add(Interval(Time(2), Time(3)));
  s.add(Interval(Time(4), Time(5)));
  s.add(Interval(Time(1), Time(4)));  // bridges everything
  EXPECT_EQ(s.component_count(), 1u);
  EXPECT_EQ(s.component(0), Interval(Time(0), Time(5)));
}

TEST(IntervalSet, InsertInsideExisting) {
  IntervalSet s;
  s.add(Interval(Time(0), Time(10)));
  s.add(Interval(Time(2), Time(3)));
  EXPECT_EQ(s.component_count(), 1u);
  EXPECT_EQ(s.measure(), Time(10));
}

TEST(IntervalSet, ContainsIsHalfOpen) {
  IntervalSet s;
  s.add(Interval(Time(1), Time(3)));
  EXPECT_FALSE(s.contains(Time(0)));
  EXPECT_TRUE(s.contains(Time(1)));
  EXPECT_TRUE(s.contains(Time(2)));
  EXPECT_FALSE(s.contains(Time(3)));
}

TEST(IntervalSet, MeasureWithin) {
  IntervalSet s;
  s.add(Interval(Time(0), Time(4)));
  s.add(Interval(Time(6), Time(8)));
  EXPECT_EQ(s.measure_within(Interval(Time(2), Time(7))), Time(3));
  EXPECT_EQ(s.measure_within(Interval(Time(4), Time(6))), Time(0));
  EXPECT_EQ(s.uncovered_measure(Interval(Time(2), Time(7))), Time(2));
}

TEST(IntervalSet, GapsWithin) {
  IntervalSet s;
  s.add(Interval(Time(2), Time(4)));
  s.add(Interval(Time(6), Time(8)));
  const auto gaps = s.gaps_within(Interval(Time(0), Time(10)));
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], Interval(Time(0), Time(2)));
  EXPECT_EQ(gaps[1], Interval(Time(4), Time(6)));
  EXPECT_EQ(gaps[2], Interval(Time(8), Time(10)));
}

TEST(IntervalSet, GapsWithinFullyCovered) {
  IntervalSet s;
  s.add(Interval(Time(0), Time(10)));
  EXPECT_TRUE(s.gaps_within(Interval(Time(2), Time(8))).empty());
}

TEST(IntervalSet, UniteSets) {
  IntervalSet a;
  a.add(Interval(Time(0), Time(2)));
  IntervalSet b;
  b.add(Interval(Time(1), Time(5)));
  b.add(Interval(Time(7), Time(8)));
  a.unite(b);
  EXPECT_EQ(a.component_count(), 2u);
  EXPECT_EQ(a.measure(), Time(6));
}

TEST(IntervalSet, BoundsAndToString) {
  IntervalSet s;
  s.add(Interval(Time(3), Time(5)));
  s.add(Interval(Time(9), Time(10)));
  EXPECT_EQ(s.lower(), Time(3));
  EXPECT_EQ(s.upper(), Time(10));
  EXPECT_FALSE(s.to_string().empty());
}

/// Property test: IntervalSet must agree with a brute-force boolean
/// timeline on random inputs, for measure, contains, measure_within and
/// component count.
class IntervalSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetProperty, MatchesBitmapReference) {
  Rng rng(GetParam());
  constexpr std::int64_t kHorizon = 200;
  std::vector<bool> covered(kHorizon, false);
  IntervalSet s;
  const int inserts = static_cast<int>(rng.uniform_int(1, 40));
  for (int i = 0; i < inserts; ++i) {
    const std::int64_t lo = rng.uniform_int(0, kHorizon - 1);
    const std::int64_t hi = rng.uniform_int(lo, kHorizon);
    s.add(Interval(Time(lo), Time(hi)));
    for (std::int64_t t = lo; t < hi; ++t) {
      covered[static_cast<std::size_t>(t)] = true;
    }
  }
  // Measure.
  std::int64_t expected_measure = 0;
  for (const bool c : covered) {
    expected_measure += c ? 1 : 0;
  }
  EXPECT_EQ(s.measure().ticks(), expected_measure);
  // Contains at every tick.
  for (std::int64_t t = 0; t < kHorizon; ++t) {
    EXPECT_EQ(s.contains(Time(t)), covered[static_cast<std::size_t>(t)])
        << "tick " << t;
  }
  // Component count = number of 0->1 transitions.
  std::size_t components = 0;
  for (std::int64_t t = 0; t < kHorizon; ++t) {
    if (covered[static_cast<std::size_t>(t)] &&
        (t == 0 || !covered[static_cast<std::size_t>(t - 1)])) {
      ++components;
    }
  }
  EXPECT_EQ(s.component_count(), components);
  // measure_within on a random window.
  const std::int64_t wlo = rng.uniform_int(0, kHorizon - 1);
  const std::int64_t whi = rng.uniform_int(wlo, kHorizon);
  std::int64_t expected_within = 0;
  for (std::int64_t t = wlo; t < whi; ++t) {
    expected_within += covered[static_cast<std::size_t>(t)] ? 1 : 0;
  }
  EXPECT_EQ(s.measure_within(Interval(Time(wlo), Time(whi))).ticks(),
            expected_within);
  // Gaps partition the uncovered part of the window.
  Time gap_total = Time::zero();
  for (const auto& gap : s.gaps_within(Interval(Time(wlo), Time(whi)))) {
    gap_total += gap.length();
  }
  EXPECT_EQ(gap_total.ticks(), (whi - wlo) - expected_within);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, IntervalSetProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace fjs
