#include "core/interval_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "support/assert.h"
#include "support/rng.h"

namespace fjs {
namespace {

TEST(IntervalSet, EmptyBehaviour) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.measure(), Time::zero());
  EXPECT_FALSE(s.contains(Time(0)));
  EXPECT_THROW(s.lower(), AssertionError);
}

TEST(IntervalSet, IgnoresEmptyIntervals) {
  IntervalSet s;
  s.add(Interval(Time(3), Time(3)));
  s.add(Interval(Time(5), Time(2)));
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, MergesAbuttingComponents) {
  IntervalSet s;
  s.add(Interval(Time(0), Time(2)));
  s.add(Interval(Time(2), Time(4)));
  EXPECT_EQ(s.component_count(), 1u);
  EXPECT_EQ(s.component(0), Interval(Time(0), Time(4)));
}

TEST(IntervalSet, KeepsDisjointComponents) {
  IntervalSet s;
  s.add(Interval(Time(0), Time(2)));
  s.add(Interval(Time(3), Time(5)));
  EXPECT_EQ(s.component_count(), 2u);
  EXPECT_EQ(s.measure(), Time(4));
}

TEST(IntervalSet, MergesSpanningInsert) {
  IntervalSet s;
  s.add(Interval(Time(0), Time(1)));
  s.add(Interval(Time(2), Time(3)));
  s.add(Interval(Time(4), Time(5)));
  s.add(Interval(Time(1), Time(4)));  // bridges everything
  EXPECT_EQ(s.component_count(), 1u);
  EXPECT_EQ(s.component(0), Interval(Time(0), Time(5)));
}

TEST(IntervalSet, InsertInsideExisting) {
  IntervalSet s;
  s.add(Interval(Time(0), Time(10)));
  s.add(Interval(Time(2), Time(3)));
  EXPECT_EQ(s.component_count(), 1u);
  EXPECT_EQ(s.measure(), Time(10));
}

TEST(IntervalSet, ContainsIsHalfOpen) {
  IntervalSet s;
  s.add(Interval(Time(1), Time(3)));
  EXPECT_FALSE(s.contains(Time(0)));
  EXPECT_TRUE(s.contains(Time(1)));
  EXPECT_TRUE(s.contains(Time(2)));
  EXPECT_FALSE(s.contains(Time(3)));
}

TEST(IntervalSet, MeasureWithin) {
  IntervalSet s;
  s.add(Interval(Time(0), Time(4)));
  s.add(Interval(Time(6), Time(8)));
  EXPECT_EQ(s.measure_within(Interval(Time(2), Time(7))), Time(3));
  EXPECT_EQ(s.measure_within(Interval(Time(4), Time(6))), Time(0));
  EXPECT_EQ(s.uncovered_measure(Interval(Time(2), Time(7))), Time(2));
}

TEST(IntervalSet, GapsWithin) {
  IntervalSet s;
  s.add(Interval(Time(2), Time(4)));
  s.add(Interval(Time(6), Time(8)));
  const auto gaps = s.gaps_within(Interval(Time(0), Time(10)));
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], Interval(Time(0), Time(2)));
  EXPECT_EQ(gaps[1], Interval(Time(4), Time(6)));
  EXPECT_EQ(gaps[2], Interval(Time(8), Time(10)));
}

TEST(IntervalSet, GapsWithinFullyCovered) {
  IntervalSet s;
  s.add(Interval(Time(0), Time(10)));
  EXPECT_TRUE(s.gaps_within(Interval(Time(2), Time(8))).empty());
}

TEST(IntervalSet, UniteSets) {
  IntervalSet a;
  a.add(Interval(Time(0), Time(2)));
  IntervalSet b;
  b.add(Interval(Time(1), Time(5)));
  b.add(Interval(Time(7), Time(8)));
  a.unite(b);
  EXPECT_EQ(a.component_count(), 2u);
  EXPECT_EQ(a.measure(), Time(6));
}

TEST(IntervalSet, BoundsAndToString) {
  IntervalSet s;
  s.add(Interval(Time(3), Time(5)));
  s.add(Interval(Time(9), Time(10)));
  EXPECT_EQ(s.lower(), Time(3));
  EXPECT_EQ(s.upper(), Time(10));
  EXPECT_FALSE(s.to_string().empty());
}

/// Property test: IntervalSet must agree with a brute-force boolean
/// timeline on random inputs, for measure, contains, measure_within and
/// component count.
class IntervalSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetProperty, MatchesBitmapReference) {
  Rng rng(GetParam());
  constexpr std::int64_t kHorizon = 200;
  std::vector<bool> covered(kHorizon, false);
  IntervalSet s;
  const int inserts = static_cast<int>(rng.uniform_int(1, 40));
  for (int i = 0; i < inserts; ++i) {
    const std::int64_t lo = rng.uniform_int(0, kHorizon - 1);
    const std::int64_t hi = rng.uniform_int(lo, kHorizon);
    s.add(Interval(Time(lo), Time(hi)));
    for (std::int64_t t = lo; t < hi; ++t) {
      covered[static_cast<std::size_t>(t)] = true;
    }
  }
  // Measure.
  std::int64_t expected_measure = 0;
  for (const bool c : covered) {
    expected_measure += c ? 1 : 0;
  }
  EXPECT_EQ(s.measure().ticks(), expected_measure);
  // Contains at every tick.
  for (std::int64_t t = 0; t < kHorizon; ++t) {
    EXPECT_EQ(s.contains(Time(t)), covered[static_cast<std::size_t>(t)])
        << "tick " << t;
  }
  // Component count = number of 0->1 transitions.
  std::size_t components = 0;
  for (std::int64_t t = 0; t < kHorizon; ++t) {
    if (covered[static_cast<std::size_t>(t)] &&
        (t == 0 || !covered[static_cast<std::size_t>(t - 1)])) {
      ++components;
    }
  }
  EXPECT_EQ(s.component_count(), components);
  // measure_within on a random window.
  const std::int64_t wlo = rng.uniform_int(0, kHorizon - 1);
  const std::int64_t whi = rng.uniform_int(wlo, kHorizon);
  std::int64_t expected_within = 0;
  for (std::int64_t t = wlo; t < whi; ++t) {
    expected_within += covered[static_cast<std::size_t>(t)] ? 1 : 0;
  }
  EXPECT_EQ(s.measure_within(Interval(Time(wlo), Time(whi))).ticks(),
            expected_within);
  // Gaps partition the uncovered part of the window.
  Time gap_total = Time::zero();
  for (const auto& gap : s.gaps_within(Interval(Time(wlo), Time(whi)))) {
    gap_total += gap.length();
  }
  EXPECT_EQ(gap_total.ticks(), (whi - wlo) - expected_within);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, IntervalSetProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

// ---------------------------------------------------------------------------
// Differential coverage for the bulk-build constructor, add_hint, and the
// linear two-pointer unite: each must produce exactly the set the n× add()
// path produces, on edge cases and randomized inputs alike.

std::vector<Interval> mixed_intervals(Rng& rng, std::size_t n) {
  std::vector<Interval> intervals;
  intervals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t lo = rng.uniform_int(0, 200);
    // Mix of empty (hi == lo), short, and long intervals so runs contain
    // duplicates, abutting pairs, containments, and full overlaps.
    intervals.emplace_back(Time(lo), Time(lo + rng.uniform_int(0, 30)));
  }
  return intervals;
}

IntervalSet via_adds(const std::vector<Interval>& intervals) {
  IntervalSet s;
  for (const auto& iv : intervals) {
    s.add(iv);
  }
  return s;
}

TEST(IntervalSetBulk, EmptyInputs) {
  EXPECT_TRUE(IntervalSet(std::vector<Interval>{}).empty());
  // All-empty intervals collapse to the empty set.
  EXPECT_TRUE(IntervalSet(std::vector<Interval>{
                              Interval(Time(3), Time(3)),
                              Interval(Time(9), Time(4)),
                          })
                  .empty());
}

TEST(IntervalSetBulk, MergesAbuttingAndOverlapping) {
  const std::vector<Interval> input = {
      Interval(Time(4), Time(6)), Interval(Time(0), Time(2)),
      Interval(Time(2), Time(4)),  // abuts both neighbours once sorted
      Interval(Time(5), Time(5)),  // empty, ignored
      Interval(Time(1), Time(3)),  // overlaps
  };
  const IntervalSet bulk(input);
  EXPECT_EQ(bulk, via_adds(input));
  EXPECT_EQ(bulk.component_count(), 1u);
  EXPECT_EQ(bulk.component(0), Interval(Time(0), Time(6)));
}

TEST(IntervalSetBulk, KeepsDisjointComponents) {
  const std::vector<Interval> input = {
      Interval(Time(10), Time(12)),
      Interval(Time(0), Time(1)),
      Interval(Time(5), Time(7)),
  };
  const IntervalSet bulk(input);
  EXPECT_EQ(bulk, via_adds(input));
  EXPECT_EQ(bulk.component_count(), 3u);
}

TEST(IntervalSetBulk, MatchesAddsOnRandomInputs) {
  Rng rng(11);
  for (int round = 0; round < 200; ++round) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 60));
    const std::vector<Interval> input = mixed_intervals(rng, n);
    EXPECT_EQ(IntervalSet(input), via_adds(input));
  }
}

TEST(IntervalSetAddHint, MatchesAddOnRandomInputs) {
  Rng rng(13);
  for (int round = 0; round < 200; ++round) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 60));
    const std::vector<Interval> input = mixed_intervals(rng, n);
    IntervalSet hinted;
    IntervalSet plain;
    for (const auto& iv : input) {
      hinted.add_hint(iv);
      plain.add(iv);
      ASSERT_EQ(hinted, plain);
    }
  }
}

TEST(IntervalSetAddHint, SortedInsertsStayOnFastPath) {
  // Nondecreasing left endpoints — the simulation-time insert order the
  // hint is designed for, including the abutting and covered cases.
  IntervalSet hinted;
  IntervalSet plain;
  const std::vector<Interval> input = {
      Interval(Time(0), Time(3)), Interval(Time(3), Time(5)),
      Interval(Time(4), Time(4)), Interval(Time(4), Time(9)),
      Interval(Time(12), Time(14)),
  };
  for (const auto& iv : input) {
    hinted.add_hint(iv);
    plain.add(iv);
  }
  EXPECT_EQ(hinted, plain);
  EXPECT_EQ(hinted.component_count(), 2u);
}

TEST(IntervalSetUnite, EdgeCases) {
  IntervalSet empty;
  IntervalSet some = via_adds({Interval(Time(1), Time(4))});
  IntervalSet lhs = empty;
  lhs.unite(some);
  EXPECT_EQ(lhs, some);
  IntervalSet rhs = some;
  rhs.unite(empty);
  EXPECT_EQ(rhs, some);
  // Abutting components across the two sets must fuse.
  IntervalSet a = via_adds({Interval(Time(0), Time(2))});
  const IntervalSet b = via_adds({Interval(Time(2), Time(4))});
  a.unite(b);
  EXPECT_EQ(a.component_count(), 1u);
  EXPECT_EQ(a.component(0), Interval(Time(0), Time(4)));
}

TEST(IntervalSetSortedUnionMeasure, MatchesSetMeasure) {
  Rng rng(29);
  for (int round = 0; round < 200; ++round) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 60));
    std::vector<Interval> input = mixed_intervals(rng, n);
    std::sort(input.begin(), input.end(),
              [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
    EXPECT_EQ(IntervalSet::sorted_union_measure(input),
              IntervalSet(input).measure());
  }
}

TEST(IntervalSetReplaceInSorted, KeepsOrderAndContents) {
  Rng rng(37);
  for (int round = 0; round < 100; ++round) {
    const auto n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 30));
    std::vector<Interval> sorted = mixed_intervals(rng, n);
    std::sort(sorted.begin(), sorted.end(),
              [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
    const auto victim = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const Interval old_iv = sorted[victim];
    const std::int64_t lo = rng.uniform_int(0, 200);
    const Interval new_iv(Time(lo), Time(lo + rng.uniform_int(0, 30)));
    std::vector<Interval> expected = sorted;
    expected[victim] = new_iv;
    std::sort(expected.begin(), expected.end(),
              [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
    IntervalSet::replace_in_sorted(sorted, old_iv, new_iv);
    // Same multiset of intervals, still sorted by lo; union measures agree.
    ASSERT_TRUE(std::is_sorted(
        sorted.begin(), sorted.end(),
        [](const Interval& a, const Interval& b) { return a.lo < b.lo; }));
    EXPECT_EQ(IntervalSet::sorted_union_measure(sorted),
              IntervalSet::sorted_union_measure(expected));
    EXPECT_EQ(IntervalSet(sorted), IntervalSet(expected));
  }
}

TEST(IntervalSetReplaceInSorted, MissingOldIntervalThrows) {
  std::vector<Interval> sorted = {Interval(Time(0), Time(2)),
                                  Interval(Time(5), Time(9))};
  EXPECT_THROW(IntervalSet::replace_in_sorted(
                   sorted, Interval(Time(0), Time(3)), Interval(Time(1), Time(2))),
               AssertionError);
}

TEST(IntervalSetUnite, MatchesAddLoopOnRandomInputs) {
  Rng rng(17);
  for (int round = 0; round < 200; ++round) {
    const std::vector<Interval> first =
        mixed_intervals(rng, static_cast<std::size_t>(rng.uniform_int(0, 40)));
    const std::vector<Interval> second =
        mixed_intervals(rng, static_cast<std::size_t>(rng.uniform_int(0, 40)));
    IntervalSet merged = via_adds(first);
    merged.unite(via_adds(second));
    IntervalSet expected = via_adds(first);
    for (const auto& iv : second) {
      expected.add(iv);
    }
    EXPECT_EQ(merged, expected);
  }
}

}  // namespace
}  // namespace fjs
