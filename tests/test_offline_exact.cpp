#include "offline/exact.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "support/assert.h"
#include "support/thread_pool.h"

namespace fjs {
namespace {

using testing::brute_force_optimal_span;
using testing::make_instance;
using testing::units;

TEST(Exact, SingleJob) {
  const Instance inst = make_instance({{0, 5, 3}});
  const ExactResult result = exact_optimal(inst);
  EXPECT_EQ(result.span, units(3.0));
  result.schedule.validate(inst);
}

TEST(Exact, TwoOverlappableJobs) {
  const Instance inst = make_instance({{0, 5, 2}, {0, 0, 2}});
  EXPECT_EQ(exact_optimal_span(inst), units(2.0));
}

TEST(Exact, ForcedDisjointJobs) {
  // Second job arrives after the first's latest completion.
  const Instance inst = make_instance({{0, 1, 2}, {5, 6, 2}});
  EXPECT_EQ(exact_optimal_span(inst), units(4.0));
}

TEST(Exact, AlignmentBeatsNaivePlacements) {
  // Shorts pinned at [0,1) and [3,4); both longs can start at 3, stacking
  // on the second short: span = 1 + 2 = 3. Naive placements give 4+.
  const Instance inst =
      make_instance({{0, 0, 1}, {3, 3, 1}, {0, 6, 2}, {3, 6, 2}});
  EXPECT_EQ(exact_optimal_span(inst), units(3.0));
}

TEST(Exact, EmptyInstance) {
  const Instance inst;
  const ExactResult result = exact_optimal(inst);
  EXPECT_EQ(result.span, Time::zero());
}

TEST(Exact, SolvesOffGridInstance) {
  // The critical-start argument never uses integrality, so unlike the grid
  // reference solver the branch-and-bound takes arbitrary tick instances.
  const Instance inst = make_instance({{0, 1, 1.5}});
  EXPECT_EQ(exact_optimal_span(inst), units(1.5));
  // The reference solver still demands grid alignment.
  EXPECT_THROW(exact_optimal_reference(inst), AssertionError);
  ExactOptions options;
  options.quantum = Time(Time::kTicksPerUnit / 2);
  EXPECT_EQ(exact_optimal_span_reference(inst, options), units(1.5));
}

TEST(Exact, BudgetExhaustionIsStructured) {
  const Instance inst = testing::random_integral_instance(1, 8, 20, 8, 4);
  ExactOptions options;
  options.max_nodes = 3;
  const ExactResult result = exact_optimal(inst, options);
  EXPECT_EQ(result.status, ExactStatus::kBudgetExceeded);
  EXPECT_FALSE(result.optimal());
  // Best-so-far is still a valid schedule achieving the reported span.
  result.schedule.validate(inst);
  EXPECT_EQ(result.schedule.span(inst), result.span);
  EXPECT_GE(result.nodes_explored, options.max_nodes);
  // Its span upper-bounds the true optimum.
  EXPECT_GE(result.span, exact_optimal_span(inst));
  // The throwing convenience wrapper preserves the legacy hard-stop.
  EXPECT_THROW(exact_optimal_span(inst, options), AssertionError);
}

TEST(Exact, ScheduleAchievesReportedSpan) {
  const Instance inst = testing::random_integral_instance(7, 6, 10, 4, 4);
  const ExactResult result = exact_optimal(inst);
  result.schedule.validate(inst);
  EXPECT_EQ(result.schedule.span(inst), result.span);
  EXPECT_GT(result.nodes_explored, 0u);
}

/// The exact solver must agree with naive full enumeration on random tiny
/// instances — the strongest correctness anchor in the repo, since every
/// measured competitive ratio leans on this solver.
class ExactVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactVsBruteForce, Agrees) {
  const Instance inst = testing::random_integral_instance(
      GetParam(), /*jobs=*/5, /*horizon=*/8, /*max_laxity=*/4,
      /*max_length=*/3);
  EXPECT_EQ(exact_optimal_span(inst), brute_force_optimal_span(inst))
      << inst.to_string();
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ExactVsBruteForce,
                         ::testing::Range<std::uint64_t>(0, 90));

/// Differential corpus: the branch-and-bound must match the legacy grid DFS
/// span-for-span at the sizes the old solver could still handle (n <= 10).
class BnBVsReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BnBVsReference, Agrees) {
  const std::uint64_t seed = GetParam();
  const std::size_t jobs = 6 + seed % 5;  // 6..10
  const Instance inst =
      testing::random_integral_instance(seed, jobs, /*horizon=*/12,
                                        /*max_laxity=*/5, /*max_length=*/4);
  const ExactResult bnb = exact_optimal(inst);
  const ExactResult ref = exact_optimal_reference(inst);
  ASSERT_TRUE(bnb.optimal());
  EXPECT_EQ(bnb.span, ref.span) << inst.to_string();
  bnb.schedule.validate(inst);
  EXPECT_EQ(bnb.schedule.span(inst), bnb.span);
  // Pin the general critical-start branching too — integral instances
  // normally take the grid fast path, which would leave it untested.
  ExactOptions general;
  general.use_integral_fast_path = false;
  const ExactResult crit = exact_optimal(inst, general);
  ASSERT_TRUE(crit.optimal());
  EXPECT_EQ(crit.span, ref.span) << inst.to_string();
  crit.schedule.validate(inst);
  EXPECT_EQ(crit.schedule.span(inst), crit.span);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, BnBVsReference,
                         ::testing::Range<std::uint64_t>(0, 60));

TEST(Exact, SolvesFourteenJobsWithinDefaultBudget) {
  for (const std::uint64_t seed : {11u, 23u, 37u}) {
    const Instance inst = testing::random_integral_instance(
        seed, /*jobs=*/14, /*horizon=*/16, /*max_laxity=*/6, /*max_length=*/5);
    const ExactResult result = exact_optimal(inst);
    EXPECT_TRUE(result.optimal()) << "seed " << seed;
    result.schedule.validate(inst);
    EXPECT_EQ(result.schedule.span(inst), result.span);
  }
}

TEST(Exact, ParallelRootSplitMatchesSerialSpan) {
  ThreadPool pool(4);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Instance inst = testing::random_integral_instance(
        seed, /*jobs=*/10, /*horizon=*/12, /*max_laxity=*/5, /*max_length=*/4);
    ExactOptions par;
    par.pool = &pool;
    const ExactResult parallel = exact_optimal(inst, par);
    const ExactResult serial = exact_optimal(inst);
    ASSERT_TRUE(parallel.optimal());
    EXPECT_EQ(parallel.span, serial.span) << inst.to_string();
    parallel.schedule.validate(inst);
    EXPECT_EQ(parallel.schedule.span(inst), parallel.span);
  }
}

TEST(Exact, CacheDisabledStillCorrect) {
  ExactOptions no_cache;
  no_cache.max_cache_entries = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Instance inst = testing::random_integral_instance(
        seed, /*jobs=*/8, /*horizon=*/12, /*max_laxity=*/5, /*max_length=*/4);
    EXPECT_EQ(exact_optimal_span(inst, no_cache),
              exact_optimal_span_reference(inst));
  }
}

}  // namespace
}  // namespace fjs
