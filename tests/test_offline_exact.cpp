#include "offline/exact.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "support/assert.h"

namespace fjs {
namespace {

using testing::brute_force_optimal_span;
using testing::make_instance;
using testing::units;

TEST(Exact, SingleJob) {
  const Instance inst = make_instance({{0, 5, 3}});
  const ExactResult result = exact_optimal(inst);
  EXPECT_EQ(result.span, units(3.0));
  result.schedule.validate(inst);
}

TEST(Exact, TwoOverlappableJobs) {
  const Instance inst = make_instance({{0, 5, 2}, {0, 0, 2}});
  EXPECT_EQ(exact_optimal_span(inst), units(2.0));
}

TEST(Exact, ForcedDisjointJobs) {
  // Second job arrives after the first's latest completion.
  const Instance inst = make_instance({{0, 1, 2}, {5, 6, 2}});
  EXPECT_EQ(exact_optimal_span(inst), units(4.0));
}

TEST(Exact, AlignmentBeatsNaivePlacements) {
  // Shorts pinned at [0,1) and [3,4); both longs can start at 3, stacking
  // on the second short: span = 1 + 2 = 3. Naive placements give 4+.
  const Instance inst =
      make_instance({{0, 0, 1}, {3, 3, 1}, {0, 6, 2}, {3, 6, 2}});
  EXPECT_EQ(exact_optimal_span(inst), units(3.0));
}

TEST(Exact, EmptyInstance) {
  const Instance inst;
  const ExactResult result = exact_optimal(inst);
  EXPECT_EQ(result.span, Time::zero());
}

TEST(Exact, RejectsOffGridInstance) {
  const Instance inst = make_instance({{0, 1, 1.5}});
  EXPECT_THROW(exact_optimal(inst), AssertionError);
  // But succeeds on a finer grid.
  ExactOptions options;
  options.quantum = Time(Time::kTicksPerUnit / 2);
  EXPECT_EQ(exact_optimal_span(inst, options), units(1.5));
}

TEST(Exact, NodeBudgetEnforced) {
  const Instance inst = testing::random_integral_instance(1, 8, 20, 8, 4);
  ExactOptions options;
  options.max_nodes = 3;
  EXPECT_THROW(exact_optimal(inst, options), AssertionError);
}

TEST(Exact, ScheduleAchievesReportedSpan) {
  const Instance inst = testing::random_integral_instance(7, 6, 10, 4, 4);
  const ExactResult result = exact_optimal(inst);
  result.schedule.validate(inst);
  EXPECT_EQ(result.schedule.span(inst), result.span);
  EXPECT_GT(result.nodes_explored, 0u);
}

/// The exact solver must agree with naive full enumeration on random tiny
/// instances — the strongest correctness anchor in the repo, since every
/// measured competitive ratio leans on this solver.
class ExactVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactVsBruteForce, Agrees) {
  const Instance inst = testing::random_integral_instance(
      GetParam(), /*jobs=*/5, /*horizon=*/8, /*max_laxity=*/4,
      /*max_length=*/3);
  EXPECT_EQ(exact_optimal_span(inst), brute_force_optimal_span(inst))
      << inst.to_string();
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ExactVsBruteForce,
                         ::testing::Range<std::uint64_t>(0, 90));

}  // namespace
}  // namespace fjs
