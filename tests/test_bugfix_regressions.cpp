// Regression tests for the edge-case bugfix sweep: CsvWriter fail-loud
// semantics, RandomizedScheduler tied timer/deadline events, the Doubler
// window-close overflow, saturating Time helpers, the conformance-suite
// coverage additions, and the strengthened same-tick trace rules.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "analysis/instance_stats.h"
#include "core/time.h"
#include "fuzz/generator.h"
#include "fuzz/oracles.h"
#include "helpers.h"
#include "offline/lower_bound.h"
#include "schedulers/doubler.h"
#include "schedulers/randomized.h"
#include "schedulers/registry.h"
#include "sim/conformance.h"
#include "sim/engine.h"
#include "sim/trace_check.h"
#include "support/assert.h"
#include "support/csv.h"

namespace fjs {
namespace {

using testing::make_instance;

TEST(CsvWriterRegression, OpenFailureThrowsInsteadOfSilentlyDroppingRows) {
  EXPECT_THROW(
      CsvWriter("/nonexistent-dir-fjs-test/out.csv", {"a", "b"}),
      AssertionError);
}

TEST(CsvWriterRegression, RowWidthMismatchThrows) {
  const auto path = std::filesystem::temp_directory_path() / "fjs_csv_w.csv";
  CsvWriter csv(path.string(), {"a", "b"});
  EXPECT_THROW(csv.write_row({"only-one"}), AssertionError);
  EXPECT_THROW(csv.write_row({"1", "2", "3"}), AssertionError);
  csv.write_row({"1", "2"});
  std::filesystem::remove(path);
}

TEST(CsvWriterRegression, WriteFailureThrows) {
  if (!std::filesystem::exists("/dev/full")) {
    GTEST_SKIP() << "/dev/full not available";
  }
  EXPECT_THROW(
      {
        CsvWriter csv("/dev/full", {"col"});
        const std::string big(1 << 16, 'x');
        for (int i = 0; i < 64; ++i) {
          csv.write_row({big});
        }
      },
      AssertionError);
}

TEST(CsvWriterRegression, NonFiniteValuesGetCanonicalSpellings) {
  const auto path = std::filesystem::temp_directory_path() / "fjs_csv_n.csv";
  {
    CsvWriter csv(path.string(), {"nan", "pinf", "ninf", "num"});
    csv.write_row_numeric({std::nan(""),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(), 1.5});
  }
  std::ifstream in(path);
  std::string header;
  std::string row;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_EQ(row, "nan,inf,-inf,1.5");
  std::filesystem::remove(path);
}

// A one-tick-laxity job draws its random start offset from {0, 1}; the
// offset-1 draw lands the timer exactly on the deadline tick, where the
// deadline event (higher queue priority) force-starts the job first.
// Before the fix, the timer callback then called start_job on a job that
// was no longer pending and the engine threw mid-simulation.
TEST(RandomizedRegression, TimerTiedWithDeadlineIsHandled) {
  InstanceBuilder builder;
  for (int i = 0; i < 12; ++i) {
    builder.add_ticks(Time(i * 3), Time(i * 3 + 1), Time(5));
  }
  const Instance inst = builder.build();
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    RandomizedScheduler scheduler(seed);
    SimulationResult result;
    ASSERT_NO_THROW(result = simulate(inst, scheduler, /*clairvoyant=*/false,
                                      /*record_trace=*/true))
        << "seed " << seed;
    EXPECT_TRUE(result.schedule.is_valid(result.instance));
    EXPECT_TRUE(check_trace(result.instance, result.schedule, result.trace)
                    .empty());
  }
}

TEST(RandomizedRegression, PassesConformanceSuite) {
  const auto report = run_conformance_suite(
      []() { return std::make_unique<RandomizedScheduler>(7); },
      /*clairvoyant=*/false);
  EXPECT_TRUE(report.passed()) << report.to_string();
}

// Found by fuzzing (seed 498): 2·p(flag) overflowed int64 for adversarial
// lengths, the window "closed" at a negative tick, and same-deadline jobs
// were left unstarted past their starting deadline.
TEST(DoublerRegression, NearOverflowLengthsDoNotWrapTheWindowClose) {
  InstanceBuilder builder;
  builder.add_ticks(Time(0), Time(0), Time(1));
  builder.add_ticks(Time(0), Time(0), Time(8'074'744'658'794'000'000));
  const Instance inst = builder.build();
  DoublerScheduler scheduler;
  SimulationResult result;
  ASSERT_NO_THROW(result = simulate(inst, scheduler, /*clairvoyant=*/true,
                                    /*record_trace=*/true));
  EXPECT_TRUE(result.schedule.is_valid(result.instance));
  EXPECT_TRUE(
      check_trace(result.instance, result.schedule, result.trace).empty());
}

TEST(DoublerRegression, HugeArrivalDuringOpenWindowDoesNotOverflow) {
  // Arrival near Time::max() while a window is open: the completion
  // estimate now() + p must saturate, not wrap into the window.
  const std::int64_t top = Time::max().ticks() - 10;
  InstanceBuilder builder;
  builder.add_ticks(Time(top - 4), Time(top - 4), Time(3));
  builder.add_ticks(Time(top - 3), Time(top - 2), Time(9));
  const Instance inst = builder.build();
  DoublerScheduler scheduler;
  SimulationResult result;
  ASSERT_NO_THROW(
      result = simulate(inst, scheduler, /*clairvoyant=*/true, true));
  EXPECT_TRUE(result.schedule.is_valid(result.instance));
}

TEST(TimeSaturating, SubClampsInsteadOfWrapping) {
  EXPECT_EQ(Time(12).saturating_sub(Time(7)), Time(5));
  EXPECT_EQ(Time(-3).saturating_sub(Time(4)), Time(-7));
  EXPECT_EQ(Time::min().saturating_sub(Time(1)), Time::min());
  EXPECT_EQ(Time::max().saturating_sub(Time(-1)), Time::max());
  // rhs == Time::min() cannot be negated; the overflow branch must still
  // pick the correct side of the clamp.
  EXPECT_EQ(Time(1).saturating_sub(Time::min()), Time::max());
  EXPECT_EQ(Time::zero().saturating_sub(Time::min()), Time::max());
}

TEST(TimeSaturating, AddAndMulClampInsteadOfWrapping) {
  EXPECT_EQ(Time::max().saturating_add(Time(1)), Time::max());
  EXPECT_EQ(Time::min().saturating_add(Time(-1)), Time::min());
  EXPECT_EQ(Time(5).saturating_add(Time(7)), Time(12));
  EXPECT_EQ(Time::max().saturating_mul(2), Time::max());
  EXPECT_EQ(Time::max().saturating_mul(-2), Time::min());
  EXPECT_EQ(Time(-3).saturating_mul(4), Time(-12));
  EXPECT_EQ(Time(8'074'744'658'794'000'000).saturating_mul(2), Time::max());
}

// Jobs whose latest completion d+p exceeds Time::max() used to slip into
// instances and wrap deep inside the engine; the Instance constructor now
// rejects them up front.
TEST(InstanceRegression, RejectsJobWhoseLatestCompletionOverflows) {
  InstanceBuilder builder;
  builder.add_ticks(Time(0), Time::max(), Time(2));
  EXPECT_THROW((void)builder.build(), AssertionError);
}

// Two near-max lengths overflow any unchecked total-work sum. The stats /
// lower-bound paths used to route through checked_add and threw on exactly
// the adversarial instances they exist to describe; they now saturate.
TEST(StatsRegression, NearMaxLengthsSaturateInsteadOfThrowing) {
  const std::int64_t huge = Time::max().ticks() - 5;
  InstanceBuilder builder;
  builder.add_ticks(Time(0), Time(0), Time(huge));
  builder.add_ticks(Time(0), Time(3), Time(huge - 7));
  const Instance inst = builder.build();

  InstanceStats stats;
  ASSERT_NO_THROW(stats = compute_instance_stats(inst));
  EXPECT_EQ(stats.total_work, Time::max());  // saturated, not wrapped
  EXPECT_EQ(stats.jobs, 2u);

  Time lb;
  ASSERT_NO_THROW(lb = best_lower_bound(inst));
  EXPECT_GE(lb, Time(huge));  // the longest job alone

  const auto eager = make_scheduler("eager");
  const Time span = simulate_span(inst, *eager, /*clairvoyant=*/false);
  EXPECT_LE(lb, span);
}

// Seed-replay pin through the extended fuzz generator: the huge-LENGTH
// variant produces instances whose summed work overflows int64. Before the
// saturating sweep, the ratio-bounds invariants below threw on them.
TEST(StatsRegression, FuzzHugeLengthSeedsExerciseTheSaturatingPath) {
  const FuzzGenConfig config;
  std::size_t overflowing = 0;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    const Instance inst = generate_fuzz_instance(config, seed);
    Time sum = Time::zero();
    for (const Job& j : inst.view().jobs()) {
      sum = sum.saturating_add(j.length);
    }
    if (sum < Time::max()) {
      continue;  // no overflow on this seed
    }
    ++overflowing;
    InstanceStats stats;
    ASSERT_NO_THROW(stats = compute_instance_stats(inst)) << "seed " << seed;
    EXPECT_EQ(stats.total_work, Time::max()) << "seed " << seed;
    Time lb;
    ASSERT_NO_THROW(lb = best_lower_bound(inst)) << "seed " << seed;
    const auto eager = make_scheduler("eager");
    EXPECT_LE(lb, simulate_span(inst, *eager, /*clairvoyant=*/false))
        << "seed " << seed;
  }
  // The generator's huge-length variant must actually reach this path.
  EXPECT_GT(overflowing, 5u);
}

TEST(ConformanceRegression, EveryRegisteredSchedulerPassesExtendedSuite) {
  for (const auto& spec : scheduler_registry()) {
    const auto report = run_conformance_suite(spec.make, spec.clairvoyant);
    EXPECT_TRUE(report.passed()) << spec.key << ":\n" << report.to_string();
    // The battery includes the new clairvoyant-spread / same-tick pileup
    // probes; pin a floor so a probe can't silently vanish.
    EXPECT_GE(report.probes_run, 12u) << spec.key;
  }
}

// The trace validator must reject same-tick orders that violate half-open
// semantics, independent of how the engine's queue is compiled — this is
// what catches the planted tie-break bug build.
TEST(TraceCheckRegression, FlagsCompletionAfterArrivalAtSameTick) {
  const Instance inst = make_instance({{0, 0, 1}, {1, 1, 1}});
  Schedule schedule(inst.size());
  schedule.set_start(0, Time::zero());
  schedule.set_start(1, Time::from_units(1.0));

  const Time unit = Time::from_units(1.0);
  Trace good;
  good.record({Time::zero(), EventKind::kArrival, 0, 0});
  good.record({Time::zero(), EventKind::kStart, 0, 0});
  good.record({unit, EventKind::kCompletion, 0, unit.ticks()});
  good.record({unit, EventKind::kArrival, 1, 0});
  good.record({unit, EventKind::kStart, 1, 0});
  good.record({unit + unit, EventKind::kCompletion, 1, unit.ticks()});
  EXPECT_TRUE(check_trace(inst, schedule, good).empty());

  Trace bad;
  bad.record({Time::zero(), EventKind::kArrival, 0, 0});
  bad.record({Time::zero(), EventKind::kStart, 0, 0});
  bad.record({unit, EventKind::kArrival, 1, 0});  // before J0's completion
  bad.record({unit, EventKind::kCompletion, 0, unit.ticks()});
  bad.record({unit, EventKind::kStart, 1, 0});
  bad.record({unit + unit, EventKind::kCompletion, 1, unit.ticks()});
  bool flagged = false;
  for (const auto& v : check_trace(inst, schedule, bad)) {
    flagged |= v.message.find("completion processed after an arrival") !=
               std::string::npos;
  }
  EXPECT_TRUE(flagged);
}

}  // namespace
}  // namespace fjs
