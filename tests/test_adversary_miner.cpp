// Determinism and memoization guarantees of the batched instance miner:
// the mined result must be a pure function of MinerOptions, independent of
// the thread pool attached (or none), and the objective memo must only
// remove objective calls, never change a value.
#include "adversary/instance_miner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "helpers.h"
#include "offline/exact.h"
#include "sim/engine.h"
#include "support/thread_pool.h"

namespace fjs {
namespace {

MinerOptions small_options() {
  MinerOptions options;
  options.population = 24;
  options.rounds = 10;
  options.mutations_per_round = 12;
  options.jobs = 6;
  options.horizon = 8;
  options.max_laxity = 4;
  options.max_length = 3;
  return options;
}

TEST(MinerDeterminism, TrajectoryIdenticalAcrossThreadCounts) {
  const MinerResult serial = mine_worst_case("lazy", small_options());
  for (const std::size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    MinerOptions options = small_options();
    options.pool = &pool;
    const MinerResult parallel = mine_worst_case("lazy", options);
    EXPECT_EQ(parallel.worst_ratio, serial.worst_ratio)
        << threads << " threads";
    EXPECT_EQ(parallel.trajectory, serial.trajectory) << threads
                                                      << " threads";
    EXPECT_EQ(parallel.evaluations, serial.evaluations);
    EXPECT_EQ(parallel.worst_instance.to_string(),
              serial.worst_instance.to_string());
  }
}

TEST(MinerDeterminism, MemoOffMatchesMemoOn) {
  const MinerResult memoized = mine_worst_case("lazy", small_options());
  MinerOptions raw = small_options();
  raw.use_objective_memo = false;
  const MinerResult unmemoized = mine_worst_case("lazy", raw);
  EXPECT_EQ(memoized.trajectory, unmemoized.trajectory);
  EXPECT_EQ(memoized.worst_ratio, unmemoized.worst_ratio);
  EXPECT_EQ(memoized.evaluations, unmemoized.evaluations);
  // Hill climbing revisits near-duplicates: the memo must actually bite.
  EXPECT_GT(memoized.memo_hits, 0u);
  EXPECT_EQ(unmemoized.memo_hits, 0u);
}

TEST(MinerDeterminism, EvaluationsCountSearchEffort) {
  const MinerOptions options = small_options();
  const MinerResult result = mine_worst_case("lazy", options);
  EXPECT_EQ(result.evaluations,
            options.population + options.rounds * options.mutations_per_round);
  EXPECT_EQ(result.trajectory.size(), options.rounds + 1);
}

TEST(MinerPrefix, CacheStatsPopulatedAndValuesUnchanged) {
  // mine_worst_case replays candidates through the checkpointed prefix
  // cache. The cache must actually bite on the mutation-heavy access
  // pattern, every skipped arrival must come from a hit, and — since the
  // replayed spans are bit-identical — the search outputs must not depend
  // on it (the trajectory pins above already compare against fixed
  // values; here we pin the counters' internal consistency).
  const MinerResult result = mine_worst_case("batch", small_options());
  EXPECT_GT(result.prefix_hits, 0u);
  EXPECT_GT(result.prefix_misses, 0u);
  EXPECT_GE(result.prefix_arrivals_skipped, result.prefix_hits);
  EXPECT_GT(result.mean_prefix_depth(), 0.0);
  EXPECT_LT(result.mean_prefix_depth(),
            static_cast<double>(small_options().jobs));
  // Every objective call simulates exactly once: hit or miss, never both
  // (screened candidates never reach the simulator at all).
  EXPECT_EQ(result.prefix_hits + result.prefix_misses,
            result.evaluations - result.memo_hits - result.screen_rejects);
}

TEST(MinerPrefix, CountersStableAcrossThreadCountsInSerialBatches) {
  // Counter totals are aggregated across worker-thread caches; with the
  // same work in the same order on ONE thread they are fully determined.
  const MinerResult a = mine_worst_case("batch", small_options());
  const MinerResult b = mine_worst_case("batch", small_options());
  EXPECT_EQ(a.prefix_hits, b.prefix_hits);
  EXPECT_EQ(a.prefix_misses, b.prefix_misses);
  EXPECT_EQ(a.prefix_arrivals_skipped, b.prefix_arrivals_skipped);
  // Parallel pools redistribute candidates over per-thread caches, so only
  // the VALUES are pinned across thread counts (see MinerDeterminism);
  // totals still conserve hit+miss = simulated candidates.
  ThreadPool pool(3);
  MinerOptions options = small_options();
  options.pool = &pool;
  const MinerResult parallel = mine_worst_case("batch", options);
  EXPECT_EQ(parallel.trajectory, a.trajectory);
  EXPECT_EQ(parallel.worst_ratio, a.worst_ratio);
  EXPECT_EQ(parallel.prefix_hits + parallel.prefix_misses,
            parallel.evaluations - parallel.memo_hits -
                parallel.screen_rejects);
}

TEST(MinerScreen, PrecutPreservesTrajectoryAndCountsRejects) {
  // The lane-parallel LB pre-screen may settle a candidate with the
  // span-free upper bound min(max d+p - min a, sum p) / max p instead of
  // calling the objective. Use an objective that bound provably dominates
  // (0.75x the bound itself, recomputed from the view) and pin that
  // screening changes nothing observable except the number of objective
  // calls: settled values differ from true values but both stay at or
  // below the frozen threshold, so the trajectory, worst instance and
  // evaluation counts are bit-identical.
  const auto objective = std::function<double(InstanceView, double, Time)>(
      [](InstanceView view, double, Time) {
        const double window = time_ratio(
            view.latest_completion() - view.earliest_arrival(),
            view.max_length());
        const double work =
            time_ratio(view.total_work(), view.max_length());
        return 0.75 * std::min(window, work);
      });
  MinerOptions off = small_options();
  off.screen_lb_precut = false;
  const MinerResult plain = mine_instance(objective, off);
  MinerOptions on = small_options();
  on.screen_lb_precut = true;
  const MinerResult screened = mine_instance(objective, on);
  EXPECT_EQ(plain.trajectory, screened.trajectory);
  EXPECT_EQ(plain.worst_ratio, screened.worst_ratio);
  EXPECT_EQ(plain.evaluations, screened.evaluations);
  EXPECT_EQ(plain.worst_instance.to_string(),
            screened.worst_instance.to_string());
  EXPECT_EQ(plain.screen_rejects, 0u);
  EXPECT_GT(screened.screen_rejects, 0u);
}

TEST(MinerScreen, WorstCaseMineScreensAndStaysConsistent) {
  // mine_worst_case opts into the pre-screen (its objective is span/OPT).
  // Shapes with few long jobs keep min(window, total work) / max length
  // near 1 for most mutations while the incumbent ratio climbs toward 2,
  // so the screen must actually bite; screened candidates count as
  // evaluations but not as objective calls.
  MinerOptions options = small_options();
  options.jobs = 4;
  options.horizon = 8;
  options.max_laxity = 2;
  options.max_length = 4;
  const MinerResult result = mine_worst_case("lazy", options);
  EXPECT_GT(result.screen_rejects, 0u);
  EXPECT_LE(result.screen_rejects,
            result.evaluations - result.memo_hits);
}

TEST(MinerBudget, UncertifiableCandidatesAreSkippedNotFatal) {
  // A custom objective wrapping a tiny solver budget: every candidate the
  // solver cannot certify scores 0 and the mine still completes.
  MinerOptions options = small_options();
  options.jobs = 8;
  std::size_t skips = 0;
  const MinerResult result = mine_instance(
      [&skips](const Instance& instance) {
        ExactOptions exact;
        exact.max_nodes = 40;  // tight enough to trip on some candidates
        const ExactResult opt = exact_optimal(instance, exact);
        if (!opt.optimal()) {
          ++skips;
          return 0.0;
        }
        return time_ratio(opt.span, Time(Time::kTicksPerUnit));
      },
      options);
  EXPECT_GE(result.worst_ratio, 0.0);
  EXPECT_EQ(result.trajectory.size(), options.rounds + 1);
}

}  // namespace
}  // namespace fjs
