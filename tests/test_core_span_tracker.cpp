#include "core/span_tracker.h"

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.h"

namespace fjs {
namespace {

TEST(SpanTracker, StartsEmpty) {
  SpanTracker tracker;
  EXPECT_TRUE(tracker.empty());
  EXPECT_EQ(tracker.span(), Time::zero());
}

TEST(SpanTracker, IgnoresEmptyIntervals) {
  SpanTracker tracker;
  tracker.add(Interval(Time(5), Time(5)));
  tracker.add(Interval(Time(9), Time(2)));
  EXPECT_TRUE(tracker.empty());
  EXPECT_EQ(tracker.span(), Time::zero());
}

TEST(SpanTracker, AccumulatesDisjointAndOverlapping) {
  SpanTracker tracker;
  tracker.add(Interval(Time(0), Time(4)));
  EXPECT_EQ(tracker.span(), Time(4));
  tracker.add(Interval(Time(2), Time(6)));  // 2 new units
  EXPECT_EQ(tracker.span(), Time(6));
  tracker.add(Interval(Time(6), Time(8)));  // abutting, 2 new units
  EXPECT_EQ(tracker.span(), Time(8));
  tracker.add(Interval(Time(1), Time(7)));  // fully covered, no change
  EXPECT_EQ(tracker.span(), Time(8));
  tracker.add(Interval(Time(20), Time(23)));  // disjoint component
  EXPECT_EQ(tracker.span(), Time(11));
  EXPECT_EQ(tracker.covered().component_count(), 2u);
}

TEST(SpanTracker, ClearResets) {
  SpanTracker tracker;
  tracker.add(Interval(Time(0), Time(10)));
  tracker.clear();
  EXPECT_TRUE(tracker.empty());
  EXPECT_EQ(tracker.span(), Time::zero());
  tracker.add(Interval(Time(3), Time(5)));
  EXPECT_EQ(tracker.span(), Time(2));
}

TEST(SpanTracker, MatchesSetMeasureOnRandomSequences) {
  // The incremental running measure must equal the measure of the covered
  // set after every single insert, for arbitrary insert orders.
  Rng rng(23);
  for (int round = 0; round < 100; ++round) {
    SpanTracker tracker;
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 50));
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t lo = rng.uniform_int(0, 300);
      tracker.add(Interval(Time(lo), Time(lo + rng.uniform_int(0, 40))));
      ASSERT_EQ(tracker.span(), tracker.covered().measure());
    }
  }
}

}  // namespace
}  // namespace fjs
