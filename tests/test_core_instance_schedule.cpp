#include <gtest/gtest.h>

#include <sstream>

#include "core/instance.h"
#include "core/schedule.h"
#include "helpers.h"
#include "support/assert.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::units;

TEST(Job, LaxityAndWindows) {
  const Job j{.id = 0, .arrival = units(1.0), .deadline = units(4.0),
              .length = units(2.0)};
  EXPECT_EQ(j.laxity(), units(3.0));
  EXPECT_EQ(j.latest_completion(), units(6.0));
  EXPECT_EQ(j.active_interval(units(2.0)),
            Interval(units(2.0), units(4.0)));
  EXPECT_TRUE(j.valid());
}

TEST(Job, InvalidJobsDetected) {
  Job j{.id = 0, .arrival = units(4.0), .deadline = units(1.0),
        .length = units(2.0)};
  EXPECT_FALSE(j.valid());
  j.deadline = units(5.0);
  j.length = Time::zero();
  EXPECT_FALSE(j.valid());
}

TEST(Instance, AssignsIdsAndValidates) {
  const Instance inst = make_instance({{0, 1, 2}, {3, 4, 5}});
  EXPECT_EQ(inst.size(), 2u);
  EXPECT_EQ(inst.job(0).id, 0u);
  EXPECT_EQ(inst.job(1).id, 1u);
  EXPECT_THROW(inst.job(2), AssertionError);
}

TEST(Instance, RejectsInvalidJob) {
  InstanceBuilder builder;
  builder.add(2.0, 1.0, 1.0);  // deadline before arrival
  EXPECT_THROW(builder.build(), AssertionError);
}

TEST(Instance, MuAndLengths) {
  const Instance inst = make_instance({{0, 0, 1}, {0, 0, 4}, {0, 0, 2}});
  EXPECT_DOUBLE_EQ(inst.mu(), 4.0);
  EXPECT_EQ(inst.min_length(), units(1.0));
  EXPECT_EQ(inst.max_length(), units(4.0));
  EXPECT_EQ(inst.total_work(), units(7.0));
}

TEST(Instance, HorizonQueries) {
  const Instance inst = make_instance({{1, 2, 3}, {0, 10, 1}});
  EXPECT_EQ(inst.earliest_arrival(), units(0.0));
  EXPECT_EQ(inst.latest_completion(), units(11.0));
}

TEST(Instance, SortedIdViews) {
  const Instance inst = make_instance({{5, 9, 1}, {0, 20, 1}, {2, 3, 1}});
  EXPECT_EQ(inst.ids_by_arrival(), (std::vector<JobId>{1, 2, 0}));
  EXPECT_EQ(inst.ids_by_deadline(), (std::vector<JobId>{2, 0, 1}));
}

TEST(Instance, SortTiesBrokenById) {
  const Instance inst = make_instance({{1, 1, 1}, {1, 1, 2}});
  EXPECT_EQ(inst.ids_by_arrival(), (std::vector<JobId>{0, 1}));
  EXPECT_EQ(inst.ids_by_deadline(), (std::vector<JobId>{0, 1}));
}

TEST(Instance, IsMultipleOf) {
  const Instance inst = make_instance({{0, 2, 1}, {1, 3, 2}});
  EXPECT_TRUE(inst.is_multiple_of(Time(Time::kTicksPerUnit)));
  const Instance frac = make_instance({{0, 2, 1.5}});
  EXPECT_FALSE(frac.is_multiple_of(Time(Time::kTicksPerUnit)));
  EXPECT_TRUE(frac.is_multiple_of(Time(Time::kTicksPerUnit / 2)));
}

TEST(Instance, SerializationRoundTrip) {
  const Instance inst = make_instance({{0, 2.5, 1.25}, {3, 4, 0.5}});
  std::stringstream ss;
  inst.write(ss);
  const Instance parsed = Instance::parse(ss);
  ASSERT_EQ(parsed.size(), inst.size());
  for (JobId id = 0; id < inst.size(); ++id) {
    EXPECT_EQ(parsed.job(id).arrival, inst.job(id).arrival);
    EXPECT_EQ(parsed.job(id).deadline, inst.job(id).deadline);
    EXPECT_EQ(parsed.job(id).length, inst.job(id).length);
  }
}

TEST(Schedule, SpanOfDisjointAndOverlapping) {
  const Instance inst = make_instance({{0, 10, 2}, {0, 10, 2}});
  Schedule overlap(2);
  overlap.set_start(0, units(0.0));
  overlap.set_start(1, units(1.0));
  EXPECT_EQ(overlap.span(inst), units(3.0));

  Schedule together = Schedule::from_starts({units(4.0), units(4.0)});
  EXPECT_EQ(together.span(inst), units(2.0));
}

TEST(Schedule, ValidateCatchesWindowViolations) {
  const Instance inst = make_instance({{1, 3, 1}});
  Schedule too_early = Schedule::from_starts({units(0.5)});
  EXPECT_THROW(too_early.validate(inst), AssertionError);
  EXPECT_FALSE(too_early.is_valid(inst));
  Schedule too_late = Schedule::from_starts({units(3.5)});
  EXPECT_THROW(too_late.validate(inst), AssertionError);
  Schedule ok = Schedule::from_starts({units(3.0)});
  EXPECT_NO_THROW(ok.validate(inst));
  EXPECT_TRUE(ok.is_valid(inst));
}

TEST(Schedule, IncompleteDetected) {
  const Instance inst = make_instance({{0, 1, 1}, {0, 1, 1}});
  Schedule partial(2);
  partial.set_start(0, units(0.0));
  EXPECT_FALSE(partial.complete());
  EXPECT_FALSE(partial.is_valid(inst));
  EXPECT_THROW(partial.validate(inst), AssertionError);
  EXPECT_THROW(partial.start(1), AssertionError);
}

TEST(Schedule, DoubleStartRejected) {
  Schedule s(1);
  s.set_start(0, units(0.0));
  EXPECT_THROW(s.set_start(0, units(1.0)), AssertionError);
}

TEST(Schedule, ConcurrencyHalfOpen) {
  const Instance inst = make_instance({{0, 10, 2}, {0, 10, 2}});
  const Schedule s = Schedule::from_starts({units(0.0), units(2.0)});
  // [0,2) and [2,4): at t=2 only the second job runs.
  EXPECT_EQ(s.concurrency_at(inst, units(1.0)), 1u);
  EXPECT_EQ(s.concurrency_at(inst, units(2.0)), 1u);
  EXPECT_EQ(s.max_concurrency(inst), 1u);

  const Schedule both = Schedule::from_starts({units(0.0), units(1.0)});
  EXPECT_EQ(both.max_concurrency(inst), 2u);
  EXPECT_EQ(both.concurrency_at(inst, units(1.5)), 2u);
}

TEST(Schedule, MetricsAggregation) {
  const Instance inst = make_instance({{0, 5, 2}, {1, 6, 2}});
  const Schedule s = Schedule::from_starts({units(1.0), units(1.0)});
  const ScheduleMetrics m = compute_metrics(inst, s);
  EXPECT_EQ(m.span, units(2.0));
  EXPECT_EQ(m.makespan_end, units(3.0));
  EXPECT_EQ(m.max_concurrency, 2u);
  EXPECT_EQ(m.total_delay, units(1.0));  // job 0 delayed 1, job 1 delayed 0
  EXPECT_EQ(m.total_work, units(4.0));
  EXPECT_DOUBLE_EQ(m.span_over_work, 0.5);
}

TEST(Schedule, ToStringListsJobs) {
  const Instance inst = make_instance({{0, 1, 1}});
  Schedule s(1);
  EXPECT_NE(s.to_string(inst).find("unscheduled"), std::string::npos);
  s.set_start(0, units(0.0));
  EXPECT_NE(s.to_string(inst).find("start"), std::string::npos);
}

}  // namespace
}  // namespace fjs
