#include "schedulers/batch_plus.h"

#include <gtest/gtest.h>

#include "adversary/tightness.h"
#include "helpers.h"
#include "sim/engine.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::units;

TEST(BatchPlus, StartsArrivalsDuringFlagInterval) {
  // Flag J0 runs [0,2); J1 arrives at 0.5 and starts immediately.
  const Instance inst = make_instance({{0, 0, 2}, {0.5, 4, 1}});
  BatchPlusScheduler bp;
  const SimulationResult result = simulate(inst, bp, false);
  EXPECT_EQ(result.schedule.start(1), units(0.5));
  EXPECT_EQ(result.span(), units(2.0));
}

TEST(BatchPlus, ArrivalAtFlagCompletionBuffers) {
  // Half-open boundary: the flag's interval is [0,1); a job arriving
  // exactly at t=1 belongs to the NEXT iteration and waits for a flag.
  const Instance inst = make_instance({{0, 0, 1}, {1, 10, 1}});
  BatchPlusScheduler bp;
  const SimulationResult result = simulate(inst, bp, false);
  EXPECT_EQ(result.schedule.start(1), units(10.0));
  EXPECT_EQ(result.span(), units(2.0));
}

TEST(BatchPlus, ArrivalJustBeforeCompletionStartsImmediately) {
  const Instance inst = make_instance({{0, 0, 1}, {0.999999, 10, 1}});
  BatchPlusScheduler bp;
  const SimulationResult result = simulate(inst, bp, false);
  EXPECT_EQ(result.schedule.start(1), units(0.999999));
}

TEST(BatchPlus, PendingJobsStartWithFlag) {
  const Instance inst = make_instance({{0, 3, 2}, {1, 8, 1}, {2, 3, 1}});
  BatchPlusScheduler bp;
  const SimulationResult result = simulate(inst, bp, false);
  // First deadline to fire is J0's at t=3 (all three are pending by then;
  // J2's deadline is also 3 but J0 has a smaller id => fires first; all
  // start together anyway).
  EXPECT_EQ(result.schedule.start(0), units(3.0));
  EXPECT_EQ(result.schedule.start(1), units(3.0));
  EXPECT_EQ(result.schedule.start(2), units(3.0));
  EXPECT_EQ(result.span(), units(2.0));
}

TEST(BatchPlus, IterationEndsOnlyAtFlagCompletion) {
  // Flag J0 runs [0,3). J1 (arrives 1, p=1) starts immediately and
  // completes at 2 — but the iteration continues, so J2 arriving at 2.5
  // still starts immediately.
  const Instance inst =
      make_instance({{0, 0, 3}, {1, 9, 1}, {2.5, 9, 1}});
  BatchPlusScheduler bp;
  const SimulationResult result = simulate(inst, bp, false);
  EXPECT_EQ(result.schedule.start(1), units(1.0));
  EXPECT_EQ(result.schedule.start(2), units(2.5));
}

TEST(BatchPlus, NonFlagCompletionDoesNotEndIteration) {
  // The flag is the deadline-hitting job, not any completing job: J1
  // (started with the flag) finishes first; arrivals must still start.
  const Instance inst = make_instance({{0, 1, 4}, {0, 9, 1}, {3, 9, 1}});
  BatchPlusScheduler bp;
  const SimulationResult result = simulate(inst, bp, false);
  EXPECT_EQ(result.schedule.start(0), units(1.0));  // flag at its deadline
  EXPECT_EQ(result.schedule.start(1), units(1.0));  // batched with flag
  EXPECT_EQ(result.schedule.start(2), units(3.0));  // during [1,5)
}

TEST(BatchPlus, ActiveFlagExposedForIntrospection) {
  BatchPlusScheduler bp;
  EXPECT_FALSE(bp.active_flag().has_value());
  bp.reset();
  EXPECT_FALSE(bp.active_flag().has_value());
}

/// Figure 3 reproduction: Batch+'s span must equal m(μ+1−ε), the
/// reference m+μ, ratio → μ+1.
class BatchPlusTightness
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(BatchPlusTightness, MatchesClosedForms) {
  const auto [m, mu] = GetParam();
  const double eps = 0.01;
  const TightnessInstance tight = make_batch_plus_tightness(m, mu, eps);

  BatchPlusScheduler bp;
  const SimulationResult result = simulate(tight.instance, bp, false);
  EXPECT_EQ(result.span(), tight.predicted_online_span)
      << "Batch+ span deviates from the Figure 3 analysis";
  EXPECT_EQ(tight.reference.span(tight.instance),
            tight.predicted_reference_span);

  const double ratio =
      time_ratio(result.span(), tight.reference.span(tight.instance));
  const double exact = static_cast<double>(m) * (mu + 1.0 - eps) /
                       (static_cast<double>(m) + mu);
  EXPECT_NEAR(ratio, exact, 1e-6);
  if (m >= 64) {
    EXPECT_GT(ratio, (mu + 1.0) * 0.9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, BatchPlusTightness,
    ::testing::Combine(::testing::Values<std::size_t>(1, 4, 16, 64, 128),
                       ::testing::Values(1.5, 2.0, 4.0)));

}  // namespace
}  // namespace fjs
