// Failure-injection tests: every contract the engine enforces against
// misbehaving sources, oracles, and schedulers must throw AssertionError
// rather than corrupt the run.
#include <gtest/gtest.h>

#include "helpers.h"
#include "schedulers/eager.h"
#include "sim/engine.h"
#include "support/assert.h"

namespace fjs {
namespace {

using testing::units;

/// Source releasing a single configurable spec.
class OneShotSource final : public JobSource {
 public:
  explicit OneShotSource(JobSpec spec) : spec_(spec) {}
  SourceAction begin() override {
    SourceAction a;
    a.releases.push_back(spec_);
    return a;
  }

 private:
  JobSpec spec_;
};

TEST(EngineErrors, ReleaseWithDeadlineBeforeArrival) {
  OneShotSource source(JobSpec{.arrival = units(2.0), .deadline = units(1.0),
                               .length = units(1.0)});
  NoDeferralOracle oracle;
  EagerScheduler eager;
  Engine engine(source, oracle, eager, {});
  EXPECT_THROW(engine.run(), AssertionError);
}

TEST(EngineErrors, ReleaseWithNonPositiveLength) {
  OneShotSource source(JobSpec{.arrival = units(0.0), .deadline = units(1.0),
                               .length = units(0.0)});
  NoDeferralOracle oracle;
  EagerScheduler eager;
  Engine engine(source, oracle, eager, {});
  EXPECT_THROW(engine.run(), AssertionError);
}

TEST(EngineErrors, ReleaseInThePast) {
  class LateSource final : public JobSource {
   public:
    SourceAction begin() override {
      SourceAction a;
      a.releases.push_back(JobSpec{.arrival = units(5.0),
                                   .deadline = units(5.0),
                                   .length = units(1.0)});
      return a;
    }
    SourceAction on_complete(JobId, Time) override {
      SourceAction a;  // released at t=6 with arrival 1 — in the past
      a.releases.push_back(JobSpec{.arrival = units(1.0),
                                   .deadline = units(9.0),
                                   .length = units(1.0)});
      return a;
    }
  };
  LateSource source;
  NoDeferralOracle oracle;
  EagerScheduler eager;
  Engine engine(source, oracle, eager, {});
  EXPECT_THROW(engine.run(), AssertionError);
}

TEST(EngineErrors, WakeupInThePast) {
  class BadWakeupSource final : public JobSource {
   public:
    SourceAction begin() override {
      SourceAction a;
      a.releases.push_back(JobSpec{.arrival = units(5.0),
                                   .deadline = units(5.0),
                                   .length = units(1.0)});
      return a;
    }
    SourceAction on_complete(JobId, Time) override {
      SourceAction a;
      a.wakeup = units(0.5);  // now is 6.0
      return a;
    }
  };
  BadWakeupSource source;
  NoDeferralOracle oracle;
  EagerScheduler eager;
  Engine engine(source, oracle, eager, {});
  EXPECT_THROW(engine.run(), AssertionError);
}

TEST(EngineErrors, OracleNonPositiveLength) {
  class ZeroOracle final : public LengthOracle {
   public:
    StartDecision at_start(JobId, Time) override {
      return StartDecision{.length = Time::zero(), .decide_at = Time::zero()};
    }
    Time decide(JobId, Time) override { return Time::zero(); }
  };
  OneShotSource source(JobSpec{.arrival = units(0.0), .deadline = units(0.0),
                               .length = std::nullopt});
  ZeroOracle oracle;
  EagerScheduler eager;
  Engine engine(source, oracle, eager, {});
  EXPECT_THROW(engine.run(), AssertionError);
}

TEST(EngineErrors, OracleDeferralNotInFuture) {
  class StaleDeferOracle final : public LengthOracle {
   public:
    StartDecision at_start(JobId, Time start) override {
      return StartDecision{.length = std::nullopt, .decide_at = start};
    }
    Time decide(JobId, Time) override { return units(1.0); }
  };
  OneShotSource source(JobSpec{.arrival = units(0.0), .deadline = units(0.0),
                               .length = std::nullopt});
  StaleDeferOracle oracle;
  EagerScheduler eager;
  Engine engine(source, oracle, eager, {});
  EXPECT_THROW(engine.run(), AssertionError);
}

TEST(EngineErrors, OracleDecidesCompletionInThePast) {
  class PastDecideOracle final : public LengthOracle {
   public:
    StartDecision at_start(JobId, Time start) override {
      return StartDecision{.length = std::nullopt,
                           .decide_at = start + units(5.0)};
    }
    // Length 1 puts the completion at start+1 < decide time start+5.
    Time decide(JobId, Time) override { return units(1.0); }
  };
  OneShotSource source(JobSpec{.arrival = units(0.0), .deadline = units(0.0),
                               .length = std::nullopt});
  PastDecideOracle oracle;
  EagerScheduler eager;
  Engine engine(source, oracle, eager, {});
  EXPECT_THROW(engine.run(), AssertionError);
}

TEST(EngineErrors, SchedulerStartsJobTwice) {
  class DoubleStarter final : public OnlineScheduler {
   public:
    std::string name() const override { return "double-starter"; }
    void on_arrival(SchedulerContext& ctx, JobId id) override {
      ctx.start_job(id);
      ctx.start_job(id);  // illegal
    }
    void on_deadline(SchedulerContext& ctx, JobId id) override {
      ctx.start_job(id);
    }
  };
  const Instance inst = testing::make_instance({{0, 1, 1}});
  DoubleStarter bad;
  EXPECT_THROW(simulate(inst, bad, false), AssertionError);
}

TEST(EngineErrors, SchedulerTimerInPast) {
  class PastTimer final : public OnlineScheduler {
   public:
    std::string name() const override { return "past-timer"; }
    void on_arrival(SchedulerContext& ctx, JobId id) override {
      ctx.set_timer(ctx.now() - units(1.0), 0);
      ctx.start_job(id);
    }
    void on_deadline(SchedulerContext& ctx, JobId id) override {
      ctx.start_job(id);
    }
  };
  const Instance inst = testing::make_instance({{1, 2, 1}});
  PastTimer bad;
  EXPECT_THROW(simulate(inst, bad, false), AssertionError);
}

TEST(EngineErrors, StartUnknownJob) {
  class WildStarter final : public OnlineScheduler {
   public:
    std::string name() const override { return "wild-starter"; }
    void on_arrival(SchedulerContext& ctx, JobId id) override {
      ctx.start_job(id + 100);  // no such job
    }
    void on_deadline(SchedulerContext& ctx, JobId id) override {
      ctx.start_job(id);
    }
  };
  const Instance inst = testing::make_instance({{0, 1, 1}});
  WildStarter bad;
  EXPECT_THROW(simulate(inst, bad, false), AssertionError);
}

}  // namespace
}  // namespace fjs
