// Tests for the extension layer: Gantt rendering, concurrency profiles,
// the randomized baseline and the greedy-overlap heuristic.
#include <gtest/gtest.h>

#include "analysis/gantt.h"
#include "helpers.h"
#include "schedulers/overlap.h"
#include "schedulers/randomized.h"
#include "sim/engine.h"
#include "support/assert.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::units;

TEST(Gantt, RendersRowsAndSpan) {
  const Instance inst = make_instance({{0, 0, 2}, {2, 2, 2}});
  const Schedule sched = Schedule::from_starts({units(0.0), units(2.0)});
  const std::string out = render_gantt(inst, sched);
  EXPECT_NE(out.find("J0"), std::string::npos);
  EXPECT_NE(out.find("J1"), std::string::npos);
  EXPECT_NE(out.find("span"), std::string::npos);
  EXPECT_NE(out.find("measure 4"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Gantt, HalfCoverageShape) {
  // J0 covers the first half of the axis, J1 the second; the span row is
  // fully painted.
  const Instance inst = make_instance({{0, 0, 2}, {2, 2, 2}});
  const Schedule sched = Schedule::from_starts({units(0.0), units(2.0)});
  GanttOptions options;
  options.width = 8;
  const std::string out = render_gantt(inst, sched, options);
  EXPECT_NE(out.find("|####....|"), std::string::npos);
  EXPECT_NE(out.find("|....####|"), std::string::npos);
  EXPECT_NE(out.find("|########|"), std::string::npos);
}

TEST(Gantt, TinyIntervalStillVisible) {
  const Instance inst = make_instance({{0, 0, 0.001}, {0, 100, 100}});
  const Schedule sched = Schedule::from_starts({units(0.0), units(0.0)});
  GanttOptions options;
  options.width = 10;
  const std::string out = render_gantt(inst, sched, options);
  // The 0.001-length job must still paint at least one '#'.
  const std::size_t j0_line_end = out.find('\n');
  EXPECT_NE(out.substr(0, j0_line_end).find('#'), std::string::npos);
}

TEST(Gantt, TruncatesRowsButKeepsSpan) {
  InstanceBuilder builder;
  for (int i = 0; i < 50; ++i) {
    builder.add_lax(i, 0.0, 1.0);
  }
  const Instance inst = builder.build();
  Schedule sched(inst.size());
  for (JobId id = 0; id < inst.size(); ++id) {
    sched.set_start(id, inst.job(id).arrival);
  }
  GanttOptions options;
  options.max_rows = 5;
  const std::string out = render_gantt(inst, sched, options);
  EXPECT_NE(out.find("more jobs"), std::string::npos);
  EXPECT_NE(out.find("span"), std::string::npos);
}

TEST(Gantt, EmptyInstance) {
  EXPECT_EQ(render_gantt(Instance{}, Schedule(0)), "(empty instance)\n");
}

TEST(Gantt, RejectsBadOptions) {
  const Instance inst = make_instance({{0, 0, 1}});
  const Schedule sched = Schedule::from_starts({units(0.0)});
  GanttOptions options;
  options.width = 4;
  EXPECT_THROW(render_gantt(inst, sched, options), AssertionError);
}

TEST(ConcurrencyProfile, StepsMatchEvents) {
  const Instance inst = make_instance({{0, 9, 4}, {1, 9, 2}, {6, 9, 1}});
  const Schedule sched =
      Schedule::from_starts({units(0.0), units(1.0), units(6.0)});
  const auto profile = sched.concurrency_profile(inst);
  // [0,1): 1; [1,3): 2; [3,4): 1; [4,6): 0; [6,7): 1; then 0.
  const std::vector<std::pair<Time, std::size_t>> expected = {
      {units(0.0), 1}, {units(1.0), 2}, {units(3.0), 1},
      {units(4.0), 0}, {units(6.0), 1}, {units(7.0), 0}};
  EXPECT_EQ(profile, expected);
}

TEST(ConcurrencyProfile, CoalescesSimultaneousEvents) {
  // One job ends exactly when another starts: no net change, no entry.
  const Instance inst = make_instance({{0, 0, 2}, {2, 2, 2}});
  const Schedule sched = Schedule::from_starts({units(0.0), units(2.0)});
  const auto profile = sched.concurrency_profile(inst);
  const std::vector<std::pair<Time, std::size_t>> expected = {
      {units(0.0), 1}, {units(4.0), 0}};
  EXPECT_EQ(profile, expected);
}

TEST(ConcurrencyProfile, EmptySchedule) {
  const Instance inst;
  const Schedule sched(0);
  EXPECT_TRUE(sched.concurrency_profile(inst).empty());
}

TEST(Randomized, StartsWithinWindows) {
  const Instance inst = testing::random_integral_instance(5, 20, 15, 6, 4);
  RandomizedScheduler random(99);
  const SimulationResult result = simulate(inst, random, false);
  EXPECT_TRUE(result.schedule.is_valid(result.instance));
}

TEST(Randomized, DeterministicForSeedAfterReset) {
  const Instance inst = testing::random_integral_instance(6, 20, 15, 6, 4);
  RandomizedScheduler random(1234);
  const Time a = simulate_span(inst, random, false);
  const Time b = simulate_span(inst, random, false);  // reset() reseeds
  EXPECT_EQ(a, b);
}

TEST(Randomized, DifferentSeedsUsuallyDiffer) {
  const Instance inst = testing::random_integral_instance(7, 30, 15, 8, 4);
  RandomizedScheduler a(1);
  RandomizedScheduler b(2);
  // Starts (not necessarily spans) should differ somewhere.
  const SimulationResult ra = simulate(inst, a, false);
  const SimulationResult rb = simulate(inst, b, false);
  bool any_diff = false;
  for (JobId id = 0; id < ra.schedule.size() && !any_diff; ++id) {
    any_diff = ra.schedule.start(id) != rb.schedule.start(id);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Randomized, ZeroLaxityStartsImmediately) {
  const Instance inst = make_instance({{3, 3, 2}});
  RandomizedScheduler random;
  const SimulationResult result = simulate(inst, random, false);
  EXPECT_EQ(result.schedule.start(0), units(3.0));
}

TEST(Overlap, RejectsBadTheta) {
  EXPECT_THROW(OverlapScheduler(0.0), AssertionError);
  EXPECT_THROW(OverlapScheduler(1.5), AssertionError);
}

TEST(Overlap, RequiresClairvoyance) {
  const Instance inst = make_instance({{0, 1, 1}});
  OverlapScheduler overlap;
  EXPECT_THROW(simulate(inst, overlap, false), AssertionError);
}

TEST(Overlap, StartsWhenCoverageSufficient) {
  // J0 runs [0,4) (forced). J1 arrives at 2 with p=2: [2,4) is fully
  // covered -> starts immediately with theta=0.5.
  const Instance inst = make_instance({{0, 0, 4}, {2, 9, 2}});
  OverlapScheduler overlap(0.5);
  const SimulationResult result = simulate(inst, overlap, true);
  EXPECT_EQ(result.schedule.start(1), units(2.0));
}

TEST(Overlap, WaitsWhenCoverageInsufficient) {
  // J1 arrives at 2 with p=6: only [2,4) of [2,8) covered (1/3 < 0.5).
  const Instance inst = make_instance({{0, 0, 4}, {2, 9, 6}});
  OverlapScheduler overlap(0.5);
  const SimulationResult result = simulate(inst, overlap, true);
  EXPECT_EQ(result.schedule.start(1), units(9.0));
}

TEST(Overlap, ThetaOneRequiresFullCoverage) {
  const Instance inst = make_instance({{0, 0, 4}, {2, 9, 2}, {2, 9, 3}});
  OverlapScheduler overlap(1.0);
  const SimulationResult result = simulate(inst, overlap, true);
  EXPECT_EQ(result.schedule.start(1), units(2.0));  // [2,4) fully covered
  EXPECT_EQ(result.schedule.start(2), units(9.0));  // [2,5) is not
}

TEST(Overlap, CascadeUnlocksPendingJobs) {
  // J1 (p=8) is not startable at its arrival (nothing runs). When it hits
  // its deadline at 5, it opens [5,13); pending J2 (p=7, arrived 3) is now
  // 7/7 covered from t=5 -> cascades to start at 5 too.
  const Instance inst =
      make_instance({{0, 0, 1}, {2, 5, 8}, {3, 20, 7}});
  OverlapScheduler overlap(0.9);
  const SimulationResult result = simulate(inst, overlap, true);
  EXPECT_EQ(result.schedule.start(1), units(5.0));
  EXPECT_EQ(result.schedule.start(2), units(5.0));
}

TEST(Overlap, CompletionRemovesCoverage) {
  // After J0 [0,2) completes, J1 arriving at 2 sees no running coverage.
  const Instance inst = make_instance({{0, 0, 2}, {2, 9, 1}});
  OverlapScheduler overlap(0.5);
  const SimulationResult result = simulate(inst, overlap, true);
  EXPECT_EQ(result.schedule.start(1), units(9.0));
}

TEST(Overlap, NameMentionsTheta) {
  EXPECT_NE(OverlapScheduler(0.75).name().find("0.75"), std::string::npos);
}

}  // namespace
}  // namespace fjs
