#include "sim/engine.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "schedulers/eager.h"
#include "schedulers/lazy.h"
#include "support/assert.h"
#include "workload/generator.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::units;

/// Scheduler that never starts anything — must trip the engine's
/// deadline-enforcement check.
class RefusingScheduler final : public OnlineScheduler {
 public:
  std::string name() const override { return "refusing"; }
  void on_arrival(SchedulerContext&, JobId) override {}
  void on_deadline(SchedulerContext&, JobId) override {}
};

/// Scheduler that illegally peeks at lengths.
class PeekingScheduler final : public OnlineScheduler {
 public:
  std::string name() const override { return "peeking"; }
  void on_arrival(SchedulerContext& ctx, JobId id) override {
    (void)ctx.length_of(id);  // must throw in non-clairvoyant mode
    ctx.start_job(id);
  }
  void on_deadline(SchedulerContext& ctx, JobId id) override {
    ctx.start_job(id);
  }
};

/// Starts each job `delay` after arrival using a timer (exercises
/// set_timer / on_timer).
class TimerScheduler final : public OnlineScheduler {
 public:
  explicit TimerScheduler(Time delay) : delay_(delay) {}
  std::string name() const override { return "timer"; }
  void on_arrival(SchedulerContext& ctx, JobId id) override {
    ctx.set_timer(ctx.now() + delay_, id);
  }
  void on_deadline(SchedulerContext& ctx, JobId id) override {
    ctx.start_job(id);
  }
  void on_timer(SchedulerContext& ctx, std::uint64_t tag) override {
    const auto id = static_cast<JobId>(tag);
    for (const JobId p : ctx.pending()) {
      if (p == id) {
        ctx.start_job(id);
        return;
      }
    }
  }

 private:
  Time delay_;
};

TEST(Engine, EagerStartsAtArrival) {
  const Instance inst = make_instance({{0, 5, 2}, {1, 7, 3}});
  EagerScheduler eager;
  const SimulationResult result = simulate(inst, eager, false);
  EXPECT_EQ(result.schedule.start(0), units(0.0));
  EXPECT_EQ(result.schedule.start(1), units(1.0));
  EXPECT_EQ(result.span(), units(4.0));
}

TEST(Engine, LazyStartsAtDeadline) {
  const Instance inst = make_instance({{0, 5, 2}, {1, 7, 3}});
  LazyScheduler lazy;
  const SimulationResult result = simulate(inst, lazy, false);
  EXPECT_EQ(result.schedule.start(0), units(5.0));
  EXPECT_EQ(result.schedule.start(1), units(7.0));
}

TEST(Engine, RefusingSchedulerTripsDeadlineEnforcement) {
  const Instance inst = make_instance({{0, 1, 1}});
  RefusingScheduler refusing;
  EXPECT_THROW(simulate(inst, refusing, false), AssertionError);
}

TEST(Engine, NonClairvoyantLengthAccessThrows) {
  const Instance inst = make_instance({{0, 1, 1}});
  PeekingScheduler peeking;
  EXPECT_THROW(simulate(inst, peeking, false), AssertionError);
}

TEST(Engine, ClairvoyantLengthAccessAllowed) {
  const Instance inst = make_instance({{0, 1, 1}});
  PeekingScheduler peeking;
  const SimulationResult result = simulate(inst, peeking, true);
  EXPECT_EQ(result.schedule.start(0), units(0.0));
}

TEST(Engine, ClairvoyanceRequirementEnforced) {
  // A scheduler declaring requires_clairvoyance must not run without it.
  class NeedsLengths final : public OnlineScheduler {
   public:
    std::string name() const override { return "needs-lengths"; }
    bool requires_clairvoyance() const override { return true; }
    void on_arrival(SchedulerContext& ctx, JobId id) override {
      ctx.start_job(id);
    }
    void on_deadline(SchedulerContext& ctx, JobId id) override {
      ctx.start_job(id);
    }
  };
  const Instance inst = make_instance({{0, 1, 1}});
  NeedsLengths sched;
  EXPECT_THROW(simulate(inst, sched, false), AssertionError);
  EXPECT_NO_THROW(simulate(inst, sched, true));
}

TEST(Engine, TimerSchedulerDelaysStarts) {
  const Instance inst = make_instance({{0, 5, 1}});
  TimerScheduler sched(units(2.0));
  const SimulationResult result = simulate(inst, sched, false);
  EXPECT_EQ(result.schedule.start(0), units(2.0));
}

TEST(Engine, ZeroLaxityJobStartsAtArrivalViaDeadline) {
  const Instance inst = make_instance({{3, 3, 1}});
  LazyScheduler lazy;
  const SimulationResult result = simulate(inst, lazy, false);
  EXPECT_EQ(result.schedule.start(0), units(3.0));
}

TEST(Engine, TraceRecordsLifecycle) {
  const Instance inst = make_instance({{0, 0, 1}});
  EagerScheduler eager;
  const SimulationResult result = simulate(inst, eager, false, true);
  const auto arrivals = result.trace.filter(EventKind::kArrival);
  const auto starts = result.trace.filter(EventKind::kStart);
  const auto completions = result.trace.filter(EventKind::kCompletion);
  ASSERT_EQ(arrivals.size(), 1u);
  ASSERT_EQ(starts.size(), 1u);
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(arrivals[0].time, units(0.0));
  EXPECT_EQ(completions[0].time, units(1.0));
  EXPECT_EQ(completions[0].detail, units(1.0).ticks());
}

TEST(Engine, TraceOffByDefault) {
  const Instance inst = make_instance({{0, 0, 1}});
  EagerScheduler eager;
  const SimulationResult result = simulate(inst, eager, false);
  EXPECT_TRUE(result.trace.empty());
  EXPECT_GT(result.event_count, 0u);
}

TEST(Engine, RealizedInstanceInArrivalOrder) {
  const Instance inst = make_instance({{5, 6, 1}, {0, 1, 1}});
  EagerScheduler eager;
  const SimulationResult result = simulate(inst, eager, false);
  // StaticSource releases by arrival: realized job 0 is the 0-arrival one.
  EXPECT_EQ(result.instance.job(0).arrival, units(0.0));
  EXPECT_EQ(result.instance.job(1).arrival, units(5.0));
}

TEST(Engine, EmptyInstanceRuns) {
  const Instance inst;
  EagerScheduler eager;
  const SimulationResult result = simulate(inst, eager, false);
  EXPECT_EQ(result.schedule.size(), 0u);
}

TEST(Engine, SameTickCompletionBeforeArrival) {
  // Job 0 runs [0,1). Job 1 arrives exactly at 1. With trace recording,
  // the completion entry must precede the arrival entry.
  const Instance inst = make_instance({{0, 0, 1}, {1, 2, 1}});
  EagerScheduler eager;
  const SimulationResult result = simulate(inst, eager, false, true);
  std::size_t completion_pos = 0;
  std::size_t arrival1_pos = 0;
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    const TraceEntry& e = result.trace.entry(i);
    if (e.kind == EventKind::kCompletion && e.job == 0) {
      completion_pos = i;
    }
    if (e.kind == EventKind::kArrival && e.job == 1) {
      arrival1_pos = i;
    }
  }
  EXPECT_LT(completion_pos, arrival1_pos);
}

TEST(Engine, RunTwiceRejected) {
  const Instance inst = make_instance({{0, 1, 1}});
  StaticSource source(inst);
  NoDeferralOracle oracle;
  EagerScheduler eager;
  Engine engine(source, oracle, eager, {});
  (void)engine.run();
  EXPECT_THROW(engine.run(), AssertionError);
}

TEST(Engine, MaxEventsGuard) {
  const Instance inst = make_instance({{0, 1, 1}});
  StaticSource source(inst);
  NoDeferralOracle oracle;
  EagerScheduler eager;
  Engine engine(source, oracle, eager, EngineOptions{.max_events = 1});
  EXPECT_THROW(engine.run(), AssertionError);
}

TEST(Engine, AdaptiveSourceInjectsOnCompletion) {
  // A source that releases a second job the moment the first completes.
  class ChainSource final : public JobSource {
   public:
    SourceAction begin() override {
      SourceAction a;
      a.releases.push_back(JobSpec{.arrival = Time::zero(),
                                   .deadline = Time::zero(),
                                   .length = units(1.0)});
      return a;
    }
    SourceAction on_complete(JobId id, Time now) override {
      if (id != 0) {
        return {};
      }
      SourceAction a;
      a.releases.push_back(
          JobSpec{.arrival = now, .deadline = now, .length = units(2.0)});
      return a;
    }
  };
  ChainSource source;
  NoDeferralOracle oracle;
  EagerScheduler eager;
  Engine engine(source, oracle, eager, {});
  const SimulationResult result = engine.run();
  ASSERT_EQ(result.instance.size(), 2u);
  EXPECT_EQ(result.schedule.start(1), units(1.0));
  EXPECT_EQ(result.span(), units(3.0));
}

TEST(Engine, DeferredLengthDecision) {
  // Oracle defers the decision by 0.5 and then reports length 2.
  class DeferOracle final : public LengthOracle {
   public:
    StartDecision at_start(JobId, Time start) override {
      return StartDecision{.length = std::nullopt,
                           .decide_at = start + units(0.5)};
    }
    Time decide(JobId, Time) override { return units(2.0); }
  };
  class OneJobSource final : public JobSource {
   public:
    SourceAction begin() override {
      SourceAction a;
      a.releases.push_back(JobSpec{.arrival = Time::zero(),
                                   .deadline = Time::zero(),
                                   .length = std::nullopt});
      return a;
    }
  };
  OneJobSource source;
  DeferOracle oracle;
  EagerScheduler eager;
  Engine engine(source, oracle, eager, {});
  const SimulationResult result = engine.run();
  EXPECT_EQ(result.instance.job(0).length, units(2.0));
  EXPECT_EQ(result.span(), units(2.0));
}

TEST(Engine, ClairvoyantRunRequiresLengthsAtRelease) {
  class LengthlessSource final : public JobSource {
   public:
    SourceAction begin() override {
      SourceAction a;
      a.releases.push_back(JobSpec{.arrival = Time::zero(),
                                   .deadline = Time::zero(),
                                   .length = std::nullopt});
      return a;
    }
  };
  LengthlessSource source;
  NoDeferralOracle oracle;
  EagerScheduler eager;
  Engine engine(source, oracle, eager, EngineOptions{.clairvoyant = true});
  EXPECT_THROW(engine.run(), AssertionError);
}

Instance sim_workload(std::size_t jobs, double rate, std::uint64_t seed) {
  WorkloadConfig config;
  config.job_count = jobs;
  config.arrival_rate = rate;
  return generate_workload(config, seed);
}

TEST(Engine, RealizedSpanMatchesScheduleSpan) {
  const Instance inst = sim_workload(60, 3.0, 31);
  EagerScheduler eager;
  const SimulationResult result = simulate(inst, eager, false);
  EXPECT_EQ(result.span(), result.schedule.span(result.instance));
}

TEST(Engine, SimulateSpanMatchesFullSimulation) {
  // The fast path must agree with the full result on realistic workloads
  // (eager exercises immediate starts, lazy exercises deadline starts).
  for (const std::uint64_t seed : {1ULL, 7ULL, 19ULL}) {
    const Instance inst = sim_workload(80, 2.5, seed);
    EagerScheduler eager;
    LazyScheduler lazy;
    EXPECT_EQ(simulate_span(inst, eager, false),
              simulate(inst, eager, false).span());
    EXPECT_EQ(simulate_span(inst, lazy, false),
              simulate(inst, lazy, false).span());
  }
}

TEST(Engine, RepeatedSimulationsAreIdentical) {
  // simulate() recycles a thread-local workspace; reuse must not leak any
  // state between runs.
  const Instance inst = sim_workload(50, 2.0, 5);
  EagerScheduler eager;
  const SimulationResult first = simulate(inst, eager, false);
  for (int i = 0; i < 3; ++i) {
    const SimulationResult again = simulate(inst, eager, false);
    EXPECT_EQ(again.event_count, first.event_count);
    EXPECT_EQ(again.span(), first.span());
    ASSERT_EQ(again.schedule.size(), first.schedule.size());
    for (JobId id = 0; id < first.schedule.size(); ++id) {
      EXPECT_EQ(again.schedule.start(id), first.schedule.start(id));
    }
  }
}

TEST(Engine, WorkspaceReuseAcrossDifferentInstances) {
  // Interleave runs of different sizes through the same thread-local
  // workspace; each must match a fresh computation.
  EagerScheduler eager;
  const Instance small = sim_workload(5, 1.0, 2);
  const Instance large = sim_workload(120, 2.0, 3);
  const Time small_span = simulate(small, eager, false).span();
  const Time large_span = simulate(large, eager, false).span();
  EXPECT_EQ(simulate(large, eager, false).span(), large_span);
  EXPECT_EQ(simulate(small, eager, false).span(), small_span);
  EXPECT_EQ(simulate_span(small, eager, false), small_span);
  EXPECT_EQ(simulate_span(large, eager, false), large_span);
}

}  // namespace
}  // namespace fjs
