// Portfolio kernel determinism: batched replays must be bit-identical to
// the classic per-scheduler simulate()/simulate_span() paths — same
// realized instance, same schedule, same trace, same span — for every
// registry scheduler, both clairvoyance modes, any thread count, and with
// buffer reuse across instances of different sizes. Also pins the
// adaptive-adversary gate (factories disable timeline sharing) and, when
// the build carries the FJS_COUNT_ALLOCS hook, the zero-steady-state-
// allocation guarantee of the span-only path (docs/PERF.md).
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "helpers.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "sim/portfolio.h"
#include "sim/source.h"
#include "support/alloc_counter.h"
#include "support/assert.h"
#include "support/parallel.h"
#include "support/thread_pool.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::random_integral_instance;

std::vector<Instance> test_instances() {
  std::vector<Instance> instances;
  // Arrival-sorted with a same-tick tie.
  instances.push_back(make_instance(
      {{0, 2, 1}, {0, 3, 2}, {1, 4, 1}, {3, 6, 2}, {7, 9, 1}}));
  // Deliberately NOT arrival-sorted: exercises the reindexing path.
  instances.push_back(make_instance(
      {{5, 8, 2}, {0, 1, 1}, {3, 3, 2}, {1, 6, 1}, {2, 2, 3}, {0, 4, 2}}));
  for (std::uint64_t seed : {11u, 42u, 77u}) {
    instances.push_back(random_integral_instance(seed, 12));
  }
  return instances;
}

/// (scheduler object, clairvoyant flag) pairs covering the whole registry:
/// every spec in its native model, plus every non-clairvoyant scheduler
/// run clairvoyantly (a valid configuration the sweep also uses).
struct NamedEntry {
  std::string key;
  bool clairvoyant;
  std::unique_ptr<OnlineScheduler> scheduler;
};

std::vector<NamedEntry> registry_entries() {
  std::vector<NamedEntry> out;
  for (const auto& spec : scheduler_registry()) {
    out.push_back({spec.key, spec.clairvoyant, make_scheduler(spec.key)});
    if (!spec.clairvoyant) {
      out.push_back({spec.key, true, make_scheduler(spec.key)});
    }
  }
  return out;
}

void expect_same_result(const SimulationResult& classic,
                        const SimulationResult& portfolio,
                        const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(classic.instance.size(), portfolio.instance.size());
  for (JobId id = 0; id < classic.instance.size(); ++id) {
    const Job& a = classic.instance.job(id);
    const Job& b = portfolio.instance.job(id);
    EXPECT_EQ(a.arrival, b.arrival);
    EXPECT_EQ(a.deadline, b.deadline);
    EXPECT_EQ(a.length, b.length);
    EXPECT_EQ(classic.schedule.start(id), portfolio.schedule.start(id));
  }
  EXPECT_EQ(classic.realized_span, portfolio.realized_span);
  EXPECT_EQ(classic.event_count, portfolio.event_count);
  ASSERT_EQ(classic.trace.size(), portfolio.trace.size());
  for (std::size_t i = 0; i < classic.trace.size(); ++i) {
    const TraceEntry& a = classic.trace.entry(i);
    const TraceEntry& b = portfolio.trace.entry(i);
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.job, b.job);
    EXPECT_EQ(a.detail, b.detail);
  }
}

TEST(Portfolio, FullModeBitIdenticalToSimulate) {
  PortfolioRunner runner;
  PortfolioOptions options;
  options.record_trace = true;
  for (const Instance& instance : test_instances()) {
    auto named = registry_entries();
    std::vector<PortfolioEntry> entries;
    for (const auto& n : named) {
      entries.push_back(PortfolioEntry{n.scheduler.get(), n.clairvoyant});
    }
    const auto results = runner.run_full(instance, entries, options);
    ASSERT_EQ(results.size(), named.size());
    for (std::size_t i = 0; i < named.size(); ++i) {
      const auto classic_scheduler = make_scheduler(named[i].key);
      const SimulationResult classic =
          simulate(instance, *classic_scheduler, named[i].clairvoyant,
                   /*record_trace=*/true);
      expect_same_result(classic, results[i],
                         named[i].key +
                             (named[i].clairvoyant ? "/cv" : "/ncv"));
    }
  }
}

TEST(Portfolio, SpanModeMatchesSimulateSpan) {
  PortfolioRunner runner;
  std::vector<Time> spans;
  for (const Instance& instance : test_instances()) {
    auto named = registry_entries();
    std::vector<PortfolioEntry> entries;
    for (const auto& n : named) {
      entries.push_back(PortfolioEntry{n.scheduler.get(), n.clairvoyant});
    }
    EXPECT_TRUE(runner.run_spans(instance, entries, spans));
    ASSERT_EQ(spans.size(), named.size());
    for (std::size_t i = 0; i < named.size(); ++i) {
      SCOPED_TRACE(named[i].key);
      const auto classic_scheduler = make_scheduler(named[i].key);
      EXPECT_EQ(spans[i], simulate_span(instance, *classic_scheduler,
                                        named[i].clairvoyant));
    }
  }
}

TEST(Portfolio, RunSpanStartsMapBackToInstanceIds) {
  // Unsorted arrivals: engine job ids differ from the instance's own ids,
  // so this pins the original_ids() mapping.
  const Instance instance = make_instance(
      {{5, 8, 2}, {0, 1, 1}, {3, 3, 2}, {1, 6, 1}, {2, 2, 3}, {0, 4, 2}});
  const auto scheduler = make_scheduler("batch+");
  PortfolioRunner runner;
  std::vector<Time> starts;
  const Time span = runner.run_span(
      instance, PortfolioEntry{scheduler.get(), true}, &starts);

  const auto classic_scheduler = make_scheduler("batch+");
  const SimulationResult classic =
      simulate(instance, *classic_scheduler, /*clairvoyant=*/true);
  EXPECT_EQ(span, classic.realized_span);
  // simulate() reindexes jobs into arrival order; starts[] is indexed by
  // the instance's ORIGINAL ids, so compare through the arrival sort.
  const std::vector<JobId> by_arrival = instance.ids_by_arrival();
  ASSERT_EQ(starts.size(), instance.size());
  for (JobId engine_id = 0; engine_id < instance.size(); ++engine_id) {
    EXPECT_EQ(starts[by_arrival[engine_id]],
              classic.schedule.start(engine_id));
  }
  // The recovered starts form a valid schedule with the reported span.
  const Schedule schedule = Schedule::from_starts(starts);
  schedule.validate(instance);
  EXPECT_EQ(schedule.span(instance), span);
}

TEST(Portfolio, AdaptiveFactoriesDisableTimelineSharing) {
  const Instance instance = random_integral_instance(5, 10);
  const auto scheduler = make_scheduler("batch");
  const std::vector<PortfolioEntry> entries = {
      PortfolioEntry{scheduler.get(), false}};
  PortfolioRunner runner;

  std::vector<Time> shared_spans;
  ASSERT_TRUE(runner.run_spans(instance, entries, shared_spans));

  // A source factory marks the run adaptive even when the source it
  // builds happens to be a plain static replay: the runner cannot know,
  // so it must take the per-run path -- and the spans must still agree.
  PortfolioOptions adaptive;
  adaptive.source_factory = [](const Instance& inst) {
    return std::make_unique<StaticSource>(inst);
  };
  std::vector<Time> adaptive_spans;
  EXPECT_FALSE(runner.run_spans(instance, entries, adaptive_spans, adaptive));
  EXPECT_EQ(adaptive_spans, shared_spans);

  PortfolioOptions adaptive_oracle;
  adaptive_oracle.oracle_factory = [](const Instance&) {
    return std::make_unique<NoDeferralOracle>();
  };
  EXPECT_FALSE(
      runner.run_spans(instance, entries, adaptive_spans, adaptive_oracle));
  EXPECT_EQ(adaptive_spans, shared_spans);

  // Start capture requires the shared timeline (engine ids are only
  // meaningful against the prepared instance).
  std::vector<Time> starts;
  EXPECT_THROW(
      runner.run_span(instance, entries[0], &starts, adaptive),
      AssertionError);

  // The convenience wrapper reports which path ran.
  const auto wrapped = simulate_portfolio_spans(instance, entries, adaptive);
  EXPECT_FALSE(wrapped.shared_timeline);
  EXPECT_EQ(wrapped.spans, shared_spans);
}

TEST(Portfolio, RunnerReuseAcrossInstanceSizesIsDeterministic) {
  // One runner cycling instances of very different sizes: buffer reuse
  // must never leak state between runs.
  PortfolioRunner runner;
  const auto scheduler = make_scheduler("profit");
  const std::vector<PortfolioEntry> entries = {
      PortfolioEntry{scheduler.get(), true}};
  const auto instances = test_instances();
  std::vector<Time> first;
  for (const Instance& instance : instances) {
    std::vector<Time> spans;
    runner.run_spans(instance, entries, spans);
    first.push_back(spans[0]);
  }
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t i = instances.size(); i-- > 0;) {  // reversed order
      std::vector<Time> spans;
      runner.run_spans(instances[i], entries, spans);
      EXPECT_EQ(spans[0], first[i]) << "instance " << i << " pass " << pass;
    }
  }
}

TEST(Portfolio, ParallelGridMatchesSerialAcrossThreadCounts) {
  // The sweep usage pattern: thread-local runners fanned over a case list.
  // The span grid must be identical for 1 and 4 threads and for the
  // serial loop -- the portfolio leg of the jobs=1-vs-N determinism the
  // experiment runner guarantees.
  std::vector<Instance> cases;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    cases.push_back(random_integral_instance(100 + seed, 9));
  }
  const std::vector<std::string> keys = {"eager", "batch+", "profit"};
  auto compute = [&](std::size_t threads) {
    std::vector<Time> grid(cases.size() * keys.size());
    auto run_case = [&](std::size_t c) {
      thread_local PortfolioRunner runner;
      std::vector<std::unique_ptr<OnlineScheduler>> schedulers;
      std::vector<PortfolioEntry> entries;
      for (const auto& key : keys) {
        schedulers.push_back(make_scheduler(key));
        entries.push_back(PortfolioEntry{
            schedulers.back().get(),
            schedulers.back()->requires_clairvoyance()});
      }
      std::vector<Time> spans;
      runner.run_spans(cases[c], entries, spans);
      std::copy(spans.begin(), spans.end(),
                grid.begin() + static_cast<std::ptrdiff_t>(c * keys.size()));
    };
    if (threads == 0) {
      serial_for(cases.size(), run_case);
    } else {
      ThreadPool pool(threads);
      parallel_for(pool, cases.size(), run_case, 1, ChunkPolicy::kDynamic);
    }
    return grid;
  };
  const auto serial = compute(0);
  EXPECT_EQ(serial, compute(1));
  EXPECT_EQ(serial, compute(4));
}

TEST(EngineWorkspacePool, LeasesRecycleOnSameThread) {
  auto& pool = engine_workspace_pool();
  const std::size_t before = pool.cached_count();
  EngineWorkspace* first = nullptr;
  {
    const auto lease = pool.acquire();
    first = lease.get();
    ASSERT_NE(first, nullptr);
  }
  EXPECT_EQ(pool.cached_count(), before + 1);
  {
    // LIFO: the workspace just returned is the one handed out next, so
    // its warmed capacity is reused by the next run on this thread.
    const auto lease = pool.acquire();
    EXPECT_EQ(lease.get(), first);
    const auto second = pool.acquire();
    EXPECT_NE(second.get(), first);
  }
  EXPECT_EQ(pool.cached_count(), before + 2);
}

// --- Allocation regression assertions (FJS_COUNT_ALLOCS builds) -------
//
// The counters are thread-local and the runs below are single-threaded
// and deterministic, so the measured deltas are exact, not statistical.

TEST(PortfolioAllocs, SpanModeSteadyStateIsAllocationFree) {
  if (!alloc_counting_enabled()) {
    GTEST_SKIP() << "build with -DFJS_COUNT_ALLOCS=ON to measure";
  }
  const Instance instance = random_integral_instance(3, 40, 60, 6, 5);
  const auto batch_plus = make_scheduler("batch+");
  const auto profit = make_scheduler("profit");
  const std::vector<PortfolioEntry> entries = {
      PortfolioEntry{batch_plus.get(), true},
      PortfolioEntry{profit.get(), true},
  };
  PortfolioRunner runner;
  std::vector<Time> spans;
  runner.run_spans(instance, entries, spans);  // warm the workspace
  runner.run_spans(instance, entries, spans);
  const AllocCounts before = alloc_counts();
  for (int i = 0; i < 20; ++i) {
    runner.run_spans(instance, entries, spans);
  }
  const AllocCounts after = alloc_counts();
  EXPECT_EQ(after.allocations - before.allocations, 0u)
      << "span-only portfolio steady state must not touch the heap";
}

TEST(PortfolioAllocs, PrefixReplayRestoreSteadyStateIsAllocationFree) {
  if (!alloc_counting_enabled()) {
    GTEST_SKIP() << "build with -DFJS_COUNT_ALLOCS=ON to measure";
  }
  // Checkpointed prefix replay in the miner's steady state: alternating
  // single-job variants of one instance, every run restoring a deep
  // checkpoint (the mutated job is the latest arrival, so the whole
  // captured prefix stays valid) and recapturing the tail. Restores,
  // captures and the lineage-base refresh must all reuse warm capacity.
  const Instance base = random_integral_instance(3, 40, 60, 6, 5);
  std::vector<Job> jobs(base.view().jobs().begin(), base.view().jobs().end());
  std::size_t victim = 0;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    if (jobs[i].arrival > jobs[victim].arrival) {
      victim = i;
    }
  }
  jobs[victim].deadline = jobs[victim].deadline + Time(Time::kTicksPerUnit);
  const Instance mutated{std::move(jobs)};
  const auto batch_plus = make_scheduler("batch+");
  const PortfolioEntry entry{batch_plus.get(), true};
  PortfolioRunner runner;
  runner.enable_prefix_replay();
  for (int warm = 0; warm < 4; ++warm) {
    runner.run_span(warm % 2 == 0 ? base : mutated, entry);
  }
  const PrefixReplayStats warm_stats = runner.prefix_stats();
  const AllocCounts before = alloc_counts();
  for (int i = 0; i < 20; ++i) {
    runner.run_span(i % 2 == 0 ? base : mutated, entry);
  }
  const AllocCounts after = alloc_counts();
  EXPECT_EQ(after.allocations - before.allocations, 0u)
      << "checkpoint restore/capture steady state must not touch the heap";
  // The loop above really was the restore path, not 20 cold replays.
  EXPECT_EQ(runner.prefix_stats().hits - warm_stats.hits, 20u);
}

TEST(PortfolioAllocs, SimulateSpanNeverAllocatesATrace) {
  if (!alloc_counting_enabled()) {
    GTEST_SKIP() << "build with -DFJS_COUNT_ALLOCS=ON to measure";
  }
  // simulate_span (record_trace is hardwired off) performs a fixed number
  // of allocations per call -- the StaticSource staging -- independent of
  // how many events the run processes. A Trace sneaking back into the
  // fast path would make the count grow with the event count and fail the
  // size-invariance assertion below.
  const Instance small = random_integral_instance(21, 30, 40, 5, 4);
  const Instance large = random_integral_instance(22, 600, 900, 5, 4);
  const auto scheduler = make_scheduler("batch+");
  auto measure = [&](const Instance& inst) {
    const AllocCounts before = alloc_counts();
    (void)simulate_span(inst, *scheduler, /*clairvoyant=*/true);
    return alloc_counts().allocations - before.allocations;
  };
  (void)measure(large);  // warm the pooled workspace at the larger size
  (void)measure(small);
  const std::size_t warm_small = measure(small);
  const std::size_t warm_large = measure(large);
  EXPECT_EQ(warm_small, warm_large)
      << "simulate_span allocations must not scale with the event count";

  // And the full-result path: recording a trace must be the ONLY extra
  // allocation cost of record_trace=true.
  auto measure_full = [&](bool record_trace) {
    const auto fresh = make_scheduler("batch+");
    const AllocCounts before = alloc_counts();
    const SimulationResult result =
        simulate(large, *fresh, /*clairvoyant=*/true, record_trace);
    const std::size_t allocs = alloc_counts().allocations - before.allocations;
    return std::make_pair(allocs, result.trace.size());
  };
  (void)measure_full(false);
  (void)measure_full(true);
  const auto [without_trace, no_entries] = measure_full(false);
  const auto [with_trace, entries_recorded] = measure_full(true);
  EXPECT_EQ(no_entries, 0u);
  EXPECT_GT(entries_recorded, 0u);
  EXPECT_LT(without_trace, with_trace)
      << "record_trace=false must skip the trace storage entirely";
}

}  // namespace
}  // namespace fjs
