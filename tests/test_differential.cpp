// Differential tests: each paper scheduler is re-implemented DIRECTLY
// (straight-line computation over the instance, no event engine) and the
// resulting schedules are compared with the engine-driven ones on random
// instances. A disagreement flags a bug in either the engine's event
// semantics or the scheduler's callback logic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "helpers.h"
#include "schedulers/classify_by_duration.h"
#include "schedulers/profit.h"
#include "schedulers/registry.h"
#include "sim/engine.h"

namespace fjs {
namespace {

/// Direct Batch (§3.2): repeatedly, the earliest starting deadline among
/// unstarted jobs defines an iteration; everything arrived by then starts
/// at that instant.
Schedule reference_batch(const Instance& inst) {
  Schedule sched(inst.size());
  std::vector<bool> started(inst.size(), false);
  std::size_t remaining = inst.size();
  while (remaining > 0) {
    Time flag_deadline = Time::max();
    for (JobId id = 0; id < inst.size(); ++id) {
      if (!started[id]) {
        flag_deadline = std::min(flag_deadline, inst.job(id).deadline);
      }
    }
    for (JobId id = 0; id < inst.size(); ++id) {
      if (!started[id] && inst.job(id).arrival <= flag_deadline) {
        sched.set_start(id, flag_deadline);
        started[id] = true;
        --remaining;
      }
    }
  }
  return sched;
}

/// Direct Batch+ (§3.2): like Batch, but during the flag job's active
/// interval [d*, d* + p(flag)) every arrival starts immediately. The flag
/// is the unstarted job with the earliest deadline (ties: earliest
/// arrival, then id — the engine's event order).
Schedule reference_batch_plus(const Instance& inst) {
  Schedule sched(inst.size());
  std::vector<bool> started(inst.size(), false);
  std::size_t remaining = inst.size();
  while (remaining > 0) {
    JobId flag = kInvalidJob;
    for (JobId id = 0; id < inst.size(); ++id) {
      if (started[id]) {
        continue;
      }
      if (flag == kInvalidJob) {
        flag = id;
        continue;
      }
      const Job& a = inst.job(id);
      const Job& b = inst.job(flag);
      if (a.deadline != b.deadline ? a.deadline < b.deadline
          : a.arrival != b.arrival ? a.arrival < b.arrival
                                   : id < flag) {
        flag = id;
      }
    }
    const Time flag_start = inst.job(flag).deadline;
    const Time flag_end = flag_start + inst.job(flag).length;
    // Everything arrived by the flag's start joins the batch.
    for (JobId id = 0; id < inst.size(); ++id) {
      if (!started[id] && inst.job(id).arrival <= flag_start) {
        sched.set_start(id, flag_start);
        started[id] = true;
        --remaining;
      }
    }
    // Arrivals during the flag's run start immediately.
    for (JobId id = 0; id < inst.size(); ++id) {
      if (!started[id] && inst.job(id).arrival < flag_end) {
        sched.set_start(id, inst.job(id).arrival);
        started[id] = true;
        --remaining;
      }
    }
  }
  return sched;
}

/// Direct CDB (§4.2): partition by length category, run the direct Batch+
/// on each category sub-instance independently, merge the starts. This is
/// exactly the paper's definition and shares no code with the scheduler.
Schedule reference_cdb(const Instance& inst, double alpha, Time base) {
  auto category_of = [&](Time length) {
    const double ratio = static_cast<double>(length.ticks()) /
                         static_cast<double>(base.ticks());
    return static_cast<long>(
        std::ceil(std::log(ratio) / std::log(alpha) - 1e-9));
  };
  std::map<long, std::vector<JobId>> categories;
  for (JobId id = 0; id < inst.size(); ++id) {
    categories[category_of(inst.job(id).length)].push_back(id);
  }
  Schedule sched(inst.size());
  for (const auto& [category, ids] : categories) {
    std::vector<Job> jobs;
    for (const JobId id : ids) {
      jobs.push_back(inst.job(id));
    }
    const Instance sub(std::move(jobs));
    const Schedule sub_sched = reference_batch_plus(sub);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      sched.set_start(ids[i], sub_sched.start(static_cast<JobId>(i)));
    }
  }
  return sched;
}

/// Direct Profit (§4.3): chronological pass over arrival and deadline
/// events with an explicit flag list — no event engine involved.
Schedule reference_profit(const Instance& inst, double k) {
  struct Flag {
    Time start;   // = d(f)
    Time end;     // = d(f) + p(f)
  };
  struct Ev {
    Time time;
    bool is_deadline;  // false = arrival
    JobId job;
  };
  std::vector<Ev> events;
  for (JobId id = 0; id < inst.size(); ++id) {
    events.push_back(Ev{inst.job(id).arrival, false, id});
    events.push_back(Ev{inst.job(id).deadline, true, id});
  }
  std::sort(events.begin(), events.end(), [](const Ev& a, const Ev& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    if (a.is_deadline != b.is_deadline) {
      return !a.is_deadline;  // arrivals before deadlines
    }
    return a.job < b.job;
  });

  auto profitable = [&](Time p, Time budget) {
    return static_cast<double>(p.ticks()) <=
           k * static_cast<double>(budget.ticks());
  };

  Schedule sched(inst.size());
  std::vector<bool> started(inst.size(), false);
  std::vector<Flag> flags;
  auto start = [&](JobId id, Time t) {
    sched.set_start(id, t);
    started[id] = true;
  };
  for (const Ev& ev : events) {
    if (started[ev.job]) {
      continue;
    }
    const Time t = ev.time;
    if (!ev.is_deadline) {
      // Arrival: profitable to some flag active at t?
      for (const Flag& f : flags) {
        if (f.start <= t && t < f.end &&
            profitable(inst.job(ev.job).length, f.end - t)) {
          start(ev.job, t);
          break;
        }
      }
      continue;
    }
    // Deadline event: designate a flag among unstarted arrived jobs whose
    // deadline is exactly t (ties: longest processing length).
    JobId flag = ev.job;
    for (JobId id = 0; id < inst.size(); ++id) {
      if (!started[id] && inst.job(id).deadline == t &&
          inst.job(id).length > inst.job(flag).length) {
        flag = id;
      }
    }
    const Time pf = inst.job(flag).length;
    start(flag, t);
    flags.push_back(Flag{t, t + pf});
    // Start every pending (arrived, unstarted) profitable job.
    for (JobId id = 0; id < inst.size(); ++id) {
      if (!started[id] && inst.job(id).arrival <= t &&
          profitable(inst.job(id).length, pf)) {
        start(id, t);
      }
    }
  }
  return sched;
}

Schedule reference_eager(const Instance& inst) {
  Schedule sched(inst.size());
  for (JobId id = 0; id < inst.size(); ++id) {
    sched.set_start(id, inst.job(id).arrival);
  }
  return sched;
}

Schedule reference_lazy(const Instance& inst) {
  Schedule sched(inst.size());
  for (JobId id = 0; id < inst.size(); ++id) {
    sched.set_start(id, inst.job(id).deadline);
  }
  return sched;
}

void expect_same_schedule(const Schedule& engine_sched,
                          const Schedule& reference,
                          const Instance& inst, const char* what) {
  for (JobId id = 0; id < inst.size(); ++id) {
    EXPECT_EQ(engine_sched.start(id), reference.start(id))
        << what << " disagrees on " << inst.job(id).to_string() << '\n'
        << inst.to_string();
  }
}

class Differential : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // Mixed granularity: some integral, some fractional-laxity instances.
  Instance instance_ = testing::random_integral_instance(
      GetParam(), /*jobs=*/12, /*horizon=*/20, /*max_laxity=*/6,
      /*max_length=*/5);
};

TEST_P(Differential, EagerMatchesDirectComputation) {
  const auto eager = make_scheduler("eager");
  const SimulationResult result = simulate(instance_, *eager, false);
  expect_same_schedule(result.schedule, reference_eager(result.instance),
                       result.instance, "eager");
}

TEST_P(Differential, LazyMatchesDirectComputation) {
  const auto lazy = make_scheduler("lazy");
  const SimulationResult result = simulate(instance_, *lazy, false);
  expect_same_schedule(result.schedule, reference_lazy(result.instance),
                       result.instance, "lazy");
}

TEST_P(Differential, BatchMatchesDirectComputation) {
  const auto batch = make_scheduler("batch");
  const SimulationResult result = simulate(instance_, *batch, false);
  expect_same_schedule(result.schedule, reference_batch(result.instance),
                       result.instance, "batch");
}

TEST_P(Differential, BatchPlusMatchesDirectComputation) {
  const auto bp = make_scheduler("batch+");
  const SimulationResult result = simulate(instance_, *bp, false);
  expect_same_schedule(result.schedule,
                       reference_batch_plus(result.instance),
                       result.instance, "batch+");
}

TEST_P(Differential, CdbMatchesDirectComputation) {
  const double alpha = 2.0;
  const Time base = Time(Time::kTicksPerUnit);
  CdbScheduler cdb(alpha, base);
  const SimulationResult result = simulate(instance_, cdb, true);
  expect_same_schedule(result.schedule,
                       reference_cdb(result.instance, alpha, base),
                       result.instance, "cdb");
}

TEST_P(Differential, ProfitMatchesDirectComputation) {
  const double k = 1.5;
  ProfitScheduler profit(k);
  const SimulationResult result = simulate(instance_, profit, true);
  expect_same_schedule(result.schedule,
                       reference_profit(result.instance, k),
                       result.instance, "profit");
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, Differential,
                         ::testing::Range<std::uint64_t>(0, 80));

}  // namespace
}  // namespace fjs
