#include "analysis/report.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/assert.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::units;

TEST(Timeline, SingleBusyPeriod) {
  const Instance inst = make_instance({{0, 0, 2}, {1, 1, 2}});
  const Schedule sched = Schedule::from_starts({units(0.0), units(1.0)});
  const TimelineReport report = analyze_timeline(inst, sched);
  ASSERT_EQ(report.busy_periods.size(), 1u);
  EXPECT_EQ(report.busy_periods[0].interval, Interval(units(0.0), units(3.0)));
  EXPECT_EQ(report.busy_periods[0].jobs.size(), 2u);
  EXPECT_EQ(report.busy_periods[0].peak_concurrency, 2u);
  EXPECT_TRUE(report.idle_gaps.empty());
  EXPECT_EQ(report.span, units(3.0));
  EXPECT_EQ(report.horizon, units(3.0));
  EXPECT_DOUBLE_EQ(report.busy_fraction, 1.0);
  EXPECT_EQ(report.longest_idle, Time::zero());
}

TEST(Timeline, TwoPeriodsWithGap) {
  const Instance inst = make_instance({{0, 0, 1}, {5, 5, 2}});
  const Schedule sched = Schedule::from_starts({units(0.0), units(5.0)});
  const TimelineReport report = analyze_timeline(inst, sched);
  ASSERT_EQ(report.busy_periods.size(), 2u);
  ASSERT_EQ(report.idle_gaps.size(), 1u);
  EXPECT_EQ(report.idle_gaps[0], Interval(units(1.0), units(5.0)));
  EXPECT_EQ(report.longest_idle, units(4.0));
  EXPECT_EQ(report.span, units(3.0));
  EXPECT_EQ(report.horizon, units(7.0));
  EXPECT_NEAR(report.busy_fraction, 3.0 / 7.0, 1e-12);
}

TEST(Timeline, JobsAssignedToTheirPeriods) {
  const Instance inst =
      make_instance({{0, 0, 1}, {0.5, 0.5, 1}, {5, 5, 1}});
  const Schedule sched =
      Schedule::from_starts({units(0.0), units(0.5), units(5.0)});
  const TimelineReport report = analyze_timeline(inst, sched);
  ASSERT_EQ(report.busy_periods.size(), 2u);
  EXPECT_EQ(report.busy_periods[0].jobs, (std::vector<JobId>{0, 1}));
  EXPECT_EQ(report.busy_periods[1].jobs, (std::vector<JobId>{2}));
}

TEST(Timeline, PackingEfficiency) {
  // Two unit jobs fully overlapped: work 2, span 1, peak 2 -> 1.0.
  const Instance inst = make_instance({{0, 0, 1}, {0, 0, 1}});
  const Schedule sched = Schedule::from_starts({units(0.0), units(0.0)});
  const TimelineReport report = analyze_timeline(inst, sched);
  EXPECT_DOUBLE_EQ(report.packing_efficiency, 1.0);
}

TEST(Timeline, SpanMatchesProfileIntegral) {
  // Cross-check: the span equals the measure of {t : concurrency(t) > 0}
  // reconstructed from the profile, on a nontrivial schedule.
  const Instance inst = testing::random_integral_instance(8, 15, 20, 6, 4);
  const auto scheduler = make_scheduler("batch+");
  const SimulationResult result = simulate(inst, *scheduler, false);
  const TimelineReport report =
      analyze_timeline(result.instance, result.schedule);
  const auto profile = result.schedule.concurrency_profile(result.instance);
  Time busy = Time::zero();
  for (std::size_t i = 0; i + 1 < profile.size(); ++i) {
    if (profile[i].second > 0) {
      busy += profile[i + 1].first - profile[i].first;
    }
  }
  EXPECT_EQ(report.span, busy);
}

TEST(Timeline, RejectsEmptyInstance) {
  EXPECT_THROW(analyze_timeline(Instance{}, Schedule(0)), AssertionError);
}

TEST(Timeline, ToStringMentionsPeriods) {
  const Instance inst = make_instance({{0, 0, 1}});
  const Schedule sched = Schedule::from_starts({units(0.0)});
  const std::string out = analyze_timeline(inst, sched).to_string();
  EXPECT_NE(out.find("busy periods: 1"), std::string::npos);
}

}  // namespace
}  // namespace fjs
