#include "support/rng.h"

#include <gtest/gtest.h>

#include "support/assert.h"

#include <algorithm>
#include <set>
#include <vector>

namespace fjs {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(4, 4), 4);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.uniform_int(0, 7));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform01();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential(2.0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ParetoTruncatedBounds) {
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.pareto_truncated(1.0, 1.5, 10.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 10.0 + 1e-9);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, WeightedIndexRespectsZeros) {
  Rng rng(31);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 3.0};
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.weighted_index(weights) == 1) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.75, 0.02);
}

TEST(Rng, SplitGivesIndependentStream) {
  Rng parent(43);
  Rng child = parent.split();
  // Child should not replay the parent's stream.
  Rng parent_again(43);
  (void)parent_again();  // consume what split() consumed
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == parent_again()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(47);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng rng(53);
  std::vector<int> v(64);
  for (int i = 0; i < 64; ++i) {
    v[static_cast<std::size_t>(i)] = i;
  }
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(Rng, RejectsBadArguments) {
  Rng rng(59);
  EXPECT_THROW(rng.uniform_int(3, 2), AssertionError);
  EXPECT_THROW(rng.uniform_real(1.0, 1.0), AssertionError);
  EXPECT_THROW(rng.bernoulli(1.5), AssertionError);
  EXPECT_THROW(rng.exponential(0.0), AssertionError);
  EXPECT_THROW(rng.pareto_truncated(1.0, 1.0, 0.5), AssertionError);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), AssertionError);
}

}  // namespace
}  // namespace fjs
