#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/parallel.h"
#include "support/thread_pool.h"

namespace fjs {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&counter] { ++counter; });
    }
  }  // destructor must run all 50
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, RethrowsTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 8,
                            [](std::size_t i) {
                              if (i == 3) {
                                throw std::runtime_error("task failed");
                              }
                            }),
               std::runtime_error);
}

TEST(ParallelMap, PreservesIndexOrder) {
  ThreadPool pool(4);
  const auto out =
      parallel_map(pool, 100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelReduce, MatchesSerialSum) {
  ThreadPool pool(4);
  const std::size_t n = 5000;
  const auto parallel_sum = parallel_reduce<std::uint64_t>(
      pool, n, 0, [](std::size_t i) { return static_cast<std::uint64_t>(i); },
      [](std::uint64_t acc, std::uint64_t v) { return acc + v; });
  EXPECT_EQ(parallel_sum, n * (n - 1) / 2);
}

TEST(ParallelFor, DeterministicAcrossThreadCounts) {
  auto compute = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(256);
    parallel_for(pool, out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(7));
}

TEST(ParallelForDynamic, VisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; }, 1,
               ChunkPolicy::kDynamic);
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForDynamic, RespectsMinChunk) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(97);  // not a multiple of min_chunk
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; }, 8,
               ChunkPolicy::kDynamic);
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForDynamic, DeterministicAcrossThreadCounts) {
  // Slot-indexed writes make the output independent of which worker
  // claims which chunk; 1, 2, and 8 threads must agree exactly even with
  // deliberately uneven per-item costs.
  auto compute = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(512);
    parallel_for(
        pool, out.size(),
        [&](std::size_t i) {
          std::uint64_t acc = i;
          // Uneven work: later indices spin longer.
          for (std::size_t k = 0; k < i * 10; ++k) {
            acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
          }
          out[i] = acc;
        },
        1, ChunkPolicy::kDynamic);
    return out;
  };
  const auto one = compute(1);
  EXPECT_EQ(one, compute(2));
  EXPECT_EQ(one, compute(8));
}

TEST(ParallelForDynamic, MatchesStaticPolicy) {
  ThreadPool pool(4);
  std::vector<double> dynamic_out(300);
  std::vector<double> static_out(300);
  parallel_for(pool, dynamic_out.size(),
               [&](std::size_t i) { dynamic_out[i] = i * 0.5; }, 1,
               ChunkPolicy::kDynamic);
  parallel_for(pool, static_out.size(),
               [&](std::size_t i) { static_out[i] = i * 0.5; }, 1,
               ChunkPolicy::kStatic);
  EXPECT_EQ(dynamic_out, static_out);
}

TEST(ParallelForDynamic, RethrowsTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(
                   pool, 64,
                   [](std::size_t i) {
                     if (i == 17) {
                       throw std::runtime_error("dynamic task failed");
                     }
                   },
                   1, ChunkPolicy::kDynamic),
               std::runtime_error);
}

TEST(ParallelMapDynamic, PreservesIndexOrder) {
  ThreadPool pool(4);
  const auto out = parallel_map(
      pool, 100, [](std::size_t i) { return i * i; }, ChunkPolicy::kDynamic);
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(GlobalPool, IsUsable) {
  auto f = global_pool().submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
}

// --- Work-stealing pool: nesting and exception plumbing ---------------

TEST(TaskGroup, NestedParallelForOnOnePoolDoesNotDeadlock) {
  // The old futures-per-chunk design deadlocked the moment an outer task
  // blocked a worker waiting on inner work; the TaskGroup helping wait
  // must make this complete even on a pool of ONE thread.
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(24, 0);
    parallel_for(pool, out.size(), [&](std::size_t i) {
      std::vector<std::uint64_t> inner(16);
      parallel_for(pool, inner.size(),
                   [&](std::size_t j) { inner[j] = i * 100 + j; }, 1,
                   ChunkPolicy::kDynamic);
      std::uint64_t sum = 0;
      for (const auto v : inner) {
        sum += v;
      }
      out[i] = sum;
    });
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], i * 100 * 16 + 120) << "threads=" << threads;
    }
  }
}

TEST(TaskGroup, DeeplyNestedGroupsComplete) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  std::function<void(int)> spawn = [&](int depth) {
    if (depth == 0) {
      ++leaves;
      return;
    }
    ThreadPool::TaskGroup group(pool);
    for (int i = 0; i < 3; ++i) {
      group.run([&, depth] { spawn(depth - 1); });
    }
    group.wait();
  };
  spawn(4);
  EXPECT_EQ(leaves.load(), 3 * 3 * 3 * 3);
}

TEST(ParallelFor, ManyThrowingTasksPropagateExactlyOneException) {
  // Every chunk throws; exactly ONE exception must escape the call (the
  // first captured), the rest are dropped, and the pool stays usable.
  for (const auto policy : {ChunkPolicy::kStatic, ChunkPolicy::kDynamic}) {
    ThreadPool pool(2);
    int caught = 0;
    std::string message;
    try {
      parallel_for(
          pool, 64,
          [](std::size_t i) {
            throw std::runtime_error("planted " + std::to_string(i));
          },
          1, policy);
    } catch (const std::runtime_error& e) {
      ++caught;
      message = e.what();
    }
    EXPECT_EQ(caught, 1);
    EXPECT_EQ(message.rfind("planted ", 0), 0u) << message;
    // The pool survived: all 64 group nodes were drained before rethrow.
    std::atomic<int> hits{0};
    parallel_for(pool, 32, [&](std::size_t) { ++hits; }, 1, policy);
    EXPECT_EQ(hits.load(), 32);
  }
}

TEST(TaskGroup, StolenTaskExceptionPropagatesExactlyOnce) {
  // Forces a genuine Chase-Lev steal of the throwing task: the group is
  // created on worker A, so the thrower lands on A's own deque; A then
  // spins (without helping) until the task has started, which means the
  // ONLY thread that can possibly execute it is worker B, via steal()
  // (the main thread is parked in future.get() and never helps). The
  // exception is captured on B and must be rethrown exactly once from
  // A's wait().
  ThreadPool pool(2);
  std::atomic<bool> thrower_started{false};
  std::atomic<int> thrower_runs{0};
  std::atomic<int> caught{0};
  auto outer = pool.submit([&] {
    const auto owner_id = std::this_thread::get_id();
    std::thread::id thief_id;
    ThreadPool::TaskGroup group(pool);
    group.run([&] {
      thief_id = std::this_thread::get_id();
      ++thrower_runs;
      thrower_started.store(true);
      throw std::runtime_error("stolen boom");
    });
    while (!thrower_started.load()) {
      std::this_thread::yield();  // pin the deque owner: force the steal
    }
    try {
      group.wait();
    } catch (const std::runtime_error& e) {
      ++caught;
      EXPECT_STREQ(e.what(), "stolen boom");
    }
    EXPECT_NE(thief_id, owner_id) << "task was meant to be stolen";
    // A second wait() must not rethrow: the exception is delivered once.
    group.wait();
  });
  outer.get();
  EXPECT_EQ(caught.load(), 1);
  EXPECT_EQ(thrower_runs.load(), 1);
}

TEST(TaskGroup, AbandonedGroupDrainsWithoutRethrow) {
  // Destroying a group without calling wait() (e.g. unwinding through an
  // outer exception) must drain its tasks and swallow their exceptions.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  {
    ThreadPool::TaskGroup group(pool);
    for (int i = 0; i < 8; ++i) {
      group.run([&ran] {
        ++ran;
        throw std::runtime_error("ignored");
      });
    }
  }  // ~TaskGroup: no std::terminate, no leak
  EXPECT_EQ(ran.load(), 8);
}

}  // namespace
}  // namespace fjs
