#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/parallel.h"
#include "support/thread_pool.h"

namespace fjs {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&counter] { ++counter; });
    }
  }  // destructor must run all 50
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, RethrowsTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 8,
                            [](std::size_t i) {
                              if (i == 3) {
                                throw std::runtime_error("task failed");
                              }
                            }),
               std::runtime_error);
}

TEST(ParallelMap, PreservesIndexOrder) {
  ThreadPool pool(4);
  const auto out =
      parallel_map(pool, 100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelReduce, MatchesSerialSum) {
  ThreadPool pool(4);
  const std::size_t n = 5000;
  const auto parallel_sum = parallel_reduce<std::uint64_t>(
      pool, n, 0, [](std::size_t i) { return static_cast<std::uint64_t>(i); },
      [](std::uint64_t acc, std::uint64_t v) { return acc + v; });
  EXPECT_EQ(parallel_sum, n * (n - 1) / 2);
}

TEST(ParallelFor, DeterministicAcrossThreadCounts) {
  auto compute = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(256);
    parallel_for(pool, out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(7));
}

TEST(ParallelForDynamic, VisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; }, 1,
               ChunkPolicy::kDynamic);
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForDynamic, RespectsMinChunk) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(97);  // not a multiple of min_chunk
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; }, 8,
               ChunkPolicy::kDynamic);
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForDynamic, DeterministicAcrossThreadCounts) {
  // Slot-indexed writes make the output independent of which worker
  // claims which chunk; 1, 2, and 8 threads must agree exactly even with
  // deliberately uneven per-item costs.
  auto compute = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(512);
    parallel_for(
        pool, out.size(),
        [&](std::size_t i) {
          std::uint64_t acc = i;
          // Uneven work: later indices spin longer.
          for (std::size_t k = 0; k < i * 10; ++k) {
            acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
          }
          out[i] = acc;
        },
        1, ChunkPolicy::kDynamic);
    return out;
  };
  const auto one = compute(1);
  EXPECT_EQ(one, compute(2));
  EXPECT_EQ(one, compute(8));
}

TEST(ParallelForDynamic, MatchesStaticPolicy) {
  ThreadPool pool(4);
  std::vector<double> dynamic_out(300);
  std::vector<double> static_out(300);
  parallel_for(pool, dynamic_out.size(),
               [&](std::size_t i) { dynamic_out[i] = i * 0.5; }, 1,
               ChunkPolicy::kDynamic);
  parallel_for(pool, static_out.size(),
               [&](std::size_t i) { static_out[i] = i * 0.5; }, 1,
               ChunkPolicy::kStatic);
  EXPECT_EQ(dynamic_out, static_out);
}

TEST(ParallelForDynamic, RethrowsTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(
                   pool, 64,
                   [](std::size_t i) {
                     if (i == 17) {
                       throw std::runtime_error("dynamic task failed");
                     }
                   },
                   1, ChunkPolicy::kDynamic),
               std::runtime_error);
}

TEST(ParallelMapDynamic, PreservesIndexOrder) {
  ThreadPool pool(4);
  const auto out = parallel_map(
      pool, 100, [](std::size_t i) { return i * i; }, ChunkPolicy::kDynamic);
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(GlobalPool, IsUsable) {
  auto f = global_pool().submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
}

}  // namespace
}  // namespace fjs
