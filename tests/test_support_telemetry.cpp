// Tests for the telemetry layer: counter/histogram correctness, cross-
// thread merging (live and retired cells), delta semantics, snapshot JSON
// filtering by stability, and the Chrome-tracing recorder round-trip.
//
// Metric registration is process-global and permanent, so every metric
// defined here uses a "test." prefix and function-local statics (one
// registration per binary run, never per test invocation).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "support/json.h"
#include "support/telemetry.h"

namespace fjs::telemetry {
namespace {

const CounterValue* find_counter(const Snapshot& snap,
                                 const std::string& name) {
  for (const CounterValue& c : snap.counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const HistogramValue* find_histogram(const Snapshot& snap,
                                     const std::string& name) {
  for (const HistogramValue& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

TEST(Telemetry, CounterAddsAreVisibleInCaptureDeltas) {
  if (!enabled()) GTEST_SKIP() << "built with -DFJS_TELEMETRY=OFF";
  static Counter counter{"test.counter_basic", Stability::kDeterministic};
  const Snapshot before = capture();
  counter.add(5);
  counter.increment();
  const Snapshot diff = delta(before, capture());
  const CounterValue* value = find_counter(diff, "test.counter_basic");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->value, 6u);
  EXPECT_EQ(value->stability, Stability::kDeterministic);
}

TEST(Telemetry, HistogramRecordsCountSumMaxAndLogBuckets) {
  if (!enabled()) GTEST_SKIP() << "built with -DFJS_TELEMETRY=OFF";
  static Histogram hist{"test.hist_basic", Stability::kDeterministic};
  const Snapshot before = capture();
  hist.record(0);
  hist.record(1);
  hist.record(2);
  hist.record(3);
  hist.record(1024);
  const Snapshot diff = delta(before, capture());
  const HistogramValue* value = find_histogram(diff, "test.hist_basic");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->count, 5u);
  EXPECT_EQ(value->sum, 1030u);
  EXPECT_EQ(value->max, 1024u);
  ASSERT_EQ(value->buckets.size(), kHistogramBuckets);
  // bucket i counts values with bit_width == i: {0}, {1}, {2,3}, ...
  EXPECT_EQ(value->buckets[0], 1u);   // 0
  EXPECT_EQ(value->buckets[1], 1u);   // 1
  EXPECT_EQ(value->buckets[2], 2u);   // 2, 3
  EXPECT_EQ(value->buckets[11], 1u);  // 1024
}

TEST(Telemetry, ExitedThreadsFlushIntoTheRetiredAggregate) {
  if (!enabled()) GTEST_SKIP() << "built with -DFJS_TELEMETRY=OFF";
  static Counter counter{"test.counter_threads", Stability::kDeterministic};
  const Snapshot before = capture();
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 1000; ++i) counter.increment();
    });
  }
  for (std::thread& worker : workers) worker.join();
  counter.add(7);  // and one live-thread contribution
  const Snapshot diff = delta(before, capture());
  const CounterValue* value = find_counter(diff, "test.counter_threads");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->value, 4007u);
}

TEST(Telemetry, ScopedTimerRecordsOneSample) {
  if (!enabled()) GTEST_SKIP() << "built with -DFJS_TELEMETRY=OFF";
  static Histogram hist{"test.hist_timer", Stability::kTiming};
  const Snapshot before = capture();
  { const ScopedTimer timer(hist); }
  const Snapshot diff = delta(before, capture());
  const HistogramValue* value = find_histogram(diff, "test.hist_timer");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->count, 1u);
}

// delta() is a pure function over Snapshot values, so it is testable with
// synthetic inputs regardless of the build flag.
TEST(Telemetry, DeltaClampsAndTreatsMissingNamesAsZero) {
  Snapshot begin;
  begin.counters.push_back({"a", Stability::kDeterministic, 10});
  begin.counters.push_back({"c", Stability::kDeterministic, 99});
  Snapshot end;
  end.counters.push_back({"a", Stability::kDeterministic, 17});
  end.counters.push_back({"b", Stability::kDeterministic, 4});
  end.counters.push_back({"c", Stability::kDeterministic, 50});  // "reset"
  const Snapshot diff = delta(begin, end);
  ASSERT_EQ(diff.counters.size(), 3u);
  EXPECT_EQ(find_counter(diff, "a")->value, 7u);
  EXPECT_EQ(find_counter(diff, "b")->value, 4u);   // absent from begin
  EXPECT_EQ(find_counter(diff, "c")->value, 0u);   // clamped, not wrapped
}

TEST(Telemetry, DeltaSubtractsHistogramsAndZeroesMaxWhenEmpty) {
  HistogramValue base;
  base.name = "h";
  base.count = 3;
  base.sum = 30;
  base.max = 16;
  base.buckets.assign(kHistogramBuckets, 0);
  base.buckets[5] = 3;

  HistogramValue grown = base;
  grown.count = 5;
  grown.sum = 90;
  grown.max = 32;
  grown.buckets[6] = 2;

  Snapshot begin;
  begin.histograms.push_back(base);
  Snapshot end;
  end.histograms.push_back(grown);
  const Snapshot diff = delta(begin, end);
  const HistogramValue* value = find_histogram(diff, "h");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->count, 2u);
  EXPECT_EQ(value->sum, 60u);
  EXPECT_EQ(value->max, 32u);  // end-of-region max (upper bound)
  EXPECT_EQ(value->buckets[5], 0u);
  EXPECT_EQ(value->buckets[6], 2u);

  // A region that recorded nothing reports max 0.
  Snapshot same_begin;
  same_begin.histograms.push_back(base);
  Snapshot same_end;
  same_end.histograms.push_back(base);
  const Snapshot empty_diff = delta(same_begin, same_end);
  EXPECT_EQ(empty_diff.histograms[0].count, 0u);
  EXPECT_EQ(empty_diff.histograms[0].max, 0u);
}

TEST(Telemetry, SnapshotJsonFiltersTimingMetricsWhenAskedTo) {
  Snapshot snap;
  snap.counters.push_back({"stable.c", Stability::kDeterministic, 12});
  snap.counters.push_back({"noisy.c", Stability::kTiming, 34});
  HistogramValue hist;
  hist.name = "noisy.h";
  hist.stability = Stability::kTiming;
  hist.count = 1;
  hist.sum = 5;
  hist.max = 5;
  hist.buckets.assign(kHistogramBuckets, 0);
  hist.buckets[3] = 1;
  snap.histograms.push_back(hist);

  const JsonValue stable = snapshot_json(snap, /*deterministic_only=*/true);
  EXPECT_EQ(stable.get("enabled").as_bool(), enabled());
  EXPECT_NE(stable.get("counters").find("stable.c"), nullptr);
  EXPECT_EQ(stable.get("counters").find("noisy.c"), nullptr);
  EXPECT_EQ(stable.get("histograms").find("noisy.h"), nullptr);

  const JsonValue full = snapshot_json(snap, /*deterministic_only=*/false);
  EXPECT_DOUBLE_EQ(full.get("counters").get("noisy.c").as_number(), 34.0);
  const JsonValue& h = full.get("histograms").get("noisy.h");
  EXPECT_DOUBLE_EQ(h.get("count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(h.get("max").as_number(), 5.0);
  // One sample in bucket 3 ([4, 8)): both quantiles report the floor 4.
  EXPECT_DOUBLE_EQ(h.get("p50").as_number(), 4.0);
  EXPECT_DOUBLE_EQ(h.get("p99").as_number(), 4.0);
  // The block dumps byte-identically given the same snapshot.
  EXPECT_EQ(snapshot_json(snap, true).dump(), stable.dump());
}

TEST(Telemetry, TraceRecorderRoundTripsThroughChromeJson) {
  reset_trace();
  EXPECT_FALSE(trace_enabled());
  {
    // With tracing off, scopes and instants must leave no events behind.
    const TraceScope off_scope("unit-off", "test");
    trace_instant("unit-off-instant", "test");
  }
  set_trace_enabled(true);
  {
    const TraceScope scope("unit-span", "test");
    trace_instant("unit-instant", "test");
  }
  set_trace_enabled(false);

  const JsonValue doc = trace_json();
  EXPECT_EQ(doc.get("displayTimeUnit").as_string(), "ms");
  const JsonValue& events = doc.get("traceEvents");
  if (!enabled()) {
    EXPECT_EQ(events.size(), 0u);
    return;
  }
  ASSERT_EQ(events.size(), 2u);
  bool saw_span = false;
  bool saw_instant = false;
  double last_ts = -1.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    const std::string name = event.get("name").as_string();
    EXPECT_TRUE(name.find("unit-off") == std::string::npos) << name;
    EXPECT_EQ(event.get("cat").as_string(), "test");
    EXPECT_DOUBLE_EQ(event.get("pid").as_number(), 1.0);
    EXPECT_GE(event.get("ts").as_number(), last_ts);  // sorted by time
    last_ts = event.get("ts").as_number();
    if (name == "unit-span") {
      saw_span = true;
      EXPECT_EQ(event.get("ph").as_string(), "X");
      EXPECT_GE(event.get("dur").as_number(), 0.0);
    } else if (name == "unit-instant") {
      saw_instant = true;
      EXPECT_EQ(event.get("ph").as_string(), "i");
      EXPECT_EQ(event.find("dur"), nullptr);
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
  EXPECT_EQ(trace_dropped_events(), 0u);

  reset_trace();
  EXPECT_EQ(trace_json().get("traceEvents").size(), 0u);
}

}  // namespace
}  // namespace fjs::telemetry
