// Tests for instance statistics, SVG export and the worst-case miner.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include <algorithm>

#include "adversary/instance_miner.h"
#include "analysis/flag_forest.h"
#include "analysis/instance_stats.h"
#include "analysis/svg.h"
#include "helpers.h"
#include "offline/exact.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/assert.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::units;

TEST(InstanceStats, BasicQuantities) {
  const Instance inst = make_instance({{0, 0, 2}, {1, 5, 4}});
  const InstanceStats stats = compute_instance_stats(inst);
  EXPECT_EQ(stats.jobs, 2u);
  EXPECT_DOUBLE_EQ(stats.mu, 2.0);
  EXPECT_EQ(stats.total_work, units(6.0));
  EXPECT_EQ(stats.arrival_horizon, units(1.0));
  EXPECT_DOUBLE_EQ(stats.rigid_fraction, 0.5);
  // load = 6 / (latest completion 9 − 0).
  EXPECT_NEAR(stats.load_factor, 6.0 / 9.0, 1e-12);
  EXPECT_NE(stats.to_string().find("2 jobs"), std::string::npos);
}

TEST(InstanceStats, RejectsEmpty) {
  EXPECT_THROW(compute_instance_stats(Instance{}), AssertionError);
  EXPECT_THROW(guarantee_table(Instance{}), AssertionError);
}

TEST(InstanceStats, GuaranteeTableUsesMu) {
  const Instance inst = make_instance({{0, 0, 1}, {0, 0, 3}});
  const std::string table = guarantee_table(inst);
  EXPECT_NE(table.find("batch+"), std::string::npos);
  EXPECT_NE(table.find("4 (mu+1, tight)"), std::string::npos);  // mu=3
  EXPECT_NE(table.find("1.618"), std::string::npos);
}

TEST(Svg, ContainsJobRectsAndSpan) {
  const Instance inst = make_instance({{0, 0, 2}, {3, 3, 1}});
  const Schedule sched = Schedule::from_starts({units(0.0), units(3.0)});
  const std::string svg = render_svg_timeline(inst, sched);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("data-job=\"0\""), std::string::npos);
  EXPECT_NE(svg.find("data-job=\"1\""), std::string::npos);
  // Two disjoint components -> two span rects.
  std::size_t span_rects = 0;
  std::size_t pos = 0;
  while ((pos = svg.find("data-role=\"span\"", pos)) != std::string::npos) {
    ++span_rects;
    pos += 1;
  }
  EXPECT_EQ(span_rects, 2u);
  EXPECT_NE(svg.find("span 3"), std::string::npos);
}

TEST(Svg, WritesFile) {
  const Instance inst = make_instance({{0, 0, 1}});
  const Schedule sched = Schedule::from_starts({units(0.0)});
  const std::string path = ::testing::TempDir() + "fjs_timeline.svg";
  ASSERT_TRUE(write_svg_timeline(inst, sched, path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("</svg>"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Svg, FoldsExcessLanes) {
  InstanceBuilder builder;
  for (int i = 0; i < 100; ++i) {
    builder.add_lax(i, 0.0, 1.0);
  }
  const Instance inst = builder.build();
  Schedule sched(inst.size());
  for (JobId id = 0; id < inst.size(); ++id) {
    sched.set_start(id, inst.job(id).arrival);
  }
  SvgOptions options;
  options.max_lanes = 10;
  const std::string svg = render_svg_timeline(inst, sched, options);
  EXPECT_NE(svg.find("more jobs"), std::string::npos);
}

TEST(Svg, RejectsBadOptions) {
  const Instance inst = make_instance({{0, 0, 1}});
  const Schedule sched = Schedule::from_starts({units(0.0)});
  SvgOptions options;
  options.width = 10;
  EXPECT_THROW(render_svg_timeline(inst, sched, options), AssertionError);
}

TEST(Miner, DeterministicAndCertified) {
  MinerOptions options;
  options.population = 16;
  options.rounds = 4;
  options.mutations_per_round = 8;
  options.jobs = 5;
  const MinerResult a = mine_worst_case("batch+", options);
  const MinerResult b = mine_worst_case("batch+", options);
  EXPECT_DOUBLE_EQ(a.worst_ratio, b.worst_ratio);
  // The reported ratio is recomputable from the artifact.
  const auto scheduler = make_scheduler("batch+");
  const Time span = simulate_span(a.worst_instance, *scheduler, false);
  const Time opt = exact_optimal_span(a.worst_instance);
  EXPECT_DOUBLE_EQ(a.worst_ratio, time_ratio(span, opt));
}

TEST(Miner, TrajectoryMonotone) {
  MinerOptions options;
  options.population = 16;
  options.rounds = 6;
  options.mutations_per_round = 8;
  options.jobs = 5;
  const MinerResult result = mine_worst_case("batch", options);
  ASSERT_EQ(result.trajectory.size(), options.rounds + 1);
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_GE(result.trajectory[i], result.trajectory[i - 1]);
  }
  EXPECT_GT(result.evaluations, options.population);
}

TEST(Miner, FindsNontrivialRatioForLazy) {
  MinerOptions options;
  options.population = 32;
  options.rounds = 10;
  options.mutations_per_round = 16;
  options.jobs = 6;
  options.seed = 7;
  const MinerResult result = mine_worst_case("lazy", options);
  EXPECT_GT(result.worst_ratio, 1.5);
}

TEST(Miner, RespectsBatchPlusBound) {
  MinerOptions options;
  options.population = 32;
  options.rounds = 8;
  options.mutations_per_round = 16;
  options.jobs = 6;
  const MinerResult result = mine_worst_case("batch+", options);
  const double mu = result.worst_instance.mu();
  EXPECT_LE(result.worst_ratio, mu + 1.0 + 1e-9);
}

TEST(Miner, GeneralObjectiveSeparatesSchedulers) {
  // Maximize span(lazy)/span(batch+): must find an instance where batch+
  // clearly wins (ratio > 1.3 with modest search effort).
  MinerOptions options;
  options.population = 64;
  options.rounds = 12;
  options.mutations_per_round = 16;
  options.jobs = 6;
  const MinerResult result = mine_instance(
      [](const Instance& inst) {
        const auto lazy = make_scheduler("lazy");
        const auto bp = make_scheduler("batch+");
        return time_ratio(simulate_span(inst, *lazy, false),
                          simulate_span(inst, *bp, false));
      },
      options);
  EXPECT_GT(result.worst_ratio, 1.3);
}

TEST(FlagForest, BuildsTreesFromProfitRun) {
  const Instance inst = testing::random_integral_instance(21, 10, 14, 5, 5);
  ProfitScheduler profit;
  const SimulationResult result = simulate(inst, profit, true);
  const FlagForest forest =
      build_flag_forest(result.instance, profit.flag_history());
  ASSERT_EQ(forest.nodes.size(), profit.flag_history().size());
  // Structural invariants: every child lists its parent, roots counted.
  std::size_t roots = 0;
  for (std::size_t i = 0; i < forest.nodes.size(); ++i) {
    if (forest.nodes[i].parent == FlagForest::kNoParent) {
      ++roots;
    } else {
      const auto& siblings = forest.nodes[forest.nodes[i].parent].children;
      EXPECT_NE(std::find(siblings.begin(), siblings.end(), i),
                siblings.end());
    }
  }
  EXPECT_EQ(forest.tree_count(), roots);
  EXPECT_GE(roots, 1u);
  EXPECT_LT(forest.height(), forest.nodes.size());
  EXPECT_FALSE(forest.to_string(result.instance).empty());
}

TEST(FlagForest, SingleFlagIsOneRoot) {
  const Instance inst = testing::make_instance({{0, 2, 1}});
  ProfitScheduler profit;
  const SimulationResult result = simulate(inst, profit, true);
  const FlagForest forest =
      build_flag_forest(result.instance, profit.flag_history());
  ASSERT_EQ(forest.nodes.size(), 1u);
  EXPECT_EQ(forest.tree_count(), 1u);
  EXPECT_EQ(forest.height(), 0u);
}

TEST(FlagForest, ChainedFlagsFormOneTree) {
  // Two flags where the second arrives before the first's latest
  // completion and starts later: second is the first's parent per §4.3.
  // J0: (a=0, d=1, p=4) — flag at 1. J1: (a=0, d=9, p=9): not profitable
  // to J0 (9 > k*4 for k=1.2), arrives before 1+4=5, deadline 9 > 1.
  const Instance inst = testing::make_instance({{0, 1, 4}, {0, 9, 9}});
  ProfitScheduler profit(1.2);
  const SimulationResult result = simulate(inst, profit, true);
  ASSERT_EQ(profit.flag_history().size(), 2u);
  const FlagForest forest =
      build_flag_forest(result.instance, profit.flag_history());
  EXPECT_EQ(forest.tree_count(), 1u);
  EXPECT_EQ(forest.height(), 1u);
  // Node 0 (earlier deadline) has node 1 as parent.
  EXPECT_EQ(forest.nodes[0].parent, 1u);
}

TEST(Miner, RejectsBadOptions) {
  MinerOptions options;
  options.population = 0;
  EXPECT_THROW(mine_worst_case("batch", options), AssertionError);
}

}  // namespace
}  // namespace fjs
