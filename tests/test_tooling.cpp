// Tests for the tooling layer: ASCII plots, the independent trace
// validator, and schedule serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "helpers.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "sim/trace_check.h"
#include "support/asciiplot.h"
#include "support/assert.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::units;

TEST(AsciiPlot, RendersSeriesAndLegend) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const Series s{.name = "ratio", .ys = {1.0, 2.0, 1.5, 3.0}, .mark = '*'};
  const std::string out = ascii_plot(xs, {s});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("* = ratio"), std::string::npos);
  EXPECT_NE(out.find('3'), std::string::npos);  // y max label
  EXPECT_NE(out.find('1'), std::string::npos);  // y min label
}

TEST(AsciiPlot, MultipleSeriesDistinctMarks) {
  const std::vector<double> xs = {1.0, 2.0};
  const Series a{.name = "a", .ys = {1.0, 2.0}, .mark = 'a'};
  const Series b{.name = "b", .ys = {2.0, 1.0}, .mark = 'b'};
  const std::string out = ascii_plot(xs, {a, b});
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(AsciiPlot, ExtremesLandOnEdges) {
  const std::vector<double> xs = {0.0, 10.0};
  const Series s{.name = "s", .ys = {0.0, 1.0}, .mark = '#'};
  AsciiPlotOptions options;
  options.width = 10;
  options.height = 4;
  const std::string out = ascii_plot(xs, {s}, options);
  // First plot row (max y) must contain the mark in the last column region;
  // last plot row (min y) in the first.
  std::istringstream lines(out);
  std::string first_row;
  std::getline(lines, first_row);
  EXPECT_NE(first_row.find('#'), std::string::npos);
}

TEST(AsciiPlot, ConstantSeriesDoesNotDivideByZero) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const Series s{.name = "flat", .ys = {5.0, 5.0, 5.0}, .mark = '*'};
  EXPECT_NO_THROW(ascii_plot(xs, {s}));
}

TEST(AsciiPlot, LogXRequiresPositive) {
  const std::vector<double> xs = {0.0, 1.0};
  const Series s{.name = "s", .ys = {1.0, 2.0}, .mark = '*'};
  AsciiPlotOptions options;
  options.log_x = true;
  EXPECT_THROW(ascii_plot(xs, {s}, options), AssertionError);
}

TEST(AsciiPlot, RejectsBadInput) {
  const Series s{.name = "s", .ys = {1.0}, .mark = '*'};
  EXPECT_THROW(ascii_plot({1.0}, {s}), AssertionError);          // <2 points
  EXPECT_THROW(ascii_plot({1.0, 2.0}, {}), AssertionError);      // no series
  EXPECT_THROW(ascii_plot({1.0, 2.0}, {s}), AssertionError);     // mismatch
}

TEST(TraceCheck, CleanRunHasNoViolations) {
  const Instance inst = testing::random_integral_instance(3, 10, 12, 5, 4);
  for (const auto& spec : scheduler_registry()) {
    const auto scheduler = spec.make();
    const SimulationResult result =
        simulate(inst, *scheduler, spec.clairvoyant, /*record_trace=*/true);
    const auto violations =
        check_trace(result.instance, result.schedule, result.trace);
    EXPECT_TRUE(violations.empty())
        << spec.key << ":\n" << violations_to_string(violations);
  }
}

TEST(TraceCheck, DetectsMissingCompletion) {
  const Instance inst = make_instance({{0, 1, 1}});
  Trace trace;
  trace.record({.time = units(0.0), .kind = EventKind::kArrival, .job = 0,
                .detail = 0});
  trace.record({.time = units(0.5), .kind = EventKind::kStart, .job = 0,
                .detail = 0});
  const Schedule sched = Schedule::from_starts({units(0.5)});
  const auto violations = check_trace(inst, sched, trace);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations_to_string(violations).find("never completed"),
            std::string::npos);
}

TEST(TraceCheck, DetectsStartOutsideWindow) {
  const Instance inst = make_instance({{0, 1, 1}});
  Trace trace;
  trace.record({.time = units(0.0), .kind = EventKind::kArrival, .job = 0,
                .detail = 0});
  trace.record({.time = units(2.0), .kind = EventKind::kStart, .job = 0,
                .detail = 0});
  trace.record({.time = units(3.0), .kind = EventKind::kCompletion,
                .job = 0, .detail = 0});
  const Schedule sched = Schedule::from_starts({units(2.0)});
  const auto violations = check_trace(inst, sched, trace);
  EXPECT_NE(violations_to_string(violations).find("outside window"),
            std::string::npos);
}

TEST(TraceCheck, DetectsWrongCompletionTime) {
  const Instance inst = make_instance({{0, 1, 1}});
  Trace trace;
  trace.record({.time = units(0.0), .kind = EventKind::kArrival, .job = 0,
                .detail = 0});
  trace.record({.time = units(0.0), .kind = EventKind::kStart, .job = 0,
                .detail = 0});
  trace.record({.time = units(2.0), .kind = EventKind::kCompletion,
                .job = 0, .detail = 0});
  const Schedule sched = Schedule::from_starts({units(0.0)});
  const auto violations = check_trace(inst, sched, trace);
  EXPECT_NE(violations_to_string(violations).find("start + length"),
            std::string::npos);
}

TEST(TraceCheck, DetectsBackwardsTime) {
  const Instance inst = make_instance({{0, 1, 1}});
  Trace trace;
  trace.record({.time = units(1.0), .kind = EventKind::kArrival, .job = 0,
                .detail = 0});
  trace.record({.time = units(0.5), .kind = EventKind::kStart, .job = 0,
                .detail = 0});
  const Schedule sched = Schedule::from_starts({units(0.5)});
  const auto violations = check_trace(inst, sched, trace);
  EXPECT_NE(violations_to_string(violations).find("backwards"),
            std::string::npos);
}

TEST(TraceCheck, DetectsScheduleMismatch) {
  const Instance inst = make_instance({{0, 2, 1}});
  Trace trace;
  trace.record({.time = units(0.0), .kind = EventKind::kArrival, .job = 0,
                .detail = 0});
  trace.record({.time = units(1.0), .kind = EventKind::kStart, .job = 0,
                .detail = 0});
  trace.record({.time = units(2.0), .kind = EventKind::kCompletion,
                .job = 0, .detail = 0});
  const Schedule sched = Schedule::from_starts({units(2.0)});  // differs
  const auto violations = check_trace(inst, sched, trace);
  EXPECT_NE(violations_to_string(violations).find("differs"),
            std::string::npos);
}

TEST(ScheduleIo, RoundTrip) {
  Schedule sched(3);
  sched.set_start(0, units(0.0));
  sched.set_start(2, units(2.5));
  std::stringstream ss;
  sched.write(ss);
  const Schedule parsed = Schedule::parse(ss);
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed.start(0), units(0.0));
  EXPECT_FALSE(parsed.is_set(1));
  EXPECT_EQ(parsed.start(2), units(2.5));
}

TEST(ScheduleIo, ParseRejectsGarbage) {
  std::stringstream ss("not-a-count");
  EXPECT_THROW(Schedule::parse(ss), AssertionError);
}

}  // namespace
}  // namespace fjs
