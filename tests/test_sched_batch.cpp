#include "schedulers/batch.h"

#include <gtest/gtest.h>

#include "adversary/tightness.h"
#include "helpers.h"
#include "sim/engine.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::units;

TEST(Batch, StartsWholeBatchAtFlagDeadline) {
  // J0 hits its deadline at t=2; J1 (pending since 0) starts with it.
  const Instance inst = make_instance({{0, 2, 1}, {0, 9, 3}});
  BatchScheduler batch;
  const SimulationResult result = simulate(inst, batch, false);
  EXPECT_EQ(result.schedule.start(0), units(2.0));
  EXPECT_EQ(result.schedule.start(1), units(2.0));
  EXPECT_EQ(result.span(), units(3.0));
}

TEST(Batch, DoesNotStartArrivalsDuringIteration) {
  // Flag fires at t=0 (J0 laxity 0). J1 arrives at 0.5 while J0 runs —
  // Batch buffers it until ITS deadline at 4 (unlike Batch+).
  const Instance inst = make_instance({{0, 0, 2}, {0.5, 4, 1}});
  BatchScheduler batch;
  const SimulationResult result = simulate(inst, batch, false);
  EXPECT_EQ(result.schedule.start(1), units(4.0));
  EXPECT_EQ(result.span(), units(3.0));  // [0,2) + [4,5)
}

TEST(Batch, SuccessiveIterations) {
  const Instance inst = make_instance(
      {{0, 1, 1}, {0, 5, 1}, {3, 6, 1}, {3, 8, 2}});
  BatchScheduler batch;
  const SimulationResult result = simulate(inst, batch, false);
  // t=1: flag J0 -> starts J0, J1. t=6: flag J2 -> starts J2, J3.
  EXPECT_EQ(result.schedule.start(0), units(1.0));
  EXPECT_EQ(result.schedule.start(1), units(1.0));
  EXPECT_EQ(result.schedule.start(2), units(6.0));
  EXPECT_EQ(result.schedule.start(3), units(6.0));
}

TEST(Batch, SharedDeadlineSingleIteration) {
  const Instance inst = make_instance({{0, 3, 1}, {0, 3, 2}, {1, 3, 1}});
  BatchScheduler batch;
  const SimulationResult result = simulate(inst, batch, false);
  for (JobId id = 0; id < 3; ++id) {
    EXPECT_EQ(result.schedule.start(id), units(3.0));
  }
  EXPECT_EQ(result.span(), units(2.0));
}

TEST(Batch, ZeroLaxityJobTriggersImmediately) {
  const Instance inst = make_instance({{2, 2, 1}, {0, 10, 1}});
  BatchScheduler batch;
  const SimulationResult result = simulate(inst, batch, false);
  // simulate() reorders by arrival: realized J0 = (0,10,1), J1 = (2,2,1).
  EXPECT_EQ(result.schedule.start(1), units(2.0));
  EXPECT_EQ(result.schedule.start(0), units(2.0));
}

/// Figure 2 reproduction at test scale: Batch's measured span must match
/// the closed form 2mμ, the reference must match m(1+ε)+μ, and the ratio
/// must approach 2μ with growing m.
class BatchTightness
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(BatchTightness, MatchesClosedForms) {
  const auto [m, mu] = GetParam();
  const double eps = 0.01;
  const TightnessInstance tight = make_batch_tightness(m, mu, eps);

  BatchScheduler batch;
  const SimulationResult result = simulate(tight.instance, batch, false);
  EXPECT_EQ(result.span(), tight.predicted_online_span)
      << "Batch span deviates from the Figure 2 analysis";
  EXPECT_EQ(tight.reference.span(tight.instance),
            tight.predicted_reference_span);

  const double ratio = time_ratio(result.span(),
                                  tight.reference.span(tight.instance));
  // ratio = 2mμ / (m(1+ε)+μ) — approaches 2μ/(1+ε) from below.
  const double exact = 2.0 * static_cast<double>(m) * mu /
                       (static_cast<double>(m) * (1.0 + eps) + mu);
  EXPECT_NEAR(ratio, exact, 1e-6);
  if (m >= 64) {
    EXPECT_GT(ratio, 2.0 * mu * 0.9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, BatchTightness,
    ::testing::Combine(::testing::Values<std::size_t>(1, 4, 16, 64, 128),
                       ::testing::Values(1.5, 2.0, 4.0)));

}  // namespace
}  // namespace fjs
