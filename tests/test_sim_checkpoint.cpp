// Checkpointed prefix replay: engine snapshot/restore bit-identity across
// the full scheduler registry and both clairvoyance models, plus the
// PortfolioRunner prefix cache (hits must be invisible in every output).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/instance.h"
#include "fuzz/oracles.h"
#include "helpers.h"
#include "schedulers/eager.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "sim/length_oracle.h"
#include "sim/portfolio.h"
#include "sim/source.h"
#include "support/rng.h"

namespace fjs {
namespace {

using testing::random_integral_instance;

class NullSource final : public JobSource {
 public:
  SourceAction begin() override { return {}; }
};

TEST(EngineCheckpointSeries, PlanStridesDedupAndBounds) {
  EngineCheckpointSeries series;
  series.plan(10, 4);  // evenly spread interior indices
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series.capture_index(0), 2u);
  EXPECT_EQ(series.capture_index(1), 4u);
  EXPECT_EQ(series.capture_index(2), 6u);
  EXPECT_EQ(series.capture_index(3), 8u);

  series.plan(3, 8);  // more slots than interior indices: dedup to {1, 2}
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series.capture_index(0), 1u);
  EXPECT_EQ(series.capture_index(1), 2u);

  series.plan(1, 4);  // a single arrival has no interior index
  EXPECT_EQ(series.size(), 0u);

  series.plan(5, 5);  // full coverage: every interior index once
  ASSERT_EQ(series.size(), 4u);
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(series.capture_index(i), i + 1);
  }
}

/// Satellite pin: for EVERY registered scheduler, in every clairvoyance
/// model it supports, a run resumed from a checkpoint captured at EVERY
/// staged-arrival index must finish bit-identically to the uninterrupted
/// run (same span, same starts, tick-for-tick trace suffix). The fuzz
/// oracle implements exactly this comparison; here it sweeps a fixed
/// instance corpus so plain ctest covers the whole registry surface.
TEST(CheckpointRestore, RegistryEveryArrivalBitIdentical) {
  const OracleOptions options;
  for (const auto& spec : scheduler_registry()) {
    const Oracle oracle = checkpoint_replay_oracle(spec, options);
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      const Instance inst =
          random_integral_instance(seed * 7919 + 17, /*jobs=*/9);
      const auto issue = oracle.check(inst);
      ASSERT_FALSE(issue.has_value())
          << "scheduler " << spec.key << " seed " << seed << ": " << *issue;
    }
  }
}

/// save_state -> load_state (into a FRESH scheduler object) -> save_state
/// must reproduce the exact snapshot words for every scheduler and every
/// mid-run capture point: a lossy or asymmetric serialization would break
/// the round trip even when the resumed run happens to finish identically.
TEST(CheckpointRestore, SchedulerSnapshotWordsRoundTrip) {
  for (const auto& spec : scheduler_registry()) {
    for (const bool clairvoyant : {true, false}) {
      if (!clairvoyant && spec.clairvoyant) {
        continue;
      }
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const Instance inst = random_integral_instance(seed * 131 + 7, 10);
        PreparedInstance prepared;
        prepared.prepare(inst);
        const auto scheduler = spec.make();
        EngineCheckpointSeries series;
        series.plan(prepared.size(), prepared.size());
        series.arm(0);
        NullSource source;
        NoDeferralOracle no_deferral;
        Engine engine(source, no_deferral, *scheduler,
                      EngineOptions{.clairvoyant = clairvoyant,
                                    .reserve_jobs = prepared.size()});
        engine.preload_static(prepared.records(), prepared.staged());
        engine.capture_checkpoints(&series);
        engine.run_span();
        std::size_t checked = 0;
        for (std::size_t i = 0; i < series.size(); ++i) {
          if (!series.slot(i).valid) {
            continue;
          }
          const auto fresh = spec.make();
          const auto& words = series.slot(i).scheduler_state;
          fresh->load_state(words.data(), words.size());
          std::vector<std::uint64_t> again;
          fresh->save_state(again);
          ASSERT_EQ(again, words)
              << "scheduler " << spec.key << " seed " << seed << " slot " << i;
          ++checked;
        }
        EXPECT_GT(checked, 0u) << spec.key;
      }
    }
  }
}

/// Perturbs one job of `inst` (arrival, deadline or length) and returns the
/// mutated instance plus the earliest-affected-time hint the miner would
/// attach (min of the old and new arrival of the touched job).
Instance mutate_one_job(const Instance& inst, Rng& rng, Time* hint) {
  std::vector<Job> jobs(inst.view().jobs().begin(), inst.view().jobs().end());
  const auto victim =
      static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(jobs.size()) - 1));
  Job& j = jobs[victim];
  const Time old_arrival = j.arrival;
  const std::int64_t unit = Time::kTicksPerUnit;
  switch (rng.uniform_int(0, 2)) {
    case 0: {
      const std::int64_t a = std::max<std::int64_t>(
          0, j.arrival.ticks() + (rng.bernoulli(0.5) ? unit : -unit));
      j.arrival = Time(a);
      j.deadline = std::max(j.deadline, j.arrival);
      break;
    }
    case 1:
      j.deadline = j.arrival + Time(unit * rng.uniform_int(0, 5));
      break;
    default:
      j.length = Time(unit * rng.uniform_int(1, 4));
      break;
  }
  if (hint != nullptr) {
    *hint = std::min(old_arrival, j.arrival);
  }
  return Instance(std::move(jobs));
}

/// The prefix cache must be invisible: over a mutation-heavy sequence (the
/// miner's access pattern), a cache-enabled runner and a cache-disabled
/// runner must agree on every span and every start for every registered
/// scheduler — and the cache must actually hit.
TEST(PrefixReplay, CacheOnMatchesCacheOffUnderMutationSequence) {
  std::vector<std::unique_ptr<OnlineScheduler>> cached_scheds;
  std::vector<std::unique_ptr<OnlineScheduler>> plain_scheds;
  std::vector<PortfolioEntry> cached_entries;
  std::vector<PortfolioEntry> plain_entries;
  for (const auto& spec : scheduler_registry()) {
    cached_scheds.push_back(spec.make());
    plain_scheds.push_back(spec.make());
    cached_entries.push_back(
        PortfolioEntry{cached_scheds.back().get(), spec.clairvoyant});
    plain_entries.push_back(
        PortfolioEntry{plain_scheds.back().get(), spec.clairvoyant});
  }
  PortfolioRunner cached;
  // Static timelines + NoDeferralOracle: deterministic for nonclairvoyant
  // schedulers too, so the cache may cover the whole registry here.
  cached.enable_prefix_replay(EngineCheckpointSeries::kDefaultSlots,
                              /*include_nonclairvoyant=*/true);
  PortfolioRunner plain;

  Rng rng(20260808);
  Instance inst = random_integral_instance(42, 10);
  std::vector<Time> starts_cached;
  std::vector<Time> starts_plain;
  for (int step = 0; step < 60; ++step) {
    Time hint = Time::max();
    if (step > 0) {
      inst = mutate_one_job(inst, rng, &hint);
    }
    // Alternate between forwarding the miner-style hint and passing no
    // hint: both must select only genuinely valid checkpoints.
    const Time used_hint = step % 3 == 0 ? Time::max() : hint;
    for (std::size_t e = 0; e < cached_entries.size(); ++e) {
      const Time a = cached.run_span(inst, cached_entries[e], &starts_cached,
                                     PortfolioOptions{}, used_hint);
      const Time b =
          plain.run_span(inst, plain_entries[e], &starts_plain);
      ASSERT_EQ(a, b) << "scheduler " << plain_scheds[e]->name() << " step "
                      << step;
      ASSERT_EQ(starts_cached, starts_plain)
          << "scheduler " << plain_scheds[e]->name() << " step " << step;
    }
  }
  const PrefixReplayStats stats = cached.prefix_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GE(stats.arrivals_skipped, stats.hits);
  EXPECT_EQ(plain.prefix_stats().hits + plain.prefix_stats().misses, 0u);
}

/// Clairvoyant-only default: with the default enable_prefix_replay() the
/// nonclairvoyant model never consults the cache (the conservative gate
/// the sweep uses), while clairvoyant runs do.
TEST(PrefixReplay, NonClairvoyantGatedByDefault) {
  EagerScheduler eager;
  PortfolioRunner runner;
  runner.enable_prefix_replay();
  const Instance inst = random_integral_instance(7, 8);
  const PortfolioEntry nc{&eager, /*clairvoyant=*/false};
  const PortfolioEntry cv{&eager, /*clairvoyant=*/true};
  runner.run_span(inst, nc);
  runner.run_span(inst, nc);
  EXPECT_EQ(runner.prefix_stats().hits + runner.prefix_stats().misses, 0u);
  runner.run_span(inst, cv);
  runner.run_span(inst, cv);
  EXPECT_EQ(runner.prefix_stats().misses, 1u);
  EXPECT_EQ(runner.prefix_stats().hits, 1u);
}

}  // namespace
}  // namespace fjs
