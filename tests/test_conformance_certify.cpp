// Tests for the conformance harness and the local-optimality certifier.
#include <gtest/gtest.h>

#include "helpers.h"
#include "offline/certify.h"
#include "offline/exact.h"
#include "offline/heuristic.h"
#include "schedulers/registry.h"
#include "sim/conformance.h"
#include "support/assert.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::units;

TEST(Conformance, AllRegisteredSchedulersPass) {
  for (const auto& spec : scheduler_registry()) {
    const ConformanceReport report =
        run_conformance_suite(spec.make, spec.clairvoyant);
    EXPECT_TRUE(report.passed())
        << spec.key << ":\n" << report.to_string();
    EXPECT_GE(report.probes_run, 10u);
  }
}

TEST(Conformance, CatchesSchedulerThatNeverStarts) {
  class Broken final : public OnlineScheduler {
   public:
    std::string name() const override { return "broken"; }
    void on_arrival(SchedulerContext&, JobId) override {}
    void on_deadline(SchedulerContext&, JobId) override {}  // refuses
  };
  const ConformanceReport report = run_conformance_suite(
      [] { return std::make_unique<Broken>(); }, false);
  EXPECT_FALSE(report.passed());
  EXPECT_EQ(report.issues.size(), report.probes_run);
  EXPECT_NE(report.to_string().find("failure"), std::string::npos);
}

TEST(Conformance, CatchesBoundaryConfusedScheduler) {
  // Starts arrivals only if something is running — then misses its own
  // deadline obligation half the time? No: it must still start at
  // deadline. This one starts at deadline but ALSO tries to start jobs
  // that are already running (double start) when a burst arrives.
  class DoubleStartOnBurst final : public OnlineScheduler {
   public:
    std::string name() const override { return "double-start-on-burst"; }
    void on_arrival(SchedulerContext& ctx, JobId id) override {
      ctx.start_job(id);
      if (ctx.pending().empty() && ctx.running().size() >= 20) {
        ctx.start_job(id);  // bug: double start under bursts
      }
    }
    void on_deadline(SchedulerContext& ctx, JobId id) override {
      ctx.start_job(id);
    }
  };
  const ConformanceReport report = run_conformance_suite(
      [] { return std::make_unique<DoubleStartOnBurst>(); }, false);
  EXPECT_FALSE(report.passed());
  // Only the burst probe trips it.
  bool burst_failed = false;
  for (const auto& issue : report.issues) {
    burst_failed |= issue.probe == "burst-of-twenty";
  }
  EXPECT_TRUE(burst_failed) << report.to_string();
}

TEST(Certify, ExactSchedulesAreLocallyOptimal) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const Instance inst = testing::random_integral_instance(
        seed + 300, /*jobs=*/6, /*horizon=*/10, /*max_laxity=*/4,
        /*max_length=*/4);
    const ExactResult exact = exact_optimal(inst);
    ASSERT_TRUE(exact.optimal()) << inst.to_string();
    EXPECT_TRUE(is_locally_optimal(inst, exact.schedule))
        << inst.to_string();
  }
}

TEST(Certify, HeuristicSchedulesAreLocallyOptimal) {
  // Coordinate descent terminates only at a 1-opt local optimum.
  const Instance inst = testing::random_integral_instance(9, 12, 15, 5, 4);
  const HeuristicResult result = heuristic_optimal(inst);
  EXPECT_TRUE(is_locally_optimal(inst, result.schedule));
}

TEST(Certify, FindsTheObviousImprovement) {
  // Two loose unit jobs scheduled apart: moving one onto the other saves 1.
  const Instance inst = make_instance({{0, 9, 1}, {0, 9, 1}});
  const Schedule bad = Schedule::from_starts({units(0.0), units(5.0)});
  const auto move = find_improving_move(inst, bad);
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->span_before, units(2.0));
  EXPECT_EQ(move->span_after, units(1.0));
  // Applying the move yields the claimed span.
  Schedule fixed(2);
  for (JobId id = 0; id < 2; ++id) {
    fixed.set_start(id, id == move->job ? move->new_start
                                        : bad.start(id));
  }
  EXPECT_EQ(fixed.span(inst), move->span_after);
}

TEST(Certify, RigidScheduleTriviallyLocallyOptimal) {
  const Instance inst = make_instance({{0, 0, 1}, {5, 5, 1}});
  const Schedule forced = Schedule::from_starts({units(0.0), units(5.0)});
  EXPECT_TRUE(is_locally_optimal(inst, forced));
}

TEST(Certify, LocalOptimumNeedNotBeGlobal) {
  // A 1-opt local optimum that is NOT globally optimal: two long jobs
  // anchored apart, each covering one of two short rigid jobs; moving
  // either long job alone doesn't help, but moving both together would.
  // (Existence of such instances is why the heuristic uses restarts.)
  const Instance inst = make_instance(
      {{0, 0, 1}, {10, 10, 1}, {0, 10, 4}, {0, 10, 4}});
  const Schedule stuck = Schedule::from_starts(
      {units(0.0), units(10.0), units(0.0), units(10.0)});
  // span = 4 + 4 = 8; optimal stacks both longs on one side: 4 + 1 = ...
  const Time opt = exact_optimal_span(inst);
  EXPECT_LT(opt, stuck.span(inst));
  // The certifier may or may not find a single improving move here; if it
  // claims local optimality, that must NOT be confused with global.
  if (is_locally_optimal(inst, stuck)) {
    SUCCEED();
  } else {
    const auto move = find_improving_move(inst, stuck);
    EXPECT_LT(move->span_after, stuck.span(inst));
  }
}

}  // namespace
}  // namespace fjs
