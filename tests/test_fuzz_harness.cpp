// Tests for the property-based fuzzing harness: generator coverage,
// oracle sensitivity, shrinker convergence/determinism, repro round-trip,
// and thread-count-independent harness output.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "fuzz/generator.h"
#include "fuzz/harness.h"
#include "fuzz/oracles.h"
#include "fuzz/repro.h"
#include "fuzz/shrink.h"
#include "helpers.h"
#include "schedulers/registry.h"
#include "support/assert.h"

namespace fjs {
namespace {

using testing::make_instance;

bool same_jobs(const Instance& a, const Instance& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (JobId id = 0; id < a.size(); ++id) {
    const Job& x = a.job(id);
    const Job& y = b.job(id);
    if (x.arrival != y.arrival || x.deadline != y.deadline ||
        x.length != y.length) {
      return false;
    }
  }
  return true;
}

TEST(FuzzGenerator, DeterministicPerSeed) {
  const FuzzGenConfig config;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const Instance a = generate_fuzz_instance(config, seed);
    const Instance b = generate_fuzz_instance(config, seed);
    EXPECT_TRUE(same_jobs(a, b)) << "seed " << seed;
  }
  // Different seeds almost surely differ.
  std::size_t distinct = 0;
  const Instance first = generate_fuzz_instance(config, 1);
  for (std::uint64_t seed = 2; seed <= 20; ++seed) {
    distinct += same_jobs(first, generate_fuzz_instance(config, seed)) ? 0 : 1;
  }
  EXPECT_GE(distinct, 18u);
}

TEST(FuzzGenerator, EveryInstanceValidAndEdgeCasesCovered) {
  const FuzzGenConfig config;
  constexpr std::int64_t kUnit = Time::kTicksPerUnit;
  std::size_t zero_laxity = 0;
  std::size_t one_tick_laxity = 0;
  std::size_t tied_arrivals = 0;
  std::size_t fractional = 0;
  std::size_t huge_arrival = 0;
  std::size_t huge_length = 0;
  std::size_t duplicates = 0;
  for (std::uint64_t seed = 1; seed <= 2'000; ++seed) {
    const Instance inst = generate_fuzz_instance(config, seed);
    ASSERT_GE(inst.size(), config.min_jobs);
    ASSERT_LE(inst.size(), config.max_jobs);
    // Construction + latest_completion already validate windows/overflow;
    // re-assert the basics explicitly.
    EXPECT_NO_THROW((void)inst.latest_completion());
    for (const Job& j : inst.view().jobs()) {
      ASSERT_LE(j.arrival, j.deadline);
      ASSERT_GT(j.length, Time::zero());
      const Time laxity = j.deadline - j.arrival;
      zero_laxity += laxity == Time::zero() ? 1 : 0;
      one_tick_laxity += laxity == Time(1) ? 1 : 0;
      fractional += (j.arrival.ticks() % kUnit != 0 ||
                     j.deadline.ticks() % kUnit != 0 ||
                     j.length.ticks() % kUnit != 0)
                        ? 1
                        : 0;
      huge_arrival += j.arrival > Time(Time::max().ticks() / 2) ? 1u : 0u;
      huge_length += j.length > Time(Time::max().ticks() / 2) ? 1u : 0u;
    }
    for (JobId a = 0; a < inst.size(); ++a) {
      for (JobId b = a + 1; b < inst.size(); ++b) {
        if (inst.job(a).arrival == inst.job(b).arrival) {
          ++tied_arrivals;
          if (inst.job(a).deadline == inst.job(b).deadline &&
              inst.job(a).length == inst.job(b).length) {
            ++duplicates;
          }
        }
      }
    }
  }
  EXPECT_GT(zero_laxity, 100u);
  EXPECT_GT(one_tick_laxity, 20u);
  EXPECT_GT(tied_arrivals, 100u);
  EXPECT_GT(fractional, 100u);
  EXPECT_GT(huge_arrival, 10u);
  EXPECT_GT(huge_length, 10u);
  EXPECT_GT(duplicates, 50u);
}

TEST(FuzzOracles, StandardBatteryNamesAndCleanCorpus) {
  const std::vector<Oracle> oracles = standard_oracles();
  const std::size_t n_schedulers = scheduler_registry().size();
  ASSERT_EQ(oracles.size(), 2 * n_schedulers + 5);
  EXPECT_EQ(oracles.front().name, "sched:eager");
  EXPECT_EQ(oracles[n_schedulers].name, "ckpt:eager");
  EXPECT_EQ(oracles[oracles.size() - 5].name, "ratio-bounds");
  EXPECT_EQ(oracles[oracles.size() - 4].name, "offline-sandwich");
  EXPECT_EQ(oracles[oracles.size() - 3].name, "exact-vs-reference");
  EXPECT_EQ(oracles[oracles.size() - 2].name, "view-vs-owned");
  EXPECT_EQ(oracles.back().name, "simd-vs-scalar");

  const FuzzGenConfig config;
  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    const Instance inst = generate_fuzz_instance(config, seed);
    const auto failures = run_oracles(inst, oracles);
    ASSERT_TRUE(failures.empty())
        << "seed " << seed << ": [" << failures.front().oracle << "] "
        << failures.front().detail;
  }
}

/// Never starts a job on its own; on_deadline does nothing, so the engine
/// reports the contract violation and the oracle must surface it.
class IgnoresDeadlines final : public OnlineScheduler {
 public:
  std::string name() const override { return "ignores-deadlines"; }
  void on_arrival(SchedulerContext&, JobId) override {}
  void on_deadline(SchedulerContext&, JobId) override {}
};

/// Claims to be non-clairvoyant but secretly changes behavior when lengths
/// are revealed — exactly what the length-oracle consistency check exists
/// to catch.
class PeeksAtModel final : public OnlineScheduler {
 public:
  std::string name() const override { return "peeks-at-model"; }
  void on_arrival(SchedulerContext& ctx, JobId id) override {
    if (ctx.clairvoyant()) {
      ctx.start_job(id);  // eager when observed, lazy when not
    }
  }
  void on_deadline(SchedulerContext& ctx, JobId id) override {
    if (ctx.is_pending(id)) {
      ctx.start_job(id);
    }
  }
};

TEST(FuzzOracles, CatchesSchedulerThatIgnoresDeadlines) {
  const Oracle oracle = scheduler_oracle(SchedulerSpec{
      "bad", false, []() { return std::make_unique<IgnoresDeadlines>(); }});
  const auto detail = oracle.check(make_instance({{0, 0, 2}}));
  ASSERT_TRUE(detail.has_value());
  EXPECT_NE(detail->find("simulation threw"), std::string::npos) << *detail;
}

TEST(FuzzOracles, CatchesLengthOracleInconsistency) {
  const Oracle oracle = scheduler_oracle(SchedulerSpec{
      "sneaky", false, []() { return std::make_unique<PeeksAtModel>(); }});
  const auto detail = oracle.check(make_instance({{0, 2, 1}}));
  ASSERT_TRUE(detail.has_value());
  EXPECT_NE(detail->find("length-oracle inconsistency"), std::string::npos)
      << *detail;
}

/// Synthetic failure for shrinker tests: "some job is >= 3 units long, and
/// there are at least two jobs". Deterministic and structure-free.
bool synthetic_failure(const Instance& inst) {
  if (inst.size() < 2) {
    return false;
  }
  for (const Job& j : inst.view().jobs()) {
    if (j.length >= Time::from_units(3.0)) {
      return true;
    }
  }
  return false;
}

TEST(FuzzShrink, ConvergesToMinimalInstanceDeterministically) {
  FuzzGenConfig config;
  config.min_jobs = 10;
  config.max_jobs = 14;
  config.p_huge = 0.0;
  Instance seed_instance;
  std::uint64_t seed = 1;
  for (;; ++seed) {
    seed_instance = generate_fuzz_instance(config, seed);
    if (synthetic_failure(seed_instance)) {
      break;
    }
  }

  const ShrinkResult first =
      shrink_instance(seed_instance, synthetic_failure, {});
  const ShrinkResult second =
      shrink_instance(seed_instance, synthetic_failure, {});
  EXPECT_TRUE(same_jobs(first.instance, second.instance));
  EXPECT_EQ(first.predicate_calls, second.predicate_calls);

  EXPECT_TRUE(first.fixpoint);
  ASSERT_EQ(first.instance.size(), 2u);  // predicate needs >= 2 jobs
  // One job carries the ">= 3 units" property and cannot shrink below it;
  // the other is fully minimized.
  std::size_t minimal = 0;
  std::size_t carrier = 0;
  for (const Job& j : first.instance.view().jobs()) {
    if (j.length >= Time::from_units(3.0)) {
      ++carrier;
      EXPECT_LT(j.length, Time::from_units(6.0));  // halving would still fail
    }
    if (j.arrival == Time::zero() && j.deadline == Time::zero() &&
        j.length == Time(1)) {
      ++minimal;
    }
  }
  EXPECT_EQ(carrier, 1u);
  EXPECT_EQ(minimal, 1u);
}

TEST(FuzzShrink, RejectsNonFailingSeed) {
  const Instance inst = make_instance({{0, 0, 1}});
  EXPECT_THROW(
      shrink_instance(inst, [](const Instance&) { return false; }, {}),
      AssertionError);
}

TEST(FuzzRepro, RoundTripsTickExactIncludingNearOverflow) {
  // Near-overflow ticks that Instance::write/parse (unit doubles) would
  // corrupt — the reason the repro format serializes raw ticks.
  const std::int64_t huge = Time::max().ticks() - 12'345;
  InstanceBuilder builder;
  builder.add_ticks(Time(huge - 10), Time(huge - 10), Time(7));
  builder.add_ticks(Time(0), Time(1), Time(huge));
  ReproFile repro;
  repro.seed = 0xDEADBEEFULL;
  repro.oracle = "sched:eager";
  repro.detail = "multi\nline detail";
  repro.original = builder.build();
  repro.shrunk = make_instance({{0, 0, 1}});

  std::stringstream stream;
  write_repro(stream, repro);
  const ReproFile parsed = parse_repro(stream);
  EXPECT_EQ(parsed.seed, repro.seed);
  EXPECT_EQ(parsed.oracle, repro.oracle);
  EXPECT_EQ(parsed.detail, "multi line detail");  // flattened on write
  EXPECT_TRUE(same_jobs(parsed.original, repro.original));
  ASSERT_TRUE(parsed.shrunk.has_value());
  EXPECT_TRUE(same_jobs(*parsed.shrunk, *repro.shrunk));

  // Without the optional shrunk section.
  repro.shrunk.reset();
  std::stringstream stream2;
  write_repro(stream2, repro);
  EXPECT_FALSE(parse_repro(stream2).shrunk.has_value());
}

/// Parses `text` expecting failure; returns the error message.
std::string parse_error(const std::string& text) {
  std::stringstream stream(text);
  try {
    (void)parse_repro(stream);
  } catch (const AssertionError& e) {
    return e.what();
  }
  ADD_FAILURE() << "parse_repro accepted malformed input:\n" << text;
  return {};
}

TEST(FuzzRepro, ParseRejectsMalformedInputWithLocation) {
  // Every diagnostic names the 1-based line (and column where it applies).
  EXPECT_NE(parse_error("not a repro\n").find("repro:1: bad header"),
            std::string::npos);
  EXPECT_NE(parse_error("").find("repro:1: empty file"), std::string::npos);

  const std::string head = "fjs-fuzz-repro v1\nseed 7\noracle x\ndetail y\n";

  // Truncated job list: error points past the last line and reports the
  // expected/got counts.
  const std::string truncated = parse_error(head + "original 2\n0 0 1\n");
  EXPECT_NE(truncated.find("repro:7:"), std::string::npos) << truncated;
  EXPECT_NE(truncated.find("expected 2 jobs, got 1"), std::string::npos)
      << truncated;

  // Bad seed token: line and column (column counts the 'seed ' prefix).
  const std::string bad_seed =
      parse_error("fjs-fuzz-repro v1\nseed -3\noracle x\ndetail y\n"
                  "original 1\n0 0 1\n");
  EXPECT_NE(bad_seed.find("repro:2:6:"), std::string::npos) << bad_seed;
  EXPECT_NE(bad_seed.find("non-negative"), std::string::npos) << bad_seed;

  // Trailing junk inside a numeric field is pinpointed at the junk.
  const std::string junk = parse_error(head + "original 1\n0 0 1x\n");
  EXPECT_NE(junk.find("repro:6:6:"), std::string::npos) << junk;
  EXPECT_NE(junk.find("trailing junk in length"), std::string::npos) << junk;

  // Wrong field count on a job line.
  const std::string fields = parse_error(head + "original 1\n0 0\n");
  EXPECT_NE(fields.find("repro:6:"), std::string::npos) << fields;
  EXPECT_NE(fields.find("got 2 fields"), std::string::npos) << fields;

  // A corrupt count must fail fast, not reserve() gigabytes.
  const std::string count =
      parse_error(head + "original 99999999999\n0 0 1\n");
  EXPECT_NE(count.find("repro:5:"), std::string::npos) << count;
  EXPECT_NE(count.find("exceeds the repro limit"), std::string::npos) << count;

  // Trailing garbage after the original (non-shrunk) section.
  const std::string garbage =
      parse_error(head + "original 1\n0 0 1\nwhatever\n");
  EXPECT_NE(garbage.find("repro:7:"), std::string::npos) << garbage;
  EXPECT_NE(garbage.find("expected 'shrunk <count>' or end of file"),
            std::string::npos)
      << garbage;

  // Trailing garbage after the shrunk section.
  const std::string after_shrunk = parse_error(
      head + "original 1\n0 0 1\nshrunk 1\n0 0 1\ntrailing\n");
  EXPECT_NE(after_shrunk.find("repro:9:"), std::string::npos) << after_shrunk;
  EXPECT_NE(after_shrunk.find("trailing garbage after the shrunk"),
            std::string::npos)
      << after_shrunk;

  // Jobs that parse but violate the instance invariants point back at the
  // section header.
  const std::string invalid = parse_error(head + "original 1\n5 0 1\n");
  EXPECT_NE(invalid.find("repro:5:"), std::string::npos) << invalid;
  EXPECT_NE(invalid.find("not a valid instance"), std::string::npos)
      << invalid;

  // Comments and blank lines are skipped but still counted for locations.
  const std::string commented = parse_error(
      "# saved by fjs_fuzz\n\nfjs-fuzz-repro v1\nseed 7\noracle x\n"
      "detail y\noriginal 1\nbogus 0 1\n");
  EXPECT_NE(commented.find("repro:8:"), std::string::npos) << commented;
}

FuzzOptions synthetic_options() {
  FuzzOptions options;
  options.seed_start = 1;
  options.count = 400;
  options.gen.p_huge = 0.0;
  options.max_failures = 3;
  options.oracles.push_back(Oracle{
      "synthetic", [](const Instance& inst) -> std::optional<std::string> {
        return synthetic_failure(inst)
                   ? std::optional<std::string>("synthetic failure")
                   : std::nullopt;
      }});
  return options;
}

TEST(FuzzHarness, DeterministicAcrossThreadCounts) {
  FuzzOptions serial = synthetic_options();
  serial.threads = 1;
  FuzzOptions wide = synthetic_options();
  wide.threads = 8;
  const FuzzReport a = run_fuzz(serial);
  const FuzzReport b = run_fuzz(wide);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  ASSERT_EQ(a.failures.size(), 3u);  // max_failures reached on this window
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].seed, b.failures[i].seed);
    EXPECT_EQ(a.failures[i].oracle, b.failures[i].oracle);
    ASSERT_TRUE(a.failures[i].shrunk.has_value());
    ASSERT_TRUE(b.failures[i].shrunk.has_value());
    EXPECT_TRUE(same_jobs(*a.failures[i].shrunk, *b.failures[i].shrunk));
    EXPECT_TRUE(a.failures[i].shrink_stats->fixpoint);
  }
}

TEST(FuzzHarness, EmitsReplayableReproFiles) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "fjs_fuzz_repro_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  FuzzOptions options = synthetic_options();
  options.max_failures = 1;
  options.repro_dir = dir.string();
  const FuzzReport report = run_fuzz(options);
  ASSERT_EQ(report.failures.size(), 1u);
  const FuzzCase& fuzz_case = report.failures.front();
  ASSERT_FALSE(fuzz_case.repro_path.empty());

  const ReproFile repro = load_repro(fuzz_case.repro_path);
  EXPECT_EQ(repro.seed, fuzz_case.seed);
  EXPECT_EQ(repro.oracle, "synthetic");
  // Seed replay: regenerating from the recorded seed reproduces the
  // original instance, and both recorded instances still fail.
  EXPECT_TRUE(same_jobs(repro.original,
                        generate_fuzz_instance(options.gen, repro.seed)));
  EXPECT_TRUE(synthetic_failure(repro.original));
  ASSERT_TRUE(repro.shrunk.has_value());
  EXPECT_TRUE(synthetic_failure(*repro.shrunk));
  std::filesystem::remove_all(dir);
}

TEST(FuzzHarness, ReportsPassAndThroughputFields) {
  FuzzOptions options;
  options.count = 60;
  options.oracles.push_back(
      Oracle{"always-pass",
             [](const Instance&) { return std::optional<std::string>{}; }});
  const FuzzReport report = run_fuzz(options);
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.instances_run, 60u);
  EXPECT_GT(report.instances_per_minute(), 0.0);
  EXPECT_NE(report.summary().find("0 failures"), std::string::npos);
}

}  // namespace
}  // namespace fjs
