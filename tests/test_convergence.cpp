#include "analysis/convergence.h"

#include <gtest/gtest.h>

#include "adversary/tightness.h"
#include "schedulers/batch.h"
#include "schedulers/batch_plus.h"
#include "sim/engine.h"
#include "support/assert.h"

namespace fjs {
namespace {

TEST(Asymptote, ExactRecoveryOnSyntheticData) {
  // y = 3 + 5/x fitted exactly.
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  std::vector<double> ys;
  for (const double x : xs) {
    ys.push_back(3.0 + 5.0 / x);
  }
  const AsymptoteFit fit = fit_asymptote(xs, ys);
  EXPECT_NEAR(fit.limit, 3.0, 1e-12);
  EXPECT_NEAR(fit.slope, 5.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Asymptote, NoisyDataStillClose) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
  const std::vector<double> ys = {7.99, 5.52, 4.24, 3.63, 3.32, 3.15};
  const AsymptoteFit fit = fit_asymptote(xs, ys);  // ~ 3 + 5/x
  EXPECT_NEAR(fit.limit, 3.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(Asymptote, RejectsBadInput) {
  EXPECT_THROW(fit_asymptote({1.0, 2.0}, {1.0, 2.0}), AssertionError);
  EXPECT_THROW(fit_asymptote({1.0, 2.0, 3.0}, {1.0, 2.0}), AssertionError);
  EXPECT_THROW(fit_asymptote({0.0, 1.0, 2.0}, {1.0, 2.0, 3.0}),
               AssertionError);
  EXPECT_THROW(fit_asymptote({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0}),
               AssertionError);
}

TEST(Asymptote, BatchTightnessLimitMatchesTheorem34) {
  // The Fig. 2 ratio is 2mμ/(m(1+ε)+μ), so its RECIPROCAL is exactly
  // linear in 1/m: 1/r = (1+ε)/(2μ) + (1/2)·(1/m). Fitting reciprocals
  // recovers the limit 2μ/(1+ε) exactly.
  const double mu = 2.0;
  const double eps = 0.01;
  std::vector<double> ms;
  std::vector<double> inverse_ratios;
  for (const std::size_t m : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const TightnessInstance tight = make_batch_tightness(m, mu, eps);
    BatchScheduler batch;
    const Time span = simulate_span(tight.instance, batch, false);
    ms.push_back(static_cast<double>(m));
    inverse_ratios.push_back(
        1.0 / time_ratio(span, tight.reference.span(tight.instance)));
  }
  const AsymptoteFit fit = fit_asymptote(ms, inverse_ratios);
  EXPECT_NEAR(1.0 / fit.limit, 2.0 * mu / (1.0 + eps), 1e-3);
  EXPECT_GT(fit.r_squared, 0.999999);
}

TEST(Asymptote, BatchPlusTightnessLimitMatchesTheorem35) {
  // Fig. 3 ratio = m(μ+1−ε)/(m+μ): reciprocal linear in 1/m again.
  const double mu = 4.0;
  const double eps = 0.01;
  std::vector<double> ms;
  std::vector<double> inverse_ratios;
  for (const std::size_t m : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const TightnessInstance tight = make_batch_plus_tightness(m, mu, eps);
    BatchPlusScheduler bp;
    const Time span = simulate_span(tight.instance, bp, false);
    ms.push_back(static_cast<double>(m));
    inverse_ratios.push_back(
        1.0 / time_ratio(span, tight.reference.span(tight.instance)));
  }
  const AsymptoteFit fit = fit_asymptote(ms, inverse_ratios);
  EXPECT_NEAR(1.0 / fit.limit, mu + 1.0 - eps, 1e-3);
  EXPECT_GT(fit.r_squared, 0.999999);
}

}  // namespace
}  // namespace fjs
