#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/assert.h"
#include "support/csv.h"
#include "support/string_util.h"
#include "support/table.h"

namespace fjs {
namespace {

TEST(StringUtil, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(3.14, 4), "3.14");
  EXPECT_EQ(format_double(2.0, 4), "2");
  EXPECT_EQ(format_double(-0.0, 4), "0");
  EXPECT_EQ(format_double(0.5, 1), "0.5");
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
}

TEST(StringUtil, FormatFixedKeepsDecimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 3), "2.000");
}

TEST(StringUtil, JoinAndSplit) {
  EXPECT_EQ(join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(join({}, ","), "");
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, Pad) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcde", 3), "abcde");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("batch+", "batch"));
  EXPECT_FALSE(starts_with("bat", "batch"));
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Numeric cells right-align: "22" should be preceded by spaces.
  EXPECT_NE(out.find(" 22"), std::string::npos);
}

TEST(Table, NumericRowFormatting) {
  Table t({"a", "b"});
  t.add_row_numeric({1.0, 2.5}, 3);
  EXPECT_EQ(t.row_count(), 1u);
  const std::string csv = t.render_csv();
  EXPECT_EQ(csv, "a,b\n1,2.5\n");
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), AssertionError);
}

TEST(Csv, WritesQuotedCells) {
  const std::string path = ::testing::TempDir() + "fjs_csv_test.csv";
  {
    CsvWriter csv(path, {"x", "note"});
    csv.write_row({"1", "has,comma"});
    csv.write_row({"2", "has\"quote"});
    ASSERT_TRUE(csv.ok());
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  EXPECT_NE(content.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(content.find("\"has\"\"quote\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, RejectsWidthMismatch) {
  const std::string path = ::testing::TempDir() + "fjs_csv_test2.csv";
  CsvWriter csv(path, {"x"});
  EXPECT_THROW(csv.write_row({"1", "2"}), AssertionError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fjs
