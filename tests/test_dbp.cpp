#include <gtest/gtest.h>

#include <map>

#include "dbp/pipeline.h"
#include "dbp/simulator.h"
#include "helpers.h"
#include "support/assert.h"
#include "support/rng.h"
#include "workload/cloud_trace.h"
#include "workload/generator.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::units;

/// Reference usage computation: per-bin union of assigned item intervals,
/// done independently of the simulator's incremental accounting.
Time reference_usage(const Instance& inst, const Schedule& sched,
                     const DbpResult& result) {
  std::map<std::size_t, IntervalSet> per_bin;
  for (JobId id = 0; id < inst.size(); ++id) {
    per_bin[result.assignment[id]].add(sched.active_interval(inst, id));
  }
  Time total = Time::zero();
  for (const auto& [bin, set] : per_bin) {
    total += set.measure();
  }
  return total;
}

/// Capacity invariant: at every interval endpoint, per-bin load <= cap.
void check_capacity(const Instance& inst, const Schedule& sched,
                    const std::vector<double>& sizes,
                    const DbpResult& result, double capacity) {
  std::vector<Time> probes;
  for (JobId id = 0; id < inst.size(); ++id) {
    probes.push_back(sched.active_interval(inst, id).lo);
  }
  for (const Time t : probes) {
    std::map<std::size_t, double> load;
    for (JobId id = 0; id < inst.size(); ++id) {
      if (sched.active_interval(inst, id).contains(t)) {
        load[result.assignment[id]] += sizes[id];
      }
    }
    for (const auto& [bin, l] : load) {
      EXPECT_LE(l, capacity + 1e-6) << "bin " << bin;
    }
  }
}

TEST(FirstFit, FillsLowestIndexedBin) {
  // Three overlapping items of size 0.5, 0.5, 0.5: first two share bin 0.
  const Instance inst = make_instance({{0, 0, 2}, {0, 0, 2}, {0, 0, 2}});
  const Schedule sched =
      Schedule::from_starts({units(0.0), units(0.0), units(0.0)});
  const std::vector<double> sizes = {0.5, 0.5, 0.5};
  FirstFitPacker ff;
  const DbpResult result = run_packing(inst, sched, sizes, ff);
  EXPECT_EQ(result.assignment[0], 0u);
  EXPECT_EQ(result.assignment[1], 0u);
  EXPECT_EQ(result.assignment[2], 1u);
  EXPECT_EQ(result.bins_opened, 2u);
  EXPECT_EQ(result.total_usage, units(4.0));
  EXPECT_EQ(result.peak_open_bins, 2u);
}

TEST(FirstFit, ReusesFreedCapacity) {
  // Item 0 departs at 2; item 2 starting at 2 fits back into bin 0.
  const Instance inst = make_instance({{0, 0, 2}, {0, 0, 4}, {2, 2, 2}});
  const Schedule sched =
      Schedule::from_starts({units(0.0), units(0.0), units(2.0)});
  const std::vector<double> sizes = {0.6, 0.4, 0.6};
  FirstFitPacker ff;
  const DbpResult result = run_packing(inst, sched, sizes, ff);
  EXPECT_EQ(result.assignment[2], 0u);
  EXPECT_EQ(result.bins_opened, 1u);
  EXPECT_EQ(result.total_usage, units(4.0));
}

TEST(BestFit, PicksTightestBin) {
  // Bins at loads 0.5 and 0.7; a 0.3 item best-fits the 0.7 bin.
  const Instance inst =
      make_instance({{0, 0, 4}, {0, 0, 4}, {1, 1, 2}, {1, 1, 2}});
  const Schedule sched = Schedule::from_starts(
      {units(0.0), units(0.0), units(1.0), units(1.0)});
  // Items: 0.5 (bin0), 0.7 (bin1 via FF semantics of best fit on empty),
  // then 0.3 twice.
  const std::vector<double> sizes = {0.5, 0.7, 0.3, 0.3};
  BestFitPacker bf;
  const DbpResult result = run_packing(inst, sched, sizes, bf);
  EXPECT_EQ(result.assignment[2], 1u);  // 0.7+0.3 = 1.0 — tightest
  EXPECT_EQ(result.assignment[3], 0u);
}

TEST(NextFit, OpensNewBinOnMiss) {
  const Instance inst = make_instance({{0, 0, 2}, {0, 0, 2}, {0, 0, 2}});
  const Schedule sched =
      Schedule::from_starts({units(0.0), units(0.0), units(0.0)});
  const std::vector<double> sizes = {0.6, 0.6, 0.3};
  NextFitPacker nf;
  const DbpResult result = run_packing(inst, sched, sizes, nf);
  EXPECT_EQ(result.assignment[0], 0u);
  EXPECT_EQ(result.assignment[1], 1u);
  // Next Fit only looks at the current bin (1), where 0.3 fits.
  EXPECT_EQ(result.assignment[2], 1u);
}

TEST(CdFirstFit, SeparatesDurationClasses) {
  // A short (p=1) and a long (p=8) item overlap and both are tiny — plain
  // FF would co-locate them; CD-FF uses separate pools.
  const Instance inst = make_instance({{0, 0, 1}, {0, 0, 8}});
  const Schedule sched = Schedule::from_starts({units(0.0), units(0.0)});
  const std::vector<double> sizes = {0.1, 0.1};
  CdFirstFitPacker cdff(2.0);
  const DbpResult result = run_packing(inst, sched, sizes, cdff);
  EXPECT_NE(result.assignment[0], result.assignment[1]);
  FirstFitPacker ff;
  const DbpResult ffr = run_packing(inst, sched, sizes, ff);
  EXPECT_EQ(ffr.assignment[0], ffr.assignment[1]);
}

TEST(Dbp, UsageHasGapsWhenBinIdles) {
  // One bin, two disjoint occupancies: usage counts only non-empty time.
  const Instance inst = make_instance({{0, 0, 1}, {5, 5, 1}});
  const Schedule sched = Schedule::from_starts({units(0.0), units(5.0)});
  FirstFitPacker ff;
  const DbpResult result =
      run_packing(inst, sched, {0.5, 0.5}, ff);
  EXPECT_EQ(result.bins_opened, 1u);
  EXPECT_EQ(result.total_usage, units(2.0));
}

TEST(Dbp, HalfOpenDepartureFreesCapacityForSameTickArrival) {
  const Instance inst = make_instance({{0, 0, 2}, {2, 2, 2}});
  const Schedule sched = Schedule::from_starts({units(0.0), units(2.0)});
  FirstFitPacker ff;
  const DbpResult result = run_packing(inst, sched, {0.9, 0.9}, ff);
  EXPECT_EQ(result.assignment[1], 0u);  // same bin, no overlap
  EXPECT_EQ(result.bins_opened, 1u);
}

TEST(Dbp, RejectsMisalignedSizes) {
  const Instance inst = make_instance({{0, 0, 1}});
  const Schedule sched = Schedule::from_starts({units(0.0)});
  FirstFitPacker ff;
  std::vector<double> sizes;  // wrong length
  EXPECT_THROW(run_packing(inst, sched, sizes, ff), AssertionError);
  EXPECT_THROW(run_packing(inst, sched, {1.5}, ff), AssertionError);
  EXPECT_THROW(run_packing(inst, sched, {0.0}, ff), AssertionError);
}

TEST(Dbp, LowerBoundDominatedByVolumeOrSpan) {
  // Volume bound: 2 items size 1.0 length 3 => 6 > span bound 3.
  const Instance inst = make_instance({{0, 0, 3}, {0, 0, 3}});
  EXPECT_EQ(dbp_usage_lower_bound(inst, {1.0, 1.0}), units(6.0));
  // Span bound dominates for tiny sizes.
  EXPECT_EQ(dbp_usage_lower_bound(inst, {0.01, 0.01}), units(3.0));
}

class PackerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PackerProperty, AllPackersRespectInvariantsOnCloudTrace) {
  CloudTraceConfig cfg;
  cfg.job_count = 80;
  const CloudTrace trace = generate_cloud_trace(cfg, GetParam());
  // Schedule: everything at its deadline (a valid schedule).
  Schedule sched(trace.instance.size());
  for (JobId id = 0; id < trace.instance.size(); ++id) {
    sched.set_start(id, trace.instance.job(id).deadline);
  }
  const Time lb = dbp_usage_lower_bound(trace.instance, trace.sizes);
  for (const auto& packer : make_standard_packers()) {
    const DbpResult result =
        run_packing(trace.instance, sched, trace.sizes, *packer);
    EXPECT_EQ(result.total_usage,
              reference_usage(trace.instance, sched, result))
        << packer->name();
    check_capacity(trace.instance, sched, trace.sizes, result, 1.0);
    EXPECT_GE(result.total_usage, lb) << packer->name();
    EXPECT_GE(result.total_usage, sched.span(trace.instance))
        << packer->name();
    EXPECT_LE(result.peak_open_bins, result.bins_opened) << packer->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackerProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(Pipeline, RunsSchedulerThenPacker) {
  CloudTraceConfig cfg;
  cfg.job_count = 60;
  const CloudTrace trace = generate_cloud_trace(cfg, 42);
  FirstFitPacker ff;
  const PipelineResult result =
      run_pipeline(trace.instance, trace.sizes, "batch+", ff);
  EXPECT_EQ(result.packer, "first-fit");
  EXPECT_NE(result.scheduler.find("batch+"), std::string::npos);
  EXPECT_GE(result.packing.total_usage, result.span);
  EXPECT_GE(result.usage_ratio_upper, 1.0);
}

TEST(Pipeline, SpanSchedulersReduceUsageVsLazyOnLaxWorkload) {
  // Generous laxity: Batch+ should batch work and use fewer server-hours
  // than Lazy's scattered deadline starts (statistically robust seed).
  CloudTraceConfig cfg;
  cfg.job_count = 200;
  const CloudTrace trace = generate_cloud_trace(cfg, 7);
  FirstFitPacker ff1;
  FirstFitPacker ff2;
  const PipelineResult bp =
      run_pipeline(trace.instance, trace.sizes, "batch+", ff1);
  const PipelineResult lazy =
      run_pipeline(trace.instance, trace.sizes, "lazy", ff2);
  EXPECT_LT(bp.span, lazy.span);
}

TEST(FirstFit, UsageStaysWithinMuFactorOnRigidWorkloads) {
  // §5 background (Li/Tang/Cai, Ren/Tang): First Fit is O(mu)-competitive
  // for MinUsageTime DBP with rigid items. Empirical check with a loose
  // constant: usage <= 4*(mu+1) * certified LB over random rigid traces.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    WorkloadConfig cfg;
    cfg.job_count = 150;
    cfg.laxity = LaxityModel::kZero;
    cfg.length_min = 1.0;
    cfg.length_max = 6.0;
    const Instance inst = generate_workload(cfg, seed);
    Schedule sched(inst.size());
    for (JobId id = 0; id < inst.size(); ++id) {
      sched.set_start(id, inst.job(id).arrival);  // rigid: forced
    }
    Rng rng(seed + 99);
    std::vector<double> sizes;
    for (std::size_t i = 0; i < inst.size(); ++i) {
      sizes.push_back(rng.uniform_real(0.05, 0.6));
    }
    FirstFitPacker ff;
    const DbpResult result = run_packing(inst, sched, sizes, ff);
    const Time lb = dbp_usage_lower_bound(inst, sizes);
    EXPECT_LE(time_ratio(result.total_usage, lb),
              4.0 * (inst.mu() + 1.0))
        << "seed " << seed;
  }
}

TEST(PackItems, StandaloneEntryPoint) {
  // Items with fixed intervals, no Instance/Schedule involved.
  std::vector<DbpItem> items = {
      {.job = 0, .size = 0.6, .active = Interval(units(0.0), units(2.0))},
      {.job = 1, .size = 0.6, .active = Interval(units(1.0), units(3.0))},
      {.job = 2, .size = 0.4, .active = Interval(units(1.0), units(2.0))},
  };
  FirstFitPacker ff;
  const DbpResult result = pack_items(items, ff);
  EXPECT_EQ(result.assignment[0], 0u);
  EXPECT_EQ(result.assignment[1], 1u);  // 0.6+0.6 > 1
  EXPECT_EQ(result.assignment[2], 0u);  // fits beside item 0
  EXPECT_EQ(result.total_usage, units(4.0));  // bin0 [0,2), bin1 [1,3)
}

TEST(PackItems, RejectsEmptyIntervals) {
  std::vector<DbpItem> items = {
      {.job = 0, .size = 0.5, .active = Interval(units(2.0), units(2.0))}};
  FirstFitPacker ff;
  EXPECT_THROW(pack_items(items, ff), AssertionError);
}

TEST(PackItems, EmptyItemListIsFine) {
  FirstFitPacker ff;
  const DbpResult result = pack_items({}, ff);
  EXPECT_EQ(result.bins_opened, 0u);
  EXPECT_EQ(result.total_usage, Time::zero());
}

TEST(Pipeline, StandardPackersRoster) {
  const auto packers = make_standard_packers();
  ASSERT_EQ(packers.size(), 5u);
  EXPECT_EQ(packers[0]->name(), "first-fit");
  EXPECT_EQ(packers[1]->name(), "best-fit");
  EXPECT_EQ(packers[2]->name(), "worst-fit");
  EXPECT_EQ(packers[3]->name(), "next-fit");
}

TEST(WorstFit, PicksEmptiestFeasibleBin) {
  // Bins at loads 0.3 and 0.6 (both feasible for a 0.2 item): worst fit
  // picks the emptier bin 0, where best fit would pick bin 1.
  const Instance inst =
      make_instance({{0, 0, 4}, {0, 0, 4}, {1, 1, 2}});
  const Schedule sched =
      Schedule::from_starts({units(0.0), units(0.0), units(1.0)});
  const std::vector<double> sizes = {0.3, 0.8, 0.2};
  WorstFitPacker wf;
  const DbpResult result = run_packing(inst, sched, sizes, wf);
  EXPECT_EQ(result.assignment[0], 0u);
  EXPECT_EQ(result.assignment[1], 1u);  // 0.8 misses bin0 (load 0.3)
  EXPECT_EQ(result.assignment[2], 0u);  // residual 0.5 beats bin1's 0.0
}

TEST(WorstFit, OpensNewBinWhenNothingFits) {
  const Instance inst = make_instance({{0, 0, 2}, {0, 0, 2}, {0, 0, 2}});
  const Schedule sched =
      Schedule::from_starts({units(0.0), units(0.0), units(0.0)});
  WorstFitPacker wf;
  const DbpResult result = run_packing(inst, sched, {0.9, 0.9, 0.9}, wf);
  EXPECT_EQ(result.bins_opened, 3u);
}

}  // namespace
}  // namespace fjs
