// Shared helpers for the libfjs test suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/interval_set.h"
#include "core/schedule.h"
#include "core/time.h"

namespace fjs::testing {

/// Unit-valued triple for terse instance literals.
struct JobTriple {
  double arrival;
  double deadline;
  double length;
};

inline Instance make_instance(const std::vector<JobTriple>& triples) {
  InstanceBuilder builder;
  for (const auto& t : triples) {
    builder.add(t.arrival, t.deadline, t.length);
  }
  return builder.build();
}

inline Time units(double u) { return Time::from_units(u); }

/// Exhaustive optimal span for tiny integral instances (n <= ~5, small
/// windows): enumerates every integer start combination. The slow-but-
/// obviously-correct reference the exact solver is validated against.
inline Time brute_force_optimal_span(const Instance& inst) {
  const std::int64_t q = Time::kTicksPerUnit;
  std::vector<std::int64_t> starts(inst.size());
  Time best = Time::max();
  auto recurse = [&](auto&& self, std::size_t i) -> void {
    if (i == inst.size()) {
      IntervalSet set;
      for (JobId id = 0; id < inst.size(); ++id) {
        set.add(inst.job(id).active_interval(Time(starts[id])));
      }
      best = std::min(best, set.measure());
      return;
    }
    const Job& j = inst.job(static_cast<JobId>(i));
    for (std::int64_t s = j.arrival.ticks(); s <= j.deadline.ticks(); s += q) {
      starts[i] = s;
      self(self, i + 1);
    }
  };
  recurse(recurse, 0);
  return best;
}

/// Uniformly random small integral instance for property tests.
/// All times are whole units; laxity <= max_laxity, length in
/// [1, max_length], arrivals in [0, horizon].
Instance random_integral_instance(std::uint64_t seed, std::size_t jobs,
                                  std::int64_t horizon = 12,
                                  std::int64_t max_laxity = 5,
                                  std::int64_t max_length = 4);

}  // namespace fjs::testing
