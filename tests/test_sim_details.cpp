// Fine-grained engine/state tests: pending/running bookkeeping order,
// event stringification, wakeup chains, and trace details.
#include <gtest/gtest.h>

#include "helpers.h"
#include "schedulers/batch.h"
#include "schedulers/eager.h"
#include "sim/engine.h"

namespace fjs {
namespace {

using testing::make_instance;
using testing::units;

/// Records what pending()/running() looked like inside callbacks.
class IntrospectingScheduler final : public OnlineScheduler {
 public:
  std::string name() const override { return "introspecting"; }

  void on_arrival(SchedulerContext& ctx, JobId id) override {
    pending_at_arrival.push_back(ctx.pending());
    if (start_on_arrival) {
      ctx.start_job(id);
      running_after_start.push_back(ctx.running());
    }
  }
  void on_deadline(SchedulerContext& ctx, JobId id) override {
    ctx.start_job(id);
  }
  void on_completion(SchedulerContext& ctx, JobId) override {
    running_at_completion.push_back(ctx.running());
  }

  bool start_on_arrival = true;
  std::vector<std::vector<JobId>> pending_at_arrival;
  std::vector<std::vector<JobId>> running_after_start;
  std::vector<std::vector<JobId>> running_at_completion;
};

TEST(EngineDetails, PendingListsInArrivalOrder) {
  const Instance inst = make_instance({{0, 9, 1}, {1, 9, 1}, {2, 9, 1}});
  IntrospectingScheduler sched;
  sched.start_on_arrival = false;  // accumulate pending
  (void)simulate(inst, sched, false);
  ASSERT_EQ(sched.pending_at_arrival.size(), 3u);
  EXPECT_EQ(sched.pending_at_arrival[0], (std::vector<JobId>{0}));
  EXPECT_EQ(sched.pending_at_arrival[1], (std::vector<JobId>{0, 1}));
  EXPECT_EQ(sched.pending_at_arrival[2], (std::vector<JobId>{0, 1, 2}));
}

TEST(EngineDetails, RunningListsInStartOrder) {
  const Instance inst = make_instance({{0, 9, 5}, {1, 9, 5}});
  IntrospectingScheduler sched;
  (void)simulate(inst, sched, false);
  ASSERT_EQ(sched.running_after_start.size(), 2u);
  EXPECT_EQ(sched.running_after_start[0], (std::vector<JobId>{0}));
  EXPECT_EQ(sched.running_after_start[1], (std::vector<JobId>{0, 1}));
}

TEST(EngineDetails, RunningShrinksOnCompletion) {
  const Instance inst = make_instance({{0, 0, 1}, {0, 0, 3}});
  IntrospectingScheduler sched;
  (void)simulate(inst, sched, false);
  ASSERT_EQ(sched.running_at_completion.size(), 2u);
  EXPECT_EQ(sched.running_at_completion[0], (std::vector<JobId>{1}));
  EXPECT_TRUE(sched.running_at_completion[1].empty());
}

TEST(EngineDetails, EventKindNames) {
  EXPECT_EQ(to_string(EventKind::kLengthDecision), "length-decision");
  EXPECT_EQ(to_string(EventKind::kCompletion), "completion");
  EXPECT_EQ(to_string(EventKind::kArrival), "arrival");
  EXPECT_EQ(to_string(EventKind::kDeadline), "deadline");
  EXPECT_EQ(to_string(EventKind::kSchedulerTimer), "scheduler-timer");
  EXPECT_EQ(to_string(EventKind::kSourceWakeup), "source-wakeup");
  EXPECT_EQ(to_string(EventKind::kStart), "start");
}

TEST(EngineDetails, TraceEntryToString) {
  const TraceEntry entry{.time = units(1.5), .kind = EventKind::kStart,
                         .job = 3, .detail = 0};
  const std::string s = entry.to_string();
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("start"), std::string::npos);
  EXPECT_NE(s.find("J3"), std::string::npos);
}

TEST(EngineDetails, SourceWakeupChain) {
  // A source that wakes itself three times, releasing one job per wakeup.
  class ChainedWakeups final : public JobSource {
   public:
    SourceAction begin() override {
      SourceAction a;
      a.wakeup = units(1.0);
      // Engine needs at least one event anyway — release the first job.
      a.releases.push_back(JobSpec{.arrival = units(0.0),
                                   .deadline = units(0.0),
                                   .length = units(0.5)});
      return a;
    }
    SourceAction on_wakeup(Time now) override {
      ++wakeups;
      SourceAction a;
      a.releases.push_back(JobSpec{.arrival = now, .deadline = now,
                                   .length = units(0.5)});
      if (wakeups < 3) {
        a.wakeup = now + units(1.0);
      }
      return a;
    }
    int wakeups = 0;
  };
  ChainedWakeups source;
  NoDeferralOracle oracle;
  EagerScheduler eager;
  Engine engine(source, oracle, eager, {});
  const SimulationResult result = engine.run();
  EXPECT_EQ(source.wakeups, 3);
  ASSERT_EQ(result.instance.size(), 4u);
  EXPECT_EQ(result.schedule.start(3), units(3.0));
}

TEST(EngineDetails, LengthDecisionRecordedInTrace) {
  class DeferringAdversary final : public JobSource, public LengthOracle {
   public:
    SourceAction begin() override {
      SourceAction a;
      a.releases.push_back(JobSpec{.arrival = units(0.0),
                                   .deadline = units(0.0),
                                   .length = std::nullopt});
      return a;
    }
    StartDecision at_start(JobId, Time start) override {
      return StartDecision{.length = std::nullopt,
                           .decide_at = start + units(1.0)};
    }
    Time decide(JobId, Time) override { return units(2.0); }
  };
  DeferringAdversary adversary;
  EagerScheduler eager;
  Engine engine(adversary, adversary, eager,
                EngineOptions{.record_trace = true});
  const SimulationResult result = engine.run();
  const auto decisions = result.trace.filter(EventKind::kLengthDecision);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].time, units(1.0));
  EXPECT_EQ(decisions[0].detail, units(2.0).ticks());
  EXPECT_EQ(result.span(), units(2.0));
}

TEST(EngineDetails, BatchSingleCallbackStartsWholeBatch) {
  // All three pending jobs must start inside ONE deadline event (the trace
  // shows three starts between the deadline entry and anything else).
  const Instance inst = make_instance({{0, 2, 1}, {0, 5, 1}, {1, 6, 1}});
  BatchScheduler batch;
  const SimulationResult result = simulate(inst, batch, false, true);
  const auto starts = result.trace.filter(EventKind::kStart);
  ASSERT_EQ(starts.size(), 3u);
  for (const auto& s : starts) {
    EXPECT_EQ(s.time, units(2.0));
  }
}

}  // namespace
}  // namespace fjs
