#include "adversary/nonclairvoyant_lb.h"

#include <gtest/gtest.h>

#include "schedulers/batch.h"
#include "schedulers/batch_plus.h"
#include "schedulers/eager.h"
#include "schedulers/lazy.h"
#include "sim/engine.h"
#include "support/assert.h"

namespace fjs {
namespace {

NonClairvoyantLbParams small_params() {
  NonClairvoyantLbParams params;
  params.mu = 4.0;
  params.iterations = 3;
  params.counts = {256, 16, 4};
  params.alpha = 6.0;
  return params;
}

struct AdversaryRun {
  SimulationResult result;
  double measured_ratio = 0.0;
  double theoretical_floor = 0.0;
  int iterations = 0;
  bool reached_final = false;
  std::size_t earmark_count = 0;
};

AdversaryRun run_adversary(OnlineScheduler& scheduler,
                           const NonClairvoyantLbParams& params) {
  NonClairvoyantAdversary adversary(params);
  Engine engine(adversary, adversary, scheduler,
                EngineOptions{.clairvoyant = false});
  AdversaryRun run;
  run.result = engine.run();
  const Schedule reference =
      adversary.reference_schedule(run.result.instance);
  run.measured_ratio =
      time_ratio(run.result.span(), reference.span(run.result.instance));
  run.theoretical_floor = adversary.theoretical_ratio_floor();
  run.iterations = adversary.iterations_released();
  run.reached_final = adversary.reached_final_wave();
  run.earmark_count = adversary.earmarks().size();
  return run;
}

TEST(NonClairvoyantAdversary, RejectsBadParameters) {
  NonClairvoyantLbParams p;
  p.mu = 0.5;
  EXPECT_THROW(NonClairvoyantAdversary{p}, AssertionError);
  p = {};
  p.alpha = p.mu + 0.5;  // needs alpha > mu + 1
  EXPECT_THROW(NonClairvoyantAdversary{p}, AssertionError);
  p = {};
  p.counts = {16};  // size != iterations (default 3)
  EXPECT_THROW(NonClairvoyantAdversary{p}, AssertionError);
  p = {};
  p.counts = {16, 8, 2};  // counts must be >= 4
  EXPECT_THROW(NonClairvoyantAdversary{p}, AssertionError);
}

TEST(NonClairvoyantAdversary, BatchRidesThroughAllIterations) {
  // Batch masses every iteration's jobs at the first deadline, always
  // crossing the concurrency threshold: k earmarks + the final wave.
  BatchScheduler batch;
  const AdversaryRun run = run_adversary(batch, small_params());
  EXPECT_TRUE(run.reached_final);
  EXPECT_EQ(run.iterations, 4);  // 3 earmarked + final wave
  EXPECT_EQ(run.earmark_count, 3u);
  // Theorem 3.3 outcome: ratio >= (kμ+1)/(μ+k) = 13/7.
  EXPECT_NEAR(run.theoretical_floor, 13.0 / 7.0, 1e-12);
  EXPECT_GE(run.measured_ratio, run.theoretical_floor - 0.05);
}

TEST(NonClairvoyantAdversary, BatchPlusAlsoForced) {
  BatchPlusScheduler bp;
  const AdversaryRun run = run_adversary(bp, small_params());
  EXPECT_TRUE(run.reached_final);
  EXPECT_GE(run.measured_ratio, run.theoretical_floor - 0.05);
}

TEST(NonClairvoyantAdversary, EagerForced) {
  EagerScheduler eager;
  const AdversaryRun run = run_adversary(eager, small_params());
  EXPECT_TRUE(run.reached_final);
  EXPECT_GE(run.measured_ratio, run.theoretical_floor - 0.05);
}

TEST(NonClairvoyantAdversary, LazyPaysSomewhere) {
  // Lazy spreads starts across deadlines; whatever branch the adversary
  // takes, the measured ratio must exceed 1 by a clear margin.
  LazyScheduler lazy;
  const AdversaryRun run = run_adversary(lazy, small_params());
  EXPECT_GT(run.measured_ratio, 1.2);
}

TEST(NonClairvoyantAdversary, RatioGrowsWithIterations) {
  // With more iterations the floor (kμ+1)/(μ+k) climbs toward μ.
  BatchScheduler batch;
  NonClairvoyantLbParams p1 = small_params();
  p1.iterations = 1;
  p1.counts = {256};
  const AdversaryRun r1 = run_adversary(batch, p1);

  NonClairvoyantLbParams p3 = small_params();
  const AdversaryRun r3 = run_adversary(batch, p3);
  EXPECT_GT(r3.measured_ratio, r1.measured_ratio);
}

TEST(NonClairvoyantAdversary, RealizedLengthsAreOneOrMu) {
  BatchScheduler batch;
  NonClairvoyantAdversary adversary(small_params());
  Engine engine(adversary, adversary, batch, {});
  const SimulationResult result = engine.run();
  const Time unit = adversary.unit();
  const Time mu_len = unit.scaled(4.0);
  std::size_t mu_jobs = 0;
  for (const Job& j : result.instance.view().jobs()) {
    EXPECT_TRUE(j.length == unit || j.length == mu_len) << j.to_string();
    if (j.length == mu_len) {
      ++mu_jobs;
    }
  }
  EXPECT_EQ(mu_jobs, adversary.earmarks().size());
}

TEST(NonClairvoyantAdversary, ReferenceScheduleIsValid) {
  BatchScheduler batch;
  NonClairvoyantAdversary adversary(small_params());
  Engine engine(adversary, adversary, batch, {});
  const SimulationResult result = engine.run();
  const Schedule reference = adversary.reference_schedule(result.instance);
  reference.validate(result.instance);  // throws on violation
  // The reference must not beat the online schedule's span (it should be
  // much better, i.e. smaller).
  EXPECT_LT(reference.span(result.instance), result.span());
}

TEST(NonClairvoyantAdversary, ReleaseTimesMatchEarmarkCompletions) {
  BatchScheduler batch;
  NonClairvoyantAdversary adversary(small_params());
  Engine engine(adversary, adversary, batch,
                EngineOptions{.record_trace = true});
  const SimulationResult result = engine.run();
  const auto& releases = adversary.release_times();
  const auto& earmarks = adversary.earmarks();
  ASSERT_EQ(releases.size(), earmarks.size() + 1);
  for (std::size_t i = 0; i < earmarks.size(); ++i) {
    const JobId e = earmarks[i];
    const Time completion =
        result.schedule.start(e) + result.instance.job(e).length;
    EXPECT_EQ(releases[i + 1], completion);
  }
}

}  // namespace
}  // namespace fjs
