// E6 — Theorem 4.11: the Profit scheduler and the choice of k.
//
// The theorem bounds Profit by g(k) = 2k + 2 + 1/(k−1), minimized at
// k* = 1 + √2/2 ≈ 1.7071 where g = 4 + 2√2 ≈ 6.83. We sweep k over the
// same multi-category workloads as E5 plus the golden-ratio adversary,
// measuring exact ratios on small integral instances.
#include <cmath>
#include <iostream>
#include <vector>

#include "adversary/clairvoyant_lb.h"
#include "bench_common.h"
#include "offline/exact.h"
#include "schedulers/profit.h"
#include "sim/engine.h"
#include "support/parallel.h"
#include "support/stats.h"
#include "support/string_util.h"
#include "support/thread_pool.h"
#include "workload/generator.h"

int main() {
  using namespace fjs;

  std::cout << "E6: Profit k sweep (Thm 4.11). k* = 1+sqrt(2)/2 = "
            << format_double(ProfitScheduler::optimal_k(), 4)
            << ", bound at k* = 4+2*sqrt(2) = "
            << format_double(4.0 + 2.0 * std::sqrt(2.0), 4) << "\n\n";

  std::vector<Instance> cases;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    WorkloadConfig bimodal;
    bimodal.job_count = 8;
    bimodal.integral = true;
    bimodal.lengths = LengthDistribution::kBimodal;
    bimodal.length_min = 1.0;
    bimodal.length_max = 8.0;
    bimodal.bimodal_short_fraction = 0.7;
    bimodal.laxity_max = 5.0;
    cases.push_back(generate_workload(bimodal, seed));

    WorkloadConfig spread = bimodal;
    spread.lengths = LengthDistribution::kUniform;
    spread.length_max = 6.0;
    cases.push_back(generate_workload(spread, seed + 100));
  }
  std::vector<Time> opts(cases.size());
  parallel_for(global_pool(), cases.size(), [&](std::size_t i) {
    opts[i] = exact_optimal_span(cases[i]);
  });

  Table table({"k", "mean ratio", "p90 ratio", "worst ratio",
               "adversary ratio", "theorem bound 2k+2+1/(k-1)"});
  const std::vector<double> ks = {1.05, 1.2, 1.4, 1.7071, 2.0,
                                  2.5,  3.0, 4.0, 6.0};
  for (const double k : ks) {
    Summary ratios;
    for (std::size_t i = 0; i < cases.size(); ++i) {
      ProfitScheduler profit(k);
      const Time span = simulate_span(cases[i], profit, true);
      ratios.add(time_ratio(span, opts[i]));
    }
    // Golden-ratio adversary against Profit(k).
    ProfitScheduler profit(k);
    ClairvoyantAdversary adversary(ClairvoyantLbParams{.max_iterations = 32});
    NoDeferralOracle oracle;
    Engine engine(adversary, oracle, profit,
                  EngineOptions{.clairvoyant = true});
    const SimulationResult adv = engine.run();
    const double adv_ratio = time_ratio(
        adv.span(),
        adversary.reference_schedule(adv.instance).span(adv.instance));

    const double bound = 2.0 * k + 2.0 + 1.0 / (k - 1.0);
    table.add_row({format_double(k, 4), format_double(ratios.mean(), 4),
                   format_double(ratios.percentile(90.0), 4),
                   format_double(ratios.max(), 4),
                   format_double(adv_ratio, 4), format_double(bound, 4)});
  }
  bench::emit("E6 Profit k sweep", table, "e6_profit_k");

  std::cout << "Reading: the theorem-bound column is minimized at"
               " k* = 1.7071. Small k degrades measured ratios (Profit\n"
               "stops piggybacking jobs onto running flags); the adversary"
               " pins every k near phi.\n";
  return 0;
}
