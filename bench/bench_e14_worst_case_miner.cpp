// E14 — automated worst-case search (complements the hand-built E1–E4
// constructions).
//
// The miner hill-climbs over small integral instances maximizing each
// scheduler's EXACT competitive ratio. Expected shape: mined ratios stay
// strictly below every proven upper bound (soundness), approach μ+1 for
// Batch+ (its bound is tight), and exceed the clairvoyant lower bound φ
// for every scheduler the paper proves cannot beat it.
#include <iostream>

#include "adversary/instance_miner.h"
#include "bench_common.h"
#include "schedulers/classify_by_duration.h"
#include "schedulers/profit.h"
#include "support/parallel.h"
#include "support/string_util.h"
#include "support/thread_pool.h"

int main() {
  using namespace fjs;

  std::cout << "E14: worst-case instance mining (10 jobs, unit grid,"
               " exact-certified ratios).\n\n";

  struct Target {
    const char* key;
    double bound;  // proven upper bound for mu <= 5 instances (p in 1..5)
    const char* bound_label;
  };
  // Instance shape: lengths 1..5 => mu <= 5.
  const double mu_cap = 5.0;
  const double alpha = CdbScheduler::optimal_alpha();
  const double k = ProfitScheduler::optimal_k();
  const std::vector<Target> targets = {
      {"eager", 0.0, "unbounded"},
      {"lazy", 0.0, "unbounded"},
      {"batch", 2.0 * mu_cap + 1.0, "2mu+1 = 11"},
      {"batch+", mu_cap + 1.0, "mu+1 = 6 (tight)"},
      {"cdb", 3.0 * alpha + 4.0 + 2.0 / (alpha - 1.0), "7+2sqrt6 = 11.9"},
      {"profit", 2.0 * k + 2.0 + 1.0 / (k - 1.0), "4+2sqrt2 = 6.83"},
      {"doubler*", 0.0, "(reconstruction)"},
      {"overlap", 0.0, "(heuristic)"},
  };

  // Parallelism lives INSIDE the miner now (batched candidate evaluation
  // over the pool), so the scheduler loop is serial — nesting pool-blocking
  // loops inside pool workers would deadlock a small pool.
  std::vector<MinerResult> results(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    MinerOptions options;
    options.population = 512;
    options.rounds = 160;
    options.mutations_per_round = 64;
    options.jobs = 10;
    options.seed = 0xBADF00DULL + i;
    options.pool = &global_pool();
    results[i] = mine_worst_case(targets[i].key, options);
  }

  Table table({"scheduler", "mined worst ratio", "proven bound",
               "evaluations", "memo hits"});
  for (std::size_t i = 0; i < targets.size(); ++i) {
    table.add_row({targets[i].key,
                   format_double(results[i].worst_ratio, 4),
                   targets[i].bound_label,
                   std::to_string(results[i].evaluations),
                   std::to_string(results[i].memo_hits)});
    if (targets[i].bound > 0.0 &&
        results[i].worst_ratio > targets[i].bound + 1e-6) {
      std::cout << "!!! BOUND VIOLATION for " << targets[i].key << ":\n"
                << results[i].worst_instance.to_string();
    }
  }
  bench::emit("E14 mined worst cases vs proven bounds", table, "e14_miner");

  std::cout << "Worst instance mined for batch+ (ratio "
            << format_double(results[3].worst_ratio, 4) << "):\n"
            << results[3].worst_instance.to_string()
            << "\nReading: no mined ratio crosses its theorem's bound;"
               " eager/lazy ratios keep growing\nwith search effort"
               " (unbounded), and batch+'s mined ratio pushes toward mu+1,"
               "\nits tight guarantee.\n";
  return 0;
}
