// E15 — ablation of the greedy-overlap extension heuristic's threshold θ.
//
// θ controls how much guaranteed overlap a job needs before starting
// early: θ→0 degenerates toward Eager (start on any sliver of overlap),
// θ=1 demands full coverage and degenerates toward Lazy. The sweep locates
// the practical sweet spot and compares it against Profit — the scheduler
// with the analogous knob AND a worst-case guarantee.
#include <iostream>

#include "bench_common.h"
#include "offline/exact.h"
#include "schedulers/overlap.h"
#include "schedulers/profit.h"
#include "sim/engine.h"
#include "support/parallel.h"
#include "support/stats.h"
#include "support/string_util.h"
#include "support/thread_pool.h"
#include "workload/generator.h"

int main() {
  using namespace fjs;

  std::cout << "E15: overlap(theta) sweep vs profit(k*) on exact-solvable"
               " instances\n(8 jobs, integral, 24 cases).\n\n";

  std::vector<Instance> cases;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    WorkloadConfig cfg;
    cfg.job_count = 8;
    cfg.integral = true;
    cfg.length_max = 6.0;
    cfg.laxity_max = 5.0;
    cases.push_back(generate_workload(cfg, seed));
    WorkloadConfig lax = cfg;
    lax.laxity_max = 8.0;
    cases.push_back(generate_workload(lax, seed + 50));
  }
  std::vector<Time> opts(cases.size());
  parallel_for(global_pool(), cases.size(), [&](std::size_t i) {
    opts[i] = exact_optimal_span(cases[i]);
  });

  Table table({"scheduler", "mean ratio", "p90 ratio", "worst ratio"});
  for (const double theta : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    Summary ratios;
    for (std::size_t i = 0; i < cases.size(); ++i) {
      OverlapScheduler overlap(theta);
      ratios.add(time_ratio(simulate_span(cases[i], overlap, true),
                            opts[i]));
    }
    table.add_row({"overlap(theta=" + format_double(theta, 2) + ")",
                   format_double(ratios.mean(), 4),
                   format_double(ratios.percentile(90.0), 4),
                   format_double(ratios.max(), 4)});
  }
  {
    Summary ratios;
    for (std::size_t i = 0; i < cases.size(); ++i) {
      ProfitScheduler profit;
      ratios.add(time_ratio(simulate_span(cases[i], profit, true),
                            opts[i]));
    }
    table.add_row({"profit(k*) [guaranteed]",
                   format_double(ratios.mean(), 4),
                   format_double(ratios.percentile(90.0), 4),
                   format_double(ratios.max(), 4)});
  }
  bench::emit("E15 overlap theta sweep", table, "e15_overlap_theta");

  std::cout << "Reading: mid-range theta performs like Profit on average"
               " but, unlike Profit,\ncarries no worst-case guarantee (see"
               " E14's mined instances).\n";
  return 0;
}
