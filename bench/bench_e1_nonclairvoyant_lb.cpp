// E1 — Theorem 3.3 / Figure 1: the non-clairvoyant adaptive adversary.
//
// Reproduces the paper's lower-bound behaviour: against any deterministic
// non-clairvoyant scheduler the measured span ratio approaches
// (kμ+1)/(μ+k) → μ as the number of adversary iterations k grows.
#include <iostream>
#include <string>

#include "adversary/nonclairvoyant_lb.h"
#include "bench_common.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/string_util.h"

int main() {
  using namespace fjs;

  std::cout << "E1: non-clairvoyant lower bound (Thm 3.3). The adversary\n"
               "releases iterations of jobs, earmarks one job per iteration\n"
               "with length mu, and stops adaptively. Sizes are scaled down\n"
               "from the paper's double-exponential counts (DESIGN.md).\n\n";

  Table table({"mu", "k", "scheduler", "iters", "earmarks", "measured",
               "floor (kmu+1)/(mu+k)", "target mu"});

  for (const double mu : {2.0, 4.0, 8.0}) {
    for (const int k : {1, 2, 3, 4}) {
      for (const char* key : {"eager", "batch", "batch+"}) {
        NonClairvoyantLbParams params;
        params.mu = mu;
        params.iterations = k;
        params.alpha = mu + 2.0;
        params.first_count = 4096;
        const auto scheduler = make_scheduler(key);
        NonClairvoyantAdversary adversary(params);
        Engine engine(adversary, adversary, *scheduler, {});
        const SimulationResult result = engine.run();
        const Schedule reference =
            adversary.reference_schedule(result.instance);
        const double measured =
            time_ratio(result.span(), reference.span(result.instance));
        table.add_row(
            {format_double(mu, 1), std::to_string(k), key,
             std::to_string(adversary.iterations_released()),
             std::to_string(adversary.earmarks().size()),
             format_double(measured, 4),
             format_double(adversary.theoretical_ratio_floor(), 4),
             format_double(mu, 1)});
      }
    }
  }
  bench::emit("E1 non-clairvoyant adversary ratios", table, "e1_nclb");

  std::cout << "Reading: 'measured' tracks the outcome floor and climbs\n"
               "toward mu with k — no non-clairvoyant scheduler escapes.\n";
  return 0;
}
