// E16 — separation mining (ours): which scheduler beats which, and by how
// much, on adversarially chosen SMALL instances?
//
// Uses the generalized miner with pairwise objectives span(A)/span(B).
// Interesting answers the theory predicts:
//  * Batch+ vs Batch: each can beat the other (Batch+'s eagerness can
//    backfire), but Batch's worst losses are larger — its guarantee is
//    2μ+1 vs μ+1.
//  * Profit vs Batch+: clairvoyance buys real separations.
#include <iostream>

#include "adversary/instance_miner.h"
#include "bench_common.h"
#include "offline/exact.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/parallel.h"
#include "support/string_util.h"
#include "support/thread_pool.h"

namespace {

using namespace fjs;

double pair_objective(const Instance& instance, const std::string& a,
                      const std::string& b) {
  const auto sa = make_scheduler(a);
  const auto sb = make_scheduler(b);
  const Time span_a =
      simulate_span(instance, *sa, sa->requires_clairvoyance());
  const Time span_b =
      simulate_span(instance, *sb, sb->requires_clairvoyance());
  return time_ratio(span_a, span_b);
}

}  // namespace

int main() {
  std::cout << "E16: pairwise separation mining (10 jobs, unit grid)."
               " Objective: maximize span(A)/span(B)\n— how badly can A"
               " lose to B on a crafted instance?\n\n";

  struct Pair {
    const char* loser;
    const char* winner;
  };
  const std::vector<Pair> pairs = {
      {"batch", "batch+"}, {"batch+", "batch"},
      {"batch+", "profit"}, {"profit", "batch+"},
      {"eager", "batch+"}, {"lazy", "batch+"},
      {"overlap", "profit"}, {"profit", "overlap"},
  };

  std::vector<MinerResult> results(pairs.size());
  parallel_for(global_pool(), pairs.size(), [&](std::size_t i) {
    MinerOptions options;
    options.population = 256;
    options.rounds = 80;
    options.mutations_per_round = 32;
    options.jobs = 10;
    options.seed = 0xE16ULL + i;
    results[i] = mine_instance(
        [&](const Instance& inst) {
          return pair_objective(inst, pairs[i].loser, pairs[i].winner);
        },
        options);
  });

  Table table({"A (loser)", "B (winner)", "max span(A)/span(B)",
               "A's ratio vs OPT there"});
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto loser = make_scheduler(pairs[i].loser);
    const Time span = simulate_span(results[i].worst_instance, *loser,
                                    loser->requires_clairvoyance());
    const Time opt = exact_optimal_span(results[i].worst_instance);
    table.add_row({pairs[i].loser, pairs[i].winner,
                   format_double(results[i].worst_ratio, 4),
                   format_double(time_ratio(span, opt), 4)});
  }
  bench::emit("E16 pairwise separations (mined)", table, "e16_separation");

  std::cout << "Reading: separations exist in BOTH directions between"
               " Batch and Batch+ (eager starting\ncan backfire), but the"
               " guaranteed schedulers bound how badly they can lose;\n"
               "eager/lazy losses to batch+ are the largest, as the theory"
               " predicts.\n";
  return 0;
}
