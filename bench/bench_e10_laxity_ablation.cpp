// E10 — ablation (not from the paper): how much does laxity buy?
//
// FJS's whole premise is that start laxity lets a scheduler overlap jobs.
// We scale the laxity of a fixed workload by λ ∈ {0, ¼, ½, 1, 2, 4, 8}
// and track each scheduler's span. At λ=0 all schedulers coincide (rigid
// jobs); as λ grows, laxity-aware schedulers (batch/batch+/profit) convert
// slack into overlap while Eager ignores it and Lazy squanders it.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "offline/heuristic.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/asciiplot.h"
#include "support/string_util.h"
#include "workload/generator.h"

int main() {
  using namespace fjs;

  std::cout << "E10: laxity ablation. Base workload: 200 jobs, Poisson"
               " arrivals, uniform lengths 1-4,\nbase laxity uniform 0-2,"
               " scaled by lambda.\n\n";

  WorkloadConfig base;
  base.job_count = 200;
  base.arrival_rate = 2.0;
  base.laxity_min = 0.0;
  base.laxity_max = 2.0;

  const std::vector<double> lambdas = {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
  const std::vector<std::string> keys = {"eager", "lazy", "batch", "batch+",
                                         "profit", "overlap"};

  Table table({"lambda", "scheduler", "span", "span/offline"});
  std::vector<Series> series;
  for (const auto& key : keys) {
    series.push_back(Series{key, {}, key[0] == 'b' ? (key == "batch" ? 'b' : 'B')
                                                   : key[0]});
  }

  for (const double lambda : lambdas) {
    // Scale laxities by rebuilding the instance from the same seed.
    WorkloadConfig cfg = base;
    cfg.laxity_max = base.laxity_max * lambda;
    cfg.laxity_min = 0.0;
    const Instance inst = lambda == 0.0
                              ? [&] {
                                  WorkloadConfig rigid = base;
                                  rigid.laxity = LaxityModel::kZero;
                                  return generate_workload(rigid, 11);
                                }()
                              : generate_workload(cfg, 11);
    HeuristicOptions heuristic_opts;
    heuristic_opts.restarts = 1;
    heuristic_opts.max_passes = 8;
    const Time offline = heuristic_span(inst, heuristic_opts);
    for (std::size_t s = 0; s < keys.size(); ++s) {
      const auto scheduler = make_scheduler(keys[s]);
      const Time span =
          simulate_span(inst, *scheduler, scheduler->requires_clairvoyance());
      table.add_row({format_double(lambda, 2), keys[s],
                     format_double(span.to_units(), 2),
                     format_double(time_ratio(span, offline), 3)});
      series[s].ys.push_back(span.to_units());
    }
  }
  bench::emit("E10 laxity ablation", table, "e10_laxity");

  AsciiPlotOptions plot;
  plot.x_label = "laxity scale lambda";
  plot.y_label = "span (units)";
  std::cout << ascii_plot(lambdas, series, plot)
            << "\nReading: batch/batch+/profit convert growing laxity into"
               " overlap (span falls);\neager flat-lines, lazy can get"
               " WORSE (scattered deadline starts).\n";
  return 0;
}
