// E9 — engineering throughput benchmarks (google-benchmark).
//
// Not a paper experiment: measures the simulator's and solvers' raw
// performance so regressions in the substrate are visible — events/second
// per scheduler, IntervalSet operations, exact-solver scaling, heuristic
// cost, and parallel sweep speedup.
#include <benchmark/benchmark.h>

#include "adversary/instance_miner.h"
#include "analysis/sweep.h"
#include "core/interval_set.h"
#include "offline/exact.h"
#include "offline/heuristic.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "workload/generator.h"

namespace {

using namespace fjs;

Instance bench_instance(std::size_t jobs, std::uint64_t seed) {
  WorkloadConfig config;
  config.job_count = jobs;
  config.arrival_rate = 2.0;
  config.laxity_max = 6.0;
  return generate_workload(config, seed);
}

void BM_EngineThroughput(benchmark::State& state, const char* key) {
  const Instance inst = bench_instance(10'000, 1);
  const auto spec_clairvoyant = [&] {
    for (const auto& spec : scheduler_registry()) {
      if (spec.key == key) {
        return spec.clairvoyant;
      }
    }
    return false;
  }();
  std::size_t events = 0;
  for (auto _ : state) {
    const auto scheduler = make_scheduler(key);
    const SimulationResult result =
        simulate(inst, *scheduler, spec_clairvoyant);
    events += result.event_count;
    benchmark::DoNotOptimize(result.schedule);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("events/iteration");
}

BENCHMARK_CAPTURE(BM_EngineThroughput, eager, "eager");
BENCHMARK_CAPTURE(BM_EngineThroughput, lazy, "lazy");
BENCHMARK_CAPTURE(BM_EngineThroughput, batch, "batch");
BENCHMARK_CAPTURE(BM_EngineThroughput, batch_plus, "batch+");
BENCHMARK_CAPTURE(BM_EngineThroughput, cdb, "cdb");
BENCHMARK_CAPTURE(BM_EngineThroughput, profit, "profit");
BENCHMARK_CAPTURE(BM_EngineThroughput, doubler, "doubler*");

// Lengths are chosen so the union keeps thousands of components at
// n=10000 (~60% domain coverage): both construction paths then exercise
// their real costs. Much longer intervals collapse the union to a single
// component, reducing n× add() to a degenerate O(1) merge-into-back that
// benchmarks nothing.
std::vector<Interval> random_intervals(std::size_t n) {
  Rng rng(7);
  std::vector<Interval> intervals;
  intervals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t lo = rng.uniform_int(0, 1'000'000);
    intervals.emplace_back(Time(lo), Time(lo + rng.uniform_int(1, 200)));
  }
  return intervals;
}

// Bulk sort-then-merge construction — the path hot callers (active_set,
// sweeps) use. The per-iteration vector copy is part of the measured cost;
// the constructor takes its input by value.
void BM_IntervalSetAdd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<Interval> intervals = random_intervals(n);
  for (auto _ : state) {
    IntervalSet set(intervals);
    benchmark::DoNotOptimize(set.measure());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}

BENCHMARK(BM_IntervalSetAdd)->Arg(100)->Arg(1'000)->Arg(10'000);

// Legacy n× add() path, kept for comparison against the bulk build.
void BM_IntervalSetAddIncremental(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<Interval> intervals = random_intervals(n);
  for (auto _ : state) {
    IntervalSet set;
    for (const auto& iv : intervals) {
      set.add(iv);
    }
    benchmark::DoNotOptimize(set.measure());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}

BENCHMARK(BM_IntervalSetAddIncremental)->Arg(100)->Arg(1'000)->Arg(10'000);

Instance solver_instance(std::size_t jobs) {
  WorkloadConfig config;
  config.job_count = jobs;
  config.integral = true;
  config.laxity_max = 4.0;
  return generate_workload(config, 3);
}

// Branch-and-bound solver: the extended args (12, 14) were out of reach for
// the grid DFS, which is benchmarked separately below at its feasible sizes.
void BM_ExactSolver(benchmark::State& state) {
  const Instance inst = solver_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_optimal_span(inst));
  }
}

BENCHMARK(BM_ExactSolver)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12)->Arg(14)
    ->Unit(benchmark::kMicrosecond);

// Legacy grid DFS on the same instances — the "before" curve.
void BM_ExactSolverReference(benchmark::State& state) {
  const Instance inst = solver_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_optimal_span_reference(inst));
  }
}

BENCHMARK(BM_ExactSolverReference)->Arg(4)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMicrosecond);

// Miner throughput at fixed search effort (identical candidate sequences in
// both variants — the objective values, and therefore the hill-climbing
// path, are the same). items/s counts candidate evaluations.
MinerOptions miner_bench_options() {
  MinerOptions options;
  options.population = 32;
  options.rounds = 12;
  options.mutations_per_round = 16;
  options.jobs = 10;  // large enough that certification dominates mining
  options.seed = 17;
  return options;
}

void BM_Miner(benchmark::State& state) {
  std::size_t evaluations = 0;
  for (auto _ : state) {
    const MinerResult result = mine_worst_case("batch", miner_bench_options());
    evaluations += result.evaluations;
    benchmark::DoNotOptimize(result.worst_ratio);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(evaluations));
  state.SetLabel("candidate evaluations");
}

BENCHMARK(BM_Miner)->Unit(benchmark::kMillisecond);

// The pre-PR-2 mining stack at the same search effort: no objective memo
// and grid-DFS certification.
void BM_MinerLegacy(benchmark::State& state) {
  MinerOptions options = miner_bench_options();
  options.use_objective_memo = false;
  const bool clairvoyant = make_scheduler("batch")->requires_clairvoyance();
  std::size_t evaluations = 0;
  for (auto _ : state) {
    const MinerResult result = mine_instance(
        [clairvoyant](const Instance& instance) {
          const auto scheduler = make_scheduler("batch");
          const Time span = simulate_span(instance, *scheduler, clairvoyant);
          return time_ratio(span, exact_optimal_span_reference(instance));
        },
        options);
    evaluations += result.evaluations;
    benchmark::DoNotOptimize(result.worst_ratio);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(evaluations));
  state.SetLabel("candidate evaluations");
}

BENCHMARK(BM_MinerLegacy)->Unit(benchmark::kMillisecond);

void BM_Heuristic(benchmark::State& state) {
  const Instance inst =
      bench_instance(static_cast<std::size_t>(state.range(0)), 5);
  HeuristicOptions options;
  options.restarts = 1;
  options.max_passes = 6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(heuristic_span(inst, options));
  }
}

BENCHMARK(BM_Heuristic)->Arg(50)->Arg(150)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_SweepParallelism(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  WorkloadConfig config;
  config.job_count = 120;
  const auto cases = make_cases(config, "bench", 16, 9);
  ThreadPool pool(threads);
  SweepOptions options;
  options.pool = &pool;
  options.heuristic_options.restarts = 0;
  options.heuristic_options.max_passes = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_ratio_sweep(cases, {"batch+", "profit"}, options));
  }
  state.SetLabel(std::to_string(threads) + " threads");
}

BENCHMARK(BM_SweepParallelism)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
