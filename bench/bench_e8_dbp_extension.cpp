// E8 — §5 extension: generalized MinUsageTime Dynamic Bin Packing.
//
// A span-minimizing scheduler fixes start times; a packing policy places
// each job on a unit-capacity server for its active interval; the
// objective is total server usage time. The paper's §5 predicts that
// pairing Batch+ (non-clairvoyant) or Profit (clairvoyant) with
// (classify-by-duration) First Fit keeps usage competitive; Eager and
// especially Lazy pipelines waste server-hours.
#include <iostream>

#include "bench_common.h"
#include "dbp/pipeline.h"
#include "support/string_util.h"
#include "workload/cloud_trace.h"

int main() {
  using namespace fjs;

  CloudTraceConfig config;
  config.job_count = 400;
  const CloudTrace trace = generate_cloud_trace(config, 20240705);
  const Time lb = dbp_usage_lower_bound(trace.instance, trace.sizes);

  std::cout << "E8: scheduler x packer pipelines on a synthetic cloud trace"
               " (400 jobs).\ncertified usage lower bound = "
            << format_double(lb.to_units(), 2) << " server-hours\n\n";

  Table table({"scheduler", "packer", "usage (server-h)", "span (h)",
               "servers", "peak open", "usage vs LB"});
  for (const char* key :
       {"eager", "lazy", "batch", "batch+", "cdb", "profit"}) {
    for (const auto& packer : make_standard_packers()) {
      const PipelineResult result =
          run_pipeline(trace.instance, trace.sizes, key, *packer);
      table.add_row({result.scheduler, result.packer,
                     format_double(result.packing.total_usage.to_units(), 1),
                     format_double(result.span.to_units(), 1),
                     std::to_string(result.packing.bins_opened),
                     std::to_string(result.packing.peak_open_bins),
                     format_double(result.usage_ratio_upper, 3) + "x"});
    }
  }
  bench::emit("E8 MinUsageTime DBP pipelines", table, "e8_dbp");

  std::cout << "Reading: span-minimizing schedulers (batch/batch+) feed the"
               " packers denser timelines,\ncutting total usage versus the"
               " lazy pipeline; classify-by-duration First Fit trades a\n"
               "few extra servers for tighter per-class packing.\n";
  return 0;
}
