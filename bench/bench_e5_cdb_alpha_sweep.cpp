// E5 — Theorem 4.4: Classify-by-Duration Batch+ and the choice of α.
//
// The theorem bounds CDB by f(α) = 3α + 4 + 2/(α−1), minimized at
// α* = 1 + √(2/3) ≈ 1.8165 where f = 7 + 2√6 ≈ 11.9. We sweep α over
// multi-category workloads (bimodal and heavy-tail lengths), measuring
// exact competitive ratios on small integral instances. Measured ratios
// sit far below the worst-case bound (random inputs are not adversarial);
// the reproduction target is the U-shape of the worst measured ratio and
// the bound column itself.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "offline/exact.h"
#include "schedulers/classify_by_duration.h"
#include "sim/engine.h"
#include "support/parallel.h"
#include "support/stats.h"
#include "support/string_util.h"
#include "support/thread_pool.h"
#include "workload/generator.h"

int main() {
  using namespace fjs;

  std::cout << "E5: CDB alpha sweep (Thm 4.4). alpha* = 1+sqrt(2/3) = "
            << format_double(CdbScheduler::optimal_alpha(), 4)
            << ", bound at alpha* = 7+2*sqrt(6) = "
            << format_double(7.0 + 2.0 * std::sqrt(6.0), 4) << "\n\n";

  // Multi-category instances: lengths spanning 1..8 force several CDB
  // categories so alpha actually matters.
  std::vector<Instance> cases;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    WorkloadConfig bimodal;
    bimodal.job_count = 8;
    bimodal.integral = true;
    bimodal.lengths = LengthDistribution::kBimodal;
    bimodal.length_min = 1.0;
    bimodal.length_max = 8.0;
    bimodal.bimodal_short_fraction = 0.7;
    bimodal.laxity_max = 5.0;
    cases.push_back(generate_workload(bimodal, seed));

    WorkloadConfig spread = bimodal;
    spread.lengths = LengthDistribution::kUniform;
    spread.length_max = 6.0;
    cases.push_back(generate_workload(spread, seed + 100));
  }
  std::vector<Time> opts(cases.size());
  parallel_for(global_pool(), cases.size(), [&](std::size_t i) {
    opts[i] = exact_optimal_span(cases[i]);
  });

  Table table({"alpha", "mean ratio", "p90 ratio", "worst ratio",
               "theorem bound 3a+4+2/(a-1)"});
  const std::vector<double> alphas = {1.2, 1.4, 1.6, 1.8165, 2.0,
                                      2.4, 3.0, 4.0, 6.0};
  for (const double alpha : alphas) {
    Summary ratios;
    for (std::size_t i = 0; i < cases.size(); ++i) {
      CdbScheduler cdb(alpha);
      const Time span = simulate_span(cases[i], cdb, true);
      ratios.add(time_ratio(span, opts[i]));
    }
    const double bound = 3.0 * alpha + 4.0 + 2.0 / (alpha - 1.0);
    table.add_row({format_double(alpha, 4), format_double(ratios.mean(), 4),
                   format_double(ratios.percentile(90.0), 4),
                   format_double(ratios.max(), 4),
                   format_double(bound, 4)});
  }
  bench::emit("E5 CDB alpha sweep", table, "e5_cdb_alpha");

  std::cout << "Reading: the theorem-bound column is minimized at"
               " alpha* = 1.8165; measured ratios on stochastic inputs are\n"
               "much smaller and comparatively flat, as expected for a"
               " worst-case guarantee.\n";
  return 0;
}
