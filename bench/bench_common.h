// Shared output helpers for the experiment benches (E1–E8).
//
// Every bench prints a console table (the "figure/table" being reproduced)
// and drops a CSV next to the working directory for machine consumption.
#pragma once

#include <fstream>
#include <iostream>
#include <string>

#include "support/table.h"

namespace fjs::bench {

/// Prints a titled table and mirrors it to <csv_name>.csv in the CWD.
inline void emit(const std::string& title, const Table& table,
                 const std::string& csv_name) {
  std::cout << "### " << title << "\n\n" << table.render() << '\n';
  std::ofstream out(csv_name + ".csv");
  out << table.render_csv();
}

}  // namespace fjs::bench
