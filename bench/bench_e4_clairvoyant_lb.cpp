// E4 — Theorem 4.1 / Figure 4: the clairvoyant golden-ratio adversary.
//
// Every deterministic scheduler is forced to a ratio approaching
// φ = (√5+1)/2 ≈ 1.618: either it refuses to start a long job inside a
// short job's window (ratio exactly φ at that point), or it rides through
// all n iterations (ratio nφ/(φ+n−1) → φ).
#include <iostream>

#include "adversary/clairvoyant_lb.h"
#include "bench_common.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/string_util.h"

int main() {
  using namespace fjs;

  std::cout << "E4: clairvoyant lower bound (Thm 4.1). phi = "
            << format_double(ClairvoyantAdversary::phi(), 6) << "\n\n";

  Table table({"scheduler", "n", "outcome", "iters", "measured",
               "paper ratio", "phi"});
  for (const auto& spec : scheduler_registry()) {
    for (const int n : {2, 8, 32, 128}) {
      const auto scheduler = spec.make();
      ClairvoyantAdversary adversary(
          ClairvoyantLbParams{.max_iterations = n});
      NoDeferralOracle oracle;
      Engine engine(adversary, oracle, *scheduler,
                    EngineOptions{.clairvoyant = true});
      const SimulationResult result = engine.run();
      const Schedule reference =
          adversary.reference_schedule(result.instance);
      const double measured =
          time_ratio(result.span(), reference.span(result.instance));
      table.add_row({spec.key, std::to_string(n),
                     adversary.stopped_early() ? "refused" : "rode-through",
                     std::to_string(adversary.iterations_released()),
                     format_double(measured, 4),
                     format_double(adversary.theoretical_ratio(), 4),
                     format_double(ClairvoyantAdversary::phi(), 4)});
    }
  }
  bench::emit("E4 clairvoyant adversary (ratio -> phi for everyone)", table,
              "e4_clb");
  return 0;
}
