// E2 — Theorem 3.4 / Figure 2: Batch's tightness family.
//
// Batch's span on the Figure 2 instance is exactly 2mμ against a reference
// of m(1+ε)+μ, so the ratio approaches 2μ as m grows; the theorem also
// caps Batch at 2μ+1 on every instance. Both sides are shown.
#include <iostream>

#include "adversary/tightness.h"
#include "analysis/convergence.h"
#include "bench_common.h"
#include "schedulers/batch.h"
#include "sim/engine.h"
#include "support/string_util.h"

int main() {
  using namespace fjs;

  std::cout << "E2: Batch tightness family (Thm 3.4, Fig. 2).\n\n";

  const double eps = 0.01;
  Table table({"mu", "m", "batch span", "reference span", "ratio",
               "lower 2mu", "upper 2mu+1"});
  Table limits({"mu", "fitted limit (m->inf)", "closed form 2mu/(1+eps)",
                "R^2"});
  for (const double mu : {1.5, 2.0, 4.0, 8.0}) {
    std::vector<double> ms;
    std::vector<double> ratios;
    for (const std::size_t m : {1u, 4u, 16u, 64u, 256u, 1024u}) {
      const TightnessInstance tight = make_batch_tightness(m, mu, eps);
      BatchScheduler batch;
      const Time span = simulate_span(tight.instance, batch, false);
      const Time ref = tight.reference.span(tight.instance);
      const double ratio = time_ratio(span, ref);
      table.add_row({format_double(mu, 1), std::to_string(m),
                     format_double(span.to_units(), 2),
                     format_double(ref.to_units(), 2),
                     format_double(ratio, 4), format_double(2.0 * mu, 1),
                     format_double(2.0 * mu + 1.0, 1)});
      ms.push_back(static_cast<double>(m));
      ratios.push_back(1.0 / ratio);  // reciprocal is exactly linear in 1/m
    }
    const AsymptoteFit fit = fit_asymptote(ms, ratios);
    limits.add_row({format_double(mu, 1), format_double(1.0 / fit.limit, 4),
                    format_double(2.0 * mu / (1.0 + eps), 4),
                    format_double(fit.r_squared, 6)});
  }
  bench::emit("E2 Batch tightness (ratio -> 2mu)", table, "e2_batch_tight");
  std::cout << "Fitted asymptotes (reciprocal fit, exact for this family):\n" << limits.render();
  return 0;
}
