// E3 — Theorem 3.5 / Figure 3: Batch+'s tight family.
//
// Batch+'s span on the Figure 3 instance is m(μ+1−ε) against a reference
// of m+μ: the ratio approaches μ+1, which Theorem 3.5 proves is also the
// worst case — the bound is tight.
#include <iostream>

#include "adversary/tightness.h"
#include "analysis/convergence.h"
#include "bench_common.h"
#include "schedulers/batch_plus.h"
#include "sim/engine.h"
#include "support/string_util.h"

int main() {
  using namespace fjs;

  std::cout << "E3: Batch+ tight family (Thm 3.5, Fig. 3).\n\n";

  const double eps = 0.01;
  Table table({"mu", "m", "batch+ span", "reference span", "ratio",
               "tight bound mu+1"});
  Table limits({"mu", "fitted limit (m->inf)", "closed form mu+1-eps",
                "R^2"});
  for (const double mu : {1.5, 2.0, 4.0, 8.0}) {
    std::vector<double> ms;
    std::vector<double> ratios;
    for (const std::size_t m : {1u, 4u, 16u, 64u, 256u, 1024u}) {
      const TightnessInstance tight = make_batch_plus_tightness(m, mu, eps);
      BatchPlusScheduler bp;
      const Time span = simulate_span(tight.instance, bp, false);
      const Time ref = tight.reference.span(tight.instance);
      const double ratio = time_ratio(span, ref);
      table.add_row({format_double(mu, 1), std::to_string(m),
                     format_double(span.to_units(), 2),
                     format_double(ref.to_units(), 2),
                     format_double(ratio, 4), format_double(mu + 1.0, 1)});
      ms.push_back(static_cast<double>(m));
      ratios.push_back(1.0 / ratio);  // reciprocal is exactly linear in 1/m
    }
    const AsymptoteFit fit = fit_asymptote(ms, ratios);
    limits.add_row({format_double(mu, 1), format_double(1.0 / fit.limit, 4),
                    format_double(mu + 1.0 - eps, 4),
                    format_double(fit.r_squared, 6)});
  }
  bench::emit("E3 Batch+ tightness (ratio -> mu+1)", table,
              "e3_batchplus_tight");
  std::cout << "Fitted asymptotes (reciprocal fit, exact for this family):\n" << limits.render();
  return 0;
}
