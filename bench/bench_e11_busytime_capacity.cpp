// E11 — extension: busy-time scheduling on capacity-g machines.
//
// The paper's concluding remarks connect Clairvoyant FJS to busy-time
// scheduling (Koehler & Khuller): a machine runs at most g concurrent
// jobs, and g = ∞ IS the span objective. Using the integer-capacity
// busytime substrate, we sweep g and machine-assignment policy, showing
// that scheduler choice matters more as g grows (more sharing to exploit)
// and that most-loaded packing beats load balancing for usage time.
#include <iostream>

#include "bench_common.h"
#include "busytime/busytime.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/string_util.h"
#include "workload/generator.h"

int main() {
  using namespace fjs;

  std::cout << "E11: busy-time on capacity-g machines (integer slots,"
               " first-available assignment\nunless noted). Workload: 300"
               " jobs, Poisson arrivals, uniform lengths 1-4, laxity"
               " 0-6.\n\n";

  WorkloadConfig cfg;
  cfg.job_count = 300;
  cfg.arrival_rate = 3.0;
  cfg.laxity_max = 6.0;
  const Instance raw = generate_workload(cfg, 33);

  Table table({"g", "scheduler", "busy time", "machines", "peak",
               "busy vs LB"});
  const std::vector<std::size_t> capacities = {1, 2, 4, 8, 16,
                                               kUnboundedCapacity};
  for (const std::size_t g : capacities) {
    const Time lb = busy_time_lower_bound(raw, g);
    for (const char* key : {"eager", "lazy", "batch+", "profit"}) {
      const auto scheduler = make_scheduler(key);
      const SimulationResult run =
          simulate(raw, *scheduler, scheduler->requires_clairvoyance());
      const BusyTimeResult result =
          assign_machines(run.instance, run.schedule, g);
      table.add_row({g == kUnboundedCapacity ? "inf" : std::to_string(g),
                     scheduler->name(),
                     format_double(result.total_busy.to_units(), 1),
                     std::to_string(result.machines_used),
                     std::to_string(result.peak_active_machines),
                     format_double(time_ratio(result.total_busy, lb), 3) +
                         "x"});
    }
  }
  bench::emit("E11 busy-time vs machine capacity g", table, "e11_busytime");

  // Policy ablation at g = 4 for the batch+ schedule.
  const auto bp = make_scheduler("batch+");
  const SimulationResult run = simulate(raw, *bp, false);
  Table policies({"policy", "busy time", "machines"});
  for (const MachinePolicy policy :
       {MachinePolicy::kFirstAvailable, MachinePolicy::kMostLoaded,
        MachinePolicy::kLeastLoaded}) {
    const BusyTimeResult result =
        assign_machines(run.instance, run.schedule, 4, policy);
    policies.add_row({to_string(policy),
                      format_double(result.total_busy.to_units(), 1),
                      std::to_string(result.machines_used)});
  }
  std::cout << "--- assignment-policy ablation (batch+ schedule, g=4) ---\n"
            << policies.render() << '\n';

  std::cout << "Reading: at g=1 busy time is total work"
               " (scheduler-independent); at g=inf it is the span.\n"
               "In between, span-minimizing schedulers concentrate load so"
               " fewer machine-hours are billed;\nleast-loaded (balancing)"
               " assignment wastes busy time relative to packing"
               " policies.\n";
  return 0;
}
