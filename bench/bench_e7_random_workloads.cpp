// E7 — scheduler comparison on the standard stochastic workload suite.
//
// The paper has no experimental section; this bench provides the empirical
// ranking its theory predicts: Batch+/Batch close to OPT with generous
// laxity, Eager/Lazy losing ground, CDB/Profit trading average-case
// performance for worst-case guarantees. Ratios are reported as a bracket
// [online/heuristic, online/lower-bound] that contains the true
// competitive ratio on each instance.
#include <iostream>

#include "analysis/sweep.h"
#include "bench_common.h"
#include "schedulers/registry.h"
#include "support/string_util.h"
#include "workload/suite.h"

int main() {
  using namespace fjs;

  std::cout << "E7: scheduler x workload grid (8 workload families x 6"
               " seeds, n=150 jobs).\nRatio bracket: [vs heuristic OPT,"
               " vs certified lower bound].\n\n";

  SweepOptions options;
  options.heuristic_options.restarts = 1;
  options.heuristic_options.max_passes = 8;

  Table table({"workload", "scheduler", "mean ratio >=", "mean ratio <=",
               "worst >=", "mean span"});
  for (const auto& named : standard_suite()) {
    WorkloadConfig config = named.config;
    config.job_count = 150;
    const auto cases = make_cases(config, named.name, 6, 42);
    const auto aggregates =
        run_ratio_sweep(cases, known_scheduler_keys(), options);
    for (const auto& agg : aggregates) {
      table.add_row({named.name, agg.scheduler_key,
                     format_double(agg.ratio_lower.mean(), 3),
                     format_double(agg.ratio_upper.mean(), 3),
                     format_double(agg.ratio_lower.max(), 3),
                     format_double(agg.spans.mean(), 1)});
    }
  }
  bench::emit("E7 scheduler comparison on stochastic workloads", table,
              "e7_random");
  return 0;
}
