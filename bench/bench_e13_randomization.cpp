// E13 — exploration (paper's implicit open question): does naive
// randomization help against the lower-bound constructions?
//
// Theorems 3.3 and 4.1 are proved for DETERMINISTIC schedulers; the paper
// leaves randomized competitiveness open. We pit the seeded
// uniform-random-start baseline against both adversaries (which remain
// oblivious adversaries w.r.t. the seed) and against stochastic workloads,
// over many seeds. Result preview: naive randomization does NOT approach
// the laxity-aware schedulers — it interpolates Eager and Lazy.
#include <iostream>

#include "adversary/clairvoyant_lb.h"
#include "adversary/nonclairvoyant_lb.h"
#include "bench_common.h"
#include "schedulers/randomized.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/stats.h"
#include "support/string_util.h"
#include "workload/generator.h"

int main() {
  using namespace fjs;

  std::cout << "E13: randomized-start baseline vs the adversarial"
               " constructions (32 seeds each).\n\n";

  // --- vs the clairvoyant golden-ratio adversary -----------------------
  Summary clb_ratios;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    RandomizedScheduler random(seed);
    ClairvoyantAdversary adversary(ClairvoyantLbParams{.max_iterations = 16});
    NoDeferralOracle oracle;
    Engine engine(adversary, oracle, random,
                  EngineOptions{.clairvoyant = true});
    const SimulationResult run = engine.run();
    clb_ratios.add(time_ratio(
        run.span(), adversary.reference_schedule(run.instance)
                        .span(run.instance)));
  }

  // --- vs the non-clairvoyant adversary --------------------------------
  Summary nclb_ratios;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    RandomizedScheduler random(seed);
    NonClairvoyantLbParams params;
    params.mu = 4.0;
    params.iterations = 3;
    params.counts = {1024, 32, 8};
    NonClairvoyantAdversary adversary(params);
    Engine engine(adversary, adversary, random, {});
    const SimulationResult run = engine.run();
    nclb_ratios.add(time_ratio(
        run.span(), adversary.reference_schedule(run.instance)
                        .span(run.instance)));
  }

  // --- vs a stochastic workload, against the deterministic line-up -----
  WorkloadConfig cfg;
  cfg.job_count = 200;
  cfg.laxity_max = 6.0;
  const Instance inst = generate_workload(cfg, 5);
  Summary random_spans;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    RandomizedScheduler random(seed);
    random_spans.add(simulate_span(inst, random, false).to_units());
  }
  const Time eager_span = simulate_span(
      inst, *make_scheduler("eager"), false);
  const Time lazy_span = simulate_span(inst, *make_scheduler("lazy"), false);
  const Time bp_span = simulate_span(inst, *make_scheduler("batch+"), false);

  Table table({"experiment", "min", "mean", "max", "deterministic refs"});
  table.add_row({"vs clairvoyant adversary (ratio)",
                 format_double(clb_ratios.min(), 4),
                 format_double(clb_ratios.mean(), 4),
                 format_double(clb_ratios.max(), 4),
                 "phi = 1.618 (Thm 4.1 floor)"});
  table.add_row({"vs non-clairvoyant adversary (ratio)",
                 format_double(nclb_ratios.min(), 4),
                 format_double(nclb_ratios.mean(), 4),
                 format_double(nclb_ratios.max(), 4),
                 "floor (kmu+1)/(mu+k) = 1.857"});
  table.add_row({"span on stochastic workload",
                 format_double(random_spans.min(), 1),
                 format_double(random_spans.mean(), 1),
                 format_double(random_spans.max(), 1),
                 "eager " + format_double(eager_span.to_units(), 1) +
                     ", lazy " + format_double(lazy_span.to_units(), 1) +
                     ", batch+ " + format_double(bp_span.to_units(), 1)});
  bench::emit("E13 randomization exploration", table, "e13_random");

  std::cout << "Reading: random starts do not escape the adversaries'"
               " pressure and sit between\neager and lazy on stochastic"
               " inputs — consistent with the paper restricting its\n"
               "positive results to structured (batching/profit)"
               " schedulers.\n";
  return 0;
}
