// The §3.1 adaptive adversary establishing the lower bound μ for
// Non-Clairvoyant FJS (Theorem 3.3, Figure 1).
//
// The adversary releases jobs in iterations. Iteration i releases count[i]
// jobs with exponentially growing laxities; every started job's length is
// fixed one time unit after its start. While the iteration's concurrency
// (number of ITS jobs running simultaneously) stays at or below
// threshold[i] = √count[i], every job gets length 1. The first time the
// concurrency exceeds the threshold, the running job with the largest
// laxity is "earmarked" and gets length μ; everyone else gets 1. When the
// earmarked job completes, the next iteration is released at that instant.
// If an iteration finishes with no earmark, the release process stops.
// After k earmarked iterations a final wave of length-1 jobs is released.
//
// Scaling substitution (documented in DESIGN.md): the paper uses
// double-exponential counts 2^(2^(2k)) purely to make the asymptotics
// work; we parameterize the per-iteration counts (default: repeated square
// roots) and cap laxity exponents to stay inside int64 ticks. The
// reference (near-optimal) schedule is CONSTRUCTED, not assumed: its span
// upper-bounds OPT, so measured ratios are conservative.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/instance.h"
#include "core/schedule.h"
#include "sim/length_oracle.h"
#include "sim/source.h"

namespace fjs {

struct NonClairvoyantLbParams {
  /// Max/min processing-length ratio μ > 1 of the construction.
  double mu = 4.0;
  /// Number of potentially-earmarked iterations (the paper's k).
  int iterations = 3;
  /// Jobs released per iteration 1..k. Empty = derive by repeated square
  /// roots from first_count.
  std::vector<std::size_t> counts;
  /// Used when counts is empty: count[0]; subsequent counts are √previous.
  std::size_t first_count = 4096;
  /// Jobs in the final iteration (k+1); 0 = √counts.back().
  std::size_t final_count = 0;
  /// Laxity base α > μ + 1 (laxity of the j-th job is ~α^j time units).
  double alpha = 6.0;
  /// Exponent cap: laxities grow as α^min(j, cap) plus a strictly
  /// increasing tick tail, keeping ticks inside int64.
  int laxity_exponent_cap = 14;
  /// Ticks per "time unit" of the construction (small: laxities are huge).
  std::int64_t unit_ticks = 1000;
};

/// One object plays both adversary roles: the adaptive job source and the
/// adaptive length oracle. Use each run with a fresh instance of this class.
class NonClairvoyantAdversary final : public JobSource, public LengthOracle {
 public:
  explicit NonClairvoyantAdversary(NonClairvoyantLbParams params = {});

  // JobSource
  SourceAction begin() override;
  SourceAction on_start(JobId id, Time now) override;
  SourceAction on_complete(JobId id, Time now) override;

  // LengthOracle
  StartDecision at_start(JobId id, Time start) override;
  Time decide(JobId id, Time now) override;

  /// --- Post-run inspection -------------------------------------------

  /// Iterations actually released (including the final wave if reached).
  int iterations_released() const { return iteration_; }
  /// True iff the final (k+1) wave was released.
  bool reached_final_wave() const { return reached_final_; }
  /// Earmarked job of each completed iteration, in order.
  const std::vector<JobId>& earmarks() const { return earmarks_; }
  /// Release time of each released iteration.
  const std::vector<Time>& release_times() const { return release_times_; }

  /// The paper's reference schedule on the realized instance: earmarked
  /// jobs (and the last wave) start at the last release time, every other
  /// job starts at its arrival. Always valid; its span upper-bounds OPT.
  Schedule reference_schedule(const Instance& realized) const;

  /// Theoretical ratio floor for the outcome that occurred, from §3.1:
  /// (i−1)·μ + span_i over μ + (i−1), or (kμ+1)/(μ+k) for the final wave.
  double theoretical_ratio_floor() const;

  Time unit() const { return Time(params_.unit_ticks); }

 private:
  Time laxity_of(std::size_t j) const;  // 1-based job index in iteration
  std::size_t threshold(int iteration) const;
  SourceAction release_iteration(Time at);

  NonClairvoyantLbParams params_;
  std::vector<std::size_t> counts_;   // per iteration 1..k
  std::size_t final_count_ = 0;

  int iteration_ = 0;                 // currently released iteration (1-based)
  bool reached_final_ = false;
  bool stopped_ = false;
  std::vector<Time> release_times_;
  std::vector<JobId> earmarks_;

  // Per-job bookkeeping (indexed by engine JobId = release order).
  std::vector<int> job_iteration_;
  std::vector<Time> job_laxity_;

  // Current-iteration adaptive state.
  std::vector<JobId> running_;        // running jobs of current iteration
  std::size_t completed_in_current_ = 0;
  std::optional<JobId> current_earmark_;
};

}  // namespace fjs
