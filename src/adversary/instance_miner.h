// Adversarial instance miner: a randomized hill-climbing search for
// instances that maximize a scheduler's span-to-optimal ratio.
//
// Complements the paper's hand-crafted constructions: the miner explores
// the small-instance space automatically, providing empirical evidence
// that the implemented schedulers do not exceed their proven bounds and
// that the tight families really are the bad inputs (bench E14). Works on
// small integral instances so the exact solver can certify every ratio.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/instance.h"

namespace fjs {

class ThreadPool;

struct MinerOptions {
  /// Random instances evaluated in the seeding round.
  std::size_t population = 64;
  /// Hill-climbing rounds after seeding.
  std::size_t rounds = 30;
  /// Mutations proposed per round (best one is kept if it improves).
  std::size_t mutations_per_round = 24;
  /// Instance shape (integral units).
  std::size_t jobs = 8;
  std::int64_t horizon = 12;
  std::int64_t max_laxity = 5;
  std::int64_t max_length = 5;
  std::uint64_t seed = 0xBADF00DULL;
  /// Optional pool: each seeding/mutation batch is evaluated through
  /// parallel_map. The objective must then be thread-safe. Candidate
  /// generation stays serial (one RNG stream), and values are reduced in
  /// proposal order, so the mined result and the whole `trajectory` are
  /// identical for ANY thread count, including none.
  ThreadPool* pool = nullptr;
  /// Memoize objective values keyed on the exact job list. Hill climbing
  /// re-proposes near-duplicate candidates constantly; with the memo a
  /// revisited instance is never re-solved. The objective is required to be
  /// deterministic, so memoization never changes any result.
  bool use_objective_memo = true;
  /// Lane-parallel lower-bound pre-screen (SIMD lockstep over the batch's
  /// padded columns, support/simd.h): before any candidate is dispatched,
  /// settle every candidate whose span-free ratio upper bound
  /// min(latest_completion - earliest_arrival, total_work) / max_length
  /// cannot exceed the frozen threshold — without simulating or certifying
  /// it. Sound ONLY for objectives bounded by span/OPT (any engine
  /// schedule runs inside [earliest arrival, latest completion), every
  /// busy instant runs at least one job, and OPT >= max length), so this
  /// is opt-in: mine_worst_case enables it; generic mine_instance
  /// objectives must not. Value-safe by the thresholded-objective
  /// contract below — settled values are <= the threshold, hence never
  /// selectable, and trajectories/worst instances are unchanged for any
  /// pool size and memo setting. Screening runs serially on the calling
  /// thread, so it is deterministic for any thread count.
  bool screen_lb_precut = false;
};

struct MinerResult {
  Instance worst_instance;
  /// Exact competitive ratio of the scheduler on worst_instance.
  double worst_ratio = 0.0;
  /// Best ratio after seeding and after each round (non-decreasing).
  std::vector<double> trajectory;
  /// Candidate evaluations consumed (memoized, screened or not) — the
  /// search effort. Objective *calls* are
  /// evaluations - memo_hits - screen_rejects.
  std::size_t evaluations = 0;
  /// Evaluations served from the objective memo instead of a fresh call.
  std::size_t memo_hits = 0;
  /// mine_worst_case only: candidates discarded because the exact solver's
  /// node budget ran out before certifying OPT (objective treated as 0).
  std::size_t budget_skips = 0;
  /// Candidates settled by the lane-parallel LB pre-screen (no simulation,
  /// no certification; see MinerOptions::screen_lb_precut). Objective
  /// calls are evaluations - memo_hits - screen_rejects.
  std::size_t screen_rejects = 0;
  /// mine_worst_case only: checkpointed prefix-replay cache counters for
  /// the online-simulation half of the objective (see PrefixReplayStats).
  /// Aggregated over all worker threads; the replayed spans are
  /// bit-identical with the cache on or off, so these are diagnostics, not
  /// inputs to the search.
  std::size_t prefix_hits = 0;
  std::size_t prefix_misses = 0;
  std::size_t prefix_arrivals_skipped = 0;

  /// Mean staged-arrival depth of restored checkpoints (0 when no hit).
  double mean_prefix_depth() const {
    return prefix_hits == 0 ? 0.0
                            : static_cast<double>(prefix_arrivals_skipped) /
                                  static_cast<double>(prefix_hits);
  }
};

/// Mines a worst case for the scheduler registry key (clairvoyance is
/// inferred): objective = exact competitive ratio. Deterministic for
/// fixed options.
MinerResult mine_worst_case(const std::string& scheduler_key,
                            MinerOptions options = {});

/// General form: hill-climbs ANY objective over small integral instances
/// (larger = worse for the property under study). The objective must be
/// deterministic. Used e.g. to search for instances separating two
/// schedulers (span(A)/span(B), bench E16-style studies).
MinerResult mine_instance(
    const std::function<double(const Instance&)>& objective,
    MinerOptions options = {});

/// Threshold-aware form: the miner passes the running incumbent best value
/// at batch-generation time (0.0 only before any candidate has been
/// evaluated; seeding runs in fixed sub-batches whose threshold is the max
/// over all earlier sub-batches). A candidate whose objective provably
/// cannot exceed `threshold` may be settled with any deterministic value
/// <= threshold instead of the exact value — e.g. an upper bound that is
/// cheap to compute (span / lower_bound for the competitive-ratio
/// objective) — because such a candidate can never be selected. The
/// threshold is non-decreasing across sub-batches and rounds, so memoized
/// settled values stay unselectable forever and the mined trajectory,
/// worst instance and evaluation counts are identical to the exact-only
/// objective for any pool size and memo setting.
MinerResult mine_instance(
    const std::function<double(const Instance&, double threshold)>& objective,
    MinerOptions options = {});

/// Hint-aware form: like the threshold-aware overload, but the miner also
/// annotates each candidate with the earliest event time its mutation can
/// influence (Time::max() for seeds and re-rolled jobs, min(old arrival,
/// new arrival) of the mutated job otherwise). Objectives that replay the
/// candidate through a prefix-replay PortfolioRunner forward the hint so
/// the deepest valid checkpoint is selected automatically; the hint never
/// changes any value (it only bounds which prefix may be skipped).
MinerResult mine_instance(
    const std::function<double(const Instance&, double threshold,
                               Time earliest_affected)>& objective,
    MinerOptions options = {});

/// Columnar core all overloads funnel into: the objective reads the
/// candidate through a non-owning InstanceView over the miner's mutation
/// scratch table — no Instance is materialized for rejected candidates
/// (the miner applies each single-row patch in place with an undo record
/// and keeps the incumbent as a bare JobTable; the one owning Instance is
/// built for the final result). The Instance-objective overloads above
/// bridge by materializing per fresh evaluation; hot objectives
/// (mine_worst_case's certification loop) use this form directly.
MinerResult mine_instance(
    const std::function<double(InstanceView view, double threshold,
                               Time earliest_affected)>& objective,
    MinerOptions options = {});

}  // namespace fjs
