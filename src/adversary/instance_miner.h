// Adversarial instance miner: a randomized hill-climbing search for
// instances that maximize a scheduler's span-to-optimal ratio.
//
// Complements the paper's hand-crafted constructions: the miner explores
// the small-instance space automatically, providing empirical evidence
// that the implemented schedulers do not exceed their proven bounds and
// that the tight families really are the bad inputs (bench E14). Works on
// small integral instances so the exact solver can certify every ratio.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/instance.h"

namespace fjs {

struct MinerOptions {
  /// Random instances evaluated in the seeding round.
  std::size_t population = 64;
  /// Hill-climbing rounds after seeding.
  std::size_t rounds = 30;
  /// Mutations proposed per round (best one is kept if it improves).
  std::size_t mutations_per_round = 24;
  /// Instance shape (integral units).
  std::size_t jobs = 8;
  std::int64_t horizon = 12;
  std::int64_t max_laxity = 5;
  std::int64_t max_length = 5;
  std::uint64_t seed = 0xBADF00DULL;
};

struct MinerResult {
  Instance worst_instance;
  /// Exact competitive ratio of the scheduler on worst_instance.
  double worst_ratio = 0.0;
  /// Best ratio after seeding and after each round (non-decreasing).
  std::vector<double> trajectory;
  std::size_t evaluations = 0;
};

/// Mines a worst case for the scheduler registry key (clairvoyance is
/// inferred): objective = exact competitive ratio. Deterministic for
/// fixed options.
MinerResult mine_worst_case(const std::string& scheduler_key,
                            MinerOptions options = {});

/// General form: hill-climbs ANY objective over small integral instances
/// (larger = worse for the property under study). The objective must be
/// deterministic. Used e.g. to search for instances separating two
/// schedulers (span(A)/span(B), bench E16-style studies).
MinerResult mine_instance(
    const std::function<double(const Instance&)>& objective,
    MinerOptions options = {});

}  // namespace fjs
