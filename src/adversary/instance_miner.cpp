#include "adversary/instance_miner.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>

#include "core/job_table.h"
#include "offline/exact.h"
#include "offline/lower_bound.h"
#include "schedulers/registry.h"
#include "sim/portfolio.h"
#include "support/assert.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/simd.h"
#include "support/telemetry.h"
#include "support/thread_pool.h"

namespace fjs {
namespace {

// Miner telemetry: totals across every mine on any thread. Evaluation and
// memo counts are a function of the seed/options (deterministic); which
// thread performed them is not, but sums don't care.
telemetry::Counter g_tm_evaluations{"miner.evaluations",
                                    telemetry::Stability::kDeterministic};
telemetry::Counter g_tm_memo_hits{"miner.memo_hits",
                                  telemetry::Stability::kDeterministic};
telemetry::Counter g_tm_budget_skips{"miner.budget_skips",
                                     telemetry::Stability::kDeterministic};
telemetry::Counter g_tm_screen_rejects{"miner.screen_rejects",
                                       telemetry::Stability::kDeterministic};

}  // namespace

namespace {

void random_table(Rng& rng, const MinerOptions& options, JobTable& table) {
  table.clear();
  table.reserve(options.jobs);
  for (std::size_t i = 0; i < options.jobs; ++i) {
    const auto a = static_cast<double>(rng.uniform_int(0, options.horizon));
    const auto lax =
        static_cast<double>(rng.uniform_int(0, options.max_laxity));
    const auto p = static_cast<double>(rng.uniform_int(1, options.max_length));
    table.push_back(Time::from_units(a), Time::from_units(a + lax),
                    Time::from_units(p));
  }
}

/// One candidate: either a fresh seed table or a single-row patch against
/// the round's shared parent table. Patches never copy the parent — they
/// are applied to a per-thread scratch table at evaluation time and undone
/// right after, so a hill-climbing round performs no per-candidate copy
/// and re-validates nothing (mutations keep every row valid by clamping).
struct Candidate {
  bool is_seed = false;
  JobTable table;  ///< seeds only; empty for patches
  // Patch payload: the NEW row values for `victim`.
  JobId victim = kInvalidJob;
  Time arrival;
  Time deadline;
  Time length;
};

/// One unit-grained tweak of a random job's arrival, laxity or length,
/// recorded as a patch (the parent table is not touched).
/// `earliest_affected` receives the earliest event time the tweak can
/// influence: the mutated job is invisible to the run before it arrives in
/// EITHER version, so min(old arrival, new arrival) bounds every affected
/// event (deadline/length changes are observed no earlier than arrival).
Candidate mutate(const JobTable& parent, Rng& rng, const MinerOptions& options,
                 Time* earliest_affected) {
  const auto victim = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(parent.size()) - 1));
  Job j = parent.job(static_cast<JobId>(victim));
  const Time old_arrival = j.arrival;
  const Time unit(Time::kTicksPerUnit);
  switch (rng.uniform_int(0, 3)) {
    case 0: {  // move arrival (preserving laxity)
      const Time lax = j.laxity();
      const std::int64_t delta = rng.bernoulli(0.5) ? 1 : -1;
      Time arrival = j.arrival + unit * delta;
      arrival = std::max(Time::zero(),
                         std::min(arrival, Time::from_units(
                                               static_cast<double>(
                                                   options.horizon))));
      j.arrival = arrival;
      j.deadline = arrival + lax;
      break;
    }
    case 1: {  // grow/shrink laxity
      const std::int64_t delta = rng.bernoulli(0.5) ? 1 : -1;
      Time lax = j.laxity() + unit * delta;
      lax = std::max(Time::zero(),
                     std::min(lax, Time::from_units(static_cast<double>(
                                       options.max_laxity))));
      j.deadline = j.arrival + lax;
      break;
    }
    case 2: {  // grow/shrink length
      const std::int64_t delta = rng.bernoulli(0.5) ? 1 : -1;
      Time p = j.length + unit * delta;
      p = std::max(unit, std::min(p, Time::from_units(static_cast<double>(
                                         options.max_length))));
      j.length = p;
      break;
    }
    default: {  // re-roll the job entirely
      const auto a = static_cast<double>(rng.uniform_int(0, options.horizon));
      const auto lax =
          static_cast<double>(rng.uniform_int(0, options.max_laxity));
      const auto p =
          static_cast<double>(rng.uniform_int(1, options.max_length));
      j.arrival = Time::from_units(a);
      j.deadline = Time::from_units(a + lax);
      j.length = Time::from_units(p);
      break;
    }
  }
  if (earliest_affected != nullptr) {
    *earliest_affected = std::min(old_arrival, j.arrival);
  }
  Candidate c;
  c.victim = static_cast<JobId>(victim);
  c.arrival = j.arrival;
  c.deadline = j.deadline;
  c.length = j.length;
  return c;
}

/// Memo key: the exact job list in tick units. Mutations preserve job
/// order, so revisited candidates (the common case in hill climbing) hit;
/// permuted duplicates are treated as distinct, which only costs a call.
using MemoKey = std::vector<std::int64_t>;

struct MemoKeyHash {
  std::size_t operator()(const MemoKey& key) const {
    std::uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (const std::int64_t v : key) {
      h ^= static_cast<std::uint64_t>(v) + 0x9E3779B97F4A7C15ULL + (h << 6) +
           (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

/// Builds the candidate's job list without materializing it: seed tables
/// are read directly, patches read the parent with the victim row swapped.
void fill_memo_key(const JobTable& parent, const Candidate& c, MemoKey& key) {
  key.clear();
  const InstanceView v = c.is_seed ? c.table.view() : parent.view();
  key.reserve(v.size() * 3);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const auto id = static_cast<JobId>(i);
    if (!c.is_seed && id == c.victim) {
      key.push_back(c.arrival.ticks());
      key.push_back(c.deadline.ticks());
      key.push_back(c.length.ticks());
    } else {
      key.push_back(v.arrival(id).ticks());
      key.push_back(v.deadline(id).ticks());
      key.push_back(v.length(id).ticks());
    }
  }
}

using HintedObjective =
    std::function<double(InstanceView, double threshold,
                         Time earliest_affected)>;

/// Monotone batch stamp: each evaluate() call gets a globally unique epoch
/// so a worker's thread-local scratch table knows when to resync with the
/// batch's parent (unique across concurrent mines sharing a pool).
std::atomic<std::uint64_t> g_scratch_epoch{0};

/// Evaluates candidate batches: dedupes against the memo, runs the misses
/// through parallel_map when a pool is attached, and hands values back in
/// proposal order. Deterministic for any thread count because candidate
/// order is fixed before evaluation, the threshold is frozen per batch,
/// and the objective is deterministic. `hints[i]` is candidate i's
/// earliest-affected-event annotation (Time::max() = none); it rides along
/// to the objective and may not change any value.
///
/// Patch candidates are served from a per-thread scratch JobTable: copied
/// from the parent once per (thread, batch), then mutate → evaluate over
/// the scratch view → restore, so the steady state allocates nothing and
/// no Instance is ever materialized for a rejected candidate.
class BatchEvaluator {
 public:
  BatchEvaluator(const HintedObjective& objective,
                 const MinerOptions& options)
      : objective_(objective), options_(options) {}

  std::vector<double> evaluate(const JobTable& parent,
                               const std::vector<Candidate>& batch,
                               const std::vector<Time>& hints,
                               double threshold) {
    FJS_REQUIRE(hints.size() == batch.size(),
                "miner: one hint per candidate");
    epoch_ = g_scratch_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
    std::vector<std::size_t> misses;  // first occurrence of each unknown key
    misses.reserve(batch.size());
    std::vector<double*> slots;  // memo cell per candidate; stable under
                                 // rehash (unordered_map nodes don't move)
    if (options_.use_objective_memo) {
      slots.resize(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        // One hash walk per candidate: try_emplace reserves the cell for a
        // miss (so an intra-batch duplicate is a hit) and finds it for a
        // hit; both paths hand back the cell the fill/read below uses.
        fill_memo_key(parent, batch[i], key_scratch_);
        const auto [it, inserted] = memo_.try_emplace(key_scratch_, kPending);
        slots[i] = &it->second;
        if (inserted) {
          misses.push_back(i);
        }
      }
    } else {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        misses.push_back(i);
      }
    }
    std::vector<double> values(batch.size(), kPending);
    // Lane-parallel LB pre-screen: every memo-missed candidate whose
    // span-free ratio upper bound cannot beat the frozen threshold is
    // settled here, in lockstep over a padded row-major column batch,
    // before a single simulation is dispatched. Serial on the calling
    // thread — the survivor list (and every settled value) is the same
    // for any pool size.
    const std::vector<std::size_t>& eval_list =
        screen(parent, batch, misses, threshold, values, slots);
    std::vector<double> fresh;
    if (options_.pool != nullptr && options_.pool->thread_count() > 1 &&
        eval_list.size() > 1) {
      fresh = parallel_map(
          *options_.pool, eval_list.size(),
          [&, threshold](std::size_t m) {
            return eval_one(parent, batch[eval_list[m]], threshold,
                            hints[eval_list[m]]);
          },
          ChunkPolicy::kDynamic);
    } else {
      fresh.reserve(eval_list.size());
      for (const std::size_t m : eval_list) {
        fresh.push_back(eval_one(parent, batch[m], threshold, hints[m]));
      }
    }
    if (!options_.use_objective_memo) {
      for (std::size_t m = 0; m < eval_list.size(); ++m) {
        values[eval_list[m]] = fresh[m];
      }
      return values;
    }
    for (std::size_t m = 0; m < eval_list.size(); ++m) {
      *slots[eval_list[m]] = fresh[m];
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      values[i] = *slots[i];
    }
    memo_hits_ += batch.size() - misses.size();
    g_tm_memo_hits.add(batch.size() - misses.size());
    g_tm_evaluations.add(eval_list.size());
    return values;
  }

  std::size_t memo_hits() const { return memo_hits_; }
  std::size_t screen_rejects() const { return screen_rejects_; }

 private:
  static constexpr double kPending = 0.0;  // placeholder until filled above

  /// The lockstep pre-screen (MinerOptions::screen_lb_precut). For lane k
  /// (memo miss k), the SIMD kernel reduces min arrival, max saturated
  /// d + p, max length and saturating total length over the candidate's
  /// rows. Any engine schedule runs inside [min a, max d+p), every busy
  /// instant runs at least one job (so span <= sum p too), and
  /// OPT >= max p; hence
  /// ratio_ub = min(max_dp - min_a, sum_p) / max_p bounds span/OPT from
  /// above. ratio_ub <= threshold settles the candidate at ratio_ub
  /// (always unselectable under the non-decreasing threshold — see the
  /// header contract); the rest survive into the returned evaluation list.
  /// Returns `misses` itself when screening is off or inapplicable.
  const std::vector<std::size_t>& screen(const JobTable& parent,
                                         const std::vector<Candidate>& batch,
                                         const std::vector<std::size_t>& misses,
                                         double threshold,
                                         std::vector<double>& values,
                                         const std::vector<double*>& slots) {
    if (!options_.screen_lb_precut || threshold <= 0.0 || misses.empty()) {
      return misses;
    }
    const auto row_count = [&](std::size_t i) {
      return batch[i].is_seed ? batch[i].table.size() : parent.size();
    };
    const std::size_t rows = row_count(misses[0]);
    if (rows == 0) {
      return misses;
    }
    for (const std::size_t m : misses) {
      if (row_count(m) != rows) {
        return misses;  // heterogeneous batch: lanes would not align
      }
    }
    const std::size_t lanes = misses.size();
    screen_a_.resize(rows * lanes);
    screen_d_.resize(rows * lanes);
    screen_p_.resize(rows * lanes);
    for (std::size_t k = 0; k < lanes; ++k) {
      const Candidate& c = batch[misses[k]];
      const InstanceView v = c.is_seed ? c.table.view() : parent.view();
      for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t idx = r * lanes + k;
        const auto id = static_cast<JobId>(r);
        if (!c.is_seed && id == c.victim) {
          screen_a_[idx] = c.arrival.ticks();
          screen_d_[idx] = c.deadline.ticks();
          screen_p_[idx] = c.length.ticks();
        } else {
          screen_a_[idx] = v.arrival(id).ticks();
          screen_d_[idx] = v.deadline(id).ticks();
          screen_p_[idx] = v.length(id).ticks();
        }
      }
    }
    screen_min_a_.resize(lanes);
    screen_max_dp_.resize(lanes);
    screen_max_p_.resize(lanes);
    screen_sum_p_.resize(lanes);
    simd::lockstep_screen(screen_a_.data(), screen_d_.data(), screen_p_.data(),
                          rows, lanes, screen_min_a_.data(),
                          screen_max_dp_.data(), screen_max_p_.data(),
                          screen_sum_p_.data());
    survivors_.clear();
    for (std::size_t k = 0; k < lanes; ++k) {
      const std::size_t i = misses[k];
      std::int64_t horizon = 0;
      const bool bounded =
          screen_max_p_[k] > 0 && screen_sum_p_[k] > 0 &&
          !__builtin_sub_overflow(screen_max_dp_[k], screen_min_a_[k],
                                  &horizon) &&
          horizon > 0;
      if (bounded) {
        const double ratio_ub =
            time_ratio(Time(std::min(horizon, screen_sum_p_[k])),
                       Time(screen_max_p_[k]));
        if (ratio_ub <= threshold) {
          values[i] = ratio_ub;
          if (options_.use_objective_memo) {
            *slots[i] = ratio_ub;
          }
          ++screen_rejects_;
          g_tm_screen_rejects.increment();
          continue;
        }
      }
      survivors_.push_back(i);
    }
    return survivors_;
  }

  double eval_one(const JobTable& parent, const Candidate& c,
                  double threshold, Time hint) const {
    if (c.is_seed) {
      return objective_(c.table.view(), threshold, hint);
    }
    // Scratch resyncs on the first patch of each batch this thread sees
    // (column assignment reuses capacity: no allocation at steady state).
    struct Scratch {
      std::uint64_t epoch = 0;
      JobTable table;
    };
    thread_local Scratch scratch;
    if (scratch.epoch != epoch_) {
      scratch.table = parent;
      scratch.epoch = epoch_;
    }
    const JobTable::Undo undo = scratch.table.undo_record(c.victim);
    scratch.table.set(c.victim, c.arrival, c.deadline, c.length);
    const double value = objective_(scratch.table.view(), threshold, hint);
    scratch.table.restore(undo);
    return value;
  }

  const HintedObjective& objective_;
  const MinerOptions& options_;
  std::uint64_t epoch_ = 0;
  std::unordered_map<MemoKey, double, MemoKeyHash> memo_;
  MemoKey key_scratch_;  // reused per candidate; copied only on insert
  std::size_t memo_hits_ = 0;
  // Pre-screen scratch (capacity reused across batches: the steady state
  // allocates nothing once every vector has grown to the batch shape).
  std::vector<std::int64_t> screen_a_, screen_d_, screen_p_;
  std::vector<std::int64_t> screen_min_a_, screen_max_dp_, screen_max_p_,
      screen_sum_p_;
  std::vector<std::size_t> survivors_;
  std::size_t screen_rejects_ = 0;
};

}  // namespace

MinerResult mine_instance(
    const std::function<double(const Instance&)>& objective,
    MinerOptions options) {
  return mine_instance(
      [&objective](const Instance& instance, double) {
        return objective(instance);
      },
      std::move(options));
}

MinerResult mine_instance(
    const std::function<double(const Instance&, double)>& objective,
    MinerOptions options) {
  return mine_instance(
      [&objective](const Instance& instance, double threshold, Time) {
        return objective(instance, threshold);
      },
      std::move(options));
}

MinerResult mine_instance(
    const std::function<double(const Instance&, double, Time)>& objective,
    MinerOptions options) {
  // Compatibility bridge: materialize an owning Instance per fresh
  // evaluation. Objectives on the hot path take InstanceView instead.
  return mine_instance(
      HintedObjective([&objective](InstanceView view, double threshold,
                                   Time earliest_affected) {
        return objective(Instance(JobTable(view)), threshold,
                         earliest_affected);
      }),
      std::move(options));
}

MinerResult mine_instance(
    const std::function<double(InstanceView, double, Time)>& objective,
    MinerOptions options) {
  FJS_REQUIRE(options.population >= 1, "miner: population must be >= 1");
  FJS_REQUIRE(options.jobs >= 1, "miner: jobs must be >= 1");
  Rng rng(options.seed);
  MinerResult result;
  BatchEvaluator evaluator(objective, options);

  // Candidates are generated serially — one RNG stream, same draw order as
  // the original interleaved miner — then evaluated as a batch. Picking the
  // first strict improvement in proposal order reproduces the original
  // running-max selection exactly, so trajectories are bit-identical to the
  // serial miner's for any pool size.
  //
  // The incumbent lives as a bare JobTable: accepted patches are applied
  // in place (one row store) and an owning Instance is materialized only
  // once, for the final mined result.
  JobTable parent;
  std::vector<Candidate> batch;
  batch.reserve(std::max(options.population, options.mutations_per_round));
  std::vector<Time> hints;  // earliest-affected annotation per candidate
  hints.reserve(batch.capacity());

  auto adopt = [&parent](Candidate& c) {
    if (c.is_seed) {
      parent = std::move(c.table);
    } else {
      parent.set(c.victim, c.arrival, c.deadline, c.length);
    }
  };

  // Seeding round, in fixed sub-batches with a progressively rising
  // threshold: after each sub-batch the running max becomes the next
  // sub-batch's threshold, so most seeds settle on a cheap bound instead of
  // a full certification. Trajectory-preserving: every settled value is at
  // most its threshold, i.e. at most the max of some earlier prefix, so it
  // can neither become the first occurrence of the global max nor displace
  // it under the strict-> running-max selection below — the selected seed
  // and trajectory[0] are identical to the single-batch evaluation. The
  // sub-batch size is a constant (not derived from the pool) so the chunk
  // boundaries, thresholds and therefore every value are the same for any
  // thread count.
  constexpr std::size_t kSeedChunk = 8;
  double best_ratio = 0.0;
  bool have_best = false;
  std::vector<double> values;
  for (std::size_t seeded = 0; seeded < options.population;
       seeded += kSeedChunk) {
    batch.clear();
    hints.clear();
    const std::size_t count =
        std::min(kSeedChunk, options.population - seeded);
    for (std::size_t i = 0; i < count; ++i) {
      Candidate c;
      c.is_seed = true;
      random_table(rng, options, c.table);
      batch.push_back(std::move(c));
      hints.push_back(Time::max());  // seeds share no parent: no hint
    }
    values = evaluator.evaluate(parent, batch, hints,
                                have_best ? best_ratio : 0.0);
    result.evaluations += batch.size();
    // Deferred adoption of the running strict max — the surviving index is
    // the first occurrence of the sub-batch max, exactly what adopting
    // each improvement in turn would have left behind.
    std::size_t pick = count;
    for (std::size_t i = 0; i < count; ++i) {
      if (!have_best || values[i] > best_ratio) {
        best_ratio = values[i];
        have_best = true;
        pick = i;
      }
    }
    if (pick != count) {
      adopt(batch[pick]);
    }
  }
  result.trajectory.push_back(best_ratio);

  // Hill climbing.
  for (std::size_t round = 0; round < options.rounds; ++round) {
    batch.clear();
    hints.clear();
    for (std::size_t m = 0; m < options.mutations_per_round; ++m) {
      Time earliest_affected = Time::max();
      batch.push_back(mutate(parent, rng, options, &earliest_affected));
      hints.push_back(earliest_affected);
    }
    // Freeze the threshold at the incumbent before the batch: a candidate
    // that cannot beat it may be settled cheaply (see header contract),
    // and the threshold only ever grows, which keeps memoized settled
    // values unselectable in every later round.
    values = evaluator.evaluate(parent, batch, hints, best_ratio);
    result.evaluations += batch.size();
    std::size_t pick = batch.size();
    double round_ratio = best_ratio;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (values[i] > round_ratio) {
        round_ratio = values[i];
        pick = i;
      }
    }
    if (pick != batch.size()) {
      adopt(batch[pick]);
      best_ratio = round_ratio;
    }
    result.trajectory.push_back(best_ratio);
  }

  // The one owning materialization of the whole mine (validates once).
  result.worst_instance = Instance(std::move(parent));
  result.worst_ratio = best_ratio;
  result.memo_hits = evaluator.memo_hits();
  result.screen_rejects = evaluator.screen_rejects();
  return result;
}

MinerResult mine_worst_case(const std::string& scheduler_key,
                            MinerOptions options) {
  const auto probe = make_scheduler(scheduler_key);
  const bool clairvoyant = probe->requires_clairvoyance();
  // This objective is span/OPT: the lockstep LB pre-screen's span-free
  // upper bound is sound for it (and for no arbitrary mine_instance
  // objective), so opt in here.
  options.screen_lb_precut = true;
  auto budget_skips = std::make_shared<std::atomic<std::size_t>>(0);
  struct PrefixCounters {
    std::atomic<std::size_t> hits{0};
    std::atomic<std::size_t> misses{0};
    std::atomic<std::size_t> arrivals_skipped{0};
  };
  auto prefix = std::make_shared<PrefixCounters>();
  MinerResult result = mine_instance(
      HintedObjective([&scheduler_key, clairvoyant, budget_skips, prefix](
                          InstanceView view, double threshold,
                          Time earliest_affected) {
        // Per-thread replay state: the portfolio runner amortizes engine
        // setup across candidates, and the scheduler object is rebuilt
        // only when the mined key changes on this thread.
        thread_local PortfolioRunner runner;
        thread_local std::unique_ptr<OnlineScheduler> scheduler;
        thread_local std::string scheduler_key_cache;
        thread_local std::vector<Time> starts;
        if (!scheduler || scheduler_key_cache != scheduler_key) {
          scheduler = make_scheduler(scheduler_key);
          scheduler_key_cache = scheduler_key;
        }
        // Checkpointed prefix replay: candidates are single-job mutations
        // of a shared parent, so consecutive replays on a thread share a
        // long timeline prefix. The replay is static (preloaded timeline,
        // NoDeferralOracle) in BOTH models, so the non-clairvoyant opt-in
        // is sound here; spans are bit-identical to full replay either
        // way, which the miner determinism tests pin down.
        runner.enable_prefix_replay(EngineCheckpointSeries::kDefaultSlots,
                                    /*include_nonclairvoyant=*/true);
        const PrefixReplayStats before = runner.prefix_stats();
        const Time span = runner.run_span(
            view, PortfolioEntry{scheduler.get(), clairvoyant}, &starts,
            earliest_affected);
        const PrefixReplayStats& after = runner.prefix_stats();
        prefix->hits.fetch_add(after.hits - before.hits,
                               std::memory_order_relaxed);
        prefix->misses.fetch_add(after.misses - before.misses,
                                 std::memory_order_relaxed);
        prefix->arrivals_skipped.fetch_add(
            after.arrivals_skipped - before.arrivals_skipped,
            std::memory_order_relaxed);
        // Pre-certification cut: span/lower_bound upper-bounds the true
        // ratio. When even that cannot beat the incumbent, settle the
        // candidate without certifying OPT — the dominant cost here by far
        // (the thresholded-objective contract makes this value-safe: any
        // settled value <= the frozen threshold is never selectable, so
        // which certified bound produced it cannot change a trajectory).
        // Staged cheapest-first: max-length is free, the mandatory union
        // costs an IntervalSet, the chain bound a Pareto map — later
        // stages only run when the cheaper bound failed to settle.
        if (threshold > 0.0) {
          Time lb = max_length_lower_bound(view);
          if (lb > Time::zero() && time_ratio(span, lb) <= threshold) {
            return time_ratio(span, lb);
          }
          lb = std::max(lb, mandatory_lower_bound(view));
          if (lb > Time::zero() && time_ratio(span, lb) <= threshold) {
            return time_ratio(span, lb);
          }
          lb = std::max(lb, chain_lower_bound(view));
          if (lb > Time::zero() && time_ratio(span, lb) <= threshold) {
            return time_ratio(span, lb);
          }
        }
        // At mining sizes the heuristic incumbent costs more than the whole
        // branch-and-bound, and a budget-exceeded candidate is discarded
        // anyway — skip the seeding pass. The online run's span is a free
        // feasible incumbent, and span_only skips witness-schedule
        // construction and reconstruction (only the ratio is needed here).
        ExactOptions exact_options;
        exact_options.seed_with_heuristic = false;
        exact_options.span_only = true;
        exact_options.seed_span = span;
        // At mining sizes (hundreds of nodes per search) the transposition
        // cache's per-node key/hash/insert cost exceeds what its hits save;
        // disabling it speeds certification ~2x and cannot change any value.
        exact_options.max_cache_entries = 0;
        if (threshold > 0.0) {
          // Decision floor: the candidate beats the incumbent iff
          // OPT < span/threshold, so the solver may stop at the floor
          // instead of certifying OPT. Integer-safe rounding: the floor
          // must satisfy span/floor <= threshold or the settled value
          // could become selectable.
          auto floor_ticks = static_cast<std::int64_t>(
              std::ceil(static_cast<double>(span.ticks()) / threshold));
          while (floor_ticks > 0 &&
                 time_ratio(span, Time(floor_ticks)) > threshold) {
            ++floor_ticks;
          }
          exact_options.decision_floor = Time(floor_ticks);
        }
        const ExactResult opt = exact_optimal(view, exact_options);
        if (opt.status == ExactStatus::kFloorProven) {
          // OPT >= floor proven: ratio <= span/floor <= threshold, so the
          // candidate can never be selected — settle it with that bound.
          return time_ratio(span, exact_options.decision_floor);
        }
        if (!opt.optimal()) {
          // Uncertifiable candidate: discard it instead of aborting the
          // whole mine — a ratio of 0 never survives selection.
          budget_skips->fetch_add(1, std::memory_order_relaxed);
          g_tm_budget_skips.increment();
          return 0.0;
        }
        return time_ratio(span, opt.span);
      }),
      options);
  result.budget_skips = budget_skips->load(std::memory_order_relaxed);
  result.prefix_hits = prefix->hits.load(std::memory_order_relaxed);
  result.prefix_misses = prefix->misses.load(std::memory_order_relaxed);
  result.prefix_arrivals_skipped =
      prefix->arrivals_skipped.load(std::memory_order_relaxed);
  return result;
}

}  // namespace fjs
