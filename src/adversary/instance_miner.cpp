#include "adversary/instance_miner.h"

#include <algorithm>

#include "offline/exact.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/assert.h"
#include "support/rng.h"

namespace fjs {
namespace {

Instance random_instance(Rng& rng, const MinerOptions& options) {
  InstanceBuilder builder;
  for (std::size_t i = 0; i < options.jobs; ++i) {
    const auto a = static_cast<double>(rng.uniform_int(0, options.horizon));
    const auto lax =
        static_cast<double>(rng.uniform_int(0, options.max_laxity));
    const auto p = static_cast<double>(rng.uniform_int(1, options.max_length));
    builder.add_lax(a, lax, p);
  }
  return builder.build();
}

/// One unit-grained tweak of a random job's arrival, laxity or length.
Instance mutate(const Instance& instance, Rng& rng,
                const MinerOptions& options) {
  std::vector<Job> jobs(instance.jobs().begin(), instance.jobs().end());
  const auto victim = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(jobs.size()) - 1));
  Job& j = jobs[victim];
  const Time unit(Time::kTicksPerUnit);
  switch (rng.uniform_int(0, 3)) {
    case 0: {  // move arrival (preserving laxity)
      const Time lax = j.laxity();
      const std::int64_t delta = rng.bernoulli(0.5) ? 1 : -1;
      Time arrival = j.arrival + unit * delta;
      arrival = std::max(Time::zero(),
                         std::min(arrival, Time::from_units(
                                               static_cast<double>(
                                                   options.horizon))));
      j.arrival = arrival;
      j.deadline = arrival + lax;
      break;
    }
    case 1: {  // grow/shrink laxity
      const std::int64_t delta = rng.bernoulli(0.5) ? 1 : -1;
      Time lax = j.laxity() + unit * delta;
      lax = std::max(Time::zero(),
                     std::min(lax, Time::from_units(static_cast<double>(
                                       options.max_laxity))));
      j.deadline = j.arrival + lax;
      break;
    }
    case 2: {  // grow/shrink length
      const std::int64_t delta = rng.bernoulli(0.5) ? 1 : -1;
      Time p = j.length + unit * delta;
      p = std::max(unit, std::min(p, Time::from_units(static_cast<double>(
                                         options.max_length))));
      j.length = p;
      break;
    }
    default: {  // re-roll the job entirely
      const auto a = static_cast<double>(rng.uniform_int(0, options.horizon));
      const auto lax =
          static_cast<double>(rng.uniform_int(0, options.max_laxity));
      const auto p =
          static_cast<double>(rng.uniform_int(1, options.max_length));
      j.arrival = Time::from_units(a);
      j.deadline = Time::from_units(a + lax);
      j.length = Time::from_units(p);
      break;
    }
  }
  return Instance(std::move(jobs));
}

}  // namespace

MinerResult mine_instance(
    const std::function<double(const Instance&)>& objective,
    MinerOptions options) {
  FJS_REQUIRE(options.population >= 1, "miner: population must be >= 1");
  FJS_REQUIRE(options.jobs >= 1, "miner: jobs must be >= 1");
  Rng rng(options.seed);
  MinerResult result;

  auto evaluate = [&](const Instance& instance) {
    ++result.evaluations;
    return objective(instance);
  };

  // Seeding round.
  Instance best = random_instance(rng, options);
  double best_ratio = evaluate(best);
  for (std::size_t i = 1; i < options.population; ++i) {
    Instance candidate = random_instance(rng, options);
    const double ratio = evaluate(candidate);
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best = std::move(candidate);
    }
  }
  result.trajectory.push_back(best_ratio);

  // Hill climbing.
  for (std::size_t round = 0; round < options.rounds; ++round) {
    Instance round_best = best;
    double round_ratio = best_ratio;
    for (std::size_t m = 0; m < options.mutations_per_round; ++m) {
      Instance candidate = mutate(best, rng, options);
      const double ratio = evaluate(candidate);
      if (ratio > round_ratio) {
        round_ratio = ratio;
        round_best = std::move(candidate);
      }
    }
    if (round_ratio > best_ratio) {
      best_ratio = round_ratio;
      best = std::move(round_best);
    }
    result.trajectory.push_back(best_ratio);
  }

  result.worst_instance = std::move(best);
  result.worst_ratio = best_ratio;
  return result;
}

MinerResult mine_worst_case(const std::string& scheduler_key,
                            MinerOptions options) {
  const auto probe = make_scheduler(scheduler_key);
  const bool clairvoyant = probe->requires_clairvoyance();
  return mine_instance(
      [&scheduler_key, clairvoyant](const Instance& instance) {
        const auto scheduler = make_scheduler(scheduler_key);
        const Time span = simulate_span(instance, *scheduler, clairvoyant);
        return time_ratio(span, exact_optimal_span(instance));
      },
      options);
}

}  // namespace fjs
