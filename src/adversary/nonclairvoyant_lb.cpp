#include "adversary/nonclairvoyant_lb.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace fjs {

NonClairvoyantAdversary::NonClairvoyantAdversary(NonClairvoyantLbParams params)
    : params_(std::move(params)) {
  FJS_REQUIRE(params_.mu > 1.0, "nclb: mu must be > 1");
  FJS_REQUIRE(params_.iterations >= 1, "nclb: need at least one iteration");
  FJS_REQUIRE(params_.alpha > params_.mu + 1.0,
              "nclb: the construction needs alpha > mu + 1");
  FJS_REQUIRE(params_.unit_ticks > 0, "nclb: unit_ticks must be positive");
  if (!params_.counts.empty()) {
    FJS_REQUIRE(params_.counts.size() ==
                    static_cast<std::size_t>(params_.iterations),
                "nclb: counts size must equal iterations");
    counts_ = params_.counts;
  } else {
    // The paper's counts shrink by repeated square roots
    // (2^(2^(2k)), 2^(2^(2k-1)), ...); mirror that shape at laptop scale.
    std::size_t c = params_.first_count;
    for (int i = 0; i < params_.iterations; ++i) {
      counts_.push_back(std::max<std::size_t>(c, 4));
      c = static_cast<std::size_t>(
          std::llround(std::sqrt(static_cast<double>(c))));
    }
  }
  for (const std::size_t c : counts_) {
    FJS_REQUIRE(c >= 4, "nclb: iteration counts must be >= 4");
  }
  final_count_ = params_.final_count;
  if (final_count_ == 0) {
    final_count_ = std::max<std::size_t>(
        2, static_cast<std::size_t>(
               std::llround(std::sqrt(static_cast<double>(counts_.back())))));
  }
}

Time NonClairvoyantAdversary::laxity_of(std::size_t j) const {
  const int capped =
      std::min<int>(static_cast<int>(j), params_.laxity_exponent_cap);
  const double units = std::pow(params_.alpha, capped);
  Time lax = Time(params_.unit_ticks).scaled(units);
  if (static_cast<int>(j) > params_.laxity_exponent_cap) {
    // Strictly increasing tick tail beyond the cap so "largest laxity
    // among running jobs" stays unique and well-ordered.
    lax = lax.checked_add(
        Time(static_cast<std::int64_t>(j) - params_.laxity_exponent_cap));
  }
  return lax;
}

std::size_t NonClairvoyantAdversary::threshold(int iteration) const {
  FJS_CHECK(iteration >= 1 &&
                iteration <= static_cast<int>(counts_.size()),
            "nclb: threshold of unknown iteration");
  const auto count =
      static_cast<double>(counts_[static_cast<std::size_t>(iteration - 1)]);
  return static_cast<std::size_t>(std::llround(std::sqrt(count)));
}

SourceAction NonClairvoyantAdversary::release_iteration(Time at) {
  ++iteration_;
  release_times_.push_back(at);
  running_.clear();
  completed_in_current_ = 0;
  current_earmark_.reset();

  SourceAction action;
  const bool final_wave = iteration_ > params_.iterations;
  const std::size_t count =
      final_wave ? final_count_ : counts_[static_cast<std::size_t>(iteration_ - 1)];
  reached_final_ = reached_final_ || final_wave;
  for (std::size_t j = 1; j <= count; ++j) {
    JobSpec spec;
    spec.arrival = at;
    spec.deadline = at.checked_add(laxity_of(j));
    if (final_wave) {
      spec.length = unit();  // the paper fixes these to length 1 up front
    } else {
      spec.length = std::nullopt;  // adaptive: the oracle decides later
    }
    action.releases.push_back(spec);
    job_iteration_.push_back(iteration_);
    job_laxity_.push_back(laxity_of(j));
  }
  return action;
}

SourceAction NonClairvoyantAdversary::begin() {
  return release_iteration(Time::zero());
}

SourceAction NonClairvoyantAdversary::on_start(JobId id, Time /*now*/) {
  FJS_CHECK(id < job_iteration_.size(), "nclb: unknown job started");
  const bool final_wave = job_iteration_[id] > params_.iterations;
  if (final_wave || job_iteration_[id] != iteration_ ||
      current_earmark_.has_value()) {
    return {};
  }
  running_.push_back(id);
  if (running_.size() > threshold(iteration_)) {
    // Concurrency first exceeded the threshold: earmark the running job
    // with the largest laxity (the paper's J_{m_i}).
    const JobId earmark = *std::max_element(
        running_.begin(), running_.end(), [this](JobId a, JobId b) {
          return job_laxity_[a] < job_laxity_[b];
        });
    current_earmark_ = earmark;
  }
  return {};
}

SourceAction NonClairvoyantAdversary::on_complete(JobId id, Time now) {
  auto it = std::find(running_.begin(), running_.end(), id);
  if (it != running_.end()) {
    running_.erase(it);
  }
  if (current_earmark_.has_value() && *current_earmark_ == id) {
    // T_{i+1} is exactly the earmarked job's completion time.
    earmarks_.push_back(id);
    if (iteration_ <= params_.iterations && !reached_final_) {
      return release_iteration(now);
    }
    return {};
  }
  if (job_iteration_[id] == iteration_ &&
      iteration_ <= params_.iterations && !current_earmark_.has_value()) {
    ++completed_in_current_;
    if (completed_in_current_ ==
        counts_[static_cast<std::size_t>(iteration_ - 1)]) {
      stopped_ = true;  // iteration drained without an earmark: stop here
    }
  }
  return {};
}

LengthOracle::StartDecision NonClairvoyantAdversary::at_start(JobId /*id*/,
                                                              Time start) {
  // The paper assigns lengths one time unit after the start.
  return StartDecision{.length = std::nullopt,
                       .decide_at = start.checked_add(unit())};
}

Time NonClairvoyantAdversary::decide(JobId id, Time /*now*/) {
  if (current_earmark_.has_value() && *current_earmark_ == id) {
    return unit().scaled(params_.mu);
  }
  return unit();
}

Schedule NonClairvoyantAdversary::reference_schedule(
    const Instance& realized) const {
  FJS_REQUIRE(!release_times_.empty(), "nclb: run the simulation first");
  const Time t_last = release_times_.back();
  Schedule sched(realized.size());
  for (JobId id = 0; id < realized.size(); ++id) {
    const Job& j = realized.job(id);
    const bool earmarked =
        std::find(earmarks_.begin(), earmarks_.end(), id) != earmarks_.end();
    if (earmarked) {
      // Lemma 3.2 guarantees startability at the last release time in the
      // paper's sizing; under our scaled sizing the min() keeps the
      // schedule valid regardless (span can only get worse => the measured
      // ratio stays a valid lower bound).
      sched.set_start(id, std::min(j.deadline, std::max(j.arrival, t_last)));
    } else {
      sched.set_start(id, j.arrival);
    }
  }
  sched.validate(realized);
  return sched;
}

double NonClairvoyantAdversary::theoretical_ratio_floor() const {
  const double mu = params_.mu;
  const double k = params_.iterations;
  if (reached_final_) {
    return (k * mu + 1.0) / (mu + k);
  }
  const int i = iteration_;
  const auto thr = static_cast<double>(threshold(i));
  if (i == 1) {
    return thr;
  }
  return ((i - 1) * mu + thr) / (mu + (i - 1));
}

}  // namespace fjs
