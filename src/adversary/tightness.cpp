#include "adversary/tightness.h"

#include "support/assert.h"

namespace fjs {

TightnessInstance make_batch_tightness(std::size_t m, double mu, double eps) {
  FJS_REQUIRE(m >= 1, "batch tightness: m >= 1");
  FJS_REQUIRE(mu > 1.0, "batch tightness: mu > 1");
  FJS_REQUIRE(eps > 0.0 && eps < mu, "batch tightness: 0 < eps < mu");

  InstanceBuilder builder;
  std::vector<Time> reference_starts;
  const double md = static_cast<double>(m);

  // Group 1: i-th short job (laxity 0, p = 1) arrives at 2(i−1)μ.
  for (std::size_t i = 1; i <= m; ++i) {
    const double a = 2.0 * static_cast<double>(i - 1) * mu;
    builder.add_lax(a, 0.0, 1.0);
    reference_starts.push_back(Time::from_units(a));  // start at arrival
  }
  // Group 2: i-th short job (laxity μ−ε, p = 1) arrives at 2(i−1)μ + ε.
  for (std::size_t i = 1; i <= m; ++i) {
    const double a = 2.0 * static_cast<double>(i - 1) * mu + eps;
    builder.add_lax(a, mu - eps, 1.0);
    reference_starts.push_back(Time::from_units(a));  // start at arrival
  }
  // Group 3: i-th long job (p = μ) arrives at (i−1)μ; common starting
  // deadline 2mμ.
  const double common_deadline = 2.0 * md * mu;
  for (std::size_t i = 1; i <= 2 * m; ++i) {
    const double a = static_cast<double>(i - 1) * mu;
    builder.add(a, common_deadline, mu);
    reference_starts.push_back(Time::from_units(common_deadline));
  }

  TightnessInstance out{.instance = builder.build(),
                        .reference = Schedule::from_starts(reference_starts),
                        .predicted_online_span =
                            Time::from_units(2.0 * md * mu),
                        .predicted_reference_span =
                            Time::from_units(md * (1.0 + eps) + mu)};
  out.reference.validate(out.instance);
  return out;
}

TightnessInstance make_batch_plus_tightness(std::size_t m, double mu,
                                            double eps) {
  FJS_REQUIRE(m >= 1, "batch+ tightness: m >= 1");
  FJS_REQUIRE(mu > 1.0, "batch+ tightness: mu > 1");
  FJS_REQUIRE(eps > 0.0 && eps < 1.0, "batch+ tightness: 0 < eps < 1");

  InstanceBuilder builder;
  std::vector<Time> reference_starts;
  const double md = static_cast<double>(m);

  // Short jobs: laxity 0, p = 1, the i-th arrives at (i−1)(μ+1).
  for (std::size_t i = 1; i <= m; ++i) {
    const double a = static_cast<double>(i - 1) * (mu + 1.0);
    builder.add_lax(a, 0.0, 1.0);
    reference_starts.push_back(Time::from_units(a));  // start at arrival
  }
  // Long jobs: p = μ, the i-th arrives at (i−1)(μ+1) + (1−ε); common
  // starting deadline m(μ+1).
  const double common_deadline = md * (mu + 1.0);
  for (std::size_t i = 1; i <= m; ++i) {
    const double a = static_cast<double>(i - 1) * (mu + 1.0) + (1.0 - eps);
    builder.add(a, common_deadline, mu);
    reference_starts.push_back(Time::from_units(common_deadline));
  }

  TightnessInstance out{.instance = builder.build(),
                        .reference = Schedule::from_starts(reference_starts),
                        .predicted_online_span =
                            Time::from_units(md * (mu + 1.0 - eps)),
                        .predicted_reference_span =
                            Time::from_units(md + mu)};
  out.reference.validate(out.instance);
  return out;
}

}  // namespace fjs
