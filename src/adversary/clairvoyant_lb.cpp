#include "adversary/clairvoyant_lb.h"

#include <algorithm>

#include "support/assert.h"

namespace fjs {

ClairvoyantAdversary::ClairvoyantAdversary(ClairvoyantLbParams params)
    : params_(params),
      step_(Time::from_units(phi() + 1.0)),
      short_len_(Time::from_units(1.0)),
      long_len_(Time::from_units(phi())) {
  FJS_REQUIRE(params_.max_iterations >= 1, "clb: need >= 1 iteration");
}

SourceAction ClairvoyantAdversary::release_iteration() {
  ++iteration_;
  const Time r = step_ * static_cast<std::int64_t>(iteration_ - 1);
  release_times_.push_back(r);

  SourceAction action;
  // Short job: laxity 0 — must start at r.
  action.releases.push_back(
      JobSpec{.arrival = r, .deadline = r, .length = short_len_});
  // Long job: laxity (n − i + 1)(φ+1).
  const auto remaining =
      static_cast<std::int64_t>(params_.max_iterations - iteration_ + 1);
  action.releases.push_back(JobSpec{.arrival = r,
                                    .deadline = r + step_ * remaining,
                                    .length = long_len_});
  long_ids_.push_back(static_cast<JobId>(2 * iteration_ - 1));
  long_started_in_window_.push_back(false);
  // Check the window at r + 1 (the short job's completion).
  action.wakeup = r + short_len_;
  return action;
}

SourceAction ClairvoyantAdversary::begin() { return release_iteration(); }

SourceAction ClairvoyantAdversary::on_start(JobId id, Time now) {
  const auto it = std::find(long_ids_.begin(), long_ids_.end(), id);
  if (it != long_ids_.end()) {
    const auto idx = static_cast<std::size_t>(it - long_ids_.begin());
    const Time window_end = release_times_[idx] + short_len_;
    if (now < window_end) {
      long_started_in_window_[idx] = true;
    }
  }
  return {};
}

SourceAction ClairvoyantAdversary::on_wakeup(Time /*now*/) {
  // Fired at r_i + 1, the end of iteration i's short window.
  const std::size_t idx = static_cast<std::size_t>(iteration_) - 1;
  if (!long_started_in_window_[idx]) {
    stopped_early_ = true;
    return {};  // terminate the release process
  }
  if (iteration_ >= params_.max_iterations) {
    return {};  // final iteration done
  }
  return release_iteration();
}

Schedule ClairvoyantAdversary::reference_schedule(
    const Instance& realized) const {
  FJS_REQUIRE(!release_times_.empty(), "clb: run the simulation first");
  const Time t_last = release_times_.back();
  Schedule sched(realized.size());
  for (JobId id = 0; id < realized.size(); ++id) {
    const Job& j = realized.job(id);
    const bool is_long =
        std::find(long_ids_.begin(), long_ids_.end(), id) != long_ids_.end();
    if (is_long) {
      // Long deadlines are all >= n(φ+1) - trivia: r_j + (n-j+1)(φ+1)
      // = n(φ+1), so starting at the last release time is always feasible.
      FJS_CHECK(j.deadline >= t_last, "clb: long job cannot reach t_last");
      sched.set_start(id, std::max(j.arrival, t_last));
    } else {
      sched.set_start(id, j.arrival);
    }
  }
  sched.validate(realized);
  return sched;
}

double ClairvoyantAdversary::theoretical_ratio() const {
  const double n = iterations_released();
  if (stopped_early_) {
    return phi();  // ((i−1)φ + φ + 1) / (φ + i − 1) = φ for every i
  }
  return n * phi() / (phi() + n - 1.0);
}

}  // namespace fjs
