// The §4.1 adaptive adversary establishing the golden-ratio lower bound
// φ = (√5+1)/2 for Clairvoyant FJS (Theorem 4.1, Figure 4).
//
// Up to n iterations. Iteration i releases, at r_i = (i−1)(φ+1):
//   * a short job: laxity 0, length 1 — forced to run [r_i, r_i+1);
//   * a long job: length φ, laxity (n−i+1)(φ+1).
// If the online scheduler does NOT start the long job during the short
// job's active interval [r_i, r_i+1), the adversary stops releasing.
// Otherwise the next iteration follows. Either way the measured ratio is
// at least φ (up to tick rounding).
#pragma once

#include <vector>

#include "core/instance.h"
#include "core/schedule.h"
#include "sim/source.h"

namespace fjs {

struct ClairvoyantLbParams {
  /// Maximum number of iterations (the paper's n).
  int max_iterations = 32;
};

class ClairvoyantAdversary final : public JobSource {
 public:
  explicit ClairvoyantAdversary(ClairvoyantLbParams params = {});

  SourceAction begin() override;
  SourceAction on_start(JobId id, Time now) override;
  SourceAction on_wakeup(Time now) override;

  /// --- Post-run inspection -------------------------------------------

  int iterations_released() const { return iteration_; }
  /// True iff the adversary stopped because a long job was not started
  /// inside its short partner's active interval.
  bool stopped_early() const { return stopped_early_; }

  /// The paper's reference schedule on the realized instance: all long
  /// jobs start at the last release time, shorts at their arrivals.
  Schedule reference_schedule(const Instance& realized) const;

  /// Exact ratio the paper derives for the realized outcome: φ if stopped
  /// early, else nφ / (φ + n − 1).
  double theoretical_ratio() const;

  static double phi() { return 1.6180339887498949; }

 private:
  SourceAction release_iteration();

  ClairvoyantLbParams params_;
  Time step_;        ///< φ + 1 in ticks
  Time short_len_;   ///< 1 in ticks
  Time long_len_;    ///< φ in ticks

  int iteration_ = 0;
  bool stopped_early_ = false;
  std::vector<Time> release_times_;
  /// Long job of each iteration (engine JobId) and whether it started
  /// inside the short's window.
  std::vector<JobId> long_ids_;
  std::vector<bool> long_started_in_window_;
};

}  // namespace fjs
