// Tightness instances for the Batch and Batch+ upper bounds.
//
// Figure 2 (Theorem 3.4): a family on which Batch's span-to-optimal ratio
// approaches 2μ as m → ∞.
// Figure 3 (Theorem 3.5): a family on which Batch+'s ratio approaches μ+1.
//
// Each generator returns both the instance and the paper's closed-form
// reference schedule (a feasible schedule, so its span upper-bounds OPT)
// plus the closed-form span predictions used in the proofs.
#pragma once

#include "core/instance.h"
#include "core/schedule.h"

namespace fjs {

struct TightnessInstance {
  Instance instance;
  /// The paper's near-optimal schedule (valid; span upper-bounds OPT).
  Schedule reference;
  /// Closed-form span the paper predicts for the online scheduler.
  Time predicted_online_span;
  /// Closed-form span of the reference schedule.
  Time predicted_reference_span;
};

/// Figure 2 family. Groups: m zero-laxity unit jobs at 2(i−1)μ;
/// m unit jobs with laxity μ−ε at 2(i−1)μ+ε; 2m length-μ jobs arriving at
/// (i−1)μ, all with starting deadline 2mμ.
/// Batch's span is 2mμ; the reference span is m(1+ε) + μ.
TightnessInstance make_batch_tightness(std::size_t m, double mu, double eps);

/// Figure 3 family. Groups: m zero-laxity unit jobs at (i−1)(μ+1);
/// m length-μ jobs arriving at (i−1)(μ+1) + (1−ε), all with starting
/// deadline m(μ+1).
/// Batch+'s span is m(μ+1−ε); the reference span is m + μ.
TightnessInstance make_batch_plus_tightness(std::size_t m, double mu,
                                            double eps);

}  // namespace fjs
