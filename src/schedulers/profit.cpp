#include "schedulers/profit.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/assert.h"
#include "support/string_util.h"

namespace fjs {
namespace {

/// p <= k * budget, evaluated in doubles (exact for tick values below 2^53,
/// which all shipped instances respect).
bool within_factor(Time p, double k, Time budget) {
  return static_cast<double>(p.ticks()) <=
         k * static_cast<double>(budget.ticks());
}

}  // namespace

double ProfitScheduler::optimal_k() { return 1.0 + std::sqrt(2.0) / 2.0; }

ProfitScheduler::ProfitScheduler(double k) : k_(k) {
  FJS_REQUIRE(k_ > 1.0, "profit: k must be > 1");
}

std::string ProfitScheduler::name() const {
  std::ostringstream os;
  os << "profit(k=" << format_double(k_, 4) << ')';
  return os.str();
}

void ProfitScheduler::on_arrival(SchedulerContext& ctx, JobId id) {
  const Time p = ctx.length_of(id);
  const Time now = ctx.now();
  // Profitable to some running flag? (a(J) = now is inside [d(f), end(f)),
  // guaranteed because flags_ only holds flags whose completion is in the
  // future and whose start is in the past.)
  for (const FlagInfo& flag : flags_) {
    if (within_factor(p, k_, flag.end - now)) {
      ctx.start_job(id);
      return;
    }
  }
  // Not profitable to any active flag: buffer until a later flag start or
  // this job's own starting deadline.
}

void ProfitScheduler::on_deadline(SchedulerContext& ctx, JobId id) {
  const Time now = ctx.now();
  // Flag selection: among pending jobs sharing this starting deadline,
  // pick the one with the longest processing length (footnote 3).
  JobId flag_id = id;
  Time flag_p = ctx.length_of(id);
  for (const JobId job : ctx.pending()) {
    if (ctx.view(job).deadline == now && ctx.length_of(job) > flag_p) {
      flag_id = job;
      flag_p = ctx.length_of(job);
    }
  }
  ctx.start_job(flag_id);
  const FlagInfo info{.id = flag_id, .length = flag_p, .end = now + flag_p};
  flags_.push_back(info);
  flag_history_.push_back(info);
  // Start every pending job profitable to the new flag. Snapshot into the
  // member scratch (start_job mutates the view; capacity is reused so
  // warm runs don't allocate here).
  pending_scratch_ = ctx.pending();
  for (const JobId job : pending_scratch_) {
    if (within_factor(ctx.length_of(job), k_, flag_p)) {
      ctx.start_job(job);
    }
  }
}

void ProfitScheduler::on_completion(SchedulerContext& /*ctx*/, JobId id) {
  flags_.erase(std::remove_if(flags_.begin(), flags_.end(),
                              [id](const FlagInfo& f) { return f.id == id; }),
               flags_.end());
}

void ProfitScheduler::reset() {
  flags_.clear();
  flag_history_.clear();
}

// Layout: [n_flags, flags (3 words each), flag_history (3 words each)].
// pending_scratch_ is overwrite-before-use scratch, not state.
void ProfitScheduler::save_state(std::vector<std::uint64_t>& out) const {
  out.clear();
  out.push_back(flags_.size());
  for (const FlagInfo& f : flags_) {
    out.push_back(f.id);
    out.push_back(snapshot::pack_time(f.length));
    out.push_back(snapshot::pack_time(f.end));
  }
  for (const FlagInfo& f : flag_history_) {
    out.push_back(f.id);
    out.push_back(snapshot::pack_time(f.length));
    out.push_back(snapshot::pack_time(f.end));
  }
}

void ProfitScheduler::load_state(const std::uint64_t* data, std::size_t n) {
  FJS_REQUIRE(n >= 1, "profit: truncated snapshot");
  const std::size_t n_flags = static_cast<std::size_t>(data[0]);
  FJS_REQUIRE(n >= 1 + 3 * n_flags && (n - 1) % 3 == 0,
              "profit: malformed snapshot");
  flags_.clear();
  flag_history_.clear();
  std::size_t i = 1;
  for (std::size_t f = 0; f < n_flags; ++f, i += 3) {
    flags_.push_back(FlagInfo{.id = static_cast<JobId>(data[i]),
                              .length = snapshot::unpack_time(data[i + 1]),
                              .end = snapshot::unpack_time(data[i + 2])});
  }
  for (; i < n; i += 3) {
    flag_history_.push_back(
        FlagInfo{.id = static_cast<JobId>(data[i]),
                 .length = snapshot::unpack_time(data[i + 1]),
                 .end = snapshot::unpack_time(data[i + 2])});
  }
}

}  // namespace fjs
