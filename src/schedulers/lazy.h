// Lazy baseline: delays every job until its starting deadline.
//
// §3.2 notes this scheduler has an unbounded competitive ratio — it wastes
// the flexibility the laxity offers (jobs that could have run together are
// started at unrelated deadlines). Included as the second natural
// comparator.
#pragma once

#include "sim/scheduler.h"

namespace fjs {

class LazyScheduler final : public OnlineScheduler {
 public:
  std::string name() const override { return "lazy"; }

  void on_arrival(SchedulerContext& ctx, JobId id) override;
  void on_deadline(SchedulerContext& ctx, JobId id) override;
};

}  // namespace fjs
