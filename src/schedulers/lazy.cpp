#include "schedulers/lazy.h"

namespace fjs {

void LazyScheduler::on_arrival(SchedulerContext& /*ctx*/, JobId /*id*/) {
  // Buffer until the starting deadline.
}

void LazyScheduler::on_deadline(SchedulerContext& ctx, JobId id) {
  ctx.start_job(id);
}

}  // namespace fjs
