#include "schedulers/eager.h"

namespace fjs {

void EagerScheduler::on_arrival(SchedulerContext& ctx, JobId id) {
  ctx.start_job(id);
}

void EagerScheduler::on_deadline(SchedulerContext& ctx, JobId id) {
  // Unreachable in practice: every job starts at arrival. Kept defensive so
  // the engine contract holds even if a subclass overrides on_arrival.
  ctx.start_job(id);
}

}  // namespace fjs
