#include "schedulers/batch_plus.h"

#include <vector>

#include "support/assert.h"

namespace fjs {

void BatchPlusScheduler::on_arrival(SchedulerContext& ctx, JobId id) {
  if (flag_.has_value()) {
    // Inside the flag's active interval: start immediately.
    ctx.start_job(id);
  }
  // Otherwise buffer until the next flag job is designated.
}

void BatchPlusScheduler::on_deadline(SchedulerContext& ctx, JobId id) {
  // Invariant: during a flag's active interval the pending set is empty
  // (everything pending was started at the flag's start; later arrivals
  // start immediately), so no deadline event can fire then.
  FJS_CHECK(!flag_.has_value(), "batch+: deadline during an active iteration");
  flag_ = id;
  flag_history_.push_back(id);
  // Snapshot: start_job mutates the pending view mid-iteration. The
  // member scratch keeps its capacity, so warm runs don't allocate here.
  batch_scratch_ = ctx.pending();
  for (const JobId job : batch_scratch_) {
    ctx.start_job(job);
  }
}

void BatchPlusScheduler::on_completion(SchedulerContext& /*ctx*/, JobId id) {
  if (flag_.has_value() && *flag_ == id) {
    flag_.reset();  // iteration over; buffer future arrivals
  }
}

void BatchPlusScheduler::reset() {
  flag_.reset();
  flag_history_.clear();
}

// Layout: [has_flag, flag_value, flag_history...]. batch_scratch_ is
// overwrite-before-use scratch, not state.
//
// FJS_PLANTED_CHECKPOINT_BUG deliberately drops the active-flag field from
// the snapshot (both halves, so the words stay self-consistent): a resumed
// run then buffers arrivals that should have started inside the active
// iteration. The checkpoint differential oracle must catch this — it is
// the drill that proves the oracle can detect a scheduler whose snapshot
// forgets one field. Never enable outside that drill.
void BatchPlusScheduler::save_state(std::vector<std::uint64_t>& out) const {
  out.clear();
#if !defined(FJS_PLANTED_CHECKPOINT_BUG)
  out.push_back(flag_.has_value() ? 1 : 0);
  out.push_back(flag_.has_value() ? *flag_ : 0);
#else
  out.push_back(0);
  out.push_back(0);
#endif
  for (const JobId id : flag_history_) {
    out.push_back(id);
  }
}

void BatchPlusScheduler::load_state(const std::uint64_t* data, std::size_t n) {
  FJS_REQUIRE(n >= 2, "batch+: truncated snapshot");
#if !defined(FJS_PLANTED_CHECKPOINT_BUG)
  flag_.reset();
  if (data[0] != 0) {
    flag_ = static_cast<JobId>(data[1]);
  }
#else
  flag_.reset();
#endif
  flag_history_.clear();
  for (std::size_t i = 2; i < n; ++i) {
    flag_history_.push_back(static_cast<JobId>(data[i]));
  }
}

}  // namespace fjs
