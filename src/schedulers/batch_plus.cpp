#include "schedulers/batch_plus.h"

#include <vector>

#include "support/assert.h"

namespace fjs {

void BatchPlusScheduler::on_arrival(SchedulerContext& ctx, JobId id) {
  if (flag_.has_value()) {
    // Inside the flag's active interval: start immediately.
    ctx.start_job(id);
  }
  // Otherwise buffer until the next flag job is designated.
}

void BatchPlusScheduler::on_deadline(SchedulerContext& ctx, JobId id) {
  // Invariant: during a flag's active interval the pending set is empty
  // (everything pending was started at the flag's start; later arrivals
  // start immediately), so no deadline event can fire then.
  FJS_CHECK(!flag_.has_value(), "batch+: deadline during an active iteration");
  flag_ = id;
  flag_history_.push_back(id);
  // Snapshot: start_job mutates the pending view mid-iteration. The
  // member scratch keeps its capacity, so warm runs don't allocate here.
  batch_scratch_ = ctx.pending();
  for (const JobId job : batch_scratch_) {
    ctx.start_job(job);
  }
}

void BatchPlusScheduler::on_completion(SchedulerContext& /*ctx*/, JobId id) {
  if (flag_.has_value() && *flag_ == id) {
    flag_.reset();  // iteration over; buffer future arrivals
  }
}

void BatchPlusScheduler::reset() {
  flag_.reset();
  flag_history_.clear();
}

}  // namespace fjs
