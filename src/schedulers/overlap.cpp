#include "schedulers/overlap.h"

#include <sstream>
#include <vector>

#include "core/interval_set.h"
#include "support/assert.h"
#include "support/string_util.h"

namespace fjs {

OverlapScheduler::OverlapScheduler(double theta) : theta_(theta) {
  FJS_REQUIRE(theta_ > 0.0 && theta_ <= 1.0, "overlap: theta in (0, 1]");
}

std::string OverlapScheduler::name() const {
  std::ostringstream os;
  os << "overlap(theta=" << format_double(theta_, 3) << ')';
  return os.str();
}

bool OverlapScheduler::overlap_sufficient(SchedulerContext& ctx,
                                          JobId id) const {
  const Time now = ctx.now();
  const Interval candidate = Interval::from_length(now, ctx.length_of(id));
  IntervalSet running;
  for (const auto& [job, interval] : running_intervals_) {
    running.add(interval);
  }
  const Time covered = running.measure_within(candidate);
  return static_cast<double>(covered.ticks()) >=
         theta_ * static_cast<double>(candidate.length().ticks());
}

void OverlapScheduler::start_and_cascade(SchedulerContext& ctx, JobId id) {
  ctx.start_job(id);
  running_intervals_.emplace(
      id, Interval::from_length(ctx.now(), ctx.length_of(id)));
  // New coverage may unlock other pending jobs; fixpoint over the pending
  // set (each pass starts at least one job or stops).
  bool progress = true;
  while (progress) {
    progress = false;
    const std::vector<JobId> pending = ctx.pending();
    for (const JobId job : pending) {
      if (overlap_sufficient(ctx, job)) {
        ctx.start_job(job);
        running_intervals_.emplace(
            job, Interval::from_length(ctx.now(), ctx.length_of(job)));
        progress = true;
      }
    }
  }
}

void OverlapScheduler::on_arrival(SchedulerContext& ctx, JobId id) {
  if (overlap_sufficient(ctx, id)) {
    start_and_cascade(ctx, id);
  }
}

void OverlapScheduler::on_deadline(SchedulerContext& ctx, JobId id) {
  start_and_cascade(ctx, id);
}

void OverlapScheduler::on_completion(SchedulerContext& /*ctx*/, JobId id) {
  running_intervals_.erase(id);
}

void OverlapScheduler::reset() { running_intervals_.clear(); }

}  // namespace fjs
