#include "schedulers/overlap.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "support/assert.h"
#include "support/string_util.h"

namespace fjs {

OverlapScheduler::OverlapScheduler(double theta) : theta_(theta) {
  FJS_REQUIRE(theta_ > 0.0 && theta_ <= 1.0, "overlap: theta in (0, 1]");
}

std::string OverlapScheduler::name() const {
  std::ostringstream os;
  os << "overlap(theta=" << format_double(theta_, 3) << ')';
  return os.str();
}

bool OverlapScheduler::overlap_sufficient(SchedulerContext& ctx,
                                          JobId id) const {
  const Time now = ctx.now();
  const Interval candidate = Interval::from_length(now, ctx.length_of(id));
  // Union-measure within the candidate in one pass: the intervals are
  // sorted by lo (they may overlap each other), so tracking the covered
  // frontier gives the union without materializing an IntervalSet.
  Time covered = Time::zero();
  Time frontier = candidate.lo;
  for (const RunningInterval& r : running_intervals_) {
    if (r.iv.lo >= candidate.hi) {
      break;
    }
    const Time lo = std::max(r.iv.lo, frontier);
    const Time hi = std::min(r.iv.hi, candidate.hi);
    if (hi > lo) {
      covered += hi - lo;
      frontier = hi;
    }
  }
  return static_cast<double>(covered.ticks()) >=
         theta_ * static_cast<double>(candidate.length().ticks());
}

void OverlapScheduler::insert_running(JobId id, const Interval& iv) {
  const auto pos = std::upper_bound(
      running_intervals_.begin(), running_intervals_.end(),
      std::make_pair(iv.lo, id), [](const auto& key, const RunningInterval& r) {
        if (key.first != r.iv.lo) {
          return key.first < r.iv.lo;
        }
        return key.second < r.job;
      });
  running_intervals_.insert(pos, RunningInterval{id, iv});
}

void OverlapScheduler::start_and_cascade(SchedulerContext& ctx, JobId id) {
  ctx.start_job(id);
  insert_running(id, Interval::from_length(ctx.now(), ctx.length_of(id)));
  // New coverage may unlock other pending jobs; fixpoint over the pending
  // set (each pass starts at least one job or stops).
  bool progress = true;
  while (progress) {
    progress = false;
    const std::vector<JobId> pending = ctx.pending();
    for (const JobId job : pending) {
      if (overlap_sufficient(ctx, job)) {
        ctx.start_job(job);
        insert_running(job, Interval::from_length(ctx.now(), ctx.length_of(job)));
        progress = true;
      }
    }
  }
}

void OverlapScheduler::on_arrival(SchedulerContext& ctx, JobId id) {
  if (overlap_sufficient(ctx, id)) {
    start_and_cascade(ctx, id);
  }
}

void OverlapScheduler::on_deadline(SchedulerContext& ctx, JobId id) {
  start_and_cascade(ctx, id);
}

void OverlapScheduler::on_completion(SchedulerContext& /*ctx*/, JobId id) {
  const auto it = std::find_if(
      running_intervals_.begin(), running_intervals_.end(),
      [id](const RunningInterval& r) { return r.job == id; });
  if (it != running_intervals_.end()) {
    running_intervals_.erase(it);
  }
}

void OverlapScheduler::reset() { running_intervals_.clear(); }

// Layout: [running intervals (3 words each: job, lo, hi)], already in the
// sorted order the vector maintains.
void OverlapScheduler::save_state(std::vector<std::uint64_t>& out) const {
  out.clear();
  for (const RunningInterval& r : running_intervals_) {
    out.push_back(r.job);
    out.push_back(snapshot::pack_time(r.iv.lo));
    out.push_back(snapshot::pack_time(r.iv.hi));
  }
}

void OverlapScheduler::load_state(const std::uint64_t* data, std::size_t n) {
  FJS_REQUIRE(n % 3 == 0, "overlap: malformed snapshot");
  running_intervals_.clear();
  for (std::size_t i = 0; i < n; i += 3) {
    running_intervals_.push_back(
        RunningInterval{static_cast<JobId>(data[i]),
                        Interval(snapshot::unpack_time(data[i + 1]),
                                 snapshot::unpack_time(data[i + 2]))});
  }
}

}  // namespace fjs
