// Eager baseline: starts every job immediately at its arrival.
//
// §3.2 notes this scheduler has an unbounded competitive ratio even for a
// fixed μ — it never exploits laxity to batch jobs. Included as the natural
// "no scheduling" comparator.
#pragma once

#include "sim/scheduler.h"

namespace fjs {

class EagerScheduler final : public OnlineScheduler {
 public:
  std::string name() const override { return "eager"; }

  void on_arrival(SchedulerContext& ctx, JobId id) override;
  void on_deadline(SchedulerContext& ctx, JobId id) override;
};

}  // namespace fjs
