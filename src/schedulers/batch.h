// The Batch scheduler (§3.2, Theorem 3.4).
//
// Works in iterations: wait until some pending job hits its starting
// deadline (the iteration's "flag job"), then start ALL pending jobs at
// that instant, and go back to waiting. Non-clairvoyant;
// competitive ratio between 2μ and 2μ+1.
#pragma once

#include "sim/scheduler.h"

namespace fjs {

class BatchScheduler final : public OnlineScheduler {
 public:
  std::string name() const override { return "batch"; }

  void on_arrival(SchedulerContext& ctx, JobId id) override;
  void on_deadline(SchedulerContext& ctx, JobId id) override;
  void reset() override { flag_history_.clear(); }
  void save_state(std::vector<std::uint64_t>& out) const override;
  void load_state(const std::uint64_t* data, std::size_t n) override;

  /// Flag job of each iteration, in order — the analysis objects of
  /// Theorem 3.4's proof. Valid after a run.
  const std::vector<JobId>& flag_history() const { return flag_history_; }

 private:
  std::vector<JobId> flag_history_;
};

}  // namespace fjs
