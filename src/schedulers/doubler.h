// Doubler-style scheduler — a RECONSTRUCTION of the comparator mentioned in
// the paper's concluding remarks (Koehler & Khuller, WADS'17, 5-competitive
// for the unbounded-capacity case, which equals Clairvoyant FJS).
//
// The SPAA'17 paper cites Doubler without pseudocode; this class implements
// the natural "budget-doubling" reading: when a pending job hits its
// starting deadline it starts (flag) and opens a window of twice its length;
// pending jobs no longer than twice the flag start with it, and arrivals
// that can COMPLETE inside the window start immediately. Treat measured
// numbers as "Doubler-style heuristic", not the published algorithm.
#pragma once

#include <vector>

#include "sim/scheduler.h"

namespace fjs {

class DoublerScheduler final : public OnlineScheduler {
 public:
  std::string name() const override { return "doubler*"; }
  bool requires_clairvoyance() const override { return true; }

  void on_arrival(SchedulerContext& ctx, JobId id) override;
  void on_deadline(SchedulerContext& ctx, JobId id) override;
  void reset() override;
  void save_state(std::vector<std::uint64_t>& out) const override;
  void load_state(const std::uint64_t* data, std::size_t n) override;

 private:
  struct Window {
    JobId flag;
    Time close;  ///< start(flag) + 2·p(flag)
  };

  /// Drops windows that have closed.
  void expire(Time now);

  std::vector<Window> windows_;
};

}  // namespace fjs
