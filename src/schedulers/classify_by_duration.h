// Classify-by-Duration Batch+ (§4.2, Theorem 4.4).
//
// Clairvoyant. Jobs are classified by processing length into geometric
// categories (b·α^(i-1), b·α^i]; each category runs its own independent
// Batch+ scheduler. With α = 1 + √(2/3) the competitive ratio is
// 3α + 4 + 2/(α−1) = 7 + 2√6 ≈ 11.9.
#pragma once

#include <utility>
#include <vector>

#include "sim/scheduler.h"

namespace fjs {

class CdbScheduler final : public OnlineScheduler {
 public:
  /// Optimal α from Theorem 4.4.
  static double optimal_alpha();

  /// `alpha` > 1 is the per-category max/min length ratio; `base` > 0 is
  /// the category boundary anchor b (category i covers (b·α^(i-1), b·α^i]).
  explicit CdbScheduler(double alpha = optimal_alpha(),
                        Time base = Time(Time::kTicksPerUnit));

  std::string name() const override;
  bool requires_clairvoyance() const override { return true; }

  void on_arrival(SchedulerContext& ctx, JobId id) override;
  void on_deadline(SchedulerContext& ctx, JobId id) override;
  void on_completion(SchedulerContext& ctx, JobId id) override;
  void reset() override;
  void save_state(std::vector<std::uint64_t>& out) const override;
  void load_state(const std::uint64_t* data, std::size_t n) override;

  double alpha() const { return alpha_; }

  /// Category index of a processing length: the integer i such that
  /// p ∈ (b·α^(i-1), b·α^i].
  long category_of(Time length) const;

  struct FlagRecord {
    long category;
    JobId id;
  };

  /// Flag jobs of every per-category Batch+ iteration, in designation
  /// order — the analysis objects of Lemma 4.2. Valid after a run.
  const std::vector<FlagRecord>& flag_history() const {
    return flag_history_;
  }

 private:
  /// True iff `cat` has an active flag; O(log n) over the flat vector.
  bool category_active(long cat) const;

  double alpha_;
  Time base_;
  /// Per-category active flag job, as a flat vector sorted by category
  /// (absent = the category is buffering). Few categories are ever live
  /// at once, so a sorted vector beats two node-based maps — completions
  /// find their entry by a linear id scan, which also removes the old
  /// reverse map entirely.
  std::vector<std::pair<long, JobId>> active_flags_;
  std::vector<FlagRecord> flag_history_;
};

}  // namespace fjs
