// Randomized-start baseline: each job starts at a uniformly random point
// of its start window.
//
// The paper's lower bounds (Thms 3.3 and 4.1) are stated for deterministic
// schedulers; this seeded baseline shows empirically that naive
// randomization does not buy a better ratio — it interpolates between
// Eager and Lazy and inherits both failure modes.
#pragma once

#include <cstdint>

#include "sim/scheduler.h"
#include "support/rng.h"

namespace fjs {

class RandomizedScheduler final : public OnlineScheduler {
 public:
  explicit RandomizedScheduler(std::uint64_t seed = 0xF1A6'0001ULL);

  std::string name() const override { return "random"; }

  void on_arrival(SchedulerContext& ctx, JobId id) override;
  void on_deadline(SchedulerContext& ctx, JobId id) override;
  void on_timer(SchedulerContext& ctx, std::uint64_t tag) override;
  void reset() override;
  void save_state(std::vector<std::uint64_t>& out) const override;
  void load_state(const std::uint64_t* data, std::size_t n) override;

 private:
  std::uint64_t seed_;
  Rng rng_;
};

}  // namespace fjs
