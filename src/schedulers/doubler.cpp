#include "schedulers/doubler.h"

#include <algorithm>

namespace fjs {

void DoublerScheduler::expire(Time now) {
  windows_.erase(std::remove_if(windows_.begin(), windows_.end(),
                                [now](const Window& w) {
                                  return w.close <= now;
                                }),
                 windows_.end());
}

void DoublerScheduler::on_arrival(SchedulerContext& ctx, JobId id) {
  expire(ctx.now());
  const Time completion = ctx.now() + ctx.length_of(id);
  for (const Window& w : windows_) {
    if (completion <= w.close) {
      ctx.start_job(id);
      return;
    }
  }
}

void DoublerScheduler::on_deadline(SchedulerContext& ctx, JobId id) {
  const Time now = ctx.now();
  expire(now);
  // Ties at the same starting deadline: longest job becomes the flag, like
  // Profit, so the window is as wide as possible.
  JobId flag = id;
  Time flag_p = ctx.length_of(id);
  for (const JobId job : ctx.pending()) {
    if (ctx.view(job).deadline == now && ctx.length_of(job) > flag_p) {
      flag = job;
      flag_p = ctx.length_of(job);
    }
  }
  ctx.start_job(flag);
  const Time close = now + flag_p * 2;
  windows_.push_back(Window{.flag = flag, .close = close});
  const std::vector<JobId> pending = ctx.pending();
  for (const JobId job : pending) {
    if (ctx.length_of(job) <= flag_p * 2) {
      ctx.start_job(job);
    }
  }
}

void DoublerScheduler::reset() { windows_.clear(); }

}  // namespace fjs
