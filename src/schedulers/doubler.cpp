#include "schedulers/doubler.h"

#include <algorithm>

namespace fjs {

void DoublerScheduler::expire(Time now) {
  windows_.erase(std::remove_if(windows_.begin(), windows_.end(),
                                [now](const Window& w) {
                                  return w.close <= now;
                                }),
                 windows_.end());
}

void DoublerScheduler::on_arrival(SchedulerContext& ctx, JobId id) {
  expire(ctx.now());
  // Saturating: a completion past Time::max() fits in no window, which is
  // exactly what the clamped value (never <= a window close) expresses.
  const Time completion = ctx.now().saturating_add(ctx.length_of(id));
  for (const Window& w : windows_) {
    if (completion <= w.close && completion < Time::max()) {
      ctx.start_job(id);
      return;
    }
  }
}

void DoublerScheduler::on_deadline(SchedulerContext& ctx, JobId id) {
  const Time now = ctx.now();
  expire(now);
  // Ties at the same starting deadline: longest job becomes the flag, like
  // Profit, so the window is as wide as possible.
  JobId flag = id;
  Time flag_p = ctx.length_of(id);
  for (const JobId job : ctx.pending()) {
    if (ctx.view(job).deadline == now && ctx.length_of(job) > flag_p) {
      flag = job;
      flag_p = ctx.length_of(job);
    }
  }
  ctx.start_job(flag);
  // Saturating arithmetic: 2·p(flag) can exceed Time::max() for adversarial
  // lengths, and wrapping negative here once made the window close before it
  // opened — leaving same-deadline jobs unstarted past their starting
  // deadline (found by fuzzing). A saturated close just means "the window
  // never closes", which is the right reading.
  const Time budget = flag_p.saturating_mul(2);
  const Time close = now.saturating_add(budget);
  windows_.push_back(Window{.flag = flag, .close = close});
  const std::vector<JobId> pending = ctx.pending();
  for (const JobId job : pending) {
    if (ctx.length_of(job) <= budget) {
      ctx.start_job(job);
    }
  }
}

void DoublerScheduler::reset() { windows_.clear(); }

}  // namespace fjs
