#include "schedulers/doubler.h"

#include <algorithm>

namespace fjs {

void DoublerScheduler::expire(Time now) {
  windows_.erase(std::remove_if(windows_.begin(), windows_.end(),
                                [now](const Window& w) {
                                  return w.close <= now;
                                }),
                 windows_.end());
}

void DoublerScheduler::on_arrival(SchedulerContext& ctx, JobId id) {
  expire(ctx.now());
  // Saturating: a completion past Time::max() fits in no window, which is
  // exactly what the clamped value (never <= a window close) expresses.
  const Time completion = ctx.now().saturating_add(ctx.length_of(id));
  for (const Window& w : windows_) {
    if (completion <= w.close && completion < Time::max()) {
      ctx.start_job(id);
      return;
    }
  }
}

void DoublerScheduler::on_deadline(SchedulerContext& ctx, JobId id) {
  const Time now = ctx.now();
  expire(now);
  // Ties at the same starting deadline: longest job becomes the flag, like
  // Profit, so the window is as wide as possible.
  JobId flag = id;
  Time flag_p = ctx.length_of(id);
  for (const JobId job : ctx.pending()) {
    if (ctx.view(job).deadline == now && ctx.length_of(job) > flag_p) {
      flag = job;
      flag_p = ctx.length_of(job);
    }
  }
  ctx.start_job(flag);
  // Saturating arithmetic: 2·p(flag) can exceed Time::max() for adversarial
  // lengths, and wrapping negative here once made the window close before it
  // opened — leaving same-deadline jobs unstarted past their starting
  // deadline (found by fuzzing). A saturated close just means "the window
  // never closes", which is the right reading.
  const Time budget = flag_p.saturating_mul(2);
  const Time close = now.saturating_add(budget);
  windows_.push_back(Window{.flag = flag, .close = close});
  const std::vector<JobId> pending = ctx.pending();
  for (const JobId job : pending) {
    if (ctx.length_of(job) <= budget) {
      ctx.start_job(job);
    }
  }
}

void DoublerScheduler::reset() { windows_.clear(); }

// Layout: [windows (2 words each)]. Expired windows are dropped lazily by
// expire(), so they are real state until then and are captured as-is.
void DoublerScheduler::save_state(std::vector<std::uint64_t>& out) const {
  out.clear();
  for (const Window& w : windows_) {
    out.push_back(w.flag);
    out.push_back(snapshot::pack_time(w.close));
  }
}

void DoublerScheduler::load_state(const std::uint64_t* data, std::size_t n) {
  FJS_REQUIRE(n % 2 == 0, "doubler: malformed snapshot");
  windows_.clear();
  for (std::size_t i = 0; i < n; i += 2) {
    windows_.push_back(Window{.flag = static_cast<JobId>(data[i]),
                              .close = snapshot::unpack_time(data[i + 1])});
  }
}

}  // namespace fjs
