// Greedy-overlap heuristic (extension, not from the paper).
//
// Clairvoyant. Start a pending job as soon as at least a θ-fraction of its
// would-be active interval [now, now+p) is covered by the intervals of
// currently running jobs (whose completion times are known from their
// lengths); otherwise wait — the starting deadline is the backstop. After
// every start the remaining pending jobs are re-examined, so overlap
// opportunities cascade.
//
// This is the "what a practitioner would try first" comparator: it chases
// the same objective as Profit (only spend span that is mostly shared)
// without Profit's flag-job machinery, and the benches show where it loses
// the worst-case guarantee.
#pragma once

#include <map>

#include "sim/scheduler.h"

namespace fjs {

class OverlapScheduler final : public OnlineScheduler {
 public:
  /// `theta` in (0, 1]: required covered fraction of a job's interval.
  explicit OverlapScheduler(double theta = 0.5);

  std::string name() const override;
  bool requires_clairvoyance() const override { return true; }

  void on_arrival(SchedulerContext& ctx, JobId id) override;
  void on_deadline(SchedulerContext& ctx, JobId id) override;
  void on_completion(SchedulerContext& ctx, JobId id) override;
  void reset() override;

  double theta() const { return theta_; }

 private:
  bool overlap_sufficient(SchedulerContext& ctx, JobId id) const;
  /// Starts `id` and then any pending jobs unlocked by new coverage.
  void start_and_cascade(SchedulerContext& ctx, JobId id);

  double theta_;
  /// Completion time of every currently running job (we started them all,
  /// so we know their start times; lengths come from clairvoyance).
  std::map<JobId, Interval> running_intervals_;
};

}  // namespace fjs
