// Greedy-overlap heuristic (extension, not from the paper).
//
// Clairvoyant. Start a pending job as soon as at least a θ-fraction of its
// would-be active interval [now, now+p) is covered by the intervals of
// currently running jobs (whose completion times are known from their
// lengths); otherwise wait — the starting deadline is the backstop. After
// every start the remaining pending jobs are re-examined, so overlap
// opportunities cascade.
//
// This is the "what a practitioner would try first" comparator: it chases
// the same objective as Profit (only spend span that is mostly shared)
// without Profit's flag-job machinery, and the benches show where it loses
// the worst-case guarantee.
#pragma once

#include <vector>

#include "sim/scheduler.h"

namespace fjs {

class OverlapScheduler final : public OnlineScheduler {
 public:
  /// `theta` in (0, 1]: required covered fraction of a job's interval.
  explicit OverlapScheduler(double theta = 0.5);

  std::string name() const override;
  bool requires_clairvoyance() const override { return true; }

  void on_arrival(SchedulerContext& ctx, JobId id) override;
  void on_deadline(SchedulerContext& ctx, JobId id) override;
  void on_completion(SchedulerContext& ctx, JobId id) override;
  void reset() override;
  void save_state(std::vector<std::uint64_t>& out) const override;
  void load_state(const std::uint64_t* data, std::size_t n) override;

  double theta() const { return theta_; }

 private:
  /// A running job's occupied interval [start, start + p).
  struct RunningInterval {
    JobId job;
    Interval iv;
  };

  bool overlap_sufficient(SchedulerContext& ctx, JobId id) const;
  /// Starts `id` and then any pending jobs unlocked by new coverage.
  void start_and_cascade(SchedulerContext& ctx, JobId id);
  /// Sorted insert into running_intervals_ (by (iv.lo, job)).
  void insert_running(JobId id, const Interval& iv);

  double theta_;
  /// Interval of every currently running job (we started them all, so we
  /// know their start times; lengths come from clairvoyance). Kept as a
  /// flat vector sorted by (iv.lo, job): the set is small and scanned on
  /// every arrival, so a sorted vector beats a node-based map on both the
  /// coverage query (one pass, no IntervalSet materialization) and
  /// snapshot cost.
  std::vector<RunningInterval> running_intervals_;
};

}  // namespace fjs
