#include "schedulers/registry.h"

#include "schedulers/batch.h"
#include "schedulers/batch_plus.h"
#include "schedulers/classify_by_duration.h"
#include "schedulers/doubler.h"
#include "schedulers/eager.h"
#include "schedulers/lazy.h"
#include "schedulers/overlap.h"
#include "schedulers/profit.h"
#include "schedulers/randomized.h"
#include "support/assert.h"

namespace fjs {

const std::vector<SchedulerSpec>& scheduler_registry() {
  static const std::vector<SchedulerSpec> registry = {
      {"eager", false, [] { return std::make_unique<EagerScheduler>(); }},
      {"lazy", false, [] { return std::make_unique<LazyScheduler>(); }},
      {"random", false,
       [] { return std::make_unique<RandomizedScheduler>(); }},
      {"batch", false, [] { return std::make_unique<BatchScheduler>(); }},
      {"batch+", false, [] { return std::make_unique<BatchPlusScheduler>(); }},
      {"cdb", true, [] { return std::make_unique<CdbScheduler>(); }},
      {"profit", true, [] { return std::make_unique<ProfitScheduler>(); }},
      {"doubler*", true, [] { return std::make_unique<DoublerScheduler>(); }},
      {"overlap", true, [] { return std::make_unique<OverlapScheduler>(); }},
  };
  return registry;
}

std::vector<SchedulerSpec> schedulers_for_model(bool clairvoyant) {
  std::vector<SchedulerSpec> out;
  for (const auto& spec : scheduler_registry()) {
    if (clairvoyant || !spec.clairvoyant) {
      out.push_back(spec);
    }
  }
  return out;
}

namespace {

double parse_param(const std::string& key, const std::string& params,
                   const std::string& expected_name) {
  const auto eq = params.find('=');
  FJS_REQUIRE(eq != std::string::npos,
              "scheduler key '" + key + "': expected <param>=<value>");
  const std::string name = params.substr(0, eq);
  FJS_REQUIRE(name == expected_name,
              "scheduler key '" + key + "': unknown parameter '" + name +
                  "' (expected '" + expected_name + "')");
  try {
    return std::stod(params.substr(eq + 1));
  } catch (const std::exception&) {
    FJS_REQUIRE(false, "scheduler key '" + key + "': bad value");
  }
  return 0.0;  // unreachable
}

}  // namespace

std::unique_ptr<OnlineScheduler> make_scheduler(const std::string& key) {
  const auto colon = key.find(':');
  const std::string base = key.substr(0, colon);
  const std::string params =
      colon == std::string::npos ? "" : key.substr(colon + 1);

  if (!params.empty()) {
    if (base == "profit") {
      return std::make_unique<ProfitScheduler>(parse_param(key, params, "k"));
    }
    if (base == "cdb") {
      return std::make_unique<CdbScheduler>(parse_param(key, params, "alpha"));
    }
    if (base == "overlap") {
      return std::make_unique<OverlapScheduler>(
          parse_param(key, params, "theta"));
    }
    if (base == "random") {
      return std::make_unique<RandomizedScheduler>(static_cast<std::uint64_t>(
          parse_param(key, params, "seed")));
    }
    FJS_REQUIRE(false, "scheduler '" + base + "' takes no parameters");
  }
  for (const auto& spec : scheduler_registry()) {
    if (spec.key == base) {
      return spec.make();
    }
  }
  FJS_REQUIRE(false, "unknown scheduler key: " + key);
  return nullptr;  // unreachable
}

std::vector<std::string> known_scheduler_keys() {
  std::vector<std::string> keys;
  for (const auto& spec : scheduler_registry()) {
    keys.push_back(spec.key);
  }
  return keys;
}

}  // namespace fjs
