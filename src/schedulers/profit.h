// The Profit scheduler (§4.3, Theorem 4.11).
//
// Clairvoyant. Works in (possibly overlapping) iterations. When a pending
// job hits its starting deadline it becomes the iteration's flag job
// (ties broken by longest processing length) and starts. A job J is
// "profitable" to flag f — guaranteeing ≥ 1/k of J's active interval
// overlaps f's — iff
//   * J was pending at d(f) and p(J) <= k·p(f)          (started at d(f)), or
//   * J arrives during f's run and p(J) <= k·(end(f) − a(J))
//                                                       (started at a(J)).
// With k = 1 + √2/2 the competitive ratio is 2k + 2 + 1/(k−1) = 4 + 2√2.
#pragma once

#include <vector>

#include "sim/scheduler.h"

namespace fjs {

class ProfitScheduler final : public OnlineScheduler {
 public:
  /// Optimal k from Theorem 4.11.
  static double optimal_k();

  explicit ProfitScheduler(double k = optimal_k());

  std::string name() const override;
  bool requires_clairvoyance() const override { return true; }

  void on_arrival(SchedulerContext& ctx, JobId id) override;
  void on_deadline(SchedulerContext& ctx, JobId id) override;
  void on_completion(SchedulerContext& ctx, JobId id) override;
  void reset() override;
  void save_state(std::vector<std::uint64_t>& out) const override;
  void load_state(const std::uint64_t* data, std::size_t n) override;

  double k() const { return k_; }

  /// Flags whose active intervals contain the current time.
  std::size_t active_flag_count() const { return flags_.size(); }

  struct FlagInfo {
    JobId id;
    Time length;
    Time end;  ///< d(f) + p(f): completion of the flag.
  };

  /// All flag jobs in designation (= starting-deadline) order — the
  /// analysis objects of Lemmas 4.5–4.10. Valid after a run.
  const std::vector<FlagInfo>& flag_history() const { return flag_history_; }

 private:
  double k_;
  std::vector<FlagInfo> flags_;
  std::vector<FlagInfo> flag_history_;
  std::vector<JobId> pending_scratch_;  ///< reusable pending-set snapshot
};

}  // namespace fjs
