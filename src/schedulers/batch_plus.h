// The Batch+ scheduler (§3.2, Theorem 3.5).
//
// Like Batch, but more aggressive: during the flag job's active interval
// every newly arriving job is started immediately. A new iteration (and the
// buffering of arrivals) begins only when the flag job completes.
// Non-clairvoyant; tight competitive ratio μ+1.
#pragma once

#include <optional>

#include "sim/scheduler.h"

namespace fjs {

class BatchPlusScheduler final : public OnlineScheduler {
 public:
  std::string name() const override { return "batch+"; }

  void on_arrival(SchedulerContext& ctx, JobId id) override;
  void on_deadline(SchedulerContext& ctx, JobId id) override;
  void on_completion(SchedulerContext& ctx, JobId id) override;
  void reset() override;
  void save_state(std::vector<std::uint64_t>& out) const override;
  void load_state(const std::uint64_t* data, std::size_t n) override;

  /// The currently running flag job, if an iteration is active.
  std::optional<JobId> active_flag() const { return flag_; }

  /// Flag job of each iteration, in order — the analysis objects of
  /// Theorem 3.5's proof. Valid after a run.
  const std::vector<JobId>& flag_history() const { return flag_history_; }

 private:
  std::optional<JobId> flag_;
  std::vector<JobId> flag_history_;
  std::vector<JobId> batch_scratch_;  ///< reusable pending-set snapshot
};

}  // namespace fjs
