#include "schedulers/batch.h"

#include <vector>

namespace fjs {

void BatchScheduler::on_arrival(SchedulerContext& /*ctx*/, JobId /*id*/) {
  // Buffer; jobs start only when an iteration fires.
}

void BatchScheduler::on_deadline(SchedulerContext& ctx, JobId id) {
  // The deadline-hitting job is the flag job; start the whole batch
  // (including the flag, which is itself pending).
  flag_history_.push_back(id);
  const std::vector<JobId> batch = ctx.pending();
  for (const JobId job : batch) {
    ctx.start_job(job);
  }
}

void BatchScheduler::save_state(std::vector<std::uint64_t>& out) const {
  out.clear();
  for (const JobId id : flag_history_) {
    out.push_back(id);
  }
}

void BatchScheduler::load_state(const std::uint64_t* data, std::size_t n) {
  flag_history_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    flag_history_.push_back(static_cast<JobId>(data[i]));
  }
}

}  // namespace fjs
