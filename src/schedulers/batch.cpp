#include "schedulers/batch.h"

#include <vector>

namespace fjs {

void BatchScheduler::on_arrival(SchedulerContext& /*ctx*/, JobId /*id*/) {
  // Buffer; jobs start only when an iteration fires.
}

void BatchScheduler::on_deadline(SchedulerContext& ctx, JobId id) {
  // The deadline-hitting job is the flag job; start the whole batch
  // (including the flag, which is itself pending).
  flag_history_.push_back(id);
  const std::vector<JobId> batch = ctx.pending();
  for (const JobId job : batch) {
    ctx.start_job(job);
  }
}

}  // namespace fjs
