// Scheduler registry: construct schedulers by name and enumerate the
// standard line-up used by benches and examples.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.h"

namespace fjs {

struct SchedulerSpec {
  /// Registry key (also the default display name), e.g. "batch+".
  std::string key;
  /// Whether the scheduler needs the clairvoyant model.
  bool clairvoyant = false;
  /// Factory producing a fresh instance with default parameters.
  std::function<std::unique_ptr<OnlineScheduler>()> make;
};

/// All registered schedulers, in presentation order:
/// eager, lazy, random, batch, batch+, cdb, profit, doubler*, overlap.
const std::vector<SchedulerSpec>& scheduler_registry();

/// Specs compatible with the given model (non-clairvoyant schedulers are
/// also valid clairvoyant schedulers, so clairvoyant=true returns all).
std::vector<SchedulerSpec> schedulers_for_model(bool clairvoyant);

/// Creates a scheduler by registry key, optionally with parameters:
///   "batch+"            default construction
///   "profit:k=2.5"      Profit with k = 2.5
///   "cdb:alpha=2"       CDB with α = 2
///   "overlap:theta=0.7" Overlap with θ = 0.7
///   "random:seed=9"     Randomized baseline with the given seed
/// Throws AssertionError for unknown keys/parameters;
/// `known_scheduler_keys` lists the valid base keys.
std::unique_ptr<OnlineScheduler> make_scheduler(const std::string& key);

std::vector<std::string> known_scheduler_keys();

}  // namespace fjs
