#include "schedulers/randomized.h"

#include "support/assert.h"

namespace fjs {

RandomizedScheduler::RandomizedScheduler(std::uint64_t seed)
    : seed_(seed), rng_(seed) {}

void RandomizedScheduler::on_arrival(SchedulerContext& ctx, JobId id) {
  const JobView view = ctx.view(id);
  const Time laxity = view.laxity();
  if (laxity == Time::zero()) {
    ctx.start_job(id);
    return;
  }
  // Inclusive draw over every tick of [a(J), d(J)]. offset <= laxity, so
  // arrival + offset <= d(J) for any tick granularity — the sampled start
  // can never land past the starting deadline.
  const Time offset(rng_.uniform_int(0, laxity.ticks()));
  if (offset == Time::zero()) {
    ctx.start_job(id);
  } else {
    const Time when = ctx.now() + offset;
    FJS_CHECK(when <= view.deadline,
              "random: sampled start past the starting deadline");
    ctx.set_timer(when, id);
  }
}

void RandomizedScheduler::on_deadline(SchedulerContext& ctx, JobId id) {
  // Fires before a timer set at exactly d(J) (deadline events outrank
  // timers at the same tick), so the offset == laxity draw is realized
  // here and the timer below must tolerate the job already running.
  ctx.start_job(id);
}

void RandomizedScheduler::on_timer(SchedulerContext& ctx, std::uint64_t tag) {
  const auto id = static_cast<JobId>(tag);
  // The job may have been force-started by on_deadline at this same event
  // time (offset == laxity); O(1) state check instead of scanning pending().
  if (ctx.is_pending(id)) {
    ctx.start_job(id);
  }
}

void RandomizedScheduler::reset() { rng_ = Rng(seed_); }

// Layout: the 4-word xoshiro256** position. The seed is immutable config;
// capturing the stream POSITION is what makes a resumed run draw the same
// offsets the uninterrupted run would.
void RandomizedScheduler::save_state(std::vector<std::uint64_t>& out) const {
  out.clear();
  const auto s = rng_.state();
  out.insert(out.end(), s.begin(), s.end());
}

void RandomizedScheduler::load_state(const std::uint64_t* data,
                                     std::size_t n) {
  FJS_REQUIRE(n == 4, "random: malformed snapshot");
  rng_.set_state({data[0], data[1], data[2], data[3]});
}

}  // namespace fjs
