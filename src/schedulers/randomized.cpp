#include "schedulers/randomized.h"

#include <algorithm>

namespace fjs {

RandomizedScheduler::RandomizedScheduler(std::uint64_t seed)
    : seed_(seed), rng_(seed) {}

void RandomizedScheduler::on_arrival(SchedulerContext& ctx, JobId id) {
  const JobView view = ctx.view(id);
  const Time laxity = view.laxity();
  if (laxity == Time::zero()) {
    ctx.start_job(id);
    return;
  }
  const Time offset(rng_.uniform_int(0, laxity.ticks()));
  if (offset == Time::zero()) {
    ctx.start_job(id);
  } else {
    ctx.set_timer(ctx.now() + offset, id);
  }
}

void RandomizedScheduler::on_deadline(SchedulerContext& ctx, JobId id) {
  ctx.start_job(id);
}

void RandomizedScheduler::on_timer(SchedulerContext& ctx, std::uint64_t tag) {
  const auto id = static_cast<JobId>(tag);
  const auto& pending = ctx.pending();
  if (std::find(pending.begin(), pending.end(), id) != pending.end()) {
    ctx.start_job(id);
  }
}

void RandomizedScheduler::reset() { rng_ = Rng(seed_); }

}  // namespace fjs
