#include "schedulers/classify_by_duration.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "support/assert.h"
#include "support/string_util.h"

namespace fjs {

double CdbScheduler::optimal_alpha() { return 1.0 + std::sqrt(2.0 / 3.0); }

CdbScheduler::CdbScheduler(double alpha, Time base)
    : alpha_(alpha), base_(base) {
  FJS_REQUIRE(alpha_ > 1.0, "CDB: alpha must be > 1");
  FJS_REQUIRE(base_ > Time::zero(), "CDB: base must be positive");
}

std::string CdbScheduler::name() const {
  std::ostringstream os;
  os << "cdb(alpha=" << format_double(alpha_, 4) << ')';
  return os.str();
}

long CdbScheduler::category_of(Time length) const {
  FJS_REQUIRE(length > Time::zero(), "CDB: non-positive length");
  // Smallest integer i with p <= b * alpha^i. Computed in log space with a
  // tolerance so that p exactly on a boundary lands in the lower category
  // (the paper's intervals are half-open at the bottom, closed at the top).
  const double ratio = static_cast<double>(length.ticks()) /
                       static_cast<double>(base_.ticks());
  const double exact = std::log(ratio) / std::log(alpha_);
  const double kBoundaryTolerance = 1e-9;
  return static_cast<long>(std::ceil(exact - kBoundaryTolerance));
}

bool CdbScheduler::category_active(long cat) const {
  const auto it = std::lower_bound(
      active_flags_.begin(), active_flags_.end(), cat,
      [](const std::pair<long, JobId>& e, long c) { return e.first < c; });
  return it != active_flags_.end() && it->first == cat;
}

void CdbScheduler::on_arrival(SchedulerContext& ctx, JobId id) {
  const long cat = category_of(ctx.length_of(id));
  if (category_active(cat)) {
    // The category's flag is running: Batch+ starts arrivals immediately.
    ctx.start_job(id);
  }
  // Otherwise buffer within the category.
}

void CdbScheduler::on_deadline(SchedulerContext& ctx, JobId id) {
  const long cat = category_of(ctx.length_of(id));
  FJS_CHECK(!category_active(cat),
            "cdb: deadline inside the category's active iteration");
  const auto pos = std::lower_bound(
      active_flags_.begin(), active_flags_.end(), cat,
      [](const std::pair<long, JobId>& e, long c) { return e.first < c; });
  active_flags_.insert(pos, {cat, id});
  flag_history_.push_back(FlagRecord{cat, id});
  // Start all pending jobs OF THIS CATEGORY (the flag is among them).
  const std::vector<JobId> pending = ctx.pending();
  for (const JobId job : pending) {
    if (category_of(ctx.length_of(job)) == cat) {
      ctx.start_job(job);
    }
  }
}

void CdbScheduler::on_completion(SchedulerContext& /*ctx*/, JobId id) {
  const auto it = std::find_if(
      active_flags_.begin(), active_flags_.end(),
      [id](const std::pair<long, JobId>& e) { return e.second == id; });
  if (it != active_flags_.end()) {
    active_flags_.erase(it);
  }
}

void CdbScheduler::reset() {
  active_flags_.clear();
  flag_history_.clear();
}

// Layout: [n_active, active flags (2 words each), flag_history (2 words
// each)]. Categories round-trip through two's complement like Times.
void CdbScheduler::save_state(std::vector<std::uint64_t>& out) const {
  out.clear();
  out.push_back(active_flags_.size());
  for (const auto& [cat, id] : active_flags_) {
    out.push_back(static_cast<std::uint64_t>(static_cast<std::int64_t>(cat)));
    out.push_back(id);
  }
  for (const FlagRecord& f : flag_history_) {
    out.push_back(
        static_cast<std::uint64_t>(static_cast<std::int64_t>(f.category)));
    out.push_back(f.id);
  }
}

void CdbScheduler::load_state(const std::uint64_t* data, std::size_t n) {
  FJS_REQUIRE(n >= 1, "cdb: truncated snapshot");
  const std::size_t n_active = static_cast<std::size_t>(data[0]);
  FJS_REQUIRE(n >= 1 + 2 * n_active && (n - 1) % 2 == 0,
              "cdb: malformed snapshot");
  active_flags_.clear();
  flag_history_.clear();
  std::size_t i = 1;
  for (std::size_t f = 0; f < n_active; ++f, i += 2) {
    active_flags_.emplace_back(
        static_cast<long>(static_cast<std::int64_t>(data[i])),
        static_cast<JobId>(data[i + 1]));
  }
  for (; i < n; i += 2) {
    flag_history_.push_back(
        FlagRecord{static_cast<long>(static_cast<std::int64_t>(data[i])),
                   static_cast<JobId>(data[i + 1])});
  }
}

}  // namespace fjs
