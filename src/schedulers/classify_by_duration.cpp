#include "schedulers/classify_by_duration.h"

#include <cmath>
#include <sstream>
#include <vector>

#include "support/assert.h"
#include "support/string_util.h"

namespace fjs {

double CdbScheduler::optimal_alpha() { return 1.0 + std::sqrt(2.0 / 3.0); }

CdbScheduler::CdbScheduler(double alpha, Time base)
    : alpha_(alpha), base_(base) {
  FJS_REQUIRE(alpha_ > 1.0, "CDB: alpha must be > 1");
  FJS_REQUIRE(base_ > Time::zero(), "CDB: base must be positive");
}

std::string CdbScheduler::name() const {
  std::ostringstream os;
  os << "cdb(alpha=" << format_double(alpha_, 4) << ')';
  return os.str();
}

long CdbScheduler::category_of(Time length) const {
  FJS_REQUIRE(length > Time::zero(), "CDB: non-positive length");
  // Smallest integer i with p <= b * alpha^i. Computed in log space with a
  // tolerance so that p exactly on a boundary lands in the lower category
  // (the paper's intervals are half-open at the bottom, closed at the top).
  const double ratio = static_cast<double>(length.ticks()) /
                       static_cast<double>(base_.ticks());
  const double exact = std::log(ratio) / std::log(alpha_);
  const double kBoundaryTolerance = 1e-9;
  return static_cast<long>(std::ceil(exact - kBoundaryTolerance));
}

void CdbScheduler::on_arrival(SchedulerContext& ctx, JobId id) {
  const long cat = category_of(ctx.length_of(id));
  if (active_flags_.contains(cat)) {
    // The category's flag is running: Batch+ starts arrivals immediately.
    ctx.start_job(id);
  }
  // Otherwise buffer within the category.
}

void CdbScheduler::on_deadline(SchedulerContext& ctx, JobId id) {
  const long cat = category_of(ctx.length_of(id));
  FJS_CHECK(!active_flags_.contains(cat),
            "cdb: deadline inside the category's active iteration");
  active_flags_.emplace(cat, id);
  flag_category_.emplace(id, cat);
  flag_history_.push_back(FlagRecord{cat, id});
  // Start all pending jobs OF THIS CATEGORY (the flag is among them).
  const std::vector<JobId> pending = ctx.pending();
  for (const JobId job : pending) {
    if (category_of(ctx.length_of(job)) == cat) {
      ctx.start_job(job);
    }
  }
}

void CdbScheduler::on_completion(SchedulerContext& /*ctx*/, JobId id) {
  const auto it = flag_category_.find(id);
  if (it != flag_category_.end()) {
    active_flags_.erase(it->second);
    flag_category_.erase(it);
  }
}

void CdbScheduler::reset() {
  active_flags_.clear();
  flag_category_.clear();
  flag_history_.clear();
}

}  // namespace fjs
