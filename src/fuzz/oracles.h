// Cross-checking oracles for the differential fuzzing harness.
//
// Each oracle is an independent correctness claim over one instance, built
// from parts of the codebase that share as little code as possible:
//
//  * sched:<key>/<model> — the scheduler produces a complete, valid
//    schedule; its recorded trace passes the independent trace validator
//    (including the same-tick half-open ordering rules); the engine's
//    incremental SpanTracker span equals a from-scratch IntervalSet
//    recomputation; and a scheduler that does not require clairvoyance
//    makes the identical decisions whether or not lengths are revealed
//    (length-oracle consistency).
//  * ckpt:<key> — checkpointed prefix replay is invisible: resuming the
//    run from EVERY mid-run checkpoint (one per staged-arrival index, both
//    clairvoyance models) reproduces the uninterrupted run tick-for-tick —
//    identical span, identical starts, and a trace suffix equal to the
//    full run's entries past the capture point.
//  * ratio-bounds — the certified lower bounds, the descriptive instance
//    stats and one online span hold together on EVERY instance, including
//    near-Time::max() magnitudes the offline oracles skip: stats never
//    throw, and best_lower_bound <= the eager online span (>= OPT).
//  * offline-sandwich — certified lower bounds, the exact branch-and-bound,
//    the alignment heuristic and annealing must bracket correctly:
//    LB <= OPT <= heuristic/annealing, and online spans >= OPT.
//  * exact-vs-reference — on integral instances the branch-and-bound and
//    the legacy grid DFS agree exactly.
//  * view-vs-owned — always on, never size- or horizon-capped: an
//    InstanceView over an independently rebuilt JobTable scratch buffer
//    (the miner's mutate-evaluate path) is observably identical to the
//    owning Instance — derived stats, certified lower bounds, the
//    prepared replay timeline, and the view-based run_span spans.
//
// An oracle returns std::nullopt on success or a one-failure description;
// oracles are pure (no shared state), so the harness may evaluate them
// from many threads at once.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/instance.h"

namespace fjs {

/// Size/effort caps for the expensive oracles. The scheduler oracles run
/// on every instance; the offline oracles only where the solvers are
/// tractable and tick magnitudes are far from the overflow boundary.
struct OracleOptions {
  bool run_schedulers = true;
  bool run_offline = true;

  /// Checkpoint-replay oracles re-run the simulation once per
  /// staged-arrival index, so they cap the job count a bit lower than the
  /// plain scheduler oracles (the work is quadratic in it).
  std::size_t checkpoint_max_jobs = 16;

  std::size_t exact_max_jobs = 9;
  std::size_t exact_max_nodes = 400'000;
  std::size_t reference_max_jobs = 7;
  std::size_t reference_max_nodes = 4'000'000;
  /// Annealing proposals per instance (kept small: it is one of three
  /// independent upper bounds, not the star of the show).
  std::size_t annealing_iterations = 1'500;
  /// Offline oracles skip instances whose latest completion exceeds this
  /// many units — near-overflow magnitudes are for the engine/trace
  /// oracles, not for alignment arithmetic.
  std::int64_t offline_horizon_cap_units = 1'000'000;
};

/// A named correctness claim. `check` returns nullopt when the instance
/// satisfies it, else a human-readable failure description.
struct Oracle {
  std::string name;
  std::function<std::optional<std::string>(const Instance&)> check;
};

/// One oracle failure on one instance.
struct FuzzFailure {
  std::string oracle;
  std::string detail;
};

/// The standard battery described above, honoring `options`.
std::vector<Oracle> standard_oracles(const OracleOptions& options = {});

/// The per-scheduler oracle for one spec (named "sched:<key>"). Exposed so
/// tests can aim it at deliberately broken schedulers.
struct SchedulerSpec;
Oracle scheduler_oracle(const SchedulerSpec& spec);

/// The checkpoint-replay oracle for one spec (named "ckpt:<key>"). Exposed
/// so tests (and the planted-checkpoint-bug drill) can aim it directly.
Oracle checkpoint_replay_oracle(const SchedulerSpec& spec,
                                const OracleOptions& options = {});

/// Runs every oracle; returns all failures (empty = instance clean).
std::vector<FuzzFailure> run_oracles(const Instance& instance,
                                     const std::vector<Oracle>& oracles);

}  // namespace fjs
