// The fuzzing harness: generate → oracle-check → shrink → emit repro.
//
// Determinism contract: for a fixed (seed_start, count, generator config,
// oracle set), the set of failing seeds, the shrunk instances, and the
// repro files are identical regardless of thread count. Seeds are checked
// via parallel_map (index-keyed result slots), failures are collected in
// seed order, and shrinking runs serially — the thread pool only
// parallelizes the embarrassingly parallel per-seed oracle work.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/oracles.h"
#include "fuzz/shrink.h"

namespace fjs {

struct FuzzOptions {
  std::uint64_t seed_start = 1;
  std::uint64_t count = 1'000;
  FuzzGenConfig gen;
  OracleOptions oracle_options;
  /// Oracle battery; empty means standard_oracles(oracle_options).
  std::vector<Oracle> oracles;
  /// Worker threads for the seed sweep; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Stop after this many failing seeds (each seed counts once even if
  /// several oracles reject it — the first failure is the one reported).
  std::size_t max_failures = 8;
  bool shrink = true;
  ShrinkOptions shrink_options;
  /// When non-empty, one repro file per failure is written here as
  /// fuzz-<seed>.repro. The directory must already exist.
  std::string repro_dir;
};

/// One failing seed, fully triaged.
struct FuzzCase {
  std::uint64_t seed = 0;
  std::string oracle;
  std::string detail;
  Instance original;
  std::optional<Instance> shrunk;
  std::optional<ShrinkResult> shrink_stats;
  /// Path of the emitted repro file, if repro_dir was set.
  std::string repro_path;
};

struct FuzzReport {
  std::uint64_t instances_run = 0;
  std::vector<FuzzCase> failures;
  double elapsed_seconds = 0.0;

  bool passed() const { return failures.empty(); }
  double instances_per_minute() const;
  /// Multi-line human-readable account of the run.
  std::string summary() const;
};

/// Runs the sweep described by `options`.
FuzzReport run_fuzz(const FuzzOptions& options);

/// Replays one instance against the battery (standard if `oracles` empty);
/// returns all failures. Used by `fjs_fuzz --replay` and the tests.
std::vector<FuzzFailure> replay_instance(const Instance& instance,
                                         const FuzzOptions& options);

}  // namespace fjs
