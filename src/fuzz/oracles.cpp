#include "fuzz/oracles.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <sstream>
#include <utility>
#include <vector>

#include "analysis/instance_stats.h"
#include "core/interval_set.h"
#include "offline/annealing.h"
#include "offline/exact.h"
#include "offline/heuristic.h"
#include "offline/lower_bound.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "sim/length_oracle.h"
#include "sim/portfolio.h"
#include "sim/source.h"
#include "sim/trace_check.h"
#include "support/assert.h"
#include "support/simd.h"

namespace fjs {
namespace {

constexpr std::int64_t kUnit = Time::kTicksPerUnit;

/// From-scratch span recomputation: fresh IntervalSet over the realized
/// schedule, no SpanTracker involved.
Time recomputed_span(const Instance& instance, const Schedule& schedule) {
  IntervalSet set;
  for (JobId id = 0; id < instance.size(); ++id) {
    set.add(schedule.active_interval(instance, id));
  }
  return set.measure();
}

std::optional<std::string> check_simulation(const Instance& instance,
                                            const SchedulerSpec& spec,
                                            bool clairvoyant,
                                            SimulationResult* out) {
  const auto scheduler = spec.make();
  SimulationResult result;
  try {
    // Portfolio full mode (one entry per model so an exception stays
    // attributed to the model that threw): identical replay to the classic
    // simulate() path, but the prepared timeline, engine workspace and
    // scheduler context are amortized across the fuzzer's many calls.
    const PortfolioEntry entry{scheduler.get(), clairvoyant};
    PortfolioOptions portfolio_options;
    portfolio_options.record_trace = true;
    auto results = simulate_portfolio(
        instance, std::span<const PortfolioEntry>(&entry, 1),
        portfolio_options);
    result = std::move(results.front());
  } catch (const std::exception& e) {
    return std::string("simulation threw: ") + e.what();
  }
  if (!result.schedule.is_valid(result.instance)) {
    return std::string("schedule is invalid");
  }
  const auto violations =
      check_trace(result.instance, result.schedule, result.trace);
  if (!violations.empty()) {
    return "trace violations: " + violations_to_string(violations);
  }
  const Time recomputed = recomputed_span(result.instance, result.schedule);
  if (result.realized_span != recomputed) {
    return "incremental SpanTracker span " + result.realized_span.to_string() +
           " != from-scratch IntervalSet span " + recomputed.to_string();
  }
  if (out != nullptr) {
    *out = std::move(result);
  }
  return std::nullopt;
}

/// The engine is driven purely from preloaded/restored state in the
/// checkpoint oracle; the source must release nothing.
class NullSource final : public JobSource {
 public:
  SourceAction begin() override { return {}; }
};

}  // namespace

/// One oracle per registered scheduler. Clairvoyance-requiring schedulers
/// run in the clairvoyant model only; the rest run in BOTH models and must
/// behave identically (they cannot observe lengths, so revealing them must
/// not change a single start).
Oracle scheduler_oracle(const SchedulerSpec& spec) {
  return Oracle{
      "sched:" + spec.key,
      [spec](const Instance& instance) -> std::optional<std::string> {
        SimulationResult primary;
        if (auto issue = check_simulation(instance, spec,
                                          /*clairvoyant=*/spec.clairvoyant,
                                          &primary)) {
          return (spec.clairvoyant ? "[cv] " : "[nc] ") + *issue;
        }
        if (spec.clairvoyant) {
          return std::nullopt;
        }
        SimulationResult revealed;
        if (auto issue = check_simulation(instance, spec,
                                          /*clairvoyant=*/true, &revealed)) {
          return "[cv] " + *issue;
        }
        for (JobId id = 0; id < primary.instance.size(); ++id) {
          if (primary.schedule.start(id) != revealed.schedule.start(id)) {
            return "length-oracle inconsistency: job " + std::to_string(id) +
                   " starts at " + primary.schedule.start(id).to_string() +
                   " non-clairvoyantly but " +
                   revealed.schedule.start(id).to_string() +
                   " clairvoyantly";
          }
        }
        return std::nullopt;
      }};
}

/// Checkpointed prefix replay must be invisible: a run resumed from any
/// checkpoint is required to finish exactly like the uninterrupted run.
/// The oracle captures a checkpoint at EVERY staged-arrival index of the
/// full run, then resumes each one on a fresh engine + fresh scheduler
/// (exercising save_state/load_state across object identities, the way
/// the portfolio cache uses them) and compares span, every start, and the
/// trace suffix tick-for-tick.
Oracle checkpoint_replay_oracle(const SchedulerSpec& spec,
                                const OracleOptions& options) {
  return Oracle{
      "ckpt:" + spec.key,
      [spec, options](const Instance& instance) -> std::optional<std::string> {
        if (instance.empty() ||
            instance.size() > options.checkpoint_max_jobs) {
          return std::nullopt;
        }
        PreparedInstance prepared;
        try {
          prepared.prepare(instance);
        } catch (const std::exception& e) {
          return std::string("prepare threw: ") + e.what();
        }
        const std::size_t n = prepared.size();
        for (const bool clairvoyant : {true, false}) {
          if (!clairvoyant && spec.clairvoyant) {
            continue;
          }
          const char* model = clairvoyant ? "[cv] " : "[nc] ";
          const EngineOptions engine_options{.clairvoyant = clairvoyant,
                                             .record_trace = true,
                                             .reserve_jobs = n};
          // Full run, capturing a checkpoint before every staged arrival.
          const auto scheduler = spec.make();
          EngineCheckpointSeries series;
          series.plan(n, n);
          series.arm(0);
          NullSource source;
          NoDeferralOracle no_deferral;
          Engine full(source, no_deferral, *scheduler, engine_options);
          full.preload_static(prepared.records(), prepared.staged());
          full.capture_checkpoints(&series);
          SimulationResult whole;
          try {
            whole = full.run();
          } catch (const std::exception& e) {
            return model + std::string("full run threw: ") + e.what();
          }
          for (std::size_t i = 0; i < series.size(); ++i) {
            if (!series.slot(i).valid) {
              continue;
            }
            const EngineCheckpoint& ckpt = series.slot(i);
            const auto resumed_scheduler = spec.make();
            NullSource resumed_source;
            NoDeferralOracle resumed_no_deferral;
            Engine part(resumed_source, resumed_no_deferral,
                        *resumed_scheduler, engine_options);
            SimulationResult resumed;
            try {
              part.resume_static(ckpt, prepared.records(), prepared.staged());
              resumed = part.run();
            } catch (const std::exception& e) {
              return model + std::string("resume at arrival ") +
                     std::to_string(series.capture_index(i)) +
                     " threw: " + e.what();
            }
            const std::string where =
                model + std::string("resume at arrival ") +
                std::to_string(series.capture_index(i));
            if (resumed.realized_span != whole.realized_span) {
              return where + ": span " + resumed.realized_span.to_string() +
                     " != full-run span " + whole.realized_span.to_string();
            }
            for (JobId id = 0; id < whole.instance.size(); ++id) {
              if (resumed.schedule.start(id) != whole.schedule.start(id)) {
                return where + ": job " + std::to_string(id) + " starts at " +
                       resumed.schedule.start(id).to_string() +
                       " != full-run start " +
                       whole.schedule.start(id).to_string();
              }
            }
            // The resumed trace holds only post-checkpoint entries; it
            // must equal the full run's suffix past the capture point.
            const auto& full_entries = whole.trace.entries();
            const auto& part_entries = resumed.trace.entries();
            if (ckpt.trace_len + part_entries.size() != full_entries.size()) {
              return where + ": trace suffix has " +
                     std::to_string(part_entries.size()) +
                     " entries, full run has " +
                     std::to_string(full_entries.size() - ckpt.trace_len) +
                     " past the checkpoint";
            }
            for (std::size_t t = 0; t < part_entries.size(); ++t) {
              const TraceEntry& a = part_entries[t];
              const TraceEntry& b = full_entries[ckpt.trace_len + t];
              if (a.time != b.time || a.kind != b.kind || a.job != b.job ||
                  a.detail != b.detail) {
                return where + ": trace diverges at suffix entry " +
                       std::to_string(t) + ": " + a.to_string() + " != " +
                       b.to_string();
              }
            }
          }
        }
        return std::nullopt;
      }};
}

namespace {

bool offline_in_scope(const Instance& instance, const OracleOptions& options,
                      std::size_t max_jobs) {
  if (instance.empty() || instance.size() > max_jobs) {
    return false;
  }
  const Time cap = Time(options.offline_horizon_cap_units * kUnit);
  return instance.earliest_arrival() >= Time::zero() &&
         instance.latest_completion() <= cap;
}

Oracle offline_sandwich_oracle(const OracleOptions& options) {
  return Oracle{
      "offline-sandwich",
      [options](const Instance& instance) -> std::optional<std::string> {
        if (!offline_in_scope(instance, options, options.exact_max_jobs)) {
          return std::nullopt;
        }
        const Time lb = best_lower_bound(instance);

        const HeuristicResult heur = heuristic_optimal(instance);
        if (!heur.schedule.is_valid(instance)) {
          return std::string("heuristic produced an invalid schedule");
        }
        if (heur.span != heur.schedule.span(instance)) {
          return std::string("heuristic span disagrees with its schedule");
        }
        if (lb > heur.span) {
          return "lower bound " + lb.to_string() + " exceeds heuristic span " +
                 heur.span.to_string();
        }

        AnnealingOptions anneal_options;
        anneal_options.iterations = options.annealing_iterations;
        const AnnealingResult anneal =
            anneal_schedule(instance, anneal_options);
        if (!anneal.schedule.is_valid(instance)) {
          return std::string("annealing produced an invalid schedule");
        }
        if (anneal.span != anneal.schedule.span(instance)) {
          return std::string("annealing span disagrees with its schedule");
        }

        ExactOptions exact_options;
        exact_options.max_nodes = options.exact_max_nodes;
        const ExactResult exact = exact_optimal(instance, exact_options);
        if (!exact.schedule.is_valid(instance)) {
          return std::string("exact solver produced an invalid schedule");
        }
        if (exact.span != exact.schedule.span(instance)) {
          return std::string("exact span disagrees with its schedule");
        }
        // Incumbents are valid schedules even on budget exhaustion, so the
        // lower bound must never exceed them; the tighter claims below
        // need a certified optimum.
        if (lb > exact.span) {
          return "lower bound " + lb.to_string() + " exceeds exact span " +
                 exact.span.to_string() +
                 (exact.optimal() ? "" : " (budget-exceeded incumbent)");
        }
        if (!exact.optimal()) {
          return std::nullopt;
        }
        if (exact.span > heur.span) {
          return "OPT " + exact.span.to_string() + " exceeds heuristic UB " +
                 heur.span.to_string();
        }
        if (exact.span > anneal.span) {
          return "OPT " + exact.span.to_string() + " exceeds annealing UB " +
                 anneal.span.to_string();
        }
        // Every online schedule is feasible offline, so OPT bounds it.
        // Span-mode portfolio: the instance is prepared once and replayed
        // across the whole clairvoyant-model registry. On the (cold) path
        // where some scheduler throws, fall back to the sequential loop so
        // the failure is attributed exactly as the classic path did.
        const auto specs = schedulers_for_model(/*clairvoyant=*/true);
        std::vector<std::unique_ptr<OnlineScheduler>> schedulers;
        std::vector<PortfolioEntry> entries;
        schedulers.reserve(specs.size());
        entries.reserve(specs.size());
        for (const auto& spec : specs) {
          schedulers.push_back(spec.make());
          entries.push_back(
              PortfolioEntry{schedulers.back().get(), /*clairvoyant=*/true});
        }
        PortfolioSpanResult online;
        try {
          online = simulate_portfolio_spans(instance, entries);
        } catch (const std::exception&) {
          for (std::size_t s = 0; s < specs.size(); ++s) {
            Time span;
            try {
              span = simulate_span(instance, *schedulers[s],
                                   /*clairvoyant=*/true);
            } catch (const std::exception& e) {
              return "online " + specs[s].key +
                     " threw during sandwich check: " + e.what();
            }
            if (span < exact.span) {
              return "online " + specs[s].key + " span " + span.to_string() +
                     " beats OPT " + exact.span.to_string();
            }
          }
          throw;  // unreachable: the batched replay is the same run sequence
        }
        for (std::size_t s = 0; s < specs.size(); ++s) {
          if (online.spans[s] < exact.span) {
            return "online " + specs[s].key + " span " +
                   online.spans[s].to_string() + " beats OPT " +
                   exact.span.to_string();
          }
        }
        return std::nullopt;
      }};
}

Oracle ratio_bounds_oracle() {
  return Oracle{
      "ratio-bounds",
      [](const Instance& instance) -> std::optional<std::string> {
        if (instance.empty()) {
          return std::nullopt;
        }
        // Deliberately NOT horizon-capped, unlike the offline oracles:
        // the certified lower bounds and the descriptive stats feed the
        // ratio path (miner objectives, analysis reports) and must
        // survive near-Time::max() magnitudes, where unchecked sums used
        // to overflow-abort.
        InstanceStats stats;
        try {
          stats = compute_instance_stats(instance);
        } catch (const std::exception& e) {
          return std::string("instance stats threw: ") + e.what();
        }
        // The saturating total work is still a sum of positive lengths.
        if (stats.total_work < instance.max_length()) {
          return "saturating total work " + stats.total_work.to_string() +
                 " below max length " + instance.max_length().to_string();
        }
        Time lb;
        try {
          lb = best_lower_bound(instance);
        } catch (const std::exception& e) {
          return std::string("lower bound threw: ") + e.what();
        }
        const auto eager = make_scheduler("eager");
        Time span;
        try {
          span = simulate_span(instance, *eager, /*clairvoyant=*/false);
        } catch (const std::exception& e) {
          return std::string("eager simulation threw: ") + e.what();
        }
        // Any online span is a feasible schedule, so LB <= OPT <= span.
        if (lb > span) {
          return "lower bound " + lb.to_string() + " exceeds online span " +
                 span.to_string();
        }
        return std::nullopt;
      }};
}

Oracle exact_vs_reference_oracle(const OracleOptions& options) {
  return Oracle{
      "exact-vs-reference",
      [options](const Instance& instance) -> std::optional<std::string> {
        if (!offline_in_scope(instance, options,
                              options.reference_max_jobs) ||
            !instance.is_multiple_of(Time(kUnit))) {
          return std::nullopt;
        }
        ExactOptions exact_options;
        exact_options.max_nodes = options.reference_max_nodes;
        // Force the general critical-start search so the two solvers share
        // no branching strategy.
        exact_options.use_integral_fast_path = false;
        const ExactResult bnb = exact_optimal(instance, exact_options);
        if (!bnb.optimal()) {
          return std::nullopt;  // out of budget: no exactness claim
        }
        ExactResult reference;
        try {
          reference = exact_optimal_reference(instance, exact_options);
        } catch (const AssertionError& e) {
          const std::string what = e.what();
          if (what.find("node budget") != std::string::npos) {
            return std::nullopt;  // reference out of budget: skip
          }
          return "reference solver threw: " + what;
        }
        if (bnb.span != reference.span) {
          return "branch-and-bound OPT " + bnb.span.to_string() +
                 " != grid reference OPT " + reference.span.to_string();
        }
        return std::nullopt;
      }};
}

/// The columnar substrate's equivalence claim: reading jobs through a
/// non-owning InstanceView over an independently rebuilt JobTable scratch
/// buffer (the miner's mutate-evaluate path) must be observably identical
/// to reading them through the owning Instance — same derived stats, same
/// certified lower bounds, a byte-identical prepared replay timeline, and
/// identical spans from the view-based run_span path. Deliberately NOT
/// horizon-capped: near-Time::max() magnitudes must agree too, including
/// on which operations fail (both sides throwing counts as agreement).
Oracle view_vs_owned_oracle() {
  return Oracle{
      "view-vs-owned",
      [](const Instance& instance) -> std::optional<std::string> {
        JobTable scratch;
        scratch.reserve(instance.size());
        for (const Job& job : instance.view().jobs()) {
          scratch.push_back(job);
        }
        const InstanceView view = scratch.view();
        if (view.size() != instance.size()) {
          return "scratch table has " + std::to_string(view.size()) +
                 " rows, instance has " + std::to_string(instance.size());
        }
        if (instance.empty()) {
          return std::nullopt;
        }
        const auto time_mismatch =
            [](const char* what, Time v, Time o) -> std::optional<std::string> {
          if (v != o) {
            return std::string(what) + ": view " + v.to_string() +
                   " != owned " + o.to_string();
          }
          return std::nullopt;
        };
        // Derived stats: recomputed over the scratch columns vs the values
        // the Instance cached at construction.
        if (view.mu() != instance.mu()) {
          return "mu: view " + std::to_string(view.mu()) + " != owned " +
                 std::to_string(instance.mu());
        }
        if (auto m = time_mismatch("min_length", view.min_length(),
                                   instance.min_length())) {
          return m;
        }
        if (auto m = time_mismatch("max_length", view.max_length(),
                                   instance.max_length())) {
          return m;
        }
        if (auto m = time_mismatch("earliest_arrival", view.earliest_arrival(),
                                   instance.earliest_arrival())) {
          return m;
        }
        if (auto m = time_mismatch("latest_completion",
                                   view.latest_completion(),
                                   instance.latest_completion())) {
          return m;
        }
        // Total work: the saturating view sum's overflow flag must agree
        // with whether the owning accessor throws, and the values must
        // match when it does not.
        bool view_overflow = false;
        const Time view_work = view.total_work_saturating(&view_overflow);
        try {
          const Time owned_work = instance.total_work();
          if (view_overflow) {
            return "total_work: view saturated but owned returned " +
                   owned_work.to_string();
          }
          if (auto m = time_mismatch("total_work", view_work, owned_work)) {
            return m;
          }
        } catch (const AssertionError&) {
          if (!view_overflow) {
            return "total_work: owned overflow-threw but view computed " +
                   view_work.to_string();
          }
        }
        // Orderings and grid predicate.
        if (view.ids_by_arrival() != instance.ids_by_arrival()) {
          return std::string("ids_by_arrival orders differ");
        }
        if (view.ids_by_deadline() != instance.ids_by_deadline()) {
          return std::string("ids_by_deadline orders differ");
        }
        if (view.is_multiple_of(Time(kUnit)) !=
            instance.is_multiple_of(Time(kUnit))) {
          return std::string("is_multiple_of(1 unit) disagrees");
        }
        // Certified lower bounds (never horizon-capped; the overflow-safe
        // paths are part of the claim).
        if (auto m = time_mismatch("max_length_lower_bound",
                                   max_length_lower_bound(view),
                                   max_length_lower_bound(instance))) {
          return m;
        }
        if (auto m = time_mismatch("mandatory_lower_bound",
                                   mandatory_lower_bound(view),
                                   mandatory_lower_bound(instance))) {
          return m;
        }
        if (auto m = time_mismatch("chain_lower_bound",
                                   chain_lower_bound(view),
                                   chain_lower_bound(instance))) {
          return m;
        }
        if (auto m = time_mismatch("best_lower_bound", best_lower_bound(view),
                                   best_lower_bound(instance))) {
          return m;
        }
        // Descriptive stats (both may throw on pathological magnitudes,
        // but must do so together).
        std::optional<std::string> view_stats;
        std::optional<std::string> owned_stats;
        try {
          view_stats = compute_instance_stats(view).to_string();
        } catch (const std::exception&) {
        }
        try {
          owned_stats = compute_instance_stats(instance).to_string();
        } catch (const std::exception&) {
        }
        if (view_stats != owned_stats) {
          return "instance stats diverge: view " +
                 view_stats.value_or("<threw>") + " vs owned " +
                 owned_stats.value_or("<threw>");
        }
        // Prepared replay timeline: the engine lowering must not depend on
        // which storage the rows came from.
        PreparedInstance owned_prep;
        PreparedInstance view_prep;
        owned_prep.prepare(instance);
        view_prep.prepare(view);
        if (view_prep.size() != owned_prep.size() ||
            view_prep.original_ids() != owned_prep.original_ids()) {
          return std::string("prepared id maps differ");
        }
        for (std::size_t i = 0; i < owned_prep.size(); ++i) {
          const Job a = view_prep.records()[i].job;
          const Job b = owned_prep.records()[i].job;
          if (a.id != b.id || a.arrival != b.arrival ||
              a.deadline != b.deadline || a.length != b.length) {
            return "prepared job record " + std::to_string(i) + " differs";
          }
        }
        if (view_prep.staged().size() != owned_prep.staged().size()) {
          return std::string("staged timelines differ in length");
        }
        for (std::size_t i = 0; i < owned_prep.staged().size(); ++i) {
          const Event& a = view_prep.staged()[i];
          const Event& b = owned_prep.staged()[i];
          if (a.time != b.time || a.seq != b.seq || a.tag != b.tag ||
              a.job != b.job || a.kind != b.kind) {
            return "staged event " + std::to_string(i) + " differs";
          }
        }
        // Spans: the view-based single-entry replay (the miner's hot loop)
        // against the owning-path replay, in both clairvoyance models.
        PortfolioRunner runner;
        const auto eager = make_scheduler("eager");
        for (const bool clairvoyant : {true, false}) {
          const PortfolioEntry entry{eager.get(), clairvoyant};
          Time owned_span;
          try {
            owned_span = runner.run_span(instance, entry);
          } catch (const std::exception& e) {
            return std::string("owned run_span threw: ") + e.what();
          }
          Time view_span;
          try {
            view_span = runner.run_span(view, entry);
          } catch (const std::exception& e) {
            return std::string("view run_span threw: ") + e.what();
          }
          if (view_span != owned_span) {
            return std::string(clairvoyant ? "[cv] " : "[nc] ") +
                   "span: view " + view_span.to_string() + " != owned " +
                   owned_span.to_string();
          }
        }
        return std::nullopt;
      }};
}

/// The SIMD layer's bit-identity claim (support/simd.h): every vector
/// tier compiled into this binary must return the exact bytes the scalar
/// tier returns, for every kernel, on the instance's real columns. This
/// re-checks the per-tier unit tests on every generated instance — the
/// fuzzer reaches magnitude mixes (saturating sums, near-Time::max()
/// completions, duplicate keys) the hand-picked edge cases may miss.
Oracle simd_vs_scalar_oracle() {
  return Oracle{
      "simd-vs-scalar",
      [](const Instance& instance) -> std::optional<std::string> {
        const InstanceView view = instance.view();
        const std::size_t n = view.size();
        if (n == 0) {
          return std::nullopt;
        }
        const Time* arrivals = view.arrivals().data();
        const Time* deadlines = view.deadlines().data();
        const Time* lengths = view.lengths().data();
        for (const simd::Tier tier : simd::compiled_tiers()) {
          if (tier == simd::Tier::kScalar) {
            continue;
          }
          const std::string where = std::string("tier ") +
                                    simd::tier_name(tier) + ": ";
          for (const auto& [name, column] :
               {std::pair{"arrivals", arrivals},
                std::pair{"deadlines", deadlines},
                std::pair{"lengths", lengths}}) {
            const simd::MinMax v = simd::minmax_ticks(column, n, tier);
            const simd::MinMax s =
                simd::minmax_ticks(column, n, simd::Tier::kScalar);
            if (v.min != s.min || v.max != s.max) {
              return where + "minmax(" + name + ") diverges";
            }
          }
          // Lengths are the one column the generator keeps strictly
          // positive, matching the kernel's non-negative contract.
          const simd::SatSum vsum =
              simd::sum_saturating_nonneg(lengths, n, tier);
          const simd::SatSum ssum =
              simd::sum_saturating_nonneg(lengths, n, simd::Tier::kScalar);
          if (vsum.sum != ssum.sum || vsum.overflowed != ssum.overflowed) {
            return where + "sum_saturating_nonneg(lengths) diverges";
          }
          for (const auto& [name, a] : {std::pair{"deadlines", deadlines},
                                        std::pair{"arrivals", arrivals}}) {
            const simd::MaxSum vm = simd::max_pairwise_sum(a, lengths, n, tier);
            const simd::MaxSum sm =
                simd::max_pairwise_sum(a, lengths, n, simd::Tier::kScalar);
            if (vm.overflowed != sm.overflowed ||
                (!vm.overflowed && vm.max != sm.max)) {
              return where + "max_pairwise_sum(" + name + " + lengths) diverges";
            }
          }
          std::vector<std::int64_t> vec_out(n);
          std::vector<std::int64_t> sca_out(n);
          simd::saturating_sum_into(arrivals, lengths, vec_out.data(), n, tier);
          simd::saturating_sum_into(arrivals, lengths, sca_out.data(), n,
                                    simd::Tier::kScalar);
          if (vec_out != sca_out) {
            return where + "saturating_sum_into(arrivals + lengths) diverges";
          }
          std::vector<JobId> vec_ids;
          std::vector<JobId> sca_ids;
          for (const auto& [name, keys] : {std::pair{"arrivals", arrivals},
                                           std::pair{"deadlines", deadlines}}) {
            simd::sort_ids_by_key(keys, n, vec_ids, tier);
            simd::sort_ids_by_key(keys, n, sca_ids, simd::Tier::kScalar);
            if (vec_ids != sca_ids) {
              return where + "sort_ids_by_key(" + name +
                     ") permutations diverge";
            }
          }
          // Lockstep screen over a synthetic rows x lanes batch: lane k
          // reads the columns rotated by k rows, so lanes differ while
          // every lane's reductions stay checkable against scalar.
          const std::size_t lanes = std::min<std::size_t>(n, 5);
          std::vector<std::int64_t> batch_a(n * lanes);
          std::vector<std::int64_t> batch_d(n * lanes);
          std::vector<std::int64_t> batch_p(n * lanes);
          for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t k = 0; k < lanes; ++k) {
              const std::size_t src = (r + k) % n;
              batch_a[r * lanes + k] = arrivals[src].ticks();
              batch_d[r * lanes + k] = deadlines[src].ticks();
              batch_p[r * lanes + k] = lengths[src].ticks();
            }
          }
          std::vector<std::int64_t> v_res(4 * lanes);
          std::vector<std::int64_t> s_res(4 * lanes);
          simd::lockstep_screen(batch_a.data(), batch_d.data(), batch_p.data(),
                                n, lanes, v_res.data(), v_res.data() + lanes,
                                v_res.data() + 2 * lanes,
                                v_res.data() + 3 * lanes, tier);
          simd::lockstep_screen(batch_a.data(), batch_d.data(), batch_p.data(),
                                n, lanes, s_res.data(), s_res.data() + lanes,
                                s_res.data() + 2 * lanes,
                                s_res.data() + 3 * lanes, simd::Tier::kScalar);
          if (v_res != s_res) {
            return where + "lockstep_screen reductions diverge";
          }
        }
        return std::nullopt;
      }};
}

}  // namespace

std::vector<Oracle> standard_oracles(const OracleOptions& options) {
  std::vector<Oracle> oracles;
  if (options.run_schedulers) {
    for (const auto& spec : scheduler_registry()) {
      oracles.push_back(scheduler_oracle(spec));
    }
    for (const auto& spec : scheduler_registry()) {
      oracles.push_back(checkpoint_replay_oracle(spec, options));
    }
  }
  if (options.run_offline) {
    oracles.push_back(ratio_bounds_oracle());
    oracles.push_back(offline_sandwich_oracle(options));
    oracles.push_back(exact_vs_reference_oracle(options));
  }
  // Always on — no gate, no size cap, no horizon cap: every other oracle
  // reads the instance through this substrate, and every substrate stat
  // dispatches through the SIMD layer.
  oracles.push_back(view_vs_owned_oracle());
  oracles.push_back(simd_vs_scalar_oracle());
  return oracles;
}

std::vector<FuzzFailure> run_oracles(const Instance& instance,
                                     const std::vector<Oracle>& oracles) {
  std::vector<FuzzFailure> failures;
  for (const Oracle& oracle : oracles) {
    if (auto detail = oracle.check(instance)) {
      failures.push_back(FuzzFailure{oracle.name, *detail});
    }
  }
  return failures;
}

}  // namespace fjs
