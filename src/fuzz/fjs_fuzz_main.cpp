// fjs_fuzz — property-based differential fuzzing CLI.
//
//   fjs_fuzz --smoke                       fixed-seed CI profile (~30s)
//   fjs_fuzz --count 100000 --threads 8    long campaign
//   fjs_fuzz --replay failure.repro        re-run one repro file
//   fjs_fuzz --list-oracles                print the oracle battery
//
// Exit status: 0 when every instance passed every oracle, 1 on any
// failure, 2 on usage errors.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "fuzz/harness.h"
#include "fuzz/repro.h"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: fjs_fuzz [options]\n"
     << "  --smoke              fixed-seed CI profile (fast, deterministic)\n"
     << "  --count N            seeds to fuzz (default 1000)\n"
     << "  --seed-start S       first seed (default 1)\n"
     << "  --threads T          worker threads (default: hardware)\n"
     << "  --max-jobs N         jobs per instance cap (default 12)\n"
     << "  --max-failures N     stop after N failing seeds (default 8)\n"
     << "  --no-shrink          report failures without minimizing them\n"
     << "  --no-offline         scheduler/trace oracles only\n"
     << "  --repro-dir DIR      write fuzz-<seed>.repro files into DIR\n"
     << "  --replay FILE        replay a repro file (shrunk instance if\n"
     << "                       present, else the original) and exit\n"
     << "  --list-oracles       print the oracle battery and exit\n"
     << "  --help               this text\n";
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  try {
    std::size_t used = 0;
    out = std::stoull(text, &used);
    return used == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

int replay(const std::string& path, const fjs::FuzzOptions& options) {
  const fjs::ReproFile repro = fjs::load_repro(path);
  const fjs::Instance& instance =
      repro.shrunk ? *repro.shrunk : repro.original;
  std::cout << "replaying " << path << " (seed " << repro.seed
            << ", recorded oracle: " << repro.oracle << ")\n"
            << instance.to_string();
  const auto failures = fjs::replay_instance(instance, options);
  if (failures.empty()) {
    std::cout << "all oracles pass — failure no longer reproduces\n";
    return 0;
  }
  for (const auto& f : failures) {
    std::cout << "[" << f.oracle << "] " << f.detail << '\n';
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  fjs::FuzzOptions options;
  std::string replay_path;
  bool list_oracles = false;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&](std::uint64_t& out) {
      if (i + 1 >= args.size() || !parse_u64(args[i + 1], out)) {
        std::cerr << "fjs_fuzz: " << arg << " needs a numeric argument\n";
        std::exit(2);
      }
      ++i;
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--smoke") {
      // The CI profile: fixed seed window, every oracle, bounded shrink.
      options.seed_start = 1;
      options.count = 3'000;
      options.max_failures = 4;
    } else if (arg == "--count") {
      value(options.count);
    } else if (arg == "--seed-start") {
      value(options.seed_start);
    } else if (arg == "--threads") {
      std::uint64_t t = 0;
      value(t);
      options.threads = static_cast<std::size_t>(t);
    } else if (arg == "--max-jobs") {
      std::uint64_t n = 0;
      value(n);
      if (n < 1) {
        std::cerr << "fjs_fuzz: --max-jobs must be >= 1\n";
        return 2;
      }
      options.gen.max_jobs = static_cast<std::size_t>(n);
      options.gen.min_jobs = std::min(options.gen.min_jobs,
                                      options.gen.max_jobs);
    } else if (arg == "--max-failures") {
      std::uint64_t n = 0;
      value(n);
      options.max_failures = static_cast<std::size_t>(n);
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--no-offline") {
      options.oracle_options.run_offline = false;
    } else if (arg == "--repro-dir") {
      if (i + 1 >= args.size()) {
        std::cerr << "fjs_fuzz: --repro-dir needs a directory argument\n";
        return 2;
      }
      options.repro_dir = args[++i];
    } else if (arg == "--replay") {
      if (i + 1 >= args.size()) {
        std::cerr << "fjs_fuzz: --replay needs a file argument\n";
        return 2;
      }
      replay_path = args[++i];
    } else if (arg == "--list-oracles") {
      list_oracles = true;
    } else {
      std::cerr << "fjs_fuzz: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    }
  }

  try {
    if (list_oracles) {
      for (const auto& oracle :
           fjs::standard_oracles(options.oracle_options)) {
        std::cout << oracle.name << '\n';
      }
      return 0;
    }
    if (!replay_path.empty()) {
      return replay(replay_path, options);
    }
    const fjs::FuzzReport report = fjs::run_fuzz(options);
    std::cout << report.summary();
    return report.passed() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "fjs_fuzz: " << e.what() << '\n';
    return 2;
  }
}
