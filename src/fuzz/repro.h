// Deterministic repro files for fuzz failures.
//
// A repro file captures everything needed to replay a failure without the
// generator: the seed it came from, the oracle that rejected it, the
// one-line failure detail, and both the original and the shrunk instance
// as raw tick triples. Raw ticks matter: Instance::write/parse round-trips
// through unit-valued doubles, which is lossy for magnitudes near
// Time::max() — exactly the instances the overflow mutators produce.
//
// Format (line-oriented, '#' comments ignored):
//
//   fjs-fuzz-repro v1
//   seed 12345
//   oracle sched:eager
//   detail trace violations: ...
//   original 3
//   0 0 1000000
//   500000 1500000 2000000
//   ...
//   shrunk 1
//   0 0 1000000
//
// The "shrunk" section is optional (shrinking can be disabled).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/instance.h"

namespace fjs {

struct ReproFile {
  std::uint64_t seed = 0;
  std::string oracle;
  /// Single line; newlines are flattened to spaces on write.
  std::string detail;
  Instance original;
  std::optional<Instance> shrunk;
};

/// Serializes to / parses from the format above. parse throws
/// AssertionError on any malformed input; round-trips tick-exactly.
void write_repro(std::ostream& os, const ReproFile& repro);
ReproFile parse_repro(std::istream& is);

/// File wrappers; save throws AssertionError if the file cannot be
/// written, load if it cannot be read or parsed.
void save_repro(const std::string& path, const ReproFile& repro);
ReproFile load_repro(const std::string& path);

}  // namespace fjs
