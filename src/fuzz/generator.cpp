#include "fuzz/generator.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "support/assert.h"
#include "support/rng.h"

namespace fjs {
namespace {

constexpr std::int64_t kUnit = Time::kTicksPerUnit;
constexpr std::int64_t kMaxTicks = std::numeric_limits<std::int64_t>::max();

/// True iff deadline + length stays representable.
bool completion_fits(std::int64_t deadline, std::int64_t length) {
  return deadline <= kMaxTicks - length;
}

}  // namespace

Instance generate_fuzz_instance(const FuzzGenConfig& config,
                                std::uint64_t seed) {
  FJS_REQUIRE(config.min_jobs >= 1 && config.min_jobs <= config.max_jobs,
              "fuzz generator: bad job-count range");
  FJS_REQUIRE(config.horizon_units >= 1 && config.max_laxity_units >= 0 &&
                  config.max_length_units >= 1,
              "fuzz generator: bad unit ranges");
  Rng rng(seed);
  const auto n = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(config.min_jobs),
                      static_cast<std::int64_t>(config.max_jobs)));

  // Every event time produced so far: arrivals, deadlines, and potential
  // completion times a+p / d+p. Re-drawing from here is what makes tied
  // arrivals, deadlines-on-completions, and shared boundaries common.
  std::vector<std::int64_t> pool;
  JobTable table;
  table.reserve(n);

  auto fresh_ticks = [&](std::int64_t max_units,
                         bool allow_zero) -> std::int64_t {
    const std::int64_t lo = allow_zero ? 0 : 1;
    if (rng.bernoulli(config.p_fractional)) {
      return rng.uniform_int(lo, max_units * kUnit);
    }
    return rng.uniform_int(allow_zero ? 0 : 1, max_units) * kUnit;
  };

  auto pool_pick = [&]() -> std::int64_t {
    return pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
  };

  while (table.size() < n) {
    if (!table.empty() && rng.bernoulli(config.p_duplicate_job)) {
      // Duplicate arrival/window/length verbatim — the tie the engine's
      // FIFO seq order and the twin-symmetry pruning both have to handle.
      const Job twin = table.job(static_cast<JobId>(rng.uniform_int(
          0, static_cast<std::int64_t>(table.size()) - 1)));
      table.push_back(twin);
      continue;
    }

    std::int64_t arrival = 0;
    std::int64_t laxity = 0;
    std::int64_t length = 0;

    if (rng.bernoulli(config.p_huge)) {
      // Near the Time::max() boundary. Exercises overflow discipline,
      // not scheduling logic. Two variants:
      if (rng.bernoulli(0.5)) {
        // Huge ARRIVAL: top eighth of the representable range, window and
        // length small, completion checked below.
        const std::int64_t top = kMaxTicks / 8 * 7;
        arrival = top + rng.uniform_int(0, kMaxTicks / 64);
        laxity = rng.uniform_int(0, 4) * kUnit;
        length = rng.uniform_int(1, 4 * kUnit);
      } else {
        // Huge LENGTH: small arrival/window, completion within a few
        // units of Time::max(). Two such jobs overflow any unchecked
        // total-work / chain-weight sum — the ratio-path coverage the
        // huge-arrival variant (small lengths) never reaches.
        arrival = fresh_ticks(config.horizon_units, true);
        laxity = rng.uniform_int(0, 4) * kUnit;
        length = kMaxTicks - (arrival + laxity) -
                 rng.uniform_int(0, 4 * kUnit);
      }
    } else {
      const bool tie_arrival = !pool.empty() && rng.bernoulli(config.p_tie);
      arrival = tie_arrival ? pool_pick()
                            : fresh_ticks(config.horizon_units, true);

      if (rng.bernoulli(config.p_zero_laxity)) {
        laxity = 0;
      } else if (rng.bernoulli(config.p_one_tick_laxity)) {
        laxity = 1;
      } else if (!pool.empty() && rng.bernoulli(config.p_tie)) {
        // Aim the deadline at an existing event time; keep only forward
        // distances so the window stays non-empty.
        const std::int64_t target = pool_pick();
        laxity = target > arrival
                     ? target - arrival
                     : fresh_ticks(config.max_laxity_units, true);
      } else {
        laxity = fresh_ticks(config.max_laxity_units, true);
      }

      if (!pool.empty() && rng.bernoulli(config.p_tie)) {
        // Aim the completion d+p (or a+p for an immediate start) at an
        // existing event time. The tentative deadline saturates: the pool
        // holds near-max completions, so arrival + laxity can exceed the
        // tick range (the clamp below re-fits the window either way).
        const std::int64_t deadline = arrival <= kMaxTicks - laxity
                                          ? arrival + laxity
                                          : kMaxTicks;
        const std::int64_t target = pool_pick();
        length = target > deadline ? target - deadline
                                   : fresh_ticks(config.max_length_units,
                                                 false);
      } else {
        length = fresh_ticks(config.max_length_units, false);
      }
    }

    length = std::max<std::int64_t>(length, 1);
    // Clamp so the window and the latest completion stay representable.
    // Shrink the laxity before shifting the arrival: a tie-aimed laxity
    // can approach kMaxTicks (the pool holds near-max completions), and
    // then no non-negative arrival leaves room for the length.
    if (laxity > kMaxTicks - length) {
      laxity = kMaxTicks - length;
    }
    if (arrival > kMaxTicks - laxity - length) {
      arrival = kMaxTicks - laxity - length;
    }
    const std::int64_t deadline = arrival + laxity;
    FJS_CHECK(arrival >= 0 && completion_fits(deadline, length),
              "fuzz generator: clamp produced a nonsense job");

    table.push_back(Time(arrival), Time(deadline), Time(length));
    pool.push_back(arrival);
    pool.push_back(deadline);
    if (completion_fits(arrival, length)) {
      pool.push_back(arrival + length);
    }
    pool.push_back(deadline + length);  // fits by construction
  }

  Instance instance{std::move(table)};
  // Paranoia the whole harness rests on: every job individually valid and
  // overflow-safe (latest_completion throws otherwise).
  (void)instance.latest_completion();
  return instance;
}

}  // namespace fjs
