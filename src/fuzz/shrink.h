// Greedy instance shrinking for fuzz failures.
//
// Given a failing instance and a deterministic predicate "does this
// instance still fail?", the shrinker repeatedly applies simplifying
// candidate edits and keeps any edit that preserves the failure:
//   1. drop jobs (ddmin-style chunks, then single jobs),
//   2. simplify one job at a time (zero the laxity, snap times to the unit
//      grid, shorten the length, halve magnitudes),
//   3. simplify globally (translate the instance to start at 0, halve all
//      tick values).
// Rounds repeat until a full round changes nothing (a fixpoint) or the
// budget runs out. Every candidate is validity-checked before the
// predicate sees it, and the pass order is fixed, so the result is a
// deterministic function of (instance, predicate).
#pragma once

#include <cstddef>
#include <functional>

#include "core/instance.h"

namespace fjs {

/// Returns true iff the candidate instance still exhibits the failure.
/// Must be deterministic and side-effect free.
using FailurePredicate = std::function<bool(const Instance&)>;

struct ShrinkOptions {
  std::size_t max_rounds = 64;
  std::size_t max_predicate_calls = 50'000;
};

struct ShrinkResult {
  Instance instance;
  std::size_t rounds = 0;
  std::size_t predicate_calls = 0;
  /// True when shrinking stopped at a fixpoint (no further candidate
  /// preserved the failure) rather than on the budget.
  bool fixpoint = false;
};

/// Requires still_fails(failing) to be true; throws AssertionError
/// otherwise (an unreproducible failure must not be silently "minimized").
ShrinkResult shrink_instance(const Instance& failing,
                             const FailurePredicate& still_fails,
                             ShrinkOptions options = {});

}  // namespace fjs
