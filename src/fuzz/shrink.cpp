#include "fuzz/shrink.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "support/assert.h"

namespace fjs {
namespace {

constexpr std::int64_t kUnit = Time::kTicksPerUnit;
constexpr std::int64_t kMaxTicks = std::numeric_limits<std::int64_t>::max();

struct RawJob {
  std::int64_t arrival;
  std::int64_t deadline;
  std::int64_t length;

  bool operator==(const RawJob&) const = default;
};

std::vector<RawJob> to_raw(const Instance& instance) {
  std::vector<RawJob> raw;
  raw.reserve(instance.size());
  const InstanceView view = instance.view();
  for (JobId id = 0; id < view.size(); ++id) {
    raw.push_back(RawJob{view.arrival(id).ticks(), view.deadline(id).ticks(),
                         view.length(id).ticks()});
  }
  return raw;
}

bool raw_valid(const std::vector<RawJob>& raw) {
  if (raw.empty()) {
    return false;  // the empty instance fails nothing interesting
  }
  for (const RawJob& j : raw) {
    if (j.arrival < 0 || j.arrival > j.deadline || j.length <= 0 ||
        j.deadline > kMaxTicks - j.length) {
      return false;
    }
  }
  return true;
}

/// Well-founded shrink measure: job count first, then total tick mass.
/// Candidates are only adopted when this strictly decreases, so rounds
/// terminate at a true fixpoint (no snap/halve oscillation).
struct Measure {
  std::size_t jobs;
  unsigned __int128 mass;

  bool operator<(const Measure& other) const {
    return jobs != other.jobs ? jobs < other.jobs : mass < other.mass;
  }
};

Measure measure_of(const std::vector<RawJob>& raw) {
  Measure m{raw.size(), 0};
  for (const RawJob& j : raw) {
    m.mass += static_cast<unsigned __int128>(j.arrival);
    m.mass += static_cast<unsigned __int128>(j.deadline);
    m.mass += static_cast<unsigned __int128>(j.length);
  }
  return m;
}

Instance from_raw(const std::vector<RawJob>& raw) {
  JobTable table;
  table.reserve(raw.size());
  for (const RawJob& j : raw) {
    table.push_back(Time(j.arrival), Time(j.deadline), Time(j.length));
  }
  return Instance{std::move(table)};
}

std::int64_t floor_to_unit(std::int64_t ticks) {
  // Ticks are non-negative everywhere the shrinker operates (negative
  // arrivals never survive raw_valid via the translate pass first).
  return ticks >= 0 ? ticks / kUnit * kUnit : -((-ticks + kUnit - 1) / kUnit) * kUnit;
}

}  // namespace

ShrinkResult shrink_instance(const Instance& failing,
                             const FailurePredicate& still_fails,
                             ShrinkOptions options) {
  ShrinkResult result;
  std::vector<RawJob> current = to_raw(failing);
  FJS_REQUIRE(raw_valid(current), "shrink: seed instance is not shrinkable");

  auto budget_left = [&]() {
    return result.predicate_calls < options.max_predicate_calls;
  };
  // Tries a candidate; on success adopts it into `current`.
  auto attempt = [&](std::vector<RawJob> candidate) -> bool {
    if (!raw_valid(candidate) || !(measure_of(candidate) < measure_of(current)) ||
        !budget_left()) {
      return false;
    }
    ++result.predicate_calls;
    if (!still_fails(from_raw(candidate))) {
      return false;
    }
    current = std::move(candidate);
    return true;
  };

  FJS_REQUIRE(still_fails(from_raw(current)),
              "shrink: predicate does not fail on the seed instance");
  ++result.predicate_calls;

  bool changed = true;
  while (changed && result.rounds < options.max_rounds && budget_left()) {
    changed = false;
    ++result.rounds;

    // Pass 1: drop chunks of jobs, halving the chunk size down to 1.
    for (std::size_t chunk = std::max<std::size_t>(current.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
      for (std::size_t begin = 0; begin < current.size();) {
        std::vector<RawJob> candidate = current;
        const std::size_t end = std::min(begin + chunk, candidate.size());
        candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(begin),
                        candidate.begin() + static_cast<std::ptrdiff_t>(end));
        if (attempt(std::move(candidate))) {
          changed = true;  // indices shifted; retry the same position
        } else {
          begin += chunk;
        }
      }
      if (chunk == 1) {
        break;
      }
    }

    // Pass 2: per-job simplifications, in job order. Each edit family is
    // tried independently against the current instance.
    for (std::size_t i = 0; i < current.size(); ++i) {
      auto edit = [&](auto&& mutate) {
        std::vector<RawJob> candidate = current;
        mutate(candidate[i]);
        if (attempt(std::move(candidate))) {
          changed = true;
        }
      };
      edit([](RawJob& j) { j.deadline = j.arrival; });        // zero laxity
      edit([](RawJob& j) {                                    // to origin
        const std::int64_t laxity = j.deadline - j.arrival;
        j.arrival = 0;
        j.deadline = laxity;
      });
      edit([](RawJob& j) {                                    // snap to grid
        j.arrival = floor_to_unit(j.arrival);
        j.deadline = floor_to_unit(j.deadline);
        j.length = std::max<std::int64_t>(floor_to_unit(j.length), kUnit);
      });
      edit([](RawJob& j) { j.length = kUnit; });              // unit length
      edit([](RawJob& j) { j.length = 1; });                  // one tick
      edit([](RawJob& j) { j.length /= 2; });                 // halve length
      edit([](RawJob& j) {                                    // halve laxity
        j.deadline = j.arrival + (j.deadline - j.arrival) / 2;
      });
      edit([](RawJob& j) {                                    // halve arrival
        const std::int64_t laxity = j.deadline - j.arrival;
        j.arrival /= 2;
        j.deadline = j.arrival + laxity;
      });
    }

    // Pass 3: global simplifications.
    {
      std::int64_t min_arrival = kMaxTicks;
      for (const RawJob& j : current) {
        min_arrival = std::min(min_arrival, j.arrival);
      }
      if (min_arrival != 0) {
        std::vector<RawJob> candidate = current;
        for (RawJob& j : candidate) {
          j.arrival -= min_arrival;
          j.deadline -= min_arrival;
        }
        if (attempt(std::move(candidate))) {
          changed = true;
        }
      }
    }
    {
      std::vector<RawJob> candidate = current;
      for (RawJob& j : candidate) {
        j.arrival /= 2;
        j.deadline /= 2;
        j.length = std::max<std::int64_t>(j.length / 2, 1);
      }
      if (attempt(std::move(candidate))) {
        changed = true;
      }
    }
  }

  result.fixpoint = !changed;
  result.instance = from_raw(current);
  return result;
}

}  // namespace fjs
