// Biased random instance generation for the differential fuzzing harness.
//
// A uniform sampler almost never produces the coincidences the paper's
// adversarial constructions live on — zero laxity, a deadline landing
// exactly on another job's completion, sub-unit tick offsets, magnitudes
// near the Time overflow boundary. The generator therefore keeps a pool of
// every event time it has produced so far (arrivals, deadlines, potential
// completions) and re-draws from that pool with high probability, so tied
// event times are the common case rather than a measure-zero accident.
//
// Every generated instance is valid (windows non-empty, lengths positive)
// and overflow-safe: d(J) + p(J) is checked against Time::max() for every
// job, including the near-overflow mutator's output.
#pragma once

#include <cstdint>

#include "core/instance.h"

namespace fjs {

/// Mutator mix for one generated instance. Probabilities are per-job and
/// independent; the defaults keep every edge-case family common enough
/// that a few hundred instances cover all of them many times over.
struct FuzzGenConfig {
  std::size_t min_jobs = 1;
  std::size_t max_jobs = 12;

  /// Base ranges, in whole units, for fresh (non-tied) draws.
  std::int64_t horizon_units = 24;
  std::int64_t max_laxity_units = 8;
  std::int64_t max_length_units = 6;

  double p_zero_laxity = 0.25;      ///< d(J) = a(J): forced immediate start
  double p_one_tick_laxity = 0.10;  ///< laxity of exactly one tick
  double p_tie = 0.40;              ///< draw times from the event-time pool
  double p_fractional = 0.30;       ///< sub-unit tick granularity
  double p_duplicate_job = 0.10;    ///< clone an earlier job verbatim
  double p_huge = 0.03;             ///< magnitudes near the Time::max() boundary
};

/// Generates a reproducible instance; identical (config, seed) pairs yield
/// identical instances on every platform.
Instance generate_fuzz_instance(const FuzzGenConfig& config,
                                std::uint64_t seed);

}  // namespace fjs
