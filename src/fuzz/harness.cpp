#include "fuzz/harness.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "fuzz/repro.h"
#include "support/assert.h"
#include "support/parallel.h"
#include "support/string_util.h"
#include "support/telemetry.h"
#include "support/thread_pool.h"

namespace fjs {
namespace {

// Fuzz throughput: instances swept through the oracle battery. The count
// is seed-window-determined; wall time is what varies.
telemetry::Counter g_tm_fuzz_instances{"fuzz.instances",
                                       telemetry::Stability::kDeterministic};

}  // namespace

namespace {

/// Per-seed sweep outcome: the first oracle failure, if any. The instance
/// is regenerated from the seed when needed (cheap, deterministic), so
/// the hot path returns ~nothing for passing seeds.
struct SeedOutcome {
  bool failed = false;
  FuzzFailure failure;
};

SeedOutcome check_seed(std::uint64_t seed, const FuzzGenConfig& gen,
                       const std::vector<Oracle>& oracles) {
  SeedOutcome outcome;
  Instance instance;
  try {
    instance = generate_fuzz_instance(gen, seed);
  } catch (const std::exception& e) {
    outcome.failed = true;
    outcome.failure = FuzzFailure{
        "generator", std::string("generator threw: ") + e.what()};
    return outcome;
  }
  for (const Oracle& oracle : oracles) {
    std::optional<std::string> detail;
    try {
      detail = oracle.check(instance);
    } catch (const std::exception& e) {
      detail = std::string("oracle threw: ") + e.what();
    }
    if (detail) {
      outcome.failed = true;
      outcome.failure = FuzzFailure{oracle.name, *detail};
      return outcome;  // first failure wins; the rest is triage noise
    }
  }
  return outcome;
}

const Oracle* find_oracle(const std::vector<Oracle>& oracles,
                          const std::string& name) {
  for (const Oracle& oracle : oracles) {
    if (oracle.name == name) {
      return &oracle;
    }
  }
  return nullptr;
}

}  // namespace

double FuzzReport::instances_per_minute() const {
  if (elapsed_seconds <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(instances_run) * 60.0 / elapsed_seconds;
}

std::string FuzzReport::summary() const {
  std::ostringstream os;
  os << "fuzz: " << instances_run << " instances in "
     << format_fixed(elapsed_seconds, 2) << "s ("
     << format_fixed(instances_per_minute(), 0) << "/min), "
     << failures.size() << " failure" << (failures.size() == 1 ? "" : "s")
     << '\n';
  for (const FuzzCase& c : failures) {
    os << "  seed " << c.seed << " [" << c.oracle << "] " << c.detail << '\n';
    os << "    original: " << c.original.size() << " jobs";
    if (c.shrunk) {
      os << ", shrunk: " << c.shrunk->size() << " jobs ("
         << c.shrink_stats->predicate_calls << " predicate calls, "
         << (c.shrink_stats->fixpoint ? "fixpoint" : "budget") << ")";
    }
    os << '\n';
    if (c.shrunk) {
      os << c.shrunk->to_string();
    }
    if (!c.repro_path.empty()) {
      os << "    repro: " << c.repro_path << '\n';
    }
  }
  return os.str();
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  std::vector<Oracle> owned;
  if (options.oracles.empty()) {
    owned = standard_oracles(options.oracle_options);
  }
  const std::vector<Oracle>& oracles =
      options.oracles.empty() ? owned : options.oracles;
  FJS_REQUIRE(!oracles.empty(), "fuzz: no oracles to run");

  FuzzReport report;
  const auto t0 = std::chrono::steady_clock::now();
  ThreadPool pool(options.threads);

  // Sweep in blocks: each block is a parallel_map keyed by seed index, so
  // the failing-seed set is a pure function of (seed_start, count) and the
  // early exit at max_failures never depends on thread timing.
  const std::uint64_t block =
      std::max<std::uint64_t>(256, pool.thread_count() * 64);
  std::vector<std::pair<std::uint64_t, FuzzFailure>> raw_failures;
  for (std::uint64_t done = 0;
       done < options.count && raw_failures.size() < options.max_failures;
       done += block) {
    const std::uint64_t n = std::min<std::uint64_t>(block,
                                                    options.count - done);
    const std::uint64_t base = options.seed_start + done;
    auto outcomes = parallel_map(
        pool, static_cast<std::size_t>(n),
        [&](std::size_t i) {
          return check_seed(base + i, options.gen, oracles);
        },
        ChunkPolicy::kDynamic);
    report.instances_run += n;
    g_tm_fuzz_instances.add(static_cast<std::uint64_t>(n));
    for (std::size_t i = 0;
         i < outcomes.size() && raw_failures.size() < options.max_failures;
         ++i) {
      if (outcomes[i].failed) {
        raw_failures.emplace_back(base + i, outcomes[i].failure);
      }
    }
  }

  // Triage serially, in seed order: shrink (preserving "the same oracle
  // still rejects it") and emit the repro file.
  for (const auto& [seed, failure] : raw_failures) {
    FuzzCase fuzz_case;
    fuzz_case.seed = seed;
    fuzz_case.oracle = failure.oracle;
    fuzz_case.detail = failure.detail;
    fuzz_case.original = generate_fuzz_instance(options.gen, seed);

    const Oracle* oracle = find_oracle(oracles, failure.oracle);
    if (options.shrink && oracle != nullptr) {
      const auto still_fails = [oracle](const Instance& candidate) {
        try {
          return oracle->check(candidate).has_value();
        } catch (const std::exception&) {
          return true;  // an oracle crash is still a failure
        }
      };
      try {
        ShrinkResult shrunk = shrink_instance(fuzz_case.original, still_fails,
                                              options.shrink_options);
        fuzz_case.shrunk = shrunk.instance;
        fuzz_case.shrink_stats = std::move(shrunk);
      } catch (const AssertionError&) {
        // Non-deterministic failure (should not happen: oracles are pure);
        // keep the unshrunk original rather than dropping the case.
      }
    }

    if (!options.repro_dir.empty()) {
      ReproFile repro;
      repro.seed = fuzz_case.seed;
      repro.oracle = fuzz_case.oracle;
      repro.detail = fuzz_case.detail;
      repro.original = fuzz_case.original;
      repro.shrunk = fuzz_case.shrunk;
      fuzz_case.repro_path = options.repro_dir + "/fuzz-" +
                             std::to_string(fuzz_case.seed) + ".repro";
      save_repro(fuzz_case.repro_path, repro);
    }
    report.failures.push_back(std::move(fuzz_case));
  }

  const auto t1 = std::chrono::steady_clock::now();
  report.elapsed_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  return report;
}

std::vector<FuzzFailure> replay_instance(const Instance& instance,
                                         const FuzzOptions& options) {
  const std::vector<Oracle> oracles =
      options.oracles.empty() ? standard_oracles(options.oracle_options)
                              : options.oracles;
  return run_oracles(instance, oracles);
}

}  // namespace fjs
