#include "fuzz/repro.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "support/assert.h"
#include "support/string_util.h"

namespace fjs {
namespace {

std::string one_line(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '\n' || c == '\r') {
      c = ' ';
    }
  }
  return out;
}

void write_jobs(std::ostream& os, const std::string& header,
                const Instance& instance) {
  os << header << ' ' << instance.size() << '\n';
  for (const Job& j : instance.jobs()) {
    os << j.arrival.ticks() << ' ' << j.deadline.ticks() << ' '
       << j.length.ticks() << '\n';
  }
}

/// Reads the next non-comment, non-blank line; false at EOF.
bool next_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    line = trim(line);
    if (!line.empty() && line[0] != '#') {
      return true;
    }
  }
  return false;
}

std::int64_t parse_i64(const std::string& token, const char* what) {
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(token, &used);
    FJS_REQUIRE(used == token.size(),
                std::string("repro: trailing junk in ") + what);
    return value;
  } catch (const AssertionError&) {
    throw;
  } catch (const std::exception&) {
    throw AssertionError(std::string("repro: cannot parse ") + what + " '" +
                         token + "'");
  }
}

Instance parse_jobs(std::istream& is, std::size_t count) {
  std::vector<Job> jobs;
  jobs.reserve(count);
  std::string line;
  for (std::size_t i = 0; i < count; ++i) {
    FJS_REQUIRE(next_line(is, line), "repro: truncated job list");
    const auto fields = split(line, ' ');
    std::vector<std::int64_t> ticks;
    for (const auto& field : fields) {
      if (!trim(field).empty()) {
        ticks.push_back(parse_i64(trim(field), "job field"));
      }
    }
    FJS_REQUIRE(ticks.size() == 3,
                "repro: job line must be 'arrival deadline length' ticks");
    jobs.push_back(Job{.id = kInvalidJob,
                       .arrival = Time(ticks[0]),
                       .deadline = Time(ticks[1]),
                       .length = Time(ticks[2])});
  }
  return Instance{std::move(jobs)};
}

}  // namespace

void write_repro(std::ostream& os, const ReproFile& repro) {
  os << "fjs-fuzz-repro v1\n";
  os << "seed " << repro.seed << '\n';
  os << "oracle " << one_line(repro.oracle) << '\n';
  os << "detail " << one_line(repro.detail) << '\n';
  write_jobs(os, "original", repro.original);
  if (repro.shrunk) {
    write_jobs(os, "shrunk", *repro.shrunk);
  }
}

ReproFile parse_repro(std::istream& is) {
  std::string line;
  FJS_REQUIRE(next_line(is, line) && line == "fjs-fuzz-repro v1",
              "repro: missing 'fjs-fuzz-repro v1' header");
  ReproFile repro;

  FJS_REQUIRE(next_line(is, line) && starts_with(line, "seed "),
              "repro: expected 'seed <n>'");
  repro.seed =
      static_cast<std::uint64_t>(std::stoull(trim(line.substr(5))));

  FJS_REQUIRE(next_line(is, line) && starts_with(line, "oracle "),
              "repro: expected 'oracle <name>'");
  repro.oracle = trim(line.substr(7));

  FJS_REQUIRE(next_line(is, line) && starts_with(line, "detail "),
              "repro: expected 'detail <text>'");
  repro.detail = trim(line.substr(7));

  FJS_REQUIRE(next_line(is, line) && starts_with(line, "original "),
              "repro: expected 'original <count>'");
  const auto original_count = static_cast<std::size_t>(
      parse_i64(trim(line.substr(9)), "original count"));
  repro.original = parse_jobs(is, original_count);

  if (next_line(is, line)) {
    FJS_REQUIRE(starts_with(line, "shrunk "),
                "repro: expected 'shrunk <count>' or end of file");
    const auto shrunk_count = static_cast<std::size_t>(
        parse_i64(trim(line.substr(7)), "shrunk count"));
    repro.shrunk = parse_jobs(is, shrunk_count);
  }
  return repro;
}

void save_repro(const std::string& path, const ReproFile& repro) {
  std::ofstream out(path);
  FJS_REQUIRE(out.is_open(), "repro: cannot open '" + path + "' for writing");
  write_repro(out, repro);
  out.flush();
  FJS_REQUIRE(out.good(), "repro: write failed on '" + path + "'");
}

ReproFile load_repro(const std::string& path) {
  std::ifstream in(path);
  FJS_REQUIRE(in.is_open(), "repro: cannot open '" + path + "' for reading");
  return parse_repro(in);
}

}  // namespace fjs
