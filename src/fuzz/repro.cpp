#include "fuzz/repro.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "support/assert.h"
#include "support/string_util.h"

namespace fjs {
namespace {

std::string one_line(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '\n' || c == '\r') {
      c = ' ';
    }
  }
  return out;
}

void write_jobs(std::ostream& os, const std::string& header,
                const Instance& instance) {
  os << header << ' ' << instance.size() << '\n';
  const InstanceView view = instance.view();
  for (JobId id = 0; id < view.size(); ++id) {
    os << view.arrival(id).ticks() << ' ' << view.deadline(id).ticks() << ' '
       << view.length(id).ticks() << '\n';
  }
}

/// Skips blank and '#'-comment lines while tracking the 1-based line
/// number, so every parse error can say exactly where the file broke.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  /// Advances to the next meaningful line (trimmed); false at EOF.
  bool next(std::string& line) {
    std::string raw;
    while (std::getline(is_, raw)) {
      ++line_number_;
      const std::string trimmed = trim(raw);
      if (!trimmed.empty() && trimmed[0] != '#') {
        line = trimmed;
        return true;
      }
    }
    ++line_number_;  // EOF counts as the position after the last line
    return false;
  }

  std::size_t line_number() const { return line_number_; }

 private:
  std::istream& is_;
  std::size_t line_number_ = 0;
};

[[noreturn]] void fail_at(std::size_t line, const std::string& message) {
  throw AssertionError("repro:" + std::to_string(line) + ": " + message);
}

[[noreturn]] void fail_at(std::size_t line, std::size_t column,
                          const std::string& message) {
  throw AssertionError("repro:" + std::to_string(line) + ":" +
                       std::to_string(column) + ": " + message);
}

/// A whitespace-separated token and its 1-based column in the line.
struct Token {
  std::string text;
  std::size_t column;
};

std::vector<Token> tokenize(const std::string& line) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (line[i] == ' ' || line[i] == '\t') {
      ++i;
      continue;
    }
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') {
      ++i;
    }
    tokens.push_back(Token{line.substr(start, i - start), start + 1});
  }
  return tokens;
}

std::int64_t parse_i64(const Token& token, std::size_t line,
                       const char* what) {
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(token.text, &used);
    if (used != token.text.size()) {
      fail_at(line, token.column + used,
              std::string("trailing junk in ") + what + " '" + token.text +
                  "'");
    }
    return value;
  } catch (const AssertionError&) {
    throw;
  } catch (const std::exception&) {
    fail_at(line, token.column,
            std::string("cannot parse ") + what + " '" + token.text + "'");
  }
}

std::uint64_t parse_u64(const Token& token, std::size_t line,
                        const char* what) {
  if (token.text.empty() || token.text[0] == '-') {
    fail_at(line, token.column,
            std::string(what) + " must be a non-negative integer, got '" +
                token.text + "'");
  }
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(token.text, &used);
    if (used != token.text.size()) {
      fail_at(line, token.column + used,
              std::string("trailing junk in ") + what + " '" + token.text +
                  "'");
    }
    return value;
  } catch (const AssertionError&) {
    throw;
  } catch (const std::exception&) {
    fail_at(line, token.column,
            std::string("cannot parse ") + what + " '" + token.text + "'");
  }
}

/// Reads a "<keyword> <count>" job-list header and the `count` job lines
/// after it. `line` holds the already-read header line.
Instance parse_jobs(LineReader& reader, const std::string& line,
                    const char* keyword) {
  const std::size_t header_line = reader.line_number();
  const auto header = tokenize(line);
  FJS_CHECK(!header.empty() && header[0].text == keyword,
            "parse_jobs called on a non-matching header");
  if (header.size() != 2) {
    fail_at(header_line,
            std::string("expected '") + keyword + " <count>', got '" + line +
                "'");
  }
  const std::uint64_t count = parse_u64(header[1], header_line, "job count");
  // A corrupt count must not turn into a giant reserve() before the
  // missing job lines are even noticed.
  constexpr std::uint64_t kMaxReproJobs = 1'000'000;
  if (count > kMaxReproJobs) {
    fail_at(header_line, "job count " + std::to_string(count) +
                             " exceeds the repro limit of " +
                             std::to_string(kMaxReproJobs));
  }

  JobTable table;
  table.reserve(count);
  std::string job_line;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!reader.next(job_line)) {
      fail_at(reader.line_number(),
              std::string("truncated ") + keyword + " job list: expected " +
                  std::to_string(count) + " jobs, got " + std::to_string(i));
    }
    const auto fields = tokenize(job_line);
    if (fields.size() != 3) {
      fail_at(reader.line_number(),
              "job line must be 'arrival deadline length' ticks, got " +
                  std::to_string(fields.size()) + " fields");
    }
    table.push_back(
        Time(parse_i64(fields[0], reader.line_number(), "arrival")),
        Time(parse_i64(fields[1], reader.line_number(), "deadline")),
        Time(parse_i64(fields[2], reader.line_number(), "length")));
  }
  try {
    return Instance{std::move(table)};
  } catch (const AssertionError& e) {
    fail_at(header_line,
            std::string(keyword) + " jobs are not a valid instance: " +
                e.what());
  }
}

/// Reads one "<keyword> <value...>" line, enforcing the keyword.
std::string expect_field(LineReader& reader, const char* keyword) {
  std::string line;
  if (!reader.next(line)) {
    fail_at(reader.line_number(),
            std::string("unexpected end of file, expected '") + keyword +
                " ...'");
  }
  const std::string prefix = std::string(keyword) + " ";
  if (!starts_with(line, prefix)) {
    fail_at(reader.line_number(),
            std::string("expected '") + keyword + " ...', got '" + line +
                "'");
  }
  return trim(line.substr(prefix.size()));
}

}  // namespace

void write_repro(std::ostream& os, const ReproFile& repro) {
  os << "fjs-fuzz-repro v1\n";
  os << "seed " << repro.seed << '\n';
  os << "oracle " << one_line(repro.oracle) << '\n';
  os << "detail " << one_line(repro.detail) << '\n';
  write_jobs(os, "original", repro.original);
  if (repro.shrunk) {
    write_jobs(os, "shrunk", *repro.shrunk);
  }
}

ReproFile parse_repro(std::istream& is) {
  LineReader reader(is);
  std::string line;
  if (!reader.next(line)) {
    fail_at(reader.line_number(), "empty file, expected 'fjs-fuzz-repro v1'");
  }
  if (line != "fjs-fuzz-repro v1") {
    fail_at(reader.line_number(),
            "bad header '" + line + "', expected 'fjs-fuzz-repro v1'");
  }

  ReproFile repro;
  {
    const std::string value = expect_field(reader, "seed");
    const auto tokens = tokenize(value);
    if (tokens.size() != 1) {
      fail_at(reader.line_number(),
              "expected 'seed <n>', got 'seed " + value + "'");
    }
    // Column is relative to the full line: the value starts after "seed ".
    Token token = tokens[0];
    token.column += 5;
    repro.seed = parse_u64(token, reader.line_number(), "seed");
  }
  repro.oracle = expect_field(reader, "oracle");
  repro.detail = expect_field(reader, "detail");

  if (!reader.next(line)) {
    fail_at(reader.line_number(),
            "unexpected end of file, expected 'original <count>'");
  }
  if (!starts_with(line, "original ")) {
    fail_at(reader.line_number(),
            "expected 'original <count>', got '" + line + "'");
  }
  repro.original = parse_jobs(reader, line, "original");

  if (reader.next(line)) {
    if (!starts_with(line, "shrunk ")) {
      fail_at(reader.line_number(),
              "expected 'shrunk <count>' or end of file, got '" + line + "'");
    }
    repro.shrunk = parse_jobs(reader, line, "shrunk");
    if (reader.next(line)) {
      fail_at(reader.line_number(),
              "trailing garbage after the shrunk job list: '" + line + "'");
    }
  }
  return repro;
}

void save_repro(const std::string& path, const ReproFile& repro) {
  std::ofstream out(path);
  FJS_REQUIRE(out.is_open(), "repro: cannot open '" + path + "' for writing");
  write_repro(out, repro);
  out.flush();
  FJS_REQUIRE(out.good(), "repro: write failed on '" + path + "'");
}

ReproFile load_repro(const std::string& path) {
  std::ifstream in(path);
  FJS_REQUIRE(in.is_open(), "repro: cannot open '" + path + "' for reading");
  return parse_repro(in);
}

}  // namespace fjs
