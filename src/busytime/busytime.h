// Busy-time scheduling on capacity-g machines — the setting of Koehler &
// Khuller (WADS'17) that the paper's concluding remarks prove equivalent
// to Clairvoyant FJS when g = ∞.
//
// A machine may run at most g jobs concurrently; it is "busy" whenever at
// least one job runs on it; the objective is the total busy time summed
// over machines. Given start times fixed by any FJS scheduler, this module
// assigns machines online (at each job's start) and accounts busy time
// with exact integer capacity arithmetic (no float sizes — contrast with
// the fractional dbp/ substrate).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/schedule.h"

namespace fjs {

/// Online machine-assignment policies (applied at each job's start time).
enum class MachinePolicy {
  kFirstAvailable,  ///< lowest-indexed machine with a free slot (First Fit)
  kMostLoaded,      ///< feasible machine with the FEWEST free slots (Best Fit)
  kLeastLoaded,     ///< feasible machine with the MOST free slots (Worst Fit)
};

std::string to_string(MachinePolicy policy);

struct BusyTimeResult {
  /// Σ over machines of the measure of their non-idle periods.
  Time total_busy;
  std::size_t machines_used = 0;
  std::size_t peak_active_machines = 0;
  std::vector<Time> per_machine_busy;
  /// Machine index per job, aligned with instance ids.
  std::vector<std::size_t> assignment;
};

/// Assigns machines for the given schedule. `capacity` is g >= 1; pass
/// kUnboundedCapacity for g = ∞ (one machine, busy time = span).
inline constexpr std::size_t kUnboundedCapacity = 0;

BusyTimeResult assign_machines(const Instance& instance,
                               const Schedule& schedule,
                               std::size_t capacity,
                               MachinePolicy policy =
                                   MachinePolicy::kFirstAvailable);

/// Certified lower bound on the busy time of ANY schedule + assignment:
/// max(span lower bound, ceil(total work / g)). For g = ∞ the work term
/// vanishes.
Time busy_time_lower_bound(const Instance& instance, std::size_t capacity);

}  // namespace fjs
