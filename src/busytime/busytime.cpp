#include "busytime/busytime.h"

#include <algorithm>

#include "core/interval_set.h"
#include "offline/lower_bound.h"
#include "support/assert.h"

namespace fjs {

std::string to_string(MachinePolicy policy) {
  switch (policy) {
    case MachinePolicy::kFirstAvailable:
      return "first-available";
    case MachinePolicy::kMostLoaded:
      return "most-loaded";
    case MachinePolicy::kLeastLoaded:
      return "least-loaded";
  }
  return "unknown";
}

BusyTimeResult assign_machines(const Instance& instance,
                               const Schedule& schedule,
                               std::size_t capacity, MachinePolicy policy) {
  schedule.validate(instance);

  struct Ev {
    Time time;
    bool is_start;
    JobId job;
  };
  std::vector<Ev> events;
  events.reserve(instance.size() * 2);
  for (JobId id = 0; id < instance.size(); ++id) {
    const Interval iv = schedule.active_interval(instance, id);
    events.push_back(Ev{iv.lo, true, id});
    events.push_back(Ev{iv.hi, false, id});
  }
  // Half-open semantics: departures free a slot for same-tick starts.
  std::sort(events.begin(), events.end(), [](const Ev& a, const Ev& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    if (a.is_start != b.is_start) {
      return !a.is_start;
    }
    return a.job < b.job;
  });

  struct Machine {
    std::size_t running = 0;
    Time busy_since;
    IntervalSet busy;
  };
  std::vector<Machine> machines;
  BusyTimeResult result;
  result.assignment.assign(instance.size(), static_cast<std::size_t>(-1));
  std::size_t active_now = 0;

  auto has_slot = [&](const Machine& m) {
    return capacity == kUnboundedCapacity || m.running < capacity;
  };

  for (const Ev& ev : events) {
    if (ev.is_start) {
      std::size_t choice = machines.size();
      switch (policy) {
        case MachinePolicy::kFirstAvailable:
          for (std::size_t i = 0; i < machines.size(); ++i) {
            if (has_slot(machines[i])) {
              choice = i;
              break;
            }
          }
          break;
        case MachinePolicy::kMostLoaded: {
          std::size_t best_running = 0;
          for (std::size_t i = 0; i < machines.size(); ++i) {
            if (has_slot(machines[i]) &&
                (choice == machines.size() ||
                 machines[i].running > best_running)) {
              choice = i;
              best_running = machines[i].running;
            }
          }
          break;
        }
        case MachinePolicy::kLeastLoaded: {
          std::size_t best_running = 0;
          for (std::size_t i = 0; i < machines.size(); ++i) {
            if (has_slot(machines[i]) &&
                (choice == machines.size() ||
                 machines[i].running < best_running)) {
              choice = i;
              best_running = machines[i].running;
            }
          }
          break;
        }
      }
      if (choice == machines.size()) {
        machines.emplace_back();
      }
      Machine& m = machines[choice];
      FJS_CHECK(has_slot(m), "busytime: capacity violated");
      if (m.running == 0) {
        m.busy_since = ev.time;
        ++active_now;
        result.peak_active_machines =
            std::max(result.peak_active_machines, active_now);
      }
      ++m.running;
      result.assignment[ev.job] = choice;
    } else {
      const std::size_t choice = result.assignment[ev.job];
      FJS_CHECK(choice < machines.size(), "busytime: end before start");
      Machine& m = machines[choice];
      FJS_CHECK(m.running > 0, "busytime: machine underflow");
      --m.running;
      if (m.running == 0) {
        m.busy.add(Interval(m.busy_since, ev.time));
        --active_now;
      }
    }
  }

  result.machines_used = machines.size();
  result.total_busy = Time::zero();
  for (const Machine& m : machines) {
    FJS_CHECK(m.running == 0, "busytime: machine left running");
    const Time busy = m.busy.measure();
    result.per_machine_busy.push_back(busy);
    result.total_busy += busy;
  }
  return result;
}

Time busy_time_lower_bound(const Instance& instance, std::size_t capacity) {
  if (instance.empty()) {
    return Time::zero();
  }
  const Time span_lb = best_lower_bound(instance);
  if (capacity == kUnboundedCapacity) {
    return span_lb;
  }
  const std::int64_t g = static_cast<std::int64_t>(capacity);
  const std::int64_t work = instance.total_work().ticks();
  const Time work_lb((work + g - 1) / g);
  return std::max(span_lb, work_lb);
}

}  // namespace fjs
