// Minimal JSON document model used by the experiment runner for its
// manifest/verdict artifacts (and by tests to round-trip them).
//
// Deliberately small: ordered objects, arrays, strings, doubles, bools,
// null. Numbers are emitted with enough precision to round-trip exactly
// (%.17g-style), and object keys keep insertion order so a dumped
// document is byte-stable across runs — the property the determinism
// tests pin down.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace fjs {

/// A JSON value. Construct with the static factories, compose with
/// `set`/`push_back`, serialize with `dump`, read back with `parse`.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue null();
  static JsonValue boolean(bool value);
  static JsonValue number(double value);
  static JsonValue string(std::string value);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Accessors; throw AssertionError on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array access.
  std::size_t size() const;
  const JsonValue& at(std::size_t index) const;
  void push_back(JsonValue value);

  /// Object access. `set` overwrites an existing key in place (keeping
  /// its position); `get` throws on a missing key, `find` returns
  /// nullptr instead.
  void set(const std::string& key, JsonValue value);
  const JsonValue& get(const std::string& key) const;
  const JsonValue* find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Serializes the document. indent = 0 renders compact single-line
  /// JSON; indent > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 2) const;

  /// Parses a JSON document; throws AssertionError on malformed input.
  static JsonValue parse(const std::string& text);

  /// Deep structural equality (exact double comparison).
  friend bool operator==(const JsonValue& a, const JsonValue& b);
  friend bool operator!=(const JsonValue& a, const JsonValue& b) {
    return !(a == b);
  }

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escapes a string for embedding in JSON (adds surrounding quotes).
std::string json_escape(const std::string& text);

}  // namespace fjs
