// Portable SIMD kernels for the columnar (SoA) hot paths.
//
// Every kernel here is a pure reduction or map over Time columns (the
// JobTable/InstanceView substrate, docs/DATA_MODEL.md) and is provided at
// up to four tiers: hand-written AVX2, SSE2 and NEON intrinsics plus a
// required scalar fallback. Dispatch is compile-time (the FJS_SIMD CMake
// option selects the best tier the compiler supports; OFF compiles the
// scalar fallbacks only) with a runtime escape hatch: setting the
// FJS_FORCE_SCALAR environment variable (or calling set_force_scalar())
// routes every default-tier call through the scalar code — that is how
// reproduce.sh runs the whole suite twice and diffs the verdicts byte for
// byte.
//
// Bit-identity contract: for any input, every tier of a kernel returns
// the exact same bytes as the scalar tier (integer lane arithmetic only;
// reduction reassociation is exact for the overflow-free ranges, and the
// overflow/saturation cases are detected exactly — see each kernel's
// note). The contract is pinned three ways: tests/test_support_simd.cpp
// compares every compiled tier against scalar on edge inputs, the
// always-on `simd-vs-scalar` fuzz oracle re-runs the comparison on every
// generated instance, and reproduce.sh's FJS_FORCE_SCALAR differential
// run re-checks it end to end. See docs/PERF.md ("SIMD kernels").
//
// Kernels take raw column pointers (Time is a trivially copyable wrapper
// over one int64, statically asserted in simd.cpp); vector tiers load the
// bytes directly. Tails are handled without scalar epilogues on AVX2
// (masked loads/stores suppress lane faults); SSE2/NEON use short scalar
// tails. Owned JobTable columns are additionally 64-byte aligned with
// readable padding (support/aligned.h), so full-width loads on the owned
// path never straddle an unmapped page.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/job.h"
#include "core/time.h"

namespace fjs::simd {

/// Instruction-set tiers, in increasing preference order. kScalar is
/// always compiled; the vector tiers exist only where the target (and the
/// FJS_SIMD build option) provide them.
enum class Tier : std::uint8_t { kScalar = 0, kSse2 = 1, kNeon = 2, kAvx2 = 3 };

/// Human-readable tier name ("scalar", "sse2", "neon", "avx2").
const char* tier_name(Tier tier);

/// Tiers compiled into this binary, scalar first. Vector tiers appear
/// even when FJS_SIMD=OFF hides them from dispatch — tests iterate this
/// list to differential-check every implementation the binary carries.
const std::vector<Tier>& compiled_tiers();

/// The tier default-tier kernel calls dispatch to: the best compiled tier
/// under FJS_SIMD=ON, kScalar under FJS_SIMD=OFF or when force-scalar is
/// set (FJS_FORCE_SCALAR in the environment, or set_force_scalar(true)).
Tier active_tier();

/// Runtime scalar override for differential tests and the /scalar
/// benchmark variants. Reads are relaxed atomic: flip it only at
/// quiescent points (no kernel concurrently in flight) or the two sides
/// of a comparison may mix tiers.
void set_force_scalar(bool force);
bool force_scalar();

struct MinMax {
  std::int64_t min;
  std::int64_t max;
};

/// Min and max over n > 0 ticks. Exact for all inputs (pure compares).
MinMax minmax_ticks(const Time* values, std::size_t n);
MinMax minmax_ticks(const Time* values, std::size_t n, Tier tier);

struct SatSum {
  std::int64_t sum;       ///< saturated at Time::max() when overflowed
  bool overflowed;        ///< exact: set iff the true sum exceeds max
};

/// Saturating sum of NON-NEGATIVE ticks with exact overflow detection:
/// lanes accumulate in unsigned 64-bit with an overflow-carry counter per
/// lane, and the final (carry, sum) pairs combine into a 128-bit total —
/// so `overflowed` is set iff the infinite-precision sum exceeds
/// Time::max(), which for non-negative addends is exactly when the scalar
/// running prefix sum would have clipped. Negative inputs are a contract
/// violation (the scalar reference itself overflows on them).
SatSum sum_saturating_nonneg(const Time* values, std::size_t n);
SatSum sum_saturating_nonneg(const Time* values, std::size_t n, Tier tier);

struct MaxSum {
  std::int64_t max;       ///< meaningful only when !overflowed
  bool overflowed;        ///< some a[i] + b[i] is not representable
};

/// max over i of a[i] + b[i] (n > 0). When any pairwise sum overflows
/// int64 the kernel reports it instead of producing a value; callers that
/// need checked_add's throw re-run the scalar checked loop to fail at the
/// same element with the same error.
MaxSum max_pairwise_sum(const Time* a, const Time* b, std::size_t n);
MaxSum max_pairwise_sum(const Time* a, const Time* b, std::size_t n,
                        Tier tier);

/// out[i] = (a[i] + b[i]) with Time::saturating_add semantics (clamps to
/// Time::max()/min() by the sign of b on overflow). Exact on every input.
void saturating_sum_into(const Time* a, const Time* b, std::int64_t* out,
                         std::size_t n);
void saturating_sum_into(const Time* a, const Time* b, std::int64_t* out,
                         std::size_t n, Tier tier);

/// Stable (key, id) ordering: fills `out` with 0..n-1 sorted by key, ties
/// by id. Vector tiers use an LSD radix sort on the sign-flipped 64-bit
/// keys (branch-free per-element histogramming, constant-byte passes
/// skipped) above a small-n cutoff; the scalar tier and small inputs use
/// a comparison sort. The (key, id) order is a total order, so every path
/// produces the identical permutation.
void sort_ids_by_key(const Time* keys, std::size_t n, std::vector<JobId>& out);
void sort_ids_by_key(const Time* keys, std::size_t n, std::vector<JobId>& out,
                     Tier tier);

/// Lane-parallel candidate screen (the miner's pre-simulation cut): the
/// inputs are row-major padded column batches of shape rows x lanes —
/// element [r * lanes + k] is candidate k's value for job row r — and the
/// kernel reduces all lanes in lockstep:
///   min_a[k]  = min over rows of a,
///   max_dp[k] = max over rows of saturating(d + p),
///   max_p[k]  = max over rows of p,
///   sum_p[k]  = step-wise saturating sum over rows of p.
/// rows must be > 0; any `lanes` value works (tails are masked). Each
/// lane's outputs equal the scalar per-candidate reductions exactly
/// (saturation follows Time::saturating_add step for step).
void lockstep_screen(const std::int64_t* a, const std::int64_t* d,
                     const std::int64_t* p, std::size_t rows,
                     std::size_t lanes, std::int64_t* min_a,
                     std::int64_t* max_dp, std::int64_t* max_p,
                     std::int64_t* sum_p);
void lockstep_screen(const std::int64_t* a, const std::int64_t* d,
                     const std::int64_t* p, std::size_t rows,
                     std::size_t lanes, std::int64_t* min_a,
                     std::int64_t* max_dp, std::int64_t* max_p,
                     std::int64_t* sum_p, Tier tier);

}  // namespace fjs::simd
