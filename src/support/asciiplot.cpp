#include "support/asciiplot.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/assert.h"
#include "support/string_util.h"

namespace fjs {

std::string ascii_plot(const std::vector<double>& xs,
                       const std::vector<Series>& series,
                       AsciiPlotOptions options) {
  FJS_REQUIRE(!series.empty(), "ascii_plot: need at least one series");
  FJS_REQUIRE(xs.size() >= 2, "ascii_plot: need at least two points");
  FJS_REQUIRE(options.width >= 8 && options.height >= 4,
              "ascii_plot: plot area too small");
  for (const auto& s : series) {
    FJS_REQUIRE(s.ys.size() == xs.size(),
                "ascii_plot: series length mismatch for " + s.name);
  }

  auto x_coord = [&](double x) {
    if (options.log_x) {
      FJS_REQUIRE(x > 0.0, "ascii_plot: log_x requires positive x");
      return std::log(x);
    }
    return x;
  };

  double x_min = x_coord(xs.front());
  double x_max = x_min;
  for (const double x : xs) {
    x_min = std::min(x_min, x_coord(x));
    x_max = std::max(x_max, x_coord(x));
  }
  double y_min = series.front().ys.front();
  double y_max = y_min;
  for (const auto& s : series) {
    for (const double y : s.ys) {
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
  }
  if (x_max == x_min) {
    x_max = x_min + 1.0;
  }
  if (y_max == y_min) {
    y_max = y_min + 1.0;
  }

  std::vector<std::string> grid(options.height,
                                std::string(options.width, ' '));
  auto plot_point = [&](double x, double y, char mark) {
    const double fx = (x_coord(x) - x_min) / (x_max - x_min);
    const double fy = (y - y_min) / (y_max - y_min);
    const auto col = std::min<std::size_t>(
        options.width - 1,
        static_cast<std::size_t>(fx * static_cast<double>(options.width - 1) +
                                 0.5));
    const auto row_from_bottom = std::min<std::size_t>(
        options.height - 1,
        static_cast<std::size_t>(fy * static_cast<double>(options.height - 1) +
                                 0.5));
    grid[options.height - 1 - row_from_bottom][col] = mark;
  };
  for (const auto& s : series) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      plot_point(xs[i], s.ys[i], s.mark);
    }
  }

  std::ostringstream os;
  if (!options.y_label.empty()) {
    os << options.y_label << '\n';
  }
  const std::string top = format_double(y_max, 3);
  const std::string bottom = format_double(y_min, 3);
  const std::size_t margin = std::max(top.size(), bottom.size());
  for (std::size_t r = 0; r < options.height; ++r) {
    std::string label;
    if (r == 0) {
      label = top;
    } else if (r == options.height - 1) {
      label = bottom;
    }
    os << pad_left(label, margin) << " |" << grid[r] << '\n';
  }
  os << std::string(margin + 1, ' ') << '+'
     << std::string(options.width, '-') << '\n';
  os << std::string(margin + 2, ' ') << format_double(xs.front(), 3)
     << std::string(options.width > 16 ? options.width - 12 : 1, ' ')
     << format_double(xs.back(), 3);
  if (!options.x_label.empty()) {
    os << "  (" << options.x_label << (options.log_x ? ", log scale" : "")
       << ')';
  }
  os << '\n';
  for (const auto& s : series) {
    os << "  " << s.mark << " = " << s.name << '\n';
  }
  return os.str();
}

}  // namespace fjs
