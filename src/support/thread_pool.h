// Work-stealing thread pool used to fan parameter sweeps, Monte-Carlo
// ratio experiments, and nested experiment/task parallelism across cores.
//
// Design notes (shared-memory parallel idioms):
//  * one Chase-Lev deque per worker (owner pushes/pops at the bottom,
//    thieves CAS the top); a mutex-protected injection queue accepts work
//    from non-worker threads. All deque indices and cells use seq_cst
//    atomics -- strictly stronger than the published orderings (Le et al.,
//    "Correct and Efficient Work-Stealing for Weak Memory Models") and free
//    of standalone fences, which keeps ThreadSanitizer precise. Tasks here
//    are coarse (a whole simulation or experiment each), so the stronger
//    orderings cost nothing measurable;
//  * TaskGroup provides *nesting*: a task that spawns subtasks and calls
//    wait() helps execute queued work (its own deque first, then the
//    injection queue, then stealing) instead of blocking a worker. One pool
//    can therefore run an outer experiment fan-out and the experiments'
//    inner loops without deadlock or oversubscription;
//  * std::jthread workers joined in the destructor (RAII -- no detached
//    threads, no leaks on exceptions); the destructor drains every task
//    that was ever enqueued before returning;
//  * exceptions: submit() futures carry them as before; TaskGroup captures
//    the first subtask exception and rethrows it exactly once from wait(),
//    even when the throwing task was stolen by another worker.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace fjs {

class ThreadPool;

namespace detail {

/// Type-erased unit of pool work. Nodes are heap-allocated at enqueue time
/// and deleted by whichever thread executes them. execute() must not throw:
/// submit() nodes park exceptions in their future, TaskGroup nodes park
/// them in the group.
struct TaskNode {
  virtual ~TaskNode() = default;
  virtual void execute() noexcept = 0;
};

/// Chase-Lev work-stealing deque of TaskNode pointers. push()/pop() are
/// owner-only; steal() is safe from any thread. Grows by ring doubling;
/// retired rings are kept on a chain until destruction so a racing thief
/// never reads freed cells.
class WorkDeque {
 public:
  WorkDeque() : ring_(new Ring(kInitialCapacity)) {}
  ~WorkDeque();

  WorkDeque(const WorkDeque&) = delete;
  WorkDeque& operator=(const WorkDeque&) = delete;

  void push(TaskNode* node);  // owner only
  TaskNode* pop();            // owner only; nullptr when empty
  TaskNode* steal();          // any thread; nullptr when empty or lost race

 private:
  struct Ring {
    explicit Ring(std::size_t cap)
        : capacity(cap), mask(cap - 1),
          cells(new std::atomic<TaskNode*>[cap]) {}
    TaskNode* get(std::int64_t i) const {
      return cells[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, TaskNode* node) {
      cells[static_cast<std::size_t>(i) & mask].store(
          node, std::memory_order_relaxed);
    }
    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<TaskNode*>[]> cells;
    Ring* prev = nullptr;  // retired predecessor, freed in ~WorkDeque
  };

  static constexpr std::size_t kInitialCapacity = 64;  // power of two

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> ring_;
};

}  // namespace detail

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return threads_.size(); }

  /// Enqueues a task; the future carries the result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto* node = new FutureNode<R, std::decay_t<F>>(std::forward<F>(fn));
    std::future<R> fut = node->task.get_future();
    enqueue(node);
    return fut;
  }

  /// A set of spawned subtasks awaited together. wait() *helps*: the
  /// waiting thread executes queued pool work (including work from other
  /// groups) until every subtask of this group has finished, so groups
  /// nest arbitrarily deep on a single pool -- even a pool of one thread.
  /// The first exception thrown by any subtask -- local or stolen -- is
  /// rethrown exactly once from wait(); later exceptions are dropped.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
    ~TaskGroup();  // drains (without rethrow) if wait() was never reached

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Spawns fn() as a pool task belonging to this group.
    template <typename F>
    void run(F&& fn);

    /// Helps execute pool work until all spawned tasks finished, then
    /// rethrows the first captured exception (if any).
    void wait();

   private:
    friend class ThreadPool;

    void drain() noexcept;
    void capture(std::exception_ptr ex) noexcept;
    void finish_one() noexcept {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
    }

    ThreadPool& pool_;
    std::atomic<std::size_t> pending_{0};
    std::mutex exception_mutex_;
    std::exception_ptr exception_;
  };

 private:
  template <typename R, typename F>
  struct FutureNode final : detail::TaskNode {
    explicit FutureNode(F&& fn) : task(std::move(fn)) {}
    explicit FutureNode(const F& fn) : task(fn) {}
    void execute() noexcept override { task(); }  // exception -> future
    std::packaged_task<R()> task;
  };

  template <typename F>
  struct GroupNode final : detail::TaskNode {
    GroupNode(TaskGroup* g, F&& body) : group(g), fn(std::move(body)) {}
    GroupNode(TaskGroup* g, const F& body) : group(g), fn(body) {}
    void execute() noexcept override {
      try {
        fn();
      } catch (...) {
        group->capture(std::current_exception());
      }
      group->finish_one();
    }
    TaskGroup* group;
    F fn;
  };

  struct Worker {
    detail::WorkDeque deque;
  };

  /// Routes a node to the calling worker's own deque (cheap, stealable) or
  /// to the injection queue when called from outside the pool.
  void enqueue(detail::TaskNode* node);
  /// Own deque -> injection queue -> steal sweep; nullptr when idle.
  /// Safe from non-worker threads (which skip the own-deque step).
  detail::TaskNode* find_work();
  void run_node(detail::TaskNode* node) noexcept;
  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::jthread> threads_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<detail::TaskNode*> injection_;
  std::atomic<std::size_t> outstanding_{0};  // enqueued, not yet finished
  std::atomic<bool> stopping_{false};
};

template <typename F>
void ThreadPool::TaskGroup::run(F&& fn) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  pool_.enqueue(new GroupNode<std::decay_t<F>>(this, std::forward<F>(fn)));
}

/// Process-wide pool for the analysis helpers. Created on first use.
ThreadPool& global_pool();

}  // namespace fjs
