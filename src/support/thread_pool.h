// Fixed-size thread pool used to fan parameter sweeps and Monte-Carlo
// ratio experiments across cores.
//
// Design notes (shared-memory parallel idioms):
//  * one mutex + condition variable protecting a FIFO of type-erased tasks —
//    sweep tasks are coarse (an entire simulation each), so queue contention
//    is negligible and a lock-free deque would buy nothing;
//  * std::jthread workers joined in the destructor (RAII — no detached
//    threads, no leaks on exceptions);
//  * exceptions thrown by tasks are captured and rethrown to the waiter via
//    the returned std::future, never swallowed.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace fjs {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; the future carries the result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop(const std::stop_token& stop);

  std::mutex mutex_;
  std::condition_variable_any cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::jthread> workers_;
};

/// Process-wide pool for the analysis helpers. Created on first use.
ThreadPool& global_pool();

}  // namespace fjs
