// Small descriptive-statistics toolkit used by the analysis harness and
// benches to aggregate measured spans and competitive ratios.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fjs {

/// Streaming accumulator for count/mean/variance/min/max (Welford).
class Accumulator {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const Accumulator& other);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Full-sample summary with percentiles. Keeps the samples.
class Summary {
 public:
  void add(double x);
  void merge(const Summary& other);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolation percentile, q in [0, 100]. Requires samples.
  double percentile(double q) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

  /// One-line human-readable rendering: "n=.. mean=.. p50=.. p99=.. max=..".
  std::string to_string() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Equal-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const;
  std::size_t total() const { return total_; }
  double bucket_low(std::size_t bucket) const;
  double bucket_high(std::size_t bucket) const;

  /// ASCII rendering for example/bench output.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace fjs
