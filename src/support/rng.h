// Deterministic, splittable pseudo-random number generation for workload
// synthesis and randomized property tests.
//
// We implement xoshiro256** (Blackman & Vigna) seeded through SplitMix64.
// Rationale: std::mt19937 state is large and its seeding across std library
// implementations is easy to get subtly wrong for reproducibility; a small,
// well-specified generator makes every instance in the repo reproducible
// from a single 64-bit seed, including across platforms.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace fjs {

/// xoshiro256** generator with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator, so it can also be used with
/// <random> distributions, but the built-in helpers below are preferred:
/// they are exactly reproducible across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64 random bits.
  std::uint64_t operator()();

  /// Derives an independent child generator; the parent advances once.
  /// Used to give each parallel sweep task its own stream.
  Rng split();

  /// Current 256-bit generator position, for checkpoint/restore of
  /// randomized components (set_state resumes the exact stream).
  std::array<std::uint64_t, 4> state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& s) { state_ = s; }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi). Requires lo < hi.
  double uniform_real(double lo, double hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Exponential variate with the given rate (mean 1/rate). rate > 0.
  double exponential(double rate);

  /// Standard normal variate (Box–Muller, stateless variant).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal variate: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Pareto variate with scale x_m > 0 and shape alpha > 0, truncated to
  /// [x_m, cap]. Used for heavy-tailed job lengths.
  double pareto_truncated(double x_m, double alpha, double cap);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace fjs
