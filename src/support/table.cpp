#include "support/table.h"

#include <algorithm>
#include <sstream>

#include "support/assert.h"
#include "support/string_util.h"

namespace fjs {
namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) {
    return false;
  }
  std::size_t i = (cell[0] == '-' || cell[0] == '+') ? 1 : 0;
  bool digit_seen = false;
  for (; i < cell.size(); ++i) {
    const char c = cell[i];
    if (c >= '0' && c <= '9') {
      digit_seen = true;
    } else if (c != '.' && c != 'e' && c != 'E' && c != '-' && c != '+') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  FJS_REQUIRE(!header_.empty(), "table: header must be non-empty");
}

void Table::add_row(std::vector<std::string> cells) {
  FJS_REQUIRE(cells.size() == header_.size(),
              "table: row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::vector<double>& cells, int decimals) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (const double v : cells) {
    formatted.push_back(format_double(v, decimals));
  }
  add_row(std::move(formatted));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) {
      os << "  ";
    }
    os << pad_right(header_[c], widths[c]);
  }
  os << '\n';
  std::size_t total = 0;
  for (const std::size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        os << "  ";
      }
      os << (looks_numeric(row[c]) ? pad_left(row[c], widths[c])
                                   : pad_right(row[c], widths[c]));
    }
    os << '\n';
  }
  return os.str();
}

std::string Table::render_csv() const {
  std::ostringstream os;
  os << join(header_, ",") << '\n';
  for (const auto& row : rows_) {
    os << join(row, ",") << '\n';
  }
  return os.str();
}

}  // namespace fjs
