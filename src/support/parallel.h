// parallel_for / parallel_map over index ranges, built on ThreadPool.
//
// Work is split into static contiguous chunks (one per worker by default):
// sweep iterations have similar cost, so static partitioning avoids
// queue traffic without load-imbalance risk. Results are written to
// pre-sized slots, so the output order is deterministic and independent of
// the thread count — the property the serial-vs-parallel tests pin down.
#pragma once

#include <cstddef>
#include <future>
#include <vector>

#include "support/assert.h"
#include "support/thread_pool.h"

namespace fjs {

/// Invokes fn(i) for every i in [0, count) using the given pool.
/// Rethrows the first task exception.
template <typename F>
void parallel_for(ThreadPool& pool, std::size_t count, F&& fn,
                  std::size_t min_chunk = 1) {
  FJS_REQUIRE(min_chunk >= 1, "parallel_for: min_chunk must be >= 1");
  if (count == 0) {
    return;
  }
  const std::size_t workers = pool.thread_count();
  std::size_t chunk = (count + workers - 1) / workers;
  chunk = std::max(chunk, min_chunk);
  std::vector<std::future<void>> futures;
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, count);
    futures.push_back(pool.submit([&fn, begin, end]() {
      for (std::size_t i = begin; i < end; ++i) {
        fn(i);
      }
    }));
  }
  for (auto& f : futures) {
    f.get();
  }
}

/// Serial fallback with the same signature (thread count 1 semantics).
template <typename F>
void serial_for(std::size_t count, F&& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    fn(i);
  }
}

/// Maps fn over [0, count) into a vector, preserving index order.
template <typename F>
auto parallel_map(ThreadPool& pool, std::size_t count, F&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> out(count);
  parallel_for(pool, count, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Order-independent reduction: maps fn over [0, count) and combines the
/// per-index results with `combine` into `init`. The combine step runs
/// serially over index order, so the result is deterministic.
template <typename R, typename F, typename C>
R parallel_reduce(ThreadPool& pool, std::size_t count, R init, F&& fn,
                  C&& combine) {
  auto mapped = parallel_map(pool, count, std::forward<F>(fn));
  R acc = std::move(init);
  for (auto& value : mapped) {
    acc = combine(std::move(acc), std::move(value));
  }
  return acc;
}

}  // namespace fjs
