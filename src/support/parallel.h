// parallel_for / parallel_map over index ranges, built on the pool's
// TaskGroup (work-stealing with helping waits, so these nest freely on a
// single pool -- an outer parallel_for's body may itself call parallel_for
// on the same pool without deadlock).
//
// Two chunking policies:
//  * kStatic — contiguous chunks, one per worker. Right for sweeps whose
//    iterations cost about the same: no queue traffic, no shared counter.
//  * kDynamic — workers pull chunks from a shared atomic counter, so an
//    expensive item (a slow annealing case, a pathological instance) does
//    not leave the rest of its static chunk stranded behind it.
// Either way results are written to pre-sized slots keyed by index, so the
// output is deterministic and independent of thread count and policy —
// the property the serial-vs-parallel tests pin down.
//
// Exceptions: the first exception thrown by any chunk — including one
// stolen by another worker — is rethrown exactly once from the call;
// remaining chunks still run to completion first.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <vector>

#include "support/assert.h"
#include "support/thread_pool.h"

namespace fjs {

/// How parallel_for splits [0, count) across workers.
enum class ChunkPolicy {
  kStatic,   ///< contiguous chunks fixed up front (one per worker)
  kDynamic,  ///< workers claim `min_chunk`-sized chunks from an atomic counter
};

/// Invokes fn(i) for every i in [0, count) using the given pool. The
/// calling thread helps execute chunks while waiting. Rethrows the first
/// task exception.
template <typename F>
void parallel_for(ThreadPool& pool, std::size_t count, F&& fn,
                  std::size_t min_chunk = 1,
                  ChunkPolicy policy = ChunkPolicy::kStatic) {
  FJS_REQUIRE(min_chunk >= 1, "parallel_for: min_chunk must be >= 1");
  if (count == 0) {
    return;
  }
  const std::size_t workers = pool.thread_count();
  ThreadPool::TaskGroup group(pool);
  if (policy == ChunkPolicy::kDynamic) {
    // Shared work counter; stack-local is safe because group.wait()
    // returns only after every spawned task finished.
    std::atomic<std::size_t> next{0};
    const std::size_t tasks =
        std::min(workers + 1, (count + min_chunk - 1) / min_chunk);
    for (std::size_t w = 0; w < tasks; ++w) {
      group.run([&fn, &next, count, min_chunk]() {
        for (;;) {
          const std::size_t begin =
              next.fetch_add(min_chunk, std::memory_order_relaxed);
          if (begin >= count) {
            return;
          }
          const std::size_t end = std::min(begin + min_chunk, count);
          for (std::size_t i = begin; i < end; ++i) {
            fn(i);
          }
        }
      });
    }
    group.wait();
    return;
  }
  std::size_t chunk = (count + workers - 1) / workers;
  chunk = std::max(chunk, min_chunk);
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, count);
    group.run([&fn, begin, end]() {
      for (std::size_t i = begin; i < end; ++i) {
        fn(i);
      }
    });
  }
  group.wait();
}

/// Serial fallback with the same signature (thread count 1 semantics).
template <typename F>
void serial_for(std::size_t count, F&& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    fn(i);
  }
}

/// Maps fn over [0, count) into a vector, preserving index order.
template <typename F>
auto parallel_map(ThreadPool& pool, std::size_t count, F&& fn,
                  ChunkPolicy policy = ChunkPolicy::kStatic)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> out(count);
  parallel_for(pool, count, [&](std::size_t i) { out[i] = fn(i); }, 1, policy);
  return out;
}

/// Order-independent reduction: maps fn over [0, count) and combines the
/// per-index results with `combine` into `init`. The combine step runs
/// serially over index order, so the result is deterministic.
template <typename R, typename F, typename C>
R parallel_reduce(ThreadPool& pool, std::size_t count, R init, F&& fn,
                  C&& combine, ChunkPolicy policy = ChunkPolicy::kStatic) {
  auto mapped = parallel_map(pool, count, std::forward<F>(fn), policy);
  R acc = std::move(init);
  for (auto& value : mapped) {
    acc = combine(std::move(acc), std::move(value));
  }
  return acc;
}

}  // namespace fjs
