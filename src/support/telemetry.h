// Telemetry: process-wide counters, log-bucketed histograms, scoped
// timers and a Chrome-tracing event recorder, built for hot paths.
//
// Design constraints (see docs/OBSERVABILITY.md for the catalog):
//
//  * Zero steady-state allocations. Each thread gets one fixed-size
//    block of atomic cells, allocated on that thread's first metric
//    touch (a warm-up cost, bracketed away by the FJS_COUNT_ALLOCS
//    gate exactly like the engine workspaces). After that, a counter
//    bump is a single relaxed fetch_add on a thread-owned cell.
//  * Lock-free on the hot path. The registry mutex is taken only on
//    metric registration (static initialization), thread first-touch /
//    exit, snapshotting, and trace export — never per increment.
//  * Deterministic snapshots. Metrics are tagged with a Stability:
//    kDeterministic metrics (events simulated, prefix-cache hits, ...)
//    depend only on the workload and are byte-stable across `--jobs 1`
//    runs of a deterministic workload; kTiming metrics (steals,
//    helping-wait spins, latencies) vary run to run and are excluded
//    from stable artifacts like the manifest's telemetry block.
//  * Compiles to nothing. -DFJS_TELEMETRY=OFF removes the define
//    FJS_TELEMETRY_ENABLED and every class below becomes an empty
//    shell whose members are constexpr no-ops; snapshots come back
//    empty and trace export yields an empty traceEvents array. The E9
//    overhead benchmark pins the enabled-path cost.
//
// Usage: define metrics at namespace scope in the instrumented .cpp —
//
//   static telemetry::Counter g_hits{"portfolio.prefix_hits",
//                                    telemetry::Stability::kDeterministic};
//   ...
//   g_hits.add(1);
//
// and read them back with telemetry::capture() / telemetry::delta().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/json.h"

namespace fjs::telemetry {

/// How a metric behaves across repeated runs of the same workload.
enum class Stability {
  kDeterministic,  // function of the workload alone (under --jobs 1)
  kTiming,         // scheduling/timing dependent; excluded from manifests
};

/// Number of log2 buckets in a histogram: bucket i counts values v with
/// bit_width(v) == i, i.e. bucket 0 is {0}, bucket 1 is {1}, bucket 2 is
/// {2,3}, and so on up to bucket 64 for values with the top bit set.
inline constexpr std::size_t kHistogramBuckets = 65;

/// True when the build compiled the telemetry layer in.
constexpr bool enabled() noexcept {
#ifdef FJS_TELEMETRY_ENABLED
  return true;
#else
  return false;
#endif
}

#ifdef FJS_TELEMETRY_ENABLED

/// A named monotonic counter. Construct at namespace scope (registration
/// takes the registry mutex); add() is wait-free on the owning thread.
class Counter {
 public:
  Counter(const char* name, Stability stability);
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta) noexcept;
  void increment() noexcept { add(1); }

 private:
  std::uint32_t id_;
};

/// A named log2-bucketed histogram of non-negative values. record() is
/// wait-free on the owning thread; merged totals are order-independent.
class Histogram {
 public:
  Histogram(const char* name, Stability stability);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value) noexcept;

 private:
  std::uint32_t id_;
};

/// RAII wall-clock timer: records elapsed nanoseconds into a Histogram
/// on destruction. Timing metrics are inherently Stability::kTiming.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) noexcept;
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& hist_;
  std::int64_t start_ns_;
};

/// RAII trace span: emits one Chrome-tracing "X" (complete) event when
/// tracing is enabled, nothing otherwise (one relaxed load to check).
/// `name` and `category` must outlive the trace export (string literals,
/// or strings kept alive until trace_json() is rendered).
class TraceScope {
 public:
  TraceScope(const char* name, const char* category) noexcept;
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_;
  const char* category_;
  std::int64_t start_ns_;
  bool active_;
};

#else  // !FJS_TELEMETRY_ENABLED — every hot-path type is an empty shell.

class Counter {
 public:
  constexpr Counter(const char*, Stability) noexcept {}
  void add(std::uint64_t) noexcept {}
  void increment() noexcept {}
};

class Histogram {
 public:
  constexpr Histogram(const char*, Stability) noexcept {}
  void record(std::uint64_t) noexcept {}
};

class ScopedTimer {
 public:
  constexpr explicit ScopedTimer(Histogram&) noexcept {}
};

class TraceScope {
 public:
  constexpr TraceScope(const char*, const char*) noexcept {}
};

#endif  // FJS_TELEMETRY_ENABLED

/// Point-in-time value of one counter.
struct CounterValue {
  std::string name;
  Stability stability = Stability::kDeterministic;
  std::uint64_t value = 0;
};

/// Point-in-time value of one histogram (merged across threads).
struct HistogramValue {
  std::string name;
  Stability stability = Stability::kTiming;
  std::uint64_t count = 0;  // number of recorded values
  std::uint64_t sum = 0;    // sum of recorded values
  std::uint64_t max = 0;    // largest recorded value
  std::vector<std::uint64_t> buckets;  // kHistogramBuckets log2 buckets
};

/// A merged view of every registered metric, summed over live threads
/// and threads that have since exited. Sorted by name.
struct Snapshot {
  std::vector<CounterValue> counters;
  std::vector<HistogramValue> histograms;
};

/// Captures a merged snapshot of all metrics. Safe to call while other
/// threads keep incrementing (their in-flight updates land in a later
/// snapshot). Empty when the layer is compiled out.
Snapshot capture();

/// Per-name difference `end - begin` (metrics are monotonic; names
/// missing from `begin` count from zero). Used to attribute activity to
/// a bracketed region, e.g. one experiments run.
Snapshot delta(const Snapshot& begin, const Snapshot& end);

/// Renders a snapshot as a JSON object:
///   {"enabled": true,
///    "counters": {"engine.events": 123, ...},
///    "histograms": {"engine.heap_depth": {"count":..,"sum":..,"max":..,
///                                         "p50":..,"p99":..}, ...}}
/// With deterministic_only, kTiming metrics are dropped — the remaining
/// block is byte-stable for deterministic workloads under --jobs 1.
JsonValue snapshot_json(const Snapshot& snapshot, bool deterministic_only);

/// Turns the trace recorder on/off. While off (the default), TraceScope
/// and trace_instant() cost one relaxed load. Enabling mid-run starts
/// from the events already buffered; use reset_trace() for a clean slate.
void set_trace_enabled(bool enabled);
bool trace_enabled() noexcept;

/// Drops all buffered trace events (live threads and retired buffers).
void reset_trace();

/// Records a zero-duration instant event ("i" phase) when tracing is on.
void trace_instant(const char* name, const char* category) noexcept;

/// Renders buffered events as a Chrome-tracing JSON document:
///   {"displayTimeUnit":"ms","traceEvents":[{"name":..,"cat":..,"ph":"X",
///     "ts":<us>,"dur":<us>,"pid":1,"tid":<n>}, ...]}
/// Load it at chrome://tracing or https://ui.perfetto.dev. Call only
/// while no other thread is emitting events (e.g. after a TaskGroup
/// barrier); events are buffered per thread without locks.
JsonValue trace_json();

/// Number of trace events dropped because a thread's buffer filled up.
std::uint64_t trace_dropped_events();

}  // namespace fjs::telemetry
