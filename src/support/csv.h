// Minimal CSV writer so every bench can also dump machine-readable results
// (one file per experiment) alongside the console tables.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace fjs {

/// Streams rows to a CSV file. Cells containing commas/quotes/newlines are
/// quoted per RFC 4180.
///
/// Failures are loud: the constructor throws AssertionError if the file
/// cannot be opened, and every write_row throws on a stream error or a
/// row-width mismatch — a bench can never deliver a silently truncated
/// table.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row. Throws
  /// AssertionError if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row; throws AssertionError unless the width matches the
  /// header and the underlying stream accepted the write.
  void write_row(const std::vector<std::string>& cells);

  /// Convenience overload formatting doubles. Non-finite values are
  /// emitted with the canonical spellings "nan", "inf", "-inf".
  void write_row_numeric(const std::vector<double>& cells, int decimals = 6);

  /// Stream health; retained for callers that probe instead of catching.
  bool ok() const { return static_cast<bool>(out_); }

 private:
  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t width_;
  std::string path_;
};

}  // namespace fjs
