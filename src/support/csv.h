// Minimal CSV writer so every bench can also dump machine-readable results
// (one file per experiment) alongside the console tables.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace fjs {

/// Streams rows to a CSV file. Cells containing commas/quotes/newlines are
/// quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row; width must match the header.
  void write_row(const std::vector<std::string>& cells);

  /// Convenience overload formatting doubles.
  void write_row_numeric(const std::vector<double>& cells, int decimals = 6);

  bool ok() const { return static_cast<bool>(out_); }

 private:
  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t width_;
};

}  // namespace fjs
