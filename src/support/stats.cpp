#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/assert.h"

namespace fjs {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double Accumulator::mean() const {
  FJS_REQUIRE(count_ > 0, "mean of empty accumulator");
  return mean_;
}

double Accumulator::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  FJS_REQUIRE(count_ > 0, "min of empty accumulator");
  return min_;
}

double Accumulator::max() const {
  FJS_REQUIRE(count_ > 0, "max of empty accumulator");
  return max_;
}

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Summary::merge(const Summary& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

void Summary::ensure_sorted() const {
  if (!sorted_) {
    auto& mut = const_cast<std::vector<double>&>(samples_);
    std::sort(mut.begin(), mut.end());
    const_cast<bool&>(sorted_) = true;
  }
}

double Summary::mean() const {
  FJS_REQUIRE(!samples_.empty(), "mean of empty summary");
  double s = 0.0;
  for (const double x : samples_) {
    s += x;
  }
  return s / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double m = mean();
  double s = 0.0;
  for (const double x : samples_) {
    s += (x - m) * (x - m);
  }
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double Summary::min() const {
  FJS_REQUIRE(!samples_.empty(), "min of empty summary");
  ensure_sorted();
  return samples_.front();
}

double Summary::max() const {
  FJS_REQUIRE(!samples_.empty(), "max of empty summary");
  ensure_sorted();
  return samples_.back();
}

double Summary::percentile(double q) const {
  FJS_REQUIRE(!samples_.empty(), "percentile of empty summary");
  FJS_REQUIRE(q >= 0.0 && q <= 100.0, "percentile q outside [0,100]");
  ensure_sorted();
  if (samples_.size() == 1) {
    return samples_[0];
  }
  const double rank = q / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  if (empty()) {
    return "n=0";
  }
  os.precision(4);
  os << "n=" << count() << " mean=" << mean() << " p50=" << median()
     << " p99=" << percentile(99.0) << " max=" << max();
  return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  FJS_REQUIRE(lo < hi, "histogram: empty range");
  FJS_REQUIRE(buckets > 0, "histogram: need at least one bucket");
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bucket) const {
  FJS_REQUIRE(bucket < counts_.size(), "histogram: bucket out of range");
  return counts_[bucket];
}

double Histogram::bucket_low(std::size_t bucket) const {
  FJS_REQUIRE(bucket < counts_.size(), "histogram: bucket out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(bucket) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_high(std::size_t bucket) const {
  return bucket_low(bucket) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::ostringstream os;
  os.precision(4);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        counts_[b] * width / peak;
    os << '[' << bucket_low(b) << ", " << bucket_high(b) << ") "
       << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

}  // namespace fjs
