#include "support/csv.h"

#include "support/assert.h"
#include "support/string_util.h"

namespace fjs {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  FJS_REQUIRE(!header.empty(), "csv: header must be non-empty");
  write_row(header);
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) {
    return cell;
  }
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  FJS_REQUIRE(cells.size() == width_, "csv: row width does not match header");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row_numeric(const std::vector<double>& cells,
                                  int decimals) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (const double v : cells) {
    formatted.push_back(format_double(v, decimals));
  }
  write_row(formatted);
}

}  // namespace fjs
