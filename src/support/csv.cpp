#include "support/csv.h"

#include <cmath>

#include "support/assert.h"
#include "support/string_util.h"

namespace fjs {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  FJS_REQUIRE(!header.empty(), "csv: header must be non-empty");
  FJS_REQUIRE(out_.is_open(), "csv: cannot open '" + path + "' for writing");
  path_ = path;
  write_row(header);
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) {
    return cell;
  }
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  FJS_REQUIRE(cells.size() == width_,
              "csv: row width " + std::to_string(cells.size()) +
                  " does not match header width " + std::to_string(width_) +
                  " in '" + path_ + "'");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  // A bench that keeps streaming into a full disk or a closed pipe must
  // fail at the offending row, not deliver a silently truncated table.
  FJS_REQUIRE(ok(), "csv: write failed on '" + path_ + "'");
}

void CsvWriter::write_row_numeric(const std::vector<double>& cells,
                                  int decimals) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (const double v : cells) {
    // Canonical spellings for non-finite values; never printf's
    // platform-dependent "nan(0x...)" / "-nan" forms.
    if (std::isnan(v)) {
      formatted.emplace_back("nan");
    } else if (std::isinf(v)) {
      formatted.emplace_back(v > 0 ? "inf" : "-inf");
    } else {
      formatted.push_back(format_double(v, decimals));
    }
  }
  write_row(formatted);
}

}  // namespace fjs
