#include "support/thread_pool.h"

#include <algorithm>

namespace fjs {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back(
        [this](const std::stop_token& stop) { worker_loop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& w : workers_) {
    w.request_stop();
  }
  cv_.notify_all();
  // std::jthread joins on destruction; workers drain remaining tasks first
  // (see worker_loop), so every submitted future is satisfied.
}

void ThreadPool::worker_loop(const std::stop_token& stop) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, stop, [this] { return !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop requested and no work left
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace fjs
