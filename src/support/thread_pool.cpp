#include "support/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "support/telemetry.h"

namespace fjs {

namespace {

// Identifies the pool (and worker slot) owning the current thread, so
// enqueue() can push to the local deque and TaskGroup::wait() can help
// from inside a worker. Null on non-pool threads.
thread_local ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker = 0;

// Pool telemetry is inherently timing-dependent (which thread steals what
// varies run to run), so everything here is Stability::kTiming and stays
// out of deterministic artifacts like the manifest telemetry block.
telemetry::Counter g_tm_steals{"pool.steals", telemetry::Stability::kTiming};
telemetry::Counter g_tm_help_iterations{"pool.helping_wait_iterations",
                                        telemetry::Stability::kTiming};
telemetry::Histogram g_tm_injection_depth{"pool.injection_depth",
                                          telemetry::Stability::kTiming};

}  // namespace

namespace detail {

WorkDeque::~WorkDeque() {
  Ring* ring = ring_.load(std::memory_order_relaxed);
  while (ring != nullptr) {
    Ring* prev = ring->prev;
    delete ring;
    ring = prev;
  }
}

void WorkDeque::push(TaskNode* node) {
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  const std::int64_t t = top_.load(std::memory_order_seq_cst);
  Ring* ring = ring_.load(std::memory_order_seq_cst);
  if (b - t > static_cast<std::int64_t>(ring->capacity) - 1) {
    Ring* bigger = new Ring(ring->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->put(i, ring->get(i));
    }
    bigger->prev = ring;
    ring_.store(bigger, std::memory_order_seq_cst);
    ring = bigger;
  }
  ring->put(b, node);
  bottom_.store(b + 1, std::memory_order_seq_cst);
}

TaskNode* WorkDeque::pop() {
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst) - 1;
  Ring* ring = ring_.load(std::memory_order_seq_cst);
  bottom_.store(b, std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  TaskNode* node = nullptr;
  if (t <= b) {
    node = ring->get(b);
    if (t == b) {
      // Last element: race the thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1,
                                        std::memory_order_seq_cst)) {
        node = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_seq_cst);
    }
  } else {
    bottom_.store(b + 1, std::memory_order_seq_cst);  // deque was empty
  }
  return node;
}

TaskNode* WorkDeque::steal() {
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) {
    return nullptr;  // empty
  }
  Ring* ring = ring_.load(std::memory_order_seq_cst);
  TaskNode* node = ring->get(t);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst)) {
    return nullptr;  // lost the race; caller tries the next victim
  }
  return node;
}

}  // namespace detail

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_.store(true, std::memory_order_seq_cst);
  }
  cv_.notify_all();
  threads_.clear();  // jthread joins; workers exit only once outstanding_==0
}

void ThreadPool::enqueue(detail::TaskNode* node) {
  outstanding_.fetch_add(1, std::memory_order_seq_cst);
  if (tl_pool == this) {
    workers_[tl_worker]->deque.push(node);
    cv_.notify_one();  // a sleeper may steal it (idle poll also covers this)
    return;
  }
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    injection_.push_back(node);
    depth = injection_.size();
  }
  g_tm_injection_depth.record(depth);
  cv_.notify_one();
}

detail::TaskNode* ThreadPool::find_work() {
  const bool on_pool = (tl_pool == this);
  if (on_pool) {
    if (detail::TaskNode* node = workers_[tl_worker]->deque.pop()) {
      return node;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!injection_.empty()) {
      detail::TaskNode* node = injection_.front();
      injection_.pop_front();
      return node;
    }
  }
  const std::size_t n = workers_.size();
  const std::size_t self = on_pool ? tl_worker : 0;
  for (std::size_t k = 1; k <= n; ++k) {
    const std::size_t victim = (self + k) % n;
    if (on_pool && victim == tl_worker) {
      continue;
    }
    if (detail::TaskNode* node = workers_[victim]->deque.steal()) {
      g_tm_steals.increment();
      return node;
    }
  }
  return nullptr;
}

void ThreadPool::run_node(detail::TaskNode* node) noexcept {
  node->execute();
  delete node;
  if (outstanding_.fetch_sub(1, std::memory_order_seq_cst) == 1 &&
      stopping_.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lock(mutex_);
    cv_.notify_all();  // unblock workers waiting to shut down
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_worker = index;
  for (;;) {
    if (detail::TaskNode* node = find_work()) {
      run_node(node);
      continue;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_.load(std::memory_order_seq_cst) &&
        outstanding_.load(std::memory_order_seq_cst) == 0) {
      return;
    }
    // Sleep until injected work arrives or shutdown completes. The 1 ms
    // timeout bounds the latency of noticing work pushed to a sibling's
    // deque without a per-push broadcast.
    cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
      return !injection_.empty() ||
             (stopping_.load(std::memory_order_seq_cst) &&
              outstanding_.load(std::memory_order_seq_cst) == 0);
    });
  }
}

ThreadPool::TaskGroup::~TaskGroup() { drain(); }

void ThreadPool::TaskGroup::drain() noexcept {
  std::size_t spins = 0;
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (detail::TaskNode* node = pool_.find_work()) {
      pool_.run_node(node);
      spins = 0;
      continue;
    }
    // Our tasks are all in flight on other threads; give them the core.
    g_tm_help_iterations.increment();
    if (++spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

void ThreadPool::TaskGroup::wait() {
  drain();
  if (exception_) {
    std::exception_ptr ex = std::exchange(exception_, nullptr);
    std::rethrow_exception(ex);
  }
}

void ThreadPool::TaskGroup::capture(std::exception_ptr ex) noexcept {
  std::lock_guard<std::mutex> lock(exception_mutex_);
  if (!exception_) {
    exception_ = ex;
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace fjs
