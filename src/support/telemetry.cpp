#include "support/telemetry.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstring>
#include <mutex>

#include "support/assert.h"

namespace fjs::telemetry {

#ifdef FJS_TELEMETRY_ENABLED

namespace {

// Hard caps on the metric namespace. Metrics are defined statically at
// namespace scope in instrumented files, so these are compile-time-ish
// budgets, not runtime limits; registration past the cap fails loudly.
constexpr std::size_t kMaxCounters = 64;
constexpr std::size_t kMaxHistograms = 32;
// Per-thread trace buffer: one reserve() when a thread emits its first
// event while tracing is on; events past the cap are counted as dropped
// rather than reallocating mid-run.
constexpr std::size_t kTraceCapacity = 1 << 14;

std::int64_t now_ns() noexcept {
  // One process-wide epoch so per-thread timestamps share an origin.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

struct TraceEvent {
  const char* name;
  const char* category;
  std::int64_t ts_ns;
  std::int64_t dur_ns;  // < 0 for instant events
  std::uint32_t tid;
};

struct HistogramCells {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> max{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
};

// All of one thread's metric storage: owner-thread relaxed writes,
// snapshot-thread relaxed reads (under the registry mutex, which only
// serializes snapshots against registration/exit — not against writes;
// a concurrent increment simply lands in a later snapshot).
struct ThreadCells {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<HistogramCells, kMaxHistograms> histograms{};
  std::vector<TraceEvent> trace;
  std::uint32_t tid = 0;
};

struct HistogramTotals {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

struct MetricMeta {
  std::string name;
  Stability stability;
};

struct Registry {
  std::mutex mutex;
  std::vector<MetricMeta> counter_meta;
  std::vector<MetricMeta> histogram_meta;
  std::vector<ThreadCells*> live;
  // Totals flushed from threads that have exited.
  std::array<std::uint64_t, kMaxCounters> retired_counters{};
  std::array<HistogramTotals, kMaxHistograms> retired_histograms{};
  std::vector<TraceEvent> retired_trace;
  std::uint32_t next_tid = 1;
  std::atomic<bool> tracing{false};
  std::atomic<std::uint64_t> trace_dropped{0};
};

Registry& registry() {
  // Deliberately leaked: worker threads may exit during static
  // destruction (pool teardown) and their flush must find the registry
  // alive regardless of TU initialization order.
  static Registry* r = new Registry();
  return *r;
}

// Owns the calling thread's cells; flushes them into the retired
// aggregate on thread exit so no samples are ever lost.
struct ThreadHandle {
  ThreadCells* cells = nullptr;

  ~ThreadHandle() {
    if (cells == nullptr) return;
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (std::size_t i = 0; i < kMaxCounters; ++i) {
      reg.retired_counters[i] +=
          cells->counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < kMaxHistograms; ++i) {
      HistogramTotals& out = reg.retired_histograms[i];
      const HistogramCells& in = cells->histograms[i];
      out.count += in.count.load(std::memory_order_relaxed);
      out.sum += in.sum.load(std::memory_order_relaxed);
      out.max = std::max(out.max, in.max.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        out.buckets[b] += in.buckets[b].load(std::memory_order_relaxed);
      }
    }
    reg.retired_trace.insert(reg.retired_trace.end(), cells->trace.begin(),
                             cells->trace.end());
    reg.live.erase(std::find(reg.live.begin(), reg.live.end(), cells));
    delete cells;
  }
};

thread_local ThreadHandle tl_cells;

ThreadCells& thread_cells() {
  if (tl_cells.cells == nullptr) {
    // First metric touch on this thread: the one (warm-up) allocation.
    auto* cells = new ThreadCells();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    cells->tid = reg.next_tid++;
    reg.live.push_back(cells);
    tl_cells.cells = cells;
  }
  return *tl_cells.cells;
}

std::size_t bucket_of(std::uint64_t value) noexcept {
  return static_cast<std::size_t>(std::bit_width(value));
}

void push_trace_event(const TraceEvent& event) {
  ThreadCells& cells = thread_cells();
  if (cells.trace.capacity() == 0) cells.trace.reserve(kTraceCapacity);
  if (cells.trace.size() >= kTraceCapacity) {
    registry().trace_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent stamped = event;
  stamped.tid = cells.tid;
  cells.trace.push_back(stamped);
}

}  // namespace

Counter::Counter(const char* name, Stability stability) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  FJS_REQUIRE(reg.counter_meta.size() < kMaxCounters,
              "telemetry: counter budget exhausted (raise kMaxCounters)");
  id_ = static_cast<std::uint32_t>(reg.counter_meta.size());
  reg.counter_meta.push_back(MetricMeta{name, stability});
}

void Counter::add(std::uint64_t delta) noexcept {
  thread_cells().counters[id_].fetch_add(delta, std::memory_order_relaxed);
}

Histogram::Histogram(const char* name, Stability stability) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  FJS_REQUIRE(reg.histogram_meta.size() < kMaxHistograms,
              "telemetry: histogram budget exhausted (raise kMaxHistograms)");
  id_ = static_cast<std::uint32_t>(reg.histogram_meta.size());
  reg.histogram_meta.push_back(MetricMeta{name, stability});
}

void Histogram::record(std::uint64_t value) noexcept {
  HistogramCells& cells = thread_cells().histograms[id_];
  cells.count.fetch_add(1, std::memory_order_relaxed);
  cells.sum.fetch_add(value, std::memory_order_relaxed);
  // Owner-thread-only writes make a load+store max update race-free in
  // practice for the owning thread; concurrent snapshot reads may see
  // the old max, which lands in the next snapshot.
  if (value > cells.max.load(std::memory_order_relaxed)) {
    cells.max.store(value, std::memory_order_relaxed);
  }
  cells.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(Histogram& hist) noexcept
    : hist_(hist), start_ns_(now_ns()) {}

ScopedTimer::~ScopedTimer() {
  hist_.record(static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, now_ns() - start_ns_)));
}

TraceScope::TraceScope(const char* name, const char* category) noexcept
    : name_(name),
      category_(category),
      start_ns_(0),
      active_(trace_enabled()) {
  if (active_) start_ns_ = now_ns();
}

TraceScope::~TraceScope() {
  if (!active_) return;
  const std::int64_t end_ns = now_ns();
  push_trace_event(TraceEvent{.name = name_,
                              .category = category_,
                              .ts_ns = start_ns_,
                              .dur_ns = std::max<std::int64_t>(
                                  0, end_ns - start_ns_),
                              .tid = 0});
}

Snapshot capture() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);

  Snapshot snap;
  snap.counters.reserve(reg.counter_meta.size());
  for (std::size_t i = 0; i < reg.counter_meta.size(); ++i) {
    CounterValue value;
    value.name = reg.counter_meta[i].name;
    value.stability = reg.counter_meta[i].stability;
    value.value = reg.retired_counters[i];
    for (const ThreadCells* cells : reg.live) {
      value.value += cells->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters.push_back(std::move(value));
  }

  snap.histograms.reserve(reg.histogram_meta.size());
  for (std::size_t i = 0; i < reg.histogram_meta.size(); ++i) {
    HistogramValue value;
    value.name = reg.histogram_meta[i].name;
    value.stability = reg.histogram_meta[i].stability;
    value.buckets.assign(kHistogramBuckets, 0);
    const HistogramTotals& retired = reg.retired_histograms[i];
    value.count = retired.count;
    value.sum = retired.sum;
    value.max = retired.max;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      value.buckets[b] = retired.buckets[b];
    }
    for (const ThreadCells* cells : reg.live) {
      const HistogramCells& in = cells->histograms[i];
      value.count += in.count.load(std::memory_order_relaxed);
      value.sum += in.sum.load(std::memory_order_relaxed);
      value.max =
          std::max(value.max, in.max.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        value.buckets[b] += in.buckets[b].load(std::memory_order_relaxed);
      }
    }
    snap.histograms.push_back(std::move(value));
  }

  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void set_trace_enabled(bool enabled) {
  registry().tracing.store(enabled, std::memory_order_relaxed);
}

bool trace_enabled() noexcept {
  return registry().tracing.load(std::memory_order_relaxed);
}

void reset_trace() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.retired_trace.clear();
  for (ThreadCells* cells : reg.live) cells->trace.clear();
  reg.trace_dropped.store(0, std::memory_order_relaxed);
}

void trace_instant(const char* name, const char* category) noexcept {
  if (!trace_enabled()) return;
  push_trace_event(TraceEvent{.name = name,
                              .category = category,
                              .ts_ns = now_ns(),
                              .dur_ns = -1,
                              .tid = 0});
}

JsonValue trace_json() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<TraceEvent> events = reg.retired_trace;
  for (const ThreadCells* cells : reg.live) {
    events.insert(events.end(), cells->trace.begin(), cells->trace.end());
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.tid < b.tid;
            });

  JsonValue list = JsonValue::array();
  for (const TraceEvent& event : events) {
    JsonValue obj = JsonValue::object();
    obj.set("name", JsonValue::string(event.name));
    obj.set("cat", JsonValue::string(event.category));
    obj.set("ph", JsonValue::string(event.dur_ns < 0 ? "i" : "X"));
    obj.set("ts",
            JsonValue::number(static_cast<double>(event.ts_ns) / 1000.0));
    if (event.dur_ns >= 0) {
      obj.set("dur",
              JsonValue::number(static_cast<double>(event.dur_ns) / 1000.0));
    }
    obj.set("pid", JsonValue::number(1));
    obj.set("tid", JsonValue::number(static_cast<double>(event.tid)));
    list.push_back(std::move(obj));
  }
  JsonValue doc = JsonValue::object();
  doc.set("displayTimeUnit", JsonValue::string("ms"));
  doc.set("traceEvents", std::move(list));
  return doc;
}

std::uint64_t trace_dropped_events() {
  return registry().trace_dropped.load(std::memory_order_relaxed);
}

#else  // !FJS_TELEMETRY_ENABLED

Snapshot capture() { return Snapshot{}; }
void set_trace_enabled(bool) {}
bool trace_enabled() noexcept { return false; }
void reset_trace() {}
void trace_instant(const char*, const char*) noexcept {}

JsonValue trace_json() {
  JsonValue doc = JsonValue::object();
  doc.set("displayTimeUnit", JsonValue::string("ms"));
  doc.set("traceEvents", JsonValue::array());
  return doc;
}

std::uint64_t trace_dropped_events() { return 0; }

#endif  // FJS_TELEMETRY_ENABLED

Snapshot delta(const Snapshot& begin, const Snapshot& end) {
  Snapshot out;
  out.counters.reserve(end.counters.size());
  // Both snapshots are sorted by name and metrics are monotonic, so a
  // merge walk suffices; names absent from `begin` start from zero.
  std::size_t bi = 0;
  for (const CounterValue& ec : end.counters) {
    while (bi < begin.counters.size() && begin.counters[bi].name < ec.name) {
      ++bi;
    }
    CounterValue dc = ec;
    if (bi < begin.counters.size() && begin.counters[bi].name == ec.name) {
      dc.value = ec.value - std::min(ec.value, begin.counters[bi].value);
    }
    out.counters.push_back(std::move(dc));
  }
  bi = 0;
  for (const HistogramValue& eh : end.histograms) {
    while (bi < begin.histograms.size() &&
           begin.histograms[bi].name < eh.name) {
      ++bi;
    }
    HistogramValue dh = eh;
    if (bi < begin.histograms.size() &&
        begin.histograms[bi].name == eh.name) {
      const HistogramValue& bh = begin.histograms[bi];
      dh.count = eh.count - std::min(eh.count, bh.count);
      dh.sum = eh.sum - std::min(eh.sum, bh.sum);
      for (std::size_t b = 0; b < dh.buckets.size() && b < bh.buckets.size();
           ++b) {
        dh.buckets[b] -= std::min(dh.buckets[b], bh.buckets[b]);
      }
      // `max` is not invertible; report the end-of-region max (an upper
      // bound on the region's max) unless the region recorded nothing.
      if (dh.count == 0) dh.max = 0;
    }
    out.histograms.push_back(std::move(dh));
  }
  return out;
}

namespace {

// Lower bound of the value range covered by a log2 bucket.
std::uint64_t bucket_floor(std::size_t bucket) {
  if (bucket == 0) return 0;
  return std::uint64_t{1} << (bucket - 1);
}

// Approximate quantile: the floor of the bucket holding the q-quantile
// sample. Deterministic given deterministic buckets.
std::uint64_t bucket_quantile(const HistogramValue& hist, double q) {
  if (hist.count == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(hist.count - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
    seen += hist.buckets[b];
    if (seen > rank) return bucket_floor(b);
  }
  return hist.max;
}

}  // namespace

JsonValue snapshot_json(const Snapshot& snapshot, bool deterministic_only) {
  JsonValue counters = JsonValue::object();
  for (const CounterValue& counter : snapshot.counters) {
    if (deterministic_only && counter.stability != Stability::kDeterministic) {
      continue;
    }
    counters.set(counter.name,
                 JsonValue::number(static_cast<double>(counter.value)));
  }
  JsonValue histograms = JsonValue::object();
  for (const HistogramValue& hist : snapshot.histograms) {
    if (deterministic_only && hist.stability != Stability::kDeterministic) {
      continue;
    }
    JsonValue obj = JsonValue::object();
    obj.set("count", JsonValue::number(static_cast<double>(hist.count)));
    obj.set("sum", JsonValue::number(static_cast<double>(hist.sum)));
    obj.set("max", JsonValue::number(static_cast<double>(hist.max)));
    obj.set("p50", JsonValue::number(
                       static_cast<double>(bucket_quantile(hist, 0.50))));
    obj.set("p99", JsonValue::number(
                       static_cast<double>(bucket_quantile(hist, 0.99))));
    histograms.set(hist.name, std::move(obj));
  }
  JsonValue doc = JsonValue::object();
  doc.set("enabled", JsonValue::boolean(enabled()));
  doc.set("counters", std::move(counters));
  doc.set("histograms", std::move(histograms));
  return doc;
}

}  // namespace fjs::telemetry
