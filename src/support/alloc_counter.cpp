#include "support/alloc_counter.h"

#include <cstdlib>
#include <new>

namespace fjs {
namespace {

thread_local AllocCounts tl_counts;

}  // namespace

AllocCounts alloc_counts() noexcept { return tl_counts; }

void reset_alloc_counts() noexcept { tl_counts = AllocCounts{}; }

}  // namespace fjs

#ifdef FJS_COUNT_ALLOCS

// Replaced global allocation functions. Note the static-archive caveat:
// these definitions live in the same translation unit as alloc_counts(),
// so any binary that calls alloc_counts()/reset_alloc_counts() pulls this
// object out of libfjs_support.a and gets the counting hooks with it.
namespace {

void* counted_alloc(std::size_t size) {
  fjs::tl_counts.allocations += 1;
  fjs::tl_counts.bytes += size;
  if (void* p = std::malloc(size == 0 ? 1 : size)) {
    return p;
  }
  throw std::bad_alloc{};
}

void counted_free(void* ptr) noexcept {
  if (ptr != nullptr) {
    fjs::tl_counts.frees += 1;
    std::free(ptr);
  }
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  fjs::tl_counts.allocations += 1;
  fjs::tl_counts.bytes += size;
  const std::size_t a = static_cast<std::size_t>(align);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t padded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, padded == 0 ? a : padded)) {
    return p;
  }
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}

void operator delete(void* ptr) noexcept { counted_free(ptr); }
void operator delete[](void* ptr) noexcept { counted_free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { counted_free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { counted_free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  counted_free(ptr);
}

#endif  // FJS_COUNT_ALLOCS
