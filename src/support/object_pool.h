// Per-thread free-list of reusable heavyweight objects (engine workspaces,
// scratch buffers). acquire() hands out a recycled object when the calling
// thread has one, otherwise default-constructs; the returned Lease gives
// the object back on destruction. Because each thread owns its own list
// there is no locking and no cross-thread traffic -- an object released on
// thread A is only ever reused by thread A, which also keeps the objects'
// internal capacity "warm" for the workload that thread is running.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace fjs {

template <typename T>
class ObjectPool {
 public:
  /// RAII handle: owns a T borrowed from the pool, returns it on
  /// destruction. Movable, not copyable.
  class Lease {
   public:
    Lease() = default;
    Lease(ObjectPool* pool, std::unique_ptr<T> object)
        : pool_(pool), object_(std::move(object)) {}
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          object_(std::move(other.object_)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = std::exchange(other.pool_, nullptr);
        object_ = std::move(other.object_);
      }
      return *this;
    }
    ~Lease() { release(); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    T& operator*() const { return *object_; }
    T* operator->() const { return object_.get(); }
    T* get() const { return object_.get(); }
    explicit operator bool() const { return object_ != nullptr; }

   private:
    void release() {
      if (pool_ != nullptr && object_ != nullptr) {
        pool_->put_back(std::move(object_));
      }
      pool_ = nullptr;
      object_.reset();
    }

    ObjectPool* pool_ = nullptr;
    std::unique_ptr<T> object_;
  };

  /// Borrows an object from the calling thread's free list (or makes one).
  Lease acquire() {
    auto& list = free_list();
    if (!list.empty()) {
      std::unique_ptr<T> object = std::move(list.back());
      list.pop_back();
      return Lease(this, std::move(object));
    }
    return Lease(this, std::make_unique<T>());
  }

  /// Objects currently cached for the calling thread (test observability).
  std::size_t cached_count() const { return free_list().size(); }

 private:
  friend class Lease;

  void put_back(std::unique_ptr<T> object) {
    free_list().push_back(std::move(object));
  }

  static std::vector<std::unique_ptr<T>>& free_list() {
    thread_local std::vector<std::unique_ptr<T>> list;
    return list;
  }
};

}  // namespace fjs
