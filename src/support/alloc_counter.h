// Heap-allocation observability. When the build defines FJS_COUNT_ALLOCS
// (cmake -DFJS_COUNT_ALLOCS=ON), global operator new/delete are replaced
// with counting wrappers around malloc/free, and alloc_counts() reports
// per-thread totals. The counters are thread-local, so a benchmark or test
// can bracket a region and assert on exactly the allocations *it* made --
// the zero-steady-state-allocation guarantee of the span-only portfolio
// path is pinned this way (see tests/test_sim_portfolio.cpp and E9's
// allocs/sim column).
//
// Without the define, the hooks vanish and alloc_counts() returns zeros;
// alloc_counting_enabled() lets callers annotate output accordingly.
#pragma once

#include <cstddef>

namespace fjs {

struct AllocCounts {
  std::size_t allocations = 0;  // operator new calls on this thread
  std::size_t frees = 0;        // operator delete calls on this thread
  std::size_t bytes = 0;        // total bytes requested by this thread
};

/// Totals for the calling thread since thread start or the last reset.
AllocCounts alloc_counts() noexcept;

/// Zeroes the calling thread's counters.
void reset_alloc_counts() noexcept;

/// True when the build replaces operator new with the counting hook.
constexpr bool alloc_counting_enabled() noexcept {
#ifdef FJS_COUNT_ALLOCS
  return true;
#else
  return false;
#endif
}

}  // namespace fjs
