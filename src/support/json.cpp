#include "support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/assert.h"

namespace fjs {

JsonValue JsonValue::null() { return JsonValue(); }

JsonValue JsonValue::boolean(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  FJS_REQUIRE(kind_ == Kind::kBool, "JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  FJS_REQUIRE(kind_ == Kind::kNumber, "JsonValue: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  FJS_REQUIRE(kind_ == Kind::kString, "JsonValue: not a string");
  return string_;
}

std::size_t JsonValue::size() const {
  FJS_REQUIRE(kind_ == Kind::kArray || kind_ == Kind::kObject,
              "JsonValue: size() needs an array or object");
  return kind_ == Kind::kArray ? items_.size() : members_.size();
}

const JsonValue& JsonValue::at(std::size_t index) const {
  FJS_REQUIRE(kind_ == Kind::kArray, "JsonValue: not an array");
  FJS_REQUIRE(index < items_.size(), "JsonValue: array index out of range");
  return items_[index];
}

void JsonValue::push_back(JsonValue value) {
  FJS_REQUIRE(kind_ == Kind::kArray, "JsonValue: not an array");
  items_.push_back(std::move(value));
}

void JsonValue::set(const std::string& key, JsonValue value) {
  FJS_REQUIRE(kind_ == Kind::kObject, "JsonValue: not an object");
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

const JsonValue& JsonValue::get(const std::string& key) const {
  const JsonValue* found = find(key);
  FJS_REQUIRE(found != nullptr, "JsonValue: missing key '" + key + "'");
  return *found;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  FJS_REQUIRE(kind_ == Kind::kObject, "JsonValue: not an object");
  for (const auto& member : members_) {
    if (member.first == key) {
      return &member.second;
    }
  }
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  FJS_REQUIRE(kind_ == Kind::kObject, "JsonValue: not an object");
  return members_;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

// Shortest representation that parses back to the same double: try
// increasing precision until strtod round-trips. Integers under 2^53
// therefore print without an exponent or trailing ".0".
std::string format_number(double value) {
  FJS_REQUIRE(std::isfinite(value),
              "JsonValue: JSON cannot represent nan/inf");
  char buf[32];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) {
      break;
    }
  }
  return buf;
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int levels) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * levels), ' ');
    }
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += format_number(number_); break;
    case Kind::kString: out += json_escape(string_); break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        newline_pad(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        newline_pad(depth + 1);
        out += json_escape(members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) {
    out += '\n';
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    FJS_REQUIRE(pos_ == text_.size(),
                "JSON parse: trailing characters at offset " +
                    std::to_string(pos_));
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    FJS_REQUIRE(pos_ < text_.size(), "JSON parse: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    FJS_REQUIRE(peek() == c, std::string("JSON parse: expected '") + c +
                                 "' at offset " + std::to_string(pos_));
    ++pos_;
  }

  bool consume_literal(const std::string& literal) {
    if (text_.compare(pos_, literal.size(), literal) == 0) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::string(parse_string());
      case 't':
        FJS_REQUIRE(consume_literal("true"), "JSON parse: bad literal");
        return JsonValue::boolean(true);
      case 'f':
        FJS_REQUIRE(consume_literal("false"), "JSON parse: bad literal");
        return JsonValue::boolean(false);
      case 'n':
        FJS_REQUIRE(consume_literal("null"), "JSON parse: bad literal");
        return JsonValue::null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      const std::string key = (peek(), parse_string());
      expect(':');
      obj.set(key, parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      FJS_REQUIRE(pos_ < text_.size(), "JSON parse: dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          FJS_REQUIRE(pos_ + 4 <= text_.size(),
                      "JSON parse: truncated \\u escape");
          const unsigned long code =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // Only Latin-1 range is produced by our writer; encode as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          FJS_REQUIRE(false, std::string("JSON parse: bad escape '\\") + esc +
                                 "'");
      }
    }
    FJS_REQUIRE(false, "JSON parse: unterminated string");
    return out;  // unreachable
  }

  JsonValue parse_number() {
    skip_ws();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    FJS_REQUIRE(end != begin, "JSON parse: expected a value at offset " +
                                  std::to_string(pos_));
    pos_ += static_cast<std::size_t>(end - begin);
    return JsonValue::number(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).parse_document();
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  if (a.kind_ != b.kind_) {
    return false;
  }
  switch (a.kind_) {
    case JsonValue::Kind::kNull: return true;
    case JsonValue::Kind::kBool: return a.bool_ == b.bool_;
    case JsonValue::Kind::kNumber: return a.number_ == b.number_;
    case JsonValue::Kind::kString: return a.string_ == b.string_;
    case JsonValue::Kind::kArray: return a.items_ == b.items_;
    case JsonValue::Kind::kObject: return a.members_ == b.members_;
  }
  return false;
}

}  // namespace fjs
