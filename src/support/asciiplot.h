// Minimal ASCII line/scatter plot for bench output — visualizes the
// ratio-vs-parameter curves (e.g. the U-shape of the CDB/Profit bounds)
// without any plotting dependency.
#pragma once

#include <string>
#include <vector>

namespace fjs {

struct Series {
  std::string name;
  std::vector<double> ys;  ///< aligned with the shared xs
  char mark = '*';
};

struct AsciiPlotOptions {
  std::size_t width = 64;   ///< plot area columns
  std::size_t height = 16;  ///< plot area rows
  std::string x_label;
  std::string y_label;
  /// Use log scale on x (common for parameter sweeps).
  bool log_x = false;
};

/// Renders one or more series over shared x-coordinates. Each series is
/// drawn with its mark character; a legend line maps marks to names.
/// Requires at least one series, equal lengths, and >= 2 points.
std::string ascii_plot(const std::vector<double>& xs,
                       const std::vector<Series>& series,
                       AsciiPlotOptions options = {});

}  // namespace fjs
