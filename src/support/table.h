// Console table printer used by the bench harness to render the rows that
// stand in for the paper's (theorem-level) result tables.
#pragma once

#include <string>
#include <vector>

namespace fjs {

/// Column-aligned plain-text table. Usage:
///
///   Table t({"mu", "measured", "bound"});
///   t.add_row({"2", "2.93", "3"});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with format_double(., decimals).
  void add_row_numeric(const std::vector<double>& cells, int decimals = 4);

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return header_.size(); }

  /// Raw cell access, so structured writers (e.g. the experiment
  /// runner's CsvWriter emission) need not re-parse rendered text.
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders with a header underline; numeric-looking cells right-align.
  std::string render() const;

  /// Renders as CSV (no quoting — cells must not contain commas).
  std::string render_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fjs
