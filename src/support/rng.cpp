#include "support/rng.h"

#include <cmath>

#include "support/assert.h"

namespace fjs {
namespace {

constexpr std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
  // A zero state would be a fixed point; splitmix64 output of any seed is
  // never all-zero across four draws, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split() { return Rng((*this)()); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  FJS_REQUIRE(lo <= hi, "uniform_int: empty range");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform01() {
  // 53 random bits into [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  FJS_REQUIRE(lo < hi, "uniform_real: empty range");
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  FJS_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli: p outside [0,1]");
  return uniform01() < p;
}

double Rng::exponential(double rate) {
  FJS_REQUIRE(rate > 0.0, "exponential: rate must be positive");
  // -log(1 - U) with U in [0,1) avoids log(0).
  return -std::log1p(-uniform01()) / rate;
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; draws two uniforms per call, discarding the second variate
  // to keep the generator stateless w.r.t. cached values (reproducibility
  // after split()).
  const double u1 = 1.0 - uniform01();  // (0, 1]
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * 3.14159265358979323846 * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto_truncated(double x_m, double alpha, double cap) {
  FJS_REQUIRE(x_m > 0.0 && alpha > 0.0, "pareto: bad parameters");
  FJS_REQUIRE(cap > x_m, "pareto: cap must exceed scale");
  // Inverse CDF conditioned on X <= cap.
  const double f_cap = 1.0 - std::pow(x_m / cap, alpha);
  const double u = uniform01() * f_cap;
  return x_m / std::pow(1.0 - u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (const double w : weights) {
    FJS_REQUIRE(w >= 0.0, "weighted_index: negative weight");
    total += w;
  }
  FJS_REQUIRE(total > 0.0, "weighted_index: all weights zero");
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;  // floating-point edge: return last positive
}

}  // namespace fjs
