// Formatting helpers shared by the table/CSV writers and examples.
#pragma once

#include <string>
#include <vector>

namespace fjs {

/// Formats a double with the given number of significant-looking decimal
/// places, trimming trailing zeros ("3.1400" -> "3.14", "2.000" -> "2").
std::string format_double(double value, int max_decimals = 4);

/// Fixed-decimals formatting ("3.14159", 2 -> "3.14").
std::string format_fixed(double value, int decimals);

/// Joins parts with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& text, char delim);

/// Strips ASCII whitespace from both ends.
std::string trim(const std::string& text);

/// Left/right padding to a minimum width.
std::string pad_left(const std::string& text, std::size_t width);
std::string pad_right(const std::string& text, std::size_t width);

/// True if `text` starts with `prefix`.
bool starts_with(const std::string& text, const std::string& prefix);

}  // namespace fjs
