// Lightweight always-on assertion macros for libfjs.
//
// Simulation correctness depends on invariants that must hold in release
// builds too (event ordering, schedule validity), so these do not compile
// away under NDEBUG. Violations throw fjs::AssertionError so tests can
// observe them and long sweeps fail loudly instead of corrupting results.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fjs {

/// Thrown when an FJS_REQUIRE / FJS_CHECK invariant is violated.
class AssertionError : public std::logic_error {
 public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void assertion_failure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "FJS assertion failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw AssertionError(os.str());
}

}  // namespace detail
}  // namespace fjs

/// Validates a precondition on a public API boundary. Always enabled.
#define FJS_REQUIRE(expr, msg)                                             \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::fjs::detail::assertion_failure(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                      \
  } while (false)

/// Validates an internal invariant. Always enabled.
#define FJS_CHECK(expr, msg) FJS_REQUIRE(expr, msg)

/// Marks unreachable control flow.
#define FJS_UNREACHABLE(msg) \
  ::fjs::detail::assertion_failure("unreachable", __FILE__, __LINE__, (msg))

/// Debug-only assertion for hot-path bounds checks (InstanceView column
/// accessors, engine job lookups). Compiles to nothing under NDEBUG —
/// use FJS_REQUIRE instead wherever a violation must fail loudly in
/// release builds (API boundaries, invariants the results depend on).
#ifdef NDEBUG
#define FJS_DASSERT(expr, msg) \
  do {                         \
    (void)sizeof(!(expr));     \
  } while (false)
#else
#define FJS_DASSERT(expr, msg) FJS_REQUIRE(expr, msg)
#endif
