// 64-byte-aligned, tail-padded column storage for the SoA substrate.
//
// AlignedColumn<T> is the vector-lite backing store for JobTable's three
// Time columns (docs/DATA_MODEL.md, "Column alignment"). It differs from
// std::vector<T> in exactly the ways the SIMD kernels care about:
//
//  * data() is always 64-byte aligned (one cache line / one AVX-512 lane
//    group), so full-width vector loads on the owned path are aligned.
//  * capacity is rounded up to a 64-byte multiple of bytes and the slack
//    past size() is zero-initialized, so a full-width load that overruns
//    size() stays inside the allocation and reads deterministic bytes —
//    kernels never need an unaligned-tail scalar epilogue on owned
//    columns. (Kernels still mask tails, because InstanceView may wrap
//    foreign storage with no such guarantee; the padding makes the owned
//    path safe even for future unmasked-tail kernels and keeps sanitizer
//    runs quiet about the overread.)
//  * copy-assign reuses capacity (no shrink), matching the miner's
//    scratch-table reuse pattern (`scratch = parent` per batch) that the
//    zero-steady-state-allocation gate depends on.
//
// Only what JobTable needs is implemented; T must be trivially copyable
// (columns hold Time, an int64 wrapper).
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace fjs {

inline constexpr std::size_t kColumnAlignment = 64;

template <typename T>
class AlignedColumn {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedColumn holds trivially copyable lanes only");
  static_assert(kColumnAlignment % alignof(T) == 0,
                "column alignment must satisfy T's alignment");

 public:
  AlignedColumn() = default;

  AlignedColumn(const AlignedColumn& other) { *this = other; }

  AlignedColumn(AlignedColumn&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}

  AlignedColumn& operator=(const AlignedColumn& other) {
    if (this == &other) {
      return *this;
    }
    reserve(other.size_);
    if (other.size_ > 0) {
      std::memcpy(data_, other.data_, other.size_ * sizeof(T));
    }
    // Keep the padding contract: bytes in [size, capacity) stay zero.
    zero_tail(other.size_);
    size_ = other.size_;
    return *this;
  }

  AlignedColumn& operator=(AlignedColumn&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  ~AlignedColumn() { release(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  void reserve(std::size_t n) {
    if (n <= capacity_) {
      return;
    }
    // Geometric growth keeps push_back amortized O(1); round the byte
    // count up to a whole number of 64-byte blocks.
    std::size_t want = capacity_ == 0 ? 8 : capacity_ * 2;
    if (want < n) {
      want = n;
    }
    const std::size_t bytes =
        (want * sizeof(T) + kColumnAlignment - 1) / kColumnAlignment *
        kColumnAlignment;
    T* fresh = static_cast<T*>(
        ::operator new(bytes, std::align_val_t{kColumnAlignment}));
    // T is trivially copyable (asserted); all-zero bytes is the T{} the
    // columns use as padding. void* casts silence -Wclass-memaccess for
    // wrapper types that default non-trivially (e.g. Time's `= 0`).
    std::memset(static_cast<void*>(fresh), 0, bytes);
    if (size_ > 0) {
      std::memcpy(fresh, data_, size_ * sizeof(T));
    }
    release();
    data_ = fresh;
    capacity_ = bytes / sizeof(T);
  }

  void push_back(const T& value) {
    reserve(size_ + 1);
    data_[size_] = value;
    ++size_;
  }

  /// Shrinks logically; grows with zero-filled elements (the padding past
  /// the old size is already zero by the class invariant).
  void resize(std::size_t n) {
    if (n > size_) {
      reserve(n);
    } else {
      // Re-zero the abandoned suffix so the padding invariant holds.
      zero_tail(n);
    }
    size_ = n;
  }

  void clear() { resize(0); }

  void pop_back() {
    --size_;
    std::memset(static_cast<void*>(data_ + size_), 0, sizeof(T));
  }

 private:
  void zero_tail(std::size_t from) {
    if (data_ != nullptr && from < size_) {
      std::memset(static_cast<void*>(data_ + from), 0,
                  (size_ - from) * sizeof(T));
    }
  }

  void release() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{kColumnAlignment});
      data_ = nullptr;
    }
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace fjs
