#include "support/string_util.h"

#include <cctype>
#include <cstdio>

#include "support/assert.h"

namespace fjs {

std::string format_double(double value, int max_decimals) {
  FJS_REQUIRE(max_decimals >= 0 && max_decimals <= 17, "bad decimals");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", max_decimals, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') {
      s.pop_back();
    }
    if (!s.empty() && s.back() == '.') {
      s.pop_back();
    }
  }
  if (s == "-0") {
    s = "0";
  }
  return s;
}

std::string format_fixed(double value, int decimals) {
  FJS_REQUIRE(decimals >= 0 && decimals <= 17, "bad decimals");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return std::string(buf);
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(const std::string& text, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : text) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string trim(const std::string& text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b])) != 0) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])) != 0) {
    --e;
  }
  return text.substr(b, e - b);
}

std::string pad_left(const std::string& text, std::size_t width) {
  if (text.size() >= width) {
    return text;
  }
  return std::string(width - text.size(), ' ') + text;
}

std::string pad_right(const std::string& text, std::size_t width) {
  if (text.size() >= width) {
    return text;
  }
  return text + std::string(width - text.size(), ' ');
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace fjs
