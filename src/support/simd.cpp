// SIMD kernel implementations. This translation unit is the only one
// compiled with vector ISA flags (see src/support/CMakeLists.txt): the
// AVX2 bodies live behind __AVX2__, the SSE2 bodies behind __SSE2__ /
// x86-64 (where SSE2 is baseline), NEON behind __ARM_NEON, and the
// scalar bodies are always present. Keeping every intrinsic here — no
// inline vector code in headers — avoids the classic ODR hazard of the
// same inline function being compiled with different ISAs in different
// translation units.
//
// Layering: fjs_support must not link fjs_core, so this file uses only
// the header-inline parts of Time (ticks(), max(), min()) and re-derives
// the saturation rules on raw int64 lanes. Each kernel's scalar tier is
// the reference; the vector tiers are proven bit-identical in the
// comments below and pinned by tests + the simd-vs-scalar fuzz oracle.
#include "support/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <numeric>
#include <type_traits>

#include "support/telemetry.h"

#if defined(__x86_64__) || defined(_M_X64) || defined(__SSE2__)
#define FJS_SIMD_HAVE_SSE2 1
#include <immintrin.h>
#endif
#if defined(__AVX2__)
#define FJS_SIMD_HAVE_AVX2 1
#endif
#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#define FJS_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace fjs::simd {
namespace {

// The kernels load Time columns as raw little-endian int64 lanes.
static_assert(sizeof(Time) == sizeof(std::int64_t),
              "simd kernels assume Time is a bare int64 wrapper");
static_assert(std::is_trivially_copyable_v<Time>,
              "simd kernels memcpy Time lanes");

constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kI64Min = std::numeric_limits<std::int64_t>::min();

// Elements processed by vector-tier kernel calls. Deterministic (a pure
// function of the workload's column sizes), so stable artifacts may
// include it; it reads 0 when dispatch resolves to scalar.
telemetry::Counter g_tm_lanes_used{"simd.lanes_used",
                                   telemetry::Stability::kDeterministic};

std::atomic<bool> g_force_scalar{[] {
  const char* env = std::getenv("FJS_FORCE_SCALAR");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}()};

const std::int64_t* ticks_ptr(const Time* values) {
  // Time's layout is a single int64 (asserted above); viewing the column
  // as int64 lanes is a byte-level reinterpretation of the same objects.
  return reinterpret_cast<const std::int64_t*>(values);
}

// ---------------------------------------------------------------------------
// Scalar reference tier. Every vector tier must match these bit for bit.
// ---------------------------------------------------------------------------

MinMax minmax_scalar(const std::int64_t* v, std::size_t n) {
  MinMax r{v[0], v[0]};
  for (std::size_t i = 1; i < n; ++i) {
    r.min = std::min(r.min, v[i]);
    r.max = std::max(r.max, v[i]);
  }
  return r;
}

SatSum sat_sum_scalar(const std::int64_t* v, std::size_t n) {
  // Unsigned accumulation with a manual carry counter gives the exact
  // 128-bit total without __int128 (portability of the fallback).
  std::uint64_t sum = 0;
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t add = static_cast<std::uint64_t>(v[i]);
    sum += add;
    carry += (sum < add) ? 1U : 0U;
  }
  const bool over =
      carry > 0 || sum > static_cast<std::uint64_t>(kI64Max);
  return SatSum{over ? kI64Max : static_cast<std::int64_t>(sum), over};
}

MaxSum max_pairwise_scalar(const std::int64_t* a, const std::int64_t* b,
                           std::size_t n) {
  std::int64_t best = kI64Min;
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t s = 0;
    if (__builtin_add_overflow(a[i], b[i], &s)) {
      return MaxSum{0, true};
    }
    best = std::max(best, s);
  }
  return MaxSum{best, false};
}

void sat_sum_into_scalar(const std::int64_t* a, const std::int64_t* b,
                         std::int64_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t s = 0;
    if (__builtin_add_overflow(a[i], b[i], &s)) {
      // Matches Time::saturating_add: clamp direction follows rhs's sign
      // (rhs == 0 can never overflow).
      s = b[i] > 0 ? kI64Max : kI64Min;
    }
    out[i] = s;
  }
}

void sort_ids_comparison(const std::int64_t* keys, std::size_t n,
                         std::vector<JobId>& out) {
  out.resize(n);
  std::iota(out.begin(), out.end(), JobId{0});
  std::sort(out.begin(), out.end(), [keys](JobId x, JobId y) {
    if (keys[x] != keys[y]) {
      return keys[x] < keys[y];
    }
    return x < y;
  });
}

void lockstep_screen_scalar(const std::int64_t* a, const std::int64_t* d,
                            const std::int64_t* p, std::size_t rows,
                            std::size_t lanes, std::int64_t* min_a,
                            std::int64_t* max_dp, std::int64_t* max_p,
                            std::int64_t* sum_p) {
  for (std::size_t k = 0; k < lanes; ++k) {
    std::int64_t mn_a = kI64Max;
    std::int64_t mx_dp = kI64Min;
    std::int64_t mx_p = kI64Min;
    std::int64_t sm_p = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t idx = r * lanes + k;
      mn_a = std::min(mn_a, a[idx]);
      std::int64_t s = 0;
      if (__builtin_add_overflow(d[idx], p[idx], &s)) {
        s = p[idx] > 0 ? kI64Max : kI64Min;
      }
      mx_dp = std::max(mx_dp, s);
      mx_p = std::max(mx_p, p[idx]);
      if (__builtin_add_overflow(sm_p, p[idx], &sm_p)) {
        sm_p = p[idx] > 0 ? kI64Max : kI64Min;
      }
    }
    min_a[k] = mn_a;
    max_dp[k] = mx_dp;
    max_p[k] = mx_p;
    sum_p[k] = sm_p;
  }
}

// ---------------------------------------------------------------------------
// Radix ordering (vector tiers). LSD radix on sign-flipped u64 keys is a
// stable sort, and the ids enter in ascending order, so equal keys keep
// ascending ids — exactly the (key, id) total order the comparison sort
// realizes.
//
// Three regimes, picked from one aggregate prepass:
//  - already non-decreasing keys: the order IS iota (ties keep ascending
//    ids). Arrival columns out of the generator are sorted, so this is
//    the common case on real instances.
//  - all varying bytes in the low 32 bits (ticks below ~2^32 — any
//    horizon under ~4.3e3 units): pack (key_low32 << 32 | id) into ONE
//    u64 array and scatter that, halving pass traffic versus the split
//    key/id arrays. Only key bytes are radix passes; LSD stability
//    carries the ascending-id tie order through untouched.
//  - otherwise: split key/id arrays, skipping constant byte positions.
// ---------------------------------------------------------------------------

constexpr std::size_t kRadixCutoff = 64;

struct RadixScratch {
  std::vector<std::uint64_t> key0, key1;
  std::vector<JobId> id0, id1;
  std::uint32_t hist[8][256];
};

RadixScratch& radix_scratch() {
  thread_local RadixScratch scratch;
  return scratch;
}

constexpr std::uint64_t kSignFlip = 0x8000000000000000ULL;

// Packed regime: element = flipped-key low half in the high 32 bits, id in
// the low 32 bits. Ascending u64 order on the packed value is ascending
// (key, id) order restricted to the varying bytes; constant-byte skipping
// plus LSD stability make the result identical to the general path.
void sort_ids_radix_packed(const std::int64_t* keys, std::size_t n,
                           std::uint64_t varying, std::vector<JobId>& out) {
  RadixScratch& s = radix_scratch();
  s.key0.resize(n);
  s.key1.resize(n);
  std::memset(s.hist, 0, 4 * sizeof(s.hist[0]));

  for (std::size_t i = 0; i < n; ++i) {
    // Bit 63 is the only sign-flip bit, so the low 32 bits need no flip.
    const std::uint32_t k = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(keys[i]));
    s.key0[i] = (static_cast<std::uint64_t>(k) << 32) | i;
    ++s.hist[0][k & 0xFF];
    ++s.hist[1][(k >> 8) & 0xFF];
    ++s.hist[2][(k >> 16) & 0xFF];
    ++s.hist[3][k >> 24];
  }

  std::uint64_t* src = s.key0.data();
  std::uint64_t* dst = s.key1.data();
  for (std::size_t byte = 0; byte < 4; ++byte) {
    if (((varying >> (8 * byte)) & 0xFF) == 0) {
      continue;  // this byte is constant across the column
    }
    std::uint32_t* h = s.hist[byte];
    std::uint32_t offset = 0;
    for (std::size_t bucket = 0; bucket < 256; ++bucket) {
      const std::uint32_t count = h[bucket];
      h[bucket] = offset;
      offset += count;
    }
    const std::uint64_t shift = 32 + 8 * byte;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t packed = src[i];
      dst[h[(packed >> shift) & 0xFF]++] = packed;
    }
    std::swap(src, dst);
  }

  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<JobId>(src[i] & 0xFFFFFFFFu);
  }
}

void sort_ids_radix_split(const std::int64_t* keys, std::size_t n,
                          std::uint64_t varying, std::vector<JobId>& out) {
  RadixScratch& s = radix_scratch();
  s.key0.resize(n);
  s.key1.resize(n);
  s.id0.resize(n);
  s.id1.resize(n);
  std::memset(s.hist, 0, sizeof(s.hist));

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = static_cast<std::uint64_t>(keys[i]) ^ kSignFlip;
    s.key0[i] = k;
    s.id0[i] = static_cast<JobId>(i);
    for (std::size_t byte = 0; byte < 8; ++byte) {
      ++s.hist[byte][(k >> (8 * byte)) & 0xFF];
    }
  }

  std::uint64_t* key_src = s.key0.data();
  std::uint64_t* key_dst = s.key1.data();
  JobId* id_src = s.id0.data();
  JobId* id_dst = s.id1.data();
  for (std::size_t byte = 0; byte < 8; ++byte) {
    const std::uint64_t shift = 8 * byte;
    if (((varying >> shift) & 0xFF) == 0) {
      continue;  // this byte is constant across the column
    }
    std::uint32_t* h = s.hist[byte];
    std::uint32_t offset = 0;
    for (std::size_t bucket = 0; bucket < 256; ++bucket) {
      const std::uint32_t count = h[bucket];
      h[bucket] = offset;
      offset += count;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t k = key_src[i];
      const std::uint32_t pos = h[(k >> shift) & 0xFF]++;
      key_dst[pos] = k;
      id_dst[pos] = id_src[i];
    }
    std::swap(key_src, key_dst);
    std::swap(id_src, id_dst);
  }

  std::memcpy(out.data(), id_src, n * sizeof(JobId));
}

void sort_ids_radix(const std::int64_t* keys, std::size_t n,
                    std::vector<JobId>& out) {
  // One aggregate sweep decides the regime. No loop-carried scalar
  // dependences: sortedness compares each element to its predecessor
  // in place, so the whole prepass stays vectorizable.
  std::uint64_t or_agg = 0;
  std::uint64_t and_agg = ~std::uint64_t{0};
  std::size_t descents = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = static_cast<std::uint64_t>(keys[i]) ^ kSignFlip;
    or_agg |= k;
    and_agg &= k;
    descents += static_cast<std::size_t>(keys[i] < keys[i - (i != 0)]);
  }

  out.resize(n);
  if (descents == 0) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<JobId>(i);
    }
    return;
  }
  const std::uint64_t varying = or_agg ^ and_agg;
  if ((varying >> 32) == 0) {
    sort_ids_radix_packed(keys, n, varying, out);
  } else {
    sort_ids_radix_split(keys, n, varying, out);
  }
}

// ---------------------------------------------------------------------------
// SSE2 tier. Always compiled on x86-64 (SSE2 is ABI baseline) so the
// emulated 64-bit compare sequences stay under test on AVX2 hosts.
// ---------------------------------------------------------------------------

#if defined(FJS_SIMD_HAVE_SSE2)

// 64-bit signed a > b from 32-bit ops (sse2neon's classic sequence):
// high words decide via signed compare; equal high words fall back to the
// sign of (b - a), which for equal highs is the unsigned low-word borrow.
// The shuffle replicates each lane's high-word verdict across the lane.
inline __m128i sse2_cmpgt_epi64(__m128i a, __m128i b) {
  __m128i r = _mm_and_si128(_mm_cmpeq_epi32(a, b), _mm_sub_epi64(b, a));
  r = _mm_or_si128(r, _mm_cmpgt_epi32(a, b));
  return _mm_shuffle_epi32(_mm_srai_epi32(r, 31), _MM_SHUFFLE(3, 3, 1, 1));
}

inline __m128i sse2_blendv(__m128i a, __m128i b, __m128i mask) {
  // mask lanes are all-ones or all-zeros; plain bit select.
  return _mm_or_si128(_mm_and_si128(mask, b), _mm_andnot_si128(mask, a));
}

MinMax minmax_sse2(const std::int64_t* v, std::size_t n) {
  __m128i vmin = _mm_set1_epi64x(v[0]);
  __m128i vmax = vmin;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    vmin = sse2_blendv(vmin, x, sse2_cmpgt_epi64(vmin, x));
    vmax = sse2_blendv(vmax, x, sse2_cmpgt_epi64(x, vmax));
  }
  alignas(16) std::int64_t lanes[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), vmin);
  std::int64_t mn = std::min(lanes[0], lanes[1]);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), vmax);
  std::int64_t mx = std::max(lanes[0], lanes[1]);
  for (; i < n; ++i) {
    mn = std::min(mn, v[i]);
    mx = std::max(mx, v[i]);
  }
  g_tm_lanes_used.add(n);
  return MinMax{mn, mx};
}

SatSum sat_sum_sse2(const std::int64_t* v, std::size_t n) {
  const __m128i sign = _mm_set1_epi64x(kI64Min);
  __m128i sum = _mm_setzero_si128();
  __m128i carry = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    const __m128i ns = _mm_add_epi64(sum, x);
    // Unsigned ns < x  ⟺  signed (x ^ sign) > (ns ^ sign): a wrap.
    const __m128i wrap =
        sse2_cmpgt_epi64(_mm_xor_si128(x, sign), _mm_xor_si128(ns, sign));
    carry = _mm_sub_epi64(carry, wrap);  // mask is -1 per wrapped lane
    sum = ns;
  }
  alignas(16) std::uint64_t sums[2];
  alignas(16) std::uint64_t carries[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(sums), sum);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(carries), carry);
  std::uint64_t total = 0;
  std::uint64_t total_carry = 0;
  for (int lane = 0; lane < 2; ++lane) {
    total += sums[lane];
    total_carry += carries[lane] + (total < sums[lane] ? 1U : 0U);
  }
  for (; i < n; ++i) {
    const std::uint64_t add = static_cast<std::uint64_t>(v[i]);
    total += add;
    total_carry += (total < add) ? 1U : 0U;
  }
  const bool over =
      total_carry > 0 || total > static_cast<std::uint64_t>(kI64Max);
  g_tm_lanes_used.add(n);
  return SatSum{over ? kI64Max : static_cast<std::int64_t>(total), over};
}

MaxSum max_pairwise_sse2(const std::int64_t* a, const std::int64_t* b,
                         std::size_t n) {
  const __m128i zero = _mm_setzero_si128();
  __m128i vmax = _mm_set1_epi64x(kI64Min);
  __m128i any_ovf = zero;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i y = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i s = _mm_add_epi64(x, y);
    // Signed overflow ⟺ operands share a sign the sum lost:
    // ((x ^ s) & (y ^ s)) has the sign bit set.
    const __m128i ovf =
        _mm_and_si128(_mm_xor_si128(x, s), _mm_xor_si128(y, s));
    any_ovf = _mm_or_si128(any_ovf, ovf);
    vmax = sse2_blendv(vmax, s, sse2_cmpgt_epi64(s, vmax));
  }
  if (_mm_movemask_pd(_mm_castsi128_pd(any_ovf)) != 0) {
    return MaxSum{0, true};
  }
  alignas(16) std::int64_t lanes[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), vmax);
  std::int64_t best = std::max(lanes[0], lanes[1]);
  for (; i < n; ++i) {
    std::int64_t s = 0;
    if (__builtin_add_overflow(a[i], b[i], &s)) {
      return MaxSum{0, true};
    }
    best = std::max(best, s);
  }
  g_tm_lanes_used.add(n);
  return MaxSum{best, false};
}

void sat_sum_into_sse2(const std::int64_t* a, const std::int64_t* b,
                       std::int64_t* out, std::size_t n) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i vmax = _mm_set1_epi64x(kI64Max);
  const __m128i vmin = _mm_set1_epi64x(kI64Min);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i y = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i s = _mm_add_epi64(x, y);
    const __m128i ovf = _mm_srai_epi32(
        _mm_shuffle_epi32(
            _mm_and_si128(_mm_xor_si128(x, s), _mm_xor_si128(y, s)),
            _MM_SHUFFLE(3, 3, 1, 1)),
        31);
    const __m128i clamp = sse2_blendv(vmin, vmax, sse2_cmpgt_epi64(y, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     sse2_blendv(s, clamp, ovf));
  }
  if (i < n) {
    sat_sum_into_scalar(a + i, b + i, out + i, n - i);
  }
  g_tm_lanes_used.add(n);
}

void lockstep_screen_sse2(const std::int64_t* a, const std::int64_t* d,
                          const std::int64_t* p, std::size_t rows,
                          std::size_t lanes, std::int64_t* min_a,
                          std::int64_t* max_dp, std::int64_t* max_p,
                          std::int64_t* sum_p) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i vmax = _mm_set1_epi64x(kI64Max);
  const __m128i vmin = _mm_set1_epi64x(kI64Min);
  std::size_t k = 0;
  for (; k + 2 <= lanes; k += 2) {
    __m128i mn_a = vmax;
    __m128i mx_dp = vmin;
    __m128i mx_p = vmin;
    __m128i sm_p = zero;
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t idx = r * lanes + k;
      const __m128i va =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + idx));
      const __m128i vd =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + idx));
      const __m128i vp =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + idx));
      mn_a = sse2_blendv(mn_a, va, sse2_cmpgt_epi64(mn_a, va));
      const __m128i clamp =
          sse2_blendv(vmin, vmax, sse2_cmpgt_epi64(vp, zero));
      const __m128i s = _mm_add_epi64(vd, vp);
      const __m128i ovf = _mm_srai_epi32(
          _mm_shuffle_epi32(
              _mm_and_si128(_mm_xor_si128(vd, s), _mm_xor_si128(vp, s)),
              _MM_SHUFFLE(3, 3, 1, 1)),
          31);
      const __m128i dp = sse2_blendv(s, clamp, ovf);
      mx_dp = sse2_blendv(mx_dp, dp, sse2_cmpgt_epi64(dp, mx_dp));
      mx_p = sse2_blendv(mx_p, vp, sse2_cmpgt_epi64(vp, mx_p));
      const __m128i sp = _mm_add_epi64(sm_p, vp);
      const __m128i sp_ovf = _mm_srai_epi32(
          _mm_shuffle_epi32(
              _mm_and_si128(_mm_xor_si128(sm_p, sp), _mm_xor_si128(vp, sp)),
              _MM_SHUFFLE(3, 3, 1, 1)),
          31);
      sm_p = sse2_blendv(sp, clamp, sp_ovf);
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(min_a + k), mn_a);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(max_dp + k), mx_dp);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(max_p + k), mx_p);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sum_p + k), sm_p);
  }
  for (; k < lanes; ++k) {
    // Remaining lane (at most one): scalar over the same strided layout.
    std::int64_t mn_a = kI64Max;
    std::int64_t mx_dp = kI64Min;
    std::int64_t mx_p = kI64Min;
    std::int64_t sm_p = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t idx = r * lanes + k;
      mn_a = std::min(mn_a, a[idx]);
      std::int64_t s = 0;
      if (__builtin_add_overflow(d[idx], p[idx], &s)) {
        s = p[idx] > 0 ? kI64Max : kI64Min;
      }
      mx_dp = std::max(mx_dp, s);
      mx_p = std::max(mx_p, p[idx]);
      if (__builtin_add_overflow(sm_p, p[idx], &sm_p)) {
        sm_p = p[idx] > 0 ? kI64Max : kI64Min;
      }
    }
    min_a[k] = mn_a;
    max_dp[k] = mx_dp;
    max_p[k] = mx_p;
    sum_p[k] = sm_p;
  }
  g_tm_lanes_used.add(rows * lanes);
}

#endif  // FJS_SIMD_HAVE_SSE2

// ---------------------------------------------------------------------------
// AVX2 tier. Tails use maskload/maskstore (fault-suppressing) blended
// against neutral lanes, so no scalar epilogue and no reads past n even
// on foreign (non-JobTable) storage.
// ---------------------------------------------------------------------------

#if defined(FJS_SIMD_HAVE_AVX2)

inline __m256i avx2_tail_mask(std::size_t remaining) {
  // Lane l is enabled iff l < remaining (remaining in 1..3 when called).
  const __m256i lane_ids = _mm256_setr_epi64x(0, 1, 2, 3);
  return _mm256_cmpgt_epi64(
      _mm256_set1_epi64x(static_cast<std::int64_t>(remaining)), lane_ids);
}

inline __m256i avx2_masked_load(const std::int64_t* src, __m256i mask,
                                __m256i neutral) {
  const __m256i loaded =
      _mm256_maskload_epi64(reinterpret_cast<const long long*>(src), mask);
  return _mm256_blendv_epi8(neutral, loaded, mask);
}

MinMax minmax_avx2(const std::int64_t* v, std::size_t n) {
  __m256i vmin = _mm256_set1_epi64x(v[0]);
  __m256i vmax = vmin;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    vmin = _mm256_blendv_epi8(vmin, x, _mm256_cmpgt_epi64(vmin, x));
    vmax = _mm256_blendv_epi8(vmax, x, _mm256_cmpgt_epi64(x, vmax));
  }
  if (i < n) {
    const __m256i mask = avx2_tail_mask(n - i);
    const __m256i neutral = _mm256_set1_epi64x(v[0]);
    const __m256i x = avx2_masked_load(v + i, mask, neutral);
    vmin = _mm256_blendv_epi8(vmin, x, _mm256_cmpgt_epi64(vmin, x));
    vmax = _mm256_blendv_epi8(vmax, x, _mm256_cmpgt_epi64(x, vmax));
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), vmin);
  const std::int64_t mn = std::min(std::min(lanes[0], lanes[1]),
                                   std::min(lanes[2], lanes[3]));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), vmax);
  const std::int64_t mx = std::max(std::max(lanes[0], lanes[1]),
                                   std::max(lanes[2], lanes[3]));
  g_tm_lanes_used.add(n);
  return MinMax{mn, mx};
}

SatSum sat_sum_avx2(const std::int64_t* v, std::size_t n) {
  const __m256i sign = _mm256_set1_epi64x(kI64Min);
  __m256i sum = _mm256_setzero_si256();
  __m256i carry = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256i ns = _mm256_add_epi64(sum, x);
    const __m256i wrap = _mm256_cmpgt_epi64(_mm256_xor_si256(x, sign),
                                            _mm256_xor_si256(ns, sign));
    carry = _mm256_sub_epi64(carry, wrap);
    sum = ns;
  }
  if (i < n) {
    const __m256i mask = avx2_tail_mask(n - i);
    // Masked-off lanes load as zero: adding zero never wraps.
    const __m256i x = _mm256_maskload_epi64(
        reinterpret_cast<const long long*>(v + i), mask);
    const __m256i ns = _mm256_add_epi64(sum, x);
    const __m256i wrap = _mm256_cmpgt_epi64(_mm256_xor_si256(x, sign),
                                            _mm256_xor_si256(ns, sign));
    carry = _mm256_sub_epi64(carry, wrap);
    sum = ns;
  }
  alignas(32) std::uint64_t sums[4];
  alignas(32) std::uint64_t carries[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(sums), sum);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(carries), carry);
  std::uint64_t total = 0;
  std::uint64_t total_carry = 0;
  for (int lane = 0; lane < 4; ++lane) {
    total += sums[lane];
    total_carry += carries[lane] + (total < sums[lane] ? 1U : 0U);
  }
  const bool over =
      total_carry > 0 || total > static_cast<std::uint64_t>(kI64Max);
  g_tm_lanes_used.add(n);
  return SatSum{over ? kI64Max : static_cast<std::int64_t>(total), over};
}

MaxSum max_pairwise_avx2(const std::int64_t* a, const std::int64_t* b,
                         std::size_t n) {
  __m256i vmax = _mm256_set1_epi64x(kI64Min);
  __m256i any_ovf = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i s = _mm256_add_epi64(x, y);
    any_ovf = _mm256_or_si256(
        any_ovf, _mm256_and_si256(_mm256_xor_si256(x, s),
                                  _mm256_xor_si256(y, s)));
    vmax = _mm256_blendv_epi8(vmax, s, _mm256_cmpgt_epi64(s, vmax));
  }
  if (i < n) {
    const __m256i mask = avx2_tail_mask(n - i);
    const __m256i zero = _mm256_setzero_si256();
    // Masked lanes add 0 + 0 (no overflow) and blend to the kI64Min
    // neutral before the max.
    const __m256i x = avx2_masked_load(a + i, mask, zero);
    const __m256i y = avx2_masked_load(b + i, mask, zero);
    const __m256i s = _mm256_add_epi64(x, y);
    any_ovf = _mm256_or_si256(
        any_ovf, _mm256_and_si256(_mm256_xor_si256(x, s),
                                  _mm256_xor_si256(y, s)));
    const __m256i blended =
        _mm256_blendv_epi8(_mm256_set1_epi64x(kI64Min), s, mask);
    vmax = _mm256_blendv_epi8(vmax, blended,
                              _mm256_cmpgt_epi64(blended, vmax));
  }
  if (_mm256_movemask_pd(_mm256_castsi256_pd(any_ovf)) != 0) {
    return MaxSum{0, true};
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), vmax);
  g_tm_lanes_used.add(n);
  return MaxSum{std::max(std::max(lanes[0], lanes[1]),
                         std::max(lanes[2], lanes[3])),
                false};
}

void sat_sum_into_avx2(const std::int64_t* a, const std::int64_t* b,
                       std::int64_t* out, std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i vmax = _mm256_set1_epi64x(kI64Max);
  const __m256i vmin = _mm256_set1_epi64x(kI64Min);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i s = _mm256_add_epi64(x, y);
    const __m256i ovf_bits = _mm256_and_si256(_mm256_xor_si256(x, s),
                                              _mm256_xor_si256(y, s));
    const __m256i ovf = _mm256_cmpgt_epi64(zero, ovf_bits);
    const __m256i clamp =
        _mm256_blendv_epi8(vmin, vmax, _mm256_cmpgt_epi64(y, zero));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_blendv_epi8(s, clamp, ovf));
  }
  if (i < n) {
    const __m256i mask = avx2_tail_mask(n - i);
    const __m256i x = avx2_masked_load(a + i, mask, zero);
    const __m256i y = avx2_masked_load(b + i, mask, zero);
    const __m256i s = _mm256_add_epi64(x, y);
    const __m256i ovf_bits = _mm256_and_si256(_mm256_xor_si256(x, s),
                                              _mm256_xor_si256(y, s));
    const __m256i ovf = _mm256_cmpgt_epi64(zero, ovf_bits);
    const __m256i clamp =
        _mm256_blendv_epi8(vmin, vmax, _mm256_cmpgt_epi64(y, zero));
    _mm256_maskstore_epi64(reinterpret_cast<long long*>(out + i), mask,
                           _mm256_blendv_epi8(s, clamp, ovf));
  }
  g_tm_lanes_used.add(n);
}

void lockstep_screen_avx2(const std::int64_t* a, const std::int64_t* d,
                          const std::int64_t* p, std::size_t rows,
                          std::size_t lanes, std::int64_t* min_a,
                          std::int64_t* max_dp, std::int64_t* max_p,
                          std::int64_t* sum_p) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i vmax = _mm256_set1_epi64x(kI64Max);
  const __m256i vmin = _mm256_set1_epi64x(kI64Min);
  for (std::size_t k = 0; k < lanes; k += 4) {
    const std::size_t width = std::min<std::size_t>(4, lanes - k);
    const bool full = width == 4;
    const __m256i mask = full ? _mm256_set1_epi64x(-1) : avx2_tail_mask(width);
    __m256i mn_a = vmax;
    __m256i mx_dp = vmin;
    __m256i mx_p = vmin;
    __m256i sm_p = zero;
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t idx = r * lanes + k;
      __m256i va, vd, vp;
      if (full) {
        va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + idx));
        vd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + idx));
        vp = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + idx));
      } else {
        va = avx2_masked_load(a + idx, mask, vmax);   // neutral for min
        vd = avx2_masked_load(d + idx, mask, vmin);   // d+0 stays neutral-ish
        vp = avx2_masked_load(p + idx, mask, zero);   // neutral for max/sum
      }
      mn_a = _mm256_blendv_epi8(mn_a, va, _mm256_cmpgt_epi64(mn_a, va));
      const __m256i clamp =
          _mm256_blendv_epi8(vmin, vmax, _mm256_cmpgt_epi64(vp, zero));
      const __m256i s = _mm256_add_epi64(vd, vp);
      const __m256i ovf = _mm256_cmpgt_epi64(
          zero, _mm256_and_si256(_mm256_xor_si256(vd, s),
                                 _mm256_xor_si256(vp, s)));
      const __m256i dp = _mm256_blendv_epi8(s, clamp, ovf);
      mx_dp = _mm256_blendv_epi8(mx_dp, dp, _mm256_cmpgt_epi64(dp, mx_dp));
      mx_p = _mm256_blendv_epi8(mx_p, vp, _mm256_cmpgt_epi64(vp, mx_p));
      const __m256i sp = _mm256_add_epi64(sm_p, vp);
      const __m256i sp_ovf = _mm256_cmpgt_epi64(
          zero, _mm256_and_si256(_mm256_xor_si256(sm_p, sp),
                                 _mm256_xor_si256(vp, sp)));
      sm_p = _mm256_blendv_epi8(sp, clamp, sp_ovf);
    }
    if (full) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(min_a + k), mn_a);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(max_dp + k), mx_dp);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(max_p + k), mx_p);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(sum_p + k), sm_p);
    } else {
      _mm256_maskstore_epi64(reinterpret_cast<long long*>(min_a + k), mask,
                             mn_a);
      _mm256_maskstore_epi64(reinterpret_cast<long long*>(max_dp + k), mask,
                             mx_dp);
      _mm256_maskstore_epi64(reinterpret_cast<long long*>(max_p + k), mask,
                             mx_p);
      _mm256_maskstore_epi64(reinterpret_cast<long long*>(sum_p + k), mask,
                             sm_p);
    }
  }
  g_tm_lanes_used.add(rows * lanes);
}

#endif  // FJS_SIMD_HAVE_AVX2

// ---------------------------------------------------------------------------
// NEON tier (aarch64). Same structure as SSE2 with native 64-bit
// compares; untested on this x86 CI but kept honest by the same
// per-tier differential tests wherever it does compile.
// ---------------------------------------------------------------------------

#if defined(FJS_SIMD_HAVE_NEON)

MinMax minmax_neon(const std::int64_t* v, std::size_t n) {
  int64x2_t vmin = vdupq_n_s64(v[0]);
  int64x2_t vmax = vmin;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t x = vld1q_s64(v + i);
    vmin = vbslq_s64(vcgtq_s64(vmin, x), x, vmin);
    vmax = vbslq_s64(vcgtq_s64(x, vmax), x, vmax);
  }
  std::int64_t mn = std::min(vgetq_lane_s64(vmin, 0), vgetq_lane_s64(vmin, 1));
  std::int64_t mx = std::max(vgetq_lane_s64(vmax, 0), vgetq_lane_s64(vmax, 1));
  for (; i < n; ++i) {
    mn = std::min(mn, v[i]);
    mx = std::max(mx, v[i]);
  }
  g_tm_lanes_used.add(n);
  return MinMax{mn, mx};
}

SatSum sat_sum_neon(const std::int64_t* v, std::size_t n) {
  uint64x2_t sum = vdupq_n_u64(0);
  uint64x2_t carry = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t x = vreinterpretq_u64_s64(vld1q_s64(v + i));
    const uint64x2_t ns = vaddq_u64(sum, x);
    const uint64x2_t wrap = vcltq_u64(ns, x);  // unsigned wrap mask
    carry = vsubq_u64(carry, wrap);
    sum = ns;
  }
  std::uint64_t total = 0;
  std::uint64_t total_carry = 0;
  const std::uint64_t sums[2] = {vgetq_lane_u64(sum, 0), vgetq_lane_u64(sum, 1)};
  const std::uint64_t carries[2] = {vgetq_lane_u64(carry, 0),
                                    vgetq_lane_u64(carry, 1)};
  for (int lane = 0; lane < 2; ++lane) {
    total += sums[lane];
    total_carry += carries[lane] + (total < sums[lane] ? 1U : 0U);
  }
  for (; i < n; ++i) {
    const std::uint64_t add = static_cast<std::uint64_t>(v[i]);
    total += add;
    total_carry += (total < add) ? 1U : 0U;
  }
  const bool over =
      total_carry > 0 || total > static_cast<std::uint64_t>(kI64Max);
  g_tm_lanes_used.add(n);
  return SatSum{over ? kI64Max : static_cast<std::int64_t>(total), over};
}

#endif  // FJS_SIMD_HAVE_NEON

[[maybe_unused]] Tier best_compiled_tier() {
#if defined(FJS_SIMD_HAVE_AVX2)
  return Tier::kAvx2;
#elif defined(FJS_SIMD_HAVE_NEON)
  return Tier::kNeon;
#elif defined(FJS_SIMD_HAVE_SSE2)
  return Tier::kSse2;
#else
  return Tier::kScalar;
#endif
}

}  // namespace

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse2:
      return "sse2";
    case Tier::kNeon:
      return "neon";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const std::vector<Tier>& compiled_tiers() {
  static const std::vector<Tier> tiers = [] {
    std::vector<Tier> t{Tier::kScalar};
#if defined(FJS_SIMD_HAVE_SSE2)
    t.push_back(Tier::kSse2);
#endif
#if defined(FJS_SIMD_HAVE_NEON)
    t.push_back(Tier::kNeon);
#endif
#if defined(FJS_SIMD_HAVE_AVX2)
    t.push_back(Tier::kAvx2);
#endif
    return t;
  }();
  return tiers;
}

Tier active_tier() {
#if defined(FJS_SIMD_ENABLED)
  if (g_force_scalar.load(std::memory_order_relaxed)) {
    return Tier::kScalar;
  }
  return best_compiled_tier();
#else
  return Tier::kScalar;
#endif
}

void set_force_scalar(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

bool force_scalar() {
  return g_force_scalar.load(std::memory_order_relaxed);
}

MinMax minmax_ticks(const Time* values, std::size_t n) {
  return minmax_ticks(values, n, active_tier());
}

MinMax minmax_ticks(const Time* values, std::size_t n, Tier tier) {
  const std::int64_t* v = ticks_ptr(values);
  switch (tier) {
#if defined(FJS_SIMD_HAVE_AVX2)
    case Tier::kAvx2:
      return minmax_avx2(v, n);
#endif
#if defined(FJS_SIMD_HAVE_SSE2)
    case Tier::kSse2:
      return minmax_sse2(v, n);
#endif
#if defined(FJS_SIMD_HAVE_NEON)
    case Tier::kNeon:
      return minmax_neon(v, n);
#endif
    default:
      return minmax_scalar(v, n);
  }
}

SatSum sum_saturating_nonneg(const Time* values, std::size_t n) {
  return sum_saturating_nonneg(values, n, active_tier());
}

SatSum sum_saturating_nonneg(const Time* values, std::size_t n, Tier tier) {
  const std::int64_t* v = ticks_ptr(values);
  switch (tier) {
#if defined(FJS_SIMD_HAVE_AVX2)
    case Tier::kAvx2:
      return sat_sum_avx2(v, n);
#endif
#if defined(FJS_SIMD_HAVE_SSE2)
    case Tier::kSse2:
      return sat_sum_sse2(v, n);
#endif
#if defined(FJS_SIMD_HAVE_NEON)
    case Tier::kNeon:
      return sat_sum_neon(v, n);
#endif
    default:
      return sat_sum_scalar(v, n);
  }
}

MaxSum max_pairwise_sum(const Time* a, const Time* b, std::size_t n) {
  return max_pairwise_sum(a, b, n, active_tier());
}

MaxSum max_pairwise_sum(const Time* a, const Time* b, std::size_t n,
                        Tier tier) {
  const std::int64_t* x = ticks_ptr(a);
  const std::int64_t* y = ticks_ptr(b);
  switch (tier) {
#if defined(FJS_SIMD_HAVE_AVX2)
    case Tier::kAvx2:
      return max_pairwise_avx2(x, y, n);
#endif
#if defined(FJS_SIMD_HAVE_SSE2)
    case Tier::kSse2:
      return max_pairwise_sse2(x, y, n);
#endif
    default:
      return max_pairwise_scalar(x, y, n);
  }
}

void saturating_sum_into(const Time* a, const Time* b, std::int64_t* out,
                         std::size_t n) {
  saturating_sum_into(a, b, out, n, active_tier());
}

void saturating_sum_into(const Time* a, const Time* b, std::int64_t* out,
                         std::size_t n, Tier tier) {
  const std::int64_t* x = ticks_ptr(a);
  const std::int64_t* y = ticks_ptr(b);
  switch (tier) {
#if defined(FJS_SIMD_HAVE_AVX2)
    case Tier::kAvx2:
      sat_sum_into_avx2(x, y, out, n);
      return;
#endif
#if defined(FJS_SIMD_HAVE_SSE2)
    case Tier::kSse2:
      sat_sum_into_sse2(x, y, out, n);
      return;
#endif
    default:
      sat_sum_into_scalar(x, y, out, n);
      return;
  }
}

void sort_ids_by_key(const Time* keys, std::size_t n, std::vector<JobId>& out) {
  sort_ids_by_key(keys, n, out, active_tier());
}

void sort_ids_by_key(const Time* keys, std::size_t n, std::vector<JobId>& out,
                     Tier tier) {
  const std::int64_t* k = ticks_ptr(keys);
  if (tier == Tier::kScalar || n <= kRadixCutoff) {
    sort_ids_comparison(k, n, out);
    return;
  }
  g_tm_lanes_used.add(n);
  sort_ids_radix(k, n, out);
}

void lockstep_screen(const std::int64_t* a, const std::int64_t* d,
                     const std::int64_t* p, std::size_t rows,
                     std::size_t lanes, std::int64_t* min_a,
                     std::int64_t* max_dp, std::int64_t* max_p,
                     std::int64_t* sum_p) {
  lockstep_screen(a, d, p, rows, lanes, min_a, max_dp, max_p, sum_p,
                  active_tier());
}

void lockstep_screen(const std::int64_t* a, const std::int64_t* d,
                     const std::int64_t* p, std::size_t rows,
                     std::size_t lanes, std::int64_t* min_a,
                     std::int64_t* max_dp, std::int64_t* max_p,
                     std::int64_t* sum_p, Tier tier) {
  if (lanes == 0) {
    return;
  }
  switch (tier) {
#if defined(FJS_SIMD_HAVE_AVX2)
    case Tier::kAvx2:
      lockstep_screen_avx2(a, d, p, rows, lanes, min_a, max_dp, max_p, sum_p);
      return;
#endif
#if defined(FJS_SIMD_HAVE_SSE2)
    case Tier::kSse2:
      lockstep_screen_sse2(a, d, p, rows, lanes, min_a, max_dp, max_p, sum_p);
      return;
#endif
    default:
      lockstep_screen_scalar(a, d, p, rows, lanes, min_a, max_dp, max_p,
                             sum_p);
      return;
  }
}

}  // namespace fjs::simd
