// The Experiment interface: one registered object per paper experiment
// (E1–E16, and E17+ as follow-up papers land), replacing the former
// one-binary-per-experiment bench/ layout.
//
// An experiment declares its identity (name, title, description, paper
// reference), runs under a scaled-down smoke profile or the full
// profile, and returns a structured ExperimentResult: tables destined
// for fail-loud CSV emission, machine-checkable Verdict records that
// turn EXPERIMENTS.md's prose claims into executable assertions, and
// any extra artifacts it wrote itself. The runner (runner.h) owns
// output placement, parallel execution and aggregation.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "support/table.h"

namespace fjs {
class ThreadPool;
}

namespace fjs::experiments {

/// A machine-checkable claim: the measured value must land inside
/// [expected_lo, expected_hi]. Construct through the factories so the
/// bracket and pass flag stay consistent.
struct Verdict {
  std::string name;        ///< e.g. "e1 ratio floor mu=2 k=4 batch+"
  double measured = 0.0;
  double expected_lo = 0.0;
  double expected_hi = 0.0;
  bool pass = false;
  std::string note;        ///< closed form / theorem being checked

  /// measured == expected up to +-tolerance.
  static Verdict equals(std::string name, double measured, double expected,
                        double tolerance, std::string note = "");
  /// measured <= bound (+slack).
  static Verdict at_most(std::string name, double measured, double bound,
                         std::string note = "", double slack = 1e-9);
  /// measured >= bound (-slack).
  static Verdict at_least(std::string name, double measured, double bound,
                          std::string note = "", double slack = 1e-9);
  /// lo <= measured <= hi.
  static Verdict between(std::string name, double measured, double lo,
                         double hi, std::string note = "");
};

/// A console table plus the CSV base name it is persisted under.
struct NamedTable {
  std::string csv_name;  ///< base name; the runner appends ".csv"
  std::string title;
  Table table;
};

struct ExperimentResult {
  std::vector<NamedTable> tables;
  std::vector<Verdict> verdicts;
  /// Files the experiment wrote itself into ExperimentContext::out_dir
  /// (e.g. E9's google-benchmark JSON), relative to that directory.
  std::vector<std::string> artifacts;
};

/// Everything the runner hands an experiment for one execution.
struct ExperimentContext {
  /// Scaled-down CI profile when true, full reproduction otherwise.
  bool smoke = false;
  /// Deterministic per-experiment seed offset. 0 (the default base
  /// seed) reproduces the legacy bench outputs byte for byte; see
  /// experiment_seed() in runner.h.
  std::uint64_t seed = 0;
  /// Pool for intra-experiment parallelism. Never the pool the runner
  /// schedules experiments on — nesting waits on one pool deadlocks.
  ThreadPool* pool = nullptr;
  /// Narrative sink (intro text, rendered tables, readings). Never
  /// null while run() executes; the runner replays it to the console
  /// and into the experiment's report.txt.
  std::ostream* log = nullptr;
  /// Existing directory for self-written artifacts (ExperimentResult::
  /// artifacts entries are relative to it).
  std::string out_dir;

  std::ostream& out() const;
  ThreadPool& worker_pool() const;
};

class Experiment {
 public:
  virtual ~Experiment() = default;

  /// Registry key, lower-case, e.g. "e1".
  virtual std::string name() const = 0;
  /// Short human title, e.g. "non-clairvoyant lower bound".
  virtual std::string title() const = 0;
  /// One-to-two-sentence description (also matched by --filter).
  virtual std::string description() const = 0;
  /// Paper anchor, e.g. "Thm 3.3 / Fig. 1" ("-" for ours).
  virtual std::string paper_ref() const = 0;

  virtual ExperimentResult run(ExperimentContext& ctx) const = 0;
};

/// Mirrors the old bench::emit(): renders the table into the narrative
/// log and queues it for CSV emission by the runner.
void emit_table(ExperimentContext& ctx, ExperimentResult& result,
                const std::string& title, Table table,
                const std::string& csv_name);

}  // namespace fjs::experiments
