// E3 — Theorem 3.5 / Figure 3: Batch+'s tight family.
//
// Batch+'s span on the Figure 3 instance is m(μ+1−ε) against a reference
// of m+μ: the ratio approaches μ+1, which Theorem 3.5 proves is also the
// worst case — the bound is tight. Verdicts: the fitted limit recovers
// μ+1−ε and no measured ratio crosses μ+1.
#include <string>
#include <vector>

#include "adversary/tightness.h"
#include "analysis/convergence.h"
#include "experiments/experiments_all.h"
#include "schedulers/batch_plus.h"
#include "sim/engine.h"
#include "support/string_util.h"

namespace fjs::experiments {

namespace {

class E3Experiment final : public Experiment {
 public:
  std::string name() const override { return "e3"; }
  std::string title() const override { return "Batch+ tight family"; }
  std::string description() const override {
    return "Figure 3 family driving Batch+'s ratio to mu+1, the tight "
           "worst case of Thm 3.5.";
  }
  std::string paper_ref() const override { return "Thm 3.5 / Fig. 3"; }

  ExperimentResult run(ExperimentContext& ctx) const override {
    ExperimentResult result;
    ctx.out() << "E3: Batch+ tight family (Thm 3.5, Fig. 3).\n\n";

    const double eps = 0.01;
    const std::vector<std::size_t> ms =
        ctx.smoke ? std::vector<std::size_t>{1u, 4u, 16u, 64u}
                  : std::vector<std::size_t>{1u, 4u, 16u, 64u, 256u, 1024u};

    Table table({"mu", "m", "batch+ span", "reference span", "ratio",
                 "tight bound mu+1"});
    Table limits({"mu", "fitted limit (m->inf)", "closed form mu+1-eps",
                  "R^2"});
    for (const double mu : {1.5, 2.0, 4.0, 8.0}) {
      std::vector<double> xs;
      std::vector<double> ratios;
      for (const std::size_t m : ms) {
        const TightnessInstance tight = make_batch_plus_tightness(m, mu, eps);
        BatchPlusScheduler bp;
        const Time span = simulate_span(tight.instance, bp, false);
        const Time ref = tight.reference.span(tight.instance);
        const double ratio = time_ratio(span, ref);
        table.add_row({format_double(mu, 1), std::to_string(m),
                       format_double(span.to_units(), 2),
                       format_double(ref.to_units(), 2),
                       format_double(ratio, 4), format_double(mu + 1.0, 1)});
        result.verdicts.push_back(Verdict::at_most(
            "ratio cap mu=" + format_double(mu, 1) + " m=" + std::to_string(m),
            ratio, mu + 1.0, "Batch+ <= mu+1 (Thm 3.5, tight)", 1e-9));
        xs.push_back(static_cast<double>(m));
        ratios.push_back(1.0 / ratio);  // reciprocal is exactly linear in 1/m
      }
      const AsymptoteFit fit = fit_asymptote(xs, ratios);
      const double fitted = 1.0 / fit.limit;
      const double closed_form = mu + 1.0 - eps;
      limits.add_row({format_double(mu, 1), format_double(fitted, 4),
                      format_double(closed_form, 4),
                      format_double(fit.r_squared, 6)});
      result.verdicts.push_back(Verdict::equals(
          "fitted limit mu=" + format_double(mu, 1), fitted, closed_form,
          1e-3, "ratio -> mu+1-eps as m -> inf"));
    }
    emit_table(ctx, result, "E3 Batch+ tightness (ratio -> mu+1)", table,
               "e3_batchplus_tight");
    ctx.out() << "Fitted asymptotes (reciprocal fit, exact for this"
                 " family):\n"
              << limits.render();
    result.tables.push_back(
        NamedTable{"e3_limits", "E3 fitted asymptotes", std::move(limits)});
    return result;
  }
};

}  // namespace

std::unique_ptr<Experiment> make_e3_experiment() {
  return std::make_unique<E3Experiment>();
}

}  // namespace fjs::experiments
