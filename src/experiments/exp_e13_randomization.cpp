// E13 — exploration (paper's implicit open question): does naive
// randomization help against the lower-bound constructions?
//
// Theorems 3.3 and 4.1 are proved for DETERMINISTIC schedulers; the paper
// leaves randomized competitiveness open. We pit the seeded
// uniform-random-start baseline against both adversaries (which remain
// oblivious adversaries w.r.t. the seed) and against stochastic workloads,
// over many seeds. Verdicts: the clairvoyant adversary extracts at least
// (nearly) φ from every seed, the non-clairvoyant one at least its
// deterministic floor, and randomization never beats Batch+ on average.
#include <string>
#include <vector>

#include "adversary/clairvoyant_lb.h"
#include "adversary/nonclairvoyant_lb.h"
#include "experiments/experiments_all.h"
#include "schedulers/randomized.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/stats.h"
#include "support/string_util.h"
#include "workload/generator.h"

namespace fjs::experiments {

namespace {

class E13Experiment final : public Experiment {
 public:
  std::string name() const override { return "e13"; }
  std::string title() const override { return "randomization exploration"; }
  std::string description() const override {
    return "Seeded random-start baseline vs both adversarial constructions "
           "and a stochastic workload; randomization does not help.";
  }
  std::string paper_ref() const override { return "Thms 3.3 / 4.1 (open)"; }

  ExperimentResult run(ExperimentContext& ctx) const override {
    ExperimentResult result;
    const std::uint64_t seeds = ctx.smoke ? 8 : 32;
    ctx.out() << "E13: randomized-start baseline vs the adversarial"
                 " constructions ("
              << seeds << " seeds each).\n\n";

    // --- vs the clairvoyant golden-ratio adversary ---------------------
    Summary clb_ratios;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      RandomizedScheduler random(seed + ctx.seed);
      ClairvoyantAdversary adversary(
          ClairvoyantLbParams{.max_iterations = 16});
      NoDeferralOracle oracle;
      Engine engine(adversary, oracle, random,
                    EngineOptions{.clairvoyant = true});
      const SimulationResult run = engine.run();
      clb_ratios.add(time_ratio(
          run.span(),
          adversary.reference_schedule(run.instance).span(run.instance)));
    }

    // --- vs the non-clairvoyant adversary ------------------------------
    const double mu = 4.0;
    const double floor = (3.0 * mu + 1.0) / (mu + 3.0);  // (kmu+1)/(mu+k), k=3
    Summary nclb_ratios;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      RandomizedScheduler random(seed + ctx.seed);
      NonClairvoyantLbParams params;
      params.mu = mu;
      params.iterations = 3;
      params.counts = ctx.smoke ? std::vector<std::size_t>{128, 16, 8}
                                : std::vector<std::size_t>{1024, 32, 8};
      NonClairvoyantAdversary adversary(params);
      Engine engine(adversary, adversary, random, {});
      const SimulationResult run = engine.run();
      nclb_ratios.add(time_ratio(
          run.span(),
          adversary.reference_schedule(run.instance).span(run.instance)));
    }

    // --- vs a stochastic workload, against the deterministic line-up ---
    WorkloadConfig cfg;
    cfg.job_count = 200;
    cfg.laxity_max = 6.0;
    const Instance inst = generate_workload(cfg, 5 + ctx.seed);
    Summary random_spans;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      RandomizedScheduler random(seed + ctx.seed);
      random_spans.add(simulate_span(inst, random, false).to_units());
    }
    const Time eager_span =
        simulate_span(inst, *make_scheduler("eager"), false);
    const Time lazy_span = simulate_span(inst, *make_scheduler("lazy"), false);
    const Time bp_span =
        simulate_span(inst, *make_scheduler("batch+"), false);

    Table table({"experiment", "min", "mean", "max", "deterministic refs"});
    table.add_row({"vs clairvoyant adversary (ratio)",
                   format_double(clb_ratios.min(), 4),
                   format_double(clb_ratios.mean(), 4),
                   format_double(clb_ratios.max(), 4),
                   "phi = 1.618 (Thm 4.1 floor)"});
    table.add_row({"vs non-clairvoyant adversary (ratio)",
                   format_double(nclb_ratios.min(), 4),
                   format_double(nclb_ratios.mean(), 4),
                   format_double(nclb_ratios.max(), 4),
                   "floor (kmu+1)/(mu+k) = 1.857"});
    table.add_row({"span on stochastic workload",
                   format_double(random_spans.min(), 1),
                   format_double(random_spans.mean(), 1),
                   format_double(random_spans.max(), 1),
                   "eager " + format_double(eager_span.to_units(), 1) +
                       ", lazy " + format_double(lazy_span.to_units(), 1) +
                       ", batch+ " + format_double(bp_span.to_units(), 1)});

    result.verdicts.push_back(Verdict::between(
        "clairvoyant adversary pins random starts", clb_ratios.min(), 1.0,
        ClairvoyantAdversary::phi() + 1e-3,
        "every seed lands in [1, phi]: randomization does not break the"
        " golden-ratio construction"));
    result.verdicts.push_back(Verdict::at_least(
        "non-clairvoyant floor holds", nclb_ratios.min(), floor,
        "every seed pays at least the deterministic floor (kmu+1)/(mu+k)",
        1e-6));
    result.verdicts.push_back(Verdict::at_least(
        "no free lunch vs batch+",
        random_spans.mean() / bp_span.to_units(), 1.0,
        "mean randomized span does not beat batch+ on the stochastic"
        " workload", 1e-9));
    emit_table(ctx, result, "E13 randomization exploration", table,
               "e13_random");

    ctx.out() << "Reading: random starts do not escape the adversaries'"
                 " pressure and sit between\neager and lazy on stochastic"
                 " inputs — consistent with the paper restricting its\n"
                 "positive results to structured (batching/profit)"
                 " schedulers.\n";
    return result;
  }
};

}  // namespace

std::unique_ptr<Experiment> make_e13_experiment() {
  return std::make_unique<E13Experiment>();
}

}  // namespace fjs::experiments
