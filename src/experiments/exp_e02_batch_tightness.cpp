// E2 — Theorem 3.4 / Figure 2: Batch's tightness family.
//
// Batch's span on the Figure 2 instance is exactly 2mμ against a reference
// of m(1+ε)+μ, so the ratio approaches 2μ as m grows; the theorem also
// caps Batch at 2μ+1 on every instance. Verdicts: the reciprocal
// asymptote fit recovers the closed-form limit 2μ/(1+ε), and no measured
// ratio crosses the 2μ+1 cap.
#include <string>
#include <vector>

#include "adversary/tightness.h"
#include "analysis/convergence.h"
#include "experiments/experiments_all.h"
#include "schedulers/batch.h"
#include "sim/engine.h"
#include "support/string_util.h"

namespace fjs::experiments {

namespace {

class E2Experiment final : public Experiment {
 public:
  std::string name() const override { return "e2"; }
  std::string title() const override { return "Batch tightness family"; }
  std::string description() const override {
    return "Figure 2 family driving Batch's ratio to 2*mu; the 2*mu+1 "
           "upper bound is never crossed.";
  }
  std::string paper_ref() const override { return "Thm 3.4 / Fig. 2"; }

  ExperimentResult run(ExperimentContext& ctx) const override {
    ExperimentResult result;
    ctx.out() << "E2: Batch tightness family (Thm 3.4, Fig. 2).\n\n";

    const double eps = 0.01;
    const std::vector<std::size_t> ms =
        ctx.smoke ? std::vector<std::size_t>{1u, 4u, 16u, 64u}
                  : std::vector<std::size_t>{1u, 4u, 16u, 64u, 256u, 1024u};

    Table table({"mu", "m", "batch span", "reference span", "ratio",
                 "lower 2mu", "upper 2mu+1"});
    Table limits({"mu", "fitted limit (m->inf)", "closed form 2mu/(1+eps)",
                  "R^2"});
    for (const double mu : {1.5, 2.0, 4.0, 8.0}) {
      std::vector<double> xs;
      std::vector<double> ratios;
      for (const std::size_t m : ms) {
        const TightnessInstance tight = make_batch_tightness(m, mu, eps);
        BatchScheduler batch;
        const Time span = simulate_span(tight.instance, batch, false);
        const Time ref = tight.reference.span(tight.instance);
        const double ratio = time_ratio(span, ref);
        table.add_row({format_double(mu, 1), std::to_string(m),
                       format_double(span.to_units(), 2),
                       format_double(ref.to_units(), 2),
                       format_double(ratio, 4), format_double(2.0 * mu, 1),
                       format_double(2.0 * mu + 1.0, 1)});
        result.verdicts.push_back(Verdict::at_most(
            "ratio cap mu=" + format_double(mu, 1) + " m=" + std::to_string(m),
            ratio, 2.0 * mu + 1.0, "Batch <= 2*mu+1 (Thm 3.4)", 1e-9));
        xs.push_back(static_cast<double>(m));
        ratios.push_back(1.0 / ratio);  // reciprocal is exactly linear in 1/m
      }
      const AsymptoteFit fit = fit_asymptote(xs, ratios);
      const double fitted = 1.0 / fit.limit;
      const double closed_form = 2.0 * mu / (1.0 + eps);
      limits.add_row({format_double(mu, 1), format_double(fitted, 4),
                      format_double(closed_form, 4),
                      format_double(fit.r_squared, 6)});
      result.verdicts.push_back(Verdict::equals(
          "fitted limit mu=" + format_double(mu, 1), fitted, closed_form,
          1e-3, "ratio -> 2*mu/(1+eps) as m -> inf"));
    }
    emit_table(ctx, result, "E2 Batch tightness (ratio -> 2mu)", table,
               "e2_batch_tight");
    ctx.out() << "Fitted asymptotes (reciprocal fit, exact for this"
                 " family):\n"
              << limits.render();
    result.tables.push_back(
        NamedTable{"e2_limits", "E2 fitted asymptotes", std::move(limits)});
    return result;
  }
};

}  // namespace

std::unique_ptr<Experiment> make_e2_experiment() {
  return std::make_unique<E2Experiment>();
}

}  // namespace fjs::experiments
