// E8 — §5 extension: generalized MinUsageTime Dynamic Bin Packing.
//
// A span-minimizing scheduler fixes start times; a packing policy places
// each job on a unit-capacity server for its active interval; the
// objective is total server usage time. The paper's §5 predicts that
// pairing Batch+ (non-clairvoyant) or Profit (clairvoyant) with
// (classify-by-duration) First Fit keeps usage competitive; Eager and
// especially Lazy pipelines waste server-hours. Verdict: every pipeline's
// usage is at or above the certified lower bound.
#include <string>
#include <vector>

#include "dbp/pipeline.h"
#include "experiments/experiments_all.h"
#include "support/string_util.h"
#include "workload/cloud_trace.h"

namespace fjs::experiments {

namespace {

class E8Experiment final : public Experiment {
 public:
  std::string name() const override { return "e8"; }
  std::string title() const override {
    return "MinUsageTime DBP pipelines";
  }
  std::string description() const override {
    return "Scheduler x packer pipelines on a synthetic cloud trace; "
           "usage vs a certified lower bound (paper section 5).";
  }
  std::string paper_ref() const override { return "§5"; }

  ExperimentResult run(ExperimentContext& ctx) const override {
    ExperimentResult result;
    CloudTraceConfig config;
    config.job_count = ctx.smoke ? 150 : 400;
    const CloudTrace trace = generate_cloud_trace(config, 20240705 + ctx.seed);
    const Time lb = dbp_usage_lower_bound(trace.instance, trace.sizes);

    ctx.out() << "E8: scheduler x packer pipelines on a synthetic cloud trace"
                 " ("
              << config.job_count << " jobs).\ncertified usage lower bound = "
              << format_double(lb.to_units(), 2) << " server-hours\n\n";

    Table table({"scheduler", "packer", "usage (server-h)", "span (h)",
                 "servers", "peak open", "usage vs LB"});
    for (const char* key :
         {"eager", "lazy", "batch", "batch+", "cdb", "profit"}) {
      for (const auto& packer : make_standard_packers()) {
        const PipelineResult pipeline =
            run_pipeline(trace.instance, trace.sizes, key, *packer);
        table.add_row(
            {pipeline.scheduler, pipeline.packer,
             format_double(pipeline.packing.total_usage.to_units(), 1),
             format_double(pipeline.span.to_units(), 1),
             std::to_string(pipeline.packing.bins_opened),
             std::to_string(pipeline.packing.peak_open_bins),
             format_double(pipeline.usage_ratio_upper, 3) + "x"});
        result.verdicts.push_back(Verdict::at_least(
            "usage above LB " + pipeline.scheduler + "+" + pipeline.packer,
            pipeline.usage_ratio_upper, 1.0,
            "total usage >= certified usage lower bound", 1e-9));
      }
    }
    emit_table(ctx, result, "E8 MinUsageTime DBP pipelines", table, "e8_dbp");

    ctx.out() << "Reading: span-minimizing schedulers (batch/batch+) feed the"
                 " packers denser timelines,\ncutting total usage versus the"
                 " lazy pipeline; classify-by-duration First Fit trades a\n"
                 "few extra servers for tighter per-class packing.\n";
    return result;
  }
};

}  // namespace

std::unique_ptr<Experiment> make_e8_experiment() {
  return std::make_unique<E8Experiment>();
}

}  // namespace fjs::experiments
