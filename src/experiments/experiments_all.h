// Factory declarations for the built-in experiments, one per
// exp_e*.cpp translation unit. Adding E17+: add the file, declare its
// factory here, and append it to the list in registry.cpp.
#pragma once

#include <memory>

#include "experiments/experiment.h"

namespace fjs::experiments {

std::unique_ptr<Experiment> make_e1_experiment();
std::unique_ptr<Experiment> make_e2_experiment();
std::unique_ptr<Experiment> make_e3_experiment();
std::unique_ptr<Experiment> make_e4_experiment();
std::unique_ptr<Experiment> make_e5_experiment();
std::unique_ptr<Experiment> make_e6_experiment();
std::unique_ptr<Experiment> make_e7_experiment();
std::unique_ptr<Experiment> make_e8_experiment();
std::unique_ptr<Experiment> make_e9_experiment();
std::unique_ptr<Experiment> make_e10_experiment();
std::unique_ptr<Experiment> make_e11_experiment();
std::unique_ptr<Experiment> make_e12_experiment();
std::unique_ptr<Experiment> make_e13_experiment();
std::unique_ptr<Experiment> make_e14_experiment();
std::unique_ptr<Experiment> make_e15_experiment();
std::unique_ptr<Experiment> make_e16_experiment();

}  // namespace fjs::experiments
