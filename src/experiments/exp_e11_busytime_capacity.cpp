// E11 — extension: busy-time scheduling on capacity-g machines.
//
// The paper's concluding remarks connect Clairvoyant FJS to busy-time
// scheduling (Koehler & Khuller): a machine runs at most g concurrent
// jobs, and g = ∞ IS the span objective. Using the integer-capacity
// busytime substrate, we sweep g and machine-assignment policy. Verdicts
// pin the two boundary identities — at g=1 busy time equals total work,
// at g=∞ it equals the schedule's span — and soundness of the busy-time
// lower bound at every g.
#include <string>
#include <vector>

#include "busytime/busytime.h"
#include "experiments/experiments_all.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/string_util.h"
#include "workload/generator.h"

namespace fjs::experiments {

namespace {

class E11Experiment final : public Experiment {
 public:
  std::string name() const override { return "e11"; }
  std::string title() const override {
    return "busy-time vs machine capacity";
  }
  std::string description() const override {
    return "Busy-time objective on capacity-g machines across schedulers "
           "and assignment policies; g=1 is total work, g=inf is span.";
  }
  std::string paper_ref() const override { return "§6 remarks"; }

  ExperimentResult run(ExperimentContext& ctx) const override {
    ExperimentResult result;
    WorkloadConfig cfg;
    cfg.job_count = ctx.smoke ? 120 : 300;
    cfg.arrival_rate = 3.0;
    cfg.laxity_max = 6.0;
    const Instance raw = generate_workload(cfg, 33 + ctx.seed);

    ctx.out() << "E11: busy-time on capacity-g machines (integer slots,"
                 " first-available assignment\nunless noted). Workload: "
              << cfg.job_count
              << " jobs, Poisson arrivals, uniform lengths 1-4, laxity"
                 " 0-6.\n\n";

    Table table(
        {"g", "scheduler", "busy time", "machines", "peak", "busy vs LB"});
    const std::vector<std::size_t> capacities =
        ctx.smoke
            ? std::vector<std::size_t>{1, 4, 16, kUnboundedCapacity}
            : std::vector<std::size_t>{1, 2, 4, 8, 16, kUnboundedCapacity};
    for (const std::size_t g : capacities) {
      const Time lb = busy_time_lower_bound(raw, g);
      for (const char* key : {"eager", "lazy", "batch+", "profit"}) {
        const auto scheduler = make_scheduler(key);
        const SimulationResult run =
            simulate(raw, *scheduler, scheduler->requires_clairvoyance());
        const BusyTimeResult busy =
            assign_machines(run.instance, run.schedule, g);
        const std::string g_label =
            g == kUnboundedCapacity ? "inf" : std::to_string(g);
        table.add_row({g_label, scheduler->name(),
                       format_double(busy.total_busy.to_units(), 1),
                       std::to_string(busy.machines_used),
                       std::to_string(busy.peak_active_machines),
                       format_double(time_ratio(busy.total_busy, lb), 3) +
                           "x"});
        result.verdicts.push_back(Verdict::at_least(
            "busy >= LB g=" + g_label + " " + std::string(key),
            time_ratio(busy.total_busy, lb), 1.0,
            "busy-time lower bound is sound", 1e-9));
        if (g == 1) {
          result.verdicts.push_back(Verdict::equals(
              "g=1 busy == total work " + std::string(key),
              time_ratio(busy.total_busy, raw.total_work()), 1.0, 1e-9,
              "at unit capacity every job-hour is billed alone"));
        }
        if (g == kUnboundedCapacity) {
          result.verdicts.push_back(Verdict::equals(
              "g=inf busy == span " + std::string(key),
              time_ratio(busy.total_busy, run.span()), 1.0, 1e-9,
              "with unbounded sharing busy time degenerates to the span"
              " objective"));
        }
      }
    }
    emit_table(ctx, result, "E11 busy-time vs machine capacity g", table,
               "e11_busytime");

    // Policy ablation at g = 4 for the batch+ schedule (log only; the CSV
    // matches the main sweep exactly as the standalone binary emitted it).
    const auto bp = make_scheduler("batch+");
    const SimulationResult run = simulate(raw, *bp, false);
    Table policies({"policy", "busy time", "machines"});
    for (const MachinePolicy policy :
         {MachinePolicy::kFirstAvailable, MachinePolicy::kMostLoaded,
          MachinePolicy::kLeastLoaded}) {
      const BusyTimeResult busy =
          assign_machines(run.instance, run.schedule, 4, policy);
      policies.add_row({to_string(policy),
                        format_double(busy.total_busy.to_units(), 1),
                        std::to_string(busy.machines_used)});
    }
    ctx.out() << "--- assignment-policy ablation (batch+ schedule, g=4) ---\n"
              << policies.render() << '\n';

    ctx.out() << "Reading: at g=1 busy time is total work"
                 " (scheduler-independent); at g=inf it is the span.\n"
                 "In between, span-minimizing schedulers concentrate load so"
                 " fewer machine-hours are billed;\nleast-loaded (balancing)"
                 " assignment wastes busy time relative to packing"
                 " policies.\n";
    return result;
  }
};

}  // namespace

std::unique_ptr<Experiment> make_e11_experiment() {
  return std::make_unique<E11Experiment>();
}

}  // namespace fjs::experiments
