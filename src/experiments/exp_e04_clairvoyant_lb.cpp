// E4 — Theorem 4.1 / Figure 4: the clairvoyant golden-ratio adversary.
//
// Every deterministic scheduler is forced to a ratio approaching
// φ = (√5+1)/2 ≈ 1.618: either it refuses to start a long job inside a
// short job's window (ratio exactly φ at that point), or it rides through
// all n iterations (ratio nφ/(φ+n−1) → φ). Verdict: the measured ratio
// matches the adversary's outcome formula to 4 decimals for every
// scheduler and n.
#include <string>
#include <vector>

#include "adversary/clairvoyant_lb.h"
#include "experiments/experiments_all.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/string_util.h"

namespace fjs::experiments {

namespace {

class E4Experiment final : public Experiment {
 public:
  std::string name() const override { return "e4"; }
  std::string title() const override { return "clairvoyant lower bound"; }
  std::string description() const override {
    return "Golden-ratio adversary pinning every deterministic scheduler "
           "at phi = (sqrt(5)+1)/2 in the limit.";
  }
  std::string paper_ref() const override { return "Thm 4.1 / Fig. 4"; }

  ExperimentResult run(ExperimentContext& ctx) const override {
    ExperimentResult result;
    ctx.out() << "E4: clairvoyant lower bound (Thm 4.1). phi = "
              << format_double(ClairvoyantAdversary::phi(), 6) << "\n\n";

    const std::vector<int> ns = ctx.smoke ? std::vector<int>{2, 8, 32}
                                          : std::vector<int>{2, 8, 32, 128};

    Table table({"scheduler", "n", "outcome", "iters", "measured",
                 "paper ratio", "phi"});
    for (const auto& spec : scheduler_registry()) {
      for (const int n : ns) {
        const auto scheduler = spec.make();
        ClairvoyantAdversary adversary(
            ClairvoyantLbParams{.max_iterations = n});
        NoDeferralOracle oracle;
        Engine engine(adversary, oracle, *scheduler,
                      EngineOptions{.clairvoyant = true});
        const SimulationResult sim = engine.run();
        const Schedule reference = adversary.reference_schedule(sim.instance);
        const double measured =
            time_ratio(sim.span(), reference.span(sim.instance));
        const double paper_ratio = adversary.theoretical_ratio();
        table.add_row({spec.key, std::to_string(n),
                       adversary.stopped_early() ? "refused" : "rode-through",
                       std::to_string(adversary.iterations_released()),
                       format_double(measured, 4),
                       format_double(paper_ratio, 4),
                       format_double(ClairvoyantAdversary::phi(), 4)});
        // The outcome formula is a floor: deterministic schedulers hit it
        // exactly, the randomized baseline can land above it (its refusal
        // may come mid-iteration with extra span already committed).
        result.verdicts.push_back(Verdict::at_least(
            "outcome formula " + spec.key + " n=" + std::to_string(n),
            measured, paper_ratio,
            "measured ratio >= phi on refusal, n*phi/(phi+n-1) riding"
            " through (floor; exact for deterministic schedulers)",
            1e-4));
      }
    }
    emit_table(ctx, result,
               "E4 clairvoyant adversary (ratio -> phi for everyone)", table,
               "e4_clb");
    return result;
  }
};

}  // namespace

std::unique_ptr<Experiment> make_e4_experiment() {
  return std::make_unique<E4Experiment>();
}

}  // namespace fjs::experiments
