// E16 — separation mining (ours): which scheduler beats which, and by how
// much, on adversarially chosen SMALL instances?
//
// Uses the generalized miner with pairwise objectives span(A)/span(B).
// Interesting answers the theory predicts:
//  * Batch+ vs Batch: each can beat the other (Batch+'s eagerness can
//    backfire), but Batch's worst losses are larger — its guarantee is
//    2μ+1 vs μ+1.
//  * Profit vs Batch+: clairvoyance buys real separations.
// Verdicts: every mined separation is >= 1 (the miner at minimum finds an
// instance where the pair ties) and the loser's exact ratio on the mined
// instance is certified (>= 1).
#include <string>
#include <vector>

#include "adversary/instance_miner.h"
#include "experiments/experiments_all.h"
#include "offline/exact.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/parallel.h"
#include "support/string_util.h"
#include "support/thread_pool.h"

namespace fjs::experiments {

namespace {

double pair_objective(const Instance& instance, const std::string& a,
                      const std::string& b) {
  const auto sa = make_scheduler(a);
  const auto sb = make_scheduler(b);
  const Time span_a =
      simulate_span(instance, *sa, sa->requires_clairvoyance());
  const Time span_b =
      simulate_span(instance, *sb, sb->requires_clairvoyance());
  return time_ratio(span_a, span_b);
}

class E16Experiment final : public Experiment {
 public:
  std::string name() const override { return "e16"; }
  std::string title() const override { return "pairwise separation mining"; }
  std::string description() const override {
    return "Miner maximizing span(A)/span(B) per scheduler pair: how badly "
           "can A lose to B on a crafted instance?";
  }
  std::string paper_ref() const override { return "Thms 3.4 / 4.11"; }

  ExperimentResult run(ExperimentContext& ctx) const override {
    ExperimentResult result;
    const std::size_t jobs = ctx.smoke ? 8 : 10;
    ctx.out() << "E16: pairwise separation mining (" << jobs
              << " jobs, unit grid). Objective: maximize span(A)/span(B)\n—"
                 " how badly can A lose to B on a crafted instance?\n\n";

    struct Pair {
      const char* loser;
      const char* winner;
    };
    const std::vector<Pair> all_pairs = {
        {"batch", "batch+"},  {"batch+", "batch"},
        {"batch+", "profit"}, {"profit", "batch+"},
        {"eager", "batch+"},  {"lazy", "batch+"},
        {"overlap", "profit"}, {"profit", "overlap"},
    };
    const std::vector<Pair> pairs =
        ctx.smoke ? std::vector<Pair>(all_pairs.begin(), all_pairs.begin() + 4)
                  : all_pairs;

    std::vector<MinerResult> results(pairs.size());
    parallel_for(ctx.worker_pool(), pairs.size(), [&](std::size_t i) {
      MinerOptions options;
      options.population = ctx.smoke ? 64 : 256;
      options.rounds = ctx.smoke ? 10 : 80;
      options.mutations_per_round = ctx.smoke ? 16 : 32;
      options.jobs = jobs;
      options.seed = 0xE16ULL + i + ctx.seed;
      results[i] = mine_instance(
          [&](const Instance& inst) {
            return pair_objective(inst, pairs[i].loser, pairs[i].winner);
          },
          options);
    });

    Table table({"A (loser)", "B (winner)", "max span(A)/span(B)",
                 "A's ratio vs OPT there"});
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const auto loser = make_scheduler(pairs[i].loser);
      const Time span = simulate_span(results[i].worst_instance, *loser,
                                      loser->requires_clairvoyance());
      const Time opt = exact_optimal_span(results[i].worst_instance);
      table.add_row({pairs[i].loser, pairs[i].winner,
                     format_double(results[i].worst_ratio, 4),
                     format_double(time_ratio(span, opt), 4)});
      const std::string label =
          std::string(pairs[i].loser) + " vs " + pairs[i].winner;
      result.verdicts.push_back(Verdict::at_least(
          "separation found " + label, results[i].worst_ratio, 1.0,
          "the miner at least ties the pair on some instance", 1e-9));
      result.verdicts.push_back(Verdict::at_least(
          "loser ratio certified " + label, time_ratio(span, opt), 1.0,
          "online/exact-OPT on the mined instance cannot drop below 1",
          1e-9));
    }
    emit_table(ctx, result, "E16 pairwise separations (mined)", table,
               "e16_separation");

    ctx.out() << "Reading: separations exist in BOTH directions between"
                 " Batch and Batch+ (eager starting\ncan backfire), but the"
                 " guaranteed schedulers bound how badly they can lose;\n"
                 "eager/lazy losses to batch+ are the largest, as the theory"
                 " predicts.\n";
    return result;
  }
};

}  // namespace

std::unique_ptr<Experiment> make_e16_experiment() {
  return std::make_unique<E16Experiment>();
}

}  // namespace fjs::experiments
