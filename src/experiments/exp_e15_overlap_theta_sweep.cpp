// E15 — ablation of the greedy-overlap extension heuristic's threshold θ.
//
// θ controls how much guaranteed overlap a job needs before starting
// early: θ→0 degenerates toward Eager (start on any sliver of overlap),
// θ=1 demands full coverage and degenerates toward Lazy. The sweep locates
// the practical sweet spot and compares it against Profit — the scheduler
// with the analogous knob AND a worst-case guarantee. Verdicts: every
// measured ratio is certified against exact OPT (>= 1).
#include <cmath>
#include <string>
#include <vector>

#include "experiments/experiments_all.h"
#include "offline/exact.h"
#include "schedulers/overlap.h"
#include "schedulers/profit.h"
#include "sim/engine.h"
#include "support/parallel.h"
#include "support/stats.h"
#include "support/string_util.h"
#include "support/thread_pool.h"
#include "workload/generator.h"

namespace fjs::experiments {

namespace {

class E15Experiment final : public Experiment {
 public:
  std::string name() const override { return "e15"; }
  std::string title() const override { return "overlap theta sweep"; }
  std::string description() const override {
    return "Greedy-overlap threshold ablation vs profit(k*) on "
           "exact-solvable instances.";
  }
  std::string paper_ref() const override { return "-"; }

  ExperimentResult run(ExperimentContext& ctx) const override {
    ExperimentResult result;
    const std::uint64_t seeds = ctx.smoke ? 4 : 12;
    ctx.out() << "E15: overlap(theta) sweep vs profit(k*) on exact-solvable"
                 " instances\n(8 jobs, integral, "
              << 2 * seeds << " cases).\n\n";

    std::vector<Instance> cases;
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      WorkloadConfig cfg;
      cfg.job_count = 8;
      cfg.integral = true;
      cfg.length_max = 6.0;
      cfg.laxity_max = 5.0;
      cases.push_back(generate_workload(cfg, seed + ctx.seed));
      WorkloadConfig lax = cfg;
      lax.laxity_max = 8.0;
      cases.push_back(generate_workload(lax, seed + 50 + ctx.seed));
    }
    std::vector<Time> opts(cases.size());
    parallel_for(ctx.worker_pool(), cases.size(), [&](std::size_t i) {
      opts[i] = exact_optimal_span(cases[i]);
    });

    Table table({"scheduler", "mean ratio", "p90 ratio", "worst ratio"});
    const std::vector<double> thetas =
        ctx.smoke ? std::vector<double>{0.1, 0.5, 1.0}
                  : std::vector<double>{0.1, 0.25, 0.5, 0.75, 0.9, 1.0};
    for (const double theta : thetas) {
      Summary ratios;
      for (std::size_t i = 0; i < cases.size(); ++i) {
        OverlapScheduler overlap(theta);
        ratios.add(
            time_ratio(simulate_span(cases[i], overlap, true), opts[i]));
      }
      table.add_row({"overlap(theta=" + format_double(theta, 2) + ")",
                     format_double(ratios.mean(), 4),
                     format_double(ratios.percentile(90.0), 4),
                     format_double(ratios.max(), 4)});
      result.verdicts.push_back(Verdict::at_least(
          "ratios certified theta=" + format_double(theta, 2), ratios.min(),
          1.0, "online/exact-OPT cannot drop below 1", 1e-9));
    }
    {
      Summary ratios;
      for (std::size_t i = 0; i < cases.size(); ++i) {
        ProfitScheduler profit;
        ratios.add(
            time_ratio(simulate_span(cases[i], profit, true), opts[i]));
      }
      table.add_row({"profit(k*) [guaranteed]", format_double(ratios.mean(), 4),
                     format_double(ratios.percentile(90.0), 4),
                     format_double(ratios.max(), 4)});
      result.verdicts.push_back(Verdict::between(
          "profit reference certified", ratios.min(), 1.0,
          4.0 + 2.0 * std::sqrt(2.0),
          "profit(k*) stays within [1, 4+2sqrt2] on every case"));
    }
    emit_table(ctx, result, "E15 overlap theta sweep", table,
               "e15_overlap_theta");

    ctx.out() << "Reading: mid-range theta performs like Profit on average"
                 " but, unlike Profit,\ncarries no worst-case guarantee (see"
                 " E14's mined instances).\n";
    return result;
  }
};

}  // namespace

std::unique_ptr<Experiment> make_e15_experiment() {
  return std::make_unique<E15Experiment>();
}

}  // namespace fjs::experiments
