// Experiment registry: enumerate, look up and select the registered
// experiments, mirroring schedulers/registry.{h,cpp}.
//
// The sixteen built-in experiments (exp_e*.cpp, declared in
// experiments_all.h) are materialized once on first use; follow-up
// experiments (E17+, planted test doubles) append at runtime through
// register_experiment(). Registration is not thread-safe — do it from
// a single thread before running anything, as main()/tests do.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "experiments/experiment.h"

namespace fjs::experiments {

/// All registered experiments, in presentation order (e1..e16, then
/// runtime registrations in insertion order). Pointers stay valid for
/// the process lifetime.
const std::vector<const Experiment*>& experiment_registry();

/// Appends an experiment. Throws AssertionError if the name collides.
void register_experiment(std::unique_ptr<Experiment> experiment);

/// Looks up by exact name; nullptr when absent.
const Experiment* find_experiment(const std::string& name);

/// Applies the CLI selection semantics, preserving registry order:
///  * `only` non-empty: keep exactly those names (each must exist —
///    AssertionError otherwise; duplicates collapse).
///  * `filter` non-empty: keep experiments whose name, title,
///    description or paper reference matches the case-insensitive
///    ECMAScript regex (AssertionError on a malformed pattern).
/// Both given: the intersection. Neither: everything.
std::vector<const Experiment*> select_experiments(
    const std::vector<std::string>& only, const std::string& filter);

}  // namespace fjs::experiments
