#include "experiments/experiment.h"

#include <utility>

#include "support/assert.h"
#include "support/thread_pool.h"

namespace fjs::experiments {

namespace {

// Discards everything; returned when an experiment runs without a log
// sink (library callers that only want verdicts).
class NullBuffer : public std::streambuf {
 protected:
  int overflow(int c) override { return c; }
};

std::ostream& null_stream() {
  static NullBuffer buffer;
  static std::ostream stream(&buffer);
  return stream;
}

}  // namespace

Verdict Verdict::equals(std::string name, double measured, double expected,
                        double tolerance, std::string note) {
  FJS_REQUIRE(tolerance >= 0.0, "Verdict::equals: negative tolerance");
  Verdict v;
  v.name = std::move(name);
  v.measured = measured;
  v.expected_lo = expected - tolerance;
  v.expected_hi = expected + tolerance;
  v.pass = measured >= v.expected_lo && measured <= v.expected_hi;
  v.note = std::move(note);
  return v;
}

Verdict Verdict::at_most(std::string name, double measured, double bound,
                         std::string note, double slack) {
  Verdict v;
  v.name = std::move(name);
  v.measured = measured;
  v.expected_lo = -1e308;
  v.expected_hi = bound + slack;
  v.pass = measured <= v.expected_hi;
  v.note = std::move(note);
  return v;
}

Verdict Verdict::at_least(std::string name, double measured, double bound,
                          std::string note, double slack) {
  Verdict v;
  v.name = std::move(name);
  v.measured = measured;
  v.expected_lo = bound - slack;
  v.expected_hi = 1e308;
  v.pass = measured >= v.expected_lo;
  v.note = std::move(note);
  return v;
}

Verdict Verdict::between(std::string name, double measured, double lo,
                         double hi, std::string note) {
  FJS_REQUIRE(lo <= hi, "Verdict::between: lo > hi");
  Verdict v;
  v.name = std::move(name);
  v.measured = measured;
  v.expected_lo = lo;
  v.expected_hi = hi;
  v.pass = measured >= lo && measured <= hi;
  v.note = std::move(note);
  return v;
}

std::ostream& ExperimentContext::out() const {
  return log != nullptr ? *log : null_stream();
}

ThreadPool& ExperimentContext::worker_pool() const {
  FJS_REQUIRE(pool != nullptr,
              "ExperimentContext: runner did not attach a worker pool");
  return *pool;
}

void emit_table(ExperimentContext& ctx, ExperimentResult& result,
                const std::string& title, Table table,
                const std::string& csv_name) {
  ctx.out() << "### " << title << "\n\n" << table.render() << '\n';
  result.tables.push_back(NamedTable{csv_name, title, std::move(table)});
}

}  // namespace fjs::experiments
