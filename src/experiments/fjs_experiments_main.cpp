// fjs_experiments — the registry-driven experiment runner CLI.
//
//   fjs_experiments --list                     enumerate the registry
//   fjs_experiments --smoke                    fast CI profile, E1..E16
//   fjs_experiments --only e1,e14              run a named subset
//   fjs_experiments --filter 'miner|overlap'   regex over name/title/desc
//   fjs_experiments --jobs 8 --out results     parallelism / output root
//
// Exit status: 0 when every selected experiment ran clean and every
// verdict passed, 1 on any failure, 2 on usage errors.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/registry.h"
#include "experiments/runner.h"
#include "support/assert.h"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: fjs_experiments [options]\n"
     << "  --list               print the registered experiments and exit\n"
     << "  --smoke              scaled-down CI profile (fast, deterministic)\n"
     << "  --only LIST          comma-separated experiment names (e.g."
        " e1,e14)\n"
     << "  --skip LIST          comma-separated names to exclude\n"
     << "  --filter REGEX       case-insensitive regex over name, title,\n"
     << "                       description and paper reference\n"
     << "  --jobs N             worker threads (default: hardware)\n"
     << "  --seed S             base seed; 0 (default) reproduces the\n"
     << "                       legacy per-experiment seeds exactly\n"
     << "  --out DIR            output root (default: results)\n"
     << "  --run-id ID          run directory name (default: generated;\n"
     << "                       an existing directory is refused)\n"
     << "  --force              replace an existing --run-id directory\n"
     << "                       instead of refusing\n"
     << "  --trace FILE         write a Chrome-tracing JSON (one span per\n"
     << "                       experiment) to FILE; view at\n"
     << "                       chrome://tracing or ui.perfetto.dev\n"
     << "  --quiet              skip the console replay (files still"
        " written)\n"
     << "  --help               this text\n";
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  try {
    std::size_t used = 0;
    out = std::stoull(text, &used);
    return used == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string part;
  while (std::getline(stream, part, ',')) {
    if (!part.empty()) {
      parts.push_back(part);
    }
  }
  return parts;
}

void print_registry(std::ostream& os) {
  for (const auto* exp : fjs::experiments::experiment_registry()) {
    os << exp->name() << "  " << exp->title() << " [" << exp->paper_ref()
       << "]\n    " << exp->description() << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  // E9 drives google-benchmark programmatically; Initialize() settles its
  // global flags once so RunSpecifiedBenchmarks works from any selection.
  int bench_argc = 1;
  benchmark::Initialize(&bench_argc, argv);

  fjs::experiments::RunnerOptions options;
  std::vector<std::string> only;
  std::vector<std::string> skip;
  std::string filter;
  bool list = false;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&](const char* what) -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "fjs_experiments: " << arg << " needs " << what << '\n';
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--only") {
      const auto parts = split_csv(value("a comma-separated name list"));
      only.insert(only.end(), parts.begin(), parts.end());
    } else if (arg == "--skip") {
      const auto parts = split_csv(value("a comma-separated name list"));
      skip.insert(skip.end(), parts.begin(), parts.end());
    } else if (arg == "--filter") {
      filter = value("a regex argument");
    } else if (arg == "--jobs") {
      std::uint64_t n = 0;
      if (!parse_u64(value("a numeric argument"), n) || n < 1) {
        std::cerr << "fjs_experiments: --jobs must be a positive integer\n";
        return 2;
      }
      options.jobs = static_cast<std::size_t>(n);
    } else if (arg == "--seed") {
      if (!parse_u64(value("a numeric argument"), options.seed)) {
        std::cerr << "fjs_experiments: --seed must be a non-negative"
                     " integer\n";
        return 2;
      }
    } else if (arg == "--out") {
      options.out_root = value("a directory argument");
    } else if (arg == "--run-id") {
      options.run_id = value("a directory-name argument");
    } else if (arg == "--force") {
      options.force = true;
    } else if (arg == "--trace") {
      options.trace_path = value("a file argument");
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      std::cerr << "fjs_experiments: unknown option " << arg << '\n';
      print_usage(std::cerr);
      return 2;
    }
  }

  if (options.force && options.run_id.empty()) {
    std::cerr << "fjs_experiments: --force requires --run-id (generated ids"
                 " never collide)\n";
    return 2;
  }

  if (list) {
    print_registry(std::cout);
    return 0;
  }

  try {
    auto selection = fjs::experiments::select_experiments(only, filter);
    if (!skip.empty()) {
      for (const auto& name : skip) {
        FJS_REQUIRE(fjs::experiments::find_experiment(name) != nullptr,
                    "unknown experiment in --skip: " + name);
      }
      std::erase_if(selection, [&](const fjs::experiments::Experiment* exp) {
        for (const auto& name : skip) {
          if (exp->name() == name) {
            return true;
          }
        }
        return false;
      });
    }
    if (selection.empty()) {
      std::cerr << "fjs_experiments: selection matches no experiments\n";
      return 2;
    }
    const auto report = fjs::experiments::run_experiments(selection, options);
    return fjs::experiments::exit_code(report);
  } catch (const fjs::AssertionError& e) {
    std::cerr << "fjs_experiments: " << e.what() << '\n';
    return 2;
  }
}
