#include "experiments/registry.h"

#include <algorithm>
#include <regex>

#include "experiments/experiments_all.h"
#include "support/assert.h"

namespace fjs::experiments {

namespace {

std::vector<std::unique_ptr<Experiment>>& storage() {
  static std::vector<std::unique_ptr<Experiment>> experiments = [] {
    std::vector<std::unique_ptr<Experiment>> all;
    all.push_back(make_e1_experiment());
    all.push_back(make_e2_experiment());
    all.push_back(make_e3_experiment());
    all.push_back(make_e4_experiment());
    all.push_back(make_e5_experiment());
    all.push_back(make_e6_experiment());
    all.push_back(make_e7_experiment());
    all.push_back(make_e8_experiment());
    all.push_back(make_e9_experiment());
    all.push_back(make_e10_experiment());
    all.push_back(make_e11_experiment());
    all.push_back(make_e12_experiment());
    all.push_back(make_e13_experiment());
    all.push_back(make_e14_experiment());
    all.push_back(make_e15_experiment());
    all.push_back(make_e16_experiment());
    return all;
  }();
  return experiments;
}

// Rebuilt after every runtime registration; cheap (pointer list).
std::vector<const Experiment*>& view() {
  static std::vector<const Experiment*> pointers;
  pointers.clear();
  pointers.reserve(storage().size());
  for (const auto& experiment : storage()) {
    pointers.push_back(experiment.get());
  }
  return pointers;
}

}  // namespace

const std::vector<const Experiment*>& experiment_registry() { return view(); }

void register_experiment(std::unique_ptr<Experiment> experiment) {
  FJS_REQUIRE(experiment != nullptr, "register_experiment: null experiment");
  const std::string name = experiment->name();
  FJS_REQUIRE(!name.empty(), "register_experiment: empty name");
  FJS_REQUIRE(find_experiment(name) == nullptr,
              "register_experiment: duplicate experiment name '" + name + "'");
  storage().push_back(std::move(experiment));
}

const Experiment* find_experiment(const std::string& name) {
  for (const auto& experiment : storage()) {
    if (experiment->name() == name) {
      return experiment.get();
    }
  }
  return nullptr;
}

std::vector<const Experiment*> select_experiments(
    const std::vector<std::string>& only, const std::string& filter) {
  // Validate the --only names up front so a typo fails loudly even if
  // the filter would have excluded it anyway.
  for (const std::string& name : only) {
    FJS_REQUIRE(find_experiment(name) != nullptr,
                "unknown experiment '" + name + "' (see --list)");
  }

  std::regex pattern;
  if (!filter.empty()) {
    try {
      pattern = std::regex(filter, std::regex::ECMAScript | std::regex::icase);
    } catch (const std::regex_error& e) {
      FJS_REQUIRE(false, "bad --filter regex '" + filter + "': " + e.what());
    }
  }

  std::vector<const Experiment*> selected;
  for (const Experiment* experiment : experiment_registry()) {
    if (!only.empty() &&
        std::find(only.begin(), only.end(), experiment->name()) ==
            only.end()) {
      continue;
    }
    if (!filter.empty()) {
      const std::string haystack = experiment->name() + " " +
                                   experiment->title() + " " +
                                   experiment->description() + " " +
                                   experiment->paper_ref();
      if (!std::regex_search(haystack, pattern)) {
        continue;
      }
    }
    selected.push_back(experiment);
  }
  return selected;
}

}  // namespace fjs::experiments
