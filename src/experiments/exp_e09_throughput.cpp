// E9 — engineering throughput benchmarks (google-benchmark).
//
// Not a paper experiment: measures the simulator's and solvers' raw
// performance so regressions in the substrate are visible — events/second
// per scheduler, IntervalSet operations, exact-solver scaling, heuristic
// cost, and parallel sweep speedup. The benchmarks are registered
// dynamically so the smoke profile can run the fast regression subset
// (the one scripts/reproduce.sh diffs against BENCH_e9.json) with a short
// min-time. Results go to <out_dir>/benchmarks.json in google-benchmark's
// JSON format — scripts/bench_compare.py consumes it unchanged.
//
// Timing numbers are only meaningful when E9 runs alone on an idle
// machine (`fjs_experiments --only e9`); its verdicts check completion,
// not speed — the perf gate lives in scripts/bench_compare.py.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "adversary/instance_miner.h"
#include "analysis/sweep.h"
#include "core/interval_set.h"
#include "experiments/experiments_all.h"
#include "offline/annealing.h"
#include "offline/exact.h"
#include "offline/heuristic.h"
#include "offline/lower_bound.h"
#include "schedulers/registry.h"
#include "sim/portfolio.h"
#include "support/alloc_counter.h"
#include "support/rng.h"
#include "support/simd.h"
#include "support/telemetry.h"
#include "support/thread_pool.h"
#include "workload/generator.h"

namespace fjs::experiments {

namespace {

Instance bench_instance(std::size_t jobs, std::uint64_t seed) {
  WorkloadConfig config;
  config.job_count = jobs;
  config.arrival_rate = 2.0;
  config.laxity_max = 6.0;
  return generate_workload(config, seed);
}

void engine_throughput(benchmark::State& state, const std::string& key) {
  const Instance inst = bench_instance(10'000, 1);
  const auto spec_clairvoyant = [&] {
    for (const auto& spec : scheduler_registry()) {
      if (spec.key == key) {
        return spec.clairvoyant;
      }
    }
    return false;
  }();
  std::size_t events = 0;
  for (auto _ : state) {
    const auto scheduler = make_scheduler(key);
    const SimulationResult result =
        simulate(inst, *scheduler, spec_clairvoyant);
    events += result.event_count;
    benchmark::DoNotOptimize(result.schedule);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("events/iteration");
}

// Lengths are chosen so the union keeps thousands of components at
// n=10000 (~60% domain coverage): both construction paths then exercise
// their real costs. Much longer intervals collapse the union to a single
// component, reducing n× add() to a degenerate O(1) merge-into-back that
// benchmarks nothing.
std::vector<Interval> random_intervals(std::size_t n) {
  Rng rng(7);
  std::vector<Interval> intervals;
  intervals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t lo = rng.uniform_int(0, 1'000'000);
    intervals.emplace_back(Time(lo), Time(lo + rng.uniform_int(1, 200)));
  }
  return intervals;
}

// Bulk sort-then-merge construction — the path hot callers (active_set,
// sweeps) use. The per-iteration vector copy is part of the measured cost;
// the constructor takes its input by value.
void interval_set_add(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<Interval> intervals = random_intervals(n);
  for (auto _ : state) {
    IntervalSet set(intervals);
    benchmark::DoNotOptimize(set.measure());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

// Legacy n× add() path, kept for comparison against the bulk build.
void interval_set_add_incremental(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<Interval> intervals = random_intervals(n);
  for (auto _ : state) {
    IntervalSet set;
    for (const auto& iv : intervals) {
      set.add(iv);
    }
    benchmark::DoNotOptimize(set.measure());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

Instance solver_instance(std::size_t jobs) {
  WorkloadConfig config;
  config.job_count = jobs;
  config.integral = true;
  config.laxity_max = 4.0;
  return generate_workload(config, 3);
}

// Branch-and-bound solver: the extended args (12, 14) were out of reach
// for the grid DFS, which is benchmarked separately at its feasible sizes.
void exact_solver(benchmark::State& state) {
  const Instance inst =
      solver_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_optimal_span(inst));
  }
}

// Legacy grid DFS on the same instances — the "before" curve.
void exact_solver_reference(benchmark::State& state) {
  const Instance inst =
      solver_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_optimal_span_reference(inst));
  }
}

// Miner throughput at fixed search effort (identical candidate sequences
// in both variants — the objective values, and therefore the
// hill-climbing path, are the same). items/s counts candidate evaluations.
MinerOptions miner_bench_options() {
  MinerOptions options;
  options.population = 32;
  options.rounds = 12;
  options.mutations_per_round = 16;
  options.jobs = 10;  // large enough that certification dominates mining
  options.seed = 17;
  return options;
}

void miner(benchmark::State& state) {
  std::size_t evaluations = 0;
  for (auto _ : state) {
    const MinerResult result = mine_worst_case("batch", miner_bench_options());
    evaluations += result.evaluations;
    benchmark::DoNotOptimize(result.worst_ratio);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(evaluations));
  state.SetLabel("candidate evaluations");
}

// The pre-PR-2 mining stack at the same search effort: no objective memo
// and grid-DFS certification.
void miner_legacy(benchmark::State& state) {
  MinerOptions options = miner_bench_options();
  options.use_objective_memo = false;
  const bool clairvoyant = make_scheduler("batch")->requires_clairvoyance();
  std::size_t evaluations = 0;
  for (auto _ : state) {
    const MinerResult result = mine_instance(
        [clairvoyant](const Instance& instance) {
          const auto scheduler = make_scheduler("batch");
          const Time span = simulate_span(instance, *scheduler, clairvoyant);
          return time_ratio(span, exact_optimal_span_reference(instance));
        },
        options);
    evaluations += result.evaluations;
    benchmark::DoNotOptimize(result.worst_ratio);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(evaluations));
  state.SetLabel("candidate evaluations");
}

// The incremental-simulation half of the miner's objective in isolation:
// single-job arrival mutations of a 1000-job timeline replayed through one
// warm prefix-replay PortfolioRunner, hint forwarded exactly as the miner
// does. BM_Miner measures the full mining stack (where exact certification
// dominates at 10 jobs); this curve tracks the checkpointed-replay
// subsystem itself, so a prefix-cache regression is visible even when the
// solver's noise hides it end to end.
void miner_incremental(benchmark::State& state) {
  const Instance base = bench_instance(1'000, 13);
  // The miner's real substrate: a mutation scratch table replayed through
  // the view path — no Instance is materialized per candidate.
  JobTable table{base.view()};
  const auto scheduler = make_scheduler("batch+");
  const PortfolioEntry entry{scheduler.get(),
                             scheduler->requires_clairvoyance()};
  PortfolioRunner runner;
  // Same opt-in as the miner: replays are static (preloaded timeline,
  // NoDeferralOracle), so the cache is sound for batch+'s non-clairvoyant
  // model too.
  runner.enable_prefix_replay(EngineCheckpointSeries::kDefaultSlots,
                              /*include_nonclairvoyant=*/true);
  Rng rng(29);
  runner.run_span(table.view(), entry);  // seed the checkpoint lineage
  const std::int64_t unit = Time::kTicksPerUnit;
  std::size_t sims = 0;
  for (auto _ : state) {
    const auto victim = static_cast<JobId>(
        rng.uniform_int(0, static_cast<std::int64_t>(table.size()) - 1));
    const Job job = table.job(victim);
    const Time old_arrival = job.arrival;
    const std::int64_t jitter = rng.uniform_int(-unit, unit);
    const Time arrival(
        std::max<std::int64_t>(0, job.arrival.ticks() + jitter));
    table.set(victim, arrival, std::max(job.deadline, arrival), job.length);
    const Time hint = std::min(old_arrival, arrival);
    benchmark::DoNotOptimize(
        runner.run_span(table.view(), entry, nullptr, hint));
    ++sims;
  }
  const PrefixReplayStats stats = runner.prefix_stats();
  state.SetItemsProcessed(static_cast<std::int64_t>(sims));
  state.counters["arrivals_skipped_per_sim"] = benchmark::Counter(
      static_cast<double>(stats.arrivals_skipped) /
      static_cast<double>(sims > 0 ? sims : 1));
  state.SetLabel("mutated replays; " + std::to_string(stats.hits) + " hits / " +
                 std::to_string(stats.misses) + " misses");
}

// Columnar lowering in isolation: one warm PreparedInstance re-lowering
// the same 1000-job view every iteration — the per-candidate fixed cost
// of every shared-timeline replay (arrival sort fast path + record build,
// zero steady-state allocations).
void prepare_view(benchmark::State& state) {
  const Instance inst = bench_instance(1'000, 11);
  const InstanceView view = inst.view();
  PreparedInstance prepared;
  prepared.prepare(view);  // warm the internal buffers
  std::size_t lowered = 0;
  for (auto _ : state) {
    prepared.prepare(view);
    benchmark::DoNotOptimize(prepared.records().data());
    lowered += prepared.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(lowered));
  state.SetLabel("jobs lowered/iteration");
}

// Pins the release-path access contract (docs/DATA_MODEL.md): the
// unchecked InstanceView column reads the solver/engine hot loops use vs
// the checked Instance::job() row lookup. The two curves document why the
// hot loops hoist a view.
void view_access(benchmark::State& state, bool checked) {
  const Instance inst = bench_instance(10'000, 21);
  const InstanceView view = inst.view();
  std::int64_t acc = 0;
  for (auto _ : state) {
    if (checked) {
      for (JobId id = 0; id < inst.size(); ++id) {
        const Job j = inst.job(id);
        acc += j.arrival.ticks() + j.deadline.ticks() + j.length.ticks();
      }
    } else {
      for (JobId id = 0; id < view.size(); ++id) {
        acc += view.arrival(id).ticks() + view.deadline(id).ticks() +
               view.length(id).ticks();
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(inst.size()));
  state.SetLabel("column reads");
}

// Annealing neighbor-evaluation throughput on a 2048-job instance: the
// full O(n) union re-measure per proposal vs the incremental
// committed-state scan (reject = O(affected window), no undo). Spans and
// schedules are bit-identical either way (pinned in
// test_offline_annealing); the pair of curves documents the speedup.
Instance anneal_instance(std::size_t n) {
  Rng rng(5);
  const std::int64_t unit = Time::kTicksPerUnit;
  std::vector<Job> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Time arrival(
        unit * rng.uniform_int(0, 2 * static_cast<std::int64_t>(n)));
    const Time length(unit * rng.uniform_int(1, 8));
    const Time deadline = arrival + Time(unit * rng.uniform_int(0, 12));
    jobs.push_back(Job{static_cast<JobId>(jobs.size()), arrival,
                       std::max(deadline, arrival), length});
  }
  return Instance(std::move(jobs));
}

void anneal(benchmark::State& state, bool incremental) {
  const Instance inst = anneal_instance(2'048);
  AnnealingOptions options;
  options.iterations = 20'000;
  options.incremental = incremental;
  std::size_t proposals = 0;
  for (auto _ : state) {
    const AnnealingResult result = anneal_schedule(inst, options);
    proposals += options.iterations;
    benchmark::DoNotOptimize(result.span);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(proposals));
  state.SetLabel("proposals");
}

// The SIMD layer's two hot reduction bundles (docs/PERF.md, "SIMD
// kernels"), each in a /simd vs /scalar pair via the force-scalar
// override. The pair is the speedup measurement — same build, same
// inputs, only the dispatch tier differs — and the /scalar curve doubles
// as the FJS_SIMD=OFF proxy BENCH_e9_scalar.json gates against.
//
// BM_ViewStats: the full derived-stat recompute an InstanceView pays on
// every fresh read (minmax lengths, arrival/completion window, saturating
// total work, both radix orderings) over a 4096-job view.
void view_stats(benchmark::State& state, bool scalar) {
  const Instance inst = bench_instance(4'096, 17);
  const InstanceView view = inst.view();
  simd::set_force_scalar(scalar);
  std::vector<JobId> order;
  view.ids_by_arrival(order);  // warm the buffer outside the loop
  std::int64_t acc = 0;
  for (auto _ : state) {
    acc += view.min_length().ticks() + view.max_length().ticks();
    acc += view.earliest_arrival().ticks();
    acc += view.latest_completion().ticks();
    bool overflowed = false;
    acc += view.total_work_saturating(&overflowed).ticks();
    view.ids_by_arrival(order);
    acc += order.front();
    view.ids_by_deadline(order);
    acc += order.back();
    benchmark::DoNotOptimize(acc);
  }
  simd::set_force_scalar(false);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(inst.size()));
  state.SetLabel(scalar ? "forced scalar"
                        : simd::tier_name(simd::active_tier()));
}

// BM_LowerBoundBatch: the vectorized offline certification bounds —
// mandatory-work interval union (saturating a+p, compaction, radix-ordered
// sweep) and the max-length bound (minmax reduction) — over the same
// 4096-job view. chain_lower_bound is deliberately excluded: its cost is
// the serial Pareto-front DP (docs/PERF.md), which no tier vectorizes, so
// including it would only dilute the pair toward parity.
void lower_bound_batch(benchmark::State& state, bool scalar) {
  const Instance inst = bench_instance(4'096, 19);
  const InstanceView view = inst.view();
  simd::set_force_scalar(scalar);
  std::int64_t acc = 0;
  for (auto _ : state) {
    acc += mandatory_lower_bound(view).ticks();
    acc += max_length_lower_bound(view).ticks();
    benchmark::DoNotOptimize(acc);
  }
  simd::set_force_scalar(false);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(inst.size()));
  state.SetLabel(scalar ? "forced scalar"
                        : simd::tier_name(simd::active_tier()));
}

void heuristic(benchmark::State& state) {
  const Instance inst =
      bench_instance(static_cast<std::size_t>(state.range(0)), 5);
  HeuristicOptions options;
  options.restarts = 1;
  options.max_passes = 6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(heuristic_span(inst, options));
  }
}

// Span-only portfolio replay: one warm PortfolioRunner cycling a mid-size
// instance through the smoke scheduler pair. The allocs_per_sim counter is
// the steady-state heap-allocation rate measured through the
// FJS_COUNT_ALLOCS operator-new hook — 0 is the design target (see
// docs/PERF.md); the counter is omitted when the hook is compiled out so
// bench_compare.py's --allocs gate never compares apples to zeros.
void portfolio_span(benchmark::State& state) {
  const Instance inst = bench_instance(1'000, 11);
  const auto batch_plus = make_scheduler("batch+");
  const auto profit = make_scheduler("profit");
  const std::vector<PortfolioEntry> entries = {
      PortfolioEntry{batch_plus.get(), batch_plus->requires_clairvoyance()},
      PortfolioEntry{profit.get(), profit->requires_clairvoyance()},
  };
  PortfolioRunner runner;
  std::vector<Time> spans;
  runner.run_spans(inst, entries, spans);  // reach the warm steady state
  std::size_t sims = 0;
  const AllocCounts before = alloc_counts();
  for (auto _ : state) {
    runner.run_spans(inst, entries, spans);
    sims += entries.size();
    benchmark::DoNotOptimize(spans.data());
  }
  const AllocCounts after = alloc_counts();
  state.SetItemsProcessed(static_cast<std::int64_t>(sims));
  if (alloc_counting_enabled()) {
    state.counters["allocs_per_sim"] =
        benchmark::Counter(static_cast<double>(after.allocations -
                                               before.allocations) /
                           static_cast<double>(sims > 0 ? sims : 1));
    state.SetLabel("spans/iteration; alloc hook ON");
  } else {
    state.SetLabel("spans/iteration; alloc hook OFF (-DFJS_COUNT_ALLOCS=ON)");
  }
}

// Per-bump cost of the telemetry hot path: one relaxed fetch_add on a
// thread-owned cell when compiled in, a no-op under -DFJS_TELEMETRY=OFF.
// reproduce.sh runs the E9 smoke subset against both builds and warns if
// the engine benchmarks drift by more than the 1% overhead budget; this
// curve isolates the primitive itself.
void telemetry_counter(benchmark::State& state) {
  static telemetry::Counter counter{"bench.telemetry_counter",
                                    telemetry::Stability::kTiming};
  counter.add(0);  // pay the per-thread warm-up alloc outside the loop
  std::uint64_t bumps = 0;
  for (auto _ : state) {
    counter.increment();
    benchmark::DoNotOptimize(++bumps);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(bumps));
  state.SetLabel(telemetry::enabled() ? "telemetry ON" : "telemetry OFF");
}

void sweep_parallelism(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  WorkloadConfig config;
  config.job_count = 120;
  const auto cases = make_cases(config, "bench", 16, 9);
  ThreadPool pool(threads);
  SweepOptions options;
  options.pool = &pool;
  options.heuristic_options.restarts = 0;
  options.heuristic_options.max_passes = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_ratio_sweep(cases, {"batch+", "profit"}, options));
  }
  state.SetLabel(std::to_string(threads) + " threads");
}

// Registers either the fast regression subset (smoke: the benchmarks
// reproduce.sh gates against BENCH_e9.json, short min-time) or the full
// battery with google-benchmark's defaults. Names match the former
// BENCHMARK()/BENCHMARK_CAPTURE() spellings so BENCH_e9.json baselines
// keep comparing.
void register_benchmarks(bool smoke) {
  const double smoke_min_time = 0.05;
  const auto engine_keys =
      smoke ? std::vector<std::string>{"eager", "batch"}
            : std::vector<std::string>{"eager",  "lazy",   "batch", "batch+",
                                       "cdb",    "profit", "doubler*"};
  for (const std::string& key : engine_keys) {
    // BENCHMARK_CAPTURE named "batch_plus"/"doubler" for the awkward keys.
    std::string suffix = key == "batch+" ? "batch_plus" : key;
    if (suffix == "doubler*") {
      suffix = "doubler";
    }
    auto* b = benchmark::RegisterBenchmark(
        ("BM_EngineThroughput/" + suffix).c_str(),
        [key](benchmark::State& state) { engine_throughput(state, key); });
    if (smoke) {
      b->MinTime(smoke_min_time);
    }
  }

  {
    auto* b = benchmark::RegisterBenchmark("BM_IntervalSetAdd",
                                           interval_set_add);
    if (smoke) {
      b->Arg(10'000)->MinTime(smoke_min_time);
    } else {
      b->Arg(100)->Arg(1'000)->Arg(10'000);
    }
  }
  {
    // In both profiles: the smoke run is what reproduce.sh's allocs gate
    // reads, the full run feeds the BENCH_e9.json baseline.
    auto* b = benchmark::RegisterBenchmark("BM_PortfolioSpan",
                                           portfolio_span);
    if (smoke) {
      b->MinTime(smoke_min_time);
    }
  }
  {
    // In both profiles: reproduce.sh's telemetry-overhead gate reads the
    // smoke run from the default and the -DFJS_TELEMETRY=OFF builds.
    auto* b = benchmark::RegisterBenchmark("BM_TelemetryCounter",
                                           telemetry_counter);
    if (smoke) {
      b->MinTime(smoke_min_time);
    }
  }
  // In both profiles: the SIMD speedup pair is what reproduce.sh's
  // scalar-build gate (BENCH_e9_scalar.json) and the BENCH_e9.json smoke
  // baseline read; /simd vs /scalar in one run is the speedup claim.
  for (const bool scalar : {false, true}) {
    const char* suffix = scalar ? "scalar" : "simd";
    auto* stats = benchmark::RegisterBenchmark(
        (std::string("BM_ViewStats/") + suffix).c_str(),
        [scalar](benchmark::State& state) { view_stats(state, scalar); });
    stats->Unit(benchmark::kMicrosecond);
    auto* bounds = benchmark::RegisterBenchmark(
        (std::string("BM_LowerBoundBatch/") + suffix).c_str(),
        [scalar](benchmark::State& state) {
          lower_bound_batch(state, scalar);
        });
    bounds->Unit(benchmark::kMicrosecond);
    if (smoke) {
      stats->MinTime(smoke_min_time);
      bounds->MinTime(smoke_min_time);
    }
  }
  if (!smoke) {
    benchmark::RegisterBenchmark("BM_IntervalSetAddIncremental",
                                 interval_set_add_incremental)
        ->Arg(100)->Arg(1'000)->Arg(10'000);
    benchmark::RegisterBenchmark("BM_ExactSolver", exact_solver)
        ->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12)->Arg(14)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark("BM_ExactSolverReference",
                                 exact_solver_reference)
        ->Arg(4)->Arg(6)->Arg(8)->Arg(10)
        ->Unit(benchmark::kMicrosecond);
    // Miner/anneal curves run whole search loops per iteration, so single
    // runs are the noisiest rows in the battery: pin 3 repetitions and
    // report only the aggregates (bench_compare.py gates on the median).
    benchmark::RegisterBenchmark("BM_Miner", miner)
        ->Unit(benchmark::kMillisecond)
        ->Repetitions(3)->ReportAggregatesOnly(true);
    benchmark::RegisterBenchmark("BM_MinerLegacy", miner_legacy)
        ->Unit(benchmark::kMillisecond)
        ->Repetitions(3)->ReportAggregatesOnly(true);
    benchmark::RegisterBenchmark("BM_MinerIncremental", miner_incremental)
        ->Unit(benchmark::kMicrosecond)
        ->Repetitions(3)->ReportAggregatesOnly(true);
    benchmark::RegisterBenchmark("BM_PrepareView", prepare_view)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        "BM_ViewAccess/unchecked",
        [](benchmark::State& state) { view_access(state, false); });
    benchmark::RegisterBenchmark(
        "BM_ViewAccess/checked",
        [](benchmark::State& state) { view_access(state, true); });
    benchmark::RegisterBenchmark(
        "BM_AnnealFull",
        [](benchmark::State& state) { anneal(state, /*incremental=*/false); })
        ->Unit(benchmark::kMillisecond)
        ->Repetitions(3)->ReportAggregatesOnly(true);
    benchmark::RegisterBenchmark(
        "BM_AnnealIncremental",
        [](benchmark::State& state) { anneal(state, /*incremental=*/true); })
        ->Unit(benchmark::kMillisecond)
        ->Repetitions(3)->ReportAggregatesOnly(true);
    benchmark::RegisterBenchmark("BM_Heuristic", heuristic)
        ->Arg(50)->Arg(150)->Arg(400)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("BM_SweepParallelism", sweep_parallelism)
        ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
        ->Unit(benchmark::kMillisecond)->UseRealTime();
  }
}

class E9Experiment final : public Experiment {
 public:
  std::string name() const override { return "e9"; }
  std::string title() const override {
    return "engineering throughput benchmarks";
  }
  std::string description() const override {
    return "google-benchmark battery over the engine, IntervalSet, exact "
           "solver, miner, heuristic and sweeps; JSON for bench_compare.py.";
  }
  std::string paper_ref() const override { return "-"; }

  ExperimentResult run(ExperimentContext& ctx) const override {
    ExperimentResult result;
    ctx.out() << "E9: substrate throughput benchmarks ("
              << (ctx.smoke ? "smoke subset, min_time=0.05s"
                            : "full battery")
              << ").\nJSON results: benchmarks.json (google-benchmark"
                 " format; gate with scripts/bench_compare.py).\n\n";

    benchmark::ClearRegisteredBenchmarks();
    register_benchmarks(ctx.smoke);

    // Route the JSON file through benchmark's own --benchmark_out flag:
    // 1.7.x std::exit(1)s on a custom file reporter without it, and with
    // it the library opens the file and owns the reporter lifecycle.
    std::string arg0 = "fjs_experiments";
    std::string out_flag = "--benchmark_out=" + ctx.out_dir +
                           "/benchmarks.json";
    std::string format_flag = "--benchmark_out_format=json";
    std::vector<char*> bench_argv = {arg0.data(), out_flag.data(),
                                     format_flag.data()};
    // Developer escape hatch: FJS_BENCH_FILTER=BM_Miner re-runs a single
    // benchmark family without paying for the whole battery (the JSON it
    // writes is partial — never commit it as a baseline).
    std::string filter_flag;
    if (const char* filter = std::getenv("FJS_BENCH_FILTER")) {
      filter_flag = std::string("--benchmark_filter=") + filter;
      bench_argv.push_back(filter_flag.data());
    }
    int bench_argc = static_cast<int>(bench_argv.size());
    benchmark::Initialize(&bench_argc, bench_argv.data());

    benchmark::ConsoleReporter display;
    display.SetOutputStream(&ctx.out());
    display.SetErrorStream(&ctx.out());
    const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&display);
    benchmark::ClearRegisteredBenchmarks();

    result.artifacts.push_back("benchmarks.json");
    const bool filtered = std::getenv("FJS_BENCH_FILTER") != nullptr;
    result.verdicts.push_back(Verdict::at_least(
        "benchmarks executed", static_cast<double>(ran),
        filtered ? 1.0 : (ctx.smoke ? 3.0 : 10.0),
        "every registered benchmark family ran to completion"));
    return result;
  }
};

}  // namespace

std::unique_ptr<Experiment> make_e9_experiment() {
  return std::make_unique<E9Experiment>();
}

}  // namespace fjs::experiments
