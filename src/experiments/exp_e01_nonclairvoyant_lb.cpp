// E1 — Theorem 3.3 / Figure 1: the non-clairvoyant adaptive adversary.
//
// Reproduces the paper's lower-bound behaviour: against any deterministic
// non-clairvoyant scheduler the measured span ratio approaches
// (kμ+1)/(μ+k) → μ as the number of adversary iterations k grows.
// Verdict: the measured ratio equals the outcome floor to 4 decimals for
// every (μ, k, scheduler).
#include <string>
#include <vector>

#include "adversary/nonclairvoyant_lb.h"
#include "experiments/experiments_all.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/string_util.h"

namespace fjs::experiments {

namespace {

class E1Experiment final : public Experiment {
 public:
  std::string name() const override { return "e1"; }
  std::string title() const override {
    return "non-clairvoyant lower bound";
  }
  std::string description() const override {
    return "Adaptive adversary forcing every deterministic non-clairvoyant "
           "scheduler to ratio (k*mu+1)/(mu+k) -> mu.";
  }
  std::string paper_ref() const override { return "Thm 3.3 / Fig. 1"; }

  ExperimentResult run(ExperimentContext& ctx) const override {
    ExperimentResult result;
    ctx.out() << "E1: non-clairvoyant lower bound (Thm 3.3). The adversary\n"
                 "releases iterations of jobs, earmarks one job per iteration\n"
                 "with length mu, and stops adaptively. Sizes are scaled down\n"
                 "from the paper's double-exponential counts (DESIGN.md).\n\n";

    const std::vector<double> mus =
        ctx.smoke ? std::vector<double>{2.0, 4.0}
                  : std::vector<double>{2.0, 4.0, 8.0};
    const std::vector<int> ks =
        ctx.smoke ? std::vector<int>{1, 2, 3} : std::vector<int>{1, 2, 3, 4};
    const std::vector<const char*> keys =
        ctx.smoke ? std::vector<const char*>{"eager", "batch+"}
                  : std::vector<const char*>{"eager", "batch", "batch+"};
    const std::size_t first_count = ctx.smoke ? 512 : 4096;

    Table table({"mu", "k", "scheduler", "iters", "earmarks", "measured",
                 "floor (kmu+1)/(mu+k)", "target mu"});

    for (const double mu : mus) {
      for (const int k : ks) {
        for (const char* key : keys) {
          NonClairvoyantLbParams params;
          params.mu = mu;
          params.iterations = k;
          params.alpha = mu + 2.0;
          params.first_count = first_count;
          const auto scheduler = make_scheduler(key);
          NonClairvoyantAdversary adversary(params);
          Engine engine(adversary, adversary, *scheduler, {});
          const SimulationResult sim = engine.run();
          const Schedule reference = adversary.reference_schedule(sim.instance);
          const double measured =
              time_ratio(sim.span(), reference.span(sim.instance));
          const double floor = adversary.theoretical_ratio_floor();
          table.add_row(
              {format_double(mu, 1), std::to_string(k), key,
               std::to_string(adversary.iterations_released()),
               std::to_string(adversary.earmarks().size()),
               format_double(measured, 4), format_double(floor, 4),
               format_double(mu, 1)});
          result.verdicts.push_back(Verdict::equals(
              "ratio floor mu=" + format_double(mu, 1) +
                  " k=" + std::to_string(k) + " " + key,
              measured, floor, 1e-4,
              "measured span ratio = (k*mu+1)/(mu+k) to 4 decimals"));
          result.verdicts.push_back(Verdict::at_most(
              "ratio below target mu=" + format_double(mu, 1) +
                  " k=" + std::to_string(k) + " " + key,
              measured, mu, "no single k exceeds the limit mu", 1e-9));
        }
      }
    }
    emit_table(ctx, result, "E1 non-clairvoyant adversary ratios", table,
               "e1_nclb");

    ctx.out() << "Reading: 'measured' tracks the outcome floor and climbs\n"
                 "toward mu with k — no non-clairvoyant scheduler escapes.\n";
    return result;
  }
};

}  // namespace

std::unique_ptr<Experiment> make_e1_experiment() {
  return std::make_unique<E1Experiment>();
}

}  // namespace fjs::experiments
