// E12 — measurement-methodology validation (not a paper experiment).
//
// Every competitive ratio in E5–E8 leans on the offline OPT estimators.
// This experiment quantifies their quality on instances small enough for
// the exact solver: optimality gaps of the alignment local search and the
// simulated annealer, tightness of the certified lower bound, and exact
// solver cost. If these gaps drifted, the E5–E8 brackets would widen —
// this is the regression canary. Verdicts assert the sandwich
// LB <= OPT <= {local search, annealer} on every instance.
#include <string>
#include <vector>

#include "experiments/experiments_all.h"
#include "offline/annealing.h"
#include "offline/exact.h"
#include "offline/heuristic.h"
#include "offline/lower_bound.h"
#include "support/parallel.h"
#include "support/stats.h"
#include "support/string_util.h"
#include "support/thread_pool.h"
#include "workload/suite.h"

namespace fjs::experiments {

namespace {

class E12Experiment final : public Experiment {
 public:
  std::string name() const override { return "e12"; }
  std::string title() const override {
    return "offline estimator methodology";
  }
  std::string description() const override {
    return "Optimality gaps of the heuristic, annealer and certified lower "
           "bound against the exact solver on small integral instances.";
  }
  std::string paper_ref() const override { return "-"; }

  ExperimentResult run(ExperimentContext& ctx) const override {
    ExperimentResult result;
    const std::size_t job_count = ctx.smoke ? 10 : 12;
    const std::uint64_t seeds = ctx.smoke ? 2 : 8;
    ctx.out() << "E12: offline-OPT estimator quality on exact-solvable"
                 " instances\n("
              << job_count << " jobs, integral, 8 workload families x "
              << seeds << " seeds).\n\n";

    struct Case {
      std::string family;
      Instance instance;
    };
    std::vector<Case> cases;
    for (const auto& named : integral_suite(job_count)) {
      for (std::uint64_t seed = 0; seed < seeds; ++seed) {
        cases.push_back(
            Case{named.name, generate_workload(named.config, seed + ctx.seed)});
      }
    }

    struct Row {
      Time opt;
      Time heuristic;
      Time annealed;
      Time lb;
      std::size_t nodes;
      std::size_t cache_hits;
    };
    std::vector<Row> rows(cases.size());
    parallel_for(ctx.worker_pool(), cases.size(), [&](std::size_t i) {
      const Instance& inst = cases[i].instance;
      const ExactResult exact = exact_optimal(inst);
      rows[i] = Row{.opt = exact.span,
                    .heuristic = heuristic_span(inst),
                    .annealed = anneal_schedule(inst).span,
                    .lb = best_lower_bound(inst),
                    .nodes = exact.nodes_explored,
                    .cache_hits = exact.cache_hits};
    });

    Summary heuristic_gap;
    Summary anneal_gap;
    Summary lb_gap;
    Summary nodes;
    Summary cache_hits;
    std::size_t heuristic_exact_hits = 0;
    std::size_t anneal_exact_hits = 0;
    for (const Row& row : rows) {
      heuristic_gap.add(time_ratio(row.heuristic, row.opt));
      anneal_gap.add(time_ratio(row.annealed, row.opt));
      lb_gap.add(time_ratio(row.opt, row.lb));
      nodes.add(static_cast<double>(row.nodes));
      cache_hits.add(static_cast<double>(row.cache_hits));
      heuristic_exact_hits += row.heuristic == row.opt ? 1u : 0u;
      anneal_exact_hits += row.annealed == row.opt ? 1u : 0u;
    }

    Table table({"estimator", "mean vs OPT", "p95 vs OPT", "worst vs OPT",
                 "optimal hits"});
    table.add_row({"alignment local search",
                   format_double(heuristic_gap.mean(), 4),
                   format_double(heuristic_gap.percentile(95.0), 4),
                   format_double(heuristic_gap.max(), 4),
                   std::to_string(heuristic_exact_hits) + "/" +
                       std::to_string(rows.size())});
    table.add_row({"simulated annealing", format_double(anneal_gap.mean(), 4),
                   format_double(anneal_gap.percentile(95.0), 4),
                   format_double(anneal_gap.max(), 4),
                   std::to_string(anneal_exact_hits) + "/" +
                       std::to_string(rows.size())});
    table.add_row({"OPT / certified LB", format_double(lb_gap.mean(), 4),
                   format_double(lb_gap.percentile(95.0), 4),
                   format_double(lb_gap.max(), 4), "-"});

    result.verdicts.push_back(Verdict::at_least(
        "local search feasible", heuristic_gap.min(), 1.0,
        "no heuristic schedule beats the exact optimum", 1e-9));
    result.verdicts.push_back(Verdict::at_least(
        "annealer feasible", anneal_gap.min(), 1.0,
        "no annealed schedule beats the exact optimum", 1e-9));
    result.verdicts.push_back(Verdict::at_least(
        "lower bound sound", lb_gap.min(), 1.0,
        "certified LB never exceeds the exact optimum", 1e-9));
    emit_table(ctx, result, "E12 offline estimator quality", table,
               "e12_methodology");

    ctx.out() << "exact solver nodes: mean " << format_double(nodes.mean(), 1)
              << ", max " << format_double(nodes.max(), 0)
              << " (transposition hits: mean "
              << format_double(cache_hits.mean(), 1) << ", max "
              << format_double(cache_hits.max(), 0) << ")\n"
              << "Reading: the local search is near-exact on small"
                 " instances, so E5-E8 ratio brackets are tight;\nthe LB gap"
                 " shows how conservative upper ratio estimates are.\n";
    return result;
  }
};

}  // namespace

std::unique_ptr<Experiment> make_e12_experiment() {
  return std::make_unique<E12Experiment>();
}

}  // namespace fjs::experiments
