// The experiment runner: executes a selection of registered experiments
// in parallel, lays out results/<run-id>/, and aggregates the verdicts.
//
// Output layout (docs/EXPERIMENTS_RUNNER.md documents the schemas):
//   <out_root>/<run_id>/
//     manifest.json        run configuration, host info, per-experiment
//                          wall times and emitted files
//     verdicts.json        every Verdict record; byte-stable across
//                          repeated runs and --jobs counts at a fixed
//                          seed (no timestamps inside)
//     report.txt           the replayed narrative logs + verdict summary
//     <name>/              one directory per experiment
//       report.txt         that experiment's narrative log
//       <csv_name>.csv     tables via CsvWriter
//       ...                self-written artifacts (e.g. e9 benchmarks)
//
// Execution model: experiments run on an OUTER pool (dynamic chunking,
// one experiment per task) while ExperimentContext::pool points at a
// SEPARATE inner pool for intra-experiment parallel_for — nesting waits
// on a single pool would deadlock it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "experiments/experiment.h"
#include "support/json.h"
#include "support/telemetry.h"

namespace fjs::experiments {

struct RunnerOptions {
  bool smoke = false;
  /// Worker threads for BOTH pools; 0 = hardware concurrency.
  std::size_t jobs = 0;
  /// Base seed. 0 (default) reproduces the legacy bench outputs byte
  /// for byte; any other value derives a per-experiment offset via
  /// experiment_seed().
  std::uint64_t seed = 0;
  std::string out_root = "results";
  /// Directory name under out_root. Empty: a fresh "run-<utc>-p<pid>"
  /// id is generated. Explicit ids must not already exist (refuses to
  /// overwrite a previous run) unless `force` is set.
  std::string run_id;
  /// Deletes and recreates an existing <out_root>/<run_id> instead of
  /// refusing. Only meaningful with an explicit run_id.
  bool force = false;
  /// When non-empty, the run records Chrome-tracing events (one span per
  /// experiment) and writes them to this path as JSON on completion.
  std::string trace_path;
  /// Suppresses the console replay (files are always written).
  bool quiet = false;
  /// Console sink for progress + replayed logs; nullptr = std::cout.
  std::ostream* console = nullptr;
};

/// Outcome of one experiment inside a run.
struct ExperimentRecord {
  std::string name;
  std::string title;
  std::string paper_ref;
  std::uint64_t seed = 0;
  double wall_ms = 0.0;
  std::vector<Verdict> verdicts;
  std::vector<std::string> csv_files;  ///< relative to the run directory
  std::vector<std::string> artifacts;  ///< relative to the run directory
  std::string error;                   ///< exception text; empty = ran clean

  bool passed() const;
};

struct RunReport {
  std::string run_id;
  std::string run_dir;  ///< <out_root>/<run_id>
  bool smoke = false;
  std::uint64_t base_seed = 0;
  std::size_t jobs = 0;
  std::vector<ExperimentRecord> records;
  /// Telemetry attributed to this run (delta of the process-wide metrics
  /// across the run). manifest.json renders the deterministic subset.
  telemetry::Snapshot telemetry;

  bool all_passed() const;
};

/// Deterministic per-experiment seed offset: 0 stays 0 (legacy outputs),
/// otherwise a splitmix-style hash of (base, name) so experiments do not
/// share RNG streams.
std::uint64_t experiment_seed(std::uint64_t base, const std::string& name);

/// Runs `selection` under `options`: creates the run directory, executes
/// in parallel, writes CSVs/reports/manifest.json/verdicts.json, and
/// replays the narrative logs to the console in selection order.
RunReport run_experiments(const std::vector<const Experiment*>& selection,
                          const RunnerOptions& options);

/// The JSON documents the runner persists, exposed for tests.
JsonValue manifest_json(const RunReport& report);
JsonValue verdicts_json(const RunReport& report);

/// 0 when every experiment ran clean and every verdict passed, 1
/// otherwise (the CLI maps usage errors to 2 itself).
int exit_code(const RunReport& report);

}  // namespace fjs::experiments
