// E5 — Theorem 4.4: Classify-by-Duration Batch+ and the choice of α.
//
// The theorem bounds CDB by f(α) = 3α + 4 + 2/(α−1), minimized at
// α* = 1 + √(2/3) ≈ 1.8165 where f = 7 + 2√6 ≈ 11.9. We sweep α over
// multi-category workloads (bimodal and heavy-tail lengths), measuring
// exact competitive ratios on small integral instances. Verdicts: every
// measured ratio respects the theorem bound, ratios never drop below 1
// (exact OPT), and the bound curve is minimized at α* on the grid.
#include <cmath>
#include <string>
#include <vector>

#include "experiments/experiments_all.h"
#include "offline/exact.h"
#include "schedulers/classify_by_duration.h"
#include "sim/engine.h"
#include "support/parallel.h"
#include "support/stats.h"
#include "support/string_util.h"
#include "support/thread_pool.h"
#include "workload/generator.h"

namespace fjs::experiments {

namespace {

class E5Experiment final : public Experiment {
 public:
  std::string name() const override { return "e5"; }
  std::string title() const override { return "CDB alpha sweep"; }
  std::string description() const override {
    return "Classify-by-Duration bound f(alpha)=3a+4+2/(a-1) minimized at "
           "alpha*=1+sqrt(2/3); exact ratios on multi-category workloads.";
  }
  std::string paper_ref() const override { return "Thm 4.4"; }

  ExperimentResult run(ExperimentContext& ctx) const override {
    ExperimentResult result;
    const double alpha_star = CdbScheduler::optimal_alpha();
    const double bound_star = 7.0 + 2.0 * std::sqrt(6.0);
    ctx.out() << "E5: CDB alpha sweep (Thm 4.4). alpha* = 1+sqrt(2/3) = "
              << format_double(alpha_star, 4)
              << ", bound at alpha* = 7+2*sqrt(6) = "
              << format_double(bound_star, 4) << "\n\n";

    // Multi-category instances: lengths spanning 1..8 force several CDB
    // categories so alpha actually matters.
    const std::uint64_t seeds = ctx.smoke ? 4 : 12;
    std::vector<Instance> cases;
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      WorkloadConfig bimodal;
      bimodal.job_count = 8;
      bimodal.integral = true;
      bimodal.lengths = LengthDistribution::kBimodal;
      bimodal.length_min = 1.0;
      bimodal.length_max = 8.0;
      bimodal.bimodal_short_fraction = 0.7;
      bimodal.laxity_max = 5.0;
      cases.push_back(generate_workload(bimodal, seed + ctx.seed));

      WorkloadConfig spread = bimodal;
      spread.lengths = LengthDistribution::kUniform;
      spread.length_max = 6.0;
      cases.push_back(generate_workload(spread, seed + 100 + ctx.seed));
    }
    std::vector<Time> opts(cases.size());
    parallel_for(ctx.worker_pool(), cases.size(), [&](std::size_t i) {
      opts[i] = exact_optimal_span(cases[i]);
    });

    Table table({"alpha", "mean ratio", "p90 ratio", "worst ratio",
                 "theorem bound 3a+4+2/(a-1)"});
    const std::vector<double> alphas =
        ctx.smoke ? std::vector<double>{1.2, 1.8165, 3.0, 6.0}
                  : std::vector<double>{1.2, 1.4, 1.6, 1.8165, 2.0,
                                        2.4, 3.0, 4.0, 6.0};
    double min_bound = 0.0;
    for (const double alpha : alphas) {
      Summary ratios;
      for (std::size_t i = 0; i < cases.size(); ++i) {
        CdbScheduler cdb(alpha);
        const Time span = simulate_span(cases[i], cdb, true);
        ratios.add(time_ratio(span, opts[i]));
      }
      const double bound = 3.0 * alpha + 4.0 + 2.0 / (alpha - 1.0);
      if (min_bound == 0.0 || bound < min_bound) {
        min_bound = bound;
      }
      table.add_row({format_double(alpha, 4), format_double(ratios.mean(), 4),
                     format_double(ratios.percentile(90.0), 4),
                     format_double(ratios.max(), 4),
                     format_double(bound, 4)});
      result.verdicts.push_back(Verdict::between(
          "worst ratio alpha=" + format_double(alpha, 4), ratios.max(), 1.0,
          bound, "1 <= online/OPT <= 3a+4+2/(a-1) (Thm 4.4)"));
    }
    result.verdicts.push_back(Verdict::equals(
        "bound curve minimum", min_bound, bound_star, 1e-3,
        "min over the alpha grid = f(alpha*) = 7+2*sqrt(6)"));
    emit_table(ctx, result, "E5 CDB alpha sweep", table, "e5_cdb_alpha");

    ctx.out() << "Reading: the theorem-bound column is minimized at"
                 " alpha* = 1.8165; measured ratios on stochastic inputs are\n"
                 "much smaller and comparatively flat, as expected for a"
                 " worst-case guarantee.\n";
    return result;
  }
};

}  // namespace

std::unique_ptr<Experiment> make_e5_experiment() {
  return std::make_unique<E5Experiment>();
}

}  // namespace fjs::experiments
