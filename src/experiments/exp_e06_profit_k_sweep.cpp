// E6 — Theorem 4.11: the Profit scheduler and the choice of k.
//
// The theorem bounds Profit by g(k) = 2k + 2 + 1/(k−1), minimized at
// k* = 1 + √2/2 ≈ 1.7071 where g = 4 + 2√2 ≈ 6.83. We sweep k over the
// same multi-category workloads as E5 plus the golden-ratio adversary,
// measuring exact ratios on small integral instances. Verdicts: measured
// ratios respect g(k), the adversary pins every k between the
// ride-through floor and φ, and the bound curve is minimized at k*.
#include <cmath>
#include <string>
#include <vector>

#include "adversary/clairvoyant_lb.h"
#include "experiments/experiments_all.h"
#include "offline/exact.h"
#include "schedulers/profit.h"
#include "sim/engine.h"
#include "support/parallel.h"
#include "support/stats.h"
#include "support/string_util.h"
#include "support/thread_pool.h"
#include "workload/generator.h"

namespace fjs::experiments {

namespace {

class E6Experiment final : public Experiment {
 public:
  std::string name() const override { return "e6"; }
  std::string title() const override { return "Profit k sweep"; }
  std::string description() const override {
    return "Profit bound g(k)=2k+2+1/(k-1) minimized at k*=1+sqrt(2)/2; "
           "exact ratios plus the golden-ratio adversary at each k.";
  }
  std::string paper_ref() const override { return "Thm 4.11"; }

  ExperimentResult run(ExperimentContext& ctx) const override {
    ExperimentResult result;
    const double k_star = ProfitScheduler::optimal_k();
    const double bound_star = 4.0 + 2.0 * std::sqrt(2.0);
    ctx.out() << "E6: Profit k sweep (Thm 4.11). k* = 1+sqrt(2)/2 = "
              << format_double(k_star, 4)
              << ", bound at k* = 4+2*sqrt(2) = "
              << format_double(bound_star, 4) << "\n\n";

    const std::uint64_t seeds = ctx.smoke ? 4 : 12;
    std::vector<Instance> cases;
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      WorkloadConfig bimodal;
      bimodal.job_count = 8;
      bimodal.integral = true;
      bimodal.lengths = LengthDistribution::kBimodal;
      bimodal.length_min = 1.0;
      bimodal.length_max = 8.0;
      bimodal.bimodal_short_fraction = 0.7;
      bimodal.laxity_max = 5.0;
      cases.push_back(generate_workload(bimodal, seed + ctx.seed));

      WorkloadConfig spread = bimodal;
      spread.lengths = LengthDistribution::kUniform;
      spread.length_max = 6.0;
      cases.push_back(generate_workload(spread, seed + 100 + ctx.seed));
    }
    std::vector<Time> opts(cases.size());
    parallel_for(ctx.worker_pool(), cases.size(), [&](std::size_t i) {
      opts[i] = exact_optimal_span(cases[i]);
    });

    const int adversary_n = ctx.smoke ? 16 : 32;
    Table table({"k", "mean ratio", "p90 ratio", "worst ratio",
                 "adversary ratio", "theorem bound 2k+2+1/(k-1)"});
    const std::vector<double> ks =
        ctx.smoke ? std::vector<double>{1.05, 1.7071, 2.5, 6.0}
                  : std::vector<double>{1.05, 1.2, 1.4, 1.7071, 2.0,
                                        2.5,  3.0, 4.0, 6.0};
    double min_bound = 0.0;
    for (const double k : ks) {
      Summary ratios;
      for (std::size_t i = 0; i < cases.size(); ++i) {
        ProfitScheduler profit(k);
        const Time span = simulate_span(cases[i], profit, true);
        ratios.add(time_ratio(span, opts[i]));
      }
      // Golden-ratio adversary against Profit(k).
      ProfitScheduler profit(k);
      ClairvoyantAdversary adversary(
          ClairvoyantLbParams{.max_iterations = adversary_n});
      NoDeferralOracle oracle;
      Engine engine(adversary, oracle, profit,
                    EngineOptions{.clairvoyant = true});
      const SimulationResult adv = engine.run();
      const double adv_ratio = time_ratio(
          adv.span(),
          adversary.reference_schedule(adv.instance).span(adv.instance));

      const double bound = 2.0 * k + 2.0 + 1.0 / (k - 1.0);
      if (min_bound == 0.0 || bound < min_bound) {
        min_bound = bound;
      }
      table.add_row({format_double(k, 4), format_double(ratios.mean(), 4),
                     format_double(ratios.percentile(90.0), 4),
                     format_double(ratios.max(), 4),
                     format_double(adv_ratio, 4), format_double(bound, 4)});
      result.verdicts.push_back(Verdict::between(
          "worst ratio k=" + format_double(k, 4), ratios.max(), 1.0, bound,
          "1 <= online/OPT <= 2k+2+1/(k-1) (Thm 4.11)"));
      result.verdicts.push_back(Verdict::between(
          "adversary ratio k=" + format_double(k, 4), adv_ratio,
          static_cast<double>(adversary_n) * ClairvoyantAdversary::phi() /
              (ClairvoyantAdversary::phi() + adversary_n - 1.0) -
              1e-4,
          ClairvoyantAdversary::phi() + 1e-4,
          "golden-ratio adversary pins Profit between the ride-through"
          " floor and phi"));
    }
    result.verdicts.push_back(Verdict::equals(
        "bound curve minimum", min_bound, bound_star, 1e-3,
        "min over the k grid = g(k*) = 4+2*sqrt(2)"));
    emit_table(ctx, result, "E6 Profit k sweep", table, "e6_profit_k");

    ctx.out() << "Reading: the theorem-bound column is minimized at"
                 " k* = 1.7071. Small k degrades measured ratios (Profit\n"
                 "stops piggybacking jobs onto running flags); the adversary"
                 " pins every k near phi.\n";
    return result;
  }
};

}  // namespace

std::unique_ptr<Experiment> make_e6_experiment() {
  return std::make_unique<E6Experiment>();
}

}  // namespace fjs::experiments
