// E14 — automated worst-case search (complements the hand-built E1–E4
// constructions).
//
// The miner hill-climbs over small integral instances maximizing each
// scheduler's EXACT competitive ratio. Expected shape: mined ratios stay
// strictly below every proven upper bound (soundness), approach μ+1 for
// Batch+ (its bound is tight), and exceed the clairvoyant lower bound φ
// for every scheduler the paper proves cannot beat it. Verdicts replace
// the old "!!! BOUND VIOLATION" print: each bounded scheduler's mined
// ratio is at most its theorem bound, and every ratio is >= 1 (the miner
// certifies against exact OPT).
#include <string>
#include <vector>

#include "adversary/instance_miner.h"
#include "experiments/experiments_all.h"
#include "schedulers/classify_by_duration.h"
#include "schedulers/profit.h"
#include "support/string_util.h"
#include "support/thread_pool.h"

namespace fjs::experiments {

namespace {

class E14Experiment final : public Experiment {
 public:
  std::string name() const override { return "e14"; }
  std::string title() const override { return "worst-case instance miner"; }
  std::string description() const override {
    return "Hill-climbing miner maximizing exact competitive ratios per "
           "scheduler; mined ratios vs proven theorem bounds.";
  }
  std::string paper_ref() const override { return "Thms 3.4 / 4.4 / 4.11"; }

  ExperimentResult run(ExperimentContext& ctx) const override {
    ExperimentResult result;
    const std::size_t jobs = ctx.smoke ? 8 : 10;
    ctx.out() << "E14: worst-case instance mining (" << jobs
              << " jobs, unit grid, exact-certified ratios).\n\n";

    struct Target {
      const char* key;
      double bound;  // proven upper bound for mu <= 5 instances (p in 1..5)
      const char* bound_label;
    };
    // Instance shape: lengths 1..5 => mu <= 5.
    const double mu_cap = 5.0;
    const double alpha = CdbScheduler::optimal_alpha();
    const double k = ProfitScheduler::optimal_k();
    const std::vector<Target> targets = {
        {"eager", 0.0, "unbounded"},
        {"lazy", 0.0, "unbounded"},
        {"batch", 2.0 * mu_cap + 1.0, "2mu+1 = 11"},
        {"batch+", mu_cap + 1.0, "mu+1 = 6 (tight)"},
        {"cdb", 3.0 * alpha + 4.0 + 2.0 / (alpha - 1.0), "7+2sqrt6 = 11.9"},
        {"profit", 2.0 * k + 2.0 + 1.0 / (k - 1.0), "4+2sqrt2 = 6.83"},
        {"doubler*", 0.0, "(reconstruction)"},
        {"overlap", 0.0, "(heuristic)"},
    };

    // Parallelism lives INSIDE the miner (batched candidate evaluation
    // over the pool), so the scheduler loop is serial — nesting
    // pool-blocking loops inside pool workers would deadlock a small pool.
    std::vector<MinerResult> results(targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i) {
      MinerOptions options;
      options.population = ctx.smoke ? 48 : 512;
      options.rounds = ctx.smoke ? 8 : 160;
      options.mutations_per_round = ctx.smoke ? 16 : 64;
      options.jobs = jobs;
      options.seed = 0xBADF00DULL + i + ctx.seed;
      options.pool = &ctx.worker_pool();
      results[i] = mine_worst_case(targets[i].key, options);
    }

    // Checkpoint cache columns: the prefix-replay hit/miss split of the
    // objective's online-simulation half and the mean staged-arrival depth
    // restored per hit (diagnostics — replayed spans are bit-identical with
    // the cache on or off, so these never influence any verdict).
    Table table({"scheduler", "mined worst ratio", "proven bound",
                 "evaluations", "memo hits", "prefix hits", "prefix misses",
                 "mean prefix depth"});
    for (std::size_t i = 0; i < targets.size(); ++i) {
      table.add_row({targets[i].key, format_double(results[i].worst_ratio, 4),
                     targets[i].bound_label,
                     std::to_string(results[i].evaluations),
                     std::to_string(results[i].memo_hits),
                     std::to_string(results[i].prefix_hits),
                     std::to_string(results[i].prefix_misses),
                     format_double(results[i].mean_prefix_depth(), 2)});
      result.verdicts.push_back(Verdict::at_least(
          "mined ratio certified " + std::string(targets[i].key),
          results[i].worst_ratio, 1.0,
          "online/exact-OPT cannot drop below 1", 1e-9));
      if (targets[i].bound > 0.0) {
        result.verdicts.push_back(Verdict::at_most(
            "bound respected " + std::string(targets[i].key),
            results[i].worst_ratio, targets[i].bound,
            std::string("mined worst case stays below the proven bound ") +
                targets[i].bound_label,
            1e-6));
        if (results[i].worst_ratio > targets[i].bound + 1e-6) {
          ctx.out() << "!!! BOUND VIOLATION for " << targets[i].key << ":\n"
                    << results[i].worst_instance.to_string();
        }
      }
    }
    emit_table(ctx, result, "E14 mined worst cases vs proven bounds", table,
               "e14_miner");

    ctx.out() << "Worst instance mined for batch+ (ratio "
              << format_double(results[3].worst_ratio, 4) << "):\n"
              << results[3].worst_instance.to_string()
              << "\nReading: no mined ratio crosses its theorem's bound;"
                 " eager/lazy ratios keep growing\nwith search effort"
                 " (unbounded), and batch+'s mined ratio pushes toward"
                 " mu+1,\nits tight guarantee.\n";
    return result;
  }
};

}  // namespace

std::unique_ptr<Experiment> make_e14_experiment() {
  return std::make_unique<E14Experiment>();
}

}  // namespace fjs::experiments
