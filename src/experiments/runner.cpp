#include "experiments/runner.h"

#include <sys/utsname.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "support/assert.h"
#include "support/csv.h"
#include "support/parallel.h"
#include "support/string_util.h"
#include "support/thread_pool.h"

namespace fjs::experiments {

namespace {

namespace fs = std::filesystem;

std::string utc_timestamp(const char* format) {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buffer[64];
  std::strftime(buffer, sizeof(buffer), format, &tm);
  return buffer;
}

std::string generated_run_id() {
  return "run-" + utc_timestamp("%Y%m%dT%H%M%SZ") + "-p" +
         std::to_string(static_cast<long>(getpid()));
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  FJS_REQUIRE(out.is_open(), "runner: cannot open " + path);
  out << content;
  FJS_REQUIRE(static_cast<bool>(out), "runner: write failed for " + path);
}

JsonValue string_array(const std::vector<std::string>& items) {
  JsonValue array = JsonValue::array();
  for (const auto& item : items) {
    array.push_back(JsonValue::string(item));
  }
  return array;
}

JsonValue verdict_json(const Verdict& verdict) {
  JsonValue value = JsonValue::object();
  value.set("name", JsonValue::string(verdict.name));
  value.set("measured", JsonValue::number(verdict.measured));
  value.set("expected_lo", JsonValue::number(verdict.expected_lo));
  value.set("expected_hi", JsonValue::number(verdict.expected_hi));
  value.set("pass", JsonValue::boolean(verdict.pass));
  value.set("note", JsonValue::string(verdict.note));
  return value;
}

std::size_t failure_count(const ExperimentRecord& record) {
  std::size_t failures = 0;
  for (const auto& verdict : record.verdicts) {
    failures += verdict.pass ? 0u : 1u;
  }
  return failures;
}

}  // namespace

bool ExperimentRecord::passed() const {
  return error.empty() && failure_count(*this) == 0;
}

bool RunReport::all_passed() const {
  for (const auto& record : records) {
    if (!record.passed()) {
      return false;
    }
  }
  return true;
}

std::uint64_t experiment_seed(std::uint64_t base, const std::string& name) {
  if (base == 0) {
    return 0;  // legacy mode: every experiment uses its historical seeds
  }
  // FNV-1a over the name, mixed with the base via splitmix64 finalizer.
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  std::uint64_t z = base + 0x9E3779B97F4A7C15ULL + hash;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

RunReport run_experiments(const std::vector<const Experiment*>& selection,
                          const RunnerOptions& options) {
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t jobs = options.jobs == 0 ? hardware : options.jobs;

  RunReport report;
  report.smoke = options.smoke;
  report.base_seed = options.seed;
  report.jobs = jobs;

  fs::create_directories(options.out_root);
  if (options.run_id.empty()) {
    std::string id = generated_run_id();
    for (int n = 2; fs::exists(fs::path(options.out_root) / id); ++n) {
      id = generated_run_id() + "-" + std::to_string(n);
    }
    report.run_id = id;
  } else {
    const fs::path target = fs::path(options.out_root) / options.run_id;
    if (options.force) {
      fs::remove_all(target);
    } else {
      FJS_REQUIRE(
          !fs::exists(target),
          "runner: run directory already exists: " + options.out_root + "/" +
              options.run_id +
              " (refusing to overwrite a previous run; pass --force to "
              "replace it)");
    }
    report.run_id = options.run_id;
  }
  report.run_dir = (fs::path(options.out_root) / report.run_id).string();
  fs::create_directories(report.run_dir);

  report.records.resize(selection.size());
  std::vector<std::string> logs(selection.size());
  for (std::size_t i = 0; i < selection.size(); ++i) {
    const Experiment& exp = *selection[i];
    ExperimentRecord& record = report.records[i];
    record.name = exp.name();
    record.title = exp.title();
    record.paper_ref = exp.paper_ref();
    record.seed = experiment_seed(options.seed, record.name);
    fs::create_directories(fs::path(report.run_dir) / record.name);
  }

  // Attribute telemetry to this run as a before/after delta of the
  // process-wide registry; the deterministic subset lands in the
  // manifest. Tracing (when requested) records one span per experiment.
  const telemetry::Snapshot telemetry_before = telemetry::capture();
  if (!options.trace_path.empty()) {
    telemetry::reset_trace();
    telemetry::set_trace_enabled(true);
  }

  // One pool for everything: the work-stealing TaskGroup lets a task
  // waiting on subtasks help execute queued work instead of blocking its
  // worker, so nesting an experiment's parallel_for inside the experiment
  // fan-out cannot deadlock — and the machine is no longer oversubscribed
  // with 2x `jobs` threads the way the old outer/inner pool pair was.
  ThreadPool pool(jobs);
  parallel_for(
      pool, selection.size(),
      [&](std::size_t i) {
        const Experiment& exp = *selection[i];
        ExperimentRecord& record = report.records[i];
        const telemetry::TraceScope trace_scope(record.name.c_str(),
                                                "experiment");
        const std::string exp_dir =
            (fs::path(report.run_dir) / record.name).string();

        std::ostringstream log;
        ExperimentContext ctx;
        ctx.smoke = options.smoke;
        ctx.seed = record.seed;
        ctx.pool = &pool;
        ctx.log = &log;
        ctx.out_dir = exp_dir;

        const auto start = std::chrono::steady_clock::now();
        ExperimentResult result;
        try {
          result = exp.run(ctx);
          for (const auto& named : result.tables) {
            const std::string relative =
                record.name + "/" + named.csv_name + ".csv";
            CsvWriter csv(report.run_dir + "/" + relative,
                          named.table.header());
            for (const auto& row : named.table.rows()) {
              csv.write_row(row);
            }
            record.csv_files.push_back(relative);
          }
          for (const auto& artifact : result.artifacts) {
            record.artifacts.push_back(record.name + "/" + artifact);
          }
          record.verdicts = result.verdicts;
        } catch (const std::exception& e) {
          record.error = e.what();
        }
        record.wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();

        logs[i] = log.str();
        write_text_file(exp_dir + "/report.txt", logs[i]);
      },
      /*min_chunk=*/1, ChunkPolicy::kDynamic);

  report.telemetry =
      telemetry::delta(telemetry_before, telemetry::capture());
  if (!options.trace_path.empty()) {
    // parallel_for's barrier guarantees quiescence: no experiment is
    // still emitting events when the buffers are rendered.
    write_text_file(options.trace_path,
                    telemetry::trace_json().dump() + "\n");
    telemetry::set_trace_enabled(false);
  }

  // Serial replay in selection order: console parity with the days when
  // each experiment was its own binary, plus the verdict summaries.
  std::ostringstream replay;
  std::size_t total_verdicts = 0;
  std::size_t total_failures = 0;
  for (std::size_t i = 0; i < selection.size(); ++i) {
    const ExperimentRecord& record = report.records[i];
    const std::size_t failures = failure_count(record);
    total_verdicts += record.verdicts.size();
    total_failures += failures;

    replay << std::string(72, '=') << '\n'
           << record.name << " — " << record.title << " ("
           << record.paper_ref << ")   [" << format_double(record.wall_ms, 0)
           << " ms]\n"
           << std::string(72, '=') << '\n'
           << logs[i];
    if (!record.error.empty()) {
      replay << "ERROR: " << record.error << '\n';
    }
    replay << "verdicts: " << record.verdicts.size() - failures << "/"
           << record.verdicts.size() << " passed\n";
    for (const auto& verdict : record.verdicts) {
      if (!verdict.pass) {
        replay << "  FAIL " << verdict.name << ": measured "
               << format_double(verdict.measured, 6) << " outside ["
               << format_double(verdict.expected_lo, 6) << ", "
               << format_double(verdict.expected_hi, 6) << "]"
               << (verdict.note.empty() ? "" : " — " + verdict.note) << '\n';
      }
    }
    replay << '\n';
  }
  replay << selection.size() << " experiment(s), " << total_verdicts
         << " verdict(s), " << total_failures << " failure(s)"
         << (report.all_passed() ? "" : " — RUN FAILED") << '\n'
         << "results: " << report.run_dir << '\n';

  write_text_file(report.run_dir + "/report.txt", replay.str());
  write_text_file(report.run_dir + "/manifest.json",
                  manifest_json(report).dump() + "\n");
  write_text_file(report.run_dir + "/verdicts.json",
                  verdicts_json(report).dump() + "\n");

  if (!options.quiet) {
    std::ostream& console = options.console ? *options.console : std::cout;
    console << replay.str();
    console.flush();
  }
  return report;
}

JsonValue manifest_json(const RunReport& report) {
  JsonValue manifest = JsonValue::object();
  manifest.set("schema", JsonValue::string("fjs-experiments-manifest/1"));
  manifest.set("run_id", JsonValue::string(report.run_id));
  manifest.set("created_utc",
               JsonValue::string(utc_timestamp("%Y-%m-%dT%H:%M:%SZ")));
  manifest.set("profile",
               JsonValue::string(report.smoke ? "smoke" : "full"));
  manifest.set("base_seed",
               JsonValue::number(static_cast<double>(report.base_seed)));
  manifest.set("jobs", JsonValue::number(static_cast<double>(report.jobs)));
  manifest.set(
      "hardware_concurrency",
      JsonValue::number(static_cast<double>(
          std::max<std::size_t>(1, std::thread::hardware_concurrency()))));

  JsonValue host = JsonValue::object();
  char hostname[256] = {0};
  if (gethostname(hostname, sizeof(hostname) - 1) != 0) {
    std::snprintf(hostname, sizeof(hostname), "unknown");
  }
  host.set("hostname", JsonValue::string(hostname));
  utsname uts{};
  if (uname(&uts) == 0) {
    host.set("system", JsonValue::string(uts.sysname));
    host.set("release", JsonValue::string(uts.release));
    host.set("machine", JsonValue::string(uts.machine));
  }
  manifest.set("host", host);

  // Deterministic metrics only: at --jobs 1 with a deterministic
  // selection this block is byte-stable across repeated runs (pinned by
  // test_experiments_registry); kTiming metrics would break that.
  manifest.set("telemetry",
               telemetry::snapshot_json(report.telemetry,
                                        /*deterministic_only=*/true));

  JsonValue experiments = JsonValue::array();
  for (const auto& record : report.records) {
    JsonValue entry = JsonValue::object();
    entry.set("name", JsonValue::string(record.name));
    entry.set("title", JsonValue::string(record.title));
    entry.set("paper_ref", JsonValue::string(record.paper_ref));
    entry.set("seed",
              JsonValue::number(static_cast<double>(record.seed)));
    entry.set("wall_ms", JsonValue::number(record.wall_ms));
    entry.set("csv_files", string_array(record.csv_files));
    entry.set("artifacts", string_array(record.artifacts));
    entry.set("verdicts", JsonValue::number(
                              static_cast<double>(record.verdicts.size())));
    entry.set("failures",
              JsonValue::number(static_cast<double>(failure_count(record))));
    entry.set("error", JsonValue::string(record.error));
    experiments.push_back(entry);
  }
  manifest.set("experiments", experiments);
  manifest.set("all_passed", JsonValue::boolean(report.all_passed()));
  return manifest;
}

JsonValue verdicts_json(const RunReport& report) {
  // Deliberately carries no run id, timestamps or wall times: two runs
  // with the same selection, profile and seed must produce identical
  // bytes regardless of --jobs — the determinism tests diff this file.
  JsonValue root = JsonValue::object();
  root.set("schema", JsonValue::string("fjs-experiments-verdicts/1"));
  root.set("profile", JsonValue::string(report.smoke ? "smoke" : "full"));
  root.set("base_seed",
           JsonValue::number(static_cast<double>(report.base_seed)));
  root.set("all_passed", JsonValue::boolean(report.all_passed()));
  JsonValue experiments = JsonValue::array();
  for (const auto& record : report.records) {
    JsonValue entry = JsonValue::object();
    entry.set("name", JsonValue::string(record.name));
    entry.set("error", JsonValue::string(record.error));
    JsonValue verdicts = JsonValue::array();
    for (const auto& verdict : record.verdicts) {
      verdicts.push_back(verdict_json(verdict));
    }
    entry.set("verdicts", verdicts);
    experiments.push_back(entry);
  }
  root.set("experiments", experiments);
  return root;
}

int exit_code(const RunReport& report) {
  return report.all_passed() ? 0 : 1;
}

}  // namespace fjs::experiments
