// E10 — ablation (not from the paper): how much does laxity buy?
//
// FJS's whole premise is that start laxity lets a scheduler overlap jobs.
// We scale the laxity of a fixed workload by λ and track each scheduler's
// span. At λ=0 all schedulers coincide (rigid jobs); as λ grows,
// laxity-aware schedulers (batch/batch+/profit) convert slack into
// overlap while Eager ignores it and Lazy squanders it. Verdicts encode
// exactly those three facts: rigid spans coincide, Eager's span is
// λ-invariant, and at the largest λ the laxity-aware schedulers beat it.
#include <limits>
#include <string>
#include <vector>

#include "experiments/experiments_all.h"
#include "offline/heuristic.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/asciiplot.h"
#include "support/string_util.h"
#include "workload/generator.h"

namespace fjs::experiments {

namespace {

class E10Experiment final : public Experiment {
 public:
  std::string name() const override { return "e10"; }
  std::string title() const override { return "laxity ablation"; }
  std::string description() const override {
    return "Span vs laxity scale lambda per scheduler; laxity-aware "
           "schedulers convert slack into overlap, eager flat-lines.";
  }
  std::string paper_ref() const override { return "-"; }

  ExperimentResult run(ExperimentContext& ctx) const override {
    ExperimentResult result;
    WorkloadConfig base;
    base.job_count = ctx.smoke ? 100 : 200;
    base.arrival_rate = 2.0;
    base.laxity_min = 0.0;
    base.laxity_max = 2.0;

    ctx.out() << "E10: laxity ablation. Base workload: " << base.job_count
              << " jobs, Poisson arrivals, uniform lengths 1-4,\nbase laxity"
                 " uniform 0-2, scaled by lambda.\n\n";

    const std::vector<double> lambdas =
        ctx.smoke ? std::vector<double>{0.0, 0.5, 2.0, 8.0}
                  : std::vector<double>{0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
    const std::vector<std::string> keys = {"eager",  "lazy",   "batch",
                                           "batch+", "profit", "overlap"};

    Table table({"lambda", "scheduler", "span", "span/offline"});
    std::vector<Series> series;
    for (const auto& key : keys) {
      series.push_back(Series{
          key, {}, key[0] == 'b' ? (key == "batch" ? 'b' : 'B') : key[0]});
    }

    for (const double lambda : lambdas) {
      // Scale laxities by rebuilding the instance from the same seed.
      WorkloadConfig cfg = base;
      cfg.laxity_max = base.laxity_max * lambda;
      cfg.laxity_min = 0.0;
      const Instance inst = lambda == 0.0
                                ? [&] {
                                    WorkloadConfig rigid = base;
                                    rigid.laxity = LaxityModel::kZero;
                                    return generate_workload(rigid,
                                                             11 + ctx.seed);
                                  }()
                                : generate_workload(cfg, 11 + ctx.seed);
      HeuristicOptions heuristic_opts;
      heuristic_opts.restarts = 1;
      heuristic_opts.max_passes = 8;
      const Time offline = heuristic_span(inst, heuristic_opts);
      double lambda_min = std::numeric_limits<double>::infinity();
      double lambda_max = 0.0;
      for (std::size_t s = 0; s < keys.size(); ++s) {
        const auto scheduler = make_scheduler(keys[s]);
        const Time span = simulate_span(inst, *scheduler,
                                        scheduler->requires_clairvoyance());
        table.add_row({format_double(lambda, 2), keys[s],
                       format_double(span.to_units(), 2),
                       format_double(time_ratio(span, offline), 3)});
        series[s].ys.push_back(span.to_units());
        lambda_min = std::min(lambda_min, span.to_units());
        lambda_max = std::max(lambda_max, span.to_units());
      }
      if (lambda == 0.0) {
        result.verdicts.push_back(Verdict::equals(
            "rigid spans coincide", lambda_max - lambda_min, 0.0, 1e-9,
            "lambda=0 removes all laxity: every scheduler runs the same"
            " rigid schedule"));
      }
    }
    emit_table(ctx, result, "E10 laxity ablation", table, "e10_laxity");

    // Eager starts every job on arrival, so its span cannot depend on the
    // laxity scale (the lambda>0 instances share arrivals and lengths).
    const auto& eager = series[0].ys;
    double eager_spread = 0.0;
    for (std::size_t i = 1; i + 1 < eager.size(); ++i) {
      eager_spread =
          std::max(eager_spread, std::abs(eager[i + 1] - eager[i]));
    }
    result.verdicts.push_back(Verdict::equals(
        "eager ignores laxity", eager_spread, 0.0, 1e-9,
        "eager span is identical across all lambda > 0"));
    result.verdicts.push_back(Verdict::at_most(
        "laxity exploited at max lambda", series[3].ys.back(),
        series[0].ys.back(),
        "batch+ span <= eager span once laxity dominates job lengths"));

    AsciiPlotOptions plot;
    plot.x_label = "laxity scale lambda";
    plot.y_label = "span (units)";
    ctx.out() << ascii_plot(lambdas, series, plot)
              << "\nReading: batch/batch+/profit convert growing laxity into"
                 " overlap (span falls);\neager flat-lines, lazy can get"
                 " WORSE (scattered deadline starts).\n";
    return result;
  }
};

}  // namespace

std::unique_ptr<Experiment> make_e10_experiment() {
  return std::make_unique<E10Experiment>();
}

}  // namespace fjs::experiments
