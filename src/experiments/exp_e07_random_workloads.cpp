// E7 — scheduler comparison on the standard stochastic workload suite.
//
// The paper has no experimental section; this experiment provides the
// empirical ranking its theory predicts: Batch+/Batch close to OPT with
// generous laxity, Eager/Lazy losing ground, CDB/Profit trading
// average-case performance for worst-case guarantees. Ratios are reported
// as a bracket [online/heuristic, online/lower-bound] that contains the
// true competitive ratio on each instance. Verdicts: the bracket is
// ordered and conservative (lower side >= 1-eps) for every cell.
#include <string>
#include <vector>

#include "analysis/sweep.h"
#include "experiments/experiments_all.h"
#include "schedulers/registry.h"
#include "support/string_util.h"
#include "workload/suite.h"

namespace fjs::experiments {

namespace {

class E7Experiment final : public Experiment {
 public:
  std::string name() const override { return "e7"; }
  std::string title() const override {
    return "scheduler comparison on stochastic workloads";
  }
  std::string description() const override {
    return "Workload-suite x scheduler grid with bracketed competitive "
           "ratios (vs heuristic OPT and certified lower bound).";
  }
  std::string paper_ref() const override { return "-"; }

  ExperimentResult run(ExperimentContext& ctx) const override {
    ExperimentResult result;
    const std::size_t job_count = ctx.smoke ? 60 : 150;
    const std::size_t replicas = ctx.smoke ? 2 : 6;
    ctx.out() << "E7: scheduler x workload grid (8 workload families x "
              << replicas << " seeds, n=" << job_count
              << " jobs).\nRatio bracket: [vs heuristic OPT, vs certified"
                 " lower bound].\n\n";

    SweepOptions options;
    options.heuristic_options.restarts = ctx.smoke ? 0 : 1;
    options.heuristic_options.max_passes = ctx.smoke ? 4 : 8;
    options.pool = &ctx.worker_pool();

    Table table({"workload", "scheduler", "mean ratio >=", "mean ratio <=",
                 "worst >=", "mean span"});
    for (const auto& named : standard_suite()) {
      WorkloadConfig config = named.config;
      config.job_count = job_count;
      const auto cases =
          make_cases(config, named.name, replicas, 42 + ctx.seed);
      const auto aggregates =
          run_ratio_sweep(cases, known_scheduler_keys(), options);
      for (const auto& agg : aggregates) {
        table.add_row({named.name, agg.scheduler_key,
                       format_double(agg.ratio_lower.mean(), 3),
                       format_double(agg.ratio_upper.mean(), 3),
                       format_double(agg.ratio_lower.max(), 3),
                       format_double(agg.spans.mean(), 1)});
        result.verdicts.push_back(Verdict::at_least(
            "bracket ordered " + named.name + " " + agg.scheduler_key,
            agg.ratio_upper.mean() - agg.ratio_lower.mean(), 0.0,
            "online/LB >= online/heuristic-OPT", 1e-9));
        result.verdicts.push_back(Verdict::at_least(
            "sound upper ratio " + named.name + " " + agg.scheduler_key,
            agg.ratio_upper.mean(), 1.0,
            "online span >= certified lower bound on OPT", 1e-9));
      }
    }
    emit_table(ctx, result, "E7 scheduler comparison on stochastic workloads",
               table, "e7_random");
    return result;
  }
};

}  // namespace

std::unique_ptr<Experiment> make_e7_experiment() {
  return std::make_unique<E7Experiment>();
}

}  // namespace fjs::experiments
