#include "core/time.h"

#include <cmath>

#include "support/assert.h"
#include "support/string_util.h"

namespace fjs {

Time Time::from_units(double units) {
  const double ticks = units * static_cast<double>(kTicksPerUnit);
  FJS_REQUIRE(std::abs(ticks) <
                  static_cast<double>(std::numeric_limits<std::int64_t>::max()),
              "Time::from_units overflow");
  return Time(static_cast<std::int64_t>(std::llround(ticks)));
}

Time Time::scaled(double factor) const {
  const double scaled_ticks = static_cast<double>(ticks_) * factor;
  FJS_REQUIRE(std::abs(scaled_ticks) <
                  static_cast<double>(std::numeric_limits<std::int64_t>::max()),
              "Time::scaled overflow");
  return Time(static_cast<std::int64_t>(std::llround(scaled_ticks)));
}

Time Time::checked_add(Time rhs) const {
  std::int64_t out = 0;
  FJS_REQUIRE(!__builtin_add_overflow(ticks_, rhs.ticks_, &out),
              "Time::checked_add overflow");
  return Time(out);
}

Time Time::checked_mul(std::int64_t k) const {
  std::int64_t out = 0;
  FJS_REQUIRE(!__builtin_mul_overflow(ticks_, k, &out),
              "Time::checked_mul overflow");
  return Time(out);
}

Time Time::saturating_add(Time rhs) const {
  std::int64_t out = 0;
  if (!__builtin_add_overflow(ticks_, rhs.ticks_, &out)) {
    return Time(out);
  }
  // Signed overflow direction follows the (equal) operand signs.
  return rhs.ticks_ > 0 ? Time::max() : Time::min();
}

Time Time::saturating_sub(Time rhs) const {
  std::int64_t out = 0;
  if (!__builtin_sub_overflow(ticks_, rhs.ticks_, &out)) {
    return Time(out);
  }
  // a - b overflows upward iff b < 0 (so a - b > max); note this also
  // handles rhs == Time::min(), where negate-and-add would itself be UB.
  return rhs.ticks_ < 0 ? Time::max() : Time::min();
}

Time Time::saturating_mul(std::int64_t k) const {
  std::int64_t out = 0;
  if (!__builtin_mul_overflow(ticks_, k, &out)) {
    return Time(out);
  }
  return (ticks_ > 0) == (k > 0) ? Time::max() : Time::min();
}

std::string Time::to_string() const { return format_double(to_units(), 6); }

double time_ratio(Time numerator, Time denominator) {
  FJS_REQUIRE(denominator.ticks() != 0, "time_ratio: zero denominator");
  return static_cast<double>(numerator.ticks()) /
         static_cast<double>(denominator.ticks());
}

}  // namespace fjs
