// Columnar (SoA) job storage and the non-owning view over it.
//
// JobTable holds the three job columns (arrival, deadline, length) in
// parallel 64-byte-aligned, tail-padded columns (support/aligned.h)
// indexed by JobId — the alignment contract the SIMD kernels
// (support/simd.h) rely on for the owned path. InstanceView is a std::span-based
// window onto those columns: every heavy consumer (engine lowering, the
// offline bounds, the exact-solver pre-pass, the miner's batch
// evaluator) reads jobs through a view, so a mutation scratch buffer
// can be evaluated without materializing an owning Instance.
//
// Lifetime rule: a view never outlives the columns it was taken from,
// and any growth of the table (push_back / reserve beyond capacity)
// invalidates existing views. In-place `set`/`restore` keep views valid
// — that is what the miner's mutate-evaluate-undo loop relies on.
// See docs/DATA_MODEL.md for the full aliasing and undo protocol.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/job.h"
#include "support/aligned.h"
#include "support/assert.h"

namespace fjs {

/// Non-owning, read-only view of a job table (or of any three equal-length
/// columns). Accessors are unchecked in release builds (FJS_DASSERT only):
/// this is the innermost read path of the exact solver and the engine, and
/// the owning Instance has already validated every row.
class InstanceView {
 public:
  InstanceView() = default;
  InstanceView(std::span<const Time> arrivals, std::span<const Time> deadlines,
               std::span<const Time> lengths)
      : arrivals_(arrivals), deadlines_(deadlines), lengths_(lengths) {
    FJS_REQUIRE(arrivals_.size() == deadlines_.size() &&
                    arrivals_.size() == lengths_.size(),
                "InstanceView: column lengths disagree");
  }

  std::size_t size() const { return arrivals_.size(); }
  bool empty() const { return arrivals_.empty(); }

  Time arrival(JobId id) const {
    FJS_DASSERT(id < arrivals_.size(), "InstanceView: job id out of range");
    return arrivals_[id];
  }
  Time deadline(JobId id) const {
    FJS_DASSERT(id < deadlines_.size(), "InstanceView: job id out of range");
    return deadlines_[id];
  }
  Time length(JobId id) const {
    FJS_DASSERT(id < lengths_.size(), "InstanceView: job id out of range");
    return lengths_[id];
  }

  /// Assembles the row as a Job (by value; the columns stay SoA).
  Job job(JobId id) const {
    FJS_DASSERT(id < arrivals_.size(), "InstanceView: job id out of range");
    return Job{.id = id,
               .arrival = arrivals_[id],
               .deadline = deadlines_[id],
               .length = lengths_[id]};
  }

  std::span<const Time> arrivals() const { return arrivals_; }
  std::span<const Time> deadlines() const { return deadlines_; }
  std::span<const Time> lengths() const { return lengths_; }

  /// Row iteration: yields each row assembled as a Job (by value). Keeps
  /// range-for ergonomics over the columnar storage:
  ///   for (const Job& j : instance.view().jobs()) { ... }
  class JobIterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = Job;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = Job;

    JobIterator() = default;
    JobIterator(const InstanceView* view, JobId id) : view_(view), id_(id) {}

    Job operator*() const { return view_->job(id_); }
    JobIterator& operator++() {
      ++id_;
      return *this;
    }
    JobIterator operator++(int) {
      JobIterator old = *this;
      ++id_;
      return old;
    }
    bool operator==(const JobIterator& other) const {
      return id_ == other.id_;
    }

   private:
    const InstanceView* view_ = nullptr;
    JobId id_ = 0;
  };

  /// Iterable over the rows (defined after the class; the range copies
  /// the view's spans, so it is valid wherever the view itself is).
  class JobRange jobs() const;

  /// μ = max p / min p (≥ 1). Requires a non-empty view.
  double mu() const;

  Time min_length() const;
  Time max_length() const;

  /// Σ p(J). Checked addition: throws AssertionError on overflow.
  Time total_work() const;

  /// Σ p(J) with saturation instead of throwing; sets *overflowed (when
  /// non-null) iff the exact sum is not representable.
  Time total_work_saturating(bool* overflowed = nullptr) const;

  /// Earliest arrival across jobs. Requires non-empty.
  Time earliest_arrival() const;

  /// max over jobs of d(J) + p(J). Overflow-free for validated tables
  /// (the Instance invariant is d + p ≤ Time::max()); uses checked
  /// addition so an unvalidated scratch buffer still fails loudly.
  Time latest_completion() const;

  /// Job ids sorted by (arrival, id) / (deadline, id). The out-param
  /// overloads reuse the caller's buffer (no steady-state allocation).
  std::vector<JobId> ids_by_arrival() const;
  std::vector<JobId> ids_by_deadline() const;
  void ids_by_arrival(std::vector<JobId>& out) const;
  void ids_by_deadline(std::vector<JobId>& out) const;

  /// True iff arrivals are non-decreasing in id order — the replay fast
  /// path shared by StaticSource and PreparedInstance.
  bool sorted_by_arrival() const;

  /// True iff every arrival/deadline/length is a multiple of `quantum`
  /// ticks — precondition of the exact offline solver.
  bool is_multiple_of(Time quantum) const;

  /// Full per-row validation (job valid, d + p representable). Throws
  /// AssertionError on the first bad row. The Instance constructor runs
  /// this once; scratch buffers may call it explicitly when needed.
  void validate() const;

  /// Human-readable listing (one job per line).
  std::string to_string() const;

 private:
  std::span<const Time> arrivals_;
  std::span<const Time> deadlines_;
  std::span<const Time> lengths_;
};

/// Row range over an InstanceView — see InstanceView::jobs().
class JobRange {
 public:
  explicit JobRange(InstanceView view) : view_(view) {}
  InstanceView::JobIterator begin() const {
    return InstanceView::JobIterator(&view_, 0);
  }
  InstanceView::JobIterator end() const {
    return InstanceView::JobIterator(&view_,
                                     static_cast<JobId>(view_.size()));
  }

 private:
  InstanceView view_;
};

inline JobRange InstanceView::jobs() const { return JobRange(*this); }

/// Owning SoA storage for jobs. The mutable counterpart of InstanceView:
/// generators and the fuzz shrinker emit rows directly into a JobTable,
/// and the miner mutates rows in place with undo records.
class JobTable {
 public:
  JobTable() = default;

  /// AoS bridge: consumes a job vector (ids are ignored; rows keep the
  /// vector's order, so row i becomes JobId i).
  explicit JobTable(const std::vector<Job>& jobs);

  /// Deep-copies the columns behind a view (e.g. to materialize an owning
  /// Instance from a scratch buffer).
  explicit JobTable(InstanceView view);

  std::size_t size() const { return arrival_.size(); }
  bool empty() const { return arrival_.empty(); }

  void clear() {
    arrival_.clear();
    deadline_.clear();
    length_.clear();
  }

  void reserve(std::size_t n) {
    arrival_.reserve(n);
    deadline_.reserve(n);
    length_.reserve(n);
  }

  void push_back(Time arrival, Time deadline, Time length) {
    arrival_.push_back(arrival);
    deadline_.push_back(deadline);
    length_.push_back(length);
  }

  void push_back(const Job& job) {
    push_back(job.arrival, job.deadline, job.length);
  }

  Job job(JobId id) const {
    FJS_DASSERT(id < arrival_.size(), "JobTable: job id out of range");
    return Job{.id = id,
               .arrival = arrival_[id],
               .deadline = deadline_[id],
               .length = length_[id]};
  }

  /// Overwrites one row in place. Views over this table stay valid and
  /// observe the new values (no reallocation happens).
  void set(JobId id, Time arrival, Time deadline, Time length) {
    FJS_DASSERT(id < arrival_.size(), "JobTable: job id out of range");
    arrival_[id] = arrival;
    deadline_[id] = deadline;
    length_[id] = length;
  }

  /// One-row undo record for the mutate-evaluate-restore loop.
  struct Undo {
    JobId id = kInvalidJob;
    Time arrival;
    Time deadline;
    Time length;
  };

  /// Captures row `id` before an in-place mutation.
  Undo undo_record(JobId id) const {
    FJS_DASSERT(id < arrival_.size(), "JobTable: job id out of range");
    return Undo{id, arrival_[id], deadline_[id], length_[id]};
  }

  /// Restores the row captured by `undo_record`.
  void restore(const Undo& undo) {
    set(undo.id, undo.arrival, undo.deadline, undo.length);
  }

  std::span<const Time> arrivals() const {
    return {arrival_.data(), arrival_.size()};
  }
  std::span<const Time> deadlines() const {
    return {deadline_.data(), deadline_.size()};
  }
  std::span<const Time> lengths() const {
    return {length_.data(), length_.size()};
  }

  InstanceView view() const {
    return InstanceView(arrivals(), deadlines(), lengths());
  }

 private:
  // AlignedColumn (not std::vector): 64-byte-aligned bases with
  // zero-filled tail padding to a 64-byte multiple, so vector kernels may
  // read full lanes past size() on the owned path. See DATA_MODEL.md.
  AlignedColumn<Time> arrival_;
  AlignedColumn<Time> deadline_;
  AlignedColumn<Time> length_;
};

}  // namespace fjs
