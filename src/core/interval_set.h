// Union of half-open intervals, the object the span objective is defined
// on: span(J) = measure(∪ active intervals).
#pragma once

#include <string>
#include <vector>

#include "core/interval.h"

namespace fjs {

/// Maintains a sorted list of disjoint, non-abutting half-open intervals.
/// Abutting inserts ([1,2) then [2,3)) merge into one component, matching
/// the definition of span as the measure of the union.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Builds from arbitrary (unsorted, overlapping) intervals in
  /// O(n log n): sort by left endpoint, then merge in one linear pass.
  explicit IntervalSet(std::vector<Interval> intervals);

  /// Adds one interval, merging as needed. Empty intervals are ignored.
  void add(const Interval& interval);

  /// Like add(), but O(1) when the interval starts at or after the last
  /// component's start — the common case for inserts whose left endpoints
  /// arrive in nondecreasing order (e.g. simulation time order). Falls
  /// back to add() otherwise; always produces the same set.
  void add_hint(const Interval& interval);

  /// Union with another set: linear two-pointer merge of the two sorted
  /// component lists.
  void unite(const IntervalSet& other);

  /// Measure of the union of intervals already sorted by left endpoint
  /// (overlaps and empties allowed): one linear pass, no allocation. The
  /// zero-materialization path for tight loops that re-evaluate a span
  /// after every local move.
  static Time sorted_union_measure(const std::vector<Interval>& sorted);

  /// Replaces one instance of `old_iv` with `new_iv` in a list sorted by
  /// left endpoint, keeping it sorted (two memmoves). Companion to
  /// sorted_union_measure for local-search loops that move one interval
  /// at a time. `old_iv` must be present.
  static void replace_in_sorted(std::vector<Interval>& sorted,
                                const Interval& old_iv,
                                const Interval& new_iv);

  void clear() { components_.clear(); }

  bool empty() const { return components_.empty(); }

  /// Number of maximal contiguous components.
  std::size_t component_count() const { return components_.size(); }

  /// The i-th component, ordered by position.
  const Interval& component(std::size_t i) const;

  const std::vector<Interval>& components() const { return components_; }

  /// Total measure (the span when the set holds all active intervals).
  Time measure() const;

  /// True iff t lies in some component.
  bool contains(Time t) const;

  /// True iff the interval intersects the set.
  bool intersects(const Interval& interval) const;

  /// Measure of the intersection with `interval`.
  Time measure_within(const Interval& interval) const;

  /// Measure of `interval` NOT covered by this set — the marginal span a
  /// new active interval would add. Core of the offline optimizer.
  Time uncovered_measure(const Interval& interval) const;

  /// Leftmost point of the set. Requires non-empty.
  Time lower() const;
  /// Rightmost point (exclusive). Requires non-empty.
  Time upper() const;

  /// Maximal uncovered intervals strictly inside [range.lo, range.hi).
  std::vector<Interval> gaps_within(const Interval& range) const;

  bool operator==(const IntervalSet&) const = default;

  std::string to_string() const;

 private:
  std::vector<Interval> components_;
};

}  // namespace fjs
