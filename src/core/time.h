// Fixed-point simulation time.
//
// All scheduling logic runs on integer ticks so event comparisons are exact
// (a requirement for the paper's half-open interval semantics: a job
// arriving exactly at a flag job's completion belongs to the next
// iteration). Doubles appear only at the reporting boundary.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace fjs {

/// A point in time or a duration, measured in integer ticks.
///
/// The same type serves both roles (like a raw tick count would); the
/// wrapper exists to block accidental mixing with unrelated integers and to
/// centralize overflow-checked arithmetic for the adversarial constructions
/// that use exponentially growing laxities.
class Time {
 public:
  constexpr Time() = default;
  constexpr explicit Time(std::int64_t ticks) : ticks_(ticks) {}

  /// Number of ticks per abstract "time unit" used by builders that accept
  /// real-valued durations (e.g. the golden-ratio construction).
  static constexpr std::int64_t kTicksPerUnit = 1'000'000;

  static constexpr Time zero() { return Time(0); }
  static constexpr Time max() {
    return Time(std::numeric_limits<std::int64_t>::max());
  }
  static constexpr Time min() {
    return Time(std::numeric_limits<std::int64_t>::min());
  }

  /// Converts a real-valued number of units to ticks (round to nearest).
  static Time from_units(double units);

  constexpr std::int64_t ticks() const { return ticks_; }
  double to_units() const {
    return static_cast<double>(ticks_) / static_cast<double>(kTicksPerUnit);
  }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time operator+(Time rhs) const { return Time(ticks_ + rhs.ticks_); }
  constexpr Time operator-(Time rhs) const { return Time(ticks_ - rhs.ticks_); }
  constexpr Time operator-() const { return Time(-ticks_); }
  Time& operator+=(Time rhs) {
    ticks_ += rhs.ticks_;
    return *this;
  }
  Time& operator-=(Time rhs) {
    ticks_ -= rhs.ticks_;
    return *this;
  }

  /// Integer scaling (exact).
  constexpr Time operator*(std::int64_t k) const { return Time(ticks_ * k); }

  /// Real scaling (round to nearest); used for ratio parameters like μ.
  Time scaled(double factor) const;

  /// Checked addition: throws AssertionError on signed overflow. Used by
  /// adversarial instance builders with exponential laxities.
  Time checked_add(Time rhs) const;
  /// Checked integer scaling with overflow detection.
  Time checked_mul(std::int64_t k) const;

  /// Saturating variants: clamp to Time::max()/min() instead of throwing.
  /// For "horizon" arithmetic (window closes, completion estimates) where a
  /// value past the representable range is equivalent to "never".
  Time saturating_add(Time rhs) const;
  Time saturating_sub(Time rhs) const;
  Time saturating_mul(std::int64_t k) const;

  /// Renders as a decimal number of units ("2.5") for human output.
  std::string to_string() const;

 private:
  std::int64_t ticks_ = 0;
};

constexpr Time operator*(std::int64_t k, Time t) { return t * k; }

/// Ratio of two durations as a double. Denominator must be non-zero.
double time_ratio(Time numerator, Time denominator);

}  // namespace fjs
