// The job model from §2: arrival a(J), starting deadline d(J) (latest
// allowed START time), processing length p(J).
#pragma once

#include <cstdint>
#include <string>

#include "core/interval.h"
#include "core/time.h"

namespace fjs {

/// Dense job identifier: index of the job within its Instance.
using JobId = std::uint32_t;

constexpr JobId kInvalidJob = static_cast<JobId>(-1);

struct Job {
  JobId id = kInvalidJob;
  Time arrival;   ///< a(J): earliest possible start.
  Time deadline;  ///< d(J): latest possible start ("starting deadline").
  Time length;    ///< p(J): non-preemptive processing length, > 0.

  /// d(J) - a(J): how long the start may be delayed.
  Time laxity() const { return deadline - arrival; }

  /// Latest possible completion time d(J) + p(J).
  Time latest_completion() const { return deadline + length; }

  /// Active interval if started at `start`.
  Interval active_interval(Time start) const {
    return Interval::from_length(start, length);
  }

  /// The start window [arrival, deadline] is non-empty and length positive.
  bool valid() const {
    return arrival <= deadline && length > Time::zero();
  }

  std::string to_string() const;
};

}  // namespace fjs
