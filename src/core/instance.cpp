#include "core/instance.h"

#include <istream>
#include <ostream>

#include "support/assert.h"

namespace fjs {

Instance::Instance(std::vector<Job> jobs) : table_(jobs) {
  validate_and_cache();
}

Instance::Instance(JobTable table) : table_(std::move(table)) {
  validate_and_cache();
}

void Instance::validate_and_cache() {
  const InstanceView v = table_.view();
  v.validate();
  if (v.empty()) {
    return;
  }
  // One pass over the columns; accessors then serve the cached values.
  // total_work saturates here instead of throwing so that near-max
  // instances still construct — total_work() reports the overflow lazily,
  // matching the old per-call checked_add behavior.
  min_length_ = v.min_length();
  max_length_ = v.max_length();
  mu_ = time_ratio(max_length_, min_length_);
  earliest_arrival_ = v.earliest_arrival();
  latest_completion_ = v.latest_completion();
  total_work_ = v.total_work_saturating(&total_work_overflow_);
}

void Instance::write(std::ostream& os) const {
  const InstanceView v = view();
  os << v.size() << '\n';
  for (std::size_t i = 0; i < v.size(); ++i) {
    const Job j = v.job(static_cast<JobId>(i));
    os << j.arrival.to_string() << ' ' << j.deadline.to_string() << ' '
       << j.length.to_string() << '\n';
  }
}

Instance Instance::parse(std::istream& is) {
  std::size_t n = 0;
  FJS_REQUIRE(static_cast<bool>(is >> n), "Instance::parse: bad count");
  JobTable table;
  table.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double a = 0.0;
    double d = 0.0;
    double p = 0.0;
    FJS_REQUIRE(static_cast<bool>(is >> a >> d >> p),
                "Instance::parse: bad job line");
    table.push_back(Time::from_units(a), Time::from_units(d),
                    Time::from_units(p));
  }
  return Instance(std::move(table));
}

InstanceBuilder& InstanceBuilder::add(double arrival, double deadline,
                                      double length) {
  return add_ticks(Time::from_units(arrival), Time::from_units(deadline),
                   Time::from_units(length));
}

InstanceBuilder& InstanceBuilder::add_ticks(Time arrival, Time deadline,
                                            Time length) {
  table_.push_back(arrival, deadline, length);
  return *this;
}

InstanceBuilder& InstanceBuilder::add_lax(double arrival, double laxity,
                                          double length) {
  return add(arrival, arrival + laxity, length);
}

Instance InstanceBuilder::build() { return Instance(std::move(table_)); }

}  // namespace fjs
