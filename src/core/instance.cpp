#include "core/instance.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/assert.h"

namespace fjs {

Instance::Instance(std::vector<Job> jobs) : jobs_(std::move(jobs)) {
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    jobs_[i].id = static_cast<JobId>(i);
    FJS_REQUIRE(jobs_[i].valid(),
                "Instance: invalid job " + jobs_[i].to_string());
    // d + p must be representable: a job may legally start at its
    // starting deadline, so its completion reaches d + p. Enforcing this
    // here makes latest_completion() and the engine's completion pushes
    // provably overflow-free (length > 0 keeps max() - length safe).
    FJS_REQUIRE(jobs_[i].deadline <= Time::max() - jobs_[i].length,
                "Instance: job " + jobs_[i].to_string() +
                    " has deadline + length past Time::max()");
  }
}

double Instance::mu() const {
  FJS_REQUIRE(!jobs_.empty(), "mu of empty instance");
  return time_ratio(max_length(), min_length());
}

Time Instance::min_length() const {
  FJS_REQUIRE(!jobs_.empty(), "min_length of empty instance");
  Time m = jobs_.front().length;
  for (const auto& j : jobs_) {
    m = std::min(m, j.length);
  }
  return m;
}

Time Instance::max_length() const {
  FJS_REQUIRE(!jobs_.empty(), "max_length of empty instance");
  Time m = jobs_.front().length;
  for (const auto& j : jobs_) {
    m = std::max(m, j.length);
  }
  return m;
}

Time Instance::total_work() const {
  Time total = Time::zero();
  for (const auto& j : jobs_) {
    total = total.checked_add(j.length);
  }
  return total;
}

Time Instance::earliest_arrival() const {
  FJS_REQUIRE(!jobs_.empty(), "earliest_arrival of empty instance");
  Time m = jobs_.front().arrival;
  for (const auto& j : jobs_) {
    m = std::min(m, j.arrival);
  }
  return m;
}

Time Instance::latest_completion() const {
  FJS_REQUIRE(!jobs_.empty(), "latest_completion of empty instance");
  Time m = Time::min();
  for (const auto& j : jobs_) {
    m = std::max(m, j.deadline.checked_add(j.length));
  }
  return m;
}

std::vector<JobId> Instance::ids_by_arrival() const {
  std::vector<JobId> ids(jobs_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<JobId>(i);
  }
  std::sort(ids.begin(), ids.end(), [this](JobId a, JobId b) {
    if (jobs_[a].arrival != jobs_[b].arrival) {
      return jobs_[a].arrival < jobs_[b].arrival;
    }
    return a < b;
  });
  return ids;
}

std::vector<JobId> Instance::ids_by_deadline() const {
  std::vector<JobId> ids(jobs_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<JobId>(i);
  }
  std::sort(ids.begin(), ids.end(), [this](JobId a, JobId b) {
    if (jobs_[a].deadline != jobs_[b].deadline) {
      return jobs_[a].deadline < jobs_[b].deadline;
    }
    return a < b;
  });
  return ids;
}

bool Instance::is_multiple_of(Time quantum) const {
  FJS_REQUIRE(quantum > Time::zero(), "is_multiple_of: quantum must be > 0");
  for (const auto& j : jobs_) {
    if (j.arrival.ticks() % quantum.ticks() != 0 ||
        j.deadline.ticks() % quantum.ticks() != 0 ||
        j.length.ticks() % quantum.ticks() != 0) {
      return false;
    }
  }
  return true;
}

std::string Instance::to_string() const {
  std::ostringstream os;
  for (const auto& j : jobs_) {
    os << j.to_string() << '\n';
  }
  return os.str();
}

void Instance::write(std::ostream& os) const {
  os << jobs_.size() << '\n';
  for (const auto& j : jobs_) {
    os << j.arrival.to_string() << ' ' << j.deadline.to_string() << ' '
       << j.length.to_string() << '\n';
  }
}

Instance Instance::parse(std::istream& is) {
  std::size_t n = 0;
  FJS_REQUIRE(static_cast<bool>(is >> n), "Instance::parse: bad count");
  std::vector<Job> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double a = 0.0;
    double d = 0.0;
    double p = 0.0;
    FJS_REQUIRE(static_cast<bool>(is >> a >> d >> p),
                "Instance::parse: bad job line");
    jobs.push_back(Job{.id = static_cast<JobId>(i),
                       .arrival = Time::from_units(a),
                       .deadline = Time::from_units(d),
                       .length = Time::from_units(p)});
  }
  return Instance(std::move(jobs));
}

InstanceBuilder& InstanceBuilder::add(double arrival, double deadline,
                                      double length) {
  return add_ticks(Time::from_units(arrival), Time::from_units(deadline),
                   Time::from_units(length));
}

InstanceBuilder& InstanceBuilder::add_ticks(Time arrival, Time deadline,
                                            Time length) {
  jobs_.push_back(
      Job{.id = kInvalidJob, .arrival = arrival, .deadline = deadline,
          .length = length});
  return *this;
}

InstanceBuilder& InstanceBuilder::add_lax(double arrival, double laxity,
                                          double length) {
  return add(arrival, arrival + laxity, length);
}

Instance InstanceBuilder::build() { return Instance(std::move(jobs_)); }

}  // namespace fjs
