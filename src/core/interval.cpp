#include "core/interval.h"

#include <sstream>

namespace fjs {

std::string Interval::to_string() const {
  std::ostringstream os;
  os << '[' << lo.to_string() << ", " << hi.to_string() << ')';
  return os.str();
}

}  // namespace fjs
