#include "core/job.h"

#include <sstream>

namespace fjs {

std::string Job::to_string() const {
  std::ostringstream os;
  os << "J" << id << "(a=" << arrival.to_string()
     << ", d=" << deadline.to_string() << ", p=" << length.to_string() << ')';
  return os.str();
}

}  // namespace fjs
