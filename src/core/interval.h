// Half-open time intervals [lo, hi), the paper's convention (§2).
#pragma once

#include <string>

#include "core/time.h"

namespace fjs {

/// Half-open interval [lo, hi). An interval with hi <= lo is empty.
struct Interval {
  Time lo;
  Time hi;

  constexpr Interval() = default;
  constexpr Interval(Time lo_, Time hi_) : lo(lo_), hi(hi_) {}

  /// Interval covering [start, start + length).
  static constexpr Interval from_length(Time start, Time length) {
    return Interval(start, start + length);
  }

  constexpr bool empty() const { return hi <= lo; }
  constexpr Time length() const { return empty() ? Time::zero() : hi - lo; }

  /// True iff t lies in [lo, hi).
  constexpr bool contains(Time t) const { return lo <= t && t < hi; }

  /// True iff the two intervals share at least one point.
  constexpr bool overlaps(const Interval& other) const {
    return lo < other.hi && other.lo < hi && !empty() && !other.empty();
  }

  /// True iff other is fully inside this interval (empty ⊆ anything).
  constexpr bool covers(const Interval& other) const {
    return other.empty() || (lo <= other.lo && other.hi <= hi);
  }

  /// Intersection (possibly empty).
  constexpr Interval intersect(const Interval& other) const {
    return Interval(lo >= other.lo ? lo : other.lo,
                    hi <= other.hi ? hi : other.hi);
  }

  /// True iff the union of the two intervals is a single interval
  /// (overlapping or exactly abutting).
  constexpr bool touches(const Interval& other) const {
    return lo <= other.hi && other.lo <= hi;
  }

  constexpr bool operator==(const Interval&) const = default;

  std::string to_string() const;
};

}  // namespace fjs
