// A scheduling instance: an immutable set of jobs plus derived quantities
// (μ, total work) used throughout the analysis.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/job.h"
#include "support/assert.h"

namespace fjs {

/// An FJS problem instance. Jobs are stored by id (dense, 0-based).
class Instance {
 public:
  Instance() = default;

  /// Takes ownership of jobs; assigns ids 0..n-1 in the given order and
  /// validates every job (throws AssertionError otherwise).
  explicit Instance(std::vector<Job> jobs);

  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }
  /// Defined inline: job lookup is the innermost operation of the exact
  /// solver and the engine, and an out-of-line call here is measurable.
  const Job& job(JobId id) const {
    FJS_REQUIRE(id < jobs_.size(), "Instance: job id out of range");
    return jobs_[id];
  }
  const std::vector<Job>& jobs() const { return jobs_; }

  /// μ = max p / min p (≥ 1). Requires a non-empty instance.
  double mu() const;

  Time min_length() const;
  Time max_length() const;

  /// Σ p(J). Uses checked addition (adversarial instances can be huge).
  Time total_work() const;

  /// Earliest arrival across jobs. Requires non-empty.
  Time earliest_arrival() const;

  /// max over jobs of d(J) + p(J): horizon containing any valid schedule.
  Time latest_completion() const;

  /// Job ids sorted by (arrival, id).
  std::vector<JobId> ids_by_arrival() const;
  /// Job ids sorted by (deadline, id).
  std::vector<JobId> ids_by_deadline() const;

  /// True iff every arrival/deadline/length is a multiple of `quantum`
  /// ticks — precondition of the exact offline solver.
  bool is_multiple_of(Time quantum) const;

  /// Human-readable listing (one job per line).
  std::string to_string() const;

  /// Plain-text serialization: "a d p" per line, in units of
  /// Time::kTicksPerUnit. Round-trips through parse().
  void write(std::ostream& os) const;
  static Instance parse(std::istream& is);

 private:
  std::vector<Job> jobs_;
};

/// Fluent builder for tests/examples: accepts real-valued unit times.
///
///   Instance inst = InstanceBuilder()
///       .add(0.0, 0.0, 1.0)     // arrival, start-deadline, length
///       .add(0.5, 2.0, 3.0)
///       .build();
class InstanceBuilder {
 public:
  /// Adds a job from unit-valued times (converted to ticks).
  InstanceBuilder& add(double arrival, double deadline, double length);

  /// Adds a job from tick-valued times.
  InstanceBuilder& add_ticks(Time arrival, Time deadline, Time length);

  /// Adds a job from arrival + laxity instead of an absolute deadline.
  InstanceBuilder& add_lax(double arrival, double laxity, double length);

  std::size_t size() const { return jobs_.size(); }

  Instance build();

 private:
  std::vector<Job> jobs_;
};

}  // namespace fjs
