// A scheduling instance: an immutable set of jobs plus derived quantities
// (μ, total work) used throughout the analysis.
//
// Storage is columnar (core/job_table.h); Instance is a thin validated
// owner. Derived stats are computed once at construction; per-job access
// goes through job() (checked) or view() (unchecked columns, the hot
// path of the engine / exact solver / miner).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/job.h"
#include "core/job_table.h"
#include "support/assert.h"

namespace fjs {

/// An FJS problem instance. Jobs are stored by id (dense, 0-based).
class Instance {
 public:
  Instance() = default;

  /// Takes ownership of jobs; assigns ids 0..n-1 in the given order and
  /// validates every job (throws AssertionError otherwise).
  explicit Instance(std::vector<Job> jobs);

  /// Takes ownership of a columnar table; validates every row.
  explicit Instance(JobTable table);

  std::size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }

  /// Checked single-job lookup (returns by value: storage is columnar).
  /// Hot loops should hoist a view() instead — its accessors skip the
  /// range check in release builds.
  Job job(JobId id) const {
    FJS_REQUIRE(id < table_.size(), "Instance: job id out of range");
    return table_.job(id);
  }

  /// Non-owning columnar view; valid while this Instance is alive.
  InstanceView view() const { return table_.view(); }
  const JobTable& table() const { return table_; }

  /// μ = max p / min p (≥ 1). Requires a non-empty instance.
  double mu() const {
    FJS_REQUIRE(!empty(), "mu of empty instance");
    return mu_;
  }

  Time min_length() const {
    FJS_REQUIRE(!empty(), "min_length of empty instance");
    return min_length_;
  }
  Time max_length() const {
    FJS_REQUIRE(!empty(), "max_length of empty instance");
    return max_length_;
  }

  /// Σ p(J). Throws AssertionError if the sum overflows (adversarial
  /// instances can be huge); the overflow is detected at construction
  /// but reported here, so near-Time::max() instances still construct.
  Time total_work() const {
    FJS_REQUIRE(!total_work_overflow_, "Time::checked_add overflow");
    return total_work_;
  }

  /// Earliest arrival across jobs. Requires non-empty.
  Time earliest_arrival() const {
    FJS_REQUIRE(!empty(), "earliest_arrival of empty instance");
    return earliest_arrival_;
  }

  /// max over jobs of d(J) + p(J): horizon containing any valid schedule.
  Time latest_completion() const {
    FJS_REQUIRE(!empty(), "latest_completion of empty instance");
    return latest_completion_;
  }

  /// Job ids sorted by (arrival, id).
  std::vector<JobId> ids_by_arrival() const { return view().ids_by_arrival(); }
  /// Job ids sorted by (deadline, id).
  std::vector<JobId> ids_by_deadline() const {
    return view().ids_by_deadline();
  }

  /// True iff every arrival/deadline/length is a multiple of `quantum`
  /// ticks — precondition of the exact offline solver.
  bool is_multiple_of(Time quantum) const {
    return view().is_multiple_of(quantum);
  }

  /// Human-readable listing (one job per line).
  std::string to_string() const { return view().to_string(); }

  /// Plain-text serialization: "a d p" per line, in units of
  /// Time::kTicksPerUnit. Round-trips through parse().
  void write(std::ostream& os) const;
  static Instance parse(std::istream& is);

 private:
  void validate_and_cache();

  JobTable table_;
  // Derived stats, computed once by validate_and_cache(). Meaningful only
  // for non-empty instances (the accessors enforce that).
  double mu_ = 1.0;
  Time min_length_;
  Time max_length_;
  Time earliest_arrival_;
  Time latest_completion_;
  Time total_work_;
  bool total_work_overflow_ = false;
};

/// Fluent builder for tests/examples: accepts real-valued unit times.
///
///   Instance inst = InstanceBuilder()
///       .add(0.0, 0.0, 1.0)     // arrival, start-deadline, length
///       .add(0.5, 2.0, 3.0)
///       .build();
class InstanceBuilder {
 public:
  /// Adds a job from unit-valued times (converted to ticks).
  InstanceBuilder& add(double arrival, double deadline, double length);

  /// Adds a job from tick-valued times.
  InstanceBuilder& add_ticks(Time arrival, Time deadline, Time length);

  /// Adds a job from arrival + laxity instead of an absolute deadline.
  InstanceBuilder& add_lax(double arrival, double laxity, double length);

  std::size_t size() const { return table_.size(); }

  Instance build();

 private:
  JobTable table_;
};

}  // namespace fjs
