// A schedule assigns every job a start time; span and validity checks.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/instance.h"
#include "core/interval_set.h"

namespace fjs {

/// Start-time assignment for the jobs of an Instance.
///
/// A Schedule may be partial while under construction; all queries that
/// depend on completeness (span, validate) require it complete unless noted.
class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::size_t job_count);

  /// Builds a complete schedule from a start vector (one entry per job).
  static Schedule from_starts(const std::vector<Time>& starts);

  std::size_t size() const { return starts_.size(); }

  bool is_set(JobId id) const;
  bool complete() const;

  void set_start(JobId id, Time start);
  Time start(JobId id) const;

  /// Active interval of a job under this schedule.
  Interval active_interval(const Instance& inst, JobId id) const;

  /// Union of all active intervals. Requires completeness.
  IntervalSet active_set(const Instance& inst) const;

  /// span = measure of the union of active intervals (§2).
  Time span(const Instance& inst) const;

  /// Throws AssertionError unless every job has
  /// arrival <= start <= deadline. Requires completeness.
  void validate(const Instance& inst) const;

  /// Non-throwing validity probe.
  bool is_valid(const Instance& inst) const;

  /// Number of jobs running at time t (interval semantics are half-open).
  std::size_t concurrency_at(const Instance& inst, Time t) const;

  /// Peak number of simultaneously running jobs.
  std::size_t max_concurrency(const Instance& inst) const;

  /// Step function of running-job counts: breakpoints (t, c) meaning the
  /// concurrency is c on [t, next breakpoint). Starts at the first start
  /// event and ends with a (t, 0) entry at the last completion.
  std::vector<std::pair<Time, std::size_t>> concurrency_profile(
      const Instance& inst) const;

  /// Latest completion time across jobs; Time::zero() for empty schedules.
  Time makespan_end(const Instance& inst) const;

  /// Σ (start - arrival): total start delay introduced by the scheduler.
  Time total_delay(const Instance& inst) const;

  const std::vector<std::optional<Time>>& starts() const { return starts_; }

  std::string to_string(const Instance& inst) const;

  /// Plain-text serialization: count, then one start per line in units
  /// ("-" for unset slots). Round-trips through parse().
  void write(std::ostream& os) const;
  static Schedule parse(std::istream& is);

 private:
  std::vector<std::optional<Time>> starts_;
};

/// Summary metrics for reporting.
struct ScheduleMetrics {
  Time span;
  Time makespan_end;
  std::size_t max_concurrency = 0;
  Time total_delay;
  Time total_work;
  /// span / total_work: < 1 means real parallel overlap was achieved.
  double span_over_work = 0.0;
};

ScheduleMetrics compute_metrics(const Instance& inst, const Schedule& sched);

}  // namespace fjs
