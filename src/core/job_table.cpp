#include "core/job_table.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace fjs {

double InstanceView::mu() const {
  FJS_REQUIRE(!empty(), "mu of empty instance");
  return time_ratio(max_length(), min_length());
}

Time InstanceView::min_length() const {
  FJS_REQUIRE(!empty(), "min_length of empty instance");
  Time m = lengths_.front();
  for (const Time p : lengths_) {
    m = std::min(m, p);
  }
  return m;
}

Time InstanceView::max_length() const {
  FJS_REQUIRE(!empty(), "max_length of empty instance");
  Time m = lengths_.front();
  for (const Time p : lengths_) {
    m = std::max(m, p);
  }
  return m;
}

Time InstanceView::total_work() const {
  Time total = Time::zero();
  for (const Time p : lengths_) {
    total = total.checked_add(p);
  }
  return total;
}

Time InstanceView::total_work_saturating(bool* overflowed) const {
  // Lengths are positive in a validated table, so the saturating sum only
  // ever clips at Time::max(); detect the clip exactly by comparing the
  // checked condition per step instead of re-running checked_add (which
  // would throw).
  bool clipped = false;
  Time total = Time::zero();
  for (const Time p : lengths_) {
    if (total > Time::max() - p) {
      clipped = true;
      total = Time::max();
    } else {
      total = total + p;
    }
  }
  if (overflowed != nullptr) {
    *overflowed = clipped;
  }
  return total;
}

Time InstanceView::earliest_arrival() const {
  FJS_REQUIRE(!empty(), "earliest_arrival of empty instance");
  Time m = arrivals_.front();
  for (const Time a : arrivals_) {
    m = std::min(m, a);
  }
  return m;
}

Time InstanceView::latest_completion() const {
  FJS_REQUIRE(!empty(), "latest_completion of empty instance");
  Time m = Time::min();
  for (std::size_t i = 0; i < deadlines_.size(); ++i) {
    m = std::max(m, deadlines_[i].checked_add(lengths_[i]));
  }
  return m;
}

void InstanceView::ids_by_arrival(std::vector<JobId>& out) const {
  out.resize(size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<JobId>(i);
  }
  std::sort(out.begin(), out.end(), [this](JobId a, JobId b) {
    if (arrivals_[a] != arrivals_[b]) {
      return arrivals_[a] < arrivals_[b];
    }
    return a < b;
  });
}

void InstanceView::ids_by_deadline(std::vector<JobId>& out) const {
  out.resize(size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<JobId>(i);
  }
  std::sort(out.begin(), out.end(), [this](JobId a, JobId b) {
    if (deadlines_[a] != deadlines_[b]) {
      return deadlines_[a] < deadlines_[b];
    }
    return a < b;
  });
}

std::vector<JobId> InstanceView::ids_by_arrival() const {
  std::vector<JobId> ids;
  ids_by_arrival(ids);
  return ids;
}

std::vector<JobId> InstanceView::ids_by_deadline() const {
  std::vector<JobId> ids;
  ids_by_deadline(ids);
  return ids;
}

bool InstanceView::sorted_by_arrival() const {
  return std::is_sorted(arrivals_.begin(), arrivals_.end());
}

bool InstanceView::is_multiple_of(Time quantum) const {
  FJS_REQUIRE(quantum > Time::zero(), "is_multiple_of: quantum must be > 0");
  const std::int64_t q = quantum.ticks();
  for (std::size_t i = 0; i < size(); ++i) {
    if (arrivals_[i].ticks() % q != 0 || deadlines_[i].ticks() % q != 0 ||
        lengths_[i].ticks() % q != 0) {
      return false;
    }
  }
  return true;
}

void InstanceView::validate() const {
  for (std::size_t i = 0; i < size(); ++i) {
    const Job j = job(static_cast<JobId>(i));
    FJS_REQUIRE(j.valid(), "Instance: invalid job " + j.to_string());
    // d + p must be representable: a job may legally start at its
    // starting deadline, so its completion reaches d + p. Enforcing this
    // here makes latest_completion() and the engine's completion pushes
    // provably overflow-free (length > 0 keeps max() - length safe).
    FJS_REQUIRE(j.deadline <= Time::max() - j.length,
                "Instance: job " + j.to_string() +
                    " has deadline + length past Time::max()");
  }
}

std::string InstanceView::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < size(); ++i) {
    os << job(static_cast<JobId>(i)).to_string() << '\n';
  }
  return os.str();
}

JobTable::JobTable(const std::vector<Job>& jobs) {
  reserve(jobs.size());
  for (const Job& j : jobs) {
    push_back(j);
  }
}

JobTable::JobTable(InstanceView view)
    : arrival_(view.arrivals().begin(), view.arrivals().end()),
      deadline_(view.deadlines().begin(), view.deadlines().end()),
      length_(view.lengths().begin(), view.lengths().end()) {}

}  // namespace fjs
