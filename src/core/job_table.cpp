#include "core/job_table.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "support/simd.h"

namespace fjs {

double InstanceView::mu() const {
  FJS_REQUIRE(!empty(), "mu of empty instance");
  const simd::MinMax mm = simd::minmax_ticks(lengths_.data(), lengths_.size());
  return time_ratio(Time(mm.max), Time(mm.min));
}

Time InstanceView::min_length() const {
  FJS_REQUIRE(!empty(), "min_length of empty instance");
  return Time(simd::minmax_ticks(lengths_.data(), lengths_.size()).min);
}

Time InstanceView::max_length() const {
  FJS_REQUIRE(!empty(), "max_length of empty instance");
  return Time(simd::minmax_ticks(lengths_.data(), lengths_.size()).max);
}

Time InstanceView::total_work() const {
  if (empty()) {
    return Time::zero();
  }
  const simd::SatSum s =
      simd::sum_saturating_nonneg(lengths_.data(), lengths_.size());
  if (!s.overflowed) {
    return Time(s.sum);
  }
  // Overflow (or negative lengths in an unvalidated scratch, which the
  // kernel's carry check also routes here): re-run the checked scalar
  // loop so the result — value or AssertionError — is exactly the
  // pre-kernel behavior.
  Time total = Time::zero();
  for (const Time p : lengths_) {
    total = total.checked_add(p);
  }
  return total;
}

Time InstanceView::total_work_saturating(bool* overflowed) const {
  if (empty()) {
    if (overflowed != nullptr) {
      *overflowed = false;
    }
    return Time::zero();
  }
  const simd::SatSum s =
      simd::sum_saturating_nonneg(lengths_.data(), lengths_.size());
  if (!s.overflowed) {
    if (overflowed != nullptr) {
      *overflowed = false;
    }
    return Time(s.sum);
  }
  // Lengths are positive in a validated table, so the saturating sum only
  // ever clips at Time::max(); the legacy step-wise loop stays the
  // authority for the (rare) clipped case and for unvalidated inputs.
  bool clipped = false;
  Time total = Time::zero();
  for (const Time p : lengths_) {
    if (total > Time::max() - p) {
      clipped = true;
      total = Time::max();
    } else {
      total = total + p;
    }
  }
  if (overflowed != nullptr) {
    *overflowed = clipped;
  }
  return total;
}

Time InstanceView::earliest_arrival() const {
  FJS_REQUIRE(!empty(), "earliest_arrival of empty instance");
  return Time(simd::minmax_ticks(arrivals_.data(), arrivals_.size()).min);
}

Time InstanceView::latest_completion() const {
  FJS_REQUIRE(!empty(), "latest_completion of empty instance");
  const simd::MaxSum s = simd::max_pairwise_sum(
      deadlines_.data(), lengths_.data(), deadlines_.size());
  if (!s.overflowed) {
    return Time(s.max);
  }
  // Some d + p is unrepresentable: re-run the checked scalar loop so the
  // AssertionError fires at the same row with the same message.
  Time m = Time::min();
  for (std::size_t i = 0; i < deadlines_.size(); ++i) {
    m = std::max(m, deadlines_[i].checked_add(lengths_[i]));
  }
  return m;
}

void InstanceView::ids_by_arrival(std::vector<JobId>& out) const {
  simd::sort_ids_by_key(arrivals_.data(), arrivals_.size(), out);
}

void InstanceView::ids_by_deadline(std::vector<JobId>& out) const {
  simd::sort_ids_by_key(deadlines_.data(), deadlines_.size(), out);
}

std::vector<JobId> InstanceView::ids_by_arrival() const {
  std::vector<JobId> ids;
  ids_by_arrival(ids);
  return ids;
}

std::vector<JobId> InstanceView::ids_by_deadline() const {
  std::vector<JobId> ids;
  ids_by_deadline(ids);
  return ids;
}

bool InstanceView::sorted_by_arrival() const {
  return std::is_sorted(arrivals_.begin(), arrivals_.end());
}

bool InstanceView::is_multiple_of(Time quantum) const {
  FJS_REQUIRE(quantum > Time::zero(), "is_multiple_of: quantum must be > 0");
  const std::int64_t q = quantum.ticks();
  for (std::size_t i = 0; i < size(); ++i) {
    if (arrivals_[i].ticks() % q != 0 || deadlines_[i].ticks() % q != 0 ||
        lengths_[i].ticks() % q != 0) {
      return false;
    }
  }
  return true;
}

void InstanceView::validate() const {
  for (std::size_t i = 0; i < size(); ++i) {
    const Job j = job(static_cast<JobId>(i));
    FJS_REQUIRE(j.valid(), "Instance: invalid job " + j.to_string());
    // d + p must be representable: a job may legally start at its
    // starting deadline, so its completion reaches d + p. Enforcing this
    // here makes latest_completion() and the engine's completion pushes
    // provably overflow-free (length > 0 keeps max() - length safe).
    FJS_REQUIRE(j.deadline <= Time::max() - j.length,
                "Instance: job " + j.to_string() +
                    " has deadline + length past Time::max()");
  }
}

std::string InstanceView::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < size(); ++i) {
    os << job(static_cast<JobId>(i)).to_string() << '\n';
  }
  return os.str();
}

JobTable::JobTable(const std::vector<Job>& jobs) {
  reserve(jobs.size());
  for (const Job& j : jobs) {
    push_back(j);
  }
}

JobTable::JobTable(InstanceView view) {
  reserve(view.size());
  for (std::size_t i = 0; i < view.size(); ++i) {
    arrival_.push_back(view.arrivals()[i]);
    deadline_.push_back(view.deadlines()[i]);
    length_.push_back(view.lengths()[i]);
  }
}

}  // namespace fjs
