// Incremental span maintenance: the running measure of a growing union of
// active intervals, updated in O(log n) amortized per insert instead of
// rebuilding the IntervalSet from scratch on every query.
//
// The simulation engine feeds it one interval per job start (or per
// deferred length decision), so the span of an online run is available in
// O(1) at any point during and after the run.
#pragma once

#include "core/interval.h"
#include "core/interval_set.h"

namespace fjs {

/// Maintains measure(∪ inserted intervals) under inserts.
///
/// Inserts whose left endpoints arrive in nondecreasing order (simulation
/// time order) take the IntervalSet::add_hint O(1) append path.
class SpanTracker {
 public:
  /// Inserts an interval and updates the cached measure. Empty intervals
  /// are ignored.
  void add(const Interval& interval) {
    if (interval.empty()) {
      return;
    }
    measure_ += covered_.uncovered_measure(interval);
    covered_.add_hint(interval);
  }

  /// Current measure of the union — the span when the tracker holds all
  /// active intervals of a schedule.
  Time span() const { return measure_; }

  /// The union itself (sorted disjoint components).
  const IntervalSet& covered() const { return covered_; }

  bool empty() const { return covered_.empty(); }

  /// Resets to the empty union, keeping allocated capacity.
  void clear() {
    covered_.clear();
    measure_ = Time::zero();
  }

 private:
  IntervalSet covered_;
  Time measure_;
};

}  // namespace fjs
