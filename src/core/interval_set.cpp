#include "core/interval_set.h"

#include <algorithm>
#include <sstream>

#include "support/assert.h"

namespace fjs {

IntervalSet::IntervalSet(std::vector<Interval> intervals) {
  std::erase_if(intervals, [](const Interval& iv) { return iv.empty(); });
  if (intervals.empty()) {
    return;
  }
  // Sorting by lo alone is enough: the merge below accumulates max hi, so
  // the relative order of equal-lo intervals cannot change the result.
  // Callers that maintain sorted interval lists (simulation start order,
  // the offline local-search loops) skip the sort entirely.
  const auto by_lo = [](const Interval& a, const Interval& b) {
    return a.lo < b.lo;
  };
  if (!std::is_sorted(intervals.begin(), intervals.end(), by_lo)) {
    std::sort(intervals.begin(), intervals.end(), by_lo);
  }
  components_.reserve(intervals.size());
  components_.push_back(intervals.front());
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    const Interval& iv = intervals[i];
    Interval& back = components_.back();
    if (iv.lo <= back.hi) {
      back.hi = std::max(back.hi, iv.hi);
    } else {
      components_.push_back(iv);
    }
  }
}

Time IntervalSet::sorted_union_measure(const std::vector<Interval>& sorted) {
  Time total = Time::zero();
  Time run_lo;
  Time run_hi;
  bool open = false;
  for (const Interval& iv : sorted) {
    if (iv.empty()) {
      continue;
    }
    if (!open) {
      run_lo = iv.lo;
      run_hi = iv.hi;
      open = true;
      continue;
    }
    FJS_CHECK(iv.lo >= run_lo, "sorted_union_measure: input not sorted");
    if (iv.lo <= run_hi) {
      run_hi = std::max(run_hi, iv.hi);
    } else {
      total += run_hi - run_lo;
      run_lo = iv.lo;
      run_hi = iv.hi;
    }
  }
  if (open) {
    total += run_hi - run_lo;
  }
  return total;
}

void IntervalSet::replace_in_sorted(std::vector<Interval>& sorted,
                                    const Interval& old_iv,
                                    const Interval& new_iv) {
  const auto by_lo = [](const Interval& a, const Interval& b) {
    return a.lo < b.lo;
  };
  auto it = std::lower_bound(sorted.begin(), sorted.end(), old_iv, by_lo);
  while (it != sorted.end() && *it != old_iv) {
    ++it;  // walk the equal-lo run to the matching instance
  }
  FJS_REQUIRE(it != sorted.end() && *it == old_iv,
              "replace_in_sorted: old interval not found");
  sorted.erase(it);
  sorted.insert(
      std::lower_bound(sorted.begin(), sorted.end(), new_iv, by_lo), new_iv);
}

void IntervalSet::add(const Interval& interval) {
  if (interval.empty()) {
    return;
  }
  // Find the first component that could touch the new interval.
  auto first = std::lower_bound(
      components_.begin(), components_.end(), interval,
      [](const Interval& c, const Interval& iv) { return c.hi < iv.lo; });
  if (first == components_.end() || !first->touches(interval)) {
    components_.insert(first, interval);
    return;
  }
  // Merge the run of touching components into one.
  auto last = first;
  Time lo = std::min(first->lo, interval.lo);
  Time hi = std::max(first->hi, interval.hi);
  ++last;
  while (last != components_.end() && last->lo <= hi) {
    hi = std::max(hi, last->hi);
    ++last;
  }
  *first = Interval(lo, hi);
  components_.erase(first + 1, last);
}

void IntervalSet::add_hint(const Interval& interval) {
  if (interval.empty()) {
    return;
  }
  if (components_.empty()) {
    components_.push_back(interval);
    return;
  }
  Interval& back = components_.back();
  if (interval.lo >= back.lo) {
    // The interval can only touch the last component: every earlier
    // component ends strictly before the last one starts.
    if (interval.lo <= back.hi) {
      back.hi = std::max(back.hi, interval.hi);
    } else {
      components_.push_back(interval);
    }
    return;
  }
  add(interval);
}

void IntervalSet::unite(const IntervalSet& other) {
  if (other.components_.empty()) {
    return;
  }
  if (components_.empty()) {
    components_ = other.components_;
    return;
  }
  std::vector<Interval> merged;
  merged.reserve(components_.size() + other.components_.size());
  auto a = components_.begin();
  auto b = other.components_.begin();
  const auto take = [&merged](const Interval& iv) {
    if (!merged.empty() && iv.lo <= merged.back().hi) {
      merged.back().hi = std::max(merged.back().hi, iv.hi);
    } else {
      merged.push_back(iv);
    }
  };
  while (a != components_.end() && b != other.components_.end()) {
    if (a->lo <= b->lo) {
      take(*a++);
    } else {
      take(*b++);
    }
  }
  for (; a != components_.end(); ++a) {
    take(*a);
  }
  for (; b != other.components_.end(); ++b) {
    take(*b);
  }
  components_ = std::move(merged);
}

const Interval& IntervalSet::component(std::size_t i) const {
  FJS_REQUIRE(i < components_.size(), "IntervalSet: component out of range");
  return components_[i];
}

Time IntervalSet::measure() const {
  Time total = Time::zero();
  for (const auto& c : components_) {
    total += c.length();
  }
  return total;
}

bool IntervalSet::contains(Time t) const {
  auto it = std::upper_bound(
      components_.begin(), components_.end(), t,
      [](Time value, const Interval& c) { return value < c.hi; });
  return it != components_.end() && it->contains(t);
}

bool IntervalSet::intersects(const Interval& interval) const {
  if (interval.empty()) {
    return false;
  }
  auto it = std::upper_bound(
      components_.begin(), components_.end(), interval.lo,
      [](Time value, const Interval& c) { return value < c.hi; });
  return it != components_.end() && it->overlaps(interval);
}

Time IntervalSet::measure_within(const Interval& interval) const {
  if (interval.empty()) {
    return Time::zero();
  }
  Time total = Time::zero();
  auto it = std::upper_bound(
      components_.begin(), components_.end(), interval.lo,
      [](Time value, const Interval& c) { return value < c.hi; });
  for (; it != components_.end() && it->lo < interval.hi; ++it) {
    total += it->intersect(interval).length();
  }
  return total;
}

Time IntervalSet::uncovered_measure(const Interval& interval) const {
  return interval.length() - measure_within(interval);
}

Time IntervalSet::lower() const {
  FJS_REQUIRE(!components_.empty(), "IntervalSet::lower on empty set");
  return components_.front().lo;
}

Time IntervalSet::upper() const {
  FJS_REQUIRE(!components_.empty(), "IntervalSet::upper on empty set");
  return components_.back().hi;
}

std::vector<Interval> IntervalSet::gaps_within(const Interval& range) const {
  std::vector<Interval> gaps;
  if (range.empty()) {
    return gaps;
  }
  Time cursor = range.lo;
  for (const auto& c : components_) {
    if (c.hi <= cursor) {
      continue;
    }
    if (c.lo >= range.hi) {
      break;
    }
    if (c.lo > cursor) {
      gaps.emplace_back(cursor, std::min(c.lo, range.hi));
    }
    cursor = std::max(cursor, c.hi);
    if (cursor >= range.hi) {
      break;
    }
  }
  if (cursor < range.hi) {
    gaps.emplace_back(cursor, range.hi);
  }
  return gaps;
}

std::string IntervalSet::to_string() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << components_[i].to_string();
  }
  os << '}';
  return os.str();
}

}  // namespace fjs
