#include "core/interval_set.h"

#include <algorithm>
#include <sstream>

#include "support/assert.h"

namespace fjs {

IntervalSet::IntervalSet(const std::vector<Interval>& intervals) {
  for (const auto& iv : intervals) {
    add(iv);
  }
}

void IntervalSet::add(const Interval& interval) {
  if (interval.empty()) {
    return;
  }
  // Find the first component that could touch the new interval.
  auto first = std::lower_bound(
      components_.begin(), components_.end(), interval,
      [](const Interval& c, const Interval& iv) { return c.hi < iv.lo; });
  if (first == components_.end() || !first->touches(interval)) {
    components_.insert(first, interval);
    return;
  }
  // Merge the run of touching components into one.
  auto last = first;
  Time lo = std::min(first->lo, interval.lo);
  Time hi = std::max(first->hi, interval.hi);
  ++last;
  while (last != components_.end() && last->lo <= hi) {
    hi = std::max(hi, last->hi);
    ++last;
  }
  *first = Interval(lo, hi);
  components_.erase(first + 1, last);
}

void IntervalSet::unite(const IntervalSet& other) {
  for (const auto& iv : other.components_) {
    add(iv);
  }
}

const Interval& IntervalSet::component(std::size_t i) const {
  FJS_REQUIRE(i < components_.size(), "IntervalSet: component out of range");
  return components_[i];
}

Time IntervalSet::measure() const {
  Time total = Time::zero();
  for (const auto& c : components_) {
    total += c.length();
  }
  return total;
}

bool IntervalSet::contains(Time t) const {
  auto it = std::upper_bound(
      components_.begin(), components_.end(), t,
      [](Time value, const Interval& c) { return value < c.hi; });
  return it != components_.end() && it->contains(t);
}

bool IntervalSet::intersects(const Interval& interval) const {
  if (interval.empty()) {
    return false;
  }
  auto it = std::upper_bound(
      components_.begin(), components_.end(), interval.lo,
      [](Time value, const Interval& c) { return value < c.hi; });
  return it != components_.end() && it->overlaps(interval);
}

Time IntervalSet::measure_within(const Interval& interval) const {
  if (interval.empty()) {
    return Time::zero();
  }
  Time total = Time::zero();
  auto it = std::upper_bound(
      components_.begin(), components_.end(), interval.lo,
      [](Time value, const Interval& c) { return value < c.hi; });
  for (; it != components_.end() && it->lo < interval.hi; ++it) {
    total += it->intersect(interval).length();
  }
  return total;
}

Time IntervalSet::uncovered_measure(const Interval& interval) const {
  return interval.length() - measure_within(interval);
}

Time IntervalSet::lower() const {
  FJS_REQUIRE(!components_.empty(), "IntervalSet::lower on empty set");
  return components_.front().lo;
}

Time IntervalSet::upper() const {
  FJS_REQUIRE(!components_.empty(), "IntervalSet::upper on empty set");
  return components_.back().hi;
}

std::vector<Interval> IntervalSet::gaps_within(const Interval& range) const {
  std::vector<Interval> gaps;
  if (range.empty()) {
    return gaps;
  }
  Time cursor = range.lo;
  for (const auto& c : components_) {
    if (c.hi <= cursor) {
      continue;
    }
    if (c.lo >= range.hi) {
      break;
    }
    if (c.lo > cursor) {
      gaps.emplace_back(cursor, std::min(c.lo, range.hi));
    }
    cursor = std::max(cursor, c.hi);
    if (cursor >= range.hi) {
      break;
    }
  }
  if (cursor < range.hi) {
    gaps.emplace_back(cursor, range.hi);
  }
  return gaps;
}

std::string IntervalSet::to_string() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << components_[i].to_string();
  }
  os << '}';
  return os.str();
}

}  // namespace fjs
