#include "core/schedule.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/assert.h"

namespace fjs {

Schedule::Schedule(std::size_t job_count) : starts_(job_count) {}

Schedule Schedule::from_starts(const std::vector<Time>& starts) {
  Schedule s(starts.size());
  for (std::size_t i = 0; i < starts.size(); ++i) {
    s.starts_[i] = starts[i];
  }
  return s;
}

bool Schedule::is_set(JobId id) const {
  FJS_REQUIRE(id < starts_.size(), "Schedule: job id out of range");
  return starts_[id].has_value();
}

bool Schedule::complete() const {
  return std::all_of(starts_.begin(), starts_.end(),
                     [](const auto& s) { return s.has_value(); });
}

void Schedule::set_start(JobId id, Time start) {
  FJS_REQUIRE(id < starts_.size(), "Schedule: job id out of range");
  FJS_REQUIRE(!starts_[id].has_value(), "Schedule: job started twice");
  starts_[id] = start;
}

Time Schedule::start(JobId id) const {
  FJS_REQUIRE(id < starts_.size(), "Schedule: job id out of range");
  FJS_REQUIRE(starts_[id].has_value(), "Schedule: job has no start time");
  return *starts_[id];
}

Interval Schedule::active_interval(const Instance& inst, JobId id) const {
  return inst.job(id).active_interval(start(id));
}

IntervalSet Schedule::active_set(const Instance& inst) const {
  FJS_REQUIRE(inst.size() == starts_.size(),
              "Schedule: instance size mismatch");
  std::vector<Interval> intervals;
  intervals.reserve(starts_.size());
  for (JobId id = 0; id < starts_.size(); ++id) {
    intervals.push_back(active_interval(inst, id));
  }
  return IntervalSet(std::move(intervals));
}

Time Schedule::span(const Instance& inst) const {
  return active_set(inst).measure();
}

void Schedule::validate(const Instance& inst) const {
  FJS_REQUIRE(inst.size() == starts_.size(),
              "Schedule: instance size mismatch");
  for (JobId id = 0; id < starts_.size(); ++id) {
    const Job& j = inst.job(id);
    FJS_REQUIRE(starts_[id].has_value(),
                "Schedule: " + j.to_string() + " never started");
    const Time s = *starts_[id];
    FJS_REQUIRE(s >= j.arrival,
                "Schedule: " + j.to_string() + " started before arrival");
    FJS_REQUIRE(s <= j.deadline,
                "Schedule: " + j.to_string() + " started after its deadline");
  }
}

bool Schedule::is_valid(const Instance& inst) const {
  if (inst.size() != starts_.size()) {
    return false;
  }
  for (JobId id = 0; id < starts_.size(); ++id) {
    const Job& j = inst.job(id);
    if (!starts_[id].has_value() || *starts_[id] < j.arrival ||
        *starts_[id] > j.deadline) {
      return false;
    }
  }
  return true;
}

std::size_t Schedule::concurrency_at(const Instance& inst, Time t) const {
  std::size_t count = 0;
  for (JobId id = 0; id < starts_.size(); ++id) {
    if (starts_[id].has_value() &&
        active_interval(inst, id).contains(t)) {
      ++count;
    }
  }
  return count;
}

std::size_t Schedule::max_concurrency(const Instance& inst) const {
  // Sweep over start/end events; +1 sorts before -1 at the same tick only
  // matters for closed intervals — with half-open intervals an end at t and
  // a start at t do NOT overlap, so process ends first.
  std::vector<std::pair<Time, int>> events;
  events.reserve(starts_.size() * 2);
  for (JobId id = 0; id < starts_.size(); ++id) {
    if (!starts_[id].has_value()) {
      continue;
    }
    const Interval iv = active_interval(inst, id);
    events.emplace_back(iv.lo, +1);
    events.emplace_back(iv.hi, -1);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) {
                return a.first < b.first;
              }
              return a.second < b.second;  // ends (-1) before starts (+1)
            });
  std::size_t current = 0;
  std::size_t peak = 0;
  for (const auto& [t, delta] : events) {
    if (delta > 0) {
      ++current;
      peak = std::max(peak, current);
    } else {
      FJS_CHECK(current > 0, "concurrency underflow");
      --current;
    }
  }
  return peak;
}

std::vector<std::pair<Time, std::size_t>> Schedule::concurrency_profile(
    const Instance& inst) const {
  std::vector<std::pair<Time, int>> events;
  for (JobId id = 0; id < starts_.size(); ++id) {
    if (!starts_[id].has_value()) {
      continue;
    }
    const Interval iv = active_interval(inst, id);
    events.emplace_back(iv.lo, +1);
    events.emplace_back(iv.hi, -1);
  }
  std::sort(events.begin(), events.end());
  std::vector<std::pair<Time, std::size_t>> profile;
  std::size_t current = 0;
  for (std::size_t i = 0; i < events.size();) {
    const Time t = events[i].first;
    std::ptrdiff_t delta = 0;
    for (; i < events.size() && events[i].first == t; ++i) {
      delta += events[i].second;
    }
    if (delta == 0) {
      continue;  // concurrency unchanged at this tick
    }
    current = static_cast<std::size_t>(
        static_cast<std::ptrdiff_t>(current) + delta);
    profile.emplace_back(t, current);
  }
  return profile;
}

Time Schedule::makespan_end(const Instance& inst) const {
  Time end = Time::zero();
  for (JobId id = 0; id < starts_.size(); ++id) {
    if (starts_[id].has_value()) {
      end = std::max(end, active_interval(inst, id).hi);
    }
  }
  return end;
}

Time Schedule::total_delay(const Instance& inst) const {
  Time total = Time::zero();
  for (JobId id = 0; id < starts_.size(); ++id) {
    if (starts_[id].has_value()) {
      total += *starts_[id] - inst.job(id).arrival;
    }
  }
  return total;
}

std::string Schedule::to_string(const Instance& inst) const {
  std::ostringstream os;
  for (JobId id = 0; id < starts_.size(); ++id) {
    os << inst.job(id).to_string() << " -> ";
    if (starts_[id].has_value()) {
      os << "start " << starts_[id]->to_string() << " active "
         << active_interval(inst, id).to_string();
    } else {
      os << "(unscheduled)";
    }
    os << '\n';
  }
  return os.str();
}

void Schedule::write(std::ostream& os) const {
  os << starts_.size() << '\n';
  for (const auto& start : starts_) {
    if (start.has_value()) {
      os << start->to_string() << '\n';
    } else {
      os << "-\n";
    }
  }
}

Schedule Schedule::parse(std::istream& is) {
  std::size_t n = 0;
  FJS_REQUIRE(static_cast<bool>(is >> n), "Schedule::parse: bad count");
  Schedule sched(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string token;
    FJS_REQUIRE(static_cast<bool>(is >> token),
                "Schedule::parse: missing start");
    if (token != "-") {
      sched.starts_[i] = Time::from_units(std::stod(token));
    }
  }
  return sched;
}

ScheduleMetrics compute_metrics(const Instance& inst, const Schedule& sched) {
  ScheduleMetrics m;
  m.span = sched.span(inst);
  m.makespan_end = sched.makespan_end(inst);
  m.max_concurrency = sched.max_concurrency(inst);
  m.total_delay = sched.total_delay(inst);
  m.total_work = inst.total_work();
  m.span_over_work = m.total_work > Time::zero()
                         ? time_ratio(m.span, m.total_work)
                         : 0.0;
  return m;
}

}  // namespace fjs
