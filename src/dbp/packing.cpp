#include "dbp/packing.h"

#include <cmath>
#include <sstream>

#include "support/assert.h"
#include "support/string_util.h"

namespace fjs {
namespace {

/// Shared feasibility check with a small slack for size arithmetic.
bool fits(double load, double size, double capacity) {
  return load + size <= capacity + 1e-9;
}

}  // namespace

std::size_t FirstFitPacker::place(const DbpItem& item,
                                  const std::vector<double>& loads,
                                  double capacity) {
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (fits(loads[i], item.size, capacity)) {
      return i;
    }
  }
  return loads.size();
}

std::size_t BestFitPacker::place(const DbpItem& item,
                                 const std::vector<double>& loads,
                                 double capacity) {
  std::size_t best = loads.size();
  double best_residual = capacity + 1.0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (!fits(loads[i], item.size, capacity)) {
      continue;
    }
    const double residual = capacity - loads[i] - item.size;
    if (residual < best_residual) {
      best_residual = residual;
      best = i;
    }
  }
  return best;
}

std::size_t WorstFitPacker::place(const DbpItem& item,
                                  const std::vector<double>& loads,
                                  double capacity) {
  std::size_t best = loads.size();
  double best_residual = -1.0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (!fits(loads[i], item.size, capacity)) {
      continue;
    }
    const double residual = capacity - loads[i] - item.size;
    if (residual > best_residual) {
      best_residual = residual;
      best = i;
    }
  }
  return best;
}

std::size_t NextFitPacker::place(const DbpItem& item,
                                 const std::vector<double>& loads,
                                 double capacity) {
  if (current_ != kNone && current_ < loads.size() &&
      fits(loads[current_], item.size, capacity)) {
    return current_;
  }
  current_ = loads.size();
  return current_;
}

CdFirstFitPacker::CdFirstFitPacker(double ratio) : ratio_(ratio) {
  FJS_REQUIRE(ratio_ > 1.0, "cd-first-fit: ratio must be > 1");
}

std::string CdFirstFitPacker::name() const {
  std::ostringstream os;
  os << "cd-first-fit(r=" << format_double(ratio_, 3) << ')';
  return os.str();
}

long CdFirstFitPacker::class_of(Time duration) const {
  FJS_REQUIRE(duration > Time::zero(), "cd-first-fit: empty item interval");
  return static_cast<long>(
      std::floor(std::log(static_cast<double>(duration.ticks())) /
                 std::log(ratio_)));
}

std::size_t CdFirstFitPacker::place(const DbpItem& item,
                                    const std::vector<double>& loads,
                                    double capacity) {
  std::vector<std::size_t>& pool = pools_[class_of(item.active.length())];
  for (const std::size_t bin : pool) {
    if (fits(loads[bin], item.size, capacity)) {
      return bin;
    }
  }
  pool.push_back(loads.size());
  return loads.size();
}

}  // namespace fjs
