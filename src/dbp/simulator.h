// MinUsageTime DBP simulator: replays a fixed schedule's active intervals
// through a packing policy and accounts each bin's non-empty time.
#pragma once

#include <vector>

#include "core/instance.h"
#include "core/schedule.h"
#include "dbp/packing.h"

namespace fjs {

struct DbpResult {
  /// Σ over bins of the measure of the bin's non-empty periods — the
  /// MinUsageTime objective (total server running hours).
  Time total_usage;
  std::size_t bins_opened = 0;
  /// Peak number of simultaneously non-empty bins (fleet size needed).
  std::size_t peak_open_bins = 0;
  std::vector<Time> per_bin_usage;
  /// Bin assigned to each job, aligned with instance ids.
  std::vector<std::size_t> assignment;
};

/// Packs every job's active interval. `sizes` is per-job demand in
/// (0, capacity]. The packer's choice is validated (capacity is never
/// exceeded at any time); violations throw AssertionError.
DbpResult run_packing(const Instance& instance, const Schedule& schedule,
                      const std::vector<double>& sizes, Packer& packer,
                      double capacity = 1.0);

/// Standalone MinUsageTime DBP entry point: packs pre-built items (fixed
/// placement intervals, no Instance/Schedule needed). `assignment` in the
/// result is indexed by position in `items`.
DbpResult pack_items(const std::vector<DbpItem>& items, Packer& packer,
                     double capacity = 1.0);

/// Certified lower bound on ANY packing of ANY valid schedule:
/// max(span lower bound, total size×duration volume / capacity).
Time dbp_usage_lower_bound(const Instance& instance,
                           const std::vector<double>& sizes,
                           double capacity = 1.0);

}  // namespace fjs
