// Scheduler × Packer pipelines for generalized MinUsageTime DBP (§5):
// a span-minimizing scheduler fixes start times online, a packing policy
// places each job on a server when it starts, and we account total server
// usage time.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dbp/simulator.h"
#include "sim/scheduler.h"

namespace fjs {

struct PipelineResult {
  std::string scheduler;
  std::string packer;
  Time span;
  DbpResult packing;
  /// usage / certified lower bound: upper estimate of the pipeline's
  /// usage-time competitive ratio on this instance.
  double usage_ratio_upper = 0.0;
};

/// Runs scheduler (by registry key) then packer over the instance.
PipelineResult run_pipeline(const Instance& instance,
                            const std::vector<double>& sizes,
                            const std::string& scheduler_key, Packer& packer,
                            double capacity = 1.0);

/// All standard packers, in presentation order.
std::vector<std::unique_ptr<Packer>> make_standard_packers();

}  // namespace fjs
