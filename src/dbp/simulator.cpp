#include "dbp/simulator.h"

#include <algorithm>
#include <cmath>

#include "core/interval_set.h"
#include "offline/lower_bound.h"
#include "support/assert.h"

namespace fjs {

DbpResult pack_items(const std::vector<DbpItem>& items, Packer& packer,
                     double capacity) {
  FJS_REQUIRE(capacity > 0.0, "dbp: capacity must be positive");
  for (const DbpItem& item : items) {
    FJS_REQUIRE(item.size > 0.0 && item.size <= capacity + 1e-12,
                "dbp: item size outside (0, capacity]");
    FJS_REQUIRE(!item.active.empty(), "dbp: empty item interval");
  }
  packer.reset();

  struct Ev {
    Time time;
    bool is_start;
    std::size_t index;
  };
  std::vector<Ev> events;
  events.reserve(items.size() * 2);
  for (std::size_t i = 0; i < items.size(); ++i) {
    events.push_back(Ev{items[i].active.lo, true, i});
    events.push_back(Ev{items[i].active.hi, false, i});
  }
  // Ends before starts at the same tick: half-open intervals do not
  // overlap, so a departing item frees capacity for one arriving "now".
  std::sort(events.begin(), events.end(), [](const Ev& a, const Ev& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    if (a.is_start != b.is_start) {
      return !a.is_start;
    }
    return a.index < b.index;
  });

  struct Bin {
    double load = 0.0;
    std::size_t count = 0;
    Time opened_at;  ///< start of the current non-empty period
    IntervalSet usage;
  };
  std::vector<Bin> bins;
  std::vector<double> loads;
  DbpResult result;
  result.assignment.assign(items.size(), static_cast<std::size_t>(-1));

  std::size_t open_now = 0;
  for (const Ev& ev : events) {
    const DbpItem& item = items[ev.index];
    if (ev.is_start) {
      const std::size_t choice = packer.place(item, loads, capacity);
      FJS_REQUIRE(choice <= bins.size(), "dbp: packer chose a bad bin index");
      if (choice == bins.size()) {
        bins.emplace_back();
        loads.push_back(0.0);
      }
      Bin& bin = bins[choice];
      FJS_REQUIRE(bin.load + item.size <= capacity + 1e-9,
                  "dbp: packer " + packer.name() + " overflowed a bin");
      if (bin.count == 0) {
        bin.opened_at = ev.time;
        ++open_now;
        result.peak_open_bins = std::max(result.peak_open_bins, open_now);
      }
      bin.load += item.size;
      ++bin.count;
      loads[choice] = bin.load;
      result.assignment[ev.index] = choice;
    } else {
      const std::size_t choice = result.assignment[ev.index];
      FJS_CHECK(choice < bins.size(), "dbp: end event for unplaced item");
      Bin& bin = bins[choice];
      bin.load -= item.size;
      if (bin.load < 0.0) {
        bin.load = 0.0;  // absorb float dust
      }
      --bin.count;
      loads[choice] = bin.load;
      if (bin.count == 0) {
        bin.usage.add(Interval(bin.opened_at, ev.time));
        --open_now;
      }
    }
  }

  result.bins_opened = bins.size();
  result.total_usage = Time::zero();
  for (const Bin& bin : bins) {
    FJS_CHECK(bin.count == 0, "dbp: bin left non-empty after all events");
    const Time usage = bin.usage.measure();
    result.per_bin_usage.push_back(usage);
    result.total_usage += usage;
  }
  return result;
}

DbpResult run_packing(const Instance& instance, const Schedule& schedule,
                      const std::vector<double>& sizes, Packer& packer,
                      double capacity) {
  FJS_REQUIRE(sizes.size() == instance.size(),
              "dbp: sizes must align with instance jobs");
  schedule.validate(instance);
  std::vector<DbpItem> items;
  items.reserve(instance.size());
  for (JobId id = 0; id < instance.size(); ++id) {
    items.push_back(DbpItem{.job = id, .size = sizes[id],
                            .active = schedule.active_interval(instance, id)});
  }
  // Item index == JobId here, so the assignment stays id-aligned.
  return pack_items(items, packer, capacity);
}

Time dbp_usage_lower_bound(const Instance& instance,
                           const std::vector<double>& sizes,
                           double capacity) {
  FJS_REQUIRE(sizes.size() == instance.size(),
              "dbp: sizes must align with instance jobs");
  double volume_ticks = 0.0;
  for (JobId id = 0; id < instance.size(); ++id) {
    volume_ticks +=
        sizes[id] * static_cast<double>(instance.job(id).length.ticks());
  }
  const Time volume_bound =
      Time(static_cast<std::int64_t>(std::ceil(volume_ticks / capacity)));
  return std::max(best_lower_bound(instance), volume_bound);
}

}  // namespace fjs
