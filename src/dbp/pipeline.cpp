#include "dbp/pipeline.h"

#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/assert.h"

namespace fjs {

PipelineResult run_pipeline(const Instance& instance,
                            const std::vector<double>& sizes,
                            const std::string& scheduler_key, Packer& packer,
                            double capacity) {
  const auto scheduler = make_scheduler(scheduler_key);
  // Clairvoyant mode is fine for non-clairvoyant schedulers too (they just
  // ignore the revealed lengths), and required for CDB/Profit/Doubler.
  const SimulationResult sim = simulate(instance, *scheduler,
                                        /*clairvoyant=*/true);
  // simulate() re-indexes jobs by arrival order; align the sizes.
  std::vector<double> aligned(sizes.size());
  const std::vector<JobId> order = instance.ids_by_arrival();
  FJS_CHECK(order.size() == sizes.size(), "pipeline: size mismatch");
  for (std::size_t i = 0; i < order.size(); ++i) {
    aligned[i] = sizes[order[i]];
  }

  PipelineResult result;
  result.scheduler = scheduler->name();
  result.packer = packer.name();
  result.span = sim.span();
  result.packing =
      run_packing(sim.instance, sim.schedule, aligned, packer, capacity);
  const Time lb = dbp_usage_lower_bound(sim.instance, aligned, capacity);
  result.usage_ratio_upper =
      lb > Time::zero() ? time_ratio(result.packing.total_usage, lb) : 0.0;
  return result;
}

std::vector<std::unique_ptr<Packer>> make_standard_packers() {
  std::vector<std::unique_ptr<Packer>> packers;
  packers.push_back(std::make_unique<FirstFitPacker>());
  packers.push_back(std::make_unique<BestFitPacker>());
  packers.push_back(std::make_unique<WorstFitPacker>());
  packers.push_back(std::make_unique<NextFitPacker>());
  packers.push_back(std::make_unique<CdFirstFitPacker>());
  return packers;
}

}  // namespace fjs
